// Quickstart: simulate co-allocation on a DAS-like multicluster in ~30 lines.
//
// Builds the paper's default workload (DAS-s-128 job sizes, DAS-t-900
// service times, component-size limit 16), runs the LS policy on a 4x32
// multicluster at 50% offered gross utilization, and prints the headline
// metrics.
//
//   $ ./examples/quickstart
#include <iostream>

#include "core/engine.hpp"
#include "util/strings.hpp"
#include "workload/das_workload.hpp"

int main() {
  using namespace mcsim;

  // 1. Describe the workload: total job sizes, service times, splitting.
  WorkloadConfig workload;
  workload.size_distribution = das_s_128();      // job sizes from the DAS1 log model
  workload.service_distribution = das_t_900();   // service times cut at 900 s
  workload.component_limit = 16;                 // split jobs into <=16-CPU components
  workload.num_clusters = 4;
  workload.extension_factor = 1.25;              // wide-area communication penalty

  // 2. Describe the run: policy, machine, load, length.
  SimulationConfig config;
  config.policy = PolicyKind::kLS;               // local queues + co-allocation
  config.cluster_sizes = {32, 32, 32, 32};
  config.workload = workload;
  config.workload.arrival_rate =
      workload.rate_for_gross_utilization(0.5, config.total_processors());
  config.total_jobs = 20000;
  config.seed = 42;

  // 3. Run and read the results.
  const SimulationResult result = run_simulation(config);

  std::cout << "policy:               " << result.policy << "\n"
            << "completed jobs:       " << result.completed_jobs << "\n"
            << "mean response time:   " << format_double(result.mean_response(), 1)
            << " s  (95% CI +/- " << format_double(result.response_ci.halfwidth, 1)
            << ")\n"
            << "95th percentile:      " << format_double(result.response_p95, 1) << " s\n"
            << "mean wait time:       " << format_double(result.wait_all.mean(), 1) << " s\n"
            << "offered gross util:   " << format_util(result.offered_gross_utilization)
            << "\n"
            << "offered net util:     " << format_util(result.offered_net_utilization)
            << "  (the gap is wide-area communication)\n"
            << "busy fraction:        " << format_util(result.busy_fraction) << "\n";
  return 0;
}
