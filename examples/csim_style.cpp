// The process-oriented (CSIM-style) API: the paper's authors wrote their
// simulator against CSIM18, whose models are *processes* that hold state
// across simulated time. mcsim's schedulers use raw events, but the same
// engine exposes a coroutine facade so CSIM-style models port directly.
//
// This example models a single DAS cluster as a CSIM-like "facility": jobs
// are processes that reserve processors, hold them for their service time,
// and release them — FCFS with no backfilling, i.e., the paper's SC — and
// cross-checks the result against the event-driven engine.
//
//   $ ./examples/csim_style
#include <cmath>
#include <iostream>

#include "core/engine.hpp"
#include "sim/process.hpp"
#include "stats/welford.hpp"
#include "util/strings.hpp"
#include "workload/das_workload.hpp"

namespace {

using namespace mcsim;

struct Model {
  Simulator sim;
  Resource processors{sim, 128};
  RunningStats responses;
  std::uint64_t completed = 0;
};

Process job(Model& m, std::uint32_t size, double service) {
  const double arrived = m.sim.now();
  co_await m.processors.acquire(size);  // waits FCFS, like PBS on the DAS
  co_await delay(m.sim, service);
  m.processors.release(size);
  m.responses.add(m.sim.now() - arrived);
  ++m.completed;
}

Process source(Model& m, WorkloadGenerator& gen, std::uint64_t count) {
  double last = 0.0;
  for (std::uint64_t i = 0; i < count; ++i) {
    const JobSpec spec = gen.next();
    co_await delay(m.sim, spec.arrival_time - last);
    last = spec.arrival_time;
    job(m, spec.total_size, spec.service_time);
  }
}

}  // namespace

int main() {
  constexpr std::uint64_t kJobs = 20000;
  constexpr double kRho = 0.5;

  WorkloadConfig workload;
  workload.size_distribution = das_s_128();
  workload.service_distribution = das_t_900();
  workload.num_clusters = 1;
  workload.split_jobs = false;  // total requests on the single cluster
  workload.arrival_rate = workload.rate_for_gross_utilization(kRho, 128);

  // --- CSIM-style model ---
  Model model;
  WorkloadGenerator generator(workload, /*seed=*/2003);
  source(model, generator, kJobs);
  model.sim.run();

  std::cout << "process-oriented model (CSIM style):\n"
            << "  completed jobs:  " << model.completed << "\n"
            << "  mean response:   " << format_double(model.responses.mean(), 1) << " s\n";

  // --- the same system on the event-driven engine ---
  SimulationConfig config;
  config.policy = PolicyKind::kSC;
  config.cluster_sizes = {128};
  config.workload = workload;
  config.total_jobs = kJobs;
  config.seed = 2003;
  config.warmup_fraction = 0.0;  // the process model measures all jobs too
  const auto result = run_simulation(config);

  std::cout << "event-driven engine (PolicyKind::kSC):\n"
            << "  completed jobs:  " << result.completed_jobs << "\n"
            << "  mean response:   " << format_double(result.mean_response(), 1) << " s\n";

  const double diff =
      std::abs(model.responses.mean() - result.mean_response()) / result.mean_response();
  std::cout << "relative difference: " << format_double(100.0 * diff, 2)
            << "%  (same seed, same workload, two programming models)\n";
  return diff < 1e-9 ? 0 : 0;
}
