// Beyond the paper's homogeneous 4x32 study: the REAL DAS2 layout — five
// clusters, one with 72 dual-processor nodes and four with 32 (Sect. 2.1)
// — scheduled with LS and co-allocation. Shows how a non-default system is
// described as a ScenarioSpec (custom layout + per-cluster submission
// weights) and run through the same build path as `mcsim run`; pass
// --emit-spec to write the scenario file instead of simulating.
//
//   $ ./examples/das2_heterogeneous --utilization=0.5
//   $ ./examples/das2_heterogeneous --emit-spec=das2.json && mcsim run das2.json
#include <fstream>
#include <iostream>

#include "exp/scenario_spec.hpp"
#include "util/assert.hpp"
#include "util/cli.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace mcsim;
  CliParser parser("Co-allocation on the real five-cluster DAS2 layout (72+4x32)");
  parser.add_option("utilization", "0.5", "target gross utilization");
  parser.add_option("limit", "24", "job-component-size limit");
  parser.add_option("sim-jobs", "30000", "simulated jobs");
  parser.add_option("policy", "LS", "GS, LS or LP");
  parser.add_option("seed", "11", "master random seed");
  parser.add_option("emit-spec", "", "write the scenario file and exit");
  if (!parser.parse(argc, argv)) return 0;

  // The whole experiment as one declarative spec (docs/SCENARIOS.md).
  exp::ScenarioSpec spec;
  spec.name = "DAS2 heterogeneous layout (72+4x32)";
  spec.policy = parse_policy_kind(parser.get("policy"));
  MCSIM_REQUIRE(!is_single_cluster_policy(spec.policy),
                "this example models the multicluster; use SC elsewhere");
  spec.cluster_sizes = {72, 32, 32, 32, 32};
  // Submissions proportional to cluster size, as users submit locally.
  spec.queue_weights = {72.0, 32.0, 32.0, 32.0, 32.0};
  spec.component_limit = static_cast<std::uint32_t>(parser.get_uint("limit"));
  spec.utilization = parser.get_double("utilization");
  spec.sim_jobs = parser.get_uint("sim-jobs");
  spec.seed = parser.get_uint("seed");

  if (const std::string path = parser.get("emit-spec"); !path.empty()) {
    std::ofstream out(path);
    MCSIM_REQUIRE(static_cast<bool>(out), "cannot open " + path);
    exp::write_scenario_file(out, spec);
    std::cout << "scenario -> " << path << "  (execute with: mcsim run " << path << ")\n";
    return 0;
  }

  const auto config = exp::to_simulation_config(spec);
  const auto result = run_simulation(config);

  std::cout << "DAS2 layout: 72 + 32 + 32 + 32 + 32 = " << config.total_processors()
            << " processors, policy " << result.policy << "\n\n";
  TextTable table({"metric", "value"});
  table.add_row({"completed jobs", std::to_string(result.completed_jobs)});
  table.add_row({"mean response (s)", format_double(result.mean_response(), 1)});
  table.add_row({"p95 response (s)", format_double(result.response_p95, 1)});
  table.add_row({"mean wait (s)", format_double(result.wait_all.mean(), 1)});
  table.add_row({"offered gross util", format_util(result.offered_gross_utilization)});
  table.add_row({"offered net util", format_util(result.offered_net_utilization)});
  table.add_row({"busy fraction", format_util(result.busy_fraction)});
  table.add_row({"status", result.unstable ? "unstable" : "stable"});
  std::cout << table.render();

  std::cout << "\nNote: with a 72-CPU cluster in the mix, jobs up to 72 stay\n"
               "single-component under limit 72; rerun with --limit=72 to see the\n"
               "communication penalty vanish for them.\n";
  return 0;
}
