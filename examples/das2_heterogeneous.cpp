// Beyond the paper's homogeneous 4x32 study: the REAL DAS2 layout — five
// clusters, one with 72 dual-processor nodes and four with 32 (Sect. 2.1)
// — scheduled with LS and co-allocation. Shows the library's heterogeneous
// machine support and how cluster asymmetry shifts load.
//
//   $ ./examples/das2_heterogeneous --utilization=0.5
#include <iostream>

#include "core/engine.hpp"
#include "util/assert.hpp"
#include "util/cli.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "workload/das_workload.hpp"

int main(int argc, char** argv) {
  using namespace mcsim;
  CliParser parser("Co-allocation on the real five-cluster DAS2 layout (72+4x32)");
  parser.add_option("utilization", "0.5", "target gross utilization");
  parser.add_option("limit", "24", "job-component-size limit");
  parser.add_option("sim-jobs", "30000", "simulated jobs");
  parser.add_option("policy", "LS", "GS, LS or LP");
  parser.add_option("seed", "11", "master random seed");
  if (!parser.parse(argc, argv)) return 0;

  const std::vector<std::uint32_t> das2_layout = {72, 32, 32, 32, 32};

  SimulationConfig config;
  config.policy = parse_policy(parser.get("policy"));
  MCSIM_REQUIRE(!is_single_cluster_policy(config.policy),
                "this example models the multicluster; use SC elsewhere");
  config.cluster_sizes = das2_layout;
  config.workload.size_distribution = das_s_128();
  config.workload.service_distribution = das_t_900();
  config.workload.component_limit = static_cast<std::uint32_t>(parser.get_uint("limit"));
  config.workload.num_clusters = static_cast<std::uint32_t>(das2_layout.size());
  config.workload.extension_factor = das::kExtensionFactor;
  // Submissions proportional to cluster size, as users submit locally.
  config.workload.queue_weights = {72.0, 32.0, 32.0, 32.0, 32.0};
  config.workload.arrival_rate = config.workload.rate_for_gross_utilization(
      parser.get_double("utilization"), config.total_processors());
  config.total_jobs = parser.get_uint("sim-jobs");
  config.seed = parser.get_uint("seed");

  const auto result = run_simulation(config);

  std::cout << "DAS2 layout: 72 + 32 + 32 + 32 + 32 = " << config.total_processors()
            << " processors, policy " << result.policy << "\n\n";
  TextTable table({"metric", "value"});
  table.add_row({"completed jobs", std::to_string(result.completed_jobs)});
  table.add_row({"mean response (s)", format_double(result.mean_response(), 1)});
  table.add_row({"p95 response (s)", format_double(result.response_p95, 1)});
  table.add_row({"mean wait (s)", format_double(result.wait_all.mean(), 1)});
  table.add_row({"offered gross util", format_util(result.offered_gross_utilization)});
  table.add_row({"offered net util", format_util(result.offered_net_utilization)});
  table.add_row({"busy fraction", format_util(result.busy_fraction)});
  table.add_row({"status", result.unstable ? "unstable" : "stable"});
  std::cout << table.render();

  std::cout << "\nNote: with a 72-CPU cluster in the mix, jobs up to 72 stay\n"
               "single-component under limit 72; rerun with --limit=72 to see the\n"
               "communication penalty vanish for them.\n";
  return 0;
}
