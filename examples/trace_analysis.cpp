// The full trace-based pipeline, end to end:
//   1. obtain a workload log (generate the synthetic DAS1 log, or read any
//      SWF file from the Parallel Workloads Archive with --trace=PATH);
//   2. characterise it (the paper's Sect. 2.4 statistics);
//   3. derive the simulation input distributions from it (sizes cut at 64
//      and 128, service times cut at 900 s);
//   4. drive a multicluster simulation with the trace-derived workload.
//
//   $ ./examples/trace_analysis
//   $ ./examples/trace_analysis --trace=mylog.swf --utilization=0.6
#include <algorithm>
#include <iostream>
#include <memory>

#include "core/engine.hpp"
#include "obs/ring_recorder.hpp"
#include "obs/swf_builder.hpp"
#include "trace/empirical.hpp"
#include "trace/swf.hpp"
#include "trace/synthetic_log.hpp"
#include "trace/timeline.hpp"
#include "trace/trace_stats.hpp"
#include "util/cli.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "workload/das_workload.hpp"

int main(int argc, char** argv) {
  using namespace mcsim;
  CliParser parser("Analyse a workload trace and simulate from its distributions");
  parser.add_option("trace", "", "SWF trace to read (empty: generate the synthetic DAS1 log)");
  parser.add_option("save", "", "write the (synthetic) trace to this SWF path");
  parser.add_option("jobs-in-log", "30000", "synthetic log size");
  parser.add_option("utilization", "0.5", "target gross utilization for the simulation");
  parser.add_option("limit", "16", "job-component-size limit");
  parser.add_option("sim-jobs", "20000", "simulated jobs");
  parser.add_option("seed", "3", "master random seed");
  parser.add_option("export", "", "write the SIMULATED schedule to this SWF path");
  parser.add_flag("sessions", "generate the synthetic log with the user-session model");
  if (!parser.parse(argc, argv)) return 0;

  // 1. Obtain the log.
  SwfTrace trace;
  if (const std::string path = parser.get("trace"); !path.empty()) {
    trace = read_swf_file(path);
    std::cout << "read " << trace.records.size() << " jobs from " << path << "\n\n";
  } else {
    SyntheticLogConfig log_config;
    log_config.num_jobs = parser.get_uint("jobs-in-log");
    log_config.seed = parser.get_uint("seed");
    log_config.user_sessions = parser.get_flag("sessions");
    trace = generate_synthetic_das1_log(log_config);
    std::cout << "generated a synthetic DAS1 log with " << trace.records.size()
              << " jobs\n\n";
  }
  if (const std::string save = parser.get("save"); !save.empty()) {
    write_swf_file(save, trace);
    std::cout << "saved trace to " << save << "\n\n";
  }

  // 2. Characterise it.
  const auto summary = summarize_trace(trace.records);
  TextTable stats({"statistic", "value"});
  stats.add_row({"jobs", std::to_string(summary.job_count)});
  stats.add_row({"users", std::to_string(summary.user_count)});
  stats.add_row({"span (days)", format_double(summary.duration / 86400.0, 1)});
  stats.add_row({"distinct job sizes", std::to_string(summary.distinct_sizes)});
  stats.add_row({"mean job size", format_double(summary.mean_size, 2)});
  stats.add_row({"job size cv", format_double(summary.size_cv, 2)});
  stats.add_row({"power-of-two fraction", format_util(summary.power_of_two_fraction)});
  stats.add_row({"mean service (s)", format_double(summary.mean_service, 1)});
  stats.add_row({"service cv", format_double(summary.service_cv, 2)});
  stats.add_row({"under 15 min", format_util(summary.fraction_under_15min)});
  std::cout << stats.render() << '\n';
  std::cout << render_utilization_timeline(trace.records, 128) << '\n';

  // 3. Derive the simulation inputs, exactly as the paper did from the DAS1
  //    log: sizes (full and cut at 64), service times cut at 900 s.
  const auto sizes_128 = empirical_size_distribution(trace.records);
  const auto sizes_64 = empirical_size_distribution_cut(trace.records, 64);
  const auto services = std::make_shared<DiscreteDistribution>(
      empirical_service_distribution(trace.records, 900.0));
  std::cout << "derived distributions:\n"
            << "  sizes (full): " << sizes_128.describe() << '\n'
            << "  sizes (cut at 64): " << sizes_64.describe() << '\n'
            << "  service times (cut at 900 s): " << services->describe() << "\n\n";

  // 4. Simulate LS on the 4x32 multicluster with the trace-derived workload.
  SimulationConfig config;
  config.policy = PolicyKind::kLS;
  config.cluster_sizes = {32, 32, 32, 32};
  config.workload.size_distribution = sizes_128;
  config.workload.service_distribution = services;
  config.workload.component_limit = static_cast<std::uint32_t>(parser.get_uint("limit"));
  config.workload.num_clusters = 4;
  config.workload.extension_factor = das::kExtensionFactor;
  config.workload.arrival_rate = config.workload.rate_for_gross_utilization(
      parser.get_double("utilization"), config.total_processors());
  config.total_jobs = parser.get_uint("sim-jobs");
  config.seed = parser.get_uint("seed") + 1;

  // Optionally capture the realised schedule as a trace of its own — the
  // full loop: log in, statistics out, simulation in between. The obs layer
  // does the bookkeeping: a RingRecorder receives every lifecycle event and
  // streams them into an SwfTraceBuilder, which assembles one TraceRecord
  // per completed job (see docs/TRACING.md).
  MulticlusterSimulation simulation(config);
  obs::RingRecorder recorder;
  obs::SwfTraceBuilder builder;
  const bool exporting = !parser.get("export").empty();
  if (exporting) {
    recorder.add_emitter([&builder](const obs::TraceEvent& event) { builder.record(event); });
    simulation.set_trace_sink(&recorder);
  }
  const auto result = simulation.run();
  std::cout << "simulation (LS, 4x32, target gross utilization "
            << format_util(parser.get_double("utilization")) << "):\n"
            << "  mean response " << format_double(result.mean_response(), 1)
            << " s, p95 " << format_double(result.response_p95, 1) << " s, "
            << (result.unstable ? "UNSTABLE" : "stable") << "\n";
  if (exporting) {
    SwfTrace simulated = builder.trace();
    simulated.header_comments = {"Simulated schedule produced by mcsim (LS on 4x32)"};
    std::sort(simulated.records.begin(), simulated.records.end(),
              [](const TraceRecord& a, const TraceRecord& b) {
                return a.submit_time < b.submit_time;
              });
    write_swf_file(parser.get("export"), simulated);
    std::cout << "simulated schedule written to " << parser.get("export") << " ("
              << simulated.records.size() << " jobs)\n";
  }
  return 0;
}
