// Compare the four scheduling policies (GS, LS, LP, SC) on the paper's
// workload at a chosen load.
//
//   $ ./examples/policy_comparison --utilization=0.55 --limit=16 --sim-jobs=30000
//   $ ./examples/policy_comparison --unbalanced     # hot local queue (40/20/20/20)
#include <iostream>

#include "exp/scenario.hpp"
#include "util/cli.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace mcsim;
  CliParser parser("Compare GS/LS/LP/SC on the DAS workload at one load point");
  parser.add_option("utilization", "0.55", "target gross utilization in (0,1)");
  parser.add_option("limit", "16", "job-component-size limit (16, 24 or 32)");
  parser.add_option("sim-jobs", "30000", "number of simulated jobs per policy");
  parser.add_option("seed", "7", "master random seed");
  parser.add_flag("unbalanced", "one local queue receives 40% of local submissions");
  parser.add_flag("das64", "cap total job sizes at 64 (DAS-s-64)");
  if (!parser.parse(argc, argv)) return 0;

  PaperScenario scenario;
  scenario.component_limit = static_cast<std::uint32_t>(parser.get_uint("limit"));
  scenario.balanced_queues = !parser.get_flag("unbalanced");
  scenario.limit_total_size_64 = parser.get_flag("das64");
  const double rho = parser.get_double("utilization");
  const std::uint64_t jobs = parser.get_uint("sim-jobs");
  const std::uint64_t seed = parser.get_uint("seed");

  std::cout << "workload: " << (scenario.limit_total_size_64 ? "DAS-s-64" : "DAS-s-128")
            << ", limit " << scenario.component_limit << ", "
            << (scenario.balanced_queues ? "balanced" : "unbalanced")
            << " local queues, target gross utilization " << format_util(rho) << "\n\n";

  TextTable table({"policy", "mean response (s)", "ci95", "p95 (s)", "mean wait (s)",
                   "busy fraction", "status"});
  for (PolicyKind policy :
       {PolicyKind::kGS, PolicyKind::kLS, PolicyKind::kLP, PolicyKind::kSC}) {
    scenario.policy = policy;
    const auto result = run_simulation(make_paper_config(scenario, rho, jobs, seed));
    table.add_row({result.policy,
                   result.unstable ? "-" : format_double(result.mean_response(), 1),
                   result.unstable ? "-" : format_double(result.response_ci.halfwidth, 1),
                   result.unstable ? "-" : format_double(result.response_p95, 1),
                   result.unstable ? "-" : format_double(result.wait_all.mean(), 1),
                   format_util(result.busy_fraction),
                   result.unstable ? "unstable (beyond saturation)" : "ok"});
  }
  std::cout << table.render();
  std::cout << "\nSC is the single-cluster FCFS baseline (128 processors, total requests).\n";
  return 0;
}
