// Capacity planning with the constant-backlog method (paper Sect. 4):
// "what is the maximal utilization this multicluster can sustain under a
// given policy and component-size limit, and how much of it is lost to
// wide-area communication?"
//
// The machine and workload are described as a ScenarioSpec in saturation
// mode — the same vocabulary `mcsim run` executes — and turned into the
// estimator's config with exp::to_saturation_config.
//
//   $ ./examples/capacity_planning --clusters=4 --cluster-size=32 --limit=16
//   $ ./examples/capacity_planning --policy=SC
#include <iostream>

#include "core/saturation.hpp"
#include "exp/scenario_spec.hpp"
#include "util/cli.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "workload/das_workload.hpp"

int main(int argc, char** argv) {
  using namespace mcsim;
  CliParser parser("Maximal sustainable utilization by constant-backlog simulation");
  parser.add_option("policy", "GS", "GS, LS, LP or SC");
  parser.add_option("clusters", "4", "number of clusters");
  parser.add_option("cluster-size", "32", "processors per cluster");
  parser.add_option("limit", "16", "job-component-size limit");
  parser.add_option("extension", "1.25", "wide-area service-time extension factor");
  parser.add_option("completions", "40000", "jobs to complete");
  parser.add_option("seed", "5", "master random seed");
  if (!parser.parse(argc, argv)) return 0;

  const auto clusters = static_cast<std::uint32_t>(parser.get_uint("clusters"));
  const auto cluster_size = static_cast<std::uint32_t>(parser.get_uint("cluster-size"));

  exp::ScenarioSpec spec;
  spec.mode = exp::RunMode::kSaturation;
  spec.policy = parse_policy_kind(parser.get("policy"));
  const bool single = is_single_cluster_policy(spec.policy);
  spec.cluster_sizes.assign(single ? 1 : clusters,
                            single ? clusters * cluster_size : cluster_size);
  spec.component_limit = static_cast<std::uint32_t>(parser.get_uint("limit"));
  spec.extension_factor = parser.get_double("extension");
  spec.saturation_completions = parser.get_uint("completions");
  spec.seed = parser.get_uint("seed");

  const auto config = exp::to_saturation_config(spec);
  const auto result = run_saturation(config);

  std::uint32_t total = 0;
  for (auto s : config.cluster_sizes) total += s;
  std::cout << "system: " << config.cluster_sizes.size() << " cluster(s), " << total
            << " processors; policy " << result.policy << "; limit "
            << config.workload.component_limit << "; extension factor "
            << format_double(config.workload.extension_factor, 2) << "\n\n";

  TextTable table({"metric", "value"});
  table.add_row({"maximal gross utilization", format_util(result.maximal_gross_utilization)});
  table.add_row({"maximal net utilization", format_util(result.maximal_net_utilization)});
  table.add_row({"capacity lost to wide-area comm",
                 format_util(result.maximal_gross_utilization -
                             result.maximal_net_utilization)});
  table.add_row({"completions simulated", std::to_string(result.completions)});
  std::cout << table.render();

  if (!single) {
    std::cout << "\nclosed-form gross/net ratio for this workload: "
              << format_util(gross_net_ratio(config.workload.size_distribution,
                                             config.workload.component_limit, clusters,
                                             config.workload.extension_factor))
              << '\n';
  }
  std::cout << "\nInterpretation: offered loads above the maximal gross utilization\n"
               "have no steady state — queues grow without bound (paper Sect. 4).\n";
  return 0;
}
