#include "trace/trace_stats.hpp"

#include <algorithm>
#include <unordered_set>

#include "stats/welford.hpp"

namespace mcsim {

namespace {
bool is_power_of_two(std::uint32_t v) { return v != 0 && (v & (v - 1)) == 0; }
}  // namespace

TraceSummary summarize_trace(const std::vector<TraceRecord>& records) {
  TraceSummary s;
  s.job_count = records.size();
  if (records.empty()) return s;

  std::unordered_set<std::uint32_t> users;
  std::unordered_set<std::uint32_t> sizes;
  RunningStats size_stats;
  RunningStats service_stats;
  double first_submit = records.front().submit_time;
  double last_end = records.front().end_time();
  std::uint64_t pow2 = 0;
  std::uint64_t under_15min = 0;
  std::uint32_t min_size = records.front().processors;
  std::uint32_t max_size = records.front().processors;

  for (const auto& rec : records) {
    users.insert(rec.user_id);
    sizes.insert(rec.processors);
    size_stats.add(static_cast<double>(rec.processors));
    service_stats.add(rec.service_time());
    first_submit = std::min(first_submit, rec.submit_time);
    last_end = std::max(last_end, rec.end_time());
    if (is_power_of_two(rec.processors)) ++pow2;
    if (rec.service_time() < 900.0) ++under_15min;
    min_size = std::min(min_size, rec.processors);
    max_size = std::max(max_size, rec.processors);
  }

  s.user_count = static_cast<std::uint32_t>(users.size());
  s.duration = last_end - first_submit;
  s.distinct_sizes = sizes.size();
  s.mean_size = size_stats.mean();
  s.size_cv = size_stats.cv();
  s.min_size = min_size;
  s.max_size = max_size;
  s.power_of_two_fraction =
      static_cast<double>(pow2) / static_cast<double>(records.size());
  s.mean_service = service_stats.mean();
  s.service_cv = service_stats.cv();
  s.fraction_under_15min =
      static_cast<double>(under_15min) / static_cast<double>(records.size());
  return s;
}

DiscreteHistogram job_size_density(const std::vector<TraceRecord>& records) {
  DiscreteHistogram hist;
  for (const auto& rec : records) hist.add(static_cast<std::int64_t>(rec.processors));
  return hist;
}

Histogram service_time_density(const std::vector<TraceRecord>& records, double hi,
                               std::size_t bins) {
  Histogram hist(0.0, hi, bins);
  for (const auto& rec : records) hist.add(rec.service_time());
  return hist;
}

double fraction_with_size(const std::vector<TraceRecord>& records, std::uint32_t size) {
  if (records.empty()) return 0.0;
  const auto n = std::count_if(records.begin(), records.end(),
                               [size](const TraceRecord& r) { return r.processors == size; });
  return static_cast<double>(n) / static_cast<double>(records.size());
}

std::vector<TraceRecord> cut_by_size(const std::vector<TraceRecord>& records,
                                     std::uint32_t max_size) {
  std::vector<TraceRecord> out;
  out.reserve(records.size());
  std::copy_if(records.begin(), records.end(), std::back_inserter(out),
               [max_size](const TraceRecord& r) { return r.processors <= max_size; });
  return out;
}

std::vector<TraceRecord> cut_by_service(const std::vector<TraceRecord>& records,
                                        double max_service) {
  std::vector<TraceRecord> out;
  out.reserve(records.size());
  std::copy_if(records.begin(), records.end(), std::back_inserter(out),
               [max_service](const TraceRecord& r) { return r.service_time() <= max_service; });
  return out;
}

}  // namespace mcsim
