#include "trace/timeline.hpp"

#include <algorithm>
#include <sstream>

#include "util/assert.hpp"
#include "util/strings.hpp"

namespace mcsim {

std::vector<double> utilization_profile(const std::vector<TraceRecord>& records,
                                        std::uint32_t capacity, std::size_t buckets) {
  MCSIM_REQUIRE(capacity > 0, "capacity must be positive");
  MCSIM_REQUIRE(buckets > 0, "need at least one bucket");
  std::vector<double> profile(buckets, 0.0);
  if (records.empty()) return profile;

  double t0 = records.front().submit_time;
  double t1 = records.front().end_time();
  for (const auto& rec : records) {
    t0 = std::min(t0, rec.submit_time);
    t1 = std::max(t1, rec.end_time());
  }
  const double span = t1 - t0;
  if (span <= 0.0) return profile;
  const double width = span / static_cast<double>(buckets);

  // Accumulate busy processor-seconds per bucket by clipping each job's
  // [start, end) against the bucket edges.
  for (const auto& rec : records) {
    if (rec.end_time() <= rec.start_time()) continue;
    const auto first =
        static_cast<std::size_t>(std::clamp((rec.start_time() - t0) / width, 0.0,
                                            static_cast<double>(buckets - 1)));
    const auto last =
        static_cast<std::size_t>(std::clamp((rec.end_time() - t0) / width, 0.0,
                                            static_cast<double>(buckets - 1)));
    for (std::size_t b = first; b <= last; ++b) {
      const double bucket_lo = t0 + width * static_cast<double>(b);
      const double bucket_hi = bucket_lo + width;
      const double overlap =
          std::min(rec.end_time(), bucket_hi) - std::max(rec.start_time(), bucket_lo);
      if (overlap > 0.0) {
        profile[b] += overlap * static_cast<double>(rec.processors);
      }
    }
  }
  for (double& value : profile) {
    value /= width * static_cast<double>(capacity);
    value = std::clamp(value, 0.0, 1.0);
  }
  return profile;
}

std::string render_utilization_timeline(const std::vector<TraceRecord>& records,
                                        std::uint32_t capacity,
                                        const TimelineOptions& options) {
  MCSIM_REQUIRE(options.height > 0, "timeline height must be positive");
  const auto profile = utilization_profile(records, capacity, options.buckets);
  std::ostringstream out;
  out << "utilization over the log span (" << options.buckets << " buckets)\n";
  for (std::size_t row = options.height; row-- > 0;) {
    const double threshold =
        (static_cast<double>(row) + 0.5) / static_cast<double>(options.height);
    out << (row == options.height - 1 ? "1.0 |" : (row == 0 ? "0.0 |" : "    |"));
    for (double value : profile) out << (value >= threshold ? '#' : ' ');
    out << "|\n";
  }
  out << "    +" << std::string(options.buckets, '-') << "+\n";
  double mean = 0.0;
  for (double value : profile) mean += value;
  mean /= static_cast<double>(profile.size());
  out << "    mean utilization: " << format_util(mean) << '\n';
  return out.str();
}

}  // namespace mcsim
