// ASCII utilization timeline of a trace: how full was the machine over the
// span of the log? Used by the trace_analysis example and handy when
// eyeballing synthetic logs against real ones.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "trace/record.hpp"

namespace mcsim {

struct TimelineOptions {
  std::size_t buckets = 72;  // characters across
  /// Rows of the vertical chart; 1 collapses to a density strip.
  std::size_t height = 8;
};

/// Per-bucket mean utilization in [0,1] over [first submit, last end].
std::vector<double> utilization_profile(const std::vector<TraceRecord>& records,
                                        std::uint32_t capacity, std::size_t buckets);

/// Render the profile as a bar chart (rows of '#') with a 0..1 axis.
std::string render_utilization_timeline(const std::vector<TraceRecord>& records,
                                        std::uint32_t capacity,
                                        const TimelineOptions& options = {});

}  // namespace mcsim
