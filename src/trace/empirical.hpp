// Deriving simulation input distributions from a trace — the "trace-based"
// step of the paper: "By sampling the job-size distribution as measured on
// the DAS1 we derive two distributions which we use in our simulations."
#pragma once

#include <cstdint>
#include <vector>

#include "trace/record.hpp"
#include "workload/discrete.hpp"
#include "workload/distribution.hpp"

namespace mcsim {

/// Empirical job-size distribution of a trace (exact per-size frequencies).
DiscreteDistribution empirical_size_distribution(const std::vector<TraceRecord>& records);

/// Empirical size distribution of the trace cut at `max_size`
/// (the DAS-s-64 construction when max_size = 64).
DiscreteDistribution empirical_size_distribution_cut(const std::vector<TraceRecord>& records,
                                                     std::uint32_t max_size);

/// Empirical service-time distribution of the trace cut at `max_service`
/// seconds (the DAS-t-900 construction when max_service = 900), resampled
/// as a discrete distribution over the observed values.
DiscreteDistribution empirical_service_distribution(const std::vector<TraceRecord>& records,
                                                    double max_service);

/// Smooth variant: the linearly interpolated ECDF of the cut service
/// times, so simulated service times are not restricted to the trace's
/// atoms. Returns a PiecewiseLinearDistribution.
DistributionPtr empirical_service_distribution_smooth(
    const std::vector<TraceRecord>& records, double max_service);

}  // namespace mcsim
