#include "trace/empirical.hpp"

#include <map>
#include <memory>
#include <vector>

#include "trace/trace_stats.hpp"
#include "workload/distributions.hpp"
#include "util/assert.hpp"

namespace mcsim {

namespace {
DiscreteDistribution from_counts(const std::map<double, std::uint64_t>& counts) {
  MCSIM_REQUIRE(!counts.empty(), "trace has no usable records");
  std::vector<double> values;
  std::vector<double> weights;
  values.reserve(counts.size());
  weights.reserve(counts.size());
  for (const auto& [value, count] : counts) {
    values.push_back(value);
    weights.push_back(static_cast<double>(count));
  }
  return DiscreteDistribution(std::move(values), std::move(weights));
}
}  // namespace

DiscreteDistribution empirical_size_distribution(const std::vector<TraceRecord>& records) {
  std::map<double, std::uint64_t> counts;
  for (const auto& rec : records) {
    if (rec.processors > 0) ++counts[static_cast<double>(rec.processors)];
  }
  return from_counts(counts);
}

DiscreteDistribution empirical_size_distribution_cut(const std::vector<TraceRecord>& records,
                                                     std::uint32_t max_size) {
  return empirical_size_distribution(cut_by_size(records, max_size));
}

DiscreteDistribution empirical_service_distribution(const std::vector<TraceRecord>& records,
                                                    double max_service) {
  std::map<double, std::uint64_t> counts;
  for (const auto& rec : cut_by_service(records, max_service)) {
    const double service = rec.service_time();
    if (service > 0.0) ++counts[service];
  }
  return from_counts(counts);
}

DistributionPtr empirical_service_distribution_smooth(
    const std::vector<TraceRecord>& records, double max_service) {
  std::vector<double> samples;
  for (const auto& rec : cut_by_service(records, max_service)) {
    const double service = rec.service_time();
    if (service > 0.0) samples.push_back(service);
  }
  return std::make_shared<PiecewiseLinearDistribution>(
      PiecewiseLinearDistribution::from_samples(std::move(samples)));
}

}  // namespace mcsim
