#include "trace/swf_stream.hpp"

#include <cstdlib>
#include <string_view>
#include <utility>

#include "util/assert.hpp"
#include "util/strings.hpp"

namespace mcsim {

namespace {
[[noreturn]] void parse_error(const std::string& source, std::uint64_t line_no,
                              const std::string& message) {
  // file:line prefix so a malformed record in a multi-million-line archive
  // log can actually be found.
  MCSIM_REQUIRE(false, source + ":" + std::to_string(line_no) + ": " + message);
  std::abort();  // unreachable: MCSIM_REQUIRE(false, ...) always throws
}

/// The numeric header directives the archive defines. Anything else after
/// a ';' stays a plain comment (logs carry free-text Computer/Note/
/// Conversion lines, and mcsim's own exports carry Command/Version lines).
std::int64_t* directive_slot(SwfHeaderInfo& header, std::string_view key) {
  const std::string lowered = to_lower(key);
  if (lowered == "maxjobs") return &header.max_jobs;
  if (lowered == "maxrecords") return &header.max_records;
  if (lowered == "maxnodes") return &header.max_nodes;
  if (lowered == "maxprocs") return &header.max_procs;
  if (lowered == "maxruntime") return &header.max_runtime;
  if (lowered == "maxqueues") return &header.max_queues;
  if (lowered == "maxpartitions") return &header.max_partitions;
  if (lowered == "unixstarttime") return &header.unix_start_time;
  return nullptr;
}

/// Fold one comment line (already stripped of the leading ';') into the
/// header: known `Key: value` directives are parsed and validated, the
/// line itself is always kept verbatim in comments.
void absorb_comment(SwfHeaderInfo& header, std::string_view comment,
                    const std::string& source, std::uint64_t line_no) {
  header.comments.emplace_back(comment);
  const std::size_t colon = comment.find(':');
  if (colon == std::string_view::npos) return;
  std::int64_t* slot = directive_slot(header, trim(comment.substr(0, colon)));
  if (slot == nullptr) return;
  const std::string value{trim(comment.substr(colon + 1))};
  char* parsed_end = nullptr;
  const long long parsed = std::strtoll(value.c_str(), &parsed_end, 10);
  if (value.empty() || parsed_end != value.c_str() + value.size() || parsed < 0) {
    parse_error(source, line_no,
                "header directive '" + std::string(trim(comment.substr(0, colon))) +
                    "' needs a non-negative integer, got '" + value + "'");
  }
  *slot = static_cast<std::int64_t>(parsed);
}
}  // namespace

SwfStreamReader::SwfStreamReader(std::istream& in, std::string source)
    : in_(in), source_(std::move(source)) {}

bool SwfStreamReader::next(TraceRecord& out) {
  while (std::getline(in_, line_)) {
    ++line_no_;
    // trim() also strips '\r', so CRLF logs (common in archive downloads)
    // parse the same as LF ones.
    const std::string_view trimmed = trim(line_);
    if (trimmed.empty()) continue;
    if (trimmed.front() == ';') {
      absorb_comment(header_, trim(trimmed.substr(1)), source_, line_no_);
      continue;
    }

    // SWF prescribes 18 whitespace-separated fields, but real Parallel
    // Workloads Archive logs sometimes truncate unused trailing columns;
    // absent fields read as -1 ("unknown"), exactly as SWF spells missing
    // values. Extra columns are an error: the line is not SWF.
    double field[18];
    for (double& f : field) f = -1.0;
    std::size_t count = 0;
    std::size_t pos = 0;
    while (pos < trimmed.size()) {
      while (pos < trimmed.size() && (trimmed[pos] == ' ' || trimmed[pos] == '\t')) ++pos;
      if (pos >= trimmed.size()) break;
      std::size_t end = pos;
      while (end < trimmed.size() && trimmed[end] != ' ' && trimmed[end] != '\t') ++end;
      const std::string token{trimmed.substr(pos, end - pos)};
      if (count >= 18) {
        parse_error(source_, line_no_, "expected at most 18 fields, found more");
      }
      char* parsed_end = nullptr;
      const double value = std::strtod(token.c_str(), &parsed_end);
      if (parsed_end != token.c_str() + token.size() || token.empty()) {
        parse_error(source_, line_no_,
                    "field " + std::to_string(count + 1) + " is not a number: '" +
                        token + "'");
      }
      field[count++] = value;
      pos = end;
    }

    TraceRecord rec;
    rec.job_id = static_cast<std::uint64_t>(field[0]);
    rec.submit_time = field[1];
    rec.wait_time = field[2] >= 0 ? field[2] : 0.0;
    rec.run_time = field[3] >= 0 ? field[3] : 0.0;
    const double alloc = field[4] >= 0 ? field[4] : field[7];
    if (alloc < 0) {
      parse_error(source_, line_no_,
                  "no processor count (allocated and requested both missing)");
    }
    rec.processors = static_cast<std::uint32_t>(alloc);
    // Validate against the machine the header declares: a job wider than
    // the whole system means the log is internally inconsistent, and
    // replaying it would silently misreport utilization.
    const std::int64_t declared = header_.declared_processors();
    if (declared > 0 && static_cast<std::int64_t>(rec.processors) > declared) {
      parse_error(source_, line_no_,
                  "job requests " + std::to_string(rec.processors) +
                      " processors but the header declares " +
                      (header_.max_procs >= 0 ? "MaxProcs: " : "MaxNodes: ") +
                      std::to_string(declared));
    }
    rec.killed_by_limit = static_cast<int>(field[10]) == 5;
    rec.user_id = field[11] >= 0 ? static_cast<std::uint32_t>(field[11]) : 0;
    ++records_read_;
    out = rec;
    return true;
  }
  return false;
}

SwfFileStream::SwfFileStream(const std::string& path)
    : file_(path), reader_(file_, path) {
  MCSIM_REQUIRE(file_.good(), "cannot open trace file: " + path);
}

bool SwfFileStream::next(TraceRecord& out) { return reader_.next(out); }

SwfScan scan_swf_file(const std::string& path) {
  SwfFileStream stream(path);
  SwfScan scan;
  scan.summary = summarize_trace_source(stream);
  scan.header = stream.header();
  return scan;
}

}  // namespace mcsim
