// One job record of a cluster workload log, modelled on the fields the
// paper extracts from the DAS1 PBS log: submit/start/end times, requested
// processors, and the submitting user.
#pragma once

#include <cstdint>

namespace mcsim {

struct TraceRecord {
  std::uint64_t job_id = 0;
  /// Seconds since the start of the log.
  double submit_time = 0.0;
  double start_time = 0.0;
  double end_time = 0.0;
  std::uint32_t processors = 0;
  std::uint32_t user_id = 0;
  /// True if the job was killed by the 15-minute working-hours limit.
  bool killed_by_limit = false;

  [[nodiscard]] double service_time() const { return end_time - start_time; }
  [[nodiscard]] double wait_time() const { return start_time - submit_time; }
  [[nodiscard]] double response_time() const { return end_time - submit_time; }
};

}  // namespace mcsim
