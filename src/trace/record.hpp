// One job record of a cluster workload log, modelled on the fields the
// paper extracts from the DAS1 PBS log: submit time, queueing delay, run
// time, requested processors, and the submitting user.
//
// The record stores the SWF-native quantities (submit, wait, run) as
// members and *derives* the absolute start/end times, not the other way
// round. SWF files carry wait and run, so storing them directly makes a
// write -> read round trip reproduce every record bit-exactly (the
// observability layer's manifest guarantee, docs/TRACING.md); derived
// absolute times may differ from a sum computed in another order by one
// ULP, which only display and binning care about.
#pragma once

#include <cstdint>

namespace mcsim {

struct TraceRecord {
  std::uint64_t job_id = 0;
  /// Seconds since the start of the log.
  double submit_time = 0.0;
  /// Queueing delay: start - submit (SWF field 3).
  double wait_time = 0.0;
  /// Execution time: end - start (SWF field 4).
  double run_time = 0.0;
  std::uint32_t processors = 0;
  std::uint32_t user_id = 0;
  /// True if the job was killed by the 15-minute working-hours limit.
  bool killed_by_limit = false;

  [[nodiscard]] double start_time() const { return submit_time + wait_time; }
  [[nodiscard]] double end_time() const { return submit_time + wait_time + run_time; }
  [[nodiscard]] double service_time() const { return run_time; }
  [[nodiscard]] double response_time() const { return wait_time + run_time; }
};

}  // namespace mcsim
