#include "trace/swf.hpp"

#include <fstream>

#include "trace/swf_stream.hpp"
#include "util/assert.hpp"
#include "util/strings.hpp"

namespace mcsim {

// read_swf is the whole-file convenience wrapper over the incremental
// SwfStreamReader (trace/swf_stream.hpp); all parsing, hardening and
// header-directive validation lives there so the streaming replay path and
// this one cannot drift apart.
SwfTrace read_swf(std::istream& in, const std::string& source) {
  SwfStreamReader reader(in, source);
  SwfTrace trace;
  TraceRecord record;
  while (reader.next(record)) trace.records.push_back(record);
  trace.header_comments = reader.header().comments;
  return trace;
}

SwfTrace read_swf_file(const std::string& path) {
  std::ifstream in(path);
  MCSIM_REQUIRE(in.good(), "cannot open trace file: " + path);
  return read_swf(in, path);
}

void write_swf(std::ostream& out, const SwfTrace& trace) {
  for (const auto& comment : trace.header_comments) out << "; " << comment << '\n';
  for (const auto& rec : trace.records) {
    // 18 SWF fields; unmodelled ones are -1. Times are printed with
    // round-trip precision: wait and run are stored fields of TraceRecord,
    // so write -> read reproduces them bit-exactly.
    out << rec.job_id << ' '                                  // 1 job id
        << format_double_roundtrip(rec.submit_time) << ' '    // 2 submit
        << format_double_roundtrip(rec.wait_time) << ' '      // 3 wait
        << format_double_roundtrip(rec.run_time) << ' '       // 4 run time
        << rec.processors << ' '                     // 5 allocated procs
        << -1 << ' '                                 // 6 avg cpu time
        << -1 << ' '                                 // 7 used memory
        << rec.processors << ' '                     // 8 requested procs
        << -1 << ' '                                 // 9 requested time
        << -1 << ' '                                 // 10 requested memory
        << (rec.killed_by_limit ? 5 : 1) << ' '      // 11 status
        << rec.user_id << ' '                        // 12 user id
        << -1 << ' ' << -1 << ' ' << -1 << ' '       // 13 group, 14 app, 15 queue
        << -1 << ' ' << -1 << ' ' << -1 << '\n';     // 16 partition, 17 prev job, 18 think time
  }
}

void write_swf_file(const std::string& path, const SwfTrace& trace) {
  std::ofstream out(path);
  MCSIM_REQUIRE(out.good(), "cannot open trace file for writing: " + path);
  write_swf(out, trace);
}

}  // namespace mcsim
