#include "trace/swf.hpp"

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "util/assert.hpp"
#include "util/strings.hpp"

namespace mcsim {

namespace {
[[noreturn]] void parse_error(const std::string& source, std::size_t line_no,
                              const std::string& message) {
  // file:line prefix so a malformed record in a megabyte archive log can
  // actually be found.
  MCSIM_REQUIRE(false, source + ":" + std::to_string(line_no) + ": " + message);
  std::abort();  // unreachable: MCSIM_REQUIRE(false, ...) always throws
}
}  // namespace

SwfTrace read_swf(std::istream& in, const std::string& source) {
  SwfTrace trace;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    // trim() also strips '\r', so CRLF logs (common in archive downloads)
    // parse the same as LF ones.
    const std::string_view trimmed = trim(line);
    if (trimmed.empty()) continue;
    if (trimmed.front() == ';') {
      trace.header_comments.emplace_back(trim(trimmed.substr(1)));
      continue;
    }

    // SWF prescribes 18 whitespace-separated fields, but real Parallel
    // Workloads Archive logs sometimes truncate unused trailing columns;
    // absent fields read as -1 ("unknown"), exactly as SWF spells missing
    // values. Extra columns are an error: the line is not SWF.
    double field[18];
    for (double& f : field) f = -1.0;
    std::size_t count = 0;
    std::size_t pos = 0;
    while (pos < trimmed.size()) {
      while (pos < trimmed.size() && (trimmed[pos] == ' ' || trimmed[pos] == '\t')) ++pos;
      if (pos >= trimmed.size()) break;
      std::size_t end = pos;
      while (end < trimmed.size() && trimmed[end] != ' ' && trimmed[end] != '\t') ++end;
      const std::string token{trimmed.substr(pos, end - pos)};
      if (count >= 18) {
        parse_error(source, line_no, "expected at most 18 fields, found more");
      }
      char* parsed_end = nullptr;
      const double value = std::strtod(token.c_str(), &parsed_end);
      if (parsed_end != token.c_str() + token.size() || token.empty()) {
        parse_error(source, line_no,
                    "field " + std::to_string(count + 1) + " is not a number: '" +
                        token + "'");
      }
      field[count++] = value;
      pos = end;
    }

    TraceRecord rec;
    rec.job_id = static_cast<std::uint64_t>(field[0]);
    rec.submit_time = field[1];
    rec.wait_time = field[2] >= 0 ? field[2] : 0.0;
    rec.run_time = field[3] >= 0 ? field[3] : 0.0;
    const double alloc = field[4] >= 0 ? field[4] : field[7];
    if (alloc < 0) {
      parse_error(source, line_no,
                  "no processor count (allocated and requested both missing)");
    }
    rec.processors = static_cast<std::uint32_t>(alloc);
    rec.killed_by_limit = static_cast<int>(field[10]) == 5;
    rec.user_id = field[11] >= 0 ? static_cast<std::uint32_t>(field[11]) : 0;
    trace.records.push_back(rec);
  }
  return trace;
}

SwfTrace read_swf_file(const std::string& path) {
  std::ifstream in(path);
  MCSIM_REQUIRE(in.good(), "cannot open trace file: " + path);
  return read_swf(in, path);
}

void write_swf(std::ostream& out, const SwfTrace& trace) {
  for (const auto& comment : trace.header_comments) out << "; " << comment << '\n';
  for (const auto& rec : trace.records) {
    // 18 SWF fields; unmodelled ones are -1. Times are printed with
    // round-trip precision: wait and run are stored fields of TraceRecord,
    // so write -> read reproduces them bit-exactly.
    out << rec.job_id << ' '                                  // 1 job id
        << format_double_roundtrip(rec.submit_time) << ' '    // 2 submit
        << format_double_roundtrip(rec.wait_time) << ' '      // 3 wait
        << format_double_roundtrip(rec.run_time) << ' '       // 4 run time
        << rec.processors << ' '                     // 5 allocated procs
        << -1 << ' '                                 // 6 avg cpu time
        << -1 << ' '                                 // 7 used memory
        << rec.processors << ' '                     // 8 requested procs
        << -1 << ' '                                 // 9 requested time
        << -1 << ' '                                 // 10 requested memory
        << (rec.killed_by_limit ? 5 : 1) << ' '      // 11 status
        << rec.user_id << ' '                        // 12 user id
        << -1 << ' ' << -1 << ' ' << -1 << ' '       // 13 group, 14 app, 15 queue
        << -1 << ' ' << -1 << ' ' << -1 << '\n';     // 16 partition, 17 prev job, 18 think time
  }
}

void write_swf_file(const std::string& path, const SwfTrace& trace) {
  std::ofstream out(path);
  MCSIM_REQUIRE(out.good(), "cannot open trace file for writing: " + path);
  write_swf(out, trace);
}

}  // namespace mcsim
