// Reader/writer for a Standard-Workload-Format-style (SWF) trace file.
//
// We use the community SWF column layout (Feitelson's Parallel Workloads
// Archive): 18 whitespace-separated fields per job line, ';' comments in a
// header. Only the fields the model needs are populated; the others are -1
// as SWF prescribes. This makes our synthetic DAS1 log loadable by standard
// tooling and lets users feed real SWF traces into the simulator.
//
// Field map used (1-based SWF numbering):
//   1 job id | 2 submit | 3 wait | 4 run time | 5 allocated procs
//   8 requested procs | 12 user id | 11 status (1 completed, 5 killed)
// TraceRecord stores exactly the quantities SWF carries (submit, wait,
// run), and times are written with round-trip precision (%.17g), so a
// write -> read cycle reproduces every record bit-exactly — the property
// the observability layer's export pipeline relies on (docs/TRACING.md).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "trace/record.hpp"

namespace mcsim {

struct SwfTrace {
  std::vector<std::string> header_comments;  // without the leading ';'
  std::vector<TraceRecord> records;
};

/// Parse an SWF stream into memory, whole-file. Tolerant of what real
/// Parallel Workloads Archive logs contain: CRLF line endings, blank
/// lines, ';' comments anywhere, and truncated lines (absent trailing
/// fields read as -1, SWF's "unknown"). Throws std::invalid_argument on
/// anything else — non-numeric fields, more than 18 columns, a record with
/// no processor count, a malformed header directive, or a record wider
/// than the header's declared machine — with a `source:line:` prefix
/// locating the offending line. Implemented over the incremental
/// SwfStreamReader (trace/swf_stream.hpp), which is what archive-scale
/// replay uses directly to keep memory O(1) in the log length.
SwfTrace read_swf(std::istream& in, const std::string& source = "<swf>");

/// Load from a file path.
SwfTrace read_swf_file(const std::string& path);

/// Write records in SWF format with the given header comments.
void write_swf(std::ostream& out, const SwfTrace& trace);

void write_swf_file(const std::string& path, const SwfTrace& trace);

}  // namespace mcsim
