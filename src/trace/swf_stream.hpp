// Incremental SWF reader: the streaming core behind read_swf and the
// archive-scale replay path (docs/WORKLOADS.md).
//
// SwfStreamReader parses one line per next() call, so a caller can walk a
// multi-million-job Parallel Workloads Archive log at O(1) memory. It
// carries all of read_swf's hardening (CRLF, blank lines, ';' comments
// anywhere, truncated trailing fields read as -1, full-token number
// parsing, `file:line:` diagnostics) and adds the archive header dialect:
//
//   * `; Key: value` directive lines (MaxJobs, MaxRecords, MaxNodes,
//     MaxProcs, MaxRuntime, MaxQueues, MaxPartitions, UnixStartTime) are
//     parsed into SwfHeaderInfo. A known directive with a non-numeric
//     value is a `file:line:` error; unknown keys stay plain comments.
//   * When the header declares MaxProcs (or, failing that, MaxNodes), a
//     record requesting more processors than the machine the log says it
//     came from is rejected with a `file:line:` error — the log is
//     internally inconsistent and silently replaying it would misreport
//     utilization.
//
// read_swf (trace/swf.hpp) is a thin whole-file wrapper over this class.
#pragma once

#include <cstdint>
#include <fstream>
#include <istream>
#include <string>
#include <vector>

#include "trace/record.hpp"
#include "workload/trace_source.hpp"

namespace mcsim {

/// The numeric header directives the Parallel Workloads Archive defines
/// (all -1 = not declared), plus every header/mid-file comment line
/// verbatim (trimmed, without the leading ';') in file order.
struct SwfHeaderInfo {
  std::int64_t max_jobs = -1;
  std::int64_t max_records = -1;
  std::int64_t max_nodes = -1;
  std::int64_t max_procs = -1;
  std::int64_t max_runtime = -1;
  std::int64_t max_queues = -1;
  std::int64_t max_partitions = -1;
  std::int64_t unix_start_time = -1;
  std::vector<std::string> comments;

  /// The machine size the header declares: MaxProcs when given, else
  /// MaxNodes (single-processor-node systems often declare only nodes),
  /// else -1.
  [[nodiscard]] std::int64_t declared_processors() const {
    return max_procs >= 0 ? max_procs : max_nodes;
  }
};

class SwfStreamReader {
 public:
  /// Parse from a caller-owned stream. `source` names the input in
  /// diagnostics (a path, or "<swf>" style placeholder).
  SwfStreamReader(std::istream& in, std::string source);

  /// Advance to the next job record, skipping blanks and comment lines
  /// (directives are folded into header() as they are passed). Returns
  /// false at end of input. Throws std::invalid_argument with a
  /// `source:line:` prefix on malformed input.
  bool next(TraceRecord& out);

  /// Directives and comments seen so far. SWF puts the header before the
  /// first record, so after the first next() this is complete for
  /// well-formed logs.
  [[nodiscard]] const SwfHeaderInfo& header() const { return header_; }

  [[nodiscard]] std::uint64_t records_read() const { return records_read_; }
  /// Lines consumed so far (1-based number of the last line read).
  [[nodiscard]] std::uint64_t line_number() const { return line_no_; }
  [[nodiscard]] const std::string& source() const { return source_; }

 private:
  std::istream& in_;
  std::string source_;
  SwfHeaderInfo header_;
  std::string line_;
  std::uint64_t line_no_ = 0;
  std::uint64_t records_read_ = 0;
};

/// File-backed TraceRecordSource: owns the ifstream and a SwfStreamReader
/// over it. This is what TraceWorkload pulls from in streaming mode — one
/// instance per engine, created through TraceWorkloadConfig::open_source.
class SwfFileStream final : public TraceRecordSource {
 public:
  explicit SwfFileStream(const std::string& path);

  bool next(TraceRecord& out) override;

  [[nodiscard]] const SwfHeaderInfo& header() const { return reader_.header(); }
  [[nodiscard]] const SwfStreamReader& reader() const { return reader_; }

 private:
  std::ifstream file_;
  SwfStreamReader reader_;
};

/// Everything one O(1)-memory pass over a log yields: the header
/// directives and the stream summary. This is the pre-scan the scenario
/// loader runs before replay — it derives total_jobs, the
/// utilization-target arrival scale and the per-log machine size without
/// ever materialising the records.
struct SwfScan {
  SwfHeaderInfo header;
  TraceStreamSummary summary;
};

[[nodiscard]] SwfScan scan_swf_file(const std::string& path);

}  // namespace mcsim
