// Synthetic DAS1 log generator (the data substitution; see DESIGN.md).
//
// The real DAS1 log is unavailable, so we synthesise a three-month log of
// the 128-processor Delft cluster that reproduces every statistic the paper
// reports about it:
//   * ~30 000 jobs from 20 users over three months;
//   * job sizes drawn from the reconstructed DAS-s-128 distribution
//     (58 distinct values in [1,128], Table 1 power-of-two fractions);
//   * service times from a two-population (interactive/batch) model, with
//     jobs submitted during working hours killed at the 15-minute limit
//     exactly as the DAS operations did — which is what puts the large
//     mass below 900 s that motivates the DAS-t-900 cut;
//   * a day/night submission-intensity profile.
//
// The generated trace is written/read in SWF form and feeds the empirical-
// distribution path (trace/empirical.hpp), closing the loop: benches derive
// the simulation inputs from the trace just as the authors derived theirs
// from the log.
#pragma once

#include <cstdint>

#include "trace/swf.hpp"

namespace mcsim {

struct SyntheticLogConfig {
  std::uint64_t num_jobs = 30000;
  std::uint32_t num_users = 20;
  std::uint32_t cluster_size = 128;
  /// Log span target; arrival intensity is set so num_jobs fit in it.
  double duration_seconds = 90.0 * 24 * 3600;  // three months
  /// Working-hours kill limit (PBS enforced 15 minutes on the DAS).
  double working_hours_limit = 900.0;
  /// false: day/night-modulated Poisson submissions (default).
  /// true: per-user session model (bursty, correlated per user); submit
  /// times are rescaled to fit duration_seconds.
  bool user_sessions = false;
  std::uint64_t seed = 20031128;
};

/// Generate the synthetic log. Records are sorted by submit time; start and
/// end times come from a simple FCFS backfilling replay on the single
/// cluster so waits are realistic rather than zero.
SwfTrace generate_synthetic_das1_log(const SyntheticLogConfig& config);

/// True if `time_of_day_seconds` (0..86400) falls in working hours
/// (Mon-Fri 9:00-17:00 is approximated as a daily 9-17 window; the paper's
/// statistics are insensitive to weekends).
bool in_working_hours(double time_in_day_seconds);

/// The daily submission-intensity profile used by the generator (1.0 at the
/// working-day peak, lower at night).
double das1_daily_profile(double time_in_day_seconds);

}  // namespace mcsim
