// Statistics over a trace: everything the paper reports about the DAS1 log
// (Sect. 2.4) — job-size density and its power-of-two mass (Fig. 1,
// Table 1), service-time density (Fig. 2), distinct value counts, means and
// CVs, and the fraction of jobs under the 15-minute limit.
#pragma once

#include <cstdint>
#include <vector>

#include "stats/histogram.hpp"
#include "trace/record.hpp"

namespace mcsim {

struct TraceSummary {
  std::uint64_t job_count = 0;
  std::uint32_t user_count = 0;
  double duration = 0.0;  // last end - first submit

  // Job sizes.
  std::size_t distinct_sizes = 0;
  double mean_size = 0.0;
  double size_cv = 0.0;
  std::uint32_t min_size = 0;
  std::uint32_t max_size = 0;
  double power_of_two_fraction = 0.0;

  // Service times.
  double mean_service = 0.0;
  double service_cv = 0.0;
  double fraction_under_15min = 0.0;
};

TraceSummary summarize_trace(const std::vector<TraceRecord>& records);

/// Exact per-size job counts (the Fig. 1 density).
DiscreteHistogram job_size_density(const std::vector<TraceRecord>& records);

/// Service-time histogram over [0, hi) with `bins` bins (the Fig. 2 density).
Histogram service_time_density(const std::vector<TraceRecord>& records, double hi = 900.0,
                               std::size_t bins = 90);

/// Fraction of jobs whose size is exactly `size`.
double fraction_with_size(const std::vector<TraceRecord>& records, std::uint32_t size);

/// Keep only records with processors <= max_size (the DAS-s-64 cut).
std::vector<TraceRecord> cut_by_size(const std::vector<TraceRecord>& records,
                                     std::uint32_t max_size);

/// Keep only records with service time <= max_service (the DAS-t-900 cut).
std::vector<TraceRecord> cut_by_service(const std::vector<TraceRecord>& records,
                                        double max_service);

}  // namespace mcsim
