#include "policy/pipeline.hpp"

#include "util/assert.hpp"
#include "util/strings.hpp"

namespace mcsim {

const char* queue_structure_name(QueueStructure structure) {
  switch (structure) {
    case QueueStructure::kSingleGlobal: return "single";
    case QueueStructure::kPerCluster: return "per-cluster";
    case QueueStructure::kLocalPlusGlobal: return "local-global";
  }
  return "?";
}

const char* queue_structure_short_name(QueueStructure structure) {
  switch (structure) {
    case QueueStructure::kSingleGlobal: return "1q";
    case QueueStructure::kPerCluster: return "pc";
    case QueueStructure::kLocalPlusGlobal: return "lg";
  }
  return "?";
}

QueueStructure parse_queue_structure(const std::string& name) {
  const std::string lower = to_lower(name);
  if (lower == "single" || lower == "global" || lower == "1q") {
    return QueueStructure::kSingleGlobal;
  }
  if (lower == "per-cluster" || lower == "local" || lower == "pc") {
    return QueueStructure::kPerCluster;
  }
  if (lower == "local-global" || lower == "local+global" || lower == "lg") {
    return QueueStructure::kLocalPlusGlobal;
  }
  MCSIM_REQUIRE(false, "unknown queue structure: " + name +
                           " (expected single, per-cluster, or local-global)");
  return QueueStructure::kSingleGlobal;
}

std::string coallocation_rule_name(const CoAllocationRule& rule) {
  switch (rule.kind) {
    case CoAllocationRule::Kind::kUnrestricted: return "co";
    case CoAllocationRule::Kind::kLocalOnly: return "no-co";
    case CoAllocationRule::Kind::kComponentLimit:
      return "limit-" + std::to_string(rule.component_limit);
  }
  return "?";
}

CoAllocationRule parse_coallocation_rule(const std::string& name) {
  const std::string lower = to_lower(name);
  if (lower == "co" || lower == "unrestricted") {
    return CoAllocationRule{CoAllocationRule::Kind::kUnrestricted, 0};
  }
  if (lower == "no-co" || lower == "local-only") {
    return CoAllocationRule{CoAllocationRule::Kind::kLocalOnly, 0};
  }
  if (lower.rfind("limit-", 0) == 0) {
    const std::string digits = lower.substr(6);
    MCSIM_REQUIRE(!digits.empty() &&
                      digits.find_first_not_of("0123456789") == std::string::npos,
                  "co-allocation limit is not a number: " + name);
    const unsigned long limit = std::stoul(digits);
    return CoAllocationRule{CoAllocationRule::Kind::kComponentLimit,
                            static_cast<std::uint32_t>(limit)};
  }
  MCSIM_REQUIRE(false, "unknown co-allocation rule: " + name +
                           " (expected co, no-co, or limit-<L>)");
  return CoAllocationRule{};
}

PipelineSpec expand_policy(PolicyKind kind, PlacementRule placement,
                           BackfillMode backfill, QueueDiscipline discipline) {
  PipelineSpec pipeline;
  pipeline.placement = placement;
  pipeline.backfill = backfill;
  pipeline.discipline = discipline;
  switch (kind) {
    case PolicyKind::kGS:
    case PolicyKind::kSC:
      pipeline.structure = QueueStructure::kSingleGlobal;
      pipeline.coallocation = {CoAllocationRule::Kind::kUnrestricted, 0};
      break;
    case PolicyKind::kLS:
      pipeline.structure = QueueStructure::kPerCluster;
      pipeline.coallocation = {CoAllocationRule::Kind::kLocalOnly, 0};
      break;
    case PolicyKind::kLP:
      pipeline.structure = QueueStructure::kLocalPlusGlobal;
      pipeline.coallocation = {CoAllocationRule::Kind::kLocalOnly, 0};
      break;
  }
  return pipeline;
}

void validate_pipeline(const PipelineSpec& pipeline) {
  // The backfilling stages reason about the aggregate future idle capacity
  // of the whole system, which only lines up with a single global queue;
  // LS's rotation already provides its own backfilling window (Sect.
  // 3.1.1). Per-cluster compositions with backfill reject deterministically.
  MCSIM_REQUIRE(pipeline.backfill == BackfillMode::kNone ||
                    pipeline.structure == QueueStructure::kSingleGlobal,
                std::string("pipeline: backfilling (") +
                    backfill_mode_name(pipeline.backfill) +
                    ") requires the single global queue structure, not " +
                    queue_structure_name(pipeline.structure));
  if (pipeline.coallocation.kind == CoAllocationRule::Kind::kComponentLimit) {
    MCSIM_REQUIRE(pipeline.coallocation.component_limit >= 1,
                  "pipeline: co-allocation component limit must be >= 1");
  } else {
    MCSIM_REQUIRE(pipeline.coallocation.component_limit == 0,
                  "pipeline: component_limit applies to the limit-<L> rule only");
  }
}

std::string scheduler_display_name(PolicyKind kind, const PipelineSpec& pipeline) {
  const PipelineSpec canonical = expand_policy(kind);
  std::string name;
  if (pipeline.structure == canonical.structure &&
      pipeline.coallocation == canonical.coallocation) {
    name = policy_name(kind);
  } else {
    name = std::string(queue_structure_short_name(pipeline.structure)) + "/" +
           coallocation_rule_name(pipeline.coallocation);
  }
  if (pipeline.backfill != BackfillMode::kNone) {
    name += std::string("+") + backfill_mode_name(pipeline.backfill);
  }
  if (pipeline.discipline != QueueDiscipline::kFcfs) {
    name += std::string("+") + queue_discipline_name(pipeline.discipline);
  }
  if (pipeline.placement != PlacementRule::kWorstFit) {
    name += std::string("+") + to_lower(placement_rule_name(pipeline.placement));
  }
  return name;
}

}  // namespace mcsim
