#include "policy/composed_scheduler.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "util/assert.hpp"

namespace mcsim {

namespace {
/// Conservative backfilling reserves a profile slot for every queued job it
/// scans; bounding the scan keeps one scheduling round O(depth^2) even when
/// a run is driven into instability (queues of tens of thousands of jobs).
/// Jobs beyond the window neither start nor hold reservations that round —
/// deterministic, and irrelevant at the stable utilizations the scenarios
/// run at.
constexpr std::size_t kConservativeScanDepth = 256;
}  // namespace

ComposedScheduler::ComposedScheduler(SchedulerContext& context, PipelineSpec pipeline,
                                     std::string display_name)
    : Scheduler(context, pipeline.placement),
      pipeline_(pipeline),
      display_name_(std::move(display_name)) {
  validate_pipeline(pipeline_);
  const JobOrder order = make_job_order(pipeline_.discipline);
  global_.set_order(order);
  if (pipeline_.structure != QueueStructure::kSingleGlobal) {
    const std::uint32_t n = context_.system().num_clusters();
    locals_.resize(n);
    for (JobQueue& queue : locals_) queue.set_order(order);
    if (pipeline_.structure == QueueStructure::kPerCluster) {
      visit_order_.reserve(n);
      for (std::uint32_t i = 0; i < n; ++i) visit_order_.push_back(i);
    }
  }
}

std::optional<Allocation> ComposedScheduler::place_for(Job& job,
                                                       std::int32_t local_cluster) {
  switch (pipeline_.coallocation.kind) {
    case CoAllocationRule::Kind::kUnrestricted:
      return try_place(job);
    case CoAllocationRule::Kind::kLocalOnly: {
      if (job.spec.needs_coallocation()) return try_place(job);
      const std::uint32_t cluster = local_cluster >= 0
                                        ? static_cast<std::uint32_t>(local_cluster)
                                        : job.spec.origin_queue;
      MCSIM_REQUIRE(cluster < context_.system().num_clusters(),
                    "origin queue out of range");
      return try_place_local(job, static_cast<ClusterId>(cluster));
    }
    case CoAllocationRule::Kind::kComponentLimit:
      if (!job.spec.needs_coallocation() ||
          job.spec.component_count() <= pipeline_.coallocation.component_limit) {
        return try_place(job);
      }
      // Too many components to co-allocate: the job must fit whole on one
      // cluster.
      return try_place_whole(job);
  }
  return std::nullopt;
}

void ComposedScheduler::submit(JobPtr job) {
  switch (pipeline_.structure) {
    case QueueStructure::kSingleGlobal:
      job->queue_class = QueueClass::kGlobal;
      global_.push(job);
      try_schedule_single();
      break;
    case QueueStructure::kPerCluster: {
      const std::uint32_t qid = job->spec.origin_queue;
      MCSIM_REQUIRE(qid < locals_.size(), "origin queue out of range");
      job->queue_class = QueueClass::kLocal;
      locals_[qid].push(job);
      try_schedule_rotation();
      break;
    }
    case QueueStructure::kLocalPlusGlobal:
      if (job->spec.needs_coallocation()) {
        job->queue_class = QueueClass::kGlobal;
        global_.push(job);
      } else {
        const std::uint32_t qid = job->spec.origin_queue;
        MCSIM_REQUIRE(qid < locals_.size(), "origin queue out of range");
        job->queue_class = QueueClass::kLocal;
        locals_[qid].push(job);
      }
      try_schedule_priority();
      break;
  }
}

void ComposedScheduler::on_departure() {
  switch (pipeline_.structure) {
    case QueueStructure::kSingleGlobal:
      if (pipeline_.backfill != BackfillMode::kNone) {
        running_.prune(context_.now());
      }
      try_schedule_single();
      break;
    case QueueStructure::kPerCluster:
      // Re-enable in disable order, appending to the visit rotation.
      for (std::uint32_t qid : disabled_order_) {
        locals_[qid].enable();
        visit_order_.push_back(qid);
      }
      disabled_order_.clear();
      try_schedule_rotation();
      break;
    case QueueStructure::kLocalPlusGlobal:
      // All queues are re-enabled; whether the global queue actually gets
      // visited still depends on a local queue being empty (checked in the
      // round loop), which realises "if no local queue is empty only the
      // local queues are enabled".
      global_.enable();
      for (JobQueue& queue : locals_) queue.enable();
      try_schedule_priority();
      break;
  }
}

// ---- kSingleGlobal (historical PolicyGs) -------------------------------

void ComposedScheduler::start_at(std::size_t index, Allocation allocation) {
  JobPtr job = global_.remove_at(index);
  if (pipeline_.backfill != BackfillMode::kNone) {
    running_.on_start(context_.now() + job->spec.gross_service_time,
                      job->spec.total_size);
  }
  context_.start_job(job, std::move(allocation));
}

void ComposedScheduler::try_schedule_single() {
  // FCFS part, common to all modes: start head jobs while they fit.
  while (!global_.empty()) {
    auto allocation = place_for(*global_.front(), -1);
    if (!allocation) break;
    start_at(0, std::move(*allocation));
  }
  if (global_.size() < 2) return;
  switch (pipeline_.backfill) {
    case BackfillMode::kNone: break;
    case BackfillMode::kAggressive: backfill_aggressive(); break;
    case BackfillMode::kEasy: backfill_easy(); break;
    case BackfillMode::kConservative: backfill_conservative(); break;
  }
}

void ComposedScheduler::backfill_aggressive() {
  // Scan past the (blocked) head and start anything that fits, in order.
  std::size_t index = 1;
  while (index < global_.size()) {
    auto allocation = place_for(*global_.at(index), -1);
    if (allocation) {
      start_at(index, std::move(*allocation));
      // Do not advance: the next job shifted into this slot.
    } else {
      ++index;
    }
  }
}

void ComposedScheduler::backfill_easy() {
  // The head is blocked: give it a reservation at time t_res, with `extra`
  // processors spare at that moment. A later job may start now iff it fits
  // now AND either completes by t_res or leaves the reservation intact
  // (total size within the spare processors).
  const auto [t_res, extra] = running_.head_reservation(
      context_.system().total_idle(), global_.front()->spec.total_size);
  const double now = context_.now();
  std::uint32_t spare = extra;
  std::size_t index = 1;
  while (index < global_.size()) {
    const Job& job = *global_.at(index);
    const bool ends_in_time = now + job.spec.gross_service_time <= t_res;
    const bool within_spare = job.spec.total_size <= spare;
    if (!ends_in_time && !within_spare) {
      ++index;
      continue;
    }
    auto allocation = place_for(*global_.at(index), -1);
    if (!allocation) {
      ++index;
      continue;
    }
    if (!ends_in_time) spare -= job.spec.total_size;
    start_at(index, std::move(*allocation));
  }
}

void ComposedScheduler::backfill_conservative() {
  // Every scanned job gets a reservation at the earliest slot of the
  // aggregate availability profile; a job starts now only when its own
  // earliest slot is now, so no start can delay any reservation made for a
  // job ahead of it — the no-starvation guarantee aggressive backfilling
  // gives up.
  const double now = context_.now();
  profile_.reset(now, context_.system().total_idle(), running_.running());
  std::size_t index = 0;
  std::size_t scanned = 0;
  while (index < global_.size() && scanned < kConservativeScanDepth) {
    ++scanned;
    Job& job = *global_.at(index);
    const double start =
        profile_.earliest_fit(job.spec.total_size, job.spec.gross_service_time);
    if (!std::isfinite(start)) {
      // Wider than the machine ever gets — leave it to block FCFS-style.
      ++index;
      continue;
    }
    if (start <= now) {
      auto allocation = place_for(job, -1);
      if (allocation) {
        profile_.reserve(now, job.spec.gross_service_time, job.spec.total_size);
        start_at(index, std::move(*allocation));
        continue;  // the next job shifted into this slot
      }
      // The aggregate count fits but the per-cluster layout does not
      // (fragmentation): hold the capacity anyway so later jobs cannot
      // take it and push this one further back.
    }
    profile_.reserve(std::max(start, now), job.spec.gross_service_time,
                     job.spec.total_size);
    ++index;
  }
}

// ---- kPerCluster (historical PolicyLs) ---------------------------------

void ComposedScheduler::try_schedule_rotation() {
  bool any_started = true;
  while (any_started) {
    any_started = false;
    // Snapshot: queues disabled during this round drop out of the rotation
    // for subsequent rounds but finish being skipped in this one.
    const std::vector<std::uint32_t> round = visit_order_;
    for (std::uint32_t qid : round) {
      JobQueue& queue = locals_[qid];
      if (!queue.enabled() || queue.empty()) continue;
      Job& head = *queue.front();
      auto allocation = place_for(head, static_cast<std::int32_t>(qid));
      if (allocation) {
        context_.start_job(queue.pop(), std::move(*allocation));
        any_started = true;
      } else {
        disable_queue(qid);
      }
    }
  }
}

void ComposedScheduler::disable_queue(std::uint32_t qid) {
  MCSIM_ASSERT(locals_[qid].enabled());
  locals_[qid].disable();
  disabled_order_.push_back(qid);
  visit_order_.erase(std::remove(visit_order_.begin(), visit_order_.end(), qid),
                     visit_order_.end());
}

// ---- kLocalPlusGlobal (historical PolicyLp) ----------------------------

bool ComposedScheduler::some_local_empty() const {
  return std::any_of(locals_.begin(), locals_.end(),
                     [](const JobQueue& q) { return q.empty(); });
}

void ComposedScheduler::try_schedule_priority() {
  bool any_started = true;
  while (any_started) {
    any_started = false;

    // The global queue is visited first ("they are always enabled starting
    // with the global queue"), but only while it has priority clearance:
    // at least one local queue empty and no unfitting head since the last
    // departure.
    if (global_.enabled() && !global_.empty() && some_local_empty()) {
      auto allocation = place_for(*global_.front(), -1);
      if (allocation) {
        context_.start_job(global_.pop(), std::move(*allocation));
        any_started = true;
      } else {
        global_.disable();
      }
    }

    for (std::uint32_t qid = 0; qid < locals_.size(); ++qid) {
      JobQueue& queue = locals_[qid];
      if (!queue.enabled() || queue.empty()) continue;
      auto allocation = place_for(*queue.front(), static_cast<std::int32_t>(qid));
      if (allocation) {
        context_.start_job(queue.pop(), std::move(*allocation));
        any_started = true;
      } else {
        queue.disable();
      }
    }
  }
}

// ---- aggregates --------------------------------------------------------

std::size_t ComposedScheduler::queued_jobs() const {
  std::size_t total = global_.size();
  for (const JobQueue& queue : locals_) total += queue.size();
  return total;
}

std::size_t ComposedScheduler::max_queue_length() const {
  std::size_t longest = global_.size();
  for (const JobQueue& queue : locals_) longest = std::max(longest, queue.size());
  return longest;
}

std::vector<std::size_t> ComposedScheduler::queue_lengths() const {
  switch (pipeline_.structure) {
    case QueueStructure::kSingleGlobal:
      return {global_.size()};
    case QueueStructure::kPerCluster: {
      std::vector<std::size_t> lengths;
      lengths.reserve(locals_.size());
      for (const JobQueue& queue : locals_) lengths.push_back(queue.size());
      return lengths;
    }
    case QueueStructure::kLocalPlusGlobal: {
      // Local queue lengths followed by the global queue length.
      std::vector<std::size_t> lengths;
      lengths.reserve(locals_.size() + 1);
      for (const JobQueue& queue : locals_) lengths.push_back(queue.size());
      lengths.push_back(global_.size());
      return lengths;
    }
  }
  return {};
}

}  // namespace mcsim
