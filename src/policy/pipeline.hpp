// The composable scheduling pipeline (docs/SCHEDULING.md).
//
// The paper's four policies (GS, LS, LP, SC — Sect. 2.5) are points in a
// larger space spanned by four orthogonal stages:
//
//   queue structure   one global queue | per-cluster queues | locals + global
//   queue stage       service order within each queue (QueueDiscipline)
//   backfill stage    none | aggressive | EASY | conservative
//   placement stage   WF | FF | BF | load-aware (cluster/placement.hpp)
//   co-allocation     unrestricted [co] | local-only [no-co] | component-limit L
//
// A PipelineSpec names one composition; expand_policy() maps each paper
// policy to its canonical composition (the aliases the scenario schema
// keeps accepting), and the factory builds one ComposedScheduler for any
// valid spec. GS/LS/LP/SC are pinned bit-exact against the sealed golden
// corpus as compositions (tests/policy_equivalence_test.cpp).
#pragma once

#include <string>

#include "cluster/placement.hpp"
#include "policy/scheduler.hpp"
#include "policy/scheduler_factory.hpp"

namespace mcsim {

/// How arriving jobs are organised into queues.
enum class QueueStructure : std::uint8_t {
  kSingleGlobal,     // one queue for every job (GS, SC)
  kPerCluster,       // one queue per cluster, rotating visits (LS)
  kLocalPlusGlobal,  // local queues + a global queue for wide jobs (LP)
};

const char* queue_structure_name(QueueStructure structure);
/// Short tag used in derived scheduler display names ("1q", "pc", "lg").
const char* queue_structure_short_name(QueueStructure structure);
/// Parse a queue-structure name ("single", "per-cluster", "local-global";
/// case-insensitive). Throws std::invalid_argument otherwise.
QueueStructure parse_queue_structure(const std::string& name);

/// Which clusters a job may be served from.
struct CoAllocationRule {
  enum class Kind : std::uint8_t {
    kUnrestricted,    // "co": any job may span clusters (GS, SC)
    kLocalOnly,       // "no-co": single-component jobs stay on their origin
                      // cluster; multi-component jobs co-allocate (LS, LP)
    kComponentLimit,  // "limit-L": jobs with more than L components are not
                      // co-allocated — they must fit whole on one cluster
  };
  Kind kind = Kind::kUnrestricted;
  /// Maximum number of co-allocated components (kComponentLimit only).
  std::uint32_t component_limit = 0;

  bool operator==(const CoAllocationRule&) const = default;
};

/// "co", "no-co", or "limit-<L>".
std::string coallocation_rule_name(const CoAllocationRule& rule);
/// Parse a co-allocation rule ("co"/"unrestricted", "no-co"/"local-only",
/// "limit-<L>"; case-insensitive). Throws std::invalid_argument otherwise.
CoAllocationRule parse_coallocation_rule(const std::string& name);

/// One point in the composition space. Default-constructed this is the
/// canonical GS pipeline.
struct PipelineSpec {
  QueueStructure structure = QueueStructure::kSingleGlobal;
  QueueDiscipline discipline = QueueDiscipline::kFcfs;
  BackfillMode backfill = BackfillMode::kNone;
  PlacementRule placement = PlacementRule::kWorstFit;
  CoAllocationRule coallocation;

  bool operator==(const PipelineSpec&) const = default;
};

/// The canonical composition of a paper policy: GS/SC = single global queue
/// with unrestricted co-allocation, LS = per-cluster queues with local-only
/// co-allocation, LP = locals + global with local-only co-allocation. The
/// three tuning knobs carry over unchanged.
PipelineSpec expand_policy(PolicyKind kind,
                           PlacementRule placement = PlacementRule::kWorstFit,
                           BackfillMode backfill = BackfillMode::kNone,
                           QueueDiscipline discipline = QueueDiscipline::kFcfs);

/// Check a composition for internal consistency. Backfilling needs the one
/// global queue (the reservation reasons about the whole system's future
/// idle capacity; per-cluster structures reject deterministically), and a
/// component limit must allow at least one co-allocated component. Throws
/// std::invalid_argument naming the offending stage.
void validate_pipeline(const PipelineSpec& pipeline);

/// The display name a scheduler built from (kind, pipeline) reports: the
/// policy alias for the structural part when it matches the kind's canonical
/// expansion ("GS", "LS", ...), otherwise "<structure>/<coallocation>"
/// (e.g. "pc/co"); then "+<backfill>" when backfilling, "+<discipline>"
/// when not FCFS, and "+<placement>" when not WF — so the legacy names
/// ("GS", "GS+easy-bf+sjf") are reproduced exactly.
std::string scheduler_display_name(PolicyKind kind, const PipelineSpec& pipeline);

}  // namespace mcsim
