#include "policy/queue.hpp"

#include "util/assert.hpp"

namespace mcsim {

void JobQueue::set_order(JobOrder order) {
  MCSIM_REQUIRE(jobs_.empty(), "service order must be set before jobs arrive");
  order_ = order;
}

void JobQueue::push(JobPtr job) {
  MCSIM_REQUIRE(job != nullptr, "cannot enqueue a null job");
  if (order_ == nullptr) {
    jobs_.push_back(job);
  } else {
    // Stable priority insert: after all jobs that are not strictly worse.
    auto it = jobs_.begin();
    while (it != jobs_.end() && !order_(*job, **it)) ++it;
    jobs_.insert(it, job);
  }
  ++total_enqueued_;
}

JobPtr JobQueue::front() const {
  MCSIM_REQUIRE(!jobs_.empty(), "queue is empty");
  return jobs_.front();
}

JobPtr JobQueue::pop() {
  MCSIM_REQUIRE(!jobs_.empty(), "queue is empty");
  JobPtr job = jobs_.front();
  jobs_.pop_front();
  return job;
}

JobPtr JobQueue::at(std::size_t index) const {
  MCSIM_REQUIRE(index < jobs_.size(), "queue index out of range");
  return jobs_[index];
}

JobPtr JobQueue::remove_at(std::size_t index) {
  MCSIM_REQUIRE(index < jobs_.size(), "queue index out of range");
  JobPtr job = jobs_[index];
  jobs_.erase(jobs_.begin() + static_cast<long>(index));
  return job;
}

}  // namespace mcsim
