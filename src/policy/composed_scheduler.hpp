// ComposedScheduler — one scheduler for every point of the pipeline space
// (docs/SCHEDULING.md).
//
// The queue structure selects the scheduling protocol; within it the
// composed stages decide service order (QueueDiscipline via JobQueue's
// priority insert), backfilling (ReservationTracker / AvailabilityProfile),
// placement (the Scheduler base's configured rule) and the co-allocation
// rule (which placement primitive a job may use).
//
// For the canonical compositions expand_policy() produces, the three
// protocols reproduce the historical PolicyGs / PolicyLs / PolicyLp
// implementations call-for-call — every try_place / try_place_local
// sequence, rotation order and disable/enable decision is identical, which
// is what keeps the 18 sealed goldens bit-exact
// (tests/policy_equivalence_test.cpp pins this against reference copies of
// the legacy classes).
//
//   kSingleGlobal    GS/SC (paper Sect. 2.5, policies 1 and 4): one queue;
//                    head jobs start while they fit; optional backfilling.
//   kPerCluster      LS (policy 2): per-cluster queues, rotating visits,
//                    at most one start per queue per round; a queue whose
//                    head does not fit is disabled until the next departure
//                    and re-enabled in disable order.
//   kLocalPlusGlobal LP (policy 3): single-component jobs queue locally,
//                    wide jobs globally; the global queue is visited first
//                    but only while some local queue is empty.
#pragma once

#include <string>
#include <vector>

#include "policy/pipeline.hpp"
#include "policy/queue.hpp"
#include "policy/reservation.hpp"
#include "policy/scheduler.hpp"

namespace mcsim {

class ComposedScheduler final : public Scheduler {
 public:
  ComposedScheduler(SchedulerContext& context, PipelineSpec pipeline,
                    std::string display_name);

  void submit(JobPtr job) override;
  void on_departure() override;
  [[nodiscard]] std::size_t queued_jobs() const override;
  [[nodiscard]] std::size_t max_queue_length() const override;
  [[nodiscard]] std::vector<std::size_t> queue_lengths() const override;
  [[nodiscard]] std::string name() const override { return display_name_; }

  [[nodiscard]] const PipelineSpec& pipeline() const { return pipeline_; }
  [[nodiscard]] BackfillMode backfill_mode() const { return pipeline_.backfill; }
  /// Global-queue length (kLocalPlusGlobal diagnostics).
  [[nodiscard]] std::size_t global_queue_length() const { return global_.size(); }

 private:
  /// The co-allocation rule's placement decision for one job.
  /// `local_cluster` is the cluster of the queue the job waits in, or -1
  /// for the global/single queue (the job's origin cluster then stands in
  /// when the rule restricts single-component jobs).
  [[nodiscard]] std::optional<Allocation> place_for(Job& job,
                                                    std::int32_t local_cluster);

  // kSingleGlobal protocol (historical PolicyGs).
  void try_schedule_single();
  void start_at(std::size_t index, Allocation allocation);
  void backfill_aggressive();
  void backfill_easy();
  void backfill_conservative();

  // kPerCluster protocol (historical PolicyLs).
  void try_schedule_rotation();
  void disable_queue(std::uint32_t qid);

  // kLocalPlusGlobal protocol (historical PolicyLp).
  void try_schedule_priority();
  [[nodiscard]] bool some_local_empty() const;

  PipelineSpec pipeline_;
  std::string display_name_;

  /// The single/global queue (kSingleGlobal; the wide-job queue for
  /// kLocalPlusGlobal). Unused for kPerCluster.
  JobQueue global_;
  /// Per-cluster queues (kPerCluster, kLocalPlusGlobal).
  std::vector<JobQueue> locals_;
  /// kPerCluster rotation state: visiting order of the enabled queues
  /// (re-enable order is preserved across departures, as the paper
  /// specifies) and the queues disabled since the last departure.
  std::vector<std::uint32_t> visit_order_;
  std::vector<std::uint32_t> disabled_order_;

  /// Backfilling state (kSingleGlobal with backfill only).
  ReservationTracker running_;
  AvailabilityProfile profile_;
};

}  // namespace mcsim
