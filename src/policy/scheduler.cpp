#include "policy/scheduler.hpp"

#include "util/assert.hpp"
#include "util/strings.hpp"

namespace mcsim {

const char* backfill_mode_name(BackfillMode mode) {
  switch (mode) {
    case BackfillMode::kNone: return "fcfs";
    case BackfillMode::kAggressive: return "aggressive-bf";
    case BackfillMode::kEasy: return "easy-bf";
    case BackfillMode::kConservative: return "conservative-bf";
  }
  return "?";
}

BackfillMode parse_backfill_mode(const std::string& name) {
  const std::string lower = to_lower(name);
  // backfill_mode_name(kNone) prints "fcfs" (no backfilling = plain FCFS),
  // so both spellings must parse back to kNone for the round trip to hold.
  if (lower == "none" || lower == "fcfs") return BackfillMode::kNone;
  if (lower == "aggressive" || lower == "aggressive-bf") return BackfillMode::kAggressive;
  if (lower == "easy" || lower == "easy-bf") return BackfillMode::kEasy;
  if (lower == "conservative" || lower == "conservative-bf") {
    return BackfillMode::kConservative;
  }
  MCSIM_REQUIRE(false, "unknown backfill mode: " + name +
                           " (expected none, aggressive, easy, or conservative)");
  return BackfillMode::kNone;
}

const char* queue_discipline_name(QueueDiscipline discipline) {
  switch (discipline) {
    case QueueDiscipline::kFcfs: return "fcfs";
    case QueueDiscipline::kShortestJobFirst: return "sjf";
    case QueueDiscipline::kLongestJobFirst: return "ljf";
    case QueueDiscipline::kSmallestFirst: return "smallest-first";
    case QueueDiscipline::kLargestFirst: return "largest-first";
  }
  return "?";
}

QueueDiscipline parse_queue_discipline(const std::string& name) {
  const std::string lower = to_lower(name);
  if (lower == "fcfs") return QueueDiscipline::kFcfs;
  if (lower == "sjf" || lower == "shortest-job-first") {
    return QueueDiscipline::kShortestJobFirst;
  }
  if (lower == "ljf" || lower == "longest-job-first") {
    return QueueDiscipline::kLongestJobFirst;
  }
  if (lower == "smallest-first") return QueueDiscipline::kSmallestFirst;
  if (lower == "largest-first") return QueueDiscipline::kLargestFirst;
  MCSIM_REQUIRE(false, "unknown queue discipline: " + name +
                           " (expected fcfs, sjf, ljf, smallest-first, or largest-first)");
  return QueueDiscipline::kFcfs;
}

JobOrder make_job_order(QueueDiscipline discipline) {
  switch (discipline) {
    case QueueDiscipline::kFcfs:
      return nullptr;
    case QueueDiscipline::kShortestJobFirst:
      return [](const Job& a, const Job& b) {
        return a.spec.gross_service_time < b.spec.gross_service_time;
      };
    case QueueDiscipline::kLongestJobFirst:
      return [](const Job& a, const Job& b) {
        return a.spec.gross_service_time > b.spec.gross_service_time;
      };
    case QueueDiscipline::kSmallestFirst:
      return [](const Job& a, const Job& b) {
        return a.spec.total_size < b.spec.total_size;
      };
    case QueueDiscipline::kLargestFirst:
      return [](const Job& a, const Job& b) {
        return a.spec.total_size > b.spec.total_size;
      };
  }
  return nullptr;
}

std::optional<Allocation> Scheduler::try_place(Job& job) const {
  context_.system().idle_counts_into(idle_scratch_);
  std::optional<Allocation> allocation;
  switch (job.spec.request_type) {
    case RequestType::kOrdered:
      allocation =
          place_ordered(job.spec.components, job.spec.ordered_clusters, idle_scratch_);
      break;
    case RequestType::kFlexible:
      allocation = place_flexible(job.spec.total_size, idle_scratch_, place_scratch_);
      break;
    case RequestType::kUnordered:
    case RequestType::kTotal:
      allocation = place_components(job.spec.components, idle_scratch_, capacities(),
                                    placement_, place_scratch_);
      break;
  }
  context_.record_placement(job, allocation.has_value(), /*cluster=*/-1);
  return allocation;
}

std::optional<Allocation> Scheduler::try_place_local(Job& job,
                                                     ClusterId cluster) const {
  MCSIM_ASSERT(job.spec.components.size() == 1);
  // One cluster's idle count decides; no snapshot of the whole system and
  // no allocation unless the job actually fits.
  const std::uint32_t processors = job.spec.components.front();
  std::optional<Allocation> allocation;
  if (processors <= context_.system().cluster(cluster).idle()) {
    allocation = Allocation{ComponentPlacement{cluster, processors}};
  }
  context_.record_placement(job, allocation.has_value(),
                            static_cast<std::int16_t>(cluster));
  return allocation;
}

std::optional<Allocation> Scheduler::try_place_whole(Job& job) const {
  // The whole request on the most-idle cluster that holds it (ties toward
  // the lower id — the same determinism rule as the placement functions).
  const Multicluster& system = context_.system();
  const std::uint32_t total = job.spec.total_size;
  ClusterId best = static_cast<ClusterId>(system.num_clusters());
  std::uint32_t best_idle = 0;
  for (ClusterId c = 0; c < system.num_clusters(); ++c) {
    const std::uint32_t idle = system.cluster(c).idle();
    if (idle < total) continue;
    if (best == system.num_clusters() || idle > best_idle) {
      best = c;
      best_idle = idle;
    }
  }
  std::optional<Allocation> allocation;
  if (best != system.num_clusters()) {
    allocation = Allocation{ComponentPlacement{best, total}};
  }
  context_.record_placement(job, allocation.has_value(), /*cluster=*/-1);
  return allocation;
}

const std::vector<std::uint32_t>& Scheduler::capacities() const {
  if (capacity_cache_.empty()) {
    const Multicluster& system = context_.system();
    capacity_cache_.reserve(system.num_clusters());
    for (ClusterId c = 0; c < system.num_clusters(); ++c) {
      capacity_cache_.push_back(system.cluster(c).capacity());
    }
  }
  return capacity_cache_;
}

}  // namespace mcsim
