// Policy names and scheduler construction (Sect. 2.5): GS, LS, LP on the
// multicluster, SC on the equivalent single cluster. The names are aliases —
// each expands to a canonical PipelineSpec (policy/pipeline.hpp) and every
// scheduler is a ComposedScheduler built from one.
#pragma once

#include <memory>
#include <string>

#include "policy/scheduler.hpp"

namespace mcsim {

struct PipelineSpec;

enum class PolicyKind { kGS, kLS, kLP, kSC };

const char* policy_name(PolicyKind kind);
/// Parse a policy name ("GS", "ls", ...; case-insensitive). Throws
/// std::invalid_argument on anything else.
PolicyKind parse_policy_kind(const std::string& name);
/// Deprecated spelling of parse_policy_kind.
inline PolicyKind parse_policy(const std::string& name) { return parse_policy_kind(name); }

/// Whether the policy runs on a single cluster holding all processors (SC)
/// rather than the multicluster.
bool is_single_cluster_policy(PolicyKind kind);

/// Construct the scheduler for `kind` bound to `context`: expand_policy()
/// maps the alias to its canonical pipeline, carrying the three tuning knobs
/// over. Backfilling (an extension; the paper uses kNone) needs the single
/// global queue, so it is rejected for LS and LP.
std::unique_ptr<Scheduler> make_scheduler(PolicyKind kind, SchedulerContext& context,
                                          PlacementRule placement = PlacementRule::kWorstFit,
                                          BackfillMode backfill = BackfillMode::kNone,
                                          QueueDiscipline discipline = QueueDiscipline::kFcfs);

/// Construct the scheduler for an explicit pipeline composition. `kind` only
/// seeds the display name (scheduler_display_name); the pipeline decides the
/// behaviour. Throws std::invalid_argument for invalid compositions
/// (validate_pipeline).
std::unique_ptr<Scheduler> make_scheduler(PolicyKind kind, const PipelineSpec& pipeline,
                                          SchedulerContext& context);

}  // namespace mcsim
