// FCFS job queue with the enable/disable state of the paper's scheduling
// protocol (Sect. 2.5): a queue whose head job does not fit is disabled
// until the next departure from the system.
//
// The queue stores trivially-copyable JobPtr handles (core/job.hpp):
// push/pop/remove_at and the priority-insert comparator path move plain
// pointers and never touch an allocator or a refcount
// (tests/core_queue_test.cpp pins this with a global-allocation probe).
#pragma once

#include <cstdint>
#include <deque>

#include "core/job.hpp"

namespace mcsim {

/// Queue ordering predicate: `a` before `b` means `a` is served first.
/// Insertion is stable (FCFS among equals). A plain function pointer over
/// the concrete Job — no type-erased callable on the insert path.
using JobOrder = bool (*)(const Job& a, const Job& b);

class JobQueue {
 public:
  /// Set a non-FCFS service order (extension; the paper is FCFS-only).
  /// Must be called while the queue is empty.
  void set_order(JobOrder order);

  void push(JobPtr job);
  [[nodiscard]] JobPtr front() const;
  JobPtr pop();

  /// Random access for the backfilling schedulers (index 0 is the head).
  [[nodiscard]] JobPtr at(std::size_t index) const;
  /// Remove and return the job at `index` (backfill start out of order).
  JobPtr remove_at(std::size_t index);

  [[nodiscard]] bool empty() const { return jobs_.empty(); }
  [[nodiscard]] std::size_t size() const { return jobs_.size(); }

  [[nodiscard]] bool enabled() const { return enabled_; }
  void enable() { enabled_ = true; }
  void disable() { enabled_ = false; }

  /// Total jobs ever enqueued (for sanity checks).
  [[nodiscard]] std::uint64_t total_enqueued() const { return total_enqueued_; }

 private:
  std::deque<JobPtr> jobs_;
  JobOrder order_ = nullptr;  // null = FCFS
  bool enabled_ = true;
  std::uint64_t total_enqueued_ = 0;
};

}  // namespace mcsim
