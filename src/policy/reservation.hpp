// Reservation bookkeeping for the backfilling stages (docs/SCHEDULING.md).
//
// ReservationTracker is the running-job ledger the EASY/aggressive/
// conservative stages share: which started jobs occupy how many processors
// until when. It was lifted out of the historical PolicyGS so every
// backfilling composition reuses one implementation. Service times are
// known exactly in the model ("perfect estimates"), so end times are exact;
// the counts are aggregate — actual starts still go through real
// per-cluster placement.
//
// AvailabilityProfile is the conservative stage's working state: a
// piecewise-constant free-processor profile over future time, built from
// the tracker and carved down by one reservation per queued job.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

namespace mcsim {

class ReservationTracker {
 public:
  struct RunningJob {
    double end_time;
    std::uint32_t processors;
  };

  /// Record a started job occupying `processors` until `end_time`.
  void on_start(double end_time, std::uint32_t processors) {
    running_.push_back(RunningJob{end_time, processors});
  }

  /// Drop jobs that have completed by `now` (called at departures).
  void prune(double now);

  [[nodiscard]] bool empty() const { return running_.empty(); }
  [[nodiscard]] const std::vector<RunningJob>& running() const { return running_; }

  /// EASY head reservation: the earliest completion time at which at least
  /// `needed` processors are free given `idle` free now, and the processors
  /// spare at that moment. {infinity, 0} when the ledger can never free
  /// enough (the scheduler then degrades to plain FCFS).
  [[nodiscard]] std::pair<double, std::uint32_t> head_reservation(
      std::uint32_t idle, std::uint32_t needed) const;

 private:
  std::vector<RunningJob> running_;
};

class AvailabilityProfile {
 public:
  /// Rebuild the profile: `idle` processors free at `now`, plus each
  /// running job's processors returning at its end time.
  void reset(double now, std::uint32_t idle,
             const std::vector<ReservationTracker::RunningJob>& running);

  /// Earliest time t >= now with at least `size` processors free over the
  /// whole window [t, t + duration). Infinity when `size` never fits (a job
  /// wider than the machine).
  [[nodiscard]] double earliest_fit(std::uint32_t size, double duration) const;

  /// Subtract `size` processors over [start, start + duration) — the
  /// reservation held for one queued job.
  void reserve(double start, double duration, std::uint32_t size);

  /// The profile's breakpoints (time, processors free from then on), for
  /// tests.
  [[nodiscard]] const std::vector<std::pair<double, std::uint32_t>>& points() const {
    return points_;
  }

 private:
  /// Breakpoints sorted by time; free counts are constant between them.
  std::vector<std::pair<double, std::uint32_t>> points_;
};

}  // namespace mcsim
