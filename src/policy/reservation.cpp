#include "policy/reservation.hpp"

#include <algorithm>
#include <limits>

#include "util/assert.hpp"

namespace mcsim {

void ReservationTracker::prune(double now) {
  std::erase_if(running_, [now](const RunningJob& r) { return r.end_time <= now; });
}

std::pair<double, std::uint32_t> ReservationTracker::head_reservation(
    std::uint32_t idle, std::uint32_t needed) const {
  MCSIM_ASSERT(idle < needed || !running_.empty());
  // Identical to the historical PolicyGS implementation (the EASY goldens
  // are sealed on its exact accumulation order): sort a copy by end time
  // and accumulate returning processors until the head fits.
  std::vector<RunningJob> by_end = running_;
  std::sort(by_end.begin(), by_end.end(),
            [](const RunningJob& a, const RunningJob& b) { return a.end_time < b.end_time; });
  for (const RunningJob& job : by_end) {
    idle += job.processors;
    if (idle >= needed) {
      return {job.end_time, idle - needed};
    }
  }
  // A head larger than the machine cannot happen (the workload is bounded),
  // but guard against it so the scheduler degrades to plain FCFS.
  return {std::numeric_limits<double>::infinity(), 0};
}

void AvailabilityProfile::reset(double now, std::uint32_t idle,
                                const std::vector<ReservationTracker::RunningJob>& running) {
  points_.clear();
  points_.emplace_back(now, idle);
  std::vector<std::pair<double, std::uint32_t>> ends;
  ends.reserve(running.size());
  for (const ReservationTracker::RunningJob& job : running) {
    if (job.end_time <= now) {
      // Already completed (the departure releasing it is being processed);
      // its processors are part of the free count from now on.
      points_.front().second += job.processors;
    } else {
      ends.emplace_back(job.end_time, job.processors);
    }
  }
  // Sorting pairs (time, processors) merges ties deterministically whatever
  // order the ledger listed them in.
  std::sort(ends.begin(), ends.end());
  for (const auto& [time, processors] : ends) {
    if (points_.back().first == time) {
      points_.back().second += processors;
    } else {
      points_.emplace_back(time, points_.back().second + processors);
    }
  }
}

double AvailabilityProfile::earliest_fit(std::uint32_t size, double duration) const {
  // Free counts only change at breakpoints, so the earliest feasible start
  // is at one. The profile ends at full capacity (every running job and
  // reservation expires), so any job that fits the machine finds a slot.
  for (std::size_t i = 0; i < points_.size(); ++i) {
    if (points_[i].second < size) continue;
    const double end = points_[i].first + duration;
    bool fits = true;
    for (std::size_t j = i + 1; j < points_.size(); ++j) {
      if (points_[j].first >= end) break;
      if (points_[j].second < size) {
        fits = false;
        break;
      }
    }
    if (fits) return points_[i].first;
  }
  return std::numeric_limits<double>::infinity();
}

void AvailabilityProfile::reserve(double start, double duration, std::uint32_t size) {
  MCSIM_ASSERT(!points_.empty());
  const double end = start + duration;
  const auto insert_point = [this](double time) {
    if (time <= points_.front().first) return;
    auto it = points_.begin();
    while (it != points_.end() && it->first < time) ++it;
    if (it != points_.end() && it->first == time) return;
    const std::uint32_t free_before = std::prev(it)->second;
    points_.insert(it, {time, free_before});
  };
  insert_point(start);
  insert_point(end);
  for (auto& [time, free] : points_) {
    if (time >= end) break;
    if (time >= start) free = free >= size ? free - size : 0;
  }
}

}  // namespace mcsim
