#include "policy/scheduler_factory.hpp"

#include "policy/composed_scheduler.hpp"
#include "policy/pipeline.hpp"
#include "util/assert.hpp"
#include "util/strings.hpp"

namespace mcsim {

const char* policy_name(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kGS: return "GS";
    case PolicyKind::kLS: return "LS";
    case PolicyKind::kLP: return "LP";
    case PolicyKind::kSC: return "SC";
  }
  return "?";
}

PolicyKind parse_policy_kind(const std::string& name) {
  const std::string lower = to_lower(name);
  if (lower == "gs") return PolicyKind::kGS;
  if (lower == "ls") return PolicyKind::kLS;
  if (lower == "lp") return PolicyKind::kLP;
  if (lower == "sc") return PolicyKind::kSC;
  MCSIM_REQUIRE(false, "unknown policy: " + name + " (expected GS, LS, LP, or SC)");
  return PolicyKind::kGS;
}

bool is_single_cluster_policy(PolicyKind kind) { return kind == PolicyKind::kSC; }

std::unique_ptr<Scheduler> make_scheduler(PolicyKind kind, SchedulerContext& context,
                                          PlacementRule placement, BackfillMode backfill,
                                          QueueDiscipline discipline) {
  const bool single_queue = kind == PolicyKind::kGS || kind == PolicyKind::kSC;
  MCSIM_REQUIRE(backfill == BackfillMode::kNone || single_queue,
                "backfilling is implemented for the single-queue policies (GS, SC)");
  return make_scheduler(kind, expand_policy(kind, placement, backfill, discipline),
                        context);
}

std::unique_ptr<Scheduler> make_scheduler(PolicyKind kind, const PipelineSpec& pipeline,
                                          SchedulerContext& context) {
  if (is_single_cluster_policy(kind)) {
    MCSIM_REQUIRE(context.system().num_clusters() == 1,
                  "SC must run on a single-cluster system");
  }
  return std::make_unique<ComposedScheduler>(context, pipeline,
                                             scheduler_display_name(kind, pipeline));
}

}  // namespace mcsim
