// Scheduler interface (paper Sect. 2.5).
//
// A Scheduler owns the queue structure of one policy. The engine feeds it
// arrivals via submit() and notifies it of departures via on_departure();
// the scheduler starts jobs through its SchedulerContext, which performs the
// allocation and schedules the departure event. The paper's policies use
// FCFS within each queue; the pipeline's queue stage may reorder
// (QueueDiscipline).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cluster/multicluster.hpp"
#include "cluster/placement.hpp"
#include "core/job.hpp"
#include "policy/queue.hpp"

#include <optional>

namespace mcsim {

/// Backfilling stage for the single-global-queue structure (GS, SC) — an
/// extension beyond the paper, which uses plain FCFS. LS's rotation already
/// gives a C-wide backfilling window (Sect. 3.1.1); these modes give the
/// single queue one too.
enum class BackfillMode : std::uint8_t {
  kNone,         // paper: strict FCFS, head-of-line blocking
  kAggressive,   // start any queued job that fits (no reservation; may starve)
  kEasy,         // EASY: backfill only if the head job's reservation holds
  kConservative  // every queued job holds a reservation no backfill may delay
};

const char* backfill_mode_name(BackfillMode mode);
/// Parse a backfill-mode name ("none"/"fcfs", "aggressive[-bf]",
/// "easy[-bf]", "conservative[-bf]"; case-insensitive). Throws
/// std::invalid_argument otherwise.
BackfillMode parse_backfill_mode(const std::string& name);

/// Service order within the global queue (extension; the paper is FCFS).
enum class QueueDiscipline : std::uint8_t {
  kFcfs,              // arrival order (the paper)
  kShortestJobFirst,  // by gross service time (classic response-time winner)
  kLongestJobFirst,   // by gross service time, reversed
  kSmallestFirst,     // by total processor count (easy fits first)
  kLargestFirst       // by total processor count, reversed
};

const char* queue_discipline_name(QueueDiscipline discipline);
/// Parse a queue-discipline name ("fcfs", "sjf", "ljf", "smallest-first",
/// "largest-first"; case-insensitive). Throws std::invalid_argument
/// otherwise.
QueueDiscipline parse_queue_discipline(const std::string& name);

/// The JobQueue ordering for a discipline (nullptr for FCFS). A plain
/// function pointer: comparator calls on the priority-insert path are a
/// direct indirect call, never a std::function dispatch.
JobOrder make_job_order(QueueDiscipline discipline);

/// The slice of the engine a policy is allowed to see: global knowledge of
/// idle processors, and the ability to start a job on an allocation.
class SchedulerContext {
 public:
  virtual ~SchedulerContext() = default;
  [[nodiscard]] virtual const Multicluster& system() const = 0;
  /// Current simulation time (the backfilling variants reason about job
  /// completion times).
  [[nodiscard]] virtual double now() const = 0;
  /// Start `job` on `allocation` now; the engine allocates the processors
  /// and schedules the departure.
  virtual void start_job(JobPtr job, Allocation allocation) = 0;
  /// Observability: every placement attempt reports its outcome here
  /// (called by Scheduler::try_place / try_place_local). `cluster` is the
  /// local cluster the attempt was restricted to, or -1 for a system-wide
  /// attempt. The default ignores it; the engine forwards it to an
  /// attached trace sink and metrics registry.
  virtual void record_placement(Job& /*job*/, bool /*success*/,
                                std::int16_t /*cluster*/) {}
};

class Scheduler {
 public:
  Scheduler(SchedulerContext& context, PlacementRule placement)
      : context_(context), placement_(placement) {}
  virtual ~Scheduler() = default;
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// A job arrived (already tagged with its submission queue).
  virtual void submit(JobPtr job) = 0;

  /// A job departed: re-enable queues per the policy's protocol and try to
  /// start queued jobs.
  virtual void on_departure() = 0;

  /// Jobs currently waiting in all queues.
  [[nodiscard]] virtual std::size_t queued_jobs() const = 0;

  /// Length of the longest single queue (instability detection).
  [[nodiscard]] virtual std::size_t max_queue_length() const = 0;

  /// Per-queue lengths, for diagnostics.
  [[nodiscard]] virtual std::vector<std::size_t> queue_lengths() const = 0;

  [[nodiscard]] virtual std::string name() const = 0;

 protected:
  /// WF (or the configured rule) placement of an unordered request over the
  /// whole system; single-component jobs are a 1-tuple.
  [[nodiscard]] std::optional<Allocation> try_place(Job& job) const;

  /// Placement of a single-component job restricted to its local cluster.
  [[nodiscard]] std::optional<Allocation> try_place_local(Job& job,
                                                          ClusterId cluster) const;

  /// Placement of the job's full size on one cluster (the most idle that
  /// fits, ties toward the lower id) — the component-limit co-allocation
  /// rule's fallback for jobs it refuses to spread.
  [[nodiscard]] std::optional<Allocation> try_place_whole(Job& job) const;

  SchedulerContext& context_;
  PlacementRule placement_;

 private:
  /// Cluster capacities, cached on first use (the system's layout is fixed
  /// for a run); the load-aware placement rule orders by idle fraction.
  [[nodiscard]] const std::vector<std::uint32_t>& capacities() const;

  /// Per-scheduler working memory for try_place/try_place_local: the idle
  /// snapshot and the placement sort/mark buffers. Mutable because a
  /// placement *attempt* is logically const — it observes the system and
  /// decides — while physically reusing these buffers keeps the attempt
  /// (and in particular every reject) off the allocator.
  mutable std::vector<std::uint32_t> idle_scratch_;
  mutable std::vector<std::uint32_t> capacity_cache_;
  mutable PlacementScratch place_scratch_;
};

}  // namespace mcsim
