/// \file
/// \brief Event primitives for the discrete-event engine.
#pragma once

#include <cstddef>
#include <cstdint>
#include <new>
#include <type_traits>
#include <utility>

namespace mcsim {

/// Opaque handle for a scheduled event; valid until the event fires or is
/// cancelled. Id 0 is never issued ("no event").
using EventId = std::uint64_t;

inline constexpr EventId kNoEvent = 0;

/// Move-only callable for event payloads — the engine's replacement for
/// std::function<void()> on the dispatch hot path.
///
/// Why not std::function: libstdc++'s small-object buffer holds only
/// trivially-copyable targets of <= 16 bytes, so every engine closure that
/// captures a shared state pointer plus a payload (an arrival capturing
/// {engine, job}, a departure capturing {engine, job}) heap-allocates on
/// schedule and frees on dispatch — two allocator round trips per event.
/// EventFn stores any nothrow-movable callable up to kInlineSize bytes
/// inline (48 bytes covers every closure in the engine with room to spare)
/// and falls back to the heap above that. Being move-only it also never
/// needs the copy machinery std::function carries.
///
/// Handlers run at the event's timestamp with the simulator clock already
/// advanced.
class EventFn {
 public:
  /// Inline storage: sized for the engine's largest closure (a coroutine
  /// resume is 8 bytes, engine closures are 16, a copied std::function is
  /// 32) plus headroom for test fixtures capturing a few references.
  static constexpr std::size_t kInlineSize = 48;

  EventFn() noexcept = default;
  EventFn(std::nullptr_t) noexcept {}  // NOLINT(google-explicit-constructor)

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::remove_cvref_t<F>, EventFn> &&
                !std::is_same_v<std::remove_cvref_t<F>, std::nullptr_t> &&
                std::is_invocable_r_v<void, std::remove_cvref_t<F>&>>>
  EventFn(F&& fn) {  // NOLINT(google-explicit-constructor)
    using Fn = std::remove_cvref_t<F>;
    if constexpr (fits_inline<Fn>()) {
      ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(fn));
      ops_ = &kInlineOps<Fn>;
    } else {
      ::new (static_cast<void*>(storage_)) Fn*(new Fn(std::forward<F>(fn)));
      ops_ = &kHeapOps<Fn>;
    }
  }

  EventFn(const EventFn&) = delete;
  EventFn& operator=(const EventFn&) = delete;

  EventFn(EventFn&& other) noexcept : ops_(other.ops_) {
    if (ops_ != nullptr) {
      ops_->relocate(storage_, other.storage_);
      other.ops_ = nullptr;
    }
  }

  EventFn& operator=(EventFn&& other) noexcept {
    if (this != &other) {
      if (ops_ != nullptr) ops_->destroy(storage_);
      ops_ = other.ops_;
      if (ops_ != nullptr) {
        ops_->relocate(storage_, other.storage_);
        other.ops_ = nullptr;
      }
    }
    return *this;
  }

  ~EventFn() {
    if (ops_ != nullptr) ops_->destroy(storage_);
  }

  /// Invoke the callable; requires non-empty.
  void operator()() { ops_->invoke(storage_); }

  [[nodiscard]] explicit operator bool() const noexcept { return ops_ != nullptr; }
  friend bool operator==(const EventFn& fn, std::nullptr_t) noexcept {
    return fn.ops_ == nullptr;
  }

 private:
  struct Ops {
    void (*invoke)(void* storage);
    /// Move-construct the target into `dst` and destroy the `src` copy.
    void (*relocate)(void* dst, void* src) noexcept;
    void (*destroy)(void* storage) noexcept;
  };

  template <typename Fn>
  static constexpr bool fits_inline() {
    return sizeof(Fn) <= kInlineSize && alignof(Fn) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<Fn>;
  }

  template <typename Fn>
  static Fn* inline_target(void* storage) {
    return std::launder(reinterpret_cast<Fn*>(storage));
  }

  template <typename Fn>
  static Fn** heap_target(void* storage) {
    return std::launder(reinterpret_cast<Fn**>(storage));
  }

  template <typename Fn>
  static constexpr Ops kInlineOps{
      [](void* storage) { (*inline_target<Fn>(storage))(); },
      [](void* dst, void* src) noexcept {
        Fn* from = inline_target<Fn>(src);
        ::new (dst) Fn(std::move(*from));
        from->~Fn();
      },
      [](void* storage) noexcept { inline_target<Fn>(storage)->~Fn(); }};

  template <typename Fn>
  static constexpr Ops kHeapOps{
      [](void* storage) { (**heap_target<Fn>(storage))(); },
      [](void* dst, void* src) noexcept {
        ::new (dst) Fn*(*heap_target<Fn>(src));
      },
      [](void* storage) noexcept { delete *heap_target<Fn>(storage); }};

  alignas(std::max_align_t) std::byte storage_[kInlineSize];
  const Ops* ops_ = nullptr;
};

/// Event payload type accepted by Simulator::schedule_at/schedule_in.
using EventHandler = EventFn;

}  // namespace mcsim
