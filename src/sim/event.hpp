/// \file
/// \brief Event primitives for the discrete-event engine.
#pragma once

#include <cstdint>
#include <functional>

namespace mcsim {

/// Opaque handle for a scheduled event; valid until the event fires or is
/// cancelled. Id 0 is never issued ("no event").
using EventId = std::uint64_t;

inline constexpr EventId kNoEvent = 0;

/// Event payload. Handlers run at the event's timestamp with the simulator
/// clock already advanced.
using EventHandler = std::function<void()>;

}  // namespace mcsim
