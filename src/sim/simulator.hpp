/// \file
/// \brief The discrete-event simulator: clock + calendar + handler dispatch.
///
/// This is the CSIM18 substitute (see DESIGN.md). The paper's model needs
/// only timed events (arrivals, departures) and deterministic tie-breaking;
/// process-orientation in CSIM is a convenience we do not require.
///
/// Usage:
/// \code
///   Simulator sim;
///   sim.schedule_in(1.5, [&]{ ... });
///   sim.run();                       // until calendar empty or stop()
/// \endcode
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>

#include "sim/calendar.hpp"
#include "sim/event.hpp"

namespace mcsim {

/// Observability hook invoked after dispatched events with the advanced
/// clock and the number of still-pending events (calendar occupancy).
using StepHook = std::function<void(double now, std::size_t pending)>;

/// The event-driven simulation core: a clock, a cancellable calendar and
/// handler dispatch. One Simulator drives one run; it is not thread-safe
/// and runs are made parallel by giving each its own Simulator
/// (docs/ARCHITECTURE.md, "Threading model").
class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulation time (seconds).
  [[nodiscard]] double now() const { return now_; }

  /// Schedule `handler` at absolute time `when` (>= now). Returns the event id.
  EventId schedule_at(double when, EventHandler handler);

  /// Schedule `handler` after `delay` (>= 0).
  EventId schedule_in(double delay, EventHandler handler);

  /// Cancel a pending event; returns false if it already fired or was cancelled.
  bool cancel(EventId id);

  /// Execute the next event; returns false if the calendar is empty.
  bool step();

  /// Run until the calendar drains or stop() is called.
  void run();

  /// Run until the clock would pass `until`; events at exactly `until` fire.
  void run_until(double until);

  /// Request the current run()/run_until() loop to return after the current
  /// handler. Safe to call from inside a handler.
  void stop() { stop_requested_ = true; }
  [[nodiscard]] bool stop_requested() const { return stop_requested_; }

  [[nodiscard]] std::size_t pending_events() const { return calendar_.size(); }
  [[nodiscard]] std::uint64_t executed_events() const { return executed_; }

  /// Drop all pending events and reset the clock to zero.
  void reset();

  /// Attach an observability hook called every `stride`-th dispatched
  /// event (stride >= 1), e.g. to sample calendar occupancy into a
  /// time-weighted series. Pass a null hook to detach. With no hook
  /// attached the dispatch path pays a single predictable branch — the
  /// null-sink fast path the observability layer is benchmarked against
  /// (BENCH_obs.json).
  void set_step_hook(StepHook hook, std::uint64_t stride = 1);

 private:
  void dispatch(const Calendar::Entry& entry);

  Calendar calendar_;
  std::unordered_map<EventId, EventHandler> handlers_;
  StepHook step_hook_;
  std::uint64_t hook_stride_ = 1;
  std::uint64_t events_since_hook_ = 0;
  double now_ = 0.0;
  bool stop_requested_ = false;
  std::uint64_t executed_ = 0;
};

}  // namespace mcsim
