// The discrete-event simulator: clock + calendar + handler dispatch.
//
// This is the CSIM18 substitute (see DESIGN.md). The paper's model needs
// only timed events (arrivals, departures) and deterministic tie-breaking;
// process-orientation in CSIM is a convenience we do not require.
//
// Usage:
//   Simulator sim;
//   sim.schedule_in(1.5, [&]{ ... });
//   sim.run();                       // until calendar empty or stop()
#pragma once

#include <cstdint>
#include <unordered_map>

#include "sim/calendar.hpp"
#include "sim/event.hpp"

namespace mcsim {

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulation time (seconds).
  [[nodiscard]] double now() const { return now_; }

  /// Schedule `handler` at absolute time `when` (>= now). Returns the event id.
  EventId schedule_at(double when, EventHandler handler);

  /// Schedule `handler` after `delay` (>= 0).
  EventId schedule_in(double delay, EventHandler handler);

  /// Cancel a pending event; returns false if it already fired or was cancelled.
  bool cancel(EventId id);

  /// Execute the next event; returns false if the calendar is empty.
  bool step();

  /// Run until the calendar drains or stop() is called.
  void run();

  /// Run until the clock would pass `until`; events at exactly `until` fire.
  void run_until(double until);

  /// Request the current run()/run_until() loop to return after the current
  /// handler. Safe to call from inside a handler.
  void stop() { stop_requested_ = true; }
  [[nodiscard]] bool stop_requested() const { return stop_requested_; }

  [[nodiscard]] std::size_t pending_events() const { return calendar_.size(); }
  [[nodiscard]] std::uint64_t executed_events() const { return executed_; }

  /// Drop all pending events and reset the clock to zero.
  void reset();

 private:
  void dispatch(const Calendar::Entry& entry);

  Calendar calendar_;
  std::unordered_map<EventId, EventHandler> handlers_;
  double now_ = 0.0;
  bool stop_requested_ = false;
  std::uint64_t executed_ = 0;
};

}  // namespace mcsim
