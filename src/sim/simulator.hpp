/// \file
/// \brief The discrete-event simulator: clock + calendar + handler dispatch.
///
/// This is the CSIM18 substitute (see DESIGN.md). The paper's model needs
/// only timed events (arrivals, departures) and deterministic tie-breaking;
/// process-orientation in CSIM is a convenience we do not require.
///
/// Usage:
/// \code
///   Simulator sim;
///   sim.schedule_in(1.5, [&]{ ... });
///   sim.run();                       // until calendar empty or stop()
/// \endcode
///
/// Hot-path layout (docs/PERFORMANCE.md): handlers live in a slot vector
/// indexed by the 32-bit slot carried in each calendar entry — scheduling
/// is a free-list pop plus a heap push, dispatch is one vector read; there
/// is no per-event associative container. Events sharing the earliest
/// timestamp are drained from the calendar as one batch (pop_ties) and
/// dispatched one by one in push order, preserving the exact pre-batching
/// semantics: the same handler order, the same pending-event counts as
/// observed by the step hook, and cancellation of a not-yet-dispatched
/// batch mate from within an earlier handler still suppresses it.
///
/// Contract note: the callable of a *cancelled* event is destroyed lazily —
/// when its slot is recycled or the simulator resets — not at cancel().
/// Handlers must not rely on captured destructors running at cancel time
/// (none in this codebase do; handlers capture plain pointers and values).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "sim/calendar.hpp"
#include "sim/event.hpp"

namespace mcsim {

class ParallelSimulator;

/// Observability hook invoked after dispatched events with the advanced
/// clock and the number of still-pending events (calendar occupancy).
using StepHook = std::function<void(double now, std::size_t pending)>;

/// Configuration for the parallel (conservative-synchronization) backend,
/// passed to Simulator::configure_parallel. See docs/PARALLEL.md.
struct ParallelConfig {
  /// Logical processes sharding the pending events: the coordinator LP 0
  /// (cross-LP traffic) plus typically one LP per cluster.
  std::uint32_t lp_count = 1;
  /// Total worker budget including the coordinating thread; <= 1 runs
  /// every barrier task inline (full LP machinery, zero extra threads).
  unsigned worker_threads = 1;
  /// Conservative lookahead seed (seconds) from the model's service-time
  /// bound; 0 lets the horizon adapt purely from window density.
  double lookahead_hint = 0.0;
};

/// The event-driven simulation core: a clock, a cancellable calendar and
/// handler dispatch. One Simulator drives one run; it is not thread-safe
/// and runs are made parallel by giving each its own Simulator
/// (docs/ARCHITECTURE.md, "Threading model").
class Simulator {
 public:
  // Both out of line: ParallelSimulator is incomplete at this point.
  Simulator();
  ~Simulator();
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulation time (seconds).
  [[nodiscard]] double now() const { return now_; }

  /// Switch this simulator to the parallel backend (sharded calendars +
  /// barrier-synchronized windows, docs/PARALLEL.md). Must be called on a
  /// fresh simulator, before anything is scheduled. The serial engine
  /// stays the canonical reference; the parallel backend reproduces its
  /// event order — and therefore every result — bit-exactly.
  void configure_parallel(const ParallelConfig& config);
  [[nodiscard]] bool parallel_engine() const { return par_ != nullptr; }

  /// Tag subsequent schedule_at/schedule_in calls with the logical
  /// process that owns them. No-op on the serial path, so model code can
  /// tag unconditionally.
  void set_event_lp(std::uint32_t lp);

  /// Introspection into the parallel backend; nullptr on the serial path.
  [[nodiscard]] const ParallelSimulator* parallel_backend() const { return par_.get(); }

  /// Schedule `handler` at absolute time `when` (>= now). Returns the event id.
  EventId schedule_at(double when, EventHandler handler);

  /// Schedule `handler` after `delay` (>= 0).
  EventId schedule_in(double delay, EventHandler handler);

  /// Cancel a pending event; returns false if it already fired or was cancelled.
  bool cancel(EventId id);

  /// Execute the next event; returns false if nothing is pending.
  bool step();

  /// Run until the calendar drains or stop() is called.
  void run();

  /// Run until the clock would pass `until`; events at exactly `until` fire.
  void run_until(double until);

  /// Request the current run()/run_until() loop to return after the current
  /// handler. Safe to call from inside a handler; events already drained
  /// into the current same-timestamp batch stay pending and fire when the
  /// loop is re-entered.
  void stop() { stop_requested_ = true; }
  [[nodiscard]] bool stop_requested() const { return stop_requested_; }

  [[nodiscard]] std::size_t pending_events() const;
  [[nodiscard]] std::uint64_t executed_events() const { return executed_; }

  /// Drop all pending events and reset the clock to zero.
  void reset();

  /// Pre-size the calendar and handler-slot storage from the run's known
  /// event horizon: `expected_total` events over the whole run, at most
  /// `expected_pending` pending at once. Purely an allocation hint.
  void reserve_events(std::size_t expected_total, std::size_t expected_pending);

  /// Attach an observability hook called every `stride`-th dispatched
  /// event (stride >= 1), e.g. to sample calendar occupancy into a
  /// time-weighted series. Pass a null hook to detach. With no hook
  /// attached the dispatch path pays a single predictable branch — the
  /// null-sink fast path the observability layer is benchmarked against
  /// (BENCH_obs.json).
  void set_step_hook(StepHook hook, std::uint64_t stride = 1);

 private:
  friend class ParallelSimulator;  // shares now_/executed_/stop/hook state

  void dispatch(const Calendar::Entry& entry);
  /// Dispatch the next live entry of the current batch, if any.
  bool drain_batch_one();
  /// Refill the batch with every event at the calendar's earliest time.
  void start_batch();
  [[nodiscard]] std::uint32_t alloc_slot();

  Calendar calendar_;
  /// Handler storage indexed by Calendar::Entry::slot; free_slots_ is the
  /// recycling free list.
  std::vector<EventFn> slots_;
  std::vector<std::uint32_t> free_slots_;
  /// The same-timestamp batch currently being drained: entries
  /// [batch_next_, batch_.size()) are still pending; dead ones (cancelled
  /// from within a batch mate's handler) carry id == kNoEvent.
  std::vector<Calendar::Entry> batch_;
  std::size_t batch_next_ = 0;
  std::size_t batch_live_ = 0;  // live undispatched entries in batch_
  /// Engaged by configure_parallel; when set, the calendar/batch members
  /// above lie fallow and every schedule/cancel/run call routes here.
  std::unique_ptr<ParallelSimulator> par_;
  StepHook step_hook_;
  std::uint64_t hook_stride_ = 1;
  std::uint64_t events_since_hook_ = 0;
  double now_ = 0.0;
  bool stop_requested_ = false;
  std::uint64_t executed_ = 0;
};

}  // namespace mcsim
