#include "sim/lookahead.hpp"

#include <algorithm>

namespace mcsim {

HorizonController::HorizonController(double hint)
    : hint_(hint > 0.0 ? hint : 0.0), horizon_(hint_) {}

void HorizonController::on_window(std::size_t extracted, double span) {
  if (extracted < kLowWatermark) {
    // Window too thin: widen. span * 4 jumps straight past locally dense
    // regions; the doubling term guarantees geometric progress even when
    // every window so far was a single tie batch (span == 0).
    horizon_ = std::max({horizon_ * 2.0, span * 4.0, hint_, kMinHorizon});
  } else if (extracted > kHighWatermark) {
    // Window too fat: halve, but never below the model-derived bound —
    // inside the hint a window is always safe to batch.
    horizon_ = std::max(hint_, horizon_ * 0.5);
  }
}

}  // namespace mcsim
