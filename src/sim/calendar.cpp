#include "sim/calendar.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace mcsim {

EventId Calendar::push(double time, std::uint32_t slot) {
  const EventId id = next_id_++;
  if ((id >> 6) >= resolved_.size()) resolved_.push_back(0);
  heap_push(Entry{time, id, slot});
  ++live_count_;
  return id;
}

bool Calendar::cancel(EventId id) {
  if (id == kNoEvent || id >= next_id_) return false;
  if (resolved(id)) return false;  // already fired or already cancelled
  mark_resolved(id);
  ++stale_count_;  // its heap entry stays buried until it surfaces
  MCSIM_ASSERT(live_count_ > 0);
  --live_count_;
  return true;
}

double Calendar::next_time() {
  skip_resolved();
  MCSIM_REQUIRE(!heap_.empty(), "calendar is empty");
  return heap_.front().time;
}

Calendar::Entry Calendar::pop() {
  skip_resolved();
  MCSIM_REQUIRE(!heap_.empty(), "calendar is empty");
  Entry top = heap_.front();
  heap_pop();
  mark_resolved(top.id);
  MCSIM_ASSERT(live_count_ > 0);
  --live_count_;
  return top;
}

void Calendar::pop_ties(std::vector<Entry>& out) {
  out.clear();
  skip_resolved();
  MCSIM_REQUIRE(!heap_.empty(), "calendar is empty");
  const double time = heap_.front().time;
  do {
    const Entry top = heap_.front();
    heap_pop();
    mark_resolved(top.id);
    MCSIM_ASSERT(live_count_ > 0);
    --live_count_;
    out.push_back(top);
    skip_resolved();
  } while (!heap_.empty() && heap_.front().time == time);
}

void Calendar::drain_reclaimed_slots(std::vector<std::uint32_t>& out) {
  out.insert(out.end(), reclaimed_.begin(), reclaimed_.end());
  reclaimed_.clear();
}

void Calendar::reserve(std::size_t expected_ids, std::size_t expected_pending) {
  resolved_.reserve((expected_ids >> 6) + 2);
  heap_.reserve(expected_pending);
}

void Calendar::clear() {
  heap_.clear();
  reclaimed_.clear();
  // Ids issued before the clear must stay dead: resolve them all. Bits for
  // ids not yet issued must stay clear or the next push is born resolved.
  std::fill(resolved_.begin(), resolved_.end(), ~std::uint64_t{0});
  const std::size_t word = next_id_ >> 6;
  if (word < resolved_.size()) {
    resolved_[word] &= (std::uint64_t{1} << (next_id_ & 63)) - 1;
  }
  live_count_ = 0;
  stale_count_ = 0;
}

void Calendar::heap_push(Entry entry) {
  heap_.push_back(entry);
  std::size_t i = heap_.size() - 1;
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (!less(heap_[i], heap_[parent])) break;
    std::swap(heap_[i], heap_[parent]);
    i = parent;
  }
}

void Calendar::heap_pop() {
  MCSIM_ASSERT(!heap_.empty());
  heap_.front() = heap_.back();
  heap_.pop_back();
  std::size_t i = 0;
  const std::size_t n = heap_.size();
  while (true) {
    const std::size_t l = 2 * i + 1;
    const std::size_t r = l + 1;
    std::size_t smallest = i;
    if (l < n && less(heap_[l], heap_[smallest])) smallest = l;
    if (r < n && less(heap_[r], heap_[smallest])) smallest = r;
    if (smallest == i) break;
    std::swap(heap_[i], heap_[smallest]);
    i = smallest;
  }
}

void Calendar::skip_resolved() {
  if (stale_count_ == 0) return;  // nothing was cancelled: the front is live
  while (!heap_.empty() && resolved(heap_.front().id)) {
    reclaimed_.push_back(heap_.front().slot);
    heap_pop();
    --stale_count_;
  }
}

}  // namespace mcsim
