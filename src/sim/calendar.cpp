#include "sim/calendar.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace mcsim {

EventId Calendar::push(double time) {
  const EventId id = next_id_++;
  heap_push(Entry{time, next_seq_++, id});
  ++live_count_;
  return id;
}

bool Calendar::cancel(EventId id) {
  if (id == kNoEvent || id >= next_id_) return false;
  if (cancelled_.count(id)) return false;
  // We cannot cheaply verify the id is still in the heap; callers only hold
  // ids of pending events, and pop() erases fired ids from scope by
  // returning them, so a double-cancel is the only misuse — guarded above.
  cancelled_.insert(id);
  if (live_count_ == 0) return false;
  --live_count_;
  return true;
}

double Calendar::next_time() {
  skip_cancelled();
  MCSIM_REQUIRE(!heap_.empty(), "calendar is empty");
  return heap_.front().time;
}

Calendar::Entry Calendar::pop() {
  skip_cancelled();
  MCSIM_REQUIRE(!heap_.empty(), "calendar is empty");
  Entry top = heap_.front();
  heap_pop();
  MCSIM_ASSERT(live_count_ > 0);
  --live_count_;
  return top;
}

void Calendar::clear() {
  heap_.clear();
  cancelled_.clear();
  live_count_ = 0;
}

void Calendar::heap_push(Entry entry) {
  heap_.push_back(entry);
  std::size_t i = heap_.size() - 1;
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (!less(heap_[i], heap_[parent])) break;
    std::swap(heap_[i], heap_[parent]);
    i = parent;
  }
}

void Calendar::heap_pop() {
  MCSIM_ASSERT(!heap_.empty());
  heap_.front() = heap_.back();
  heap_.pop_back();
  std::size_t i = 0;
  const std::size_t n = heap_.size();
  while (true) {
    const std::size_t l = 2 * i + 1;
    const std::size_t r = l + 1;
    std::size_t smallest = i;
    if (l < n && less(heap_[l], heap_[smallest])) smallest = l;
    if (r < n && less(heap_[r], heap_[smallest])) smallest = r;
    if (smallest == i) break;
    std::swap(heap_[i], heap_[smallest]);
    i = smallest;
  }
}

void Calendar::skip_cancelled() {
  while (!heap_.empty()) {
    auto it = cancelled_.find(heap_.front().id);
    if (it == cancelled_.end()) return;
    cancelled_.erase(it);
    heap_pop();
  }
}

}  // namespace mcsim
