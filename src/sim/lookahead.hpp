/// \file
/// \brief Conservative lookahead: window sizing for the parallel engine.
///
/// The parallel backend (ParallelSimulator) advances the run in
/// barrier-synchronous windows: at each barrier it picks the earliest
/// pending timestamp t_min and extracts every event with
/// time <= t_min + horizon into per-LP dispatch windows. The horizon is
/// the engine's conservative lookahead. Correctness never depends on its
/// value — events scheduled mid-window at or below the cut line are
/// routed through a spill calendar and merged live (docs/PARALLEL.md,
/// "Merge rule") — so the horizon is purely a batching knob: too small
/// and every window is a handful of ties (barrier overhead dominates),
/// too large and windows balloon past what the merge can stream through
/// cache.
///
/// Seeding: the model layer derives a hint from the service-time
/// extension bound — a job started at time t cannot produce a departure
/// before t + minimum gross service time / fastest cluster speed, so no
/// LP can affect another LP's timeline inside that interval
/// (docs/PARALLEL.md, "Lookahead bound"). Traces with zero-runtime jobs
/// or synthetic service distributions unbounded below yield a hint of 0;
/// the controller then grows the horizon adaptively from observed window
/// density. All feedback inputs are functions of the event population
/// alone, never of thread timing, so the window sequence — and therefore
/// every result — is identical across worker counts.
#pragma once

#include <cstddef>

namespace mcsim {

/// Deterministic horizon controller for ParallelSimulator windows.
class HorizonController {
 public:
  /// Absolute growth floor (seconds): with a zero hint and ties-only
  /// windows, doubling from this floor reaches any useful window width
  /// in a few dozen barriers.
  static constexpr double kMinHorizon = 1.0 / 1024.0;
  /// Below this many events per window the horizon grows...
  static constexpr std::size_t kLowWatermark = 64;
  /// ...and above this many it shrinks back toward the hint.
  static constexpr std::size_t kHighWatermark = 8192;

  explicit HorizonController(double hint);

  /// Current window width added to t_min when choosing the cut line.
  [[nodiscard]] double horizon() const { return horizon_; }
  [[nodiscard]] double hint() const { return hint_; }

  /// Feedback after a window extraction: `extracted` live events spanning
  /// `span` seconds from t_min to the last extracted timestamp.
  void on_window(std::size_t extracted, double span);

 private:
  double hint_;
  double horizon_;
};

}  // namespace mcsim
