/// \file
/// \brief Logical processes: the per-shard event stores of the parallel engine.
///
/// ParallelSimulator shards the pending-event population into logical
/// processes (LPs). The model layer tags every scheduled event with the LP
/// that owns it — one LP per cluster for events whose effects are confined
/// to that cluster (single-cluster departures), plus the coordinator LP 0
/// for cross-LP traffic (arrivals feeding the global queue, co-allocated
/// departures spanning clusters). Each LP keeps its own calendar — a
/// (time, id) binary min-heap like the serial Calendar, but with event ids
/// issued globally by ParallelSimulator so the cross-LP merge can
/// reproduce the serial engine's exact tie order (docs/PARALLEL.md).
///
/// Thread contract: `stage`, `next_time`, `front`, `pop_front` and the
/// dead-slot drain run only in the coordinator's serial phases;
/// `flush_and_extract` is the barrier task, run by exactly one worker per
/// LP with no serial-phase call in flight. No member is touched from two
/// threads at once, which is what keeps the whole engine TSan-clean
/// without a single atomic in the event path.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "sim/event.hpp"

namespace mcsim {

/// One scheduled occurrence inside the parallel engine. Mirrors
/// Calendar::Entry, but the id is issued by ParallelSimulator's global
/// counter — in schedule order across all LPs — rather than per-calendar.
struct LpEvent {
  double time;
  EventId id;
  std::uint32_t slot;
};

/// Strict ordering shared by the per-LP heaps and the cross-LP merge:
/// earlier time first, ties by global schedule order. Identical to the
/// serial Calendar's comparator, which is the bit-exactness invariant.
[[nodiscard]] inline bool lp_event_less(const LpEvent& a, const LpEvent& b) {
  return a.time < b.time || (a.time == b.time && a.id < b.id);
}

/// Tests a global id against the fired/cancelled bitmap.
[[nodiscard]] inline bool lp_event_resolved(const std::vector<std::uint64_t>& resolved,
                                            EventId id) {
  return (resolved[id >> 6U] >> (id & 63U)) & 1U;
}

/// One shard of the pending-event population: a staging lane filled during
/// serial phases, a min-heap calendar maintained at barriers, and the
/// extracted dispatch window the coordinator merges from.
class LogicalProcess {
 public:
  static constexpr double kNever = std::numeric_limits<double>::infinity();

  /// Serial phase, O(1): append an event bound for this LP. It becomes
  /// heap-resident at the next barrier.
  void stage(const LpEvent& event) {
    staged_.push_back(event);
    if (event.time < staged_min_) staged_min_ = event.time;
  }

  /// Earliest timestamp held anywhere in this LP (staging lane or heap),
  /// kNever when empty. Oblivious to cancelled entries: a stale minimum
  /// only makes the next window start early, never changes results.
  [[nodiscard]] double next_time() const {
    double t = staged_min_;
    if (!heap_.empty() && heap_.front().time < t) t = heap_.front().time;
    return t;
  }

  /// Barrier task: flush the staging lane into the heap, then move every
  /// event with time <= t_cut into the dispatch window in (time, id)
  /// order. Cancelled entries are dropped here; their handler slots are
  /// parked in the dead-slot lane for the coordinator to reclaim.
  void flush_and_extract(double t_cut, const std::vector<std::uint64_t>& resolved,
                         bool check_stale);

  /// Serial phase: earliest live window entry, or nullptr when the window
  /// is drained. Skips (and parks the slots of) entries cancelled after
  /// extraction.
  [[nodiscard]] const LpEvent* front(const std::vector<std::uint64_t>& resolved,
                                     bool check_stale);

  /// Serial phase: consume the entry `front` returned.
  LpEvent pop_front() { return window_[cursor_++]; }

  [[nodiscard]] std::size_t window_size() const { return window_.size(); }
  [[nodiscard]] bool window_drained() const { return cursor_ >= window_.size(); }
  [[nodiscard]] double window_back_time() const {
    return window_.empty() ? -kNever : window_.back().time;
  }

  /// Serial phase: move handler slots of dropped (cancelled) entries into
  /// `out` for reuse.
  void drain_dead_slots(std::vector<std::uint32_t>& out);

  void reserve(std::size_t expected_pending);
  void clear();

 private:
  void heap_push(const LpEvent& event);
  LpEvent heap_pop();

  std::vector<LpEvent> heap_;    // (time, id) min-heap — this LP's calendar
  std::vector<LpEvent> staged_;  // serial-phase appends awaiting the barrier
  double staged_min_ = kNever;
  std::vector<LpEvent> window_;  // extracted events, ascending (time, id)
  std::size_t cursor_ = 0;       // window_[cursor_..] still undispatched
  std::vector<std::uint32_t> dead_slots_;
};

}  // namespace mcsim
