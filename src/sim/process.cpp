#include "sim/process.hpp"

#include "util/assert.hpp"

namespace mcsim {

Resource::Resource(Simulator& sim, std::uint32_t capacity)
    : sim_(sim), capacity_(capacity), available_(capacity) {
  MCSIM_REQUIRE(capacity > 0, "resource capacity must be positive");
}

bool Resource::AcquireAwaitable::await_ready() noexcept {
  // Fast path only when nobody is queued (FIFO: no barging past waiters).
  if (resource_.waiting_.empty() && units_ <= resource_.available_) {
    resource_.available_ -= units_;
    return true;
  }
  return false;
}

void Resource::AcquireAwaitable::await_suspend(std::coroutine_handle<> handle) {
  resource_.waiting_.push_back(Waiter{handle, units_});
}

Resource::AcquireAwaitable Resource::acquire(std::uint32_t units) {
  MCSIM_REQUIRE(units > 0 && units <= capacity_,
                "acquire request exceeds resource capacity");
  return AcquireAwaitable(*this, units);
}

void Resource::release(std::uint32_t units) {
  MCSIM_REQUIRE(available_ + units <= capacity_, "released more units than acquired");
  available_ += units;
  grant_waiters();
}

void Resource::grant_waiters() {
  // Wake heads whose requests now fit. Resumption is deferred through the
  // calendar so it happens in deterministic event order, after the caller
  // of release() finishes its own step.
  while (!waiting_.empty() && waiting_.front().units <= available_) {
    const Waiter waiter = waiting_.front();
    waiting_.pop_front();
    available_ -= waiter.units;
    sim_.schedule_in(0.0, [handle = waiter.handle] { handle.resume(); });
  }
}

}  // namespace mcsim
