#include "sim/simulator.hpp"

#include <utility>

#include "sim/parallel_simulator.hpp"
#include "util/assert.hpp"

namespace mcsim {

Simulator::Simulator() = default;
Simulator::~Simulator() = default;

void Simulator::configure_parallel(const ParallelConfig& config) {
  MCSIM_REQUIRE(par_ == nullptr, "parallel backend already configured");
  MCSIM_REQUIRE(pending_events() == 0 && executed_ == 0,
                "configure_parallel requires a fresh simulator");
  MCSIM_REQUIRE(config.lp_count >= 1, "need at least the coordinator LP");
  par_ = std::make_unique<ParallelSimulator>(*this, config);
}

void Simulator::set_event_lp(std::uint32_t lp) {
  if (par_) par_->set_current_lp(lp);
}

std::size_t Simulator::pending_events() const {
  if (par_) return par_->pending();
  return calendar_.size() + batch_live_;
}

std::uint32_t Simulator::alloc_slot() {
  if (free_slots_.empty()) calendar_.drain_reclaimed_slots(free_slots_);
  if (!free_slots_.empty()) {
    const std::uint32_t slot = free_slots_.back();
    free_slots_.pop_back();
    return slot;
  }
  slots_.emplace_back();
  return static_cast<std::uint32_t>(slots_.size() - 1);
}

EventId Simulator::schedule_at(double when, EventHandler handler) {
  MCSIM_REQUIRE(when >= now_, "cannot schedule an event in the past");
  MCSIM_REQUIRE(handler != nullptr, "event handler must be callable");
  if (par_) return par_->schedule_at(when, std::move(handler));
  const std::uint32_t slot = alloc_slot();
  slots_[slot] = std::move(handler);
  return calendar_.push(when, slot);
}

EventId Simulator::schedule_in(double delay, EventHandler handler) {
  MCSIM_REQUIRE(delay >= 0.0, "delay must be non-negative");
  return schedule_at(now_ + delay, std::move(handler));
}

bool Simulator::cancel(EventId id) {
  if (par_) return par_->cancel(id);
  // The common case: the event is still buried in the calendar. Its slot
  // comes back through drain_reclaimed_slots when the dead entry surfaces;
  // the handler is destroyed when the slot is next reused (see the lazy-
  // destruction contract in simulator.hpp).
  if (calendar_.cancel(id)) return true;
  if (id == kNoEvent) return false;  // dead batch entries carry kNoEvent
  // Otherwise it may be an undispatched mate of the current batch,
  // cancelled from within an earlier same-timestamp handler.
  for (std::size_t i = batch_next_; i < batch_.size(); ++i) {
    if (batch_[i].id == id) {
      free_slots_.push_back(batch_[i].slot);
      batch_[i].id = kNoEvent;
      MCSIM_ASSERT(batch_live_ > 0);
      --batch_live_;
      return true;
    }
  }
  return false;
}

bool Simulator::drain_batch_one() {
  while (batch_next_ < batch_.size()) {
    const Calendar::Entry entry = batch_[batch_next_++];
    if (entry.id == kNoEvent) continue;  // cancelled batch mate
    MCSIM_ASSERT(batch_live_ > 0);
    --batch_live_;
    dispatch(entry);
    return true;
  }
  return false;
}

void Simulator::start_batch() {
  batch_next_ = 0;
  calendar_.pop_ties(batch_);
  batch_live_ = batch_.size();
}

bool Simulator::step() {
  if (par_) return par_->step();
  if (drain_batch_one()) return true;
  if (calendar_.empty()) return false;
  start_batch();
  drain_batch_one();
  return true;
}

void Simulator::run() {
  if (par_) {
    par_->run();
    return;
  }
  stop_requested_ = false;
  while (!stop_requested_ && step()) {
  }
}

void Simulator::run_until(double until) {
  MCSIM_REQUIRE(until >= now_, "cannot run backwards");
  if (par_) {
    par_->run_until(until);
    return;
  }
  stop_requested_ = false;
  while (!stop_requested_) {
    // A batch remnant (from a stop() mid-batch) is at a timestamp already
    // accepted into the run, which is <= until by the precondition above.
    if (drain_batch_one()) continue;
    if (calendar_.empty() || calendar_.next_time() > until) break;
    start_batch();
    drain_batch_one();
  }
  if (!stop_requested_ && now_ < until) now_ = until;
}

void Simulator::reset() {
  if (par_) par_->reset();
  calendar_.clear();
  slots_.clear();
  free_slots_.clear();
  batch_.clear();
  batch_next_ = 0;
  batch_live_ = 0;
  now_ = 0.0;
  stop_requested_ = false;
  executed_ = 0;
  events_since_hook_ = 0;
}

void Simulator::reserve_events(std::size_t expected_total, std::size_t expected_pending) {
  if (par_) {
    par_->reserve(expected_total, expected_pending);
    return;
  }
  calendar_.reserve(expected_total, expected_pending);
  slots_.reserve(expected_pending);
  free_slots_.reserve(expected_pending);
}

void Simulator::set_step_hook(StepHook hook, std::uint64_t stride) {
  MCSIM_REQUIRE(stride >= 1, "step-hook stride must be at least 1");
  step_hook_ = std::move(hook);
  hook_stride_ = stride;
  events_since_hook_ = 0;
}

void Simulator::dispatch(const Calendar::Entry& entry) {
  MCSIM_ASSERT(entry.time >= now_);
  now_ = entry.time;
  // Move the handler out of its slot (freed for reuse) so it may
  // schedule/cancel freely while running.
  EventFn handler = std::move(slots_[entry.slot]);
  free_slots_.push_back(entry.slot);
  ++executed_;
  handler();
  if (step_hook_ && ++events_since_hook_ >= hook_stride_) {
    events_since_hook_ = 0;
    step_hook_(now_, pending_events());
  }
}

}  // namespace mcsim
