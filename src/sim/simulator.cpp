#include "sim/simulator.hpp"

#include <utility>

#include "util/assert.hpp"

namespace mcsim {

EventId Simulator::schedule_at(double when, EventHandler handler) {
  MCSIM_REQUIRE(when >= now_, "cannot schedule an event in the past");
  MCSIM_REQUIRE(handler != nullptr, "event handler must be callable");
  const EventId id = calendar_.push(when);
  handlers_.emplace(id, std::move(handler));
  return id;
}

EventId Simulator::schedule_in(double delay, EventHandler handler) {
  MCSIM_REQUIRE(delay >= 0.0, "delay must be non-negative");
  return schedule_at(now_ + delay, std::move(handler));
}

bool Simulator::cancel(EventId id) {
  if (!calendar_.cancel(id)) return false;
  handlers_.erase(id);
  return true;
}

bool Simulator::step() {
  if (calendar_.empty()) return false;
  dispatch(calendar_.pop());
  return true;
}

void Simulator::run() {
  stop_requested_ = false;
  while (!stop_requested_ && step()) {
  }
}

void Simulator::run_until(double until) {
  MCSIM_REQUIRE(until >= now_, "cannot run backwards");
  stop_requested_ = false;
  while (!stop_requested_ && !calendar_.empty() && calendar_.next_time() <= until) {
    dispatch(calendar_.pop());
  }
  if (!stop_requested_ && now_ < until) now_ = until;
}

void Simulator::reset() {
  calendar_.clear();
  handlers_.clear();
  now_ = 0.0;
  stop_requested_ = false;
  executed_ = 0;
  events_since_hook_ = 0;
}

void Simulator::set_step_hook(StepHook hook, std::uint64_t stride) {
  MCSIM_REQUIRE(stride >= 1, "step-hook stride must be at least 1");
  step_hook_ = std::move(hook);
  hook_stride_ = stride;
  events_since_hook_ = 0;
}

void Simulator::dispatch(const Calendar::Entry& entry) {
  MCSIM_ASSERT(entry.time >= now_);
  now_ = entry.time;
  auto it = handlers_.find(entry.id);
  MCSIM_ASSERT(it != handlers_.end());
  // Move the handler out before erasing so it may schedule/cancel freely.
  EventHandler handler = std::move(it->second);
  handlers_.erase(it);
  ++executed_;
  handler();
  if (step_hook_ && ++events_since_hook_ >= hook_stride_) {
    events_since_hook_ = 0;
    step_hook_(now_, calendar_.size());
  }
}

}  // namespace mcsim
