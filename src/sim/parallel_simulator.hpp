/// \file
/// \brief Conservative-synchronization parallel backend for Simulator.
///
/// ParallelSimulator replaces the serial calendar + batch machinery of a
/// Simulator that was switched over with Simulator::configure_parallel.
/// The pending-event population is sharded into logical processes (LPs,
/// sim/lp.hpp) — one per cluster plus the coordinator LP 0 for cross-LP
/// traffic — and the run advances in barrier-synchronous windows:
///
///   1. Barrier: pick t_min, the earliest pending timestamp anywhere, and
///      cut at t_cut = t_min + horizon (sim/lookahead.hpp). The worker
///      crew (sim/channel.hpp) flushes each LP's staged events into its
///      calendar heap and extracts everything <= t_cut into a sorted
///      per-LP window — the parallel share of the work.
///   2. Serial phase: the coordinator k-way merges the LP windows by
///      (time, id) and dispatches each event exactly as the serial engine
///      would. Events scheduled by handlers land O(1) in their LP's
///      staging lane when beyond the cut, or in a spill heap that joins
///      the live merge when at or below it — so a too-large horizon can
///      never dispatch out of order, and a zero lookahead bound can never
///      deadlock. The window is conservative by construction.
///
/// Bit-exactness invariant (docs/PARALLEL.md): event ids are issued by a
/// single global counter, and scheduling only happens in serial phases,
/// so ids are assigned in exactly the order the serial Calendar would
/// assign them; dispatching in (time, id) order is then, by induction,
/// the serial engine's exact event order. Handler side effects, FP stat
/// folds, observability emissions, SWF export and pending-event counts
/// all follow — `mcsim verify --engine=parallel` reproduces the sealed
/// goldens byte for byte, on any worker count.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/channel.hpp"
#include "sim/event.hpp"
#include "sim/lookahead.hpp"
#include "sim/lp.hpp"
#include "sim/simulator.hpp"

namespace mcsim {

/// The parallel engine behind a Simulator. Constructed only via
/// Simulator::configure_parallel; shares the owner's clock, executed
/// count, stop flag and step hook so model code cannot tell the engines
/// apart except by speed.
class ParallelSimulator {
 public:
  ParallelSimulator(Simulator& owner, const ParallelConfig& config);
  ParallelSimulator(const ParallelSimulator&) = delete;
  ParallelSimulator& operator=(const ParallelSimulator&) = delete;

  EventId schedule_at(double when, EventHandler handler);
  bool cancel(EventId id);
  bool step();
  void run();
  void run_until(double until);
  [[nodiscard]] std::size_t pending() const { return pending_; }
  void reset();
  void reserve(std::size_t expected_total, std::size_t expected_pending);

  /// Route subsequent schedules to `lp` (clamped to the LP count).
  void set_current_lp(std::uint32_t lp) {
    current_lp_ = lp < lps_.size() ? lp : 0U;
  }

  [[nodiscard]] std::uint32_t lp_count() const {
    return static_cast<std::uint32_t>(lps_.size());
  }
  [[nodiscard]] unsigned worker_threads() const { return crew_.threads(); }

  /// Introspection for tests and the bench harness.
  [[nodiscard]] std::uint64_t barrier_count() const { return barriers_; }
  [[nodiscard]] double horizon() const { return horizon_.horizon(); }

 private:
  [[nodiscard]] std::uint32_t alloc_slot();
  void grow_resolved();
  void mark_resolved(EventId id) {
    resolved_[id >> 6U] |= std::uint64_t{1} << (id & 63U);
  }
  [[nodiscard]] bool is_resolved(EventId id) const {
    return lp_event_resolved(resolved_, id);
  }

  /// Earliest live window entry across LP windows and the spill heap.
  /// `source` receives the LP index, or kSpillSource for the spill.
  [[nodiscard]] const LpEvent* merge_peek(int* source);
  void merge_pop_dispatch(int source);
  bool merge_one();
  /// Barrier: open the next window. False iff no live event remains.
  bool refill();
  [[nodiscard]] double global_next_time() const;
  void dispatch(const LpEvent& event);
  void collect_dead_slots();

  void spill_push(const LpEvent& event);
  LpEvent spill_pop();

  static constexpr int kSpillSource = -1;

  Simulator& owner_;
  std::vector<LogicalProcess> lps_;
  WorkerCrew crew_;
  HorizonController horizon_;
  /// Handler storage indexed by LpEvent::slot, mutated only in serial
  /// phases; free_slots_ is the recycling free list.
  std::vector<EventFn> slots_;
  std::vector<std::uint32_t> free_slots_;
  /// Min-heap of events scheduled mid-window with time <= t_cut_; merged
  /// against the LP windows so they fire in exact (time, id) order.
  std::vector<LpEvent> spill_;
  /// Fired/cancelled bitmap indexed by global id (cf. Calendar's scheme).
  std::vector<std::uint64_t> resolved_;
  EventId next_id_ = 1;
  std::size_t pending_ = 0;
  std::uint32_t current_lp_ = 0;
  bool window_open_ = false;
  double t_cut_ = 0.0;
  /// Set on the first cancel(); until then no structure can hold a dead
  /// entry and every stale check is skipped (the model hot path never
  /// cancels).
  bool has_stale_ = false;
  std::uint64_t barriers_ = 0;
};

}  // namespace mcsim
