/// \file
/// \brief The barrier channel: worker crew synchronizing the parallel engine.
///
/// ParallelSimulator alternates between serial phases (the coordinator
/// merges and dispatches a window) and barrier phases (per-LP calendar
/// maintenance fans out across workers). WorkerCrew is that barrier: a
/// fixed pool of threads that sits parked between windows, runs one
/// indexed task per LP when the coordinator opens a barrier, and releases
/// the coordinator only when every task has finished. The handoff is a
/// plain mutex + condition-variable generation counter — the barrier runs
/// a few times per thousand dispatched events, so lock-free cleverness
/// would buy nothing and cost the TSan-provable simplicity the sanitizer
/// gate relies on (docs/PARALLEL.md, "Threading model").
///
/// The calling thread participates in the work itself, so a crew of
/// `threads` occupies exactly `threads` cores: `threads - 1` members plus
/// the coordinator. With threads <= 1 no members are spawned and run()
/// degenerates to an inline loop — the engine's worker-budget contract
/// (`--jobs`, docs/PARALLEL.md) leans on this to keep `--engine=parallel`
/// from oversubscribing a budget already spent on exp::Runner workers.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace mcsim {

/// Barrier-synchronous task crew for ParallelSimulator.
class WorkerCrew {
 public:
  /// `threads` is the total parallelism including the calling thread.
  explicit WorkerCrew(unsigned threads);
  ~WorkerCrew();
  WorkerCrew(const WorkerCrew&) = delete;
  WorkerCrew& operator=(const WorkerCrew&) = delete;

  /// Total parallelism (members + caller); at least 1.
  [[nodiscard]] unsigned threads() const { return threads_; }

  /// Run job(i) once for every i in [0, count), spread across the crew and
  /// the calling thread; returns when all have finished. The first
  /// exception thrown by a task is rethrown here after the barrier closes.
  void run(std::size_t count, const std::function<void(std::size_t)>& job);

 private:
  void member_main();
  /// Claim-and-run loop shared by members and the caller; `lock` is held
  /// on entry and exit, released around each task.
  void claim_tasks(std::unique_lock<std::mutex>& lock);

  unsigned threads_;
  std::vector<std::thread> members_;
  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  const std::function<void(std::size_t)>* job_ = nullptr;
  std::size_t count_ = 0;
  std::size_t next_ = 0;
  std::size_t in_flight_ = 0;
  std::uint64_t generation_ = 0;
  bool quit_ = false;
  std::exception_ptr error_;
};

}  // namespace mcsim
