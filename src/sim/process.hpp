/// \file
/// \brief Process-oriented simulation facade (the CSIM18 programming
/// model) on top of the event-driven core, built on C++20 coroutines.
//
// CSIM expresses a model as processes that hold state across simulated
// time; our schedulers use raw events instead, but the facade exists so
// models written in CSIM style port directly:
//
//   Process customer(Simulator& sim, Resource& cpu) {
//     co_await delay(sim, 5.0);        // think time
//     co_await cpu.acquire();          // CSIM "use"/"reserve"
//     co_await delay(sim, 1.7);        // service
//     cpu.release();
//   }
//
// Processes start eagerly and are detached: the coroutine frame lives until
// the body finishes, kept alive by the pending event that will resume it.
// Exceptions escaping a process terminate the program (there is no caller
// to rethrow to), matching the behaviour of detached CSIM processes.
#pragma once

#include <coroutine>
#include <cstdint>
#include <deque>
#include <exception>

#include "sim/simulator.hpp"

namespace mcsim {

class [[nodiscard]] Process {
 public:
  struct promise_type {
    Process get_return_object() { return Process{}; }
    std::suspend_never initial_suspend() noexcept { return {}; }
    std::suspend_never final_suspend() noexcept { return {}; }
    void return_void() noexcept {}
    [[noreturn]] void unhandled_exception() { std::terminate(); }
  };
};

/// Awaitable that resumes the process after `dt` simulated seconds.
class DelayAwaitable {
 public:
  DelayAwaitable(Simulator& sim, double dt) : sim_(sim), dt_(dt) {}
  bool await_ready() const noexcept { return dt_ == 0.0; }
  void await_suspend(std::coroutine_handle<> handle) {
    sim_.schedule_in(dt_, [handle] { handle.resume(); });
  }
  void await_resume() const noexcept {}

 private:
  Simulator& sim_;
  double dt_;
};

/// co_await delay(sim, dt) — CSIM's hold().
inline DelayAwaitable delay(Simulator& sim, double dt) { return {sim, dt}; }

/// A counted resource with FIFO waiting — CSIM's facility. Acquire suspends
/// the calling process until the requested units are free; release hands
/// units to waiters in arrival order (no barging: a large request at the
/// head blocks smaller ones behind it, like the paper's FCFS queues).
class Resource {
 public:
  Resource(Simulator& sim, std::uint32_t capacity);
  Resource(const Resource&) = delete;
  Resource& operator=(const Resource&) = delete;

  [[nodiscard]] std::uint32_t capacity() const { return capacity_; }
  [[nodiscard]] std::uint32_t available() const { return available_; }
  [[nodiscard]] std::size_t waiters() const { return waiting_.size(); }

  class AcquireAwaitable {
   public:
    AcquireAwaitable(Resource& resource, std::uint32_t units)
        : resource_(resource), units_(units) {}
    /// Claims the units on the fast path (no waiters, enough available), so
    /// the caller proceeds without suspending; otherwise the process queues.
    bool await_ready() noexcept;
    void await_suspend(std::coroutine_handle<> handle);
    void await_resume() const noexcept {}

   private:
    friend class Resource;
    Resource& resource_;
    std::uint32_t units_;
  };

  /// co_await resource.acquire(n).
  AcquireAwaitable acquire(std::uint32_t units = 1);

  /// Return units and wake eligible waiters (in FIFO order).
  void release(std::uint32_t units = 1);

 private:
  struct Waiter {
    std::coroutine_handle<> handle;
    std::uint32_t units;
  };
  void grant_waiters();

  Simulator& sim_;
  std::uint32_t capacity_;
  std::uint32_t available_;
  std::deque<Waiter> waiting_;
};

}  // namespace mcsim
