/// \file
/// \brief Pending-event calendar: a binary min-heap ordered by (time, id).
//
// Ids are issued monotonically, so ordering ties by id makes simultaneous
// events fire in scheduling order, which keeps runs deterministic (this is
// the seq field of earlier revisions folded into the id — one less word
// per heap entry). Cancellation is lazy and O(1): a bitmap holds one
// *resolved* bit per issued id, set when the event fires or is cancelled.
// cancel() sets the bit; a heap entry whose bit is set is dead and is
// skipped when it surfaces. Popped entries leave the heap immediately, so
// dead entries can only come from cancel(): a stale counter lets the
// cancel-free pop path skip liveness checks entirely (one integer compare —
// no hash probe, no bitmap load). A resolved id (popped or cancelled) can
// never cancel a live event, so double-cancel and cancel-after-fire are
// rejected instead of corrupting the live count.
//
// Each entry also carries an opaque 32-bit `slot` for the owner's payload
// (the Simulator's handler-slot index). The calendar never interprets it;
// it only hands the slots of lazily-skipped cancelled entries back through
// drain_reclaimed_slots() so the owner can recycle them.
//
// Memory: one bit per id ever issued (a 50k-job paper run issues ~2e5 ids,
// i.e. ~25 KB); calendars are per-run objects, so the bitmap's lifetime is
// one simulation. reserve() pre-sizes both the bitmap and the heap from the
// run's known event horizon (the engine schedules ~2 events per job and
// keeps at most one arrival plus one departure per busy processor pending).
#pragma once

#include <cstdint>
#include <vector>

#include "sim/event.hpp"

namespace mcsim {

class Calendar {
 public:
  struct Entry {
    double time;
    EventId id;
    std::uint32_t slot;
  };

  /// Insert an event; returns its id. `slot` is an opaque payload handle
  /// returned with the entry on pop (the Simulator's handler slot).
  EventId push(double time, std::uint32_t slot = 0);

  /// Cancel by id; returns false if the id is not pending.
  bool cancel(EventId id);

  [[nodiscard]] bool empty() const { return live_count_ == 0; }
  [[nodiscard]] std::size_t size() const { return live_count_; }

  /// Timestamp of the earliest live event; requires !empty().
  [[nodiscard]] double next_time();

  /// Pop the earliest live event; requires !empty().
  Entry pop();

  /// Pop *every* live event sharing the earliest timestamp into `out`
  /// (cleared first), in push order — the simulator's same-timestamp batch
  /// drain. One skip_resolved scan and one front read per entry, no
  /// re-comparison of the tie key against the whole heap per event.
  void pop_ties(std::vector<Entry>& out);

  /// Move the payload slots of lazily-skipped cancelled entries into `out`
  /// (appended); the owner recycles them.
  void drain_reclaimed_slots(std::vector<std::uint32_t>& out);

  /// Pre-size for a run expected to issue `expected_ids` events with at
  /// most `expected_pending` simultaneously pending (the event horizon).
  void reserve(std::size_t expected_ids, std::size_t expected_pending);

  void clear();

 private:
  [[nodiscard]] bool resolved(EventId id) const {
    return (resolved_[id >> 6] >> (id & 63)) & 1u;
  }
  void mark_resolved(EventId id) { resolved_[id >> 6] |= std::uint64_t{1} << (id & 63); }

  void heap_push(Entry entry);
  void heap_pop();
  void skip_resolved();
  [[nodiscard]] static bool less(const Entry& a, const Entry& b) {
    return a.time < b.time || (a.time == b.time && a.id < b.id);
  }

  std::vector<Entry> heap_;
  std::vector<std::uint64_t> resolved_;  // bit per issued id; 1 = fired/cancelled
  std::vector<std::uint32_t> reclaimed_;  // slots of skipped cancelled entries
  EventId next_id_ = 1;
  std::size_t live_count_ = 0;
  std::size_t stale_count_ = 0;  // cancelled entries still buried in heap_
};

}  // namespace mcsim
