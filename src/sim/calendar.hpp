/// \file
/// \brief Pending-event calendar: a binary min-heap ordered by
/// (time, sequence).
//
// The sequence number makes simultaneous events fire in scheduling order,
// which keeps runs deterministic. Cancellation is lazy and O(1): ids are
// issued monotonically and a bitmap holds one *resolved* bit per issued id,
// set when the event fires or is cancelled. cancel() sets the bit; a heap
// entry whose bit is set is dead and is skipped when it surfaces. Popped
// entries leave the heap immediately, so dead entries can only come from
// cancel(): a stale counter lets the cancel-free pop path skip liveness
// checks entirely (one integer compare — no hash probe, no bitmap load).
// A resolved id (popped or cancelled) can never cancel a live event, so
// double-cancel and cancel-after-fire are rejected instead of corrupting
// the live count.
//
// Memory: one bit per id ever issued (a 50k-job paper run issues ~2e5 ids,
// i.e. ~25 KB); calendars are per-run objects, so the bitmap's lifetime is
// one simulation.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/event.hpp"

namespace mcsim {

class Calendar {
 public:
  struct Entry {
    double time;
    std::uint64_t seq;
    EventId id;
  };

  /// Insert an event; returns its id.
  EventId push(double time);

  /// Cancel by id; returns false if the id is not pending.
  bool cancel(EventId id);

  [[nodiscard]] bool empty() const { return live_count_ == 0; }
  [[nodiscard]] std::size_t size() const { return live_count_; }

  /// Timestamp of the earliest live event; requires !empty().
  [[nodiscard]] double next_time();

  /// Pop the earliest live event; requires !empty().
  Entry pop();

  void clear();

 private:
  [[nodiscard]] bool resolved(EventId id) const {
    return (resolved_[id >> 6] >> (id & 63)) & 1u;
  }
  void mark_resolved(EventId id) { resolved_[id >> 6] |= std::uint64_t{1} << (id & 63); }

  void heap_push(Entry entry);
  void heap_pop();
  void skip_resolved();
  [[nodiscard]] static bool less(const Entry& a, const Entry& b) {
    return a.time < b.time || (a.time == b.time && a.seq < b.seq);
  }

  std::vector<Entry> heap_;
  std::vector<std::uint64_t> resolved_;  // bit per issued id; 1 = fired/cancelled
  std::uint64_t next_seq_ = 0;
  EventId next_id_ = 1;
  std::size_t live_count_ = 0;
  std::size_t stale_count_ = 0;  // cancelled entries still buried in heap_
};

}  // namespace mcsim
