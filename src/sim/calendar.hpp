// Pending-event calendar: a binary min-heap ordered by (time, sequence).
//
// The sequence number makes simultaneous events fire in scheduling order,
// which keeps runs deterministic. Cancellation is lazy: cancelled ids stay
// in the heap and are skipped on pop; the cancelled-id set is kept small by
// erasing ids as their entries surface.
#pragma once

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "sim/event.hpp"

namespace mcsim {

class Calendar {
 public:
  struct Entry {
    double time;
    std::uint64_t seq;
    EventId id;
  };

  /// Insert an event; returns its id.
  EventId push(double time);

  /// Cancel by id; returns false if the id is not pending.
  bool cancel(EventId id);

  [[nodiscard]] bool empty() const { return live_count_ == 0; }
  [[nodiscard]] std::size_t size() const { return live_count_; }

  /// Timestamp of the earliest live event; requires !empty().
  [[nodiscard]] double next_time();

  /// Pop the earliest live event; requires !empty().
  Entry pop();

  void clear();

 private:
  void heap_push(Entry entry);
  void heap_pop();
  void skip_cancelled();
  [[nodiscard]] static bool less(const Entry& a, const Entry& b) {
    return a.time < b.time || (a.time == b.time && a.seq < b.seq);
  }

  std::vector<Entry> heap_;
  std::unordered_set<EventId> cancelled_;
  std::uint64_t next_seq_ = 0;
  EventId next_id_ = 1;
  std::size_t live_count_ = 0;
};

}  // namespace mcsim
