#include "sim/parallel_simulator.hpp"

#include <algorithm>
#include <utility>

#include "util/assert.hpp"

namespace mcsim {

namespace {
bool heap_after(const LpEvent& a, const LpEvent& b) { return lp_event_less(b, a); }
}  // namespace

ParallelSimulator::ParallelSimulator(Simulator& owner, const ParallelConfig& config)
    : owner_(owner),
      lps_(config.lp_count == 0 ? 1 : config.lp_count),
      crew_(config.worker_threads),
      horizon_(config.lookahead_hint) {
  resolved_.push_back(0);  // id 0 is never issued; keep the bitmap non-empty
}

std::uint32_t ParallelSimulator::alloc_slot() {
  if (!free_slots_.empty()) {
    const std::uint32_t slot = free_slots_.back();
    free_slots_.pop_back();
    return slot;
  }
  slots_.emplace_back();
  return static_cast<std::uint32_t>(slots_.size() - 1);
}

void ParallelSimulator::grow_resolved() {
  const std::size_t need = (next_id_ >> 6U) + 1;
  if (resolved_.size() < need) resolved_.resize(need, 0);
}

EventId ParallelSimulator::schedule_at(double when, EventHandler handler) {
  const std::uint32_t slot = alloc_slot();
  slots_[slot] = std::move(handler);
  const EventId id = next_id_++;
  grow_resolved();
  const LpEvent event{when, id, slot};
  ++pending_;
  // Inside an open window, anything at or below the cut line must join
  // the live merge: the horizon may overshoot the model's lookahead and
  // conservatism is restored here, not by the cut itself.
  if (window_open_ && when <= t_cut_) {
    spill_push(event);
  } else {
    lps_[current_lp_].stage(event);
  }
  return id;
}

bool ParallelSimulator::cancel(EventId id) {
  if (id == kNoEvent || id >= next_id_ || is_resolved(id)) return false;
  // The entry stays wherever it is (LP heap, staging lane, window or
  // spill) and is dropped when it surfaces; the handler slot is parked
  // then and reclaimed at the next serial drain — the same lazy contract
  // as the serial Calendar's resolved bitmap.
  mark_resolved(id);
  has_stale_ = true;
  MCSIM_ASSERT(pending_ > 0);
  --pending_;
  return true;
}

void ParallelSimulator::spill_push(const LpEvent& event) {
  spill_.push_back(event);
  std::push_heap(spill_.begin(), spill_.end(), heap_after);
}

LpEvent ParallelSimulator::spill_pop() {
  std::pop_heap(spill_.begin(), spill_.end(), heap_after);
  const LpEvent event = spill_.back();
  spill_.pop_back();
  return event;
}

const LpEvent* ParallelSimulator::merge_peek(int* source) {
  if (has_stale_) {
    while (!spill_.empty() && is_resolved(spill_.front().id)) {
      free_slots_.push_back(spill_.front().slot);
      spill_pop();
    }
  }
  const LpEvent* best = nullptr;
  int best_source = kSpillSource;
  if (!spill_.empty()) best = &spill_.front();
  for (std::size_t i = 0; i < lps_.size(); ++i) {
    const LpEvent* candidate = lps_[i].front(resolved_, has_stale_);
    if (candidate != nullptr && (best == nullptr || lp_event_less(*candidate, *best))) {
      best = candidate;
      best_source = static_cast<int>(i);
    }
  }
  *source = best_source;
  return best;
}

void ParallelSimulator::merge_pop_dispatch(int source) {
  const LpEvent event = source == kSpillSource
                            ? spill_pop()
                            : lps_[static_cast<std::size_t>(source)].pop_front();
  dispatch(event);
}

bool ParallelSimulator::merge_one() {
  int source = kSpillSource;
  const LpEvent* next = merge_peek(&source);
  if (next == nullptr) {
    window_open_ = false;
    return false;
  }
  merge_pop_dispatch(source);
  return true;
}

double ParallelSimulator::global_next_time() const {
  double t = LogicalProcess::kNever;
  for (const LogicalProcess& lp : lps_) t = std::min(t, lp.next_time());
  return t;
}

void ParallelSimulator::collect_dead_slots() {
  for (LogicalProcess& lp : lps_) lp.drain_dead_slots(free_slots_);
}

bool ParallelSimulator::refill() {
  window_open_ = false;
  MCSIM_ASSERT(spill_.empty());
  // pending_ counts live events only, so this is the authoritative
  // emptiness test even when heaps still hold cancelled entries.
  while (pending_ > 0) {
    const double t_min = global_next_time();
    MCSIM_ASSERT(t_min < LogicalProcess::kNever);
    const double t_cut = t_min + horizon_.horizon();
    ++barriers_;
    const auto task = [this, t_cut](std::size_t i) {
      lps_[i].flush_and_extract(t_cut, resolved_, has_stale_);
    };
    crew_.run(lps_.size(), task);
    if (has_stale_) collect_dead_slots();
    std::size_t extracted = 0;
    double t_last = t_min;
    for (const LogicalProcess& lp : lps_) {
      extracted += lp.window_size();
      t_last = std::max(t_last, lp.window_back_time());
    }
    horizon_.on_window(extracted, t_last - t_min);
    if (extracted > 0) {
      window_open_ = true;
      t_cut_ = t_cut;
      return true;
    }
    // Everything below the cut was stale; those entries are gone now, so
    // the next round's t_min strictly advances.
  }
  return false;
}

void ParallelSimulator::dispatch(const LpEvent& event) {
  MCSIM_ASSERT(event.time >= owner_.now_);
  owner_.now_ = event.time;
  EventFn handler = std::move(slots_[event.slot]);
  free_slots_.push_back(event.slot);
  mark_resolved(event.id);  // a later cancel() of this id must report false
  --pending_;
  ++owner_.executed_;
  handler();
  if (owner_.step_hook_ && ++owner_.events_since_hook_ >= owner_.hook_stride_) {
    owner_.events_since_hook_ = 0;
    owner_.step_hook_(owner_.now_, pending_);
  }
}

bool ParallelSimulator::step() {
  if (merge_one()) return true;
  if (!refill()) return false;
  return merge_one();
}

void ParallelSimulator::run() {
  owner_.stop_requested_ = false;
  while (!owner_.stop_requested_) {
    if (!merge_one() && !refill()) break;
  }
}

void ParallelSimulator::run_until(double until) {
  owner_.stop_requested_ = false;
  while (!owner_.stop_requested_) {
    int source = kSpillSource;
    const LpEvent* next = merge_peek(&source);
    if (next != nullptr) {
      // Unlike serial batch remnants (always at the already-accepted
      // clock), a window remnant may lie beyond `until`; it stays pending
      // and fires on re-entry, exactly as it would from the serial
      // calendar.
      if (next->time > until) break;
      merge_pop_dispatch(source);
      continue;
    }
    window_open_ = false;
    if (pending_ == 0 || global_next_time() > until) break;
    if (!refill()) break;
  }
  if (!owner_.stop_requested_ && owner_.now_ < until) owner_.now_ = until;
}

void ParallelSimulator::reset() {
  for (LogicalProcess& lp : lps_) lp.clear();
  slots_.clear();
  free_slots_.clear();
  spill_.clear();
  resolved_.assign(1, 0);
  next_id_ = 1;
  pending_ = 0;
  current_lp_ = 0;
  window_open_ = false;
  t_cut_ = 0.0;
  has_stale_ = false;
  barriers_ = 0;
  horizon_ = HorizonController(horizon_.hint());
}

void ParallelSimulator::reserve(std::size_t expected_total, std::size_t expected_pending) {
  slots_.reserve(expected_pending);
  free_slots_.reserve(expected_pending);
  resolved_.reserve((expected_total >> 6U) + 2);
  // Cross-LP traffic lands on the coordinator; cluster LPs see a share.
  const std::size_t per_lp = expected_pending / lps_.size() + 16;
  lps_.front().reserve(expected_pending);
  for (std::size_t i = 1; i < lps_.size(); ++i) lps_[i].reserve(per_lp);
}

}  // namespace mcsim
