#include "sim/lp.hpp"

#include <algorithm>

namespace mcsim {

namespace {
/// std::push_heap builds a max-heap, so feed it the inverted comparator.
bool heap_after(const LpEvent& a, const LpEvent& b) { return lp_event_less(b, a); }
}  // namespace

void LogicalProcess::heap_push(const LpEvent& event) {
  heap_.push_back(event);
  std::push_heap(heap_.begin(), heap_.end(), heap_after);
}

LpEvent LogicalProcess::heap_pop() {
  std::pop_heap(heap_.begin(), heap_.end(), heap_after);
  const LpEvent event = heap_.back();
  heap_.pop_back();
  return event;
}

void LogicalProcess::flush_and_extract(double t_cut,
                                       const std::vector<std::uint64_t>& resolved,
                                       bool check_stale) {
  for (const LpEvent& event : staged_) {
    if (check_stale && lp_event_resolved(resolved, event.id)) {
      dead_slots_.push_back(event.slot);
      continue;
    }
    heap_push(event);
  }
  staged_.clear();
  staged_min_ = kNever;
  window_.clear();
  cursor_ = 0;
  while (!heap_.empty() && heap_.front().time <= t_cut) {
    const LpEvent event = heap_pop();
    if (check_stale && lp_event_resolved(resolved, event.id)) {
      dead_slots_.push_back(event.slot);
      continue;
    }
    window_.push_back(event);
  }
}

const LpEvent* LogicalProcess::front(const std::vector<std::uint64_t>& resolved,
                                     bool check_stale) {
  while (cursor_ < window_.size()) {
    const LpEvent& event = window_[cursor_];
    if (check_stale && lp_event_resolved(resolved, event.id)) {
      dead_slots_.push_back(event.slot);
      ++cursor_;
      continue;
    }
    return &event;
  }
  return nullptr;
}

void LogicalProcess::drain_dead_slots(std::vector<std::uint32_t>& out) {
  out.insert(out.end(), dead_slots_.begin(), dead_slots_.end());
  dead_slots_.clear();
}

void LogicalProcess::reserve(std::size_t expected_pending) {
  heap_.reserve(expected_pending);
  staged_.reserve(expected_pending);
  window_.reserve(expected_pending);
}

void LogicalProcess::clear() {
  heap_.clear();
  staged_.clear();
  staged_min_ = kNever;
  window_.clear();
  cursor_ = 0;
  dead_slots_.clear();
}

}  // namespace mcsim
