#include "sim/channel.hpp"

#include <utility>

namespace mcsim {

WorkerCrew::WorkerCrew(unsigned threads) : threads_(threads == 0 ? 1 : threads) {
  members_.reserve(threads_ - 1);
  for (unsigned i = 1; i < threads_; ++i) {
    members_.emplace_back([this] { member_main(); });
  }
}

WorkerCrew::~WorkerCrew() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    quit_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& member : members_) member.join();
}

void WorkerCrew::claim_tasks(std::unique_lock<std::mutex>& lock) {
  const std::function<void(std::size_t)>* job = job_;
  while (next_ < count_) {
    const std::size_t index = next_++;
    ++in_flight_;
    lock.unlock();
    std::exception_ptr thrown;
    try {
      (*job)(index);
    } catch (...) {
      thrown = std::current_exception();
    }
    lock.lock();
    if (thrown && !error_) error_ = thrown;
    --in_flight_;
    if (next_ >= count_ && in_flight_ == 0) done_cv_.notify_all();
  }
}

void WorkerCrew::member_main() {
  std::unique_lock<std::mutex> lock(mu_);
  std::uint64_t seen = 0;
  for (;;) {
    work_cv_.wait(lock, [&] { return quit_ || generation_ != seen; });
    if (quit_) return;
    seen = generation_;
    claim_tasks(lock);
  }
}

void WorkerCrew::run(std::size_t count, const std::function<void(std::size_t)>& job) {
  if (count == 0) return;
  if (members_.empty()) {
    for (std::size_t i = 0; i < count; ++i) job(i);
    return;
  }
  std::unique_lock<std::mutex> lock(mu_);
  job_ = &job;
  count_ = count;
  next_ = 0;
  in_flight_ = 0;
  ++generation_;
  work_cv_.notify_all();
  claim_tasks(lock);
  done_cv_.wait(lock, [&] { return next_ >= count_ && in_flight_ == 0; });
  job_ = nullptr;
  if (error_) {
    std::exception_ptr thrown = std::exchange(error_, nullptr);
    lock.unlock();
    std::rethrow_exception(thrown);
  }
}

}  // namespace mcsim
