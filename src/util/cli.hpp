// Tiny command-line argument parser used by examples and bench harnesses.
//
// Supports:  --key=value   --key value   --flag   positional args.
// Unknown options raise; every option must be declared before parse().
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

namespace mcsim {

/// The exit-code convention every mcsim verb follows (pinned by
/// tests/util_cli_test.cpp and the serve-smoke CI job):
///   0  success
///   1  runtime failure  (unreadable trace, diverged verify, server error)
///   2  usage error      (unknown flag, malformed option value, missing
///                        positional, unknown command)
inline constexpr int kExitOk = 0;
inline constexpr int kExitRuntime = 1;
inline constexpr int kExitUsage = 2;

/// Thrown for errors in how the command line itself was written — unknown
/// options, flags given values, non-numeric numbers. Derives from
/// std::invalid_argument so existing catch sites keep working; the CLI main
/// maps it to kExitUsage where every other exception maps to kExitRuntime.
class CliUsageError : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

/// The exit code the convention assigns to an escaped exception.
int cli_exit_code(const std::exception& error);

class CliParser {
 public:
  explicit CliParser(std::string program_description);

  /// Declare an option with a default value (shown in --help).
  void add_option(const std::string& name, const std::string& default_value,
                  const std::string& help);
  /// Declare a boolean flag (false unless present).
  void add_flag(const std::string& name, const std::string& help);

  /// Parse argv. Returns false if --help was requested (help printed to stdout).
  /// Throws std::invalid_argument on unknown or malformed options.
  bool parse(int argc, const char* const* argv);

  [[nodiscard]] std::string get(const std::string& name) const;
  [[nodiscard]] double get_double(const std::string& name) const;
  [[nodiscard]] std::int64_t get_int(const std::string& name) const;
  [[nodiscard]] std::uint64_t get_uint(const std::string& name) const;
  [[nodiscard]] bool get_flag(const std::string& name) const;
  [[nodiscard]] const std::vector<std::string>& positional() const { return positional_; }

  /// Render the --help text.
  [[nodiscard]] std::string help_text() const;

 private:
  struct Option {
    std::string default_value;
    std::string help;
    bool is_flag = false;
  };

  std::string description_;
  std::string program_name_;
  std::map<std::string, Option> options_;
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace mcsim
