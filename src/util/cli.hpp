// Tiny command-line argument parser used by examples and bench harnesses.
//
// Supports:  --key=value   --key value   --flag   positional args.
// Unknown options raise; every option must be declared before parse().
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace mcsim {

class CliParser {
 public:
  explicit CliParser(std::string program_description);

  /// Declare an option with a default value (shown in --help).
  void add_option(const std::string& name, const std::string& default_value,
                  const std::string& help);
  /// Declare a boolean flag (false unless present).
  void add_flag(const std::string& name, const std::string& help);

  /// Parse argv. Returns false if --help was requested (help printed to stdout).
  /// Throws std::invalid_argument on unknown or malformed options.
  bool parse(int argc, const char* const* argv);

  [[nodiscard]] std::string get(const std::string& name) const;
  [[nodiscard]] double get_double(const std::string& name) const;
  [[nodiscard]] std::int64_t get_int(const std::string& name) const;
  [[nodiscard]] std::uint64_t get_uint(const std::string& name) const;
  [[nodiscard]] bool get_flag(const std::string& name) const;
  [[nodiscard]] const std::vector<std::string>& positional() const { return positional_; }

  /// Render the --help text.
  [[nodiscard]] std::string help_text() const;

 private:
  struct Option {
    std::string default_value;
    std::string help;
    bool is_flag = false;
  };

  std::string description_;
  std::string program_name_;
  std::map<std::string, Option> options_;
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace mcsim
