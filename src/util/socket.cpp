#include "util/socket.hpp"

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <time.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <csignal>
#include <cstring>
#include <stdexcept>
#include <system_error>

#include "util/assert.hpp"

namespace mcsim {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::system_error(errno, std::generic_category(), what);
}

/// Fill a sockaddr_un for `path`, rejecting paths that do not fit sun_path
/// (the classic 108-byte limit) with a clear message instead of silent
/// truncation.
sockaddr_un make_address(const std::string& path) {
  sockaddr_un address{};
  address.sun_family = AF_UNIX;
  MCSIM_REQUIRE(path.size() < sizeof(address.sun_path),
                "socket path too long for a Unix-domain socket (" +
                    std::to_string(path.size()) + " bytes, limit " +
                    std::to_string(sizeof(address.sun_path) - 1) + "): " + path);
  std::memcpy(address.sun_path, path.c_str(), path.size() + 1);
  return address;
}

/// Poll one fd for `events`; true when ready, false on timeout. EINTR
/// retries with the remaining time (coarsely: full timeout again — the
/// callers' timeouts are generous guards, not precise deadlines).
bool poll_one(int fd, short events, int timeout_ms) {
  pollfd entry{};
  entry.fd = fd;
  entry.events = events;
  for (;;) {
    const int ready = ::poll(&entry, 1, timeout_ms);
    if (ready > 0) return true;
    if (ready == 0) return false;
    if (errno != EINTR) throw_errno("poll");
  }
}

}  // namespace

void Fd::reset() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

UnixStream UnixStream::connect(const std::string& path) {
  const sockaddr_un address = make_address(path);
  Fd fd(::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!fd.valid()) throw_errno("socket");
  if (::connect(fd.get(), reinterpret_cast<const sockaddr*>(&address),
                sizeof(address)) != 0) {
    throw_errno("connect to " + path);
  }
  return UnixStream(std::move(fd));
}

void UnixStream::set_nonblocking() {
  const int flags = ::fcntl(fd_.get(), F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd_.get(), F_SETFL, flags | O_NONBLOCK) < 0) {
    throw_errno("fcntl O_NONBLOCK");
  }
}

void UnixStream::write_all(const std::string& data, int timeout_ms) {
  std::size_t written = 0;
  while (written < data.size()) {
    if (!poll_one(fd_.get(), POLLOUT, timeout_ms)) {
      throw std::system_error(ETIMEDOUT, std::generic_category(), "socket write");
    }
    const ssize_t sent = ::send(fd_.get(), data.data() + written,
                                data.size() - written, MSG_NOSIGNAL);
    if (sent < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      throw_errno("socket write");
    }
    written += static_cast<std::size_t>(sent);
  }
}

bool UnixStream::read_line(std::string& line, int timeout_ms,
                           std::size_t max_line_bytes) {
  for (;;) {
    if (const std::size_t pos = buffer_.find('\n'); pos != std::string::npos) {
      line.assign(buffer_, 0, pos);
      buffer_.erase(0, pos + 1);
      return true;
    }
    if (buffer_.size() > max_line_bytes) {
      throw std::runtime_error("mcsim: protocol line exceeds " +
                               std::to_string(max_line_bytes) + " bytes");
    }
    if (!poll_one(fd_.get(), POLLIN, timeout_ms)) {
      throw std::system_error(ETIMEDOUT, std::generic_category(), "socket read");
    }
    char chunk[4096];
    const ssize_t got = ::recv(fd_.get(), chunk, sizeof(chunk), 0);
    if (got < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      throw_errno("socket read");
    }
    if (got == 0) {
      // Clean EOF: a half-read line at EOF is a framing error upstream;
      // report "no more lines" either way and let the caller decide.
      return false;
    }
    buffer_.append(chunk, static_cast<std::size_t>(got));
  }
}

UnixListener::~UnixListener() { close(); }

void UnixListener::close() {
  if (fd_.valid() && !path_.empty()) ::unlink(path_.c_str());
  fd_.reset();
  path_.clear();
}

UnixListener UnixListener::bind(const std::string& path, int backlog) {
  const sockaddr_un address = make_address(path);
  // Replace a stale socket file (crashed predecessor); refuse to clobber
  // anything that is not a socket.
  struct stat info{};
  if (::lstat(path.c_str(), &info) == 0) {
    MCSIM_REQUIRE(S_ISSOCK(info.st_mode),
                  "refusing to replace non-socket file at " + path);
    ::unlink(path.c_str());
  }
  // The listener must be non-blocking itself: accept4's SOCK_NONBLOCK only
  // shapes the *accepted* socket, and the server's accept-until-empty loop
  // would otherwise block inside accept4 once the backlog drains.
  Fd fd(::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC | SOCK_NONBLOCK, 0));
  if (!fd.valid()) throw_errno("socket");
  if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&address),
             sizeof(address)) != 0) {
    throw_errno("bind " + path);
  }
  if (::listen(fd.get(), backlog) != 0) throw_errno("listen on " + path);
  UnixListener listener;
  listener.fd_ = std::move(fd);
  listener.path_ = path;
  return listener;
}

UnixStream UnixListener::accept() {
  const int conn =
      ::accept4(fd_.get(), nullptr, nullptr, SOCK_CLOEXEC | SOCK_NONBLOCK);
  if (conn < 0) {
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR ||
        errno == ECONNABORTED) {
      return UnixStream();
    }
    throw_errno("accept");
  }
  return UnixStream(Fd(conn));
}

SelfPipe::SelfPipe() {
  int fds[2];
  if (::pipe2(fds, O_CLOEXEC | O_NONBLOCK) != 0) throw_errno("pipe2");
  read_ = Fd(fds[0]);
  write_ = Fd(fds[1]);
}

void SelfPipe::notify() const {
  const char byte = 1;
  // A full pipe (EAGAIN) already guarantees a pending wakeup; every other
  // failure is ignored too — notify() must stay async-signal-safe, and the
  // poll loop's level-triggered drain makes lost extra bytes harmless.
  [[maybe_unused]] const ssize_t rc = ::write(write_.get(), &byte, 1);
}

void SelfPipe::drain() const {
  char sink[64];
  while (::read(read_.get(), sink, sizeof(sink)) > 0) {
  }
}

namespace {

// The one write-end fd the signal handler pokes. Plain atomic int: signal
// handlers may only touch lock-free atomics and call async-signal-safe
// functions (write qualifies).
std::atomic<int> g_shutdown_pipe_fd{-1};
std::atomic<bool> g_shutdown_seen{false};

void shutdown_signal_handler(int /*signo*/) {
  // Flag first, then wake: the poll loop drains the pipe and *then* asks
  // consume_shutdown_signal(), so this order can never lose a signal.
  g_shutdown_seen.store(true, std::memory_order_relaxed);
  const int fd = g_shutdown_pipe_fd.load(std::memory_order_relaxed);
  if (fd >= 0) {
    const char byte = 1;
    [[maybe_unused]] const ssize_t rc = ::write(fd, &byte, 1);
  }
}

}  // namespace

bool consume_shutdown_signal() {
  return g_shutdown_seen.exchange(false, std::memory_order_relaxed);
}

void install_shutdown_signals(const SelfPipe* pipe) {
  struct sigaction action{};
  if (pipe != nullptr) {
    // Expose the fd before installing the handler so a signal arriving
    // between the two statements still finds a valid target.
    g_shutdown_pipe_fd.store(pipe->write_fd(), std::memory_order_relaxed);
    action.sa_handler = shutdown_signal_handler;
  } else {
    g_shutdown_pipe_fd.store(-1, std::memory_order_relaxed);
    g_shutdown_seen.store(false, std::memory_order_relaxed);
    action.sa_handler = SIG_DFL;
  }
  sigemptyset(&action.sa_mask);
  action.sa_flags = SA_RESTART;
  if (::sigaction(SIGTERM, &action, nullptr) != 0 ||
      ::sigaction(SIGINT, &action, nullptr) != 0) {
    throw_errno("sigaction");
  }
}

long long monotonic_ms() {
  timespec now{};
  ::clock_gettime(CLOCK_MONOTONIC, &now);
  return static_cast<long long>(now.tv_sec) * 1000 +
         now.tv_nsec / 1'000'000;
}

}  // namespace mcsim
