#include "util/rng.hpp"

#include <cmath>

#include "util/assert.hpp"

namespace mcsim {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
}

Rng::result_type Rng::operator()() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 random bits -> double in [0,1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  MCSIM_ASSERT(lo <= hi);
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_int(std::uint64_t n) {
  MCSIM_ASSERT(n > 0);
  // Lemire's nearly-divisionless method (128-bit multiply; the GCC/Clang
  // extension type is wrapped in __extension__ to stay -Wpedantic-clean).
  __extension__ using uint128 = unsigned __int128;
  std::uint64_t x = (*this)();
  uint128 m = static_cast<uint128>(x) * n;
  auto l = static_cast<std::uint64_t>(m);
  if (l < n) {
    const std::uint64_t t = (0 - n) % n;
    while (l < t) {
      x = (*this)();
      m = static_cast<uint128>(x) * n;
      l = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Rng::exponential_mean(double mean) {
  MCSIM_ASSERT(mean > 0.0);
  double u;
  do {
    u = uniform();
  } while (u <= 0.0);
  return -mean * std::log(u);
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u, v, s;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  cached_normal_ = v * factor;
  has_cached_normal_ = true;
  return u * factor;
}

void Rng::jump() {
  static constexpr std::uint64_t kJump[] = {0x180EC6D33CFD0ABAULL, 0xD5A61266F0C9392CULL,
                                            0xA9582618E03FC9AAULL, 0x39ABDC4529B1661CULL};
  std::uint64_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
  for (std::uint64_t jump : kJump) {
    for (int b = 0; b < 64; ++b) {
      if (jump & (1ULL << b)) {
        s0 ^= s_[0];
        s1 ^= s_[1];
        s2 ^= s_[2];
        s3 ^= s_[3];
      }
      (*this)();
    }
  }
  s_[0] = s0;
  s_[1] = s1;
  s_[2] = s2;
  s_[3] = s3;
}

std::uint64_t derive_stream_seed(std::uint64_t master_seed, std::string_view stream_name) {
  // FNV-1a over the stream name...
  std::uint64_t hash = 0xCBF29CE484222325ULL;
  for (char c : stream_name) {
    hash ^= static_cast<std::uint64_t>(static_cast<unsigned char>(c));
    hash *= 0x100000001B3ULL;
  }
  // ...mixed with the master seed through splitmix64 twice.
  std::uint64_t state = master_seed ^ hash;
  splitmix64(state);
  return splitmix64(state);
}

Rng make_stream(std::uint64_t master_seed, std::string_view stream_name) {
  return Rng(derive_stream_seed(master_seed, stream_name));
}

}  // namespace mcsim
