/// \file
/// \brief Local-socket plumbing for the experiment service: Unix-domain
/// listener/stream wrappers with poll-based timeouts, a self-pipe for
/// waking a poll loop from worker threads, and an async-signal-safe
/// SIGTERM/SIGINT hook that turns termination signals into self-pipe
/// bytes so the server can drain in-flight runs instead of dying mid-run
/// (docs/SERVING.md).
///
/// Everything here is deliberately thin: RAII around file descriptors,
/// errno folded into std::system_error, no protocol knowledge. The
/// newline-delimited JSON framing lives one layer up in src/serve.
#pragma once

#include <cstddef>
#include <string>
#include <utility>

namespace mcsim {

/// Owning file descriptor (close-on-destroy, movable, non-copyable).
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) : fd_(fd) {}
  ~Fd() { reset(); }

  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;
  Fd(Fd&& other) noexcept : fd_(other.release()) {}
  Fd& operator=(Fd&& other) noexcept {
    if (this != &other) {
      reset();
      fd_ = other.release();
    }
    return *this;
  }

  [[nodiscard]] int get() const { return fd_; }
  [[nodiscard]] bool valid() const { return fd_ >= 0; }
  /// Close now (idempotent).
  void reset();
  /// Give up ownership without closing.
  int release() {
    const int fd = fd_;
    fd_ = -1;
    return fd;
  }

 private:
  int fd_ = -1;
};

/// One connected byte stream (a Unix-domain SOCK_STREAM endpoint).
/// Blocking reads/writes go through poll first so every operation carries a
/// timeout; the server additionally uses the fd directly in its own poll
/// loop with the stream in non-blocking mode.
class UnixStream {
 public:
  UnixStream() = default;
  explicit UnixStream(Fd fd) : fd_(std::move(fd)) {}

  /// Connect to the Unix-domain socket at `path`. Throws std::system_error
  /// (connection refused, missing socket, path too long).
  static UnixStream connect(const std::string& path);

  [[nodiscard]] int fd() const { return fd_.get(); }
  [[nodiscard]] bool valid() const { return fd_.valid(); }
  void close() { fd_.reset(); }

  /// Put the fd into non-blocking mode (the server's poll loop does this to
  /// every accepted connection).
  void set_nonblocking();

  /// Write all of `data`, polling for writability up to `timeout_ms` per
  /// chunk. Throws std::system_error on error or timeout; a closed peer
  /// surfaces as EPIPE (SIGPIPE is suppressed via MSG_NOSIGNAL).
  void write_all(const std::string& data, int timeout_ms);

  /// Read until a '\n' is seen (returned line excludes it), polling up to
  /// `timeout_ms` for each chunk. Returns false on clean EOF before any
  /// byte of a line. Throws std::system_error on error/timeout and
  /// std::runtime_error when a line exceeds `max_line_bytes` — the framing
  /// guard at the trust boundary.
  bool read_line(std::string& line, int timeout_ms, std::size_t max_line_bytes);

 private:
  Fd fd_;
  std::string buffer_;  ///< bytes read past the last returned line
};

/// A bound + listening Unix-domain socket. The socket file is unlinked on
/// destruction (best effort) so a cleanly shut down server leaves no stale
/// rendezvous behind.
class UnixListener {
 public:
  UnixListener() = default;
  ~UnixListener();

  UnixListener(const UnixListener&) = delete;
  UnixListener& operator=(const UnixListener&) = delete;
  UnixListener(UnixListener&& other) noexcept
      : fd_(std::move(other.fd_)), path_(std::move(other.path_)) {
    other.path_.clear();
  }
  UnixListener& operator=(UnixListener&& other) noexcept {
    if (this != &other) {
      close();
      fd_ = std::move(other.fd_);
      path_ = std::move(other.path_);
      other.path_.clear();
    }
    return *this;
  }

  /// Stop listening and remove the socket file now (what destruction would
  /// do); idempotent. The server calls this before serve() returns so a 0
  /// exit code means the rendezvous path is already gone.
  void close();

  /// Bind and listen on `path`. An existing *socket* file at the path is
  /// replaced (the crashed-predecessor case); a non-socket file is an
  /// error. Throws std::system_error / std::invalid_argument.
  static UnixListener bind(const std::string& path, int backlog = 64);

  [[nodiscard]] int fd() const { return fd_.get(); }
  [[nodiscard]] const std::string& path() const { return path_; }

  /// Accept one pending connection (the caller polls for readability
  /// first). Returns an invalid stream when no connection is pending
  /// (EAGAIN); throws std::system_error on real errors.
  UnixStream accept();

 private:
  Fd fd_;
  std::string path_;
};

/// A pipe whose read end a poll loop watches and whose write end worker
/// threads (and signal handlers — write(2) is async-signal-safe) poke to
/// wake it. Writes never block (O_NONBLOCK; a full pipe is fine, the wakeup
/// is level-triggered by drain()).
class SelfPipe {
 public:
  SelfPipe();

  [[nodiscard]] int read_fd() const { return read_.get(); }
  /// The write end — only for install_shutdown_signals, which must stash a
  /// raw fd a signal handler can write(2) to. Everyone else uses notify().
  [[nodiscard]] int write_fd() const { return write_.get(); }
  /// Write one byte to the pipe (thread- and signal-safe, never blocks).
  void notify() const;
  /// Drain every pending byte (called by the poll loop after wakeup).
  void drain() const;

 private:
  Fd read_;
  Fd write_;
};

/// Route SIGTERM and SIGINT to `pipe` (one notify per signal) so a poll
/// loop observes them as ordinary readiness instead of being killed.
/// Restores default disposition when called with nullptr. Only one pipe can
/// be installed at a time (the handler reads one global fd — the
/// async-signal-safety constraint).
void install_shutdown_signals(const SelfPipe* pipe);

/// True when a SIGTERM/SIGINT has been delivered since the last call
/// (consume semantics). The self-pipe wakes the poll loop; this tells it
/// *why* — the same pipe also carries run-completion wakeups.
bool consume_shutdown_signal();

/// Milliseconds of CLOCK_MONOTONIC — the timestamp base for latency
/// accounting in the serve layer (never serialized into manifests).
long long monotonic_ms();

}  // namespace mcsim
