// Deterministic random-number generation for simulations.
//
// Every simulation run takes a single 64-bit master seed. Independent named
// substreams (arrivals, job sizes, service times, queue assignment, ...) are
// derived from it so that different scheduling policies can be compared under
// common random numbers: the k-th job is identical across policies.
//
// The generator is xoshiro256**, seeded via splitmix64 — self-contained,
// fast, and with well-understood statistical quality; we avoid
// std::mt19937_64 for speed and because its seeding from a single word is
// notoriously weak.
#pragma once

#include <cstdint>
#include <string_view>

namespace mcsim {

/// splitmix64 step; used for seeding and stream derivation.
std::uint64_t splitmix64(std::uint64_t& state);

/// xoshiro256** PRNG. Satisfies std::uniform_random_bit_generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seed from a single 64-bit value (expanded through splitmix64).
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~static_cast<result_type>(0); }

  result_type operator()();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n) without modulo bias (Lemire's method).
  std::uint64_t uniform_int(std::uint64_t n);

  /// Exponential variate with the given mean (mean = 1/rate).
  double exponential_mean(double mean);

  /// Standard normal via Marsaglia polar method.
  double normal();

  /// Jump function: advances 2^128 steps; used to split streams.
  void jump();

 private:
  std::uint64_t s_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

/// Derive a substream seed from (master_seed, stream_name).
/// Uses FNV-1a over the name mixed through splitmix64, so streams with
/// different names are statistically independent.
std::uint64_t derive_stream_seed(std::uint64_t master_seed, std::string_view stream_name);

/// Convenience: an Rng positioned on the named substream.
Rng make_stream(std::uint64_t master_seed, std::string_view stream_name);

}  // namespace mcsim
