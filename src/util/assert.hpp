// Assertion and precondition macros for mcsim.
//
// MCSIM_ASSERT(cond)        -- internal invariant; aborts in debug, no-op in NDEBUG.
// MCSIM_REQUIRE(cond, msg)  -- public API precondition; always checked, throws
//                              std::invalid_argument so callers can recover.
#pragma once

#include <cassert>
#include <stdexcept>
#include <string>

#define MCSIM_ASSERT(cond) assert(cond)

#define MCSIM_REQUIRE(cond, msg)                                   \
  do {                                                             \
    if (!(cond)) {                                                 \
      throw std::invalid_argument(std::string("mcsim: ") + (msg)); \
    }                                                              \
  } while (0)
