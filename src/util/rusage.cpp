#include "util/rusage.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace mcsim {

std::uint64_t peak_rss_bytes() {
#if defined(__APPLE__)
  // macOS reports ru_maxrss in bytes.
  struct rusage usage {};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
  return static_cast<std::uint64_t>(usage.ru_maxrss);
#elif defined(__unix__)
  // Linux and the BSDs report ru_maxrss in kilobytes.
  struct rusage usage {};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
  return static_cast<std::uint64_t>(usage.ru_maxrss) * 1024;
#else
  return 0;
#endif
}

}  // namespace mcsim
