// CSV writing with RFC-4180 quoting. Bench harnesses emit CSV next to the
// human-readable tables so figures can be re-plotted directly.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace mcsim {

class CsvWriter {
 public:
  /// Writes to `out`; the stream must outlive the writer.
  explicit CsvWriter(std::ostream& out) : out_(out) {}

  /// Write the header row (once, before any data rows).
  void header(const std::vector<std::string>& columns);

  /// Start a new row; then call add() per field and end_row().
  CsvWriter& add(const std::string& field);
  CsvWriter& add(double value, int precision = 6);
  CsvWriter& add(std::int64_t value);
  CsvWriter& add(std::uint64_t value);
  void end_row();

  /// Convenience: write a full row of already-formatted fields.
  void row(const std::vector<std::string>& fields);

  [[nodiscard]] std::size_t rows_written() const { return rows_; }

 private:
  void write_field(const std::string& field);

  std::ostream& out_;
  bool row_open_ = false;
  bool first_in_row_ = true;
  std::size_t rows_ = 0;
};

/// Quote a field per RFC 4180 if it contains comma, quote, or newline.
std::string csv_escape(const std::string& field);

}  // namespace mcsim
