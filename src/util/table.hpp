// ASCII table rendering for the bench harnesses: prints aligned columns in
// the style of the paper's tables so outputs are directly comparable.
#pragma once

#include <string>
#include <vector>

namespace mcsim {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> columns);

  void add_row(std::vector<std::string> fields);

  /// Render with a header rule, right-aligning numeric-looking fields.
  [[nodiscard]] std::string render() const;

  [[nodiscard]] std::size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace mcsim
