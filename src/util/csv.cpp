#include "util/csv.hpp"

#include "util/strings.hpp"

namespace mcsim {

std::string csv_escape(const std::string& field) {
  const bool needs_quotes = field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

void CsvWriter::header(const std::vector<std::string>& columns) { row(columns); }

CsvWriter& CsvWriter::add(const std::string& field) {
  write_field(field);
  return *this;
}

CsvWriter& CsvWriter::add(double value, int precision) {
  write_field(format_double(value, precision));
  return *this;
}

CsvWriter& CsvWriter::add(std::int64_t value) {
  write_field(std::to_string(value));
  return *this;
}

CsvWriter& CsvWriter::add(std::uint64_t value) {
  write_field(std::to_string(value));
  return *this;
}

void CsvWriter::end_row() {
  out_ << '\n';
  row_open_ = false;
  first_in_row_ = true;
  ++rows_;
}

void CsvWriter::row(const std::vector<std::string>& fields) {
  for (const auto& field : fields) write_field(field);
  end_row();
}

void CsvWriter::write_field(const std::string& field) {
  if (!first_in_row_) out_ << ',';
  out_ << csv_escape(field);
  row_open_ = true;
  first_in_row_ = false;
}

}  // namespace mcsim
