#include "util/strings.hpp"

#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace mcsim {

std::string format_double(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string format_util(double value) { return format_double(value, 3); }

std::string format_double_roundtrip(double value) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

std::string str_printf(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::vector<std::string> split(std::string_view text, char delim) {
  std::vector<std::string> fields;
  size_t start = 0;
  while (true) {
    const size_t pos = text.find(delim, start);
    if (pos == std::string_view::npos) {
      fields.emplace_back(text.substr(start));
      break;
    }
    fields.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
  return fields;
}

std::string_view trim(std::string_view text) {
  size_t begin = 0;
  size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) ++begin;
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1]))) --end;
  return text.substr(begin, end - begin);
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

std::string to_lower(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) out.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  return out;
}

}  // namespace mcsim
