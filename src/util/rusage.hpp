// Thin process-resource probe for run provenance (docs/PERFORMANCE.md):
// the engine stamps peak RSS into the metrics registry at the end of a run
// so manifests record the memory footprint alongside throughput.
#pragma once

#include <cstdint>

namespace mcsim {

/// Peak resident set size of this process in bytes, or 0 where the
/// platform offers no getrusage-style probe.
[[nodiscard]] std::uint64_t peak_rss_bytes();

}  // namespace mcsim
