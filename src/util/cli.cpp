#include "util/cli.hpp"

#include <cstdio>
#include <sstream>

#include "util/assert.hpp"
#include "util/strings.hpp"

namespace mcsim {

// Argv-derived errors throw CliUsageError (exit 2); declaration-time misuse
// (duplicate/undeclared options) stays MCSIM_REQUIRE — that is a programming
// error in the tool, not in what the user typed.
#define MCSIM_USAGE_REQUIRE(cond, msg)             \
  do {                                             \
    if (!(cond)) {                                 \
      throw CliUsageError(std::string("mcsim: ") + (msg)); \
    }                                              \
  } while (0)

int cli_exit_code(const std::exception& error) {
  return dynamic_cast<const CliUsageError*>(&error) != nullptr ? kExitUsage
                                                               : kExitRuntime;
}

CliParser::CliParser(std::string program_description)
    : description_(std::move(program_description)) {}

void CliParser::add_option(const std::string& name, const std::string& default_value,
                           const std::string& help) {
  MCSIM_REQUIRE(!options_.count(name), "duplicate option --" + name);
  options_[name] = Option{default_value, help, /*is_flag=*/false};
}

void CliParser::add_flag(const std::string& name, const std::string& help) {
  MCSIM_REQUIRE(!options_.count(name), "duplicate flag --" + name);
  options_[name] = Option{"", help, /*is_flag=*/true};
}

bool CliParser::parse(int argc, const char* const* argv) {
  if (argc > 0) program_name_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(help_text().c_str(), stdout);
      return false;
    }
    if (!starts_with(arg, "--")) {
      positional_.push_back(std::move(arg));
      continue;
    }
    std::string body = arg.substr(2);
    std::string name;
    std::string value;
    bool has_value = false;
    if (const size_t eq = body.find('='); eq != std::string::npos) {
      name = body.substr(0, eq);
      value = body.substr(eq + 1);
      has_value = true;
    } else {
      name = body;
    }
    auto it = options_.find(name);
    MCSIM_USAGE_REQUIRE(it != options_.end(), "unknown option --" + name);
    if (it->second.is_flag) {
      MCSIM_USAGE_REQUIRE(!has_value, "flag --" + name + " takes no value");
      values_[name] = "1";
      continue;
    }
    if (!has_value) {
      MCSIM_USAGE_REQUIRE(i + 1 < argc, "option --" + name + " needs a value");
      value = argv[++i];
    }
    values_[name] = std::move(value);
  }
  return true;
}

std::string CliParser::get(const std::string& name) const {
  auto opt = options_.find(name);
  MCSIM_REQUIRE(opt != options_.end(), "option --" + name + " was never declared");
  auto it = values_.find(name);
  return it != values_.end() ? it->second : opt->second.default_value;
}

double CliParser::get_double(const std::string& name) const {
  const std::string text = get(name);
  size_t consumed = 0;
  double value = 0.0;
  try {
    value = std::stod(text, &consumed);
  } catch (const std::exception&) {
    consumed = 0;
  }
  MCSIM_USAGE_REQUIRE(consumed == text.size(),
                      "option --" + name + " is not a number: " + text);
  return value;
}

std::int64_t CliParser::get_int(const std::string& name) const {
  const std::string text = get(name);
  size_t consumed = 0;
  long long value = 0;
  try {
    value = std::stoll(text, &consumed);
  } catch (const std::exception&) {
    consumed = 0;
  }
  MCSIM_USAGE_REQUIRE(consumed == text.size(),
                      "option --" + name + " is not an integer: " + text);
  return value;
}

std::uint64_t CliParser::get_uint(const std::string& name) const {
  const std::int64_t value = get_int(name);
  MCSIM_USAGE_REQUIRE(value >= 0, "option --" + name + " must be non-negative");
  return static_cast<std::uint64_t>(value);
}

bool CliParser::get_flag(const std::string& name) const {
  auto opt = options_.find(name);
  MCSIM_REQUIRE(opt != options_.end() && opt->second.is_flag,
                "flag --" + name + " was never declared");
  return values_.count(name) > 0;
}

std::string CliParser::help_text() const {
  std::ostringstream out;
  out << description_ << "\n\nUsage: " << program_name_ << " [options]\n\nOptions:\n";
  for (const auto& [name, opt] : options_) {
    out << "  --" << name;
    if (!opt.is_flag) out << "=<value>  (default: " << opt.default_value << ")";
    out << "\n      " << opt.help << "\n";
  }
  out << "  --help\n      Show this message.\n";
  return out.str();
}

}  // namespace mcsim
