// Small string helpers shared across the library (GCC 12 has no <format>,
// so numeric formatting goes through snprintf wrappers here).
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace mcsim {

/// Format a double with `precision` digits after the decimal point.
std::string format_double(double value, int precision = 3);

/// Format a double like the paper prints utilizations, e.g. "0.553".
std::string format_util(double value);

/// Format a double with enough significant digits (max_digits10) that
/// parsing the text back yields the identical bits — the precision trace
/// and manifest files are written with.
std::string format_double_roundtrip(double value);

/// printf-style formatting into a std::string.
std::string str_printf(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Split on a delimiter; empty fields are preserved.
std::vector<std::string> split(std::string_view text, char delim);

/// Strip leading/trailing whitespace.
std::string_view trim(std::string_view text);

/// True if `text` starts with `prefix`.
bool starts_with(std::string_view text, std::string_view prefix);

/// Lower-case an ASCII string.
std::string to_lower(std::string_view text);

}  // namespace mcsim
