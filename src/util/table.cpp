#include "util/table.hpp"

#include <algorithm>
#include <sstream>

#include "util/assert.hpp"

namespace mcsim {

namespace {
bool looks_numeric(const std::string& field) {
  if (field.empty()) return false;
  size_t digits = 0;
  for (char c : field) {
    if (std::isdigit(static_cast<unsigned char>(c))) ++digits;
    else if (c != '.' && c != '-' && c != '+' && c != 'e' && c != 'E' && c != '%') return false;
  }
  return digits > 0;
}
}  // namespace

TextTable::TextTable(std::vector<std::string> columns) : columns_(std::move(columns)) {
  MCSIM_REQUIRE(!columns_.empty(), "table needs at least one column");
}

void TextTable::add_row(std::vector<std::string> fields) {
  MCSIM_REQUIRE(fields.size() == columns_.size(), "row width does not match header");
  rows_.push_back(std::move(fields));
}

std::string TextTable::render() const {
  std::vector<size_t> widths(columns_.size());
  for (size_t c = 0; c < columns_.size(); ++c) widths[c] = columns_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());
  }

  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row, bool align_numeric) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c) out << "  ";
      const auto pad = widths[c] - row[c].size();
      const bool right = align_numeric && looks_numeric(row[c]);
      if (right) out << std::string(pad, ' ') << row[c];
      else out << row[c] << std::string(pad, ' ');
    }
    out << '\n';
  };

  emit_row(columns_, /*align_numeric=*/false);
  size_t total = 0;
  for (size_t c = 0; c < widths.size(); ++c) total += widths[c] + (c ? 2 : 0);
  out << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row, /*align_numeric=*/true);
  return out.str();
}

}  // namespace mcsim
