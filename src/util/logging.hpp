// Minimal leveled logger.
//
// Logging is off by default above `warn`; experiment drivers raise the level
// via --verbose. All output goes to stderr so it never mixes with the
// table/series output the bench harnesses print on stdout.
#pragma once

#include <sstream>
#include <string>

namespace mcsim {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global log threshold; messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Parse "debug"/"info"/"warn"/"error"/"off" (case-insensitive).
LogLevel parse_log_level(const std::string& name);

namespace detail {
void log_emit(LogLevel level, const std::string& message);
}

/// Stream-style log statement: MCSIM_LOG(kInfo) << "ran " << n << " jobs";
class LogStatement {
 public:
  explicit LogStatement(LogLevel level) : level_(level) {}
  LogStatement(const LogStatement&) = delete;
  LogStatement& operator=(const LogStatement&) = delete;
  ~LogStatement() { detail::log_emit(level_, stream_.str()); }

  template <typename T>
  LogStatement& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace mcsim

#define MCSIM_LOG(level)                                      \
  if (static_cast<int>(::mcsim::LogLevel::level) <            \
      static_cast<int>(::mcsim::log_level())) {               \
  } else                                                      \
    ::mcsim::LogStatement(::mcsim::LogLevel::level)
