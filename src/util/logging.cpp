#include "util/logging.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>

#include "util/assert.hpp"

namespace mcsim {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::mutex g_emit_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo:  return "INFO";
    case LogLevel::kWarn:  return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff:   return "OFF";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

LogLevel parse_log_level(const std::string& name) {
  std::string lower;
  lower.reserve(name.size());
  for (char c : name) lower.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  if (lower == "debug") return LogLevel::kDebug;
  if (lower == "info") return LogLevel::kInfo;
  if (lower == "warn" || lower == "warning") return LogLevel::kWarn;
  if (lower == "error") return LogLevel::kError;
  if (lower == "off" || lower == "none") return LogLevel::kOff;
  MCSIM_REQUIRE(false, "unknown log level: " + name);
  return LogLevel::kWarn;
}

namespace detail {
void log_emit(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(log_level())) return;
  std::lock_guard<std::mutex> lock(g_emit_mutex);
  std::fprintf(stderr, "[mcsim %s] %s\n", level_name(level), message.c_str());
}
}  // namespace detail

}  // namespace mcsim
