// Closed-form queueing results used to validate the simulation engine.
//
// The paper's model reduces to known queues in special cases (one cluster,
// single-processor jobs, exponential service -> M/M/c). The engine tests
// check the simulated mean response times against these formulas, which is
// the strongest correctness oracle available for a DES core.
#pragma once

#include <cstdint>

namespace mcsim::queueing {

/// Erlang-C: probability an arriving job waits in an M/M/c queue with
/// offered load a = lambda/mu (in Erlangs) and c servers. Requires a < c.
double erlang_c(std::uint32_t servers, double offered_load);

/// Erlang-B: blocking probability of an M/M/c/c loss system.
double erlang_b(std::uint32_t servers, double offered_load);

/// Mean waiting time in M/M/c (lambda arrivals/s, mu service rate/s).
double mmc_mean_wait(std::uint32_t servers, double lambda, double mu);

/// Mean response (sojourn) time in M/M/c.
double mmc_mean_response(std::uint32_t servers, double lambda, double mu);

/// Mean number in system in M/M/c (Little check).
double mmc_mean_in_system(std::uint32_t servers, double lambda, double mu);

/// M/M/1 mean response time, 1/(mu - lambda).
double mm1_mean_response(double lambda, double mu);

/// M/G/1 mean waiting time by Pollaczek-Khinchine:
/// W = lambda * E[S^2] / (2 (1 - rho)).
double mg1_mean_wait(double lambda, double mean_service, double service_variance);

/// M/G/1 mean response time.
double mg1_mean_response(double lambda, double mean_service, double service_variance);

}  // namespace mcsim::queueing
