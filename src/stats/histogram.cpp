#include "stats/histogram.hpp"

#include <cmath>

#include "util/assert.hpp"

namespace mcsim {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)), counts_(bins, 0) {
  MCSIM_REQUIRE(hi > lo, "histogram range must be non-empty");
  MCSIM_REQUIRE(bins > 0, "histogram needs at least one bin");
}

void Histogram::add(double x) {
  ++total_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    return;
  }
  auto idx = static_cast<std::size_t>((x - lo_) / width_);
  if (idx >= counts_.size()) idx = counts_.size() - 1;  // fp edge at hi_
  ++counts_[idx];
}

double Histogram::bin_lo(std::size_t i) const { return lo_ + width_ * static_cast<double>(i); }
double Histogram::bin_hi(std::size_t i) const { return bin_lo(i) + width_; }
double Histogram::bin_mid(std::size_t i) const { return bin_lo(i) + width_ / 2.0; }

double Histogram::fraction(std::size_t i) const {
  const std::uint64_t in_range = total_ - underflow_ - overflow_;
  if (in_range == 0) return 0.0;
  return static_cast<double>(counts_.at(i)) / static_cast<double>(in_range);
}

void DiscreteHistogram::add(std::int64_t value, std::uint64_t weight) {
  counts_[value] += weight;
  total_ += weight;
}

std::uint64_t DiscreteHistogram::count(std::int64_t value) const {
  auto it = counts_.find(value);
  return it != counts_.end() ? it->second : 0;
}

double DiscreteHistogram::fraction(std::int64_t value) const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(count(value)) / static_cast<double>(total_);
}

double DiscreteHistogram::mean() const {
  if (total_ == 0) return 0.0;
  double sum = 0.0;
  for (const auto& [value, count] : counts_)
    sum += static_cast<double>(value) * static_cast<double>(count);
  return sum / static_cast<double>(total_);
}

double DiscreteHistogram::cv() const {
  if (total_ == 0) return 0.0;
  const double m = mean();
  if (m == 0.0) return 0.0;
  double sq = 0.0;
  for (const auto& [value, count] : counts_) {
    const double d = static_cast<double>(value) - m;
    sq += d * d * static_cast<double>(count);
  }
  const double var = sq / static_cast<double>(total_);
  return std::sqrt(var) / m;
}

}  // namespace mcsim
