// Time-weighted statistics for piecewise-constant processes (queue length,
// number of busy processors). The time average over [t0, t_now] is
//   (1/T) * integral of value(t) dt.
#pragma once

#include <limits>

namespace mcsim {

class TimeWeightedStat {
 public:
  /// Begin observation at `time` with initial `value`.
  void start(double time, double value);

  /// Record that the process changed to `value` at `time`.
  /// Times must be non-decreasing.
  void update(double time, double value);

  /// Time average over [start_time, time]; advances the integral to `time`.
  [[nodiscard]] double time_average(double time) const;

  /// Discard history before `time` (warmup deletion), keeping current value.
  void reset_at(double time);

  [[nodiscard]] double current_value() const { return value_; }
  [[nodiscard]] double last_time() const { return last_time_; }
  [[nodiscard]] double min() const { return min_; }
  [[nodiscard]] double max() const { return max_; }

 private:
  bool started_ = false;
  double start_time_ = 0.0;
  double last_time_ = 0.0;
  double value_ = 0.0;
  double integral_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace mcsim
