#include "stats/percentile.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace mcsim {

P2Quantile::P2Quantile(double q) : q_(q) {
  MCSIM_REQUIRE(q > 0.0 && q < 1.0, "quantile must be in (0,1)");
  desired_ = {1.0, 1.0 + 2.0 * q_, 1.0 + 4.0 * q_, 3.0 + 2.0 * q_, 5.0};
  increments_ = {0.0, q_ / 2.0, q_, (1.0 + q_) / 2.0, 1.0};
}

void P2Quantile::add(double x) {
  if (count_ < 5) {
    heights_[count_] = x;
    ++count_;
    if (count_ == 5) {
      std::sort(heights_.begin(), heights_.end());
      for (int i = 0; i < 5; ++i) positions_[i] = i + 1;
    }
    return;
  }
  ++count_;

  // Locate the cell containing x and update extremes.
  int k;
  if (x < heights_[0]) {
    heights_[0] = x;
    k = 0;
  } else if (x >= heights_[4]) {
    heights_[4] = x;
    k = 3;
  } else {
    k = 0;
    while (k < 3 && x >= heights_[k + 1]) ++k;
  }

  for (int i = k + 1; i < 5; ++i) positions_[i] += 1.0;
  for (int i = 0; i < 5; ++i) desired_[i] += increments_[i];

  // Adjust interior markers with parabolic (falling back to linear) moves.
  for (int i = 1; i <= 3; ++i) {
    const double d = desired_[i] - positions_[i];
    const double right_gap = positions_[i + 1] - positions_[i];
    const double left_gap = positions_[i - 1] - positions_[i];
    if ((d >= 1.0 && right_gap > 1.0) || (d <= -1.0 && left_gap < -1.0)) {
      const double sign = d >= 0 ? 1.0 : -1.0;
      const double hp = heights_[i + 1];
      const double hm = heights_[i - 1];
      const double h = heights_[i];
      const double np = positions_[i + 1];
      const double nm = positions_[i - 1];
      const double n = positions_[i];
      // Parabolic prediction.
      double candidate =
          h + sign / (np - nm) *
                  ((n - nm + sign) * (hp - h) / (np - n) + (np - n - sign) * (h - hm) / (n - nm));
      if (hm < candidate && candidate < hp) {
        heights_[i] = candidate;
      } else {
        // Linear fallback.
        const int j = i + static_cast<int>(sign);
        heights_[i] = h + sign * (heights_[j] - h) / (positions_[j] - n);
      }
      positions_[i] += sign;
    }
  }
}

double P2Quantile::value() const {
  if (count_ == 0) return 0.0;
  if (count_ < 5) {
    std::array<double, 5> copy = heights_;
    std::sort(copy.begin(), copy.begin() + static_cast<long>(count_));
    const auto idx = static_cast<std::size_t>(
        std::min<double>(static_cast<double>(count_ - 1),
                         std::floor(q_ * static_cast<double>(count_))));
    return copy[idx];
  }
  return heights_[2];
}

double exact_quantile(const std::vector<double>& sorted, double q) {
  MCSIM_REQUIRE(!sorted.empty(), "exact_quantile needs a non-empty sample");
  MCSIM_REQUIRE(q >= 0.0 && q <= 1.0, "quantile must be in [0,1]");
  if (sorted.size() == 1) return sorted[0];
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(pos));
  const auto hi = static_cast<std::size_t>(std::ceil(pos));
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

}  // namespace mcsim
