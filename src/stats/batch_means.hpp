// Batch-means output analysis for steady-state simulations.
//
// Response-time observations inside one long run are autocorrelated, so the
// naive i.i.d. CI is too narrow. We group consecutive observations into
// batches; batch means are approximately independent for large batches, and
// the CI is computed over them.
#pragma once

#include <cstdint>
#include <vector>

#include "stats/confidence.hpp"
#include "stats/welford.hpp"

namespace mcsim {

class BatchMeans {
 public:
  /// `batch_size` observations per batch (the final partial batch is dropped).
  explicit BatchMeans(std::uint64_t batch_size);

  void add(double x);

  [[nodiscard]] std::uint64_t batch_size() const { return batch_size_; }
  [[nodiscard]] std::size_t completed_batches() const { return batch_means_.size(); }
  [[nodiscard]] const std::vector<double>& means() const { return batch_means_; }

  /// Grand mean over completed batches (falls back to the raw mean of all
  /// observations if no batch completed).
  [[nodiscard]] double grand_mean() const;

  /// CI over completed batch means.
  [[nodiscard]] ConfidenceInterval confidence(double confidence = 0.95) const;

  /// Lag-1 autocorrelation of the batch means; near zero indicates the
  /// batches are large enough.
  [[nodiscard]] double lag1_autocorrelation() const;

  [[nodiscard]] std::uint64_t total_observations() const { return all_.count(); }
  [[nodiscard]] const RunningStats& raw() const { return all_; }

 private:
  std::uint64_t batch_size_;
  RunningStats current_;
  RunningStats all_;
  std::vector<double> batch_means_;
};

}  // namespace mcsim
