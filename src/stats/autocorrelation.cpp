#include "stats/autocorrelation.hpp"

#include <cmath>

namespace mcsim {

namespace {
double series_mean(const std::vector<double>& series) {
  double sum = 0.0;
  for (double x : series) sum += x;
  return sum / static_cast<double>(series.size());
}
}  // namespace

double autocorrelation(const std::vector<double>& series, std::size_t lag) {
  const std::size_t n = series.size();
  if (n < 2 || lag >= n) return 0.0;
  const double mean = series_mean(series);
  double num = 0.0;
  double den = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double d = series[i] - mean;
    den += d * d;
    if (i + lag < n) num += d * (series[i + lag] - mean);
  }
  if (den == 0.0) return 0.0;
  return num / den;
}

std::vector<double> autocorrelation_function(const std::vector<double>& series,
                                             std::size_t max_lag) {
  std::vector<double> acf;
  acf.reserve(max_lag + 1);
  for (std::size_t lag = 0; lag <= max_lag; ++lag) {
    acf.push_back(autocorrelation(series, lag));
  }
  return acf;
}

double von_neumann_ratio(const std::vector<double>& series) {
  const std::size_t n = series.size();
  if (n < 2) return 2.0;
  const double mean = series_mean(series);
  double diff_sq = 0.0;
  double var = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double d = series[i] - mean;
    var += d * d;
    if (i + 1 < n) {
      const double step = series[i + 1] - series[i];
      diff_sq += step * step;
    }
  }
  if (var == 0.0) return 2.0;
  return (diff_sq / static_cast<double>(n - 1)) / (var / static_cast<double>(n));
}

double effective_sample_size(const std::vector<double>& series, std::size_t max_lag) {
  const std::size_t n = series.size();
  if (n < 2) return static_cast<double>(n);
  double tail = 0.0;
  for (std::size_t lag = 1; lag <= max_lag && lag < n; ++lag) {
    const double rho = autocorrelation(series, lag);
    if (rho <= 0.0) break;  // standard positive-prefix truncation
    tail += rho;
  }
  return static_cast<double>(n) / (1.0 + 2.0 * tail);
}

}  // namespace mcsim
