#include "stats/warmup.hpp"

#include <cmath>
#include <limits>

#include "util/assert.hpp"

namespace mcsim {

MserResult mser(const std::vector<double>& observations, std::size_t batch_size) {
  MCSIM_REQUIRE(batch_size > 0, "batch size must be positive");
  MserResult result;
  const std::size_t n_batches = observations.size() / batch_size;
  if (n_batches < 2) return result;

  // Batch the series.
  std::vector<double> batches(n_batches);
  for (std::size_t b = 0; b < n_batches; ++b) {
    double sum = 0.0;
    for (std::size_t i = 0; i < batch_size; ++i) sum += observations[b * batch_size + i];
    batches[b] = sum / static_cast<double>(batch_size);
  }

  // Suffix sums for O(1) mean/variance at each truncation point.
  std::vector<double> suffix_sum(n_batches + 1, 0.0);
  std::vector<double> suffix_sq(n_batches + 1, 0.0);
  for (std::size_t b = n_batches; b-- > 0;) {
    suffix_sum[b] = suffix_sum[b + 1] + batches[b];
    suffix_sq[b] = suffix_sq[b + 1] + batches[b] * batches[b];
  }

  double best = std::numeric_limits<double>::infinity();
  std::size_t best_d = 0;
  const std::size_t max_d = n_batches / 2;
  for (std::size_t d = 0; d <= max_d; ++d) {
    const auto m = static_cast<double>(n_batches - d);
    if (m < 2) break;
    const double mean = suffix_sum[d] / m;
    const double var = suffix_sq[d] / m - mean * mean;
    const double stat = std::max(var, 0.0) / m;  // squared std. error of the mean
    if (stat < best) {
      best = stat;
      best_d = d;
    }
  }
  result.truncation_point = best_d * batch_size;
  result.statistic = best;
  return result;
}

}  // namespace mcsim
