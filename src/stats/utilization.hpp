// Gross vs net utilization accounting (paper Sect. 2.4 / Sect. 4).
//
// Gross utilization counts processors busy for the *extended* service time
// (computation + local communication + wide-area communication, since there
// is no preemption during communication). Net utilization counts only the
// non-extended service time — what the job would have needed on a single
// cluster with fast local links. The difference is the internal capacity
// loss due to slow wide-area links.
//
// Two equivalent measurements are supported:
//  * time-integrated busy processors (used for maximal-utilization runs);
//  * per-job completed work  size * service / (P * horizon)  (used for
//    steady-state sweeps, where it is exact over the measurement window).
#pragma once

#include <cstdint>

#include "stats/time_weighted.hpp"

namespace mcsim {

class UtilizationTracker {
 public:
  /// `total_processors` is the capacity P of the whole system.
  UtilizationTracker(std::uint32_t total_processors, double start_time);

  /// A job holding `processors` CPUs started at `time`; its gross (extended)
  /// service time is `gross_service`, its net service time `net_service`.
  void on_job_start(double time, std::uint32_t processors, double gross_service,
                    double net_service);

  /// The job released `processors` CPUs at `time`.
  void on_job_finish(double time, std::uint32_t processors);

  /// Discard history before `time` (warmup deletion). In-flight gross/net
  /// work of jobs started before `time` is dropped proportionally — the
  /// busy-processor integral restarts from the current occupancy.
  void reset_at(double time);

  /// Time-averaged fraction of busy processors over the observation window
  /// (this is the gross utilization: processors are held for the extended
  /// service time).
  [[nodiscard]] double busy_fraction(double time) const;

  /// Gross utilization from completed work: sum(size*gross_service started
  /// in window) / (P * window).
  [[nodiscard]] double gross_utilization(double time) const;
  /// Net utilization analogous, with non-extended service times.
  [[nodiscard]] double net_utilization(double time) const;

  [[nodiscard]] std::uint32_t busy_processors() const { return busy_; }
  [[nodiscard]] std::uint32_t total_processors() const { return total_; }

 private:
  std::uint32_t total_;
  std::uint32_t busy_ = 0;
  TimeWeightedStat busy_integral_;
  double window_start_;
  double gross_work_ = 0.0;  // sum over started jobs of size * gross_service
  double net_work_ = 0.0;    // sum over started jobs of size * net_service
};

}  // namespace mcsim
