#include "stats/time_weighted.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace mcsim {

void TimeWeightedStat::start(double time, double value) {
  started_ = true;
  start_time_ = time;
  last_time_ = time;
  value_ = value;
  integral_ = 0.0;
  min_ = value;
  max_ = value;
}

void TimeWeightedStat::update(double time, double value) {
  MCSIM_REQUIRE(started_, "TimeWeightedStat::start must be called first");
  MCSIM_REQUIRE(time >= last_time_, "time went backwards in TimeWeightedStat");
  integral_ += value_ * (time - last_time_);
  last_time_ = time;
  value_ = value;
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
}

double TimeWeightedStat::time_average(double time) const {
  MCSIM_REQUIRE(started_, "TimeWeightedStat::start must be called first");
  MCSIM_REQUIRE(time >= last_time_, "time went backwards in TimeWeightedStat");
  const double span = time - start_time_;
  if (span <= 0.0) return value_;
  const double integral = integral_ + value_ * (time - last_time_);
  return integral / span;
}

void TimeWeightedStat::reset_at(double time) {
  MCSIM_REQUIRE(started_, "TimeWeightedStat::start must be called first");
  MCSIM_REQUIRE(time >= last_time_, "time went backwards in TimeWeightedStat");
  start_time_ = time;
  last_time_ = time;
  integral_ = 0.0;
  min_ = value_;
  max_ = value_;
}

}  // namespace mcsim
