// Numerically stable running moments (Welford's algorithm).
//
// Used for every sample statistic the simulator reports: response times,
// job sizes, service times. The coefficient of variation accessor exists
// because the paper characterises its workload distributions by mean + CV.
#pragma once

#include <cstdint>
#include <limits>

namespace mcsim {

class RunningStats {
 public:
  void add(double x);
  /// Merge another accumulator (parallel reduction / batch combining).
  void merge(const RunningStats& other);
  void reset();

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] double mean() const { return count_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than 2 samples.
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  /// Coefficient of variation = stddev / mean; 0 if mean == 0.
  [[nodiscard]] double cv() const;
  [[nodiscard]] double min() const { return count_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return count_ ? max_ : 0.0; }
  [[nodiscard]] double sum() const { return mean_ * static_cast<double>(count_); }

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace mcsim
