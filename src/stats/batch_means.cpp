#include "stats/batch_means.hpp"

#include "util/assert.hpp"

namespace mcsim {

BatchMeans::BatchMeans(std::uint64_t batch_size) : batch_size_(batch_size) {
  MCSIM_REQUIRE(batch_size > 0, "batch size must be positive");
}

void BatchMeans::add(double x) {
  all_.add(x);
  current_.add(x);
  if (current_.count() == batch_size_) {
    batch_means_.push_back(current_.mean());
    current_.reset();
  }
}

double BatchMeans::grand_mean() const {
  if (batch_means_.empty()) return all_.mean();
  RunningStats s;
  for (double m : batch_means_) s.add(m);
  return s.mean();
}

ConfidenceInterval BatchMeans::confidence(double confidence) const {
  RunningStats s;
  for (double m : batch_means_) s.add(m);
  if (s.count() < 2) {
    // Not enough batches: fall back to the (optimistic) raw CI.
    return mean_confidence(all_, confidence);
  }
  return mean_confidence(s, confidence);
}

double BatchMeans::lag1_autocorrelation() const {
  const auto n = batch_means_.size();
  if (n < 3) return 0.0;
  RunningStats s;
  for (double m : batch_means_) s.add(m);
  const double mean = s.mean();
  double num = 0.0, den = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double d = batch_means_[i] - mean;
    den += d * d;
    if (i + 1 < n) num += d * (batch_means_[i + 1] - mean);
  }
  return den > 0.0 ? num / den : 0.0;
}

}  // namespace mcsim
