#include "stats/queueing.hpp"

#include <cmath>

#include "util/assert.hpp"

namespace mcsim::queueing {

double erlang_b(std::uint32_t servers, double offered_load) {
  MCSIM_REQUIRE(servers > 0, "need at least one server");
  MCSIM_REQUIRE(offered_load >= 0.0, "offered load must be non-negative");
  // Stable recurrence: B(0) = 1; B(k) = a B(k-1) / (k + a B(k-1)).
  double b = 1.0;
  for (std::uint32_t k = 1; k <= servers; ++k) {
    b = offered_load * b / (static_cast<double>(k) + offered_load * b);
  }
  return b;
}

double erlang_c(std::uint32_t servers, double offered_load) {
  MCSIM_REQUIRE(offered_load < static_cast<double>(servers),
                "M/M/c requires offered load < c");
  const double b = erlang_b(servers, offered_load);
  const double rho = offered_load / static_cast<double>(servers);
  return b / (1.0 - rho + rho * b);
}

double mmc_mean_wait(std::uint32_t servers, double lambda, double mu) {
  MCSIM_REQUIRE(lambda > 0.0 && mu > 0.0, "rates must be positive");
  const double a = lambda / mu;
  MCSIM_REQUIRE(a < static_cast<double>(servers), "system must be stable");
  const double c = erlang_c(servers, a);
  return c / (static_cast<double>(servers) * mu - lambda);
}

double mmc_mean_response(std::uint32_t servers, double lambda, double mu) {
  return mmc_mean_wait(servers, lambda, mu) + 1.0 / mu;
}

double mmc_mean_in_system(std::uint32_t servers, double lambda, double mu) {
  return lambda * mmc_mean_response(servers, lambda, mu);
}

double mm1_mean_response(double lambda, double mu) {
  MCSIM_REQUIRE(lambda > 0.0 && mu > lambda, "M/M/1 must be stable");
  return 1.0 / (mu - lambda);
}

double mg1_mean_wait(double lambda, double mean_service, double service_variance) {
  MCSIM_REQUIRE(lambda > 0.0 && mean_service > 0.0, "parameters must be positive");
  const double rho = lambda * mean_service;
  MCSIM_REQUIRE(rho < 1.0, "M/G/1 must be stable");
  const double second_moment = service_variance + mean_service * mean_service;
  return lambda * second_moment / (2.0 * (1.0 - rho));
}

double mg1_mean_response(double lambda, double mean_service, double service_variance) {
  return mg1_mean_wait(lambda, mean_service, service_variance) + mean_service;
}

}  // namespace mcsim::queueing
