#include "stats/confidence.hpp"

#include <cmath>
#include <limits>

#include "util/assert.hpp"

#if defined(__GLIBC__)
extern "C" double lgamma_r(double, int*);  // not declared under strict -std=c++20
#endif

namespace mcsim {

namespace {

// std::lgamma writes the global `signgam` on glibc and is therefore not
// thread-safe; parallel replication runs race on it (caught by TSan). The
// _r variant is the same implementation minus the global write, so results
// stay bit-identical with serial code that used std::lgamma.
double log_gamma(double x) {
#if defined(__GLIBC__)
  int sign = 0;
  return lgamma_r(x, &sign);
#else
  return std::lgamma(x);
#endif
}

}  // namespace

double normal_quantile(double p) {
  MCSIM_REQUIRE(p > 0.0 && p < 1.0, "normal_quantile needs p in (0,1)");
  // Peter Acklam's algorithm.
  static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                             -2.759285104469687e+02, 1.383577518672690e+02,
                             -3.066479806614716e+01, 2.506628277459239e+00};
  static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                             -1.556989798598866e+02, 6.680131188771972e+01,
                             -1.328068155288572e+01};
  static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                             -2.400758277161838e+00, -2.549732539343734e+00,
                             4.374664141464968e+00,  2.938163982698783e+00};
  static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                             2.445134137142996e+00, 3.754408661907416e+00};
  const double p_low = 0.02425;
  const double p_high = 1 - p_low;
  double q, r, x;
  if (p < p_low) {
    q = std::sqrt(-2 * std::log(p));
    x = (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1);
  } else if (p <= p_high) {
    q = p - 0.5;
    r = q * q;
    x = (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q /
        (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1);
  } else {
    q = std::sqrt(-2 * std::log(1 - p));
    x = -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1);
  }
  return x;
}

namespace {

// Regularised incomplete beta I_x(a, b) via continued fraction (Lentz).
double betacf(double a, double b, double x) {
  constexpr int kMaxIter = 300;
  constexpr double kEps = 3e-14;
  constexpr double kFpMin = 1e-300;
  const double qab = a + b;
  const double qap = a + 1.0;
  const double qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::fabs(d) < kFpMin) d = kFpMin;
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= kMaxIter; ++m) {
    const int m2 = 2 * m;
    double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kFpMin) d = kFpMin;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    h *= d * c;
    aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kFpMin) d = kFpMin;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < kEps) break;
  }
  return h;
}

double incbeta(double a, double b, double x) {
  if (x <= 0.0) return 0.0;
  if (x >= 1.0) return 1.0;
  const double ln_bt = log_gamma(a + b) - log_gamma(a) - log_gamma(b) +
                       a * std::log(x) + b * std::log(1.0 - x);
  const double bt = std::exp(ln_bt);
  if (x < (a + 1.0) / (a + b + 2.0)) return bt * betacf(a, b, x) / a;
  return 1.0 - bt * betacf(b, a, 1.0 - x) / b;
}

// CDF of Student's t with `dof` degrees of freedom.
double t_cdf(double t, double dof) {
  const double x = dof / (dof + t * t);
  const double p = 0.5 * incbeta(dof / 2.0, 0.5, x);
  return t > 0 ? 1.0 - p : p;
}

}  // namespace

double t_critical(std::int64_t dof, double confidence) {
  MCSIM_REQUIRE(confidence > 0.0 && confidence < 1.0, "confidence must be in (0,1)");
  if (dof <= 0) return std::numeric_limits<double>::infinity();
  const double p = 1.0 - (1.0 - confidence) / 2.0;
  if (dof > 2000) return normal_quantile(p);
  // Bisection on the t CDF; bracket generously.
  double lo = 0.0, hi = 1000.0;
  for (int i = 0; i < 200; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (t_cdf(mid, static_cast<double>(dof)) < p) lo = mid;
    else hi = mid;
    if (hi - lo < 1e-10) break;
  }
  return 0.5 * (lo + hi);
}

double ConfidenceInterval::relative() const {
  if (mean == 0.0) return std::numeric_limits<double>::infinity();
  return halfwidth / std::fabs(mean);
}

ConfidenceInterval mean_confidence(const RunningStats& stats, double confidence) {
  ConfidenceInterval ci;
  ci.mean = stats.mean();
  if (stats.count() < 2) {
    ci.halfwidth = std::numeric_limits<double>::infinity();
    return ci;
  }
  const double se = stats.stddev() / std::sqrt(static_cast<double>(stats.count()));
  ci.halfwidth = t_critical(static_cast<std::int64_t>(stats.count()) - 1, confidence) * se;
  return ci;
}

}  // namespace mcsim
