// Quantile estimation.
//
// P2Quantile      -- Jain & Chlamtac's P² streaming estimator, O(1) memory;
//                    used for long simulation runs.
// exact_quantile  -- exact (linear-interpolated) quantile of a sample vector;
//                    used by tests and small analyses.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace mcsim {

class P2Quantile {
 public:
  /// `q` in (0,1), e.g. 0.95 for the 95th percentile.
  explicit P2Quantile(double q);

  void add(double x);
  /// Current estimate (exact until 5 samples have arrived).
  [[nodiscard]] double value() const;
  [[nodiscard]] std::uint64_t count() const { return count_; }

 private:
  double q_;
  std::uint64_t count_ = 0;
  std::array<double, 5> heights_{};
  std::array<double, 5> positions_{};
  std::array<double, 5> desired_{};
  std::array<double, 5> increments_{};
};

/// Exact quantile with linear interpolation; `sorted` must be non-empty and
/// ascending.
double exact_quantile(const std::vector<double>& sorted, double q);

}  // namespace mcsim
