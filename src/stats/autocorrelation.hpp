// Autocorrelation diagnostics for output analysis: the batch-means CI is
// only trustworthy when the batch means are (nearly) uncorrelated; these
// helpers measure that.
#pragma once

#include <cstddef>
#include <vector>

namespace mcsim {

/// Sample autocorrelation of `series` at `lag` (biased estimator, the
/// standard choice). Returns 0 for degenerate input.
double autocorrelation(const std::vector<double>& series, std::size_t lag);

/// Autocorrelation function up to max_lag (inclusive); acf[0] == 1.
std::vector<double> autocorrelation_function(const std::vector<double>& series,
                                             std::size_t max_lag);

/// Von Neumann ratio: mean squared successive difference / variance.
/// ~2 for independent data; << 2 for positively correlated series.
double von_neumann_ratio(const std::vector<double>& series);

/// Effective sample size n / (1 + 2 * sum of positive-prefix ACF), the
/// standard correction for correlated output series.
double effective_sample_size(const std::vector<double>& series,
                             std::size_t max_lag = 64);

}  // namespace mcsim
