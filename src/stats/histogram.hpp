// Histograms for the workload-characterisation figures.
//
// Histogram        -- fixed-width bins over [lo, hi); out-of-range values are
//                     counted in underflow/overflow buckets (Fig. 2 densities).
// DiscreteHistogram-- exact integer-value counts (Fig. 1 job-size density,
//                     Table 1 power-of-two fractions).
#pragma once

#include <cstdint>
#include <map>
#include <vector>

namespace mcsim {

class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);

  [[nodiscard]] std::size_t bin_count() const { return counts_.size(); }
  [[nodiscard]] std::uint64_t bin(std::size_t i) const { return counts_.at(i); }
  [[nodiscard]] double bin_lo(std::size_t i) const;
  [[nodiscard]] double bin_hi(std::size_t i) const;
  /// Midpoint of bin i, for plotting.
  [[nodiscard]] double bin_mid(std::size_t i) const;
  [[nodiscard]] std::uint64_t underflow() const { return underflow_; }
  [[nodiscard]] std::uint64_t overflow() const { return overflow_; }
  [[nodiscard]] std::uint64_t total() const { return total_; }
  /// Fraction of in-range samples in bin i.
  [[nodiscard]] double fraction(std::size_t i) const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
  std::uint64_t total_ = 0;
};

class DiscreteHistogram {
 public:
  void add(std::int64_t value, std::uint64_t weight = 1);

  [[nodiscard]] std::uint64_t count(std::int64_t value) const;
  [[nodiscard]] double fraction(std::int64_t value) const;
  [[nodiscard]] std::uint64_t total() const { return total_; }
  /// Number of distinct values observed (the paper reports 58 for the DAS1 log).
  [[nodiscard]] std::size_t distinct_values() const { return counts_.size(); }
  [[nodiscard]] const std::map<std::int64_t, std::uint64_t>& counts() const { return counts_; }
  [[nodiscard]] double mean() const;
  [[nodiscard]] double cv() const;

 private:
  std::map<std::int64_t, std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

}  // namespace mcsim
