// Warmup (initial-transient) detection.
//
// The sweep driver deletes a fixed fraction by default; MSER-5 is provided
// as a data-driven alternative: it picks the truncation point that minimises
// the standard error of the remaining batch means.
#pragma once

#include <cstddef>
#include <vector>

namespace mcsim {

struct MserResult {
  /// Number of *observations* to delete from the front.
  std::size_t truncation_point = 0;
  /// MSER statistic at the chosen point.
  double statistic = 0.0;
};

/// MSER-k on `observations` (k = batch size, classically 5).
/// Searches truncation points over the first half of the series only, per the
/// standard recommendation (a point in the second half means "no steady state
/// detected" and we return half).
MserResult mser(const std::vector<double>& observations, std::size_t batch_size = 5);

}  // namespace mcsim
