// Confidence intervals on sample means.
//
// Student-t critical values are computed from the incomplete-beta inverse
// (no table lookup), so any confidence level and degrees of freedom work.
#pragma once

#include <cstdint>

#include "stats/welford.hpp"

namespace mcsim {

/// Two-sided Student-t critical value t_{dof, 1-alpha/2}.
/// For dof <= 0 returns infinity; for very large dof converges to the normal
/// quantile.
double t_critical(std::int64_t dof, double confidence = 0.95);

/// Standard normal quantile (Acklam's rational approximation, |err| < 1e-9).
double normal_quantile(double p);

struct ConfidenceInterval {
  double mean = 0.0;
  double halfwidth = 0.0;
  [[nodiscard]] double lo() const { return mean - halfwidth; }
  [[nodiscard]] double hi() const { return mean + halfwidth; }
  /// Relative precision: halfwidth / |mean| (infinity if mean == 0).
  [[nodiscard]] double relative() const;
};

/// CI for the mean of i.i.d. samples summarised by `stats`.
ConfidenceInterval mean_confidence(const RunningStats& stats, double confidence = 0.95);

}  // namespace mcsim
