#include "stats/utilization.hpp"

#include "util/assert.hpp"

namespace mcsim {

UtilizationTracker::UtilizationTracker(std::uint32_t total_processors, double start_time)
    : total_(total_processors), window_start_(start_time) {
  MCSIM_REQUIRE(total_processors > 0, "system must have processors");
  busy_integral_.start(start_time, 0.0);
}

void UtilizationTracker::on_job_start(double time, std::uint32_t processors,
                                      double gross_service, double net_service) {
  MCSIM_REQUIRE(busy_ + processors <= total_, "allocated more processors than exist");
  busy_ += processors;
  busy_integral_.update(time, static_cast<double>(busy_));
  gross_work_ += static_cast<double>(processors) * gross_service;
  net_work_ += static_cast<double>(processors) * net_service;
}

void UtilizationTracker::on_job_finish(double time, std::uint32_t processors) {
  MCSIM_REQUIRE(busy_ >= processors, "released more processors than busy");
  busy_ -= processors;
  busy_integral_.update(time, static_cast<double>(busy_));
}

void UtilizationTracker::reset_at(double time) {
  busy_integral_.update(time, static_cast<double>(busy_));
  busy_integral_.reset_at(time);
  window_start_ = time;
  gross_work_ = 0.0;
  net_work_ = 0.0;
}

double UtilizationTracker::busy_fraction(double time) const {
  return busy_integral_.time_average(time) / static_cast<double>(total_);
}

double UtilizationTracker::gross_utilization(double time) const {
  const double window = time - window_start_;
  if (window <= 0.0) return 0.0;
  return gross_work_ / (static_cast<double>(total_) * window);
}

double UtilizationTracker::net_utilization(double time) const {
  const double window = time - window_start_;
  if (window <= 0.0) return 0.0;
  return net_work_ / (static_cast<double>(total_) * window);
}

}  // namespace mcsim
