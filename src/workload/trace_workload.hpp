// Trace-driven arrival source: replays the jobs of a recorded workload log
// (SWF records) through the engine instead of drawing them from the
// synthetic DAS distributions.
//
// The mapping from an SWF record to a JobSpec mirrors, in reverse, what
// obs::SwfTraceBuilder writes on export (docs/TRACING.md):
//
//   submit time (f2)  -> arrival_time, multiplied by `arrival_scale`
//   run time (f4)     -> gross service time, verbatim
//   processors (f5)   -> total_size, split into components by the same
//                        job_splitter the synthetic workload uses
//   user id (f12)     -> origin_queue (user mod num_clusters)
//
// Wait time (f3) is deliberately ignored on input: it is an *output* of
// the original system, and the whole point of replay is to let our
// schedulers produce their own waits from the same offered stream. The
// closed round-trip property (tests/trace_replay_roundtrip_test.cpp)
// checks the special case where the log being replayed was produced by
// this simulator under the same policy: the waits then come back
// bit-identically.
//
// `arrival_scale` compresses (< 1) or stretches (> 1) the submit axis so a
// single trace can sweep a utilization range, the paper's Fig. 3
// methodology applied to a recorded log: service demand is untouched, so
// scaling submit times by s divides the offered load by s.
//
// Depends only on the header-only trace/record.hpp — file I/O (read_swf)
// stays in mcsim_trace, which links *against* this library, so loading a
// trace from disk into a TraceWorkloadConfig happens one layer up (exp).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "trace/record.hpp"
#include "workload/job_source.hpp"
#include "workload/workload.hpp"

namespace mcsim {

/// Everything needed to replay a trace: the (filtered, submit-ordered)
/// records plus the splitting parameters the synthetic workload would have
/// used. Shared immutably so a SimulationConfig stays cheap to copy across
/// sweep points and runner threads.
struct TraceWorkloadConfig {
  /// Records to replay, sorted by (submit_time, job_id). Use
  /// usable_trace_records() to build this from a raw SWF read.
  std::vector<TraceRecord> records;
  /// Multiplies every submit time; < 1 compresses the trace (raises load).
  double arrival_scale = 1.0;
  /// Component-size limit handed to split_job (as WorkloadConfig).
  std::uint32_t component_limit = 16;
  std::uint32_t num_clusters = 4;
  /// Wide-area service extension applied to multi-component jobs. The
  /// trace's run time is taken as the *gross* (already-extended) time, so
  /// this only affects the derived net service_time.
  double extension_factor = 1.25;
  /// false = total requests (single-cluster SC runs): one component of the
  /// full size, never extended.
  bool split_jobs = true;
  /// Provenance only (error messages, manifests); may be empty.
  std::string source_path;
  /// How many raw records usable_trace_records() dropped (provenance).
  std::uint64_t skipped_records = 0;
};

/// Filter a raw trace down to replayable records (positive processor count
/// and run time, non-negative submit) and sort by (submit_time, job_id) so
/// replay order is deterministic regardless of log order.
[[nodiscard]] std::vector<TraceRecord> usable_trace_records(
    const std::vector<TraceRecord>& raw);

/// Offered gross utilization inherent in a trace on `total_processors`
/// CPUs: sum(processors * run) / (total_processors * submit span). Returns
/// 0 when the submit span is empty (single arrival instant).
[[nodiscard]] double trace_offered_gross_utilization(
    const std::vector<TraceRecord>& records, std::uint32_t total_processors);

/// Arrival scale that makes `records` offer gross utilization `target` on
/// `total_processors` CPUs: scaling submits by s divides offered load by
/// s, so s = inherent / target.
[[nodiscard]] double trace_scale_for_utilization(
    const std::vector<TraceRecord>& records, std::uint32_t total_processors,
    double target);

class TraceWorkload : public JobSource {
 public:
  explicit TraceWorkload(std::shared_ptr<const TraceWorkloadConfig> config);

  bool next(JobSpec& out) override;

  [[nodiscard]] const TraceWorkloadConfig& config() const { return *config_; }
  [[nodiscard]] std::uint64_t jobs_emitted() const { return next_index_; }

 private:
  std::shared_ptr<const TraceWorkloadConfig> config_;
  std::uint64_t next_index_ = 0;
};

}  // namespace mcsim
