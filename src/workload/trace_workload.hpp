// Trace-driven arrival source: replays the jobs of a recorded workload log
// (SWF records) through the engine instead of drawing them from the
// synthetic DAS distributions.
//
// The mapping from an SWF record to a JobSpec mirrors, in reverse, what
// obs::SwfTraceBuilder writes on export (docs/TRACING.md):
//
//   submit time (f2)  -> arrival_time, multiplied by `arrival_scale`
//   run time (f4)     -> gross service time, verbatim
//   processors (f5)   -> total_size, split into components by the same
//                        job_splitter the synthetic workload uses
//   user id (f12)     -> origin_queue (user mod num_clusters)
//
// Wait time (f3) is deliberately ignored on input: it is an *output* of
// the original system, and the whole point of replay is to let our
// schedulers produce their own waits from the same offered stream. The
// closed round-trip property (tests/trace_replay_roundtrip_test.cpp)
// checks the special case where the log being replayed was produced by
// this simulator under the same policy: the waits then come back
// bit-identically.
//
// `arrival_scale` compresses (< 1) or stretches (> 1) the submit axis so a
// single trace can sweep a utilization range, the paper's Fig. 3
// methodology applied to a recorded log: service demand is untouched, so
// scaling submit times by s divides the offered load by s.
//
// Two delivery modes (docs/WORKLOADS.md, "The streaming memory model"):
//
//   * streaming (`open_source` set): records are pulled on demand from a
//     TraceRecordSource and re-ordered through a bounded lookahead heap of
//     `lookahead_window` records, so peak memory is O(window) regardless
//     of log length. Real archive logs are only approximately sorted by
//     submit time; as long as no record is displaced by more than the
//     window from its sorted position, the emission order — and therefore
//     every downstream statistic — is bit-identical to the in-memory sort.
//     A displacement beyond the window is detected and reported (never
//     silently misordered).
//   * in-memory (`records` filled): the legacy whole-file mode, retained
//     for programmatic configs built from record vectors and as the
//     equivalence baseline the streaming path is pinned against
//     (tests/trace_streaming_equivalence_test.cpp).
//
// Depends only on header-only trace headers — file I/O (SwfFileStream)
// stays in mcsim_trace, which links *against* this library, so opening a
// log happens one layer up (exp) through the open_source factory.
#pragma once

#include <cstdint>
#include <memory>
#include <queue>
#include <string>
#include <vector>

#include "trace/record.hpp"
#include "workload/job_source.hpp"
#include "workload/trace_source.hpp"
#include "workload/workload.hpp"

namespace mcsim {

/// Everything needed to replay a trace: where its records come from (one
/// of the two modes above) plus the splitting parameters the synthetic
/// workload would have used. Shared immutably so a SimulationConfig stays
/// cheap to copy across sweep points and runner threads; in streaming mode
/// each engine calls `open_source` once and owns its stream.
struct TraceWorkloadConfig {
  /// In-memory mode: records to replay, sorted by (submit_time, job_id).
  /// Use usable_trace_records() to build this from a raw SWF read. Must be
  /// empty when `open_source` is set.
  std::vector<TraceRecord> records;
  /// Streaming mode: factory for a fresh record stream per engine.
  TraceSourceFactory open_source;
  /// Streaming mode: usable-record count from the pre-scan (drives
  /// total_jobs validation; scan_swf_file computes it).
  std::uint64_t streamed_usable_records = 0;
  /// Streaming mode: size of the bounded re-sort heap. Replay order is
  /// identical to the full in-memory sort as long as no record is further
  /// than this many usable records from its sorted position.
  std::uint32_t lookahead_window = kDefaultLookaheadWindow;
  /// Multiplies every submit time; < 1 compresses the trace (raises load).
  double arrival_scale = 1.0;
  /// Component-size limit handed to split_job (as WorkloadConfig).
  std::uint32_t component_limit = 16;
  std::uint32_t num_clusters = 4;
  /// Wide-area service extension applied to multi-component jobs. The
  /// trace's run time is taken as the *gross* (already-extended) time, so
  /// this only affects the derived net service_time.
  double extension_factor = 1.25;
  /// false = total requests (single-cluster SC runs): one component of the
  /// full size, never extended.
  bool split_jobs = true;
  /// Provenance only (error messages, manifests); may be empty.
  std::string source_path;
  /// How many raw records the usable filter dropped (provenance).
  std::uint64_t skipped_records = 0;
  /// Minimum gross service time over the replayable records (from the
  /// pre-scan's min_run_time; 0 = unknown). Seeds the parallel engine's
  /// conservative lookahead — purely a batching hint, never correctness
  /// (docs/PARALLEL.md, "Lookahead bound").
  double min_gross_service = 0.0;

  static constexpr std::uint32_t kDefaultLookaheadWindow = 4096;

  [[nodiscard]] bool streaming() const { return static_cast<bool>(open_source); }
  /// Replayable records this config will deliver, whichever the mode.
  [[nodiscard]] std::uint64_t job_count() const {
    return streaming() ? streamed_usable_records : records.size();
  }
};

/// Filter a raw trace down to replayable records (trace_record_usable) and
/// sort by (submit_time, job_id) so replay order is deterministic
/// regardless of log order. The in-memory construction path.
[[nodiscard]] std::vector<TraceRecord> usable_trace_records(
    const std::vector<TraceRecord>& raw);

/// Offered gross utilization inherent in a trace on `total_processors`
/// CPUs: sum(processors * run) / (total_processors * submit span). Returns
/// 0 when the submit span is empty (single arrival instant). The summary
/// overload is the canonical streaming form (sums in source order, O(1)
/// memory); the vector form sums in the vector's order, so hand it the
/// same ordering when bit-identical scales matter.
[[nodiscard]] double trace_offered_gross_utilization(
    const std::vector<TraceRecord>& records, std::uint32_t total_processors);
[[nodiscard]] double trace_offered_gross_utilization(
    const TraceStreamSummary& summary, std::uint32_t total_processors);

/// Arrival scale that makes the trace offer gross utilization `target` on
/// `total_processors` CPUs: scaling submits by s divides offered load by
/// s, so s = inherent / target.
[[nodiscard]] double trace_scale_for_utilization(
    const std::vector<TraceRecord>& records, std::uint32_t total_processors,
    double target);
[[nodiscard]] double trace_scale_for_utilization(
    const TraceStreamSummary& summary, std::uint32_t total_processors,
    double target);

class TraceWorkload : public JobSource {
 public:
  explicit TraceWorkload(std::shared_ptr<const TraceWorkloadConfig> config);

  bool next(JobSpec& out) override;

  [[nodiscard]] const TraceWorkloadConfig& config() const { return *config_; }
  [[nodiscard]] std::uint64_t jobs_emitted() const { return emitted_; }

 private:
  /// Streaming mode: top up the lookahead heap from the stream, skipping
  /// unusable records, until it holds `lookahead_window` records or the
  /// stream runs dry.
  void refill_lookahead();
  void emit(const TraceRecord& rec, JobSpec& out);

  struct SubmitOrderAfter {
    bool operator()(const TraceRecord& a, const TraceRecord& b) const {
      // priority_queue keeps the *largest* on top, so "greater" comparison
      // makes top() the earliest (submit_time, job_id) — a bounded merge
      // of the almost-sorted stream.
      if (a.submit_time != b.submit_time) return a.submit_time > b.submit_time;
      return a.job_id > b.job_id;
    }
  };

  std::shared_ptr<const TraceWorkloadConfig> config_;
  std::uint64_t emitted_ = 0;
  // Streaming state (unused in in-memory mode).
  std::unique_ptr<TraceRecordSource> stream_;
  std::priority_queue<TraceRecord, std::vector<TraceRecord>, SubmitOrderAfter>
      lookahead_;
  bool stream_exhausted_ = false;
  double last_submit_ = 0.0;
  std::uint64_t last_job_id_ = 0;
};

}  // namespace mcsim
