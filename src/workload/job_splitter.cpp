#include "workload/job_splitter.hpp"

#include "util/assert.hpp"

namespace mcsim {

std::uint32_t component_count(std::uint32_t total_size, std::uint32_t component_limit,
                              std::uint32_t num_clusters) {
  MCSIM_REQUIRE(total_size > 0, "job size must be positive");
  MCSIM_REQUIRE(component_limit > 0, "component-size limit must be positive");
  MCSIM_REQUIRE(num_clusters > 0, "system must have clusters");
  const std::uint32_t wanted = (total_size + component_limit - 1) / component_limit;
  return wanted < num_clusters ? wanted : num_clusters;
}

std::vector<std::uint32_t> split_job(std::uint32_t total_size, std::uint32_t component_limit,
                                     std::uint32_t num_clusters) {
  const std::uint32_t n = component_count(total_size, component_limit, num_clusters);
  const std::uint32_t base = total_size / n;
  const std::uint32_t remainder = total_size % n;
  std::vector<std::uint32_t> components;
  components.reserve(n);
  // `remainder` components get one extra task; emit them first so the list
  // is non-increasing.
  for (std::uint32_t i = 0; i < n; ++i) {
    components.push_back(base + (i < remainder ? 1u : 0u));
  }
  return components;
}

}  // namespace mcsim
