// Pull-based record source: the seam between the trace-replay workload and
// whatever produces TraceRecords. TraceWorkload consumes one of these in
// streaming mode, so a multi-year archive log is parsed a record at a time
// and peak memory stays O(lookahead window) instead of O(log length)
// (docs/WORKLOADS.md, "The streaming memory model").
//
// The interface lives here (not in src/trace) because of the layering:
// mcsim_trace links *against* mcsim_workload, so the file-backed
// implementation (SwfFileStream, trace/swf_stream.hpp) can satisfy an
// interface the workload layer defines, while the workload layer itself
// never touches file I/O.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "trace/record.hpp"

namespace mcsim {

class TraceRecordSource {
 public:
  TraceRecordSource() = default;
  TraceRecordSource(const TraceRecordSource&) = delete;
  TraceRecordSource& operator=(const TraceRecordSource&) = delete;
  virtual ~TraceRecordSource() = default;

  /// Fill `out` with the next record in source order (for a file: file
  /// order, which real archive logs keep only approximately sorted by
  /// submit time). Returns false when the source is exhausted; `out` is
  /// untouched in that case. Implementations throw on malformed input.
  virtual bool next(TraceRecord& out) = 0;
};

/// Factory for fresh sources over the same underlying log. A
/// TraceWorkloadConfig is shared immutably across sweep points and runner
/// threads, but an open stream cannot be: every engine instance calls the
/// factory once and owns the stream it gets back.
using TraceSourceFactory = std::function<std::unique_ptr<TraceRecordSource>()>;

/// The replayable-record filter shared by every path (in-memory
/// usable_trace_records, the streaming pull loop, and the pre-scan):
/// cancelled-before-start jobs (run 0), interactive stubs (0 procs) and
/// records with unknown submit times offer no work to schedule.
[[nodiscard]] bool trace_record_usable(const TraceRecord& record);

/// One streaming pass worth of aggregate facts about a log — everything
/// scale derivation and validation need, at O(1) memory. Sums run in
/// source order (the canonical order for these statistics; see
/// trace_offered_gross_utilization overloads in trace_workload.hpp).
struct TraceStreamSummary {
  std::uint64_t total_records = 0;   ///< records seen, usable or not
  std::uint64_t usable_records = 0;  ///< records passing trace_record_usable
  double first_submit = 0.0;         ///< over usable records
  double last_submit = 0.0;
  /// Sum over usable records of processors * run_time, in source order.
  double gross_work = 0.0;
  std::uint32_t max_processors = 0;  ///< over usable records
  /// Minimum run_time over usable records (0 when there are none): the
  /// service-time bound seeding the parallel engine's conservative
  /// lookahead (docs/PARALLEL.md).
  double min_run_time = 0.0;
};

/// Drain `source` and accumulate the summary (the pre-scan pass).
[[nodiscard]] TraceStreamSummary summarize_trace_source(TraceRecordSource& source);

}  // namespace mcsim
