#include "workload/workload.hpp"

#include "util/assert.hpp"
#include "workload/das_workload.hpp"
#include "workload/job_splitter.hpp"

namespace mcsim {

double WorkloadConfig::mean_extended_size() const {
  if (!split_jobs) return size_distribution.mean();
  if (request_type == RequestType::kFlexible) {
    // Flexible jobs are extended exactly when they exceed the single-cluster
    // threshold.
    double weighted = 0.0;
    const auto& values = size_distribution.values();
    const auto& probs = size_distribution.probabilities();
    for (std::size_t i = 0; i < values.size(); ++i) {
      const bool wide = values[i] > static_cast<double>(flexible_local_threshold);
      weighted += probs[i] * values[i] * (wide ? extension_factor : 1.0);
    }
    return weighted;
  }
  return ::mcsim::mean_extended_size(size_distribution, component_limit, num_clusters,
                                     extension_factor);
}

double WorkloadConfig::rate_for_gross_utilization(double rho,
                                                  std::uint32_t total_processors) const {
  MCSIM_REQUIRE(service_distribution != nullptr, "workload needs a service distribution");
  return arrival_rate_for_gross_utilization(rho, total_processors, mean_extended_size(),
                                            service_distribution->mean());
}

WorkloadGenerator::WorkloadGenerator(WorkloadConfig config, std::uint64_t master_seed)
    : config_(std::move(config)),
      arrival_rng_(make_stream(master_seed, "arrivals")),
      size_rng_(make_stream(master_seed, "sizes")),
      service_rng_(make_stream(master_seed, "services")),
      queue_rng_(make_stream(master_seed, "queues")),
      placement_rng_(make_stream(master_seed, "ordered-clusters")) {
  MCSIM_REQUIRE(config_.service_distribution != nullptr, "workload needs a service distribution");
  MCSIM_REQUIRE(config_.arrival_rate > 0.0, "arrival rate must be positive");
  MCSIM_REQUIRE(config_.num_clusters > 0, "system must have clusters");
  MCSIM_REQUIRE(config_.extension_factor >= 1.0, "extension factor must be >= 1");

  std::vector<double> weights = config_.queue_weights;
  if (weights.empty()) weights.assign(config_.num_clusters, 1.0);
  MCSIM_REQUIRE(weights.size() == config_.num_clusters,
                "queue weights must match the number of clusters");
  double total = 0.0;
  for (double w : weights) {
    MCSIM_REQUIRE(w >= 0.0, "queue weights must be non-negative");
    total += w;
  }
  MCSIM_REQUIRE(total > 0.0, "queue weights must not all be zero");
  double acc = 0.0;
  queue_cumulative_.reserve(weights.size());
  for (double w : weights) {
    acc += w / total;
    queue_cumulative_.push_back(acc);
  }
  queue_cumulative_.back() = 1.0;
}

JobSpec WorkloadGenerator::next() {
  JobSpec job;
  clock_ += arrival_rng_.exponential_mean(1.0 / config_.arrival_rate);
  job.arrival_time = clock_;
  fill_body(job);
  return job;
}

JobSpec WorkloadGenerator::next_body() {
  JobSpec job;
  job.arrival_time = 0.0;
  fill_body(job);
  return job;
}

void WorkloadGenerator::fill_body(JobSpec& job) {
  job.id = next_id_++;
  job.total_size = static_cast<std::uint32_t>(config_.size_distribution.sample(size_rng_));
  MCSIM_ASSERT(job.total_size > 0);

  if (!config_.split_jobs) {
    job.request_type = RequestType::kTotal;
    job.components = {job.total_size};
    job.wide_area = false;
  } else {
    job.request_type = config_.request_type;
    switch (config_.request_type) {
      case RequestType::kTotal:
      case RequestType::kUnordered:
        job.components =
            split_job(job.total_size, config_.component_limit, config_.num_clusters);
        job.wide_area = job.components.size() > 1;
        break;
      case RequestType::kOrdered: {
        job.components =
            split_job(job.total_size, config_.component_limit, config_.num_clusters);
        job.wide_area = job.components.size() > 1;
        // Assign the components to distinct random clusters (a random
        // prefix of a Fisher-Yates shuffle).
        std::vector<std::uint32_t> clusters(config_.num_clusters);
        for (std::uint32_t i = 0; i < config_.num_clusters; ++i) clusters[i] = i;
        for (std::size_t i = 0; i < job.components.size(); ++i) {
          const auto j = i + static_cast<std::size_t>(
                                 placement_rng_.uniform_int(clusters.size() - i));
          std::swap(clusters[i], clusters[j]);
        }
        job.ordered_clusters.assign(clusters.begin(),
                                    clusters.begin() + static_cast<long>(job.components.size()));
        break;
      }
      case RequestType::kFlexible:
        // Split decided at placement time; only the total travels.
        job.components = {job.total_size};
        job.wide_area = job.total_size > config_.flexible_local_threshold;
        break;
    }
  }

  job.service_time = config_.service_distribution->sample(service_rng_);
  MCSIM_ASSERT(job.service_time > 0.0);
  job.gross_service_time =
      job.wide_area ? job.service_time * config_.extension_factor : job.service_time;

  // Submission queue: drawn even when the policy ignores it so that the job
  // stream is identical across policies (common random numbers).
  const double u = queue_rng_.uniform();
  job.origin_queue = static_cast<std::uint32_t>(queue_cumulative_.size() - 1);
  for (std::size_t i = 0; i < queue_cumulative_.size(); ++i) {
    if (u < queue_cumulative_[i]) {
      job.origin_queue = static_cast<std::uint32_t>(i);
      break;
    }
  }
}

}  // namespace mcsim
