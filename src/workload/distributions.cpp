#include "workload/distributions.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"
#include "util/strings.hpp"

namespace mcsim {

double Distribution::cv() const {
  const double m = mean();
  if (m == 0.0) return 0.0;
  return std::sqrt(variance()) / m;
}

DeterministicDistribution::DeterministicDistribution(double value) : value_(value) {}

std::string DeterministicDistribution::describe() const {
  return "Deterministic(" + format_double(value_) + ")";
}

UniformRealDistribution::UniformRealDistribution(double lo, double hi) : lo_(lo), hi_(hi) {
  MCSIM_REQUIRE(hi > lo, "uniform range must be non-empty");
}

double UniformRealDistribution::sample(Rng& rng) const { return rng.uniform(lo_, hi_); }

double UniformRealDistribution::variance() const {
  const double w = hi_ - lo_;
  return w * w / 12.0;
}

std::string UniformRealDistribution::describe() const {
  return "Uniform(" + format_double(lo_) + ", " + format_double(hi_) + ")";
}

ExponentialDistribution::ExponentialDistribution(double mean) : mean_(mean) {
  MCSIM_REQUIRE(mean > 0.0, "exponential mean must be positive");
}

double ExponentialDistribution::sample(Rng& rng) const { return rng.exponential_mean(mean_); }

std::string ExponentialDistribution::describe() const {
  return "Exponential(mean=" + format_double(mean_) + ")";
}

HyperExponentialDistribution::HyperExponentialDistribution(double p, double mean1, double mean2)
    : p_(p), mean1_(mean1), mean2_(mean2) {
  MCSIM_REQUIRE(p >= 0.0 && p <= 1.0, "mixing probability must be in [0,1]");
  MCSIM_REQUIRE(mean1 > 0.0 && mean2 > 0.0, "phase means must be positive");
}

double HyperExponentialDistribution::sample(Rng& rng) const {
  return rng.exponential_mean(rng.uniform() < p_ ? mean1_ : mean2_);
}

double HyperExponentialDistribution::mean() const {
  return p_ * mean1_ + (1.0 - p_) * mean2_;
}

double HyperExponentialDistribution::variance() const {
  // E[X^2] for a mixture of exponentials: sum_i w_i * 2*m_i^2.
  const double second = p_ * 2.0 * mean1_ * mean1_ + (1.0 - p_) * 2.0 * mean2_ * mean2_;
  const double m = mean();
  return second - m * m;
}

std::string HyperExponentialDistribution::describe() const {
  return str_printf("HyperExp(p=%.3f, m1=%.3f, m2=%.3f)", p_, mean1_, mean2_);
}

LognormalDistribution::LognormalDistribution(double mu, double sigma) : mu_(mu), sigma_(sigma) {
  MCSIM_REQUIRE(sigma > 0.0, "lognormal sigma must be positive");
}

LognormalDistribution LognormalDistribution::from_mean_cv(double mean, double cv) {
  MCSIM_REQUIRE(mean > 0.0 && cv > 0.0, "lognormal mean and cv must be positive");
  const double sigma2 = std::log(1.0 + cv * cv);
  const double mu = std::log(mean) - sigma2 / 2.0;
  return LognormalDistribution(mu, std::sqrt(sigma2));
}

double LognormalDistribution::sample(Rng& rng) const {
  return std::exp(mu_ + sigma_ * rng.normal());
}

double LognormalDistribution::mean() const { return std::exp(mu_ + sigma_ * sigma_ / 2.0); }

double LognormalDistribution::variance() const {
  const double s2 = sigma_ * sigma_;
  return (std::exp(s2) - 1.0) * std::exp(2.0 * mu_ + s2);
}

std::string LognormalDistribution::describe() const {
  return str_printf("Lognormal(mu=%.4f, sigma=%.4f)", mu_, sigma_);
}

WeibullDistribution::WeibullDistribution(double shape, double scale)
    : shape_(shape), scale_(scale) {
  MCSIM_REQUIRE(shape > 0.0 && scale > 0.0, "Weibull parameters must be positive");
}

double WeibullDistribution::sample(Rng& rng) const {
  double u;
  do {
    u = rng.uniform();
  } while (u <= 0.0);
  return scale_ * std::pow(-std::log(u), 1.0 / shape_);
}

double WeibullDistribution::mean() const {
  return scale_ * std::tgamma(1.0 + 1.0 / shape_);
}

double WeibullDistribution::variance() const {
  const double g1 = std::tgamma(1.0 + 1.0 / shape_);
  const double g2 = std::tgamma(1.0 + 2.0 / shape_);
  return scale_ * scale_ * (g2 - g1 * g1);
}

std::string WeibullDistribution::describe() const {
  return str_printf("Weibull(shape=%.3f, scale=%.3f)", shape_, scale_);
}

BoundedParetoDistribution::BoundedParetoDistribution(double lo, double hi, double alpha)
    : lo_(lo), hi_(hi), alpha_(alpha) {
  MCSIM_REQUIRE(lo > 0.0 && hi > lo, "bounded Pareto needs 0 < lo < hi");
  MCSIM_REQUIRE(alpha > 0.0, "bounded Pareto alpha must be positive");
}

double BoundedParetoDistribution::sample(Rng& rng) const {
  // Inverse-CDF.
  const double u = rng.uniform();
  const double la = std::pow(lo_, alpha_);
  const double ha = std::pow(hi_, alpha_);
  return std::pow(-(u * ha - u * la - ha) / (ha * la), -1.0 / alpha_);
}

double BoundedParetoDistribution::raw_moment(double k) const {
  // E[X^k] for bounded Pareto.
  const double la = std::pow(lo_, alpha_);
  const double ha = std::pow(hi_, alpha_);
  if (std::fabs(alpha_ - k) < 1e-12) {
    return alpha_ * la / (1.0 - la / ha) * (std::log(hi_) - std::log(lo_));
  }
  return alpha_ * la / (1.0 - la / ha) *
         (std::pow(lo_, k - alpha_) - std::pow(hi_, k - alpha_)) / (alpha_ - k);
}

double BoundedParetoDistribution::mean() const { return raw_moment(1.0); }

double BoundedParetoDistribution::variance() const {
  const double m = mean();
  return raw_moment(2.0) - m * m;
}

std::string BoundedParetoDistribution::describe() const {
  return str_printf("BoundedPareto(lo=%.3f, hi=%.3f, alpha=%.3f)", lo_, hi_, alpha_);
}

TruncatedDistribution::TruncatedDistribution(DistributionPtr inner, double lo, double hi)
    : inner_(std::move(inner)), lo_(lo), hi_(hi) {
  MCSIM_REQUIRE(inner_ != nullptr, "truncated distribution needs an inner distribution");
  MCSIM_REQUIRE(hi > lo, "truncation range must be non-empty");
  // Deterministic Monte Carlo estimate of the truncated moments.
  Rng probe(0xC0FFEE123456789AULL);
  constexpr int kProbes = 200000;
  double sum = 0.0, sumsq = 0.0;
  for (int i = 0; i < kProbes; ++i) {
    // Use the same truncation logic as sample().
    double x = inner_->sample(probe);
    for (int attempt = 0; attempt < 64 && (x < lo_ || x > hi_); ++attempt) {
      x = inner_->sample(probe);
    }
    if (x < lo_) x = lo_;
    if (x > hi_) x = hi_;
    sum += x;
    sumsq += x * x;
  }
  mean_ = sum / kProbes;
  variance_ = sumsq / kProbes - mean_ * mean_;
}

double TruncatedDistribution::sample(Rng& rng) const {
  double x = inner_->sample(rng);
  for (int attempt = 0; attempt < 64 && (x < lo_ || x > hi_); ++attempt) {
    x = inner_->sample(rng);
  }
  if (x < lo_) return lo_;
  if (x > hi_) return hi_;
  return x;
}

std::string TruncatedDistribution::describe() const {
  return "Truncated(" + inner_->describe() + ", [" + format_double(lo_) + ", " +
         format_double(hi_) + "])";
}

MixtureDistribution::MixtureDistribution(std::vector<DistributionPtr> components,
                                         std::vector<double> weights)
    : components_(std::move(components)), weights_(std::move(weights)) {
  MCSIM_REQUIRE(!components_.empty(), "mixture needs components");
  MCSIM_REQUIRE(components_.size() == weights_.size(), "mixture weights/components mismatch");
  double total = 0.0;
  for (double w : weights_) {
    MCSIM_REQUIRE(w >= 0.0, "mixture weights must be non-negative");
    total += w;
  }
  MCSIM_REQUIRE(total > 0.0, "mixture weights must not all be zero");
  cumulative_.reserve(weights_.size());
  double acc = 0.0;
  for (double& w : weights_) {
    w /= total;
    acc += w;
    cumulative_.push_back(acc);
  }
  cumulative_.back() = 1.0;
}

double MixtureDistribution::sample(Rng& rng) const {
  const double u = rng.uniform();
  for (std::size_t i = 0; i < cumulative_.size(); ++i) {
    if (u < cumulative_[i]) return components_[i]->sample(rng);
  }
  return components_.back()->sample(rng);
}

double MixtureDistribution::mean() const {
  double m = 0.0;
  for (std::size_t i = 0; i < components_.size(); ++i) m += weights_[i] * components_[i]->mean();
  return m;
}

double MixtureDistribution::variance() const {
  // Var = E[second moments] - mean^2 using component raw second moments.
  double second = 0.0;
  for (std::size_t i = 0; i < components_.size(); ++i) {
    const double cm = components_[i]->mean();
    second += weights_[i] * (components_[i]->variance() + cm * cm);
  }
  const double m = mean();
  return second - m * m;
}

std::string MixtureDistribution::describe() const {
  std::string out = "Mixture(";
  for (std::size_t i = 0; i < components_.size(); ++i) {
    if (i) out += ", ";
    out += format_double(weights_[i]) + "*" + components_[i]->describe();
  }
  return out + ")";
}

PiecewiseLinearDistribution PiecewiseLinearDistribution::from_samples(
    std::vector<double> samples) {
  MCSIM_REQUIRE(samples.size() >= 2, "need at least two samples");
  std::sort(samples.begin(), samples.end());
  MCSIM_REQUIRE(samples.front() < samples.back(),
                "samples must contain at least two distinct values");
  return PiecewiseLinearDistribution(std::move(samples));
}

PiecewiseLinearDistribution::PiecewiseLinearDistribution(std::vector<double> sorted)
    : sorted_(std::move(sorted)) {
  // Moments of the interpolated ECDF: uniform mixture over the segments
  // [x_i, x_{i+1}], each with weight 1/(n-1).
  const std::size_t n = sorted_.size();
  double mean = 0.0;
  double second = 0.0;
  for (std::size_t i = 0; i + 1 < n; ++i) {
    const double a = sorted_[i];
    const double b = sorted_[i + 1];
    mean += (a + b) / 2.0;
    second += (a * a + a * b + b * b) / 3.0;  // E[U(a,b)^2]
  }
  mean /= static_cast<double>(n - 1);
  second /= static_cast<double>(n - 1);
  mean_ = mean;
  variance_ = std::max(0.0, second - mean * mean);
}

double PiecewiseLinearDistribution::sample(Rng& rng) const {
  // Inverse of the interpolated ECDF: pick a segment uniformly, then a
  // uniform point within it.
  const std::size_t segment =
      static_cast<std::size_t>(rng.uniform_int(sorted_.size() - 1));
  const double a = sorted_[segment];
  const double b = sorted_[segment + 1];
  return a == b ? a : rng.uniform(a, b);
}

std::string PiecewiseLinearDistribution::describe() const {
  return str_printf("EmpiricalECDF(%zu samples, mean=%.3f, cv=%.3f)", sorted_.size(), mean_,
                    cv());
}

ErlangDistribution::ErlangDistribution(std::uint32_t k, double phase_mean)
    : k_(k), phase_mean_(phase_mean) {
  MCSIM_REQUIRE(k > 0, "Erlang needs at least one phase");
  MCSIM_REQUIRE(phase_mean > 0.0, "Erlang phase mean must be positive");
}

double ErlangDistribution::sample(Rng& rng) const {
  // Product of uniforms: sum of k exponentials = -mean * ln(prod u_i).
  double product = 1.0;
  for (std::uint32_t i = 0; i < k_; ++i) {
    double u;
    do {
      u = rng.uniform();
    } while (u <= 0.0);
    product *= u;
  }
  return -phase_mean_ * std::log(product);
}

double ErlangDistribution::mean() const { return k_ * phase_mean_; }

double ErlangDistribution::variance() const { return k_ * phase_mean_ * phase_mean_; }

std::string ErlangDistribution::describe() const {
  return str_printf("Erlang(k=%u, phase_mean=%.3f)", k_, phase_mean_);
}

GammaDistribution::GammaDistribution(double shape, double scale)
    : shape_(shape), scale_(scale) {
  MCSIM_REQUIRE(shape > 0.0 && scale > 0.0, "Gamma parameters must be positive");
}

double GammaDistribution::sample(Rng& rng) const {
  // Marsaglia-Tsang squeeze; for shape < 1 boost via the power trick.
  double shape = shape_;
  double boost = 1.0;
  if (shape < 1.0) {
    double u;
    do {
      u = rng.uniform();
    } while (u <= 0.0);
    boost = std::pow(u, 1.0 / shape);
    shape += 1.0;
  }
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  while (true) {
    double x;
    double v;
    do {
      x = rng.normal();
      v = 1.0 + c * x;
    } while (v <= 0.0);
    v = v * v * v;
    const double u = rng.uniform();
    if (u < 1.0 - 0.0331 * x * x * x * x) return boost * d * v * scale_;
    if (u > 0.0 && std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) {
      return boost * d * v * scale_;
    }
  }
}

std::string GammaDistribution::describe() const {
  return str_printf("Gamma(shape=%.3f, scale=%.3f)", shape_, scale_);
}

ShiftedDistribution::ShiftedDistribution(DistributionPtr inner, double shift)
    : inner_(std::move(inner)), shift_(shift) {
  MCSIM_REQUIRE(inner_ != nullptr, "shifted distribution needs an inner distribution");
}

double ShiftedDistribution::sample(Rng& rng) const { return inner_->sample(rng) + shift_; }

std::string ShiftedDistribution::describe() const {
  return inner_->describe() + "+" + format_double(shift_);
}

ScaledDistribution::ScaledDistribution(DistributionPtr inner, double factor)
    : inner_(std::move(inner)), factor_(factor) {
  MCSIM_REQUIRE(inner_ != nullptr, "scaled distribution needs an inner distribution");
  MCSIM_REQUIRE(factor > 0.0, "scale factor must be positive");
}

double ScaledDistribution::sample(Rng& rng) const { return factor_ * inner_->sample(rng); }

std::string ScaledDistribution::describe() const {
  return format_double(factor_) + "*" + inner_->describe();
}

}  // namespace mcsim
