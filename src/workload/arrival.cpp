#include "workload/arrival.hpp"

#include <cmath>

#include "util/assert.hpp"

namespace mcsim {

PoissonProcess::PoissonProcess(double rate) : rate_(rate) {
  MCSIM_REQUIRE(rate > 0.0, "arrival rate must be positive");
}

double PoissonProcess::next_interarrival(double /*now*/, Rng& rng) const {
  return rng.exponential_mean(1.0 / rate_);
}

PeriodicPoissonProcess::PeriodicPoissonProcess(double base_rate, double period,
                                               double (*profile)(double))
    : base_rate_(base_rate), period_(period), profile_(profile) {
  MCSIM_REQUIRE(base_rate > 0.0, "base rate must be positive");
  MCSIM_REQUIRE(period > 0.0, "period must be positive");
  MCSIM_REQUIRE(profile != nullptr, "profile function required");
  // Mean intensity by trapezoidal integration over one period.
  constexpr int kSteps = 1000;
  double sum = 0.0;
  for (int i = 0; i <= kSteps; ++i) {
    const double t = period_ * static_cast<double>(i) / kSteps;
    const double w = (i == 0 || i == kSteps) ? 0.5 : 1.0;
    sum += w * profile_(t);
  }
  mean_intensity_ = base_rate_ * sum / kSteps;
}

double PeriodicPoissonProcess::next_interarrival(double now, Rng& rng) const {
  // Ogata thinning against the constant majorant base_rate_.
  double t = now;
  while (true) {
    t += rng.exponential_mean(1.0 / base_rate_);
    const double phase = std::fmod(t, period_);
    const double intensity = profile_(phase);
    MCSIM_ASSERT(intensity >= 0.0 && intensity <= 1.0);
    if (rng.uniform() < intensity) return t - now;
  }
}

double PeriodicPoissonProcess::rate() const { return mean_intensity_; }

double arrival_rate_for_gross_utilization(double rho, std::uint32_t total_processors,
                                          double mean_extended_size, double mean_service) {
  MCSIM_REQUIRE(rho > 0.0, "utilization must be positive");
  MCSIM_REQUIRE(total_processors > 0, "system must have processors");
  MCSIM_REQUIRE(mean_extended_size > 0.0 && mean_service > 0.0,
                "mean work per job must be positive");
  return rho * static_cast<double>(total_processors) / (mean_extended_size * mean_service);
}

}  // namespace mcsim
