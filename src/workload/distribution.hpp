// Abstract random-variate distribution.
//
// All workload inputs (interarrival times, total job sizes, service times)
// are Distributions. Means and variances are analytic wherever the sweep
// driver needs them to convert a target utilization into an arrival rate.
#pragma once

#include <memory>
#include <string>

#include "util/rng.hpp"

namespace mcsim {

class Distribution {
 public:
  virtual ~Distribution() = default;

  /// Draw one variate.
  [[nodiscard]] virtual double sample(Rng& rng) const = 0;

  [[nodiscard]] virtual double mean() const = 0;
  [[nodiscard]] virtual double variance() const = 0;

  /// Coefficient of variation; 0 if the mean is 0.
  [[nodiscard]] double cv() const;

  /// Human-readable description, e.g. "Exponential(mean=120)".
  [[nodiscard]] virtual std::string describe() const = 0;
};

using DistributionPtr = std::shared_ptr<const Distribution>;

}  // namespace mcsim
