// Discrete (finite-support) distribution with O(1) sampling via Walker's
// alias method. All job-size distributions (DAS-s-128, DAS-s-64, empirical
// distributions derived from traces) are DiscreteDistributions, so their
// means/variances — which the sweep driver needs to set arrival rates — are
// exact sums, not estimates.
#pragma once

#include <cstdint>
#include <vector>

#include "workload/distribution.hpp"

namespace mcsim {

class DiscreteDistribution final : public Distribution {
 public:
  /// `values[i]` occurs with probability proportional to `weights[i]`.
  /// Values must be distinct; weights non-negative with a positive sum.
  DiscreteDistribution(std::vector<double> values, std::vector<double> weights);

  /// Trivial distribution (always 1); lets configs be default-constructed
  /// before the real distribution is assigned.
  DiscreteDistribution() : DiscreteDistribution({1.0}, {1.0}) {}

  double sample(Rng& rng) const override;
  double mean() const override { return mean_; }
  double variance() const override { return variance_; }
  std::string describe() const override;

  [[nodiscard]] std::size_t support_size() const { return values_.size(); }
  [[nodiscard]] const std::vector<double>& values() const { return values_; }
  /// Normalised probabilities aligned with values().
  [[nodiscard]] const std::vector<double>& probabilities() const { return probs_; }
  /// Probability of an exact value (0 if not in the support).
  [[nodiscard]] double probability_of(double value) const;
  [[nodiscard]] double min_value() const;
  [[nodiscard]] double max_value() const;

  /// Restrict to values <= cut and renormalise (the DAS-s-64 construction:
  /// "the log cut at 64"). Returns the fraction of probability mass removed.
  [[nodiscard]] DiscreteDistribution truncate_above(double cut, double* removed_mass = nullptr) const;

 private:
  void build_alias_table();

  std::vector<double> values_;
  std::vector<double> probs_;
  std::vector<double> alias_prob_;
  std::vector<std::uint32_t> alias_;
  double mean_ = 0.0;
  double variance_ = 0.0;
};

}  // namespace mcsim
