// Synthetic job-size distribution families.
//
// The paper's predecessors ([6,7,8]) evaluate co-allocation on the
// synthetic family D(q): job sizes i in [lo, hi] with probability
// proportional to q^i (small sizes favoured for q < 1), with powers of two
// three times as likely — the stylised shape later confirmed by the DAS1
// log (Fig. 1). Provided here so users can rerun the study on the authors'
// earlier workloads or on parametric what-if mixes.
#pragma once

#include <cstdint>

#include "workload/discrete.hpp"

namespace mcsim {

/// The D(q) distribution of Bucur & Epema's earlier studies.
/// `pow2_boost` multiplies the weight of power-of-two sizes (3.0 there).
DiscreteDistribution dq_size_distribution(double q, std::uint32_t lo, std::uint32_t hi,
                                          double pow2_boost = 3.0);

/// Uniform job sizes on [lo, hi] (a common worst-case reference).
DiscreteDistribution uniform_size_distribution(std::uint32_t lo, std::uint32_t hi);

/// Zipf-like sizes: P(i) proportional to 1/i^alpha on [lo, hi].
DiscreteDistribution zipf_size_distribution(double alpha, std::uint32_t lo,
                                            std::uint32_t hi);

}  // namespace mcsim
