// Job arrival processes. The paper uses exponential interarrival times
// (Poisson arrivals); the open-ended ArrivalProcess interface lets the
// examples plug in other processes (e.g. the day/night-modulated process the
// synthetic log generator uses).
#pragma once

#include <memory>

#include "util/rng.hpp"
#include "workload/distribution.hpp"

namespace mcsim {

class ArrivalProcess {
 public:
  virtual ~ArrivalProcess() = default;
  /// Time until the next arrival, given the current time.
  [[nodiscard]] virtual double next_interarrival(double now, Rng& rng) const = 0;
  /// Long-run arrival rate (jobs per second).
  [[nodiscard]] virtual double rate() const = 0;
};

/// Homogeneous Poisson process.
class PoissonProcess final : public ArrivalProcess {
 public:
  explicit PoissonProcess(double rate);
  double next_interarrival(double now, Rng& rng) const override;
  double rate() const override { return rate_; }

 private:
  double rate_;
};

/// Nonhomogeneous Poisson with a periodic (daily) intensity profile,
/// sampled by thinning. Used by the synthetic DAS1 log generator to model
/// the working-hours submission pattern.
class PeriodicPoissonProcess final : public ArrivalProcess {
 public:
  /// `base_rate` is the peak intensity; `profile(t_in_period)` in [0,1]
  /// modulates it; `period` in seconds.
  PeriodicPoissonProcess(double base_rate, double period, double (*profile)(double));
  double next_interarrival(double now, Rng& rng) const override;
  double rate() const override;

 private:
  double base_rate_;
  double period_;
  double (*profile_)(double);
  double mean_intensity_;
};

/// The arrival rate that produces gross utilization `rho` on a system of
/// `total_processors`, given the expected gross work per job
/// E[extended_size] * E[service] (sizes and service times are independent
/// in the model).
double arrival_rate_for_gross_utilization(double rho, std::uint32_t total_processors,
                                          double mean_extended_size, double mean_service);

}  // namespace mcsim
