#include "workload/discrete.hpp"

#include <algorithm>
#include <unordered_set>

#include "util/assert.hpp"
#include "util/strings.hpp"

namespace mcsim {

DiscreteDistribution::DiscreteDistribution(std::vector<double> values,
                                           std::vector<double> weights)
    : values_(std::move(values)), probs_(std::move(weights)) {
  MCSIM_REQUIRE(!values_.empty(), "discrete distribution needs a non-empty support");
  MCSIM_REQUIRE(values_.size() == probs_.size(), "values/weights size mismatch");
  std::unordered_set<double> seen;
  for (double v : values_) {
    MCSIM_REQUIRE(seen.insert(v).second, "discrete distribution values must be distinct");
  }
  double total = 0.0;
  for (double w : probs_) {
    MCSIM_REQUIRE(w >= 0.0, "weights must be non-negative");
    total += w;
  }
  MCSIM_REQUIRE(total > 0.0, "weights must not all be zero");
  for (double& w : probs_) w /= total;

  mean_ = 0.0;
  for (std::size_t i = 0; i < values_.size(); ++i) mean_ += probs_[i] * values_[i];
  double second = 0.0;
  for (std::size_t i = 0; i < values_.size(); ++i) second += probs_[i] * values_[i] * values_[i];
  variance_ = std::max(0.0, second - mean_ * mean_);

  build_alias_table();
}

void DiscreteDistribution::build_alias_table() {
  const std::size_t n = values_.size();
  alias_prob_.assign(n, 0.0);
  alias_.assign(n, 0);
  std::vector<double> scaled(n);
  for (std::size_t i = 0; i < n; ++i) scaled[i] = probs_[i] * static_cast<double>(n);

  std::vector<std::uint32_t> small, large;
  small.reserve(n);
  large.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    (scaled[i] < 1.0 ? small : large).push_back(static_cast<std::uint32_t>(i));
  }
  while (!small.empty() && !large.empty()) {
    const std::uint32_t s = small.back();
    small.pop_back();
    const std::uint32_t l = large.back();
    alias_prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    if (scaled[l] < 1.0) {
      large.pop_back();
      small.push_back(l);
    }
  }
  for (std::uint32_t i : large) alias_prob_[i] = 1.0;
  for (std::uint32_t i : small) alias_prob_[i] = 1.0;  // numerical leftovers
}

double DiscreteDistribution::sample(Rng& rng) const {
  const auto column = static_cast<std::size_t>(rng.uniform_int(values_.size()));
  const bool keep = rng.uniform() < alias_prob_[column];
  return values_[keep ? column : alias_[column]];
}

std::string DiscreteDistribution::describe() const {
  return str_printf("Discrete(%zu values, mean=%.3f, cv=%.3f)", values_.size(), mean_, cv());
}

double DiscreteDistribution::probability_of(double value) const {
  for (std::size_t i = 0; i < values_.size(); ++i) {
    if (values_[i] == value) return probs_[i];
  }
  return 0.0;
}

double DiscreteDistribution::min_value() const {
  return *std::min_element(values_.begin(), values_.end());
}

double DiscreteDistribution::max_value() const {
  return *std::max_element(values_.begin(), values_.end());
}

DiscreteDistribution DiscreteDistribution::truncate_above(double cut, double* removed_mass) const {
  std::vector<double> values;
  std::vector<double> weights;
  double removed = 0.0;
  for (std::size_t i = 0; i < values_.size(); ++i) {
    if (values_[i] <= cut) {
      values.push_back(values_[i]);
      weights.push_back(probs_[i]);
    } else {
      removed += probs_[i];
    }
  }
  MCSIM_REQUIRE(!values.empty(), "truncation removed the entire support");
  if (removed_mass != nullptr) *removed_mass = removed;
  return DiscreteDistribution(std::move(values), std::move(weights));
}

}  // namespace mcsim
