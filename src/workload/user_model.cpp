#include "workload/user_model.hpp"

#include <cmath>

#include "util/assert.hpp"

namespace mcsim {

UserWorkloadModel::UserWorkloadModel(UserModelConfig config, std::uint64_t seed)
    : config_(config), rng_(make_stream(seed, "user-sessions")) {
  MCSIM_REQUIRE(config_.num_users > 0, "need at least one user");
  MCSIM_REQUIRE(config_.mean_session_jobs >= 1.0, "sessions have at least one job");
  MCSIM_REQUIRE(config_.mean_think_time > 0.0 && config_.mean_break_time > 0.0,
                "think and break times must be positive");
  MCSIM_REQUIRE(config_.activity_skew >= 0.0, "activity skew must be non-negative");

  users_.resize(config_.num_users);
  for (std::uint32_t u = 0; u < config_.num_users; ++u) {
    // Zipf-skewed activity: user u runs at speed 1/(u+1)^skew relative to
    // the most active user (longer breaks, same sessions).
    users_[u].speed = 1.0 / std::pow(static_cast<double>(u + 1), config_.activity_skew);
    // Stagger initial sessions across one mean break.
    users_[u].next_time =
        rng_.exponential_mean(config_.mean_break_time / users_[u].speed);
    users_[u].jobs_left_in_session = draw_session_length(u);
    heap_.push(HeapEntry{users_[u].next_time, u});
  }
}

std::uint32_t UserWorkloadModel::draw_session_length(std::uint32_t /*user*/) {
  // Geometric on {1, 2, ...} with the configured mean.
  const double p = 1.0 / config_.mean_session_jobs;
  std::uint32_t length = 1;
  while (rng_.uniform() > p && length < 10000) ++length;
  return length;
}

void UserWorkloadModel::schedule_user(std::uint32_t user) {
  UserState& state = users_[user];
  MCSIM_ASSERT(state.jobs_left_in_session > 0);
  --state.jobs_left_in_session;
  if (state.jobs_left_in_session > 0) {
    state.next_time += rng_.exponential_mean(config_.mean_think_time);
  } else {
    state.next_time += rng_.exponential_mean(config_.mean_break_time / state.speed);
    state.jobs_left_in_session = draw_session_length(user);
  }
  heap_.push(HeapEntry{state.next_time, user});
}

UserWorkloadModel::Submission UserWorkloadModel::next() {
  MCSIM_ASSERT(!heap_.empty());
  const HeapEntry entry = heap_.top();
  heap_.pop();
  schedule_user(entry.user);
  return Submission{entry.time, entry.user};
}

double UserWorkloadModel::mean_rate() const {
  // Each user cycles: session of J jobs taking (J-1) think times, then a
  // break scaled by 1/speed. Rate per user = J / ((J-1)*think + break/speed).
  const double jobs = config_.mean_session_jobs;
  double rate = 0.0;
  for (const auto& user : users_) {
    const double cycle =
        (jobs - 1.0) * config_.mean_think_time + config_.mean_break_time / user.speed;
    rate += jobs / cycle;
  }
  return rate;
}

}  // namespace mcsim
