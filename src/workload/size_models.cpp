#include "workload/size_models.hpp"

#include <cmath>

#include "util/assert.hpp"

namespace mcsim {

namespace {
bool is_power_of_two(std::uint32_t v) { return v != 0 && (v & (v - 1)) == 0; }

DiscreteDistribution build(std::uint32_t lo, std::uint32_t hi,
                           double (*weight)(std::uint32_t, double, double), double a,
                           double b) {
  MCSIM_REQUIRE(lo >= 1, "sizes start at 1");
  MCSIM_REQUIRE(hi >= lo, "size range must be non-empty");
  std::vector<double> values;
  std::vector<double> weights;
  values.reserve(hi - lo + 1);
  weights.reserve(hi - lo + 1);
  for (std::uint32_t v = lo; v <= hi; ++v) {
    values.push_back(static_cast<double>(v));
    weights.push_back(weight(v, a, b));
  }
  return DiscreteDistribution(std::move(values), std::move(weights));
}
}  // namespace

DiscreteDistribution dq_size_distribution(double q, std::uint32_t lo, std::uint32_t hi,
                                          double pow2_boost) {
  MCSIM_REQUIRE(q > 0.0 && q < 1.0, "D(q) needs q in (0,1)");
  MCSIM_REQUIRE(pow2_boost > 0.0, "power-of-two boost must be positive");
  return build(lo, hi,
               +[](std::uint32_t v, double qq, double boost) {
                 const double base = std::pow(qq, static_cast<double>(v));
                 return is_power_of_two(v) ? boost * base : base;
               },
               q, pow2_boost);
}

DiscreteDistribution uniform_size_distribution(std::uint32_t lo, std::uint32_t hi) {
  return build(lo, hi, +[](std::uint32_t, double, double) { return 1.0; }, 0, 0);
}

DiscreteDistribution zipf_size_distribution(double alpha, std::uint32_t lo,
                                            std::uint32_t hi) {
  MCSIM_REQUIRE(alpha > 0.0, "Zipf alpha must be positive");
  return build(lo, hi,
               +[](std::uint32_t v, double a, double) {
                 return 1.0 / std::pow(static_cast<double>(v), a);
               },
               alpha, 0);
}

}  // namespace mcsim
