// Splitting total job sizes into co-allocation components (paper Sect. 2.4).
//
// Given a job-component-size limit L and a system of C clusters, the number
// of components is the smallest n with ceil(size/n) <= L, i.e.
// n = ceil(size/L) — but never more than C ("as long as the number of
// components does not exceed the number of clusters"; for very large jobs
// components may then exceed L). The job is split into components of sizes
// as equal as possible, listed in non-increasing order.
//
// Worked example from the paper (C = 4 clusters of 32): a job of size 64
// becomes (16,16,16,16) with L=16, (22,21,21) with L=24, (32,32) with L=32
// — the L=24 split is what makes that limit pack so badly (Sect. 3.3).
#pragma once

#include <cstdint>
#include <vector>

namespace mcsim {

/// Number of components for `total_size` under limit `component_limit` in a
/// system of `num_clusters` clusters.
std::uint32_t component_count(std::uint32_t total_size, std::uint32_t component_limit,
                              std::uint32_t num_clusters);

/// Component sizes, non-increasing, summing to `total_size`.
std::vector<std::uint32_t> split_job(std::uint32_t total_size, std::uint32_t component_limit,
                                     std::uint32_t num_clusters);

}  // namespace mcsim
