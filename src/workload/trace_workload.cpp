#include "workload/trace_workload.hpp"

#include <algorithm>
#include <utility>

#include "util/assert.hpp"
#include "workload/job_splitter.hpp"

namespace mcsim {

std::vector<TraceRecord> usable_trace_records(const std::vector<TraceRecord>& raw) {
  std::vector<TraceRecord> usable;
  usable.reserve(raw.size());
  for (const TraceRecord& rec : raw) {
    if (!trace_record_usable(rec)) continue;
    usable.push_back(rec);
  }
  std::sort(usable.begin(), usable.end(), [](const TraceRecord& a, const TraceRecord& b) {
    if (a.submit_time != b.submit_time) return a.submit_time < b.submit_time;
    return a.job_id < b.job_id;
  });
  return usable;
}

double trace_offered_gross_utilization(const std::vector<TraceRecord>& records,
                                       std::uint32_t total_processors) {
  MCSIM_REQUIRE(total_processors > 0, "trace utilization needs a non-empty system");
  if (records.empty()) return 0.0;
  double work = 0.0;
  double first = records.front().submit_time;
  double last = first;
  for (const TraceRecord& rec : records) {
    work += static_cast<double>(rec.processors) * rec.run_time;
    first = std::min(first, rec.submit_time);
    last = std::max(last, rec.submit_time);
  }
  const double span = last - first;
  if (span <= 0.0) return 0.0;
  return work / (static_cast<double>(total_processors) * span);
}

double trace_offered_gross_utilization(const TraceStreamSummary& summary,
                                       std::uint32_t total_processors) {
  MCSIM_REQUIRE(total_processors > 0, "trace utilization needs a non-empty system");
  if (summary.usable_records == 0) return 0.0;
  const double span = summary.last_submit - summary.first_submit;
  if (span <= 0.0) return 0.0;
  return summary.gross_work / (static_cast<double>(total_processors) * span);
}

namespace {
double scale_from_inherent(double inherent, double target) {
  MCSIM_REQUIRE(target > 0.0, "target utilization must be positive");
  MCSIM_REQUIRE(inherent > 0.0,
                "trace offers no load (empty, zero-span, or zero-work) -- "
                "cannot scale to a target utilization");
  return inherent / target;
}
}  // namespace

double trace_scale_for_utilization(const std::vector<TraceRecord>& records,
                                   std::uint32_t total_processors, double target) {
  return scale_from_inherent(trace_offered_gross_utilization(records, total_processors),
                             target);
}

double trace_scale_for_utilization(const TraceStreamSummary& summary,
                                   std::uint32_t total_processors, double target) {
  return scale_from_inherent(trace_offered_gross_utilization(summary, total_processors),
                             target);
}

TraceWorkload::TraceWorkload(std::shared_ptr<const TraceWorkloadConfig> config)
    : config_(std::move(config)) {
  MCSIM_REQUIRE(config_ != nullptr, "trace workload needs a config");
  MCSIM_REQUIRE(config_->arrival_scale > 0.0, "trace arrival_scale must be positive");
  MCSIM_REQUIRE(config_->num_clusters > 0, "trace workload needs at least one cluster");
  MCSIM_REQUIRE(!config_->split_jobs || config_->component_limit > 0,
                "trace component_limit must be positive when splitting");
  MCSIM_REQUIRE(config_->extension_factor >= 1.0, "extension factor must be >= 1");
  if (config_->streaming()) {
    MCSIM_REQUIRE(config_->records.empty(),
                  "trace workload config has both in-memory records and a "
                  "stream source; pick one delivery mode");
    MCSIM_REQUIRE(config_->lookahead_window > 0,
                  "trace lookahead_window must be positive");
    stream_ = config_->open_source();
    MCSIM_REQUIRE(stream_ != nullptr, "trace open_source returned no stream");
  }
}

void TraceWorkload::refill_lookahead() {
  TraceRecord rec;
  while (!stream_exhausted_ && lookahead_.size() < config_->lookahead_window) {
    if (!stream_->next(rec)) {
      stream_exhausted_ = true;
      break;
    }
    if (!trace_record_usable(rec)) continue;
    lookahead_.push(rec);
  }
}

void TraceWorkload::emit(const TraceRecord& rec, JobSpec& out) {
  JobSpec job;
  // Sequential ids (not the log's): replay ids must match what a synthetic
  // run would have assigned so an exported-then-replayed schedule lines up
  // job-for-job with its origin.
  job.id = emitted_;
  job.arrival_time = rec.submit_time * config_->arrival_scale;
  job.total_size = rec.processors;
  if (config_->split_jobs) {
    job.request_type = RequestType::kUnordered;
    job.components = split_job(rec.processors, config_->component_limit,
                               config_->num_clusters);
  } else {
    job.request_type = RequestType::kTotal;
    job.components = {rec.processors};
  }
  job.wide_area = job.components.size() > 1;
  // The log records elapsed execution time, i.e. the *gross* (extended)
  // service time; the net time is only used for slowdown reporting.
  job.gross_service_time = rec.run_time;
  job.service_time =
      job.wide_area ? rec.run_time / config_->extension_factor : rec.run_time;
  job.origin_queue = rec.user_id % config_->num_clusters;

  ++emitted_;
  out = std::move(job);
}

bool TraceWorkload::next(JobSpec& out) {
  if (!config_->streaming()) {
    if (emitted_ >= config_->records.size()) return false;
    emit(config_->records[emitted_], out);
    return true;
  }

  refill_lookahead();
  if (lookahead_.empty()) return false;
  const TraceRecord rec = lookahead_.top();
  lookahead_.pop();
  // The bounded merge only reproduces the full sort when the log's
  // disorder fits the window; a record surfacing *behind* one we already
  // emitted means it does not. Fail loudly — a silently misordered replay
  // would produce subtly wrong (and non-reproducible-vs-baseline) numbers.
  const bool in_order =
      emitted_ == 0 || rec.submit_time > last_submit_ ||
      (rec.submit_time == last_submit_ && rec.job_id >= last_job_id_);
  MCSIM_REQUIRE(in_order,
                "trace " +
                    (config_->source_path.empty() ? std::string("<stream>")
                                                  : config_->source_path) +
                    ": record " + std::to_string(rec.job_id) + " (submit " +
                    std::to_string(rec.submit_time) +
                    ") is out of order beyond the lookahead window (" +
                    std::to_string(config_->lookahead_window) +
                    " records); raise lookahead_window or pre-sort the log");
  last_submit_ = rec.submit_time;
  last_job_id_ = rec.job_id;
  emit(rec, out);
  return true;
}

}  // namespace mcsim
