#include "workload/trace_workload.hpp"

#include <algorithm>
#include <utility>

#include "util/assert.hpp"
#include "workload/job_splitter.hpp"

namespace mcsim {

std::vector<TraceRecord> usable_trace_records(const std::vector<TraceRecord>& raw) {
  std::vector<TraceRecord> usable;
  usable.reserve(raw.size());
  for (const TraceRecord& rec : raw) {
    // Cancelled-before-start jobs (run 0), interactive stubs (0 procs) and
    // records with unknown submit times offer no work to schedule.
    if (rec.processors == 0 || rec.run_time <= 0.0 || rec.submit_time < 0.0) continue;
    usable.push_back(rec);
  }
  std::sort(usable.begin(), usable.end(), [](const TraceRecord& a, const TraceRecord& b) {
    if (a.submit_time != b.submit_time) return a.submit_time < b.submit_time;
    return a.job_id < b.job_id;
  });
  return usable;
}

double trace_offered_gross_utilization(const std::vector<TraceRecord>& records,
                                       std::uint32_t total_processors) {
  MCSIM_REQUIRE(total_processors > 0, "trace utilization needs a non-empty system");
  if (records.empty()) return 0.0;
  double work = 0.0;
  double first = records.front().submit_time;
  double last = first;
  for (const TraceRecord& rec : records) {
    work += static_cast<double>(rec.processors) * rec.run_time;
    first = std::min(first, rec.submit_time);
    last = std::max(last, rec.submit_time);
  }
  const double span = last - first;
  if (span <= 0.0) return 0.0;
  return work / (static_cast<double>(total_processors) * span);
}

double trace_scale_for_utilization(const std::vector<TraceRecord>& records,
                                   std::uint32_t total_processors, double target) {
  MCSIM_REQUIRE(target > 0.0, "target utilization must be positive");
  const double inherent = trace_offered_gross_utilization(records, total_processors);
  MCSIM_REQUIRE(inherent > 0.0,
                "trace offers no load (empty, zero-span, or zero-work) -- "
                "cannot scale to a target utilization");
  return inherent / target;
}

TraceWorkload::TraceWorkload(std::shared_ptr<const TraceWorkloadConfig> config)
    : config_(std::move(config)) {
  MCSIM_REQUIRE(config_ != nullptr, "trace workload needs a config");
  MCSIM_REQUIRE(config_->arrival_scale > 0.0, "trace arrival_scale must be positive");
  MCSIM_REQUIRE(config_->num_clusters > 0, "trace workload needs at least one cluster");
  MCSIM_REQUIRE(!config_->split_jobs || config_->component_limit > 0,
                "trace component_limit must be positive when splitting");
  MCSIM_REQUIRE(config_->extension_factor >= 1.0, "extension factor must be >= 1");
}

bool TraceWorkload::next(JobSpec& out) {
  if (next_index_ >= config_->records.size()) return false;
  const TraceRecord& rec = config_->records[next_index_];

  JobSpec job;
  // Sequential ids (not the log's): replay ids must match what a synthetic
  // run would have assigned so an exported-then-replayed schedule lines up
  // job-for-job with its origin.
  job.id = next_index_;
  job.arrival_time = rec.submit_time * config_->arrival_scale;
  job.total_size = rec.processors;
  if (config_->split_jobs) {
    job.request_type = RequestType::kUnordered;
    job.components = split_job(rec.processors, config_->component_limit,
                               config_->num_clusters);
  } else {
    job.request_type = RequestType::kTotal;
    job.components = {rec.processors};
  }
  job.wide_area = job.components.size() > 1;
  // The log records elapsed execution time, i.e. the *gross* (extended)
  // service time; the net time is only used for slowdown reporting.
  job.gross_service_time = rec.run_time;
  job.service_time =
      job.wide_area ? rec.run_time / config_->extension_factor : rec.run_time;
  job.origin_queue = rec.user_id % config_->num_clusters;

  ++next_index_;
  out = std::move(job);
  return true;
}

}  // namespace mcsim
