// The DAS-derived workload model (paper Sect. 2.4).
//
// The paper samples two distributions measured on the 128-processor DAS1
// cluster: total job sizes (DAS-s-128, and DAS-s-64 = the log cut at 64)
// and service times (DAS-t-900 = the log cut at 900 s). The raw log is not
// available, so we reconstruct the distributions from every statistic the
// paper publishes (see DESIGN.md "Substitutions"):
//
//  * Table 1 fixes the probability of each power-of-two size exactly
//    (70.5% of all jobs); the remaining 29.5% is spread over 50 further
//    values with the small-number bias visible in Fig. 1, giving the
//    reported 58 distinct sizes in [1, 128].
//  * DAS-t-900 is a lognormal mixture (short interactive jobs + long
//    batch jobs shaped by the 15-minute working-hours kill limit),
//    conditioned on <= 900 s.
//
// Also here: the closed-form gross/net utilization ratio of Sect. 4 and the
// component-count fractions of Table 2, both computed from the size
// distribution + splitter.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "workload/discrete.hpp"
#include "workload/distribution.hpp"

namespace mcsim {

/// Paper defaults (see DESIGN.md for the garbled-value reconstruction).
namespace das {
inline constexpr std::uint32_t kNumClusters = 4;
inline constexpr std::uint32_t kClusterSize = 32;
inline constexpr std::uint32_t kTotalProcessors = kNumClusters * kClusterSize;
inline constexpr double kExtensionFactor = 1.25;
inline constexpr double kServiceCutSeconds = 900.0;
inline constexpr std::array<std::uint32_t, 3> kComponentLimits = {16, 24, 32};
/// Unbalanced local-queue weights: one hot queue, three cold.
inline constexpr std::array<double, 4> kUnbalancedWeights = {0.4, 0.2, 0.2, 0.2};
}  // namespace das

/// One row of Table 1.
struct PowerOfTwoFraction {
  std::uint32_t size;
  double fraction;
};

/// Table 1 of the paper: fractions of jobs with power-of-two sizes.
const std::vector<PowerOfTwoFraction>& das1_power_of_two_fractions();

/// DAS-s-128: total-job-size distribution over 58 values in [1,128].
const DiscreteDistribution& das_s_128();

/// DAS-s-64: DAS-s-128 cut at 64 and renormalised. `removed_mass`, if
/// non-null, receives the fraction of jobs excluded by the cut (~2%).
DiscreteDistribution das_s_64(double* removed_mass = nullptr);

/// DAS-t-900: service-time distribution, conditioned on [1, 900] seconds.
DistributionPtr das_t_900();

/// The *uncut* DAS1 service-time model (used by the synthetic log
/// generator; jobs beyond 900 s exist in it and are removed by the cut).
DistributionPtr das1_raw_service_times();

/// Fraction of jobs that are multi-component under `limit` in a system of
/// `clusters` clusters.
double multi_component_fraction(const DiscreteDistribution& sizes, std::uint32_t limit,
                                std::uint32_t clusters);

/// Table 2 row: fractions of jobs with 1..clusters components.
std::vector<double> component_count_fractions(const DiscreteDistribution& sizes,
                                              std::uint32_t limit, std::uint32_t clusters);

/// Closed-form ratio gross/net utilization (paper Sect. 4): the quotient of
/// the weighted mean total job size (multi-component jobs weighted by the
/// extension factor) and the mean total job size.
double gross_net_ratio(const DiscreteDistribution& sizes, std::uint32_t limit,
                       std::uint32_t clusters, double extension_factor);

/// E[size * extension(size)] — the expected gross processor-seconds per job
/// divided by the mean service time. Used to convert a target gross
/// utilization into an arrival rate.
double mean_extended_size(const DiscreteDistribution& sizes, std::uint32_t limit,
                          std::uint32_t clusters, double extension_factor);

}  // namespace mcsim
