#include "workload/das_workload.hpp"

#include <cmath>
#include <memory>

#include "util/assert.hpp"
#include "workload/distributions.hpp"
#include "workload/job_splitter.hpp"

namespace mcsim {

const std::vector<PowerOfTwoFraction>& das1_power_of_two_fractions() {
  // Table 1, verbatim.
  static const std::vector<PowerOfTwoFraction> kTable = {
      {1, 0.091}, {2, 0.130}, {4, 0.087}, {8, 0.066},
      {16, 0.090}, {32, 0.039}, {64, 0.190}, {128, 0.012},
  };
  return kTable;
}

namespace {

DiscreteDistribution build_das_s_128() {
  // Power-of-two sizes carry exactly the Table 1 mass (sums to 0.705).
  std::vector<double> values;
  std::vector<double> weights;
  for (const auto& row : das1_power_of_two_fractions()) {
    values.push_back(static_cast<double>(row.size));
    weights.push_back(row.fraction);
  }

  // The remaining 0.295 goes to 50 non-power values (58 distinct sizes, as
  // the paper reports). Table 2's single-component column pins the band
  // masses exactly: P(size<=16) = 0.513, P(size<=24) = 0.738,
  // P(size<=32) = 0.780. With the power-of-two mass fixed by Table 1 this
  // forces the non-power mass per band:
  //   [3,16):   0.513 - 0.464          = 0.049
  //   (16,24]:  0.738 - 0.513          = 0.225   (the DAS's popular 17-24 sizes)
  //   (24,32):  0.780 - 0.738 - 0.039  = 0.003
  //   (32,128): remainder              = 0.018
  struct Band {
    std::vector<std::uint32_t> sizes;
    double mass;
  };
  std::vector<Band> bands;
  // Small non-powers, 1/size-biased (the Fig. 1 small-number preference).
  bands.push_back({{3, 5, 6, 7, 9, 10, 11, 12, 13, 14, 15}, 0.049});
  // The 17..24 band dominates the non-power mass; round sizes (18, 20, 24)
  // get the bulk, as usual for hand-chosen job sizes.
  bands.push_back({{17, 18, 19, 20, 21, 22, 23, 24}, 0.225});
  bands.push_back({{25, 26, 27, 28, 29, 30, 31}, 0.003});
  bands.push_back({{33, 34, 35, 36, 40, 42, 44, 45, 48, 50, 52, 56,
                    60, 63, 65, 66, 68, 70, 72, 75, 80, 84, 96, 100},
                   0.018});

  auto band_weight = [](std::uint32_t v) {
    // Within a band: inverse-size bias plus a boost for round sizes.
    double w = 1.0 / static_cast<double>(v);
    if (v % 12 == 0 || v % 10 == 0) w *= 6.0;  // 12/20/24/30/40/60/... popular
    else if (v % 6 == 0 || v % 5 == 0) w *= 2.5;
    return w;
  };

  std::size_t non_power = 0;
  for (const auto& band : bands) {
    double total = 0.0;
    for (std::uint32_t v : band.sizes) total += band_weight(v);
    for (std::uint32_t v : band.sizes) {
      values.push_back(static_cast<double>(v));
      weights.push_back(band.mass * band_weight(v) / total);
      ++non_power;
    }
  }
  MCSIM_ASSERT(non_power == 50);
  return DiscreteDistribution(std::move(values), std::move(weights));
}

}  // namespace

const DiscreteDistribution& das_s_128() {
  static const DiscreteDistribution kDist = build_das_s_128();
  return kDist;
}

DiscreteDistribution das_s_64(double* removed_mass) {
  return das_s_128().truncate_above(64.0, removed_mass);
}

DistributionPtr das1_raw_service_times() {
  // Two-population model of the DAS1 log (Fig. 2): a dominant mass of short
  // interactive jobs (working-hours usage is capped at 15 minutes, so the
  // short population piles up below 900 s) plus a minority of long jobs run
  // outside working hours. Lognormal bodies are the standard fit for
  // supercomputer service times (Feitelson; Chiang & Vernon [10]).
  auto short_jobs = std::make_shared<LognormalDistribution>(
      LognormalDistribution::from_mean_cv(/*mean=*/110.0, /*cv=*/1.9));
  auto long_jobs = std::make_shared<LognormalDistribution>(
      LognormalDistribution::from_mean_cv(/*mean=*/2200.0, /*cv=*/1.4));
  return std::make_shared<MixtureDistribution>(
      std::vector<DistributionPtr>{short_jobs, long_jobs}, std::vector<double>{0.85, 0.15});
}

DistributionPtr das_t_900() {
  // "The distribution derived from the log of the DAS, cut off at 900
  // seconds": the raw model conditioned on [1, 900].
  static const DistributionPtr kDist = std::make_shared<TruncatedDistribution>(
      das1_raw_service_times(), 1.0, das::kServiceCutSeconds);
  return kDist;
}

double multi_component_fraction(const DiscreteDistribution& sizes, std::uint32_t limit,
                                std::uint32_t clusters) {
  double fraction = 0.0;
  const auto& values = sizes.values();
  const auto& probs = sizes.probabilities();
  for (std::size_t i = 0; i < values.size(); ++i) {
    const auto size = static_cast<std::uint32_t>(values[i]);
    if (component_count(size, limit, clusters) > 1) fraction += probs[i];
  }
  return fraction;
}

std::vector<double> component_count_fractions(const DiscreteDistribution& sizes,
                                              std::uint32_t limit, std::uint32_t clusters) {
  std::vector<double> fractions(clusters, 0.0);
  const auto& values = sizes.values();
  const auto& probs = sizes.probabilities();
  for (std::size_t i = 0; i < values.size(); ++i) {
    const auto size = static_cast<std::uint32_t>(values[i]);
    const std::uint32_t n = component_count(size, limit, clusters);
    fractions[n - 1] += probs[i];
  }
  return fractions;
}

double gross_net_ratio(const DiscreteDistribution& sizes, std::uint32_t limit,
                       std::uint32_t clusters, double extension_factor) {
  return mean_extended_size(sizes, limit, clusters, extension_factor) / sizes.mean();
}

double mean_extended_size(const DiscreteDistribution& sizes, std::uint32_t limit,
                          std::uint32_t clusters, double extension_factor) {
  MCSIM_REQUIRE(extension_factor >= 1.0, "extension factor must be >= 1");
  double weighted = 0.0;
  const auto& values = sizes.values();
  const auto& probs = sizes.probabilities();
  for (std::size_t i = 0; i < values.size(); ++i) {
    const auto size = static_cast<std::uint32_t>(values[i]);
    const bool multi = component_count(size, limit, clusters) > 1;
    weighted += probs[i] * values[i] * (multi ? extension_factor : 1.0);
  }
  return weighted;
}

}  // namespace mcsim
