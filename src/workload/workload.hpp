// Job specifications and the workload generator that feeds the simulator.
//
// A JobSpec is everything the schedulers need to know about one job:
// arrival time, total size, the component tuple (an *unordered request* —
// the scheduler picks the clusters), net and gross (extended) service
// times, and the local queue the job was submitted to.
//
// The generator draws each field from an independent named RNG substream,
// so two generators with the same master seed but different arrival rates
// produce the *same* job bodies (common random numbers across sweep points
// and policies).
#pragma once

#include <cstdint>
#include <vector>

#include "util/rng.hpp"
#include "workload/arrival.hpp"
#include "workload/discrete.hpp"
#include "workload/distribution.hpp"
#include "workload/request.hpp"

namespace mcsim {

struct JobSpec {
  std::uint64_t id = 0;
  double arrival_time = 0.0;
  std::uint32_t total_size = 0;
  /// How this job's request is structured (unordered in the paper's study).
  RequestType request_type = RequestType::kUnordered;
  /// Component sizes, non-increasing. A single entry means a
  /// single-component (local) job; for total requests this is {total_size}.
  /// For flexible requests the split is decided at placement time and this
  /// holds the single pre-split total.
  std::vector<std::uint32_t> components;
  /// For ordered requests only: the cluster each component must run on
  /// (parallel to `components`).
  std::vector<std::uint32_t> ordered_clusters;
  /// Net service time (computation + local communication only).
  double service_time = 0.0;
  /// Gross service time: extended by the wide-area communication factor for
  /// multi-component jobs, equal to service_time otherwise.
  double gross_service_time = 0.0;
  /// Index of the local queue this job was submitted to (used by LS/LP).
  std::uint32_t origin_queue = 0;
  /// True when the job spans clusters (and therefore pays the wide-area
  /// extension): multi-component for ordered/unordered requests; larger
  /// than the single-cluster threshold for flexible ones.
  bool wide_area = false;

  [[nodiscard]] bool is_multi_component() const { return components.size() > 1; }
  /// Queue-routing predicate for LS/LP: wide-area jobs are scheduled
  /// globally, the rest stay on their local cluster.
  [[nodiscard]] bool needs_coallocation() const { return wide_area; }
  [[nodiscard]] std::uint32_t component_count() const {
    return static_cast<std::uint32_t>(components.size());
  }
};

struct WorkloadConfig {
  /// Total job-size distribution (a DiscreteDistribution, e.g. das_s_128()).
  DiscreteDistribution size_distribution;
  /// Net service-time distribution (e.g. das_t_900()).
  DistributionPtr service_distribution;
  /// Job-component-size limit (ignored when split_jobs == false).
  std::uint32_t component_limit = 16;
  std::uint32_t num_clusters = 4;
  /// Service-time extension factor for multi-component jobs.
  double extension_factor = 1.25;
  /// Poisson arrival rate (jobs/second).
  double arrival_rate = 0.01;
  /// Per-cluster submission weights (normalised internally). Empty means
  /// balanced. Drives which local queue a job arrives at under LS/LP.
  std::vector<double> queue_weights;
  /// false = total requests (single-cluster SC runs): one component of the
  /// full size, never extended.
  bool split_jobs = true;
  /// Request structure for split jobs (unordered reproduces the paper;
  /// ordered/flexible are the model variants of refs [6,7]).
  RequestType request_type = RequestType::kUnordered;
  /// For flexible requests: jobs up to this size count as single-cluster
  /// (no wide-area extension); larger ones necessarily span clusters.
  std::uint32_t flexible_local_threshold = 32;

  /// E[size * extension] under this config (exact, from the size
  /// distribution); gross work per job = this * E[service].
  [[nodiscard]] double mean_extended_size() const;
  /// Arrival rate that yields gross utilization `rho` on `total_processors`.
  [[nodiscard]] double rate_for_gross_utilization(double rho,
                                                  std::uint32_t total_processors) const;
};

class WorkloadGenerator {
 public:
  WorkloadGenerator(WorkloadConfig config, std::uint64_t master_seed);

  /// Generate the next arrival (arrival times strictly increase).
  JobSpec next();

  /// Generate a job body without advancing the arrival clock (used by the
  /// constant-backlog saturation driver, which ignores arrival times).
  JobSpec next_body();

  [[nodiscard]] const WorkloadConfig& config() const { return config_; }
  [[nodiscard]] std::uint64_t jobs_generated() const { return next_id_; }

 private:
  void fill_body(JobSpec& job);

  WorkloadConfig config_;
  Rng arrival_rng_;
  Rng size_rng_;
  Rng service_rng_;
  Rng queue_rng_;
  Rng placement_rng_;
  std::vector<double> queue_cumulative_;
  double clock_ = 0.0;
  std::uint64_t next_id_ = 0;
};

}  // namespace mcsim
