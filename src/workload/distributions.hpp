// Continuous distribution library: exponential, deterministic, uniform,
// hyperexponential, lognormal, Weibull, bounded Pareto, truncated wrappers
// and mixtures. The DAS service-time model (das_workload.hpp) is composed
// from these.
#pragma once

#include <memory>
#include <vector>

#include "workload/distribution.hpp"

namespace mcsim {

class DeterministicDistribution final : public Distribution {
 public:
  explicit DeterministicDistribution(double value);
  double sample(Rng&) const override { return value_; }
  double mean() const override { return value_; }
  double variance() const override { return 0.0; }
  std::string describe() const override;

 private:
  double value_;
};

class UniformRealDistribution final : public Distribution {
 public:
  UniformRealDistribution(double lo, double hi);
  double sample(Rng& rng) const override;
  double mean() const override { return (lo_ + hi_) / 2.0; }
  double variance() const override;
  std::string describe() const override;

 private:
  double lo_, hi_;
};

class ExponentialDistribution final : public Distribution {
 public:
  explicit ExponentialDistribution(double mean);
  double sample(Rng& rng) const override;
  double mean() const override { return mean_; }
  double variance() const override { return mean_ * mean_; }
  std::string describe() const override;

 private:
  double mean_;
};

/// Two-phase hyperexponential: with probability p the mean is m1, else m2.
/// CV > 1; used to model bursty service times.
class HyperExponentialDistribution final : public Distribution {
 public:
  HyperExponentialDistribution(double p, double mean1, double mean2);
  double sample(Rng& rng) const override;
  double mean() const override;
  double variance() const override;
  std::string describe() const override;

 private:
  double p_, mean1_, mean2_;
};

class LognormalDistribution final : public Distribution {
 public:
  /// Parameters of the underlying normal (mu, sigma).
  LognormalDistribution(double mu, double sigma);
  /// Construct from the desired mean and CV of the lognormal itself.
  static LognormalDistribution from_mean_cv(double mean, double cv);
  double sample(Rng& rng) const override;
  double mean() const override;
  double variance() const override;
  std::string describe() const override;

 private:
  double mu_, sigma_;
};

class WeibullDistribution final : public Distribution {
 public:
  WeibullDistribution(double shape, double scale);
  double sample(Rng& rng) const override;
  double mean() const override;
  double variance() const override;
  std::string describe() const override;

 private:
  double shape_, scale_;
};

/// Pareto density on [lo, hi] with tail index alpha (job-size-like tails).
class BoundedParetoDistribution final : public Distribution {
 public:
  BoundedParetoDistribution(double lo, double hi, double alpha);
  double sample(Rng& rng) const override;
  double mean() const override;
  double variance() const override;
  std::string describe() const override;

 private:
  [[nodiscard]] double raw_moment(double k) const;
  double lo_, hi_, alpha_;
};

/// Rejection-truncation of an inner distribution to [lo, hi]: variates are
/// redrawn while outside the range (up to a bound, then clamped). Mean and
/// variance are estimated once at construction by a fixed-seed Monte Carlo
/// pass so they are deterministic.
class TruncatedDistribution final : public Distribution {
 public:
  TruncatedDistribution(DistributionPtr inner, double lo, double hi);
  double sample(Rng& rng) const override;
  double mean() const override { return mean_; }
  double variance() const override { return variance_; }
  std::string describe() const override;

 private:
  DistributionPtr inner_;
  double lo_, hi_;
  double mean_, variance_;
};

/// Finite mixture with component weights.
class MixtureDistribution final : public Distribution {
 public:
  MixtureDistribution(std::vector<DistributionPtr> components, std::vector<double> weights);
  double sample(Rng& rng) const override;
  double mean() const override;
  double variance() const override;
  std::string describe() const override;

 private:
  std::vector<DistributionPtr> components_;
  std::vector<double> cumulative_;
  std::vector<double> weights_;
};

/// Continuous empirical distribution: samples by inverting the linearly
/// interpolated ECDF of a data set. Unlike a DiscreteDistribution over the
/// observed values, it does not replay the sample's atoms — the right
/// choice when deriving a *continuous* quantity (service times) from a
/// finite trace.
class PiecewiseLinearDistribution final : public Distribution {
 public:
  /// Build from raw samples (need not be sorted; at least 2 distinct values).
  static PiecewiseLinearDistribution from_samples(std::vector<double> samples);

  double sample(Rng& rng) const override;
  double mean() const override { return mean_; }
  double variance() const override { return variance_; }
  std::string describe() const override;

  [[nodiscard]] double min_value() const { return sorted_.front(); }
  [[nodiscard]] double max_value() const { return sorted_.back(); }

 private:
  explicit PiecewiseLinearDistribution(std::vector<double> sorted);
  std::vector<double> sorted_;
  double mean_ = 0.0;
  double variance_ = 0.0;
};

/// Erlang-k: sum of k independent exponentials (CV = 1/sqrt(k) < 1); the
/// smooth-service-time counterpart to the hyperexponential.
class ErlangDistribution final : public Distribution {
 public:
  /// k phases, each with mean `phase_mean` (total mean = k * phase_mean).
  ErlangDistribution(std::uint32_t k, double phase_mean);
  double sample(Rng& rng) const override;
  double mean() const override;
  double variance() const override;
  std::string describe() const override;

 private:
  std::uint32_t k_;
  double phase_mean_;
};

/// Gamma(shape, scale) via Marsaglia-Tsang; generalises Erlang to
/// non-integer shape.
class GammaDistribution final : public Distribution {
 public:
  GammaDistribution(double shape, double scale);
  double sample(Rng& rng) const override;
  double mean() const override { return shape_ * scale_; }
  double variance() const override { return shape_ * scale_ * scale_; }
  std::string describe() const override;

 private:
  double shape_, scale_;
};

/// A distribution shifted right by a constant (e.g. minimum service time).
class ShiftedDistribution final : public Distribution {
 public:
  ShiftedDistribution(DistributionPtr inner, double shift);
  double sample(Rng& rng) const override;
  double mean() const override { return inner_->mean() + shift_; }
  double variance() const override { return inner_->variance(); }
  std::string describe() const override;

 private:
  DistributionPtr inner_;
  double shift_;
};

/// Scale an inner distribution by a constant factor (service-time extension).
class ScaledDistribution final : public Distribution {
 public:
  ScaledDistribution(DistributionPtr inner, double factor);
  double sample(Rng& rng) const override;
  double mean() const override { return factor_ * inner_->mean(); }
  double variance() const override { return factor_ * factor_ * inner_->variance(); }
  std::string describe() const override;

 private:
  DistributionPtr inner_;
  double factor_;
};

}  // namespace mcsim
