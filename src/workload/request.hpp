// Request structures of the authors' co-allocation model (refs [6,7] of
// the paper; Sect. 2.3 uses unordered and total):
//
//   ordered    component i must run on the named cluster i
//   unordered  components sized, clusters chosen by the scheduler (paper)
//   flexible   only the total matters; the scheduler splits freely
//   total      single-cluster total request (the SC baseline)
#pragma once

#include <cstdint>
#include <string>

namespace mcsim {

enum class RequestType : std::uint8_t { kOrdered, kUnordered, kFlexible, kTotal };

const char* request_type_name(RequestType type);
RequestType parse_request_type(const std::string& name);

}  // namespace mcsim
