// Abstract arrival source: anything that can hand the engine the next
// JobSpec. Two implementations exist — the synthetic WorkloadGenerator
// (Poisson arrivals, DAS size/service draws) and TraceWorkload (replay of
// a recorded SWF log). The engine owns one JobSource and is agnostic to
// which; `next` is pull-based and returns false when the source is
// exhausted (a finite trace), which synthetic sources never are.
#pragma once

#include "workload/workload.hpp"

namespace mcsim {

class JobSource {
 public:
  virtual ~JobSource() = default;

  /// Fill `out` with the next arrival (arrival times non-decreasing).
  /// Returns false when no jobs remain; `out` is untouched in that case.
  virtual bool next(JobSpec& out) = 0;
};

}  // namespace mcsim
