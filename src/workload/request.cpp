#include "workload/request.hpp"

#include "util/assert.hpp"
#include "util/strings.hpp"

namespace mcsim {

const char* request_type_name(RequestType type) {
  switch (type) {
    case RequestType::kOrdered: return "ordered";
    case RequestType::kUnordered: return "unordered";
    case RequestType::kFlexible: return "flexible";
    case RequestType::kTotal: return "total";
  }
  return "?";
}

RequestType parse_request_type(const std::string& name) {
  const std::string lower = to_lower(name);
  if (lower == "ordered") return RequestType::kOrdered;
  if (lower == "unordered") return RequestType::kUnordered;
  if (lower == "flexible") return RequestType::kFlexible;
  if (lower == "total") return RequestType::kTotal;
  MCSIM_REQUIRE(false, "unknown request type: " + name);
  return RequestType::kUnordered;
}

}  // namespace mcsim
