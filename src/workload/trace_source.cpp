#include "workload/trace_source.hpp"

#include <algorithm>

namespace mcsim {

bool trace_record_usable(const TraceRecord& record) {
  return record.processors > 0 && record.run_time > 0.0 && record.submit_time >= 0.0;
}

TraceStreamSummary summarize_trace_source(TraceRecordSource& source) {
  TraceStreamSummary summary;
  TraceRecord record;
  while (source.next(record)) {
    ++summary.total_records;
    if (!trace_record_usable(record)) continue;
    if (summary.usable_records == 0) {
      summary.first_submit = record.submit_time;
      summary.last_submit = record.submit_time;
      summary.min_run_time = record.run_time;
    } else {
      summary.first_submit = std::min(summary.first_submit, record.submit_time);
      summary.last_submit = std::max(summary.last_submit, record.submit_time);
      summary.min_run_time = std::min(summary.min_run_time, record.run_time);
    }
    ++summary.usable_records;
    summary.gross_work += static_cast<double>(record.processors) * record.run_time;
    summary.max_processors = std::max(summary.max_processors, record.processors);
  }
  return summary;
}

}  // namespace mcsim
