#include "cluster/cluster.hpp"

#include "util/assert.hpp"

namespace mcsim {

Cluster::Cluster(ClusterId id, std::uint32_t num_processors, double speed)
    : id_(id), capacity_(num_processors), speed_(speed) {
  MCSIM_REQUIRE(num_processors > 0, "cluster must have processors");
  MCSIM_REQUIRE(speed > 0.0, "cluster speed must be positive");
}

void Cluster::allocate(std::uint32_t processors) {
  MCSIM_REQUIRE(fits(processors), "allocation exceeds idle processors");
  busy_ += processors;
}

void Cluster::release(std::uint32_t processors) {
  MCSIM_REQUIRE(busy_ >= processors, "releasing more processors than busy");
  busy_ -= processors;
}

}  // namespace mcsim
