// Placement of unordered requests onto clusters (paper Sect. 2.3).
//
// "To determine whether an unordered request fits, we try to schedule its
// components in decreasing order of their sizes on distinct clusters. We
// use Worst Fit (WF) to place the components on clusters."
//
// Worst Fit pairs the largest component with the most-idle cluster, the
// second largest with the second most-idle, and so on; with both lists
// sorted decreasingly this is also a *complete* fit test — if this pairing
// fails, no assignment to distinct clusters fits. First Fit and Best Fit
// are provided for ablation studies; Load-Aware is Worst Fit over idle
// *fractions* instead of idle counts, which differs from WF only on
// heterogeneous layouts (it spreads load evenly relative to cluster size
// rather than piling components onto the biggest cluster).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "cluster/multicluster.hpp"

namespace mcsim {

enum class PlacementRule { kWorstFit, kFirstFit, kBestFit, kLoadAware };

const char* placement_rule_name(PlacementRule rule);
/// Parse a placement-rule name ("WF", "ff", "best-fit", "load-aware", ...;
/// case-insensitive). Throws std::invalid_argument on anything else.
PlacementRule parse_placement_rule(const std::string& name);

/// Reusable working memory for the placement functions. The schedulers
/// keep one per instance and pass it to every attempt: after the first few
/// calls the buffers hold their high-water capacity and a placement
/// attempt — in particular a *rejected* one, the common case for a blocked
/// head-of-queue — touches no allocator at all.
struct PlacementScratch {
  std::vector<ClusterId> order;      // clusters by decreasing idle
  std::vector<std::uint8_t> used;    // FF/BF distinct-cluster marks
};

/// Try to place `components` (must be non-increasing) on distinct clusters
/// given per-cluster idle counts. Returns std::nullopt if the request does
/// not fit. Ties on idle counts break toward the lower cluster id, keeping
/// runs deterministic. kLoadAware needs capacities — use the overload below.
std::optional<Allocation> place_components(const std::vector<std::uint32_t>& components,
                                           const std::vector<std::uint32_t>& idle_counts,
                                           PlacementRule rule = PlacementRule::kWorstFit);

/// Hot-path variant: identical decisions, but sorts and marks inside
/// `scratch` instead of fresh vectors, and builds the Allocation only once
/// the request is known to fit.
std::optional<Allocation> place_components(const std::vector<std::uint32_t>& components,
                                           const std::vector<std::uint32_t>& idle_counts,
                                           PlacementRule rule, PlacementScratch& scratch);

/// Capacity-aware variant: required for kLoadAware (which orders clusters
/// by idle/capacity, exact integer cross-multiplication, ties toward the
/// lower id); the other rules ignore `capacities` and decide identically
/// to the overloads above.
std::optional<Allocation> place_components(const std::vector<std::uint32_t>& components,
                                           const std::vector<std::uint32_t>& idle_counts,
                                           const std::vector<std::uint32_t>& capacities,
                                           PlacementRule rule, PlacementScratch& scratch);

/// Place a single-component job on one specific cluster (LS local jobs).
std::optional<Allocation> place_on_cluster(std::uint32_t processors, ClusterId cluster,
                                           const std::vector<std::uint32_t>& idle_counts);

/// Place an ORDERED request (the authors' model, refs [6,7]): component i
/// must go to cluster `clusters[i]` exactly; all-or-nothing.
std::optional<Allocation> place_ordered(const std::vector<std::uint32_t>& components,
                                        const std::vector<ClusterId>& clusters,
                                        const std::vector<std::uint32_t>& idle_counts);

/// Place a FLEXIBLE request (refs [6,7]): only the total matters; the
/// scheduler splits it over clusters as it likes. Tries one cluster first
/// (WF), then spreads greedily over clusters by decreasing idle count.
/// Fits iff total_idle >= total.
std::optional<Allocation> place_flexible(std::uint32_t total,
                                         const std::vector<std::uint32_t>& idle_counts);

/// Hot-path variant of place_flexible (see PlacementScratch).
std::optional<Allocation> place_flexible(std::uint32_t total,
                                         const std::vector<std::uint32_t>& idle_counts,
                                         PlacementScratch& scratch);

/// Fit test only (no allocation construction) — cheaper on the hot path.
bool components_fit(const std::vector<std::uint32_t>& components,
                    const std::vector<std::uint32_t>& idle_counts);

}  // namespace mcsim
