#include "cluster/multicluster.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace mcsim {

Multicluster::Multicluster(std::uint32_t num_clusters, std::uint32_t cluster_size) {
  MCSIM_REQUIRE(num_clusters > 0, "system must have clusters");
  clusters_.reserve(num_clusters);
  for (std::uint32_t i = 0; i < num_clusters; ++i) {
    clusters_.emplace_back(i, cluster_size);
    total_ += cluster_size;
  }
}

Multicluster::Multicluster(const std::vector<std::uint32_t>& cluster_sizes) {
  MCSIM_REQUIRE(!cluster_sizes.empty(), "system must have clusters");
  clusters_.reserve(cluster_sizes.size());
  for (std::size_t i = 0; i < cluster_sizes.size(); ++i) {
    clusters_.emplace_back(static_cast<ClusterId>(i), cluster_sizes[i]);
    total_ += cluster_sizes[i];
  }
}

Multicluster::Multicluster(const std::vector<std::uint32_t>& cluster_sizes,
                           const std::vector<double>& cluster_speeds) {
  MCSIM_REQUIRE(!cluster_sizes.empty(), "system must have clusters");
  MCSIM_REQUIRE(cluster_sizes.size() == cluster_speeds.size(),
                "sizes and speeds must align");
  clusters_.reserve(cluster_sizes.size());
  for (std::size_t i = 0; i < cluster_sizes.size(); ++i) {
    clusters_.emplace_back(static_cast<ClusterId>(i), cluster_sizes[i], cluster_speeds[i]);
    total_ += cluster_sizes[i];
  }
}

double Multicluster::slowest_speed(const Allocation& allocation) const {
  MCSIM_REQUIRE(!allocation.empty(), "allocation is empty");
  double slowest = clusters_.at(allocation.front().cluster).speed();
  for (const auto& placement : allocation) {
    slowest = std::min(slowest, clusters_.at(placement.cluster).speed());
  }
  return slowest;
}

std::uint32_t Multicluster::total_idle() const {
  std::uint32_t idle = 0;
  for (const auto& c : clusters_) idle += c.idle();
  return idle;
}

std::vector<std::uint32_t> Multicluster::idle_counts() const {
  std::vector<std::uint32_t> idle;
  idle.reserve(clusters_.size());
  for (const auto& c : clusters_) idle.push_back(c.idle());
  return idle;
}

void Multicluster::idle_counts_into(std::vector<std::uint32_t>& out) const {
  out.clear();
  out.reserve(clusters_.size());
  for (const auto& c : clusters_) out.push_back(c.idle());
}

void Multicluster::allocate(const Allocation& allocation) {
  // Validate first so a failed allocation leaves the system unchanged.
  validate_scratch_.assign(clusters_.size(), 0);
  for (const auto& placement : allocation) {
    MCSIM_REQUIRE(placement.cluster < clusters_.size(), "placement names an unknown cluster");
    validate_scratch_[placement.cluster] += placement.processors;
  }
  for (std::size_t i = 0; i < clusters_.size(); ++i) {
    MCSIM_REQUIRE(validate_scratch_[i] <= clusters_[i].idle(),
                  "allocation exceeds idle processors");
  }
  for (const auto& placement : allocation) {
    clusters_[placement.cluster].allocate(placement.processors);
  }
}

void Multicluster::release(const Allocation& allocation) {
  for (const auto& placement : allocation) {
    MCSIM_REQUIRE(placement.cluster < clusters_.size(), "placement names an unknown cluster");
    clusters_[placement.cluster].release(placement.processors);
  }
}

}  // namespace mcsim
