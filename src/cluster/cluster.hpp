// A single space-shared cluster: a pool of identical processors allocated
// exclusively to job components until they complete (no preemption).
#pragma once

#include <cstdint>

namespace mcsim {

using ClusterId = std::uint32_t;

class Cluster {
 public:
  /// `speed` is the relative service rate of this cluster's processors
  /// (1.0 = the paper's homogeneous case; heterogeneity is an extension
  /// toward the grid setting the paper's introduction motivates).
  Cluster(ClusterId id, std::uint32_t num_processors, double speed = 1.0);

  [[nodiscard]] ClusterId id() const { return id_; }
  [[nodiscard]] std::uint32_t capacity() const { return capacity_; }
  [[nodiscard]] double speed() const { return speed_; }
  [[nodiscard]] std::uint32_t idle() const { return capacity_ - busy_; }
  [[nodiscard]] std::uint32_t busy() const { return busy_; }
  [[nodiscard]] bool fits(std::uint32_t processors) const { return processors <= idle(); }

  /// Allocate `processors` CPUs; precondition: fits(processors).
  void allocate(std::uint32_t processors);

  /// Release `processors` CPUs; precondition: busy() >= processors.
  void release(std::uint32_t processors);

 private:
  ClusterId id_;
  std::uint32_t capacity_;
  double speed_;
  std::uint32_t busy_ = 0;
};

}  // namespace mcsim
