// The multicluster system: C clusters of possibly different sizes
// (paper Sect. 2.2). Allocations map job components onto clusters; the
// Allocation type records which cluster received how many processors so a
// departure releases exactly what was taken.
#pragma once

#include <cstdint>
#include <vector>

#include "cluster/cluster.hpp"

namespace mcsim {

/// One component's placement: `processors` CPUs on cluster `cluster`.
struct ComponentPlacement {
  ClusterId cluster = 0;
  std::uint32_t processors = 0;
};

/// A full job allocation (one entry per component).
using Allocation = std::vector<ComponentPlacement>;

class Multicluster {
 public:
  /// Uniform system: `num_clusters` clusters of `cluster_size` each.
  Multicluster(std::uint32_t num_clusters, std::uint32_t cluster_size);

  /// Heterogeneous system with explicit per-cluster sizes.
  explicit Multicluster(const std::vector<std::uint32_t>& cluster_sizes);

  /// Heterogeneous sizes AND speeds (relative service rates; all 1.0 in the
  /// paper's homogeneous model).
  Multicluster(const std::vector<std::uint32_t>& cluster_sizes,
               const std::vector<double>& cluster_speeds);

  /// Slowest speed among the clusters in `allocation` — a co-allocated
  /// job's tasks synchronise, so it runs at the pace of its slowest
  /// cluster.
  [[nodiscard]] double slowest_speed(const Allocation& allocation) const;

  [[nodiscard]] std::uint32_t num_clusters() const {
    return static_cast<std::uint32_t>(clusters_.size());
  }
  [[nodiscard]] const Cluster& cluster(ClusterId id) const { return clusters_.at(id); }
  [[nodiscard]] std::uint32_t total_processors() const { return total_; }
  [[nodiscard]] std::uint32_t total_idle() const;
  [[nodiscard]] std::uint32_t total_busy() const { return total_ - total_idle(); }

  /// Idle counts per cluster (a snapshot the placement policies work on).
  [[nodiscard]] std::vector<std::uint32_t> idle_counts() const;

  /// Allocation-free variant for the placement hot path: refills `out`
  /// in place, reusing its capacity. Every placement attempt snapshots the
  /// idle counts, so the schedulers pass a per-scheduler scratch vector
  /// here instead of taking a fresh heap vector per attempt.
  void idle_counts_into(std::vector<std::uint32_t>& out) const;

  /// Apply an allocation (allocates on each named cluster).
  void allocate(const Allocation& allocation);

  /// Undo an allocation.
  void release(const Allocation& allocation);

 private:
  std::vector<Cluster> clusters_;
  std::uint32_t total_ = 0;
  /// Reused by allocate()'s validation pass (one job start per loop
  /// iteration on the hot path; the scratch keeps it allocation-free).
  std::vector<std::uint32_t> validate_scratch_;
};

}  // namespace mcsim
