#include "cluster/placement.hpp"

#include <algorithm>
#include <numeric>

#include "util/assert.hpp"
#include "util/strings.hpp"

namespace mcsim {

const char* placement_rule_name(PlacementRule rule) {
  switch (rule) {
    case PlacementRule::kWorstFit: return "WF";
    case PlacementRule::kFirstFit: return "FF";
    case PlacementRule::kBestFit: return "BF";
    case PlacementRule::kLoadAware: return "LA";
  }
  return "?";
}

PlacementRule parse_placement_rule(const std::string& name) {
  const std::string lower = to_lower(name);
  if (lower == "wf" || lower == "worst-fit" || lower == "worstfit") {
    return PlacementRule::kWorstFit;
  }
  if (lower == "ff" || lower == "first-fit" || lower == "firstfit") {
    return PlacementRule::kFirstFit;
  }
  if (lower == "bf" || lower == "best-fit" || lower == "bestfit") {
    return PlacementRule::kBestFit;
  }
  if (lower == "la" || lower == "load-aware" || lower == "loadaware") {
    return PlacementRule::kLoadAware;
  }
  MCSIM_REQUIRE(false,
                "unknown placement rule: " + name + " (expected WF, FF, BF, or LA)");
  return PlacementRule::kWorstFit;
}

namespace {

bool is_non_increasing(const std::vector<std::uint32_t>& v) {
  return std::is_sorted(v.rbegin(), v.rend());
}

/// Fill `order` with cluster ids by (idle desc, id asc). Stable insertion
/// sort into the scratch vector: no allocation once the scratch holds its
/// capacity (std::stable_sort would take a temporary buffer per call), and
/// C is small — the paper's systems have 4-8 clusters.
void clusters_by_idle_desc(const std::vector<std::uint32_t>& idle,
                           std::vector<ClusterId>& order) {
  order.clear();
  order.reserve(idle.size());
  for (ClusterId c = 0; c < idle.size(); ++c) {
    auto it = order.begin();
    while (it != order.end() && idle[*it] >= idle[c]) ++it;
    order.insert(it, c);
  }
}

std::optional<Allocation> place_worst_fit(const std::vector<std::uint32_t>& components,
                                          const std::vector<std::uint32_t>& idle,
                                          PlacementScratch& scratch) {
  clusters_by_idle_desc(idle, scratch.order);
  // WF pairing doubles as the complete fit test: decide before building the
  // allocation, so a reject (the common case for a blocked head job) costs
  // no allocation.
  for (std::size_t i = 0; i < components.size(); ++i) {
    if (components[i] > idle[scratch.order[i]]) return std::nullopt;
  }
  Allocation allocation;
  allocation.reserve(components.size());
  for (std::size_t i = 0; i < components.size(); ++i) {
    allocation.push_back(ComponentPlacement{scratch.order[i], components[i]});
  }
  return allocation;
}

std::optional<Allocation> place_first_fit(const std::vector<std::uint32_t>& components,
                                          const std::vector<std::uint32_t>& idle,
                                          PlacementScratch& scratch) {
  scratch.used.assign(idle.size(), 0);
  Allocation allocation;
  allocation.reserve(components.size());
  for (std::uint32_t component : components) {
    bool placed = false;
    for (ClusterId c = 0; c < idle.size(); ++c) {
      if (scratch.used[c] == 0 && component <= idle[c]) {
        scratch.used[c] = 1;
        allocation.push_back(ComponentPlacement{c, component});
        placed = true;
        break;
      }
    }
    if (!placed) return std::nullopt;
  }
  return allocation;
}

/// Fill `order` with cluster ids by (idle fraction desc, id asc). The
/// comparison cross-multiplies (idle[a]/cap[a] vs idle[b]/cap[b] becomes
/// idle[a]*cap[b] vs idle[b]*cap[a]) so ordering stays exact — no floating
/// point, no platform drift.
void clusters_by_idle_fraction_desc(const std::vector<std::uint32_t>& idle,
                                    const std::vector<std::uint32_t>& capacities,
                                    std::vector<ClusterId>& order) {
  order.clear();
  order.reserve(idle.size());
  const auto fraction_at_least = [&](ClusterId a, ClusterId b) {
    // idle[a]/cap[a] >= idle[b]/cap[b], exactly.
    return static_cast<std::uint64_t>(idle[a]) * capacities[b] >=
           static_cast<std::uint64_t>(idle[b]) * capacities[a];
  };
  for (ClusterId c = 0; c < idle.size(); ++c) {
    auto it = order.begin();
    while (it != order.end() && fraction_at_least(*it, c)) ++it;
    order.insert(it, c);
  }
}

std::optional<Allocation> place_load_aware(const std::vector<std::uint32_t>& components,
                                           const std::vector<std::uint32_t>& idle,
                                           const std::vector<std::uint32_t>& capacities,
                                           PlacementScratch& scratch) {
  clusters_by_idle_fraction_desc(idle, capacities, scratch.order);
  // Like WF, decide before building the allocation. Unlike WF the
  // fraction pairing is not a complete fit test on heterogeneous layouts —
  // a reject here is the rule's decision, not a proof nothing fits.
  for (std::size_t i = 0; i < components.size(); ++i) {
    if (components[i] > idle[scratch.order[i]]) return std::nullopt;
  }
  Allocation allocation;
  allocation.reserve(components.size());
  for (std::size_t i = 0; i < components.size(); ++i) {
    allocation.push_back(ComponentPlacement{scratch.order[i], components[i]});
  }
  return allocation;
}

std::optional<Allocation> place_best_fit(const std::vector<std::uint32_t>& components,
                                         const std::vector<std::uint32_t>& idle,
                                         PlacementScratch& scratch) {
  scratch.used.assign(idle.size(), 0);
  Allocation allocation;
  allocation.reserve(components.size());
  for (std::uint32_t component : components) {
    ClusterId best = static_cast<ClusterId>(idle.size());
    std::uint32_t best_idle = 0;
    for (ClusterId c = 0; c < idle.size(); ++c) {
      if (scratch.used[c] != 0 || component > idle[c]) continue;
      if (best == idle.size() || idle[c] < best_idle) {
        best = c;
        best_idle = idle[c];
      }
    }
    if (best == idle.size()) return std::nullopt;
    scratch.used[best] = 1;
    allocation.push_back(ComponentPlacement{best, component});
  }
  return allocation;
}

}  // namespace

std::optional<Allocation> place_components(const std::vector<std::uint32_t>& components,
                                           const std::vector<std::uint32_t>& idle_counts,
                                           PlacementRule rule) {
  PlacementScratch scratch;
  return place_components(components, idle_counts, rule, scratch);
}

std::optional<Allocation> place_components(const std::vector<std::uint32_t>& components,
                                           const std::vector<std::uint32_t>& idle_counts,
                                           PlacementRule rule, PlacementScratch& scratch) {
  MCSIM_REQUIRE(!components.empty(), "request has no components");
  MCSIM_REQUIRE(components.size() <= idle_counts.size(),
                "more components than clusters");
  MCSIM_REQUIRE(is_non_increasing(components), "components must be non-increasing");
  switch (rule) {
    case PlacementRule::kWorstFit: return place_worst_fit(components, idle_counts, scratch);
    case PlacementRule::kFirstFit: return place_first_fit(components, idle_counts, scratch);
    case PlacementRule::kBestFit: return place_best_fit(components, idle_counts, scratch);
    case PlacementRule::kLoadAware:
      MCSIM_REQUIRE(false, "load-aware placement needs cluster capacities "
                           "(use the capacity-aware overload)");
  }
  return std::nullopt;
}

std::optional<Allocation> place_components(const std::vector<std::uint32_t>& components,
                                           const std::vector<std::uint32_t>& idle_counts,
                                           const std::vector<std::uint32_t>& capacities,
                                           PlacementRule rule, PlacementScratch& scratch) {
  if (rule != PlacementRule::kLoadAware) {
    return place_components(components, idle_counts, rule, scratch);
  }
  MCSIM_REQUIRE(!components.empty(), "request has no components");
  MCSIM_REQUIRE(components.size() <= idle_counts.size(),
                "more components than clusters");
  MCSIM_REQUIRE(is_non_increasing(components), "components must be non-increasing");
  MCSIM_REQUIRE(capacities.size() == idle_counts.size(),
                "capacities must match the cluster count");
  return place_load_aware(components, idle_counts, capacities, scratch);
}

std::optional<Allocation> place_on_cluster(std::uint32_t processors, ClusterId cluster,
                                           const std::vector<std::uint32_t>& idle_counts) {
  MCSIM_REQUIRE(cluster < idle_counts.size(), "unknown cluster");
  if (processors > idle_counts[cluster]) return std::nullopt;
  return Allocation{ComponentPlacement{cluster, processors}};
}

std::optional<Allocation> place_ordered(const std::vector<std::uint32_t>& components,
                                        const std::vector<ClusterId>& clusters,
                                        const std::vector<std::uint32_t>& idle_counts) {
  MCSIM_REQUIRE(!components.empty(), "request has no components");
  MCSIM_REQUIRE(components.size() == clusters.size(),
                "ordered request needs one cluster per component");
  Allocation allocation;
  allocation.reserve(components.size());
  std::vector<std::uint32_t> remaining = idle_counts;
  for (std::size_t i = 0; i < components.size(); ++i) {
    MCSIM_REQUIRE(clusters[i] < idle_counts.size(), "ordered request names unknown cluster");
    if (components[i] > remaining[clusters[i]]) return std::nullopt;
    remaining[clusters[i]] -= components[i];
    allocation.push_back(ComponentPlacement{clusters[i], components[i]});
  }
  return allocation;
}

std::optional<Allocation> place_flexible(std::uint32_t total,
                                         const std::vector<std::uint32_t>& idle_counts) {
  PlacementScratch scratch;
  return place_flexible(total, idle_counts, scratch);
}

std::optional<Allocation> place_flexible(std::uint32_t total,
                                         const std::vector<std::uint32_t>& idle_counts,
                                         PlacementScratch& scratch) {
  MCSIM_REQUIRE(total > 0, "request must ask for processors");
  // Whole-job fit on one cluster first (Worst Fit keeps big holes open).
  clusters_by_idle_desc(idle_counts, scratch.order);
  const std::vector<ClusterId>& order = scratch.order;
  if (idle_counts[order.front()] >= total) {
    return Allocation{ComponentPlacement{order.front(), total}};
  }
  // Otherwise spread greedily over clusters by decreasing idle count.
  std::uint32_t left = total;
  Allocation allocation;
  for (ClusterId cluster : order) {
    const std::uint32_t take = std::min(left, idle_counts[cluster]);
    if (take == 0) break;
    allocation.push_back(ComponentPlacement{cluster, take});
    left -= take;
    if (left == 0) return allocation;
  }
  return std::nullopt;
}

bool components_fit(const std::vector<std::uint32_t>& components,
                    const std::vector<std::uint32_t>& idle_counts) {
  if (components.size() > idle_counts.size()) return false;
  MCSIM_ASSERT(is_non_increasing(components));
  // Sort idle counts decreasingly; the i-th largest component must fit the
  // i-th most idle cluster (matching the WF feasibility argument).
  std::vector<std::uint32_t> idle = idle_counts;
  std::sort(idle.rbegin(), idle.rend());
  for (std::size_t i = 0; i < components.size(); ++i) {
    if (components[i] > idle[i]) return false;
  }
  return true;
}

}  // namespace mcsim
