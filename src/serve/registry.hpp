/// \file
/// \brief The run registry: every submission the daemon has accepted, from
/// queued through its terminal state (docs/SERVING.md, "Run lifecycle").
///
/// The registry is the hand-off point between the server's I/O loop (which
/// submits, answers status/result/cancel, and decides when a drain is
/// complete) and the dispatch thread (which claims queued runs in batches
/// and executes them on the exp::Runner pool). Both sides see one mutex;
/// the dispatch thread sleeps on a condition variable and the I/O loop is
/// woken through a completion callback (it cannot block here — it has a
/// poll(2) loop to run).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "exp/scenario_spec.hpp"

namespace mcsim::serve {

/// Lifecycle of a served run. Queued runs can still be cancelled; the
/// other four states are reached exactly once. kRunning never goes back.
enum class RunState : std::uint8_t { kQueued, kRunning, kDone, kFailed, kCancelled };

const char* run_state_name(RunState state);

[[nodiscard]] constexpr bool is_terminal(RunState state) {
  return state == RunState::kDone || state == RunState::kFailed ||
         state == RunState::kCancelled;
}

/// Snapshot of one run (returned by value — the registry's internal record
/// keeps changing under its own lock).
struct RunSnapshot {
  std::uint64_t id = 0;
  std::string name;           ///< client label; spec.label() when omitted
  RunState state = RunState::kQueued;
  std::string manifest_json;  ///< kDone: the full pretty-printed manifest
  std::string error;          ///< kFailed: what the run threw
};

/// Aggregate counters for the `stats` op.
struct RegistryStats {
  std::uint64_t submitted = 0;
  std::uint64_t queued = 0;
  std::uint64_t running = 0;
  std::uint64_t done = 0;
  std::uint64_t failed = 0;
  std::uint64_t cancelled = 0;
};

class RunRegistry {
 public:
  /// Called (with no registry lock held) every time a run reaches a
  /// terminal state — the server points this at its self-pipe so the poll
  /// loop wakes up and answers pending `result wait:true` requests.
  using CompletionHook = std::function<void()>;

  explicit RunRegistry(CompletionHook on_terminal = nullptr)
      : on_terminal_(std::move(on_terminal)) {}

  /// Queue a run; returns its id (ids are 1-based and dense).
  std::uint64_t submit(exp::ScenarioSpec spec, std::string name);

  /// Block until at least one run is queued or `stop` was signalled; then
  /// atomically move every queued run to kRunning and return (id, spec)
  /// pairs in submission order. Empty only after request_stop().
  std::vector<std::pair<std::uint64_t, exp::ScenarioSpec>> claim_queued();

  /// Wake claim_queued() for shutdown: once called, an empty claim means
  /// "no more work is coming, exit the dispatch loop".
  void request_stop();

  void complete(std::uint64_t id, std::string manifest_json);
  void fail(std::uint64_t id, std::string error);

  /// Cancel a queued run. Returns the state the run was actually in:
  /// kCancelled on success, the unchanged state (kRunning or terminal)
  /// when it was too late.
  RunState cancel(std::uint64_t id);

  [[nodiscard]] std::optional<RunSnapshot> get(std::uint64_t id) const;

  [[nodiscard]] RegistryStats stats() const;

  /// True when nothing is queued or running (the drain condition).
  [[nodiscard]] bool idle() const;

 private:
  struct Record {
    RunSnapshot snapshot;
    exp::ScenarioSpec spec;
  };

  void notify_terminal();

  CompletionHook on_terminal_;
  mutable std::mutex mutex_;
  std::condition_variable work_ready_;
  bool stop_ = false;
  std::uint64_t next_id_ = 1;
  std::map<std::uint64_t, Record> runs_;
  RegistryStats counters_;
};

}  // namespace mcsim::serve
