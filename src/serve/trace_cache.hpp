/// \file
/// \brief The warm trace cache: parsed SWF logs kept in memory between
/// served runs (docs/SERVING.md, "The warm cache").
///
/// Parsing and sorting a large SWF log dominates the cost of a short
/// served run; the whole point of a daemon over one-shot `mcsim run` is
/// paying it once. The cache maps a trace path to its validating scan plus
/// the usable records already in (submit_time, job_id) order — exactly the
/// stream the file-backed resolver would deliver through the bounded
/// lookahead heap, so a warm run is bit-identical to a cold one
/// (tests/serve_server_test.cpp pins this).
///
/// Invalidation is by (mtime, size): every get() stats the file, and a log
/// rewritten in place is transparently reloaded. Residency is bounded by a
/// byte budget with least-recently-used eviction; a single log bigger than
/// the whole budget is served but not retained.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "exp/scenario_spec.hpp"
#include "trace/record.hpp"
#include "trace/swf_stream.hpp"
#include "workload/trace_source.hpp"

namespace mcsim::serve {

/// One cached log: the scan plus its usable records, pre-sorted. Shared
/// (shared_ptr) so an eviction never invalidates a run in flight.
struct CachedTrace {
  SwfScan scan;
  /// The log's usable records sorted by (submit_time, job_id) — the order
  /// every TraceSource must deliver within its lookahead window.
  std::vector<TraceRecord> records;
  /// Approximate resident size charged against the cache budget.
  std::uint64_t bytes = 0;
};

/// Cumulative counters, reported by the `stats` op.
struct TraceCacheStats {
  std::uint64_t hits = 0;        ///< served from memory
  std::uint64_t misses = 0;      ///< first load of a path
  std::uint64_t reloads = 0;     ///< (mtime, size) changed -> reparsed
  std::uint64_t evictions = 0;   ///< LRU entries dropped for the budget
  std::uint64_t entries = 0;     ///< currently resident logs
  std::uint64_t resident_bytes = 0;
  std::uint64_t budget_bytes = 0;
};

/// Thread-safe LRU cache of parsed traces keyed by path. Safe to call from
/// concurrent runner workers: lookups and loads are serialized (a served
/// run's cost is the simulation, not the lock).
class TraceCache {
 public:
  /// `budget_bytes` bounds resident record storage; 0 disables retention
  /// entirely (every get() is a load — the cold-path reference mode the
  /// bench compares against).
  explicit TraceCache(std::uint64_t budget_bytes) : budget_bytes_(budget_bytes) {}

  /// Fetch `path`, loading or reloading as needed. Throws
  /// std::invalid_argument (from the SWF reader) when the file is missing
  /// or malformed — the server maps that to a structured run failure.
  std::shared_ptr<const CachedTrace> get(const std::string& path);

  /// An exp::TraceResolver serving scans and record streams from this
  /// cache — the seam to_simulation_config() accepts.
  [[nodiscard]] exp::TraceResolver resolver();

  [[nodiscard]] TraceCacheStats stats() const;

  /// Drop every entry (counters survive; used by tests).
  void clear();

 private:
  struct Entry {
    std::shared_ptr<const CachedTrace> trace;
    std::int64_t mtime_ns = 0;
    std::uint64_t size = 0;
    /// Position in lru_ (most-recent at front).
    std::list<std::string>::iterator lru_position;
  };

  /// Evict least-recently-used entries until `incoming` more bytes fit.
  /// Caller holds mutex_.
  void make_room(std::uint64_t incoming);

  mutable std::mutex mutex_;
  std::uint64_t budget_bytes_;
  std::uint64_t resident_bytes_ = 0;
  std::unordered_map<std::string, Entry> entries_;
  /// LRU order, most recently used first; values are entries_ keys.
  std::list<std::string> lru_;
  TraceCacheStats counters_;
};

/// A TraceRecordSource cursor over a cached record vector (shares
/// ownership, so the vector outlives the engine even across an eviction).
class CachedTraceSource final : public TraceRecordSource {
 public:
  explicit CachedTraceSource(std::shared_ptr<const CachedTrace> trace)
      : trace_(std::move(trace)) {}

  bool next(TraceRecord& out) override;

 private:
  std::shared_ptr<const CachedTrace> trace_;
  std::size_t index_ = 0;
};

}  // namespace mcsim::serve
