#include "serve/client.hpp"

#include <stdexcept>

#include "serve/protocol.hpp"

namespace mcsim::serve {

namespace {

/// A response line can embed a whole manifest; size the framing guard for
/// archive-scale documents.
constexpr std::size_t kMaxResponseBytes = 64u << 20;

}  // namespace

ServeClient::ServeClient(const std::string& socket_path)
    : stream_(UnixStream::connect(socket_path)) {}

obs::JsonValue ServeClient::request(const std::string& line) {
  stream_.write_all(line + "\n", timeout_ms_);
  std::string response_line;
  if (!stream_.read_line(response_line, timeout_ms_, kMaxResponseBytes)) {
    throw std::runtime_error("mcsim: server closed the connection mid-request");
  }
  obs::JsonValue response = obs::parse_json(response_line);
  if (!response.is_object() || response.find("ok") == nullptr) {
    throw std::runtime_error("mcsim: malformed server response: " + response_line);
  }
  if (!response.at("ok").as_bool()) {
    const obs::JsonValue* error = response.find("error");
    if (error != nullptr && error->is_object()) {
      throw ServeError(error->at("code").as_string(), error->at("message").as_string());
    }
    throw std::runtime_error("mcsim: server reported an error without detail");
  }
  return response;
}

std::uint64_t ServeClient::submit(const std::string& spec_json, const std::string& name) {
  std::string line = "{\"op\":\"submit\",\"spec\":" + spec_json;
  if (!name.empty()) line += ",\"name\":" + json_string(name);
  line += '}';
  return request(line).at("id").as_uint();
}

obs::JsonValue ServeClient::await_result(std::uint64_t id) {
  obs::JsonValue response = request("{\"op\":\"result\",\"id\":" + std::to_string(id) +
                                    ",\"wait\":true}");
  if (response.find("manifest") == nullptr) {
    throw std::runtime_error("mcsim: result response carries no manifest");
  }
  return response;
}

obs::JsonValue ServeClient::stats() { return request("{\"op\":\"stats\"}"); }

void ServeClient::shutdown() { request("{\"op\":\"shutdown\"}"); }

}  // namespace mcsim::serve
