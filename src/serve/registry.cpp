#include "serve/registry.hpp"

#include "util/assert.hpp"

namespace mcsim::serve {

const char* run_state_name(RunState state) {
  switch (state) {
    case RunState::kQueued: return "queued";
    case RunState::kRunning: return "running";
    case RunState::kDone: return "done";
    case RunState::kFailed: return "failed";
    case RunState::kCancelled: return "cancelled";
  }
  return "?";
}

std::uint64_t RunRegistry::submit(exp::ScenarioSpec spec, std::string name) {
  std::uint64_t id = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    id = next_id_++;
    Record record;
    record.snapshot.id = id;
    record.snapshot.name = name.empty() ? spec.label() : std::move(name);
    record.snapshot.state = RunState::kQueued;
    record.spec = std::move(spec);
    runs_.emplace(id, std::move(record));
    ++counters_.submitted;
    ++counters_.queued;
  }
  work_ready_.notify_one();
  return id;
}

std::vector<std::pair<std::uint64_t, exp::ScenarioSpec>> RunRegistry::claim_queued() {
  std::unique_lock<std::mutex> lock(mutex_);
  work_ready_.wait(lock, [this] { return stop_ || counters_.queued > 0; });
  std::vector<std::pair<std::uint64_t, exp::ScenarioSpec>> batch;
  for (auto& [id, record] : runs_) {
    if (record.snapshot.state != RunState::kQueued) continue;
    record.snapshot.state = RunState::kRunning;
    --counters_.queued;
    ++counters_.running;
    batch.emplace_back(id, record.spec);
  }
  return batch;
}

void RunRegistry::request_stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_ready_.notify_all();
}

void RunRegistry::complete(std::uint64_t id, std::string manifest_json) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto found = runs_.find(id);
    MCSIM_ASSERT(found != runs_.end());
    Record& record = found->second;
    MCSIM_ASSERT(record.snapshot.state == RunState::kRunning);
    record.snapshot.state = RunState::kDone;
    record.snapshot.manifest_json = std::move(manifest_json);
    --counters_.running;
    ++counters_.done;
  }
  notify_terminal();
}

void RunRegistry::fail(std::uint64_t id, std::string error) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto found = runs_.find(id);
    MCSIM_ASSERT(found != runs_.end());
    Record& record = found->second;
    MCSIM_ASSERT(record.snapshot.state == RunState::kRunning);
    record.snapshot.state = RunState::kFailed;
    record.snapshot.error = std::move(error);
    --counters_.running;
    ++counters_.failed;
  }
  notify_terminal();
}

RunState RunRegistry::cancel(std::uint64_t id) {
  bool cancelled = false;
  RunState state = RunState::kQueued;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto found = runs_.find(id);
    if (found == runs_.end()) {
      // Never-submitted ids are the caller's problem (get() distinguishes).
      return RunState::kCancelled;
    }
    Record& record = found->second;
    if (record.snapshot.state == RunState::kQueued) {
      record.snapshot.state = RunState::kCancelled;
      --counters_.queued;
      ++counters_.cancelled;
      cancelled = true;
    }
    state = record.snapshot.state;
  }
  if (cancelled) notify_terminal();
  return state;
}

std::optional<RunSnapshot> RunRegistry::get(std::uint64_t id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto found = runs_.find(id);
  if (found == runs_.end()) return std::nullopt;
  return found->second.snapshot;
}

RegistryStats RunRegistry::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return counters_;
}

bool RunRegistry::idle() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return counters_.queued == 0 && counters_.running == 0;
}

void RunRegistry::notify_terminal() {
  if (on_terminal_) on_terminal_();
}

}  // namespace mcsim::serve
