#include "serve/trace_cache.hpp"

#include <sys/stat.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "util/assert.hpp"
#include "workload/trace_workload.hpp"

namespace mcsim::serve {

namespace {

struct FileIdentity {
  std::int64_t mtime_ns = 0;
  std::uint64_t size = 0;
};

FileIdentity stat_identity(const std::string& path) {
  struct stat info{};
  if (::stat(path.c_str(), &info) != 0) {
    throw std::invalid_argument("mcsim: cannot stat trace file " + path + ": " +
                                std::strerror(errno));
  }
  FileIdentity identity;
  identity.mtime_ns = static_cast<std::int64_t>(info.st_mtim.tv_sec) * 1'000'000'000 +
                      info.st_mtim.tv_nsec;
  identity.size = static_cast<std::uint64_t>(info.st_size);
  return identity;
}

std::shared_ptr<const CachedTrace> load_trace(const std::string& path) {
  auto trace = std::make_shared<CachedTrace>();
  trace->scan = scan_swf_file(path);
  std::vector<TraceRecord> raw;
  raw.reserve(trace->scan.summary.usable_records);
  {
    SwfFileStream stream(path);
    TraceRecord record;
    while (stream.next(record)) {
      if (trace_record_usable(record)) raw.push_back(record);
    }
  }
  trace->records = usable_trace_records(raw);
  trace->bytes = trace->records.capacity() * sizeof(TraceRecord) +
                 sizeof(CachedTrace);
  return trace;
}

}  // namespace

bool CachedTraceSource::next(TraceRecord& out) {
  if (index_ >= trace_->records.size()) return false;
  out = trace_->records[index_++];
  return true;
}

std::shared_ptr<const CachedTrace> TraceCache::get(const std::string& path) {
  const FileIdentity identity = stat_identity(path);

  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto found = entries_.find(path);
    if (found != entries_.end()) {
      Entry& entry = found->second;
      if (entry.mtime_ns == identity.mtime_ns && entry.size == identity.size) {
        ++counters_.hits;
        lru_.splice(lru_.begin(), lru_, entry.lru_position);
        return entry.trace;
      }
      // Stale: the file changed underneath us. Drop the entry and fall
      // through to a fresh load (counted as a reload, not a miss).
      resident_bytes_ -= entry.trace->bytes;
      lru_.erase(entry.lru_position);
      entries_.erase(found);
      ++counters_.reloads;
    } else {
      ++counters_.misses;
    }
  }

  // Parse outside the lock: concurrent submits for *different* logs load in
  // parallel; a duplicate concurrent load of the same log costs a redundant
  // parse, never a wrong answer (last one in wins the cache slot).
  std::shared_ptr<const CachedTrace> trace = load_trace(path);

  std::lock_guard<std::mutex> lock(mutex_);
  if (trace->bytes <= budget_bytes_) {
    auto found = entries_.find(path);
    if (found != entries_.end()) {
      resident_bytes_ -= found->second.trace->bytes;
      lru_.erase(found->second.lru_position);
      entries_.erase(found);
    }
    make_room(trace->bytes);
    lru_.push_front(path);
    Entry entry;
    entry.trace = trace;
    entry.mtime_ns = identity.mtime_ns;
    entry.size = identity.size;
    entry.lru_position = lru_.begin();
    entries_.emplace(path, std::move(entry));
    resident_bytes_ += trace->bytes;
  }
  // else: oversize for the whole budget — serve it, retain nothing.
  return trace;
}

void TraceCache::make_room(std::uint64_t incoming) {
  while (!lru_.empty() && resident_bytes_ + incoming > budget_bytes_) {
    const std::string& victim = lru_.back();
    auto found = entries_.find(victim);
    MCSIM_ASSERT(found != entries_.end());
    resident_bytes_ -= found->second.trace->bytes;
    entries_.erase(found);
    lru_.pop_back();
    ++counters_.evictions;
  }
}

exp::TraceResolver TraceCache::resolver() {
  return [this](const std::string& path) {
    std::shared_ptr<const CachedTrace> trace = get(path);
    exp::ResolvedTrace resolved;
    resolved.scan = trace->scan;
    resolved.open_source = [trace]() -> std::unique_ptr<TraceRecordSource> {
      return std::make_unique<CachedTraceSource>(trace);
    };
    return resolved;
  };
}

TraceCacheStats TraceCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  TraceCacheStats out = counters_;
  out.entries = entries_.size();
  out.resident_bytes = resident_bytes_;
  out.budget_bytes = budget_bytes_;
  return out;
}

void TraceCache::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  entries_.clear();
  lru_.clear();
  resident_bytes_ = 0;
}

}  // namespace mcsim::serve
