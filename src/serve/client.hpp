/// \file
/// \brief Client side of the experiment service: one connection, typed
/// request/response helpers over the NDJSON protocol (docs/SERVING.md).
///
/// `mcsim submit` is a thin wrapper over this class, and the server tests
/// drive it in-process; both sides of the wire therefore share one framing
/// implementation and cannot drift apart.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

#include "obs/json_reader.hpp"
#include "util/socket.hpp"

namespace mcsim::serve {

/// Raised when the server answers `"ok": false`; carries the structured
/// error code alongside the message.
class ServeError : public std::runtime_error {
 public:
  ServeError(std::string code, const std::string& message)
      : std::runtime_error(message), code_(std::move(code)) {}
  [[nodiscard]] const std::string& code() const { return code_; }

 private:
  std::string code_;
};

class ServeClient {
 public:
  /// Connect to the daemon at `socket_path`. Throws std::system_error when
  /// nothing is listening.
  explicit ServeClient(const std::string& socket_path);

  /// Send one raw request line and return the parsed response document.
  /// Throws ServeError on an `"ok": false` answer, std::system_error on
  /// transport failure, std::runtime_error on a malformed response.
  obs::JsonValue request(const std::string& line);

  /// Submit a scenario (its JSON object rendered compactly in
  /// `spec_json`); returns the run id.
  std::uint64_t submit(const std::string& spec_json, const std::string& name = "");

  /// Block until run `id` is terminal and return its manifest document.
  /// A failed or cancelled run surfaces as ServeError (kErrRunFailed /
  /// kErrRunCancelled).
  obs::JsonValue await_result(std::uint64_t id);

  /// `{"op":"stats"}` as a parsed document.
  obs::JsonValue stats();

  /// Ask the server to drain and exit.
  void shutdown();

  /// Per-response timeout. The default is generous: `await_result` blocks
  /// for the whole simulation.
  void set_timeout_ms(int timeout_ms) { timeout_ms_ = timeout_ms; }

 private:
  UnixStream stream_;
  int timeout_ms_ = 10 * 60 * 1000;
};

}  // namespace mcsim::serve
