#include "serve/protocol.hpp"

#include <filesystem>

#include "obs/json.hpp"

namespace mcsim::serve {

namespace fs = std::filesystem;

const char* op_name(Op op) {
  switch (op) {
    case Op::kSubmit: return "submit";
    case Op::kStatus: return "status";
    case Op::kResult: return "result";
    case Op::kCancel: return "cancel";
    case Op::kStats: return "stats";
    case Op::kShutdown: return "shutdown";
  }
  return "?";
}

namespace {

Op parse_op(const std::string& name) {
  if (name == "submit") return Op::kSubmit;
  if (name == "status") return Op::kStatus;
  if (name == "result") return Op::kResult;
  if (name == "cancel") return Op::kCancel;
  if (name == "stats") return Op::kStats;
  if (name == "shutdown") return Op::kShutdown;
  throw ProtocolError(kErrBadRequest,
                      "unknown op \"" + name +
                          "\" (expected submit, status, result, cancel, "
                          "stats, or shutdown)");
}

std::uint64_t require_id(const obs::JsonValue& request) {
  const obs::JsonValue* id = request.find("id");
  if (id == nullptr || !id->is_number()) {
    throw ProtocolError(kErrBadRequest, "request needs a numeric \"id\" field");
  }
  try {
    return id->as_uint();
  } catch (const std::exception&) {
    throw ProtocolError(kErrBadRequest,
                        "\"id\" is not a non-negative integer: " + id->number_text());
  }
}

}  // namespace

std::string sandboxed_path(const std::string& root, const std::string& path) {
  if (root.empty()) {
    throw ProtocolError(kErrSandbox,
                        "this server accepts no trace paths (no sandbox root)");
  }
  const fs::path candidate(path);
  if (candidate.is_absolute()) {
    throw ProtocolError(kErrSandbox,
                        "absolute trace paths are not served: " + path);
  }
  // Lexical containment: normalizing the relative candidate hoists every
  // surviving ".." segment to the front, so escape detection is one check —
  // and the root's own spelling ("." or a trailing slash) cannot confuse a
  // prefix comparison. No filesystem access here — existence is the run's
  // problem, escape attempts are ours.
  const fs::path candidate_normal = candidate.lexically_normal();
  if (candidate_normal.begin() != candidate_normal.end() &&
      *candidate_normal.begin() == "..") {
    throw ProtocolError(kErrSandbox, "trace path escapes the sandbox root (" +
                                         root + "): " + path);
  }
  return (fs::path(root).lexically_normal() / candidate_normal)
      .lexically_normal()
      .generic_string();
}

Request parse_request(const std::string& line, const std::string& sandbox_root) {
  obs::JsonValue document;
  try {
    document = obs::parse_json(line);
  } catch (const std::exception& error) {
    throw ProtocolError(kErrBadJson, error.what());
  }
  if (!document.is_object()) {
    throw ProtocolError(kErrBadRequest, "request must be a JSON object");
  }
  const obs::JsonValue* op_field = document.find("op");
  if (op_field == nullptr || !op_field->is_string()) {
    throw ProtocolError(kErrBadRequest, "request needs a string \"op\" field");
  }

  Request request;
  request.op = parse_op(op_field->as_string());
  switch (request.op) {
    case Op::kSubmit: {
      const obs::JsonValue* spec = document.find("spec");
      if (spec == nullptr || !spec->is_object()) {
        throw ProtocolError(kErrBadRequest,
                            "submit needs a \"spec\" scenario object");
      }
      try {
        request.spec = exp::scenario_from_json(*spec);
      } catch (const std::exception& error) {
        throw ProtocolError(kErrInvalidScenario, error.what());
      }
      if (request.spec.mode != exp::RunMode::kPoint) {
        throw ProtocolError(
            kErrInvalidScenario,
            "the experiment service runs point-mode scenarios only (mode \"" +
                std::string(exp::run_mode_name(request.spec.mode)) +
                "\" submitted) — sweeps are a sequence of point submits");
      }
      if (request.spec.trace_whole_file) {
        throw ProtocolError(kErrInvalidScenario,
                            "whole_file is a local test hook; the service "
                            "always streams (and caches) trace records");
      }
      if (request.spec.is_trace()) {
        request.spec.trace_path =
            sandboxed_path(sandbox_root, request.spec.trace_path);
      }
      if (const obs::JsonValue* name = document.find("name")) {
        if (!name->is_string()) {
          throw ProtocolError(kErrBadRequest, "\"name\" must be a string");
        }
        request.name = name->as_string();
      }
      break;
    }
    case Op::kStatus:
    case Op::kCancel:
      request.id = require_id(document);
      break;
    case Op::kResult:
      request.id = require_id(document);
      if (const obs::JsonValue* wait = document.find("wait")) {
        if (!wait->is_bool()) {
          throw ProtocolError(kErrBadRequest, "\"wait\" must be a boolean");
        }
        request.wait = wait->as_bool();
      }
      break;
    case Op::kStats:
    case Op::kShutdown:
      break;
  }
  return request;
}

std::string json_string(const std::string& text) {
  return '"' + obs::json_escape(text) + '"';
}

std::string error_response(const std::string& code, const std::string& message) {
  return "{\"ok\":false,\"error\":{\"code\":" + json_string(code) +
         ",\"message\":" + json_string(message) + "}}";
}

std::string ok_response(const std::string& body) {
  return body.empty() ? std::string("{\"ok\":true}") : "{\"ok\":true," + body + "}";
}

namespace {

void compact_into(const obs::JsonValue& value, std::string& out) {
  switch (value.kind()) {
    case obs::JsonValue::Kind::kNull:
      out += "null";
      break;
    case obs::JsonValue::Kind::kBool:
      out += value.as_bool() ? "true" : "false";
      break;
    case obs::JsonValue::Kind::kNumber:
      // Verbatim source spelling: the value came out of our own writer
      // (max_digits10), so copying the text is the bit-preserving move.
      out += value.number_text();
      break;
    case obs::JsonValue::Kind::kString:
      out += json_string(value.as_string());
      break;
    case obs::JsonValue::Kind::kArray: {
      out += '[';
      bool first = true;
      for (const obs::JsonValue& item : value.items()) {
        if (!first) out += ',';
        first = false;
        compact_into(item, out);
      }
      out += ']';
      break;
    }
    case obs::JsonValue::Kind::kObject: {
      out += '{';
      bool first = true;
      for (const auto& [key, member] : value.members()) {
        if (!first) out += ',';
        first = false;
        out += json_string(key);
        out += ':';
        compact_into(member, out);
      }
      out += '}';
      break;
    }
  }
}

}  // namespace

std::string compact_json(const obs::JsonValue& value) {
  std::string out;
  compact_into(value, out);
  return out;
}

}  // namespace mcsim::serve
