#include "serve/server.hpp"

#include <poll.h>
#include <sys/socket.h>

#include <atomic>
#include <cerrno>
#include <iostream>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <system_error>
#include <thread>
#include <utility>
#include <vector>

#include "core/engine.hpp"
#include "exp/manifest.hpp"
#include "exp/runner.hpp"
#include "obs/json_reader.hpp"
#include "obs/metrics.hpp"
#include "serve/protocol.hpp"
#include "util/logging.hpp"

namespace mcsim::serve {

namespace {

/// Per-chunk timeout for response writes. Clients are local; a peer that
/// stays unwritable this long is gone and gets disconnected.
constexpr int kWriteTimeoutMs = 30'000;
/// Trust-boundary framing guard: a request line larger than this is a
/// protocol violation, answered and disconnected.
constexpr std::size_t kMaxRequestBytes = 4u << 20;

/// One client connection and its conversation state.
struct Connection {
  UnixStream stream;
  std::string inbuf;
  /// Non-zero: a `result wait:true` is parked on this connection; no
  /// further request is processed until the run turns terminal and the
  /// response goes out (responses stay in request order).
  std::uint64_t waiting_id = 0;
  bool closed = false;
};

std::string uint_field(const char* key, std::uint64_t value) {
  return '"' + std::string(key) + "\":" + std::to_string(value);
}

std::string state_field(RunState state) {
  return std::string("\"state\":") + json_string(run_state_name(state));
}

}  // namespace

struct Server::Impl {
  explicit Impl(const ServerConfig& server_config)
      : config(server_config),
        cache(server_config.cache_bytes),
        registry([this] { pipe.notify(); }) {}

  ServerConfig config;
  TraceCache cache;
  SelfPipe pipe;
  RunRegistry registry;
  UnixListener listener;
  std::vector<std::unique_ptr<Connection>> connections;
  std::atomic<bool> draining{false};
  std::thread dispatcher;

  // -- dispatch side (runs on `dispatcher` + Runner workers) ---------------

  void dispatch_loop() {
    exp::Runner runner(config.jobs);
    for (;;) {
      const auto batch = registry.claim_queued();
      if (batch.empty()) return;  // request_stop() and nothing left
      runner.run(batch.size(), [&](std::size_t i) {
        execute_run(batch[i].first, batch[i].second);
      });
    }
  }

  void execute_run(std::uint64_t id, const exp::ScenarioSpec& spec) {
    try {
      const SimulationConfig sim_config =
          exp::to_simulation_config(spec, spec.utilization, cache.resolver());
      MulticlusterSimulation simulation(sim_config);
      obs::MetricsRegistry metrics;
      simulation.set_metrics(&metrics);
      const SimulationResult result = simulation.run();

      std::ostringstream out;
      ManifestInfo info;
      // Deterministic provenance: a served run has no argv, and a wall
      // clock in the command line would break the served-vs-offline
      // observation diff. The label is a pure function of the spec.
      info.command_line = "mcsim serve: " + spec.label();
      info.scenario = &spec;
      write_run_manifest(out, sim_config, result, &metrics, info);
      registry.complete(id, out.str());
    } catch (const std::exception& error) {
      registry.fail(id, error.what());
    }
  }

  // -- I/O side (single-threaded poll loop) --------------------------------

  void respond(Connection& conn, const std::string& body) {
    try {
      conn.stream.write_all(body + "\n", kWriteTimeoutMs);
    } catch (const std::exception&) {
      conn.closed = true;  // peer gone; the run (if any) finishes regardless
    }
  }

  std::string handle_submit(Request&& request) {
    if (draining.load(std::memory_order_relaxed)) {
      return error_response(kErrShuttingDown,
                            "server is draining; submissions are closed");
    }
    exp::ScenarioSpec spec = std::move(request.spec);
    // One engine thread per served run: the --jobs budget fans out across
    // runs (the Runner pool), exactly like a sweep under `mcsim run`.
    spec.parallelism = 1;
    try {
      exp::validate(spec);
    } catch (const std::exception& error) {
      return error_response(kErrInvalidScenario, error.what());
    }
    const std::uint64_t id = registry.submit(std::move(spec), std::move(request.name));
    return ok_response(uint_field("id", id) + ",\"state\":\"queued\"");
  }

  std::string handle_status(const Request& request) {
    const auto snapshot = registry.get(request.id);
    if (!snapshot) {
      return error_response(kErrUnknownRun,
                            "no run with id " + std::to_string(request.id));
    }
    std::string body = uint_field("id", snapshot->id) + ",\"name\":" +
                       json_string(snapshot->name) + ',' + state_field(snapshot->state);
    if (snapshot->state == RunState::kFailed) {
      body += ",\"error\":" + json_string(snapshot->error);
    }
    return ok_response(body);
  }

  /// The terminal-state response for `result` (the caller has checked the
  /// run is terminal).
  std::string result_response(const RunSnapshot& snapshot) {
    switch (snapshot.state) {
      case RunState::kDone: {
        // Re-parse + compact-serialize: the manifest was written by our own
        // pretty writer, and compact_json preserves every number spelling,
        // so the client recovers the identical document bit-for-bit.
        const obs::JsonValue manifest = obs::parse_json(snapshot.manifest_json);
        return ok_response(uint_field("id", snapshot.id) +
                           ",\"state\":\"done\",\"manifest\":" +
                           compact_json(manifest));
      }
      case RunState::kFailed:
        return error_response(kErrRunFailed, "run " + std::to_string(snapshot.id) +
                                                 " failed: " + snapshot.error);
      case RunState::kCancelled:
        return error_response(kErrRunCancelled,
                              "run " + std::to_string(snapshot.id) +
                                  " was cancelled before it started");
      case RunState::kQueued:
      case RunState::kRunning:
        break;
    }
    return error_response(kErrBadRequest, "run is not terminal");  // unreachable
  }

  /// Handle `result`: answer now when possible, otherwise park the
  /// connection (wait:true) until the run turns terminal. Returns false
  /// when the request was parked.
  bool handle_result(Connection& conn, const Request& request) {
    const auto snapshot = registry.get(request.id);
    if (!snapshot) {
      respond(conn, error_response(kErrUnknownRun,
                                   "no run with id " + std::to_string(request.id)));
      return true;
    }
    if (is_terminal(snapshot->state)) {
      respond(conn, result_response(*snapshot));
      return true;
    }
    if (!request.wait) {
      respond(conn, ok_response(uint_field("id", snapshot->id) + ',' +
                                state_field(snapshot->state)));
      return true;
    }
    conn.waiting_id = request.id;
    return false;
  }

  std::string handle_cancel(const Request& request) {
    const auto snapshot = registry.get(request.id);
    if (!snapshot) {
      return error_response(kErrUnknownRun,
                            "no run with id " + std::to_string(request.id));
    }
    const RunState state = registry.cancel(request.id);
    if (state == RunState::kCancelled) {
      return ok_response(uint_field("id", request.id) +
                         ",\"state\":\"cancelled\"");
    }
    return error_response(kErrNotCancellable,
                          "run " + std::to_string(request.id) + " is already " +
                              run_state_name(state));
  }

  std::string handle_stats() {
    const TraceCacheStats cache_stats = cache.stats();
    const RegistryStats run_stats = registry.stats();
    std::string body = "\"cache\":{" + uint_field("hits", cache_stats.hits) + ',' +
                       uint_field("misses", cache_stats.misses) + ',' +
                       uint_field("reloads", cache_stats.reloads) + ',' +
                       uint_field("evictions", cache_stats.evictions) + ',' +
                       uint_field("entries", cache_stats.entries) + ',' +
                       uint_field("resident_bytes", cache_stats.resident_bytes) + ',' +
                       uint_field("budget_bytes", cache_stats.budget_bytes) + '}';
    body += ",\"runs\":{" + uint_field("submitted", run_stats.submitted) + ',' +
            uint_field("queued", run_stats.queued) + ',' +
            uint_field("running", run_stats.running) + ',' +
            uint_field("done", run_stats.done) + ',' +
            uint_field("failed", run_stats.failed) + ',' +
            uint_field("cancelled", run_stats.cancelled) + '}';
    body += ',' + uint_field("jobs", config.jobs == 0 ? exp::Runner::default_jobs()
                                                      : config.jobs);
    body += ",\"draining\":" +
            std::string(draining.load(std::memory_order_relaxed) ? "true" : "false");
    return ok_response(body);
  }

  /// Dispatch one parsed line. Returns false when the connection parked a
  /// wait and line processing must pause.
  bool handle_line(Connection& conn, const std::string& line) {
    Request request;
    try {
      request = parse_request(line, config.sandbox_root);
    } catch (const ProtocolError& error) {
      respond(conn, error_response(error.code(), error.what()));
      return true;
    }
    switch (request.op) {
      case Op::kSubmit:
        respond(conn, handle_submit(std::move(request)));
        return true;
      case Op::kStatus:
        respond(conn, handle_status(request));
        return true;
      case Op::kResult:
        return handle_result(conn, request);
      case Op::kCancel:
        respond(conn, handle_cancel(request));
        return true;
      case Op::kStats:
        respond(conn, handle_stats());
        return true;
      case Op::kShutdown: {
        const RegistryStats run_stats = registry.stats();
        respond(conn, ok_response(
                          uint_field("draining", run_stats.queued + run_stats.running)));
        begin_drain();
        return true;
      }
    }
    return true;
  }

  /// Consume every complete line buffered on `conn` (stopping at a parked
  /// wait).
  void process_buffer(Connection& conn) {
    while (!conn.closed && conn.waiting_id == 0) {
      const std::size_t pos = conn.inbuf.find('\n');
      if (pos == std::string::npos) {
        if (conn.inbuf.size() > kMaxRequestBytes) {
          respond(conn, error_response(kErrBadRequest,
                                       "request line exceeds " +
                                           std::to_string(kMaxRequestBytes) +
                                           " bytes"));
          conn.closed = true;
        }
        return;
      }
      std::string line = conn.inbuf.substr(0, pos);
      conn.inbuf.erase(0, pos + 1);
      if (!handle_line(conn, line)) return;
    }
  }

  /// Nonblocking read of whatever the peer has sent; then process it.
  void read_connection(Connection& conn) {
    char chunk[4096];
    for (;;) {
      const ssize_t got = ::recv(conn.stream.fd(), chunk, sizeof(chunk), 0);
      if (got > 0) {
        conn.inbuf.append(chunk, static_cast<std::size_t>(got));
        if (conn.inbuf.size() > kMaxRequestBytes + sizeof(chunk)) break;
        continue;
      }
      if (got == 0) {
        conn.closed = true;  // EOF; a parked wait dies with the peer
        break;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      conn.closed = true;
      break;
    }
    if (!conn.closed) process_buffer(conn);
  }

  /// Answer every parked `result wait:true` whose run has turned terminal,
  /// then resume that connection's buffered requests.
  void answer_waiters() {
    for (auto& conn : connections) {
      if (conn->closed || conn->waiting_id == 0) continue;
      const auto snapshot = registry.get(conn->waiting_id);
      if (!snapshot || !is_terminal(snapshot->state)) continue;
      conn->waiting_id = 0;
      respond(*conn, result_response(*snapshot));
      process_buffer(*conn);
    }
  }

  void begin_drain() {
    if (!draining.exchange(true, std::memory_order_relaxed)) {
      MCSIM_LOG(kInfo) << "mcsim serve: draining (submissions closed)";
    }
  }

  void accept_pending() {
    for (;;) {
      UnixStream stream = listener.accept();
      if (!stream.valid()) return;
      auto conn = std::make_unique<Connection>();
      conn->stream = std::move(stream);
      connections.push_back(std::move(conn));
    }
  }

  int run_loop() {
    for (;;) {
      const bool drain_now = draining.load(std::memory_order_relaxed);
      if (drain_now && registry.idle()) {
        answer_waiters();  // every run is terminal; flush the last waiters
        return 0;
      }

      std::vector<pollfd> fds;
      fds.push_back({pipe.read_fd(), POLLIN, 0});
      if (!drain_now) fds.push_back({listener.fd(), POLLIN, 0});
      const std::size_t first_conn = fds.size();
      for (const auto& conn : connections) {
        fds.push_back({conn->stream.fd(), POLLIN, 0});
      }

      // 500 ms safety-net timeout: every state change also arrives through
      // the self-pipe, so this only bounds the cost of a lost wakeup.
      const int ready = ::poll(fds.data(), fds.size(), 500);
      if (ready < 0) {
        if (errno == EINTR) continue;
        throw std::system_error(errno, std::generic_category(), "poll");
      }

      if ((fds[0].revents & POLLIN) != 0) {
        pipe.drain();
        if (consume_shutdown_signal()) begin_drain();
      }
      if (!drain_now && (fds[1].revents & POLLIN) != 0) accept_pending();
      for (std::size_t i = first_conn; i < fds.size(); ++i) {
        Connection& conn = *connections[i - first_conn];
        if ((fds[i].revents & (POLLIN | POLLHUP | POLLERR)) != 0) {
          read_connection(conn);
        }
      }
      answer_waiters();
      std::erase_if(connections,
                    [](const std::unique_ptr<Connection>& conn) { return conn->closed; });
    }
  }
};

// Impl is built here, not in serve(): request_shutdown() may run on another
// thread, and constructing the state before any thread exists keeps the
// impl_ pointer race-free without a lock.
Server::Server(ServerConfig config)
    : config_(std::move(config)), impl_(std::make_unique<Impl>(config_)) {}

Server::~Server() = default;

int Server::serve() {
  impl_->listener = UnixListener::bind(config_.socket_path);
  if (config_.handle_signals) install_shutdown_signals(&impl_->pipe);
  impl_->dispatcher = std::thread([this] { impl_->dispatch_loop(); });
  // The readiness line scripts wait for (flushed before the first accept).
  std::cout << "mcsim serve: listening on " << config_.socket_path << std::endl;

  // Close the listener (which unlinks the socket file) before returning —
  // the drain contract is that a 0 from serve() means the rendezvous path
  // is gone. Impl itself stays alive for request_shutdown() callers.
  int code = 0;
  try {
    code = impl_->run_loop();
  } catch (...) {
    impl_->registry.request_stop();
    impl_->dispatcher.join();
    impl_->listener.close();
    if (config_.handle_signals) install_shutdown_signals(nullptr);
    throw;
  }
  impl_->registry.request_stop();
  impl_->dispatcher.join();
  impl_->listener.close();
  if (config_.handle_signals) install_shutdown_signals(nullptr);
  return code;
}

void Server::request_shutdown() {
  if (!impl_) return;
  impl_->draining.store(true, std::memory_order_relaxed);
  impl_->pipe.notify();
}

}  // namespace mcsim::serve
