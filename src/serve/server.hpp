/// \file
/// \brief The experiment daemon: a Unix-socket server that runs submitted
/// scenarios on a warm exp::Runner pool with a warm trace cache
/// (docs/SERVING.md).
///
/// Two threads:
///   * the I/O loop (serve()) — a single poll(2) loop over the listener,
///     the self-pipe and every client connection. It parses requests at
///     the trust boundary, answers everything that does not need a
///     finished run immediately, and parks `result wait:true` requests
///     until the run's completion wakes it through the self-pipe.
///   * the dispatch thread — blocks on the registry, claims queued runs in
///     batches, and fans each batch out over the Runner pool (`--jobs`
///     workers; each served run executes with one engine thread, so the
///     budget is spent across runs, not within one).
///
/// Shutdown (`shutdown` op, SIGTERM or SIGINT) is a *drain*: the server
/// stops accepting submissions, lets queued and running work finish,
/// answers the waiters, then closes the socket, removes the socket file
/// and returns 0 from serve().
///
/// Served manifests carry the deterministic command line
/// `mcsim serve: <label>` instead of an argv, so the manifest's
/// exp::manifest_observation() is byte-identical to an offline
/// `mcsim run` of the same spec — the replayability contract the
/// serve-smoke CI job diffs.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "serve/registry.hpp"
#include "serve/trace_cache.hpp"
#include "util/socket.hpp"

namespace mcsim::serve {

struct ServerConfig {
  /// Rendezvous path for the Unix-domain socket (created on start,
  /// unlinked on clean shutdown).
  std::string socket_path;
  /// Runner pool width — concurrent served runs (0 = all cores).
  unsigned jobs = 1;
  /// Trace-cache byte budget (0 disables retention).
  std::uint64_t cache_bytes = kDefaultCacheBytes;
  /// Directory submitted trace paths must stay under (empty = reject
  /// every trace-replay submission).
  std::string sandbox_root;
  /// Route SIGTERM/SIGINT into the drain path. Off in tests that share
  /// the process-wide handler (they call request_shutdown() instead).
  bool handle_signals = true;

  static constexpr std::uint64_t kDefaultCacheBytes = 256ull << 20;
};

class Server {
 public:
  explicit Server(ServerConfig config);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind, start the dispatch thread and run the I/O loop until a drain
  /// completes. Returns the process exit code (0 on clean shutdown).
  /// Throws std::system_error when the socket cannot be bound.
  int serve();

  /// Begin the drain from another thread (what a `shutdown` request or a
  /// termination signal does internally; tests use it directly).
  void request_shutdown();

  [[nodiscard]] const std::string& socket_path() const {
    return config_.socket_path;
  }

 private:
  struct Impl;

  ServerConfig config_;
  std::unique_ptr<Impl> impl_;
};

}  // namespace mcsim::serve
