/// \file
/// \brief The experiment-service wire protocol: newline-delimited JSON
/// requests and responses over a local Unix-domain socket
/// (docs/SERVING.md, "The protocol").
///
/// One request per line, one response line per request, in order. Every
/// response is an object with `"ok": true|false`; failures carry a
/// structured `"error": {"code", "message"}` object — the trust boundary
/// never answers malformed or hostile input with a crash or a raw
/// exception dump. Requests:
///
///   {"op":"submit", "spec":{...scenario...}, "name":"..."?}  -> {"ok":true,"id":N,"state":"queued"}
///   {"op":"status", "id":N}                                   -> {"ok":true,"id":N,"state":"...", ...}
///   {"op":"result", "id":N, "wait":bool?}                     -> {"ok":true,"id":N,"manifest":{...}}
///   {"op":"cancel", "id":N}                                   -> {"ok":true,"id":N,"state":"cancelled"}
///   {"op":"stats"}                                            -> {"ok":true,"cache":{...},"runs":{...}, ...}
///   {"op":"shutdown"}                                         -> {"ok":true,"draining":N}
///
/// This header also owns the *sandbox rule* for network-supplied scenario
/// specs: a trace path submitted over the socket must stay inside the
/// server's sandbox root — out-of-tree paths (absolute, or escaping via
/// ..) are rejected with a structured error, never opened.
#pragma once

#include <cstdint>
#include <string>

#include "exp/scenario_spec.hpp"
#include "obs/json_reader.hpp"

namespace mcsim::serve {

/// Machine-readable error codes (the `error.code` field). Stable strings —
/// clients and the serve-smoke CI job match on them.
inline constexpr const char* kErrBadJson = "bad-json";
inline constexpr const char* kErrBadRequest = "bad-request";
inline constexpr const char* kErrInvalidScenario = "invalid-scenario";
inline constexpr const char* kErrSandbox = "sandbox-violation";
inline constexpr const char* kErrUnknownRun = "unknown-run";
inline constexpr const char* kErrRunFailed = "run-failed";
inline constexpr const char* kErrRunCancelled = "run-cancelled";
inline constexpr const char* kErrNotCancellable = "not-cancellable";
inline constexpr const char* kErrShuttingDown = "shutting-down";

/// What a request asks for.
enum class Op : std::uint8_t { kSubmit, kStatus, kResult, kCancel, kStats, kShutdown };

const char* op_name(Op op);

/// A parsed, validated request. `spec` is populated for kSubmit only.
struct Request {
  Op op = Op::kStats;
  exp::ScenarioSpec spec;
  std::string name;      ///< submit: optional client-chosen label
  std::uint64_t id = 0;  ///< status/result/cancel
  bool wait = true;      ///< result: block until the run reaches a terminal state
};

/// Thrown by parse_request on any protocol violation; `code` is one of the
/// kErr* strings above and the message is safe to echo to the client.
class ProtocolError : public std::runtime_error {
 public:
  ProtocolError(std::string code, const std::string& message)
      : std::runtime_error(message), code_(std::move(code)) {}
  [[nodiscard]] const std::string& code() const { return code_; }

 private:
  std::string code_;
};

/// Parse one request line. This is THE trust boundary: malformed JSON,
/// unknown ops, missing/mistyped fields, invalid scenario specs and
/// out-of-sandbox trace paths all surface as ProtocolError (-> a
/// structured error response), never as a crash. `sandbox_root` is the
/// directory trace paths must resolve under (empty = reject all trace
/// specs).
Request parse_request(const std::string& line, const std::string& sandbox_root);

/// Resolve `path` against `root` and require the result to stay inside it.
/// Returns the joined, lexically normalized path. Throws ProtocolError
/// (kErrSandbox) for absolute paths and any path whose normal form escapes
/// the root — the rule is lexical (no symlink chasing): the daemon serves
/// whatever the operator parked under the root, nothing else.
std::string sandboxed_path(const std::string& root, const std::string& path);

// -- response builders ------------------------------------------------------
// Responses are compact single-line JSON (the framing is one line per
// message, so the pretty-printing obs::JsonWriter cannot be used here).

/// `{"ok":false,"error":{"code":...,"message":...}}`
std::string error_response(const std::string& code, const std::string& message);

/// `{"ok":true, <body>}` — `body` is a pre-rendered, comma-led fragment
/// ("" for a bare ok). Prefer the typed helpers below.
std::string ok_response(const std::string& body);

/// Render a parsed JSON value compactly (no whitespace), preserving number
/// spellings verbatim — embedding a manifest in a response line keeps every
/// double bit-exact through the extra parse/serialize hop.
std::string compact_json(const obs::JsonValue& value);

/// JSON string literal (quotes + escaping) for response fragments.
std::string json_string(const std::string& text);

}  // namespace mcsim::serve
