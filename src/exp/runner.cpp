#include "exp/runner.hpp"

#include <condition_variable>
#include <exception>
#include <limits>
#include <mutex>
#include <thread>

#include "util/assert.hpp"

namespace mcsim::exp {

// Workers live for the Runner's lifetime. All batch state sits behind one
// mutex and workers claim one index per lock acquisition; a task here is an
// entire simulation run (milliseconds at the least), so dispatch cost is
// noise and the fully-locked design is trivially data-race-free. run()
// cannot return before every in-flight task has reported back (finished ==
// count requires each claimant's increment, taken under the lock), so the
// borrowed `task` pointer never dangles.
struct Runner::Impl {
  std::mutex mutex;
  std::condition_variable work_ready;
  std::condition_variable batch_done;
  std::vector<std::thread> workers;

  // Current batch; null task means idle. All guarded by mutex.
  const std::function<void(std::size_t)>* task = nullptr;
  std::size_t count = 0;
  std::size_t next_index = 0;
  std::size_t finished = 0;
  bool shutting_down = false;

  // First failure by task order: parallel batches may hit several.
  std::size_t error_index = std::numeric_limits<std::size_t>::max();
  std::exception_ptr error;

  void worker_loop() {
    std::unique_lock<std::mutex> lock(mutex);
    for (;;) {
      work_ready.wait(lock, [&] {
        return shutting_down || (task != nullptr && next_index < count);
      });
      if (task == nullptr || next_index >= count) {
        if (shutting_down) return;
        continue;
      }
      const std::size_t i = next_index++;
      const auto* batch_task = task;
      lock.unlock();
      std::exception_ptr failure;
      try {
        (*batch_task)(i);
      } catch (...) {
        failure = std::current_exception();
      }
      lock.lock();
      if (failure && i < error_index) {
        error_index = i;
        error = failure;
      }
      if (++finished == count) batch_done.notify_all();
    }
  }
};

Runner::Runner(unsigned jobs) : impl_(nullptr), jobs_(jobs == 0 ? default_jobs() : jobs) {
  if (jobs_ == 1) return;  // inline runner: no threads at all
  impl_ = new Impl;
  impl_->workers.reserve(jobs_);
  for (unsigned i = 0; i < jobs_; ++i) {
    impl_->workers.emplace_back([this] { impl_->worker_loop(); });
  }
}

Runner::~Runner() {
  if (impl_ == nullptr) return;
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->shutting_down = true;
  }
  impl_->work_ready.notify_all();
  for (auto& worker : impl_->workers) worker.join();
  delete impl_;
}

unsigned Runner::jobs() const { return jobs_; }

unsigned Runner::default_jobs() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

void Runner::run(std::size_t count, const std::function<void(std::size_t)>& task) {
  if (count == 0) return;
  if (impl_ == nullptr) {  // serial path: identical to the historical loops
    for (std::size_t i = 0; i < count; ++i) task(i);
    return;
  }
  std::unique_lock<std::mutex> lock(impl_->mutex);
  MCSIM_REQUIRE(impl_->task == nullptr, "Runner::run is not reentrant");
  impl_->task = &task;
  impl_->count = count;
  impl_->next_index = 0;
  impl_->finished = 0;
  impl_->error_index = std::numeric_limits<std::size_t>::max();
  impl_->error = nullptr;
  impl_->work_ready.notify_all();
  impl_->batch_done.wait(lock, [&] { return impl_->finished == impl_->count; });
  impl_->task = nullptr;
  if (impl_->error) {
    std::exception_ptr error = impl_->error;
    impl_->error = nullptr;
    lock.unlock();
    std::rethrow_exception(error);
  }
}

}  // namespace mcsim::exp
