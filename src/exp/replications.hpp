// Independent replications: run the same scenario/load R times with
// different seeds and combine the per-run means into a replication-level
// confidence interval. Complements the single-run batch-means CI — the
// replication CI is unbiased by residual autocorrelation and is what a
// careful study quotes for headline numbers.
#pragma once

#include <cstdint>
#include <vector>

#include "exp/scenario.hpp"
#include "stats/confidence.hpp"

namespace mcsim {

namespace exp {
struct ScenarioSpec;
}  // namespace exp

struct ReplicationResult {
  /// Per-replication mean responses (one entry per stable replication).
  std::vector<double> replication_means;
  /// Replications that went unstable (excluded from the CI).
  std::uint32_t unstable_replications = 0;
  /// CI over the replication means.
  ConfidenceInterval response_ci;
  /// Pooled mean busy fraction over stable replications.
  double mean_busy_fraction = 0.0;

  [[nodiscard]] std::uint32_t stable_replications() const {
    return static_cast<std::uint32_t>(replication_means.size());
  }
};

/// Run `replications` independent runs (seeds base_seed, base_seed+1, ...),
/// fanned out over `parallelism` worker threads (1 = serial, 0 = all
/// hardware threads). Results are bit-identical for every parallelism level:
/// each replication is fully determined by its seed and the per-replication
/// statistics are always folded together in replication order.
ReplicationResult run_replications(const PaperScenario& scenario,
                                   double target_gross_utilization,
                                   std::uint64_t jobs_per_replication,
                                   std::uint32_t replications,
                                   std::uint64_t base_seed = 1,
                                   unsigned parallelism = 1);

/// Replication set described entirely by a spec (mode kReplications):
/// utilization, jobs, replication count, base seed and parallelism all come
/// from the spec; replication r runs with seed spec.seed + r through
/// exp::to_simulation_config. The PaperScenario overload is a thin
/// translator onto this one.
ReplicationResult run_replications(const exp::ScenarioSpec& spec);

}  // namespace mcsim
