// Utilization sweeps: the response-time-vs-utilization curves of
// Figs. 3, 5, 6 and 7. For each target gross utilization on a grid, one
// steady-state run is made; the sweep stops early once a point is unstable
// (every higher point would be too), which is how the curves' vertical
// asymptotes — the maximal utilizations — appear.
//
// With parallelism > 1 all grid points are run speculatively in parallel and
// the series is truncated after the first unstable point; because every
// point is an independent run keyed only by (scenario, utilization, seed),
// the surviving prefix is bit-identical to what the serial early-stop loop
// produces — the speculation only costs throwaway work beyond the knee.
#pragma once

#include <cstdint>
#include <vector>

#include "exp/scenario.hpp"

namespace mcsim {

namespace exp {
struct ScenarioSpec;
}  // namespace exp

struct SweepConfig {
  std::vector<double> target_utilizations;
  std::uint64_t jobs_per_point = 30000;
  std::uint64_t seed = 1;
  /// Worker threads for the sweep (1 = serial early-stop loop, 0 = all
  /// hardware threads, N > 1 = speculative parallel execution).
  unsigned parallelism = 1;

  /// Grid from `lo` to `hi` in steps of `step` (inclusive, fp-safe).
  static std::vector<double> grid(double lo, double hi, double step);
};

struct SweepPoint {
  double target_gross_utilization = 0.0;
  SimulationResult result;
};

struct SweepSeries {
  PaperScenario scenario;
  std::vector<SweepPoint> points;

  /// Highest target utilization with a stable result (0 if none).
  [[nodiscard]] double max_stable_utilization() const;
};

SweepSeries run_sweep(const PaperScenario& scenario, const SweepConfig& config);

/// Sweep described entirely by a spec (mode kSweep): grid, jobs per point,
/// seed and parallelism all come from the spec, and every point's config is
/// exp::to_simulation_config(spec, utilization) — the same path `mcsim run`
/// and manifest replay use. The PaperScenario overload above is a thin
/// translator onto this one.
SweepSeries run_sweep(const exp::ScenarioSpec& spec);

}  // namespace mcsim
