// Utilization sweeps: the response-time-vs-utilization curves of
// Figs. 3, 5, 6 and 7. For each target gross utilization on a grid, one
// steady-state run is made; the sweep stops early once a point is unstable
// (every higher point would be too), which is how the curves' vertical
// asymptotes — the maximal utilizations — appear.
#pragma once

#include <cstdint>
#include <vector>

#include "exp/scenario.hpp"

namespace mcsim {

struct SweepConfig {
  std::vector<double> target_utilizations;
  std::uint64_t jobs_per_point = 30000;
  std::uint64_t seed = 1;

  /// Grid from `lo` to `hi` in steps of `step` (inclusive, fp-safe).
  static std::vector<double> grid(double lo, double hi, double step);
};

struct SweepPoint {
  double target_gross_utilization = 0.0;
  SimulationResult result;
};

struct SweepSeries {
  PaperScenario scenario;
  std::vector<SweepPoint> points;

  /// Highest target utilization with a stable result (0 if none).
  [[nodiscard]] double max_stable_utilization() const;
};

SweepSeries run_sweep(const PaperScenario& scenario, const SweepConfig& config);

}  // namespace mcsim
