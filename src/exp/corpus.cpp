#include "exp/corpus.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string_view>

#include "core/engine.hpp"
#include "exp/manifest.hpp"
#include "exp/scenario_spec.hpp"
#include "obs/json.hpp"
#include "obs/json_reader.hpp"
#include "trace/swf_stream.hpp"
#include "util/assert.hpp"
#include "workload/trace_workload.hpp"

namespace mcsim::exp {

namespace fs = std::filesystem;

namespace {

/// Clusters the corpus machine is carved into: the base layout's count
/// when one was given, else the policy default (single cluster for SC,
/// the 4-cluster DAS layout otherwise).
std::uint32_t corpus_cluster_count(const ScenarioSpec& base) {
  if (!base.cluster_sizes.empty()) {
    return static_cast<std::uint32_t>(base.cluster_sizes.size());
  }
  return base.policy == PolicyKind::kSC ? 1u : 4u;
}

/// The per-log spec the corpus runner executes: the base policy stack on a
/// machine sized from the log's own header, replaying the log at the
/// arrival scale that offers `options.utilization`. Fills `facts` with the
/// sizing decisions for the report table.
ScenarioSpec corpus_log_spec(const ScenarioSpec& base, const std::string& log_path,
                             const CorpusOptions& options, const SwfScan& scan,
                             CorpusLogVerdict& facts) {
  const std::uint32_t clusters = corpus_cluster_count(base);
  const std::int64_t declared = scan.header.declared_processors();
  const std::uint64_t width = declared > 0
                                  ? static_cast<std::uint64_t>(declared)
                                  : scan.summary.max_processors;
  MCSIM_REQUIRE(width > 0, "corpus: " + log_path +
                               " declares no machine and has no usable job "
                               "to size one from");
  const std::uint64_t per_cluster = (width + clusters - 1) / clusters;

  facts.total_records = scan.summary.total_records;
  facts.usable_records = scan.summary.usable_records;
  facts.header_processors = declared > 0 ? static_cast<std::uint64_t>(declared) : 0;
  facts.machine_processors = static_cast<std::uint32_t>(per_cluster * clusters);

  ScenarioSpec spec = base;
  spec.name = "corpus " + fs::path(log_path).filename().string();
  spec.mode = RunMode::kPoint;
  spec.trace_path = log_path;
  spec.trace_lookahead = options.lookahead;
  spec.trace_whole_file = options.whole_file;
  spec.cluster_sizes.assign(clusters, static_cast<std::uint32_t>(per_cluster));
  spec.trace_scale = trace_scale_for_utilization(
      scan.summary, facts.machine_processors, options.utilization);
  facts.arrival_scale = spec.trace_scale;
  return spec;
}

void write_summary_file(std::ostream& out, const CorpusLogVerdict& facts,
                        const std::string& observation_json) {
  const obs::JsonValue observed = obs::parse_json(observation_json);
  obs::JsonWriter json(out);
  json.begin_object();
  json.key("schema").value("mcsim-corpus-summary");
  json.key("schema_version").value(kCorpusSummarySchemaVersion);
  json.key("log").value(facts.log_file);
  json.key("digest").value(observation_digest(observed));
  json.key("provenance").begin_object();
  json.key("git_describe").value(git_describe());
  json.key("generated_by").value("mcsim replay --corpus --update-goldens");
  json.end_object();
  json.key("observed");
  write_parsed_json(json, observed);
  json.end_object();
  out << '\n';
}

CorpusLogVerdict run_one(const ScenarioSpec& base, const fs::path& log_path,
                         const CorpusOptions& options) {
  CorpusLogVerdict verdict;
  verdict.log_file = log_path.filename().string();

  std::string observation;
  try {
    observation =
        corpus_log_observation(base, log_path.string(), options, &verdict);
  } catch (const std::exception& error) {
    verdict.status = VerifyStatus::kError;
    verdict.detail = error.what();
    return verdict;
  }

  if (options.golden_mode == CorpusGoldenMode::kNone) {
    verdict.status = VerifyStatus::kPass;
    verdict.detail = observation_digest(obs::parse_json(observation));
    return verdict;
  }

  const std::string summary_path =
      corpus_summary_path_for(options.golden_dir, verdict.log_file);

  if (options.golden_mode == CorpusGoldenMode::kUpdate) {
    std::ofstream out(summary_path);
    if (!out) {
      verdict.status = VerifyStatus::kError;
      verdict.detail = "cannot open " + summary_path;
      return verdict;
    }
    write_summary_file(out, verdict, observation);
    verdict.status = VerifyStatus::kUpdated;
    verdict.detail = observation_digest(obs::parse_json(observation));
    return verdict;
  }

  if (!fs::exists(summary_path)) {
    verdict.status = VerifyStatus::kMissingGolden;
    verdict.detail = "no summary at " + summary_path +
                     " (run `mcsim replay --corpus ... --update-goldens`)";
    return verdict;
  }

  obs::JsonValue document;
  try {
    document = obs::parse_json_file(summary_path);
  } catch (const std::exception& error) {
    verdict.status = VerifyStatus::kFail;
    verdict.detail = error.what();
    return verdict;
  }
  const obs::JsonValue* schema =
      document.is_object() ? document.find("schema") : nullptr;
  const obs::JsonValue* observed =
      document.is_object() ? document.find("observed") : nullptr;
  const obs::JsonValue* digest =
      document.is_object() ? document.find("digest") : nullptr;
  if (schema == nullptr || !schema->is_string() ||
      schema->as_string() != "mcsim-corpus-summary" || observed == nullptr ||
      digest == nullptr || !digest->is_string()) {
    verdict.status = VerifyStatus::kFail;
    verdict.detail = summary_path + " is not a corpus summary document";
    return verdict;
  }

  const obs::JsonValue got = obs::parse_json(observation);
  const CompareOutcome outcome =
      compare_observations(*observed, got, GoldenOptions{});
  if (!outcome.match) {
    verdict.status = VerifyStatus::kFail;
    verdict.detail = outcome.first.describe();
    return verdict;
  }
  // Same tamper seal as the scenario goldens: a hand-edited digest (or a
  // reformatted file) fails loudly even when the fields still match.
  const std::string stored_seal = observation_digest(*observed);
  if (digest->as_string() != stored_seal) {
    verdict.status = VerifyStatus::kFail;
    verdict.detail = "summary digest seal broken: file says " +
                     digest->as_string() + ", content hashes to " + stored_seal +
                     " (regenerate with --update-goldens)";
    return verdict;
  }
  verdict.status = VerifyStatus::kPass;
  verdict.detail = stored_seal;
  return verdict;
}

}  // namespace

bool CorpusReport::ok() const {
  return std::all_of(verdicts.begin(), verdicts.end(), [](const CorpusLogVerdict& v) {
    return v.status == VerifyStatus::kPass || v.status == VerifyStatus::kUpdated;
  });
}

std::string corpus_summary_path_for(const std::string& golden_dir,
                                    const std::string& log_file) {
  const std::string stem = fs::path(log_file).stem().string();
  return (fs::path(golden_dir) / (stem + ".summary.json")).string();
}

std::string corpus_log_observation(const ScenarioSpec& base,
                                   const std::string& log_path,
                                   const CorpusOptions& options,
                                   CorpusLogVerdict* facts) {
  const SwfScan scan = scan_swf_file(log_path);
  CorpusLogVerdict local;
  CorpusLogVerdict& out_facts = facts != nullptr ? *facts : local;
  const ScenarioSpec spec =
      corpus_log_spec(base, log_path, options, scan, out_facts);
  validate(spec);

  MulticlusterSimulation simulation(to_simulation_config(spec));
  const SimulationResult result = simulation.run();

  std::ostringstream text;
  obs::JsonWriter json(text);
  json.begin_object();
  json.key("log").value(fs::path(log_path).filename().string());
  json.key("records").begin_object();
  json.key("total").value(out_facts.total_records);
  json.key("usable").value(out_facts.usable_records);
  json.end_object();
  json.key("header_processors").value(out_facts.header_processors);
  json.key("machine").begin_object();
  json.key("clusters")
      .value(static_cast<std::uint64_t>(spec.cluster_sizes.size()));
  json.key("cluster_size")
      .value(static_cast<std::uint64_t>(spec.cluster_sizes.front()));
  json.end_object();
  json.key("target_utilization").value(options.utilization);
  json.key("arrival_scale").value(spec.trace_scale);
  json.key("result");
  write_result_json(json, result);
  json.key("end_time").value(result.end_time);
  json.key("events_executed").value(result.events_executed);
  json.end_object();
  text << '\n';
  return text.str();
}

CorpusReport run_corpus(const ScenarioSpec& base, const std::string& corpus_dir,
                        const CorpusOptions& options) {
  MCSIM_REQUIRE(fs::is_directory(corpus_dir),
                "corpus: " + corpus_dir + " is not a directory");
  MCSIM_REQUIRE(options.golden_mode == CorpusGoldenMode::kNone ||
                    !options.golden_dir.empty(),
                "corpus: golden check/update needs a golden directory");

  std::vector<fs::path> logs;
  for (const auto& entry : fs::directory_iterator(corpus_dir)) {
    if (entry.is_regular_file() && entry.path().extension() == ".swf") {
      logs.push_back(entry.path());
    }
  }
  std::sort(logs.begin(), logs.end());
  MCSIM_REQUIRE(!logs.empty(), "corpus: no .swf logs under " + corpus_dir);

  CorpusReport report;
  report.verdicts.reserve(logs.size());
  for (const fs::path& log : logs) {
    report.verdicts.push_back(run_one(base, log, options));
  }

  // Stale summaries (a golden with no log) rot silently otherwise: flag
  // them in check mode exactly like the scenario-verify driver does.
  if (options.golden_mode == CorpusGoldenMode::kCheck &&
      fs::is_directory(options.golden_dir)) {
    for (const auto& entry : fs::directory_iterator(options.golden_dir)) {
      if (!entry.is_regular_file()) continue;
      const std::string name = entry.path().filename().string();
      constexpr std::string_view kSuffix = ".summary.json";
      if (name.size() <= kSuffix.size() ||
          name.compare(name.size() - kSuffix.size(), kSuffix.size(), kSuffix) != 0) {
        continue;
      }
      const std::string stem = name.substr(0, name.size() - kSuffix.size());
      const bool has_log = std::any_of(logs.begin(), logs.end(), [&](const fs::path& log) {
        return log.stem().string() == stem;
      });
      if (has_log) continue;
      CorpusLogVerdict orphan;
      orphan.log_file = stem + ".swf";
      orphan.status = VerifyStatus::kOrphanGolden;
      orphan.detail = entry.path().string() + " has no log in " + corpus_dir;
      report.verdicts.push_back(orphan);
    }
  }
  return report;
}

}  // namespace mcsim::exp
