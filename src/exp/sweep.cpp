#include "exp/sweep.hpp"

#include "util/logging.hpp"
#include "util/strings.hpp"

namespace mcsim {

std::vector<double> SweepConfig::grid(double lo, double hi, double step) {
  std::vector<double> points;
  for (double u = lo; u <= hi + step * 1e-9; u += step) points.push_back(u);
  return points;
}

double SweepSeries::max_stable_utilization() const {
  double best = 0.0;
  for (const auto& point : points) {
    if (!point.result.unstable && point.target_gross_utilization > best) {
      best = point.target_gross_utilization;
    }
  }
  return best;
}

SweepSeries run_sweep(const PaperScenario& scenario, const SweepConfig& config) {
  SweepSeries series;
  series.scenario = scenario;
  for (double util : config.target_utilizations) {
    SimulationConfig sim_config =
        make_paper_config(scenario, util, config.jobs_per_point, config.seed);
    SweepPoint point;
    point.target_gross_utilization = util;
    point.result = run_simulation(sim_config);
    MCSIM_LOG(kInfo) << scenario.label() << " @ rho=" << format_util(util)
                     << (point.result.unstable
                             ? " UNSTABLE"
                             : " mean response " + format_double(point.result.mean_response(), 1));
    const bool unstable = point.result.unstable;
    series.points.push_back(std::move(point));
    if (unstable) break;  // all higher loads are unstable too
  }
  return series;
}

}  // namespace mcsim
