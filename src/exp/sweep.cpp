#include "exp/sweep.hpp"

#include "exp/runner.hpp"
#include "exp/scenario_spec.hpp"
#include "util/assert.hpp"
#include "util/logging.hpp"
#include "util/strings.hpp"

namespace mcsim {

std::vector<double> SweepConfig::grid(double lo, double hi, double step) {
  // Generate by index: `u += step` accumulation drifts by ~n*eps*|u| and can
  // skip or duplicate the endpoint on fine grids (e.g. 100.0..100.5 by
  // 0.001). One multiply per point keeps the error at a single rounding.
  MCSIM_REQUIRE(step > 0.0, "grid step must be positive");
  std::vector<double> points;
  for (std::size_t i = 0;; ++i) {
    const double u = lo + static_cast<double>(i) * step;
    if (u > hi + step * 0.5) break;
    points.push_back(u);
  }
  return points;
}

double SweepSeries::max_stable_utilization() const {
  double best = 0.0;
  for (const auto& point : points) {
    if (!point.result.unstable && point.target_gross_utilization > best) {
      best = point.target_gross_utilization;
    }
  }
  return best;
}

namespace {

void log_point(const std::string& label, double util, const SimulationResult& result) {
  MCSIM_LOG(kInfo) << label << " @ rho=" << format_util(util)
                   << (result.unstable
                           ? " UNSTABLE"
                           : " mean response " + format_double(result.mean_response(), 1));
}

}  // namespace

SweepSeries run_sweep(const PaperScenario& scenario, const SweepConfig& config) {
  if (config.target_utilizations.empty()) {
    // An explicitly empty grid means "no points" — don't let the spec fall
    // back to its default generated grid.
    SweepSeries series;
    series.scenario = scenario;
    return series;
  }
  exp::ScenarioSpec spec = exp::ScenarioSpec::from_paper(scenario);
  spec.mode = exp::RunMode::kSweep;
  spec.utilization_grid = config.target_utilizations;
  spec.sim_jobs = config.jobs_per_point;
  spec.seed = config.seed;
  spec.parallelism = config.parallelism;
  return run_sweep(spec);
}

SweepSeries run_sweep(const exp::ScenarioSpec& spec) {
  SweepSeries series;
  series.scenario = spec.paper_scenario();
  const std::string label = spec.label();
  const std::vector<double> grid = spec.sweep_grid();
  // The shared --jobs budget covers runner workers times engine workers:
  // each fanned-out run's engine gets budget/N threads (inline at N ==
  // budget), so `--engine=parallel --jobs=N` never oversubscribes.
  const auto run_point = [&](std::size_t i, unsigned runner_jobs) {
    SimulationConfig config = exp::to_simulation_config(spec, grid[i]);
    config.engine_threads = spec.engine_threads_for(runner_jobs);
    return run_simulation(config);
  };

  if (spec.parallelism == 1) {
    // Serial early-stop loop: never simulates beyond the first unstable point.
    for (std::size_t i = 0; i < grid.size(); ++i) {
      SweepPoint point;
      point.target_gross_utilization = grid[i];
      point.result = run_point(i, 1);
      log_point(label, grid[i], point.result);
      const bool unstable = point.result.unstable;
      series.points.push_back(std::move(point));
      if (unstable) break;  // all higher loads are unstable too
    }
    return series;
  }

  // Speculative parallel sweep: run every grid point concurrently, then keep
  // the same prefix the serial loop would have produced. Each point depends
  // only on its own config, so the kept points are bit-identical.
  exp::Runner runner(spec.parallelism);
  auto results = runner.map(
      grid.size(), [&](std::size_t i) { return run_point(i, runner.jobs()); });
  for (std::size_t i = 0; i < results.size(); ++i) {
    SweepPoint point;
    point.target_gross_utilization = grid[i];
    point.result = std::move(results[i]);
    log_point(label, grid[i], point.result);
    const bool unstable = point.result.unstable;
    series.points.push_back(std::move(point));
    if (unstable) break;
  }
  return series;
}

}  // namespace mcsim
