#include "exp/manifest.hpp"

#include "cluster/placement.hpp"
#include "policy/scheduler.hpp"
#include "policy/scheduler_factory.hpp"
#include "exp/scenario_spec.hpp"
#include "obs/json.hpp"
#include "workload/request.hpp"

#ifndef MCSIM_GIT_DESCRIBE
#define MCSIM_GIT_DESCRIBE "unknown"
#endif

namespace mcsim {

const char* git_describe() { return MCSIM_GIT_DESCRIBE; }

namespace {

void write_stats(obs::JsonWriter& json, const RunningStats& stats) {
  json.begin_object();
  json.key("count").value(stats.count());
  json.key("mean").value(stats.mean());
  json.key("stddev").value(stats.stddev());
  json.key("min").value(stats.min());
  json.key("max").value(stats.max());
  json.end_object();
}

void write_config(obs::JsonWriter& json, const SimulationConfig& config) {
  json.begin_object();
  json.key("policy").value(policy_name(config.policy));
  json.key("cluster_sizes").begin_array();
  for (std::uint32_t size : config.cluster_sizes) {
    json.value(static_cast<std::uint64_t>(size));
  }
  json.end_array();
  if (!config.cluster_speeds.empty()) {
    json.key("cluster_speeds").begin_array();
    for (double speed : config.cluster_speeds) json.value(speed);
    json.end_array();
  }
  json.key("placement").value(placement_rule_name(config.placement));
  json.key("backfill").value(backfill_mode_name(config.backfill));
  json.key("discipline").value(queue_discipline_name(config.discipline));
  // Explicit-pipeline runs record their structural stages; alias-only runs
  // omit them, keeping pre-pipeline manifests byte-identical.
  if (config.pipeline) {
    json.key("queue").value(queue_structure_name(config.pipeline->structure));
    json.key("coallocation").value(coallocation_rule_name(config.pipeline->coallocation));
  }
  json.key("seed").value(config.seed);
  json.key("total_jobs").value(config.total_jobs);
  json.key("warmup_fraction").value(config.warmup_fraction);
  json.key("workload").begin_object();
  json.key("arrival_rate").value(config.workload.arrival_rate);
  json.key("component_limit")
      .value(static_cast<std::uint64_t>(config.workload.component_limit));
  json.key("num_clusters")
      .value(static_cast<std::uint64_t>(config.workload.num_clusters));
  json.key("extension_factor").value(config.workload.extension_factor);
  json.key("split_jobs").value(config.workload.split_jobs);
  json.key("request_type").value(request_type_name(config.workload.request_type));
  if (!config.workload.queue_weights.empty()) {
    json.key("queue_weights").begin_array();
    for (double weight : config.workload.queue_weights) json.value(weight);
    json.end_array();
  }
  json.end_object();
  json.end_object();
}

}  // namespace

void write_result_json(obs::JsonWriter& json, const SimulationResult& result) {
  json.begin_object();
  json.key("policy").value(result.policy);
  json.key("unstable").value(result.unstable);
  json.key("completed_jobs").value(result.completed_jobs);
  json.key("measured_jobs").value(result.measured_jobs);
  // The headline number. Printed with max_digits10, so parsing it back
  // with strtod recovers the identical double the engine computed — the
  // bit-exact anchor for trace round-trip verification.
  json.key("mean_response").value(result.mean_response());
  json.key("response").begin_object();
  json.key("all");
  write_stats(json, result.response_all);
  json.key("local");
  write_stats(json, result.response_local);
  json.key("global");
  write_stats(json, result.response_global);
  json.key("small");
  write_stats(json, result.response_small);
  json.key("medium");
  write_stats(json, result.response_medium);
  json.key("large");
  write_stats(json, result.response_large);
  json.key("ci95").begin_object();
  json.key("mean").value(result.response_ci.mean);
  json.key("halfwidth").value(result.response_ci.halfwidth);
  json.end_object();
  json.key("p95").value(result.response_p95);
  json.end_object();
  json.key("wait");
  write_stats(json, result.wait_all);
  json.key("slowdown");
  write_stats(json, result.slowdown_all);
  json.key("mean_queue_length").value(result.mean_queue_length);
  json.key("busy_fraction").value(result.busy_fraction);
  json.key("offered_gross_utilization").value(result.offered_gross_utilization);
  json.key("offered_net_utilization").value(result.offered_net_utilization);
  json.key("per_cluster_busy_fraction").begin_array();
  for (double fraction : result.per_cluster_busy_fraction) json.value(fraction);
  json.end_array();
  json.key("final_queue_lengths").begin_array();
  for (std::size_t length : result.final_queue_lengths) {
    json.value(static_cast<std::uint64_t>(length));
  }
  json.end_array();
  json.end_object();
}

void write_run_manifest(std::ostream& out, const SimulationConfig& config,
                        const SimulationResult& result,
                        const obs::MetricsRegistry* metrics, const ManifestInfo& info) {
  obs::JsonWriter json(out);
  json.begin_object();
  json.key("schema").value("mcsim-run-manifest");
  json.key("schema_version").value(kManifestSchemaVersion);

  json.key("provenance").begin_object();
  json.key("git_describe").value(git_describe());
  if (!info.command_line.empty()) json.key("command_line").value(info.command_line);
  json.key("seed").value(config.seed);
  // Which event core produced the run. Results are engine-invariant by
  // contract, so this is provenance, not configuration; serial is the
  // implied default, keeping pre-engine manifests byte-identical.
  if (config.engine != EngineKind::kSerial) {
    json.key("engine").value(engine_kind_name(config.engine));
  }
  json.end_object();

  json.key("clocks").begin_object();
  json.key("sim_end_time").value(result.end_time);
  json.key("wall_seconds").value(result.wall_seconds);
  json.key("events_executed").value(result.events_executed);
  json.key("events_per_second")
      .value(result.wall_seconds > 0.0
                 ? static_cast<double>(result.events_executed) / result.wall_seconds
                 : 0.0);
  json.end_object();

  json.key("config");
  write_config(json, config);
  json.key("result");
  write_result_json(json, result);

  if (info.scenario != nullptr) {
    json.key("scenario");
    exp::write_scenario_json(json, *info.scenario);
  }

  if (!info.trace_path.empty() || info.events_recorded > 0) {
    json.key("trace").begin_object();
    if (!info.trace_path.empty()) json.key("path").value(info.trace_path);
    json.key("records").value(info.trace_records);
    json.key("events_recorded").value(info.events_recorded);
    json.key("events_dropped").value(info.events_dropped);
    json.end_object();
  }

  if (metrics != nullptr) {
    json.key("metrics");
    metrics->write_json(json, result.end_time);
  }

  json.end_object();
  out << '\n';
}

}  // namespace mcsim
