#include "exp/scenario.hpp"

#include "util/strings.hpp"
#include "workload/das_workload.hpp"

namespace mcsim {

std::string PaperScenario::label() const {
  std::string label = policy_name(policy);
  if (policy != PolicyKind::kSC) label += " limit=" + std::to_string(component_limit);
  if (!balanced_queues) label += " unbalanced";
  label += limit_total_size_64 ? " DAS-s-64" : " DAS-s-128";
  return label;
}

namespace {

WorkloadConfig make_workload(const PaperScenario& scenario) {
  const bool single_cluster = is_single_cluster_policy(scenario.policy);
  WorkloadConfig workload{
      .size_distribution = scenario.limit_total_size_64 ? das_s_64() : das_s_128(),
      .service_distribution = das_t_900(),
      .component_limit = scenario.component_limit,
      .num_clusters = single_cluster ? 1u : das::kNumClusters,
      .extension_factor = scenario.extension_factor,
      .arrival_rate = 1.0,  // overwritten by the caller
      .queue_weights = {},
      .split_jobs = !single_cluster,
  };
  if (!single_cluster && !scenario.balanced_queues) {
    workload.queue_weights.assign(das::kUnbalancedWeights.begin(),
                                  das::kUnbalancedWeights.end());
  }
  return workload;
}

std::vector<std::uint32_t> make_layout(const PaperScenario& scenario) {
  if (is_single_cluster_policy(scenario.policy)) return {das::kTotalProcessors};
  return std::vector<std::uint32_t>(das::kNumClusters, das::kClusterSize);
}

}  // namespace

SimulationConfig make_paper_config(const PaperScenario& scenario,
                                   double target_gross_utilization, std::uint64_t total_jobs,
                                   std::uint64_t seed) {
  SimulationConfig config;
  config.policy = scenario.policy;
  config.cluster_sizes = make_layout(scenario);
  config.workload = make_workload(scenario);
  config.workload.arrival_rate = config.workload.rate_for_gross_utilization(
      target_gross_utilization, config.total_processors());
  config.placement = scenario.placement;
  config.seed = seed;
  config.total_jobs = total_jobs;
  return config;
}

SaturationConfig make_saturation_config(const PaperScenario& scenario,
                                        std::uint64_t total_completions, std::uint64_t seed) {
  SaturationConfig config;
  config.policy = scenario.policy;
  config.cluster_sizes = make_layout(scenario);
  config.workload = make_workload(scenario);
  config.placement = scenario.placement;
  config.seed = seed;
  config.total_completions = total_completions;
  return config;
}

}  // namespace mcsim
