#include "exp/scenario.hpp"

#include "exp/scenario_spec.hpp"

namespace mcsim {

std::string PaperScenario::label() const {
  std::string label = policy_name(policy);
  if (policy != PolicyKind::kSC) label += " limit=" + std::to_string(component_limit);
  if (!balanced_queues) label += " unbalanced";
  label += limit_total_size_64 ? " DAS-s-64" : " DAS-s-128";
  return label;
}

// Both helpers are thin translators onto the ScenarioSpec construction
// path — the single place workload/layout building lives now — so a
// PaperScenario run and the equivalent scenario file are bit-identical.

SimulationConfig make_paper_config(const PaperScenario& scenario,
                                   double target_gross_utilization, std::uint64_t total_jobs,
                                   std::uint64_t seed) {
  exp::ScenarioSpec spec = exp::ScenarioSpec::from_paper(scenario);
  spec.sim_jobs = total_jobs;
  spec.seed = seed;
  return exp::to_simulation_config(spec, target_gross_utilization);
}

SaturationConfig make_saturation_config(const PaperScenario& scenario,
                                        std::uint64_t total_completions, std::uint64_t seed) {
  exp::ScenarioSpec spec = exp::ScenarioSpec::from_paper(scenario);
  spec.mode = exp::RunMode::kSaturation;
  spec.saturation_completions = total_completions;
  spec.seed = seed;
  return exp::to_saturation_config(spec);
}

}  // namespace mcsim
