#include "exp/scenario_spec.hpp"

#include <algorithm>
#include <filesystem>
#include <ostream>
#include <thread>

#include "exp/sweep.hpp"
#include "obs/json.hpp"
#include "obs/json_reader.hpp"
#include "trace/swf.hpp"
#include "trace/swf_stream.hpp"
#include "util/assert.hpp"
#include "util/strings.hpp"
#include "workload/das_workload.hpp"
#include "workload/job_splitter.hpp"
#include "workload/trace_workload.hpp"

namespace mcsim::exp {

const char* run_mode_name(RunMode mode) {
  switch (mode) {
    case RunMode::kPoint: return "point";
    case RunMode::kSweep: return "sweep";
    case RunMode::kSaturation: return "saturation";
    case RunMode::kReplications: return "replications";
  }
  return "?";
}

RunMode parse_run_mode(const std::string& name) {
  const std::string lower = to_lower(name);
  if (lower == "point") return RunMode::kPoint;
  if (lower == "sweep") return RunMode::kSweep;
  if (lower == "saturation") return RunMode::kSaturation;
  if (lower == "replications") return RunMode::kReplications;
  MCSIM_REQUIRE(false, "unknown run mode: " + name +
                           " (expected point, sweep, saturation, or replications)");
  return RunMode::kPoint;
}

namespace {

// "none"/"aggressive"/"easy"/"conservative" — backfill_mode_name(kNone)
// prints "fcfs", which is ambiguous with the discipline key in a scenario
// file.
const char* backfill_json_name(BackfillMode mode) {
  switch (mode) {
    case BackfillMode::kNone: return "none";
    case BackfillMode::kAggressive: return "aggressive";
    case BackfillMode::kEasy: return "easy";
    case BackfillMode::kConservative: return "conservative";
  }
  return "?";
}

DiscreteDistribution size_distribution_for(const std::string& model) {
  if (model == "das-s-128") return das_s_128();
  if (model == "das-s-64") return das_s_64();
  MCSIM_REQUIRE(false, "scenario: unknown size_model \"" + model +
                           "\" (expected das-s-128 or das-s-64)");
  return das_s_128();
}

std::vector<std::uint32_t> effective_layout(const ScenarioSpec& spec) {
  if (!spec.cluster_sizes.empty()) return spec.cluster_sizes;
  if (is_single_cluster_policy(spec.policy)) return {das::kTotalProcessors};
  return std::vector<std::uint32_t>(das::kNumClusters, das::kClusterSize);
}

// The one workload-construction path. Field-for-field identical to what
// the historical PaperScenario helper produced for paper scenarios — the
// bit-identity of legacy CLI flags vs. scenario files rests on this.
WorkloadConfig make_workload(const ScenarioSpec& spec, std::size_t num_clusters) {
  const bool single_cluster = is_single_cluster_policy(spec.policy);
  WorkloadConfig workload{
      .size_distribution = size_distribution_for(spec.size_model),
      .service_distribution = das_t_900(),
      .component_limit = spec.component_limit,
      .num_clusters =
          single_cluster ? 1u : static_cast<std::uint32_t>(num_clusters),
      .extension_factor = spec.extension_factor,
      .arrival_rate = 1.0,  // overwritten by the caller
      .queue_weights = {},
      .split_jobs = !single_cluster,
  };
  workload.request_type = spec.request_type;
  if (!single_cluster) {
    if (!spec.queue_weights.empty()) {
      workload.queue_weights = spec.queue_weights;
    } else if (!spec.balanced_queues) {
      workload.queue_weights.assign(das::kUnbalancedWeights.begin(),
                                    das::kUnbalancedWeights.end());
    }
  }
  return workload;
}

}  // namespace

unsigned ScenarioSpec::engine_threads_for(unsigned runner_jobs) const {
  // One budget for both layers (docs/PARALLEL.md, "One worker budget"):
  // a lone run hands it all to the engine crew; runs fanned out across an
  // N-way Runner pool split it, bottoming out at 1 (inline, no threads).
  const unsigned budget =
      parallelism != 0 ? parallelism
                       : std::max(1U, std::thread::hardware_concurrency());
  return std::max(1U, budget / std::max(1U, runner_jobs));
}

std::string ScenarioSpec::label() const {
  if (!name.empty()) return name;
  std::string label = paper_scenario().label();
  if (queue_structure) {
    label += std::string(" ") + queue_structure_short_name(*queue_structure);
  }
  if (coallocation) label += " " + coallocation_rule_name(*coallocation);
  if (backfill != BackfillMode::kNone) {
    label += std::string(" ") + backfill_mode_name(backfill);
  }
  if (discipline != QueueDiscipline::kFcfs) {
    label += std::string(" ") + queue_discipline_name(discipline);
  }
  return label;
}

PipelineSpec ScenarioSpec::pipeline() const {
  PipelineSpec spec = expand_policy(policy, placement, backfill, discipline);
  if (queue_structure) spec.structure = *queue_structure;
  if (coallocation) spec.coallocation = *coallocation;
  return spec;
}

PaperScenario ScenarioSpec::paper_scenario() const {
  PaperScenario scenario;
  scenario.policy = policy;
  scenario.component_limit = component_limit;
  scenario.balanced_queues = balanced_queues;
  scenario.limit_total_size_64 = (size_model == "das-s-64");
  scenario.extension_factor = extension_factor;
  scenario.placement = placement;
  return scenario;
}

std::vector<double> ScenarioSpec::sweep_grid() const {
  if (!utilization_grid.empty()) return utilization_grid;
  return SweepConfig::grid(sweep_from, sweep_to, sweep_step);
}

ScenarioSpec ScenarioSpec::from_paper(const PaperScenario& scenario) {
  ScenarioSpec spec;
  spec.policy = scenario.policy;
  spec.component_limit = scenario.component_limit;
  spec.balanced_queues = scenario.balanced_queues;
  spec.size_model = scenario.limit_total_size_64 ? "das-s-64" : "das-s-128";
  spec.extension_factor = scenario.extension_factor;
  spec.placement = scenario.placement;
  return spec;
}

void validate(const ScenarioSpec& spec) {
  size_distribution_for(spec.size_model);  // throws on unknown models
  MCSIM_REQUIRE(spec.component_limit > 0, "scenario: component_limit must be positive");
  MCSIM_REQUIRE(spec.extension_factor >= 1.0,
                "scenario: extension_factor must be >= 1");
  for (std::uint32_t size : spec.cluster_sizes) {
    MCSIM_REQUIRE(size > 0, "scenario: every cluster needs at least one processor");
  }
  const auto layout = effective_layout(spec);
  const bool single_cluster = is_single_cluster_policy(spec.policy);
  if (single_cluster) {
    MCSIM_REQUIRE(layout.size() == 1, "scenario: SC runs on a single cluster");
    MCSIM_REQUIRE(spec.queue_weights.empty(),
                  "scenario: SC has one queue; queue_weights does not apply");
  } else {
    MCSIM_REQUIRE(
        spec.queue_weights.empty() || spec.queue_weights.size() == layout.size(),
        "scenario: queue_weights has " + std::to_string(spec.queue_weights.size()) +
            " entries for " + std::to_string(layout.size()) + " clusters");
    MCSIM_REQUIRE(spec.balanced_queues || !spec.queue_weights.empty() ||
                      layout.size() == das::kNumClusters,
                  "scenario: the derived unbalanced weights are the DAS "
                  "40/20/20/20 split; give explicit queue_weights for a " +
                      std::to_string(layout.size()) + "-cluster system");
  }
  double weight_sum = 0.0;
  for (double weight : spec.queue_weights) {
    MCSIM_REQUIRE(weight >= 0.0, "scenario: queue_weights must be non-negative");
    weight_sum += weight;
  }
  MCSIM_REQUIRE(spec.queue_weights.empty() || weight_sum > 0.0,
                "scenario: queue_weights must not all be zero");
  MCSIM_REQUIRE(
      spec.cluster_speeds.empty() || spec.cluster_speeds.size() == layout.size(),
      "scenario: cluster_speeds has " + std::to_string(spec.cluster_speeds.size()) +
          " entries for " + std::to_string(layout.size()) + " clusters");
  for (double speed : spec.cluster_speeds) {
    MCSIM_REQUIRE(speed > 0.0, "scenario: cluster speeds must be positive");
  }
  // Stage compatibility is the pipeline's own rule set: backfilling needs
  // the single global queue (so LS/LP reject it unless the structure is
  // overridden), a component limit must be >= 1, and so on. Keep the legacy
  // wording for the common case — a policy alias with no overrides asking
  // for backfill — so existing error-message contracts hold.
  const PipelineSpec pipeline = spec.pipeline();
  if (!spec.queue_structure &&
      pipeline.structure != QueueStructure::kSingleGlobal) {
    MCSIM_REQUIRE(spec.backfill == BackfillMode::kNone,
                  "scenario: backfilling applies to the single-queue policies (GS, SC)");
  }
  validate_pipeline(pipeline);
  if (pipeline.coallocation.kind == CoAllocationRule::Kind::kComponentLimit &&
      !spec.is_trace()) {
    // Feasibility: jobs split into more components than the limit must fit
    // whole on one cluster, or they can never start and the run stalls.
    const std::uint32_t max_components = std::min(
        spec.component_limit, static_cast<std::uint32_t>(layout.size()));
    if (pipeline.coallocation.component_limit < max_components) {
      const std::uint32_t max_total = spec.size_model == "das-s-64" ? 64u : 128u;
      const std::uint32_t biggest = *std::max_element(layout.begin(), layout.end());
      MCSIM_REQUIRE(max_total <= biggest,
                    "scenario: coallocation limit-" +
                        std::to_string(pipeline.coallocation.component_limit) +
                        " forces jobs of up to " + std::to_string(max_total) +
                        " processors whole onto one cluster, but the largest "
                        "cluster has " + std::to_string(biggest));
    }
  }
  if (!spec.is_trace()) {
    // Split feasibility: the canonical split of the largest synthetic job
    // must be placeable on an *empty* system — the i-th largest component
    // on the i-th largest cluster (components go to distinct clusters).
    // Otherwise that job can never start and permanently stalls the run at
    // any load (e.g. das-s-128 with limit 16 on 64/32/16/16 splits 128
    // into 32+32+32+32, and the 16-processor clusters never fit a 32).
    const std::uint32_t max_total = spec.size_model == "das-s-64" ? 64u : 128u;
    const std::vector<std::uint32_t> components = split_job(
        max_total, spec.component_limit, static_cast<std::uint32_t>(layout.size()));
    std::vector<std::uint32_t> capacities(layout.begin(), layout.end());
    std::sort(capacities.rbegin(), capacities.rend());
    for (std::size_t i = 0; i < components.size(); ++i) {
      MCSIM_REQUIRE(components[i] <= capacities[i],
                    "scenario: the largest job (" + std::to_string(max_total) +
                        " processors) splits into a " +
                        std::to_string(components[i]) +
                        "-processor component that no remaining cluster can "
                        "hold even when idle — it would stall the run at any "
                        "load (raise component_limit or the cluster sizes)");
    }
  }
  MCSIM_REQUIRE(spec.warmup_fraction >= 0.0 && spec.warmup_fraction < 1.0,
                "scenario: warmup_fraction must be in [0,1)");
  MCSIM_REQUIRE(spec.batch_count > 0, "scenario: batch_count must be positive");
  if (spec.is_trace()) {
    MCSIM_REQUIRE(spec.trace_scale > 0.0,
                  "scenario: trace arrival_scale must be positive");
    MCSIM_REQUIRE(spec.mode == RunMode::kPoint || spec.mode == RunMode::kSweep,
                  "scenario: trace replay supports point and sweep modes only "
                  "(saturation ignores arrival times, and a recorded trace has "
                  "no independent randomness to replicate)");
    MCSIM_REQUIRE(spec.mode != RunMode::kSweep || spec.trace_scale == 1.0,
                  "scenario: a trace sweep derives the arrival scale from each "
                  "target utilization; leave arrival_scale at 1");
    MCSIM_REQUIRE(spec.request_type == RequestType::kUnordered,
                  "scenario: trace replay supports unordered requests only "
                  "(the log does not record per-cluster orderings)");
  } else {
    MCSIM_REQUIRE(spec.trace_lookahead == 0 && !spec.trace_whole_file,
                  "scenario: lookahead/whole_file apply to trace replay only");
  }
  switch (spec.mode) {
    case RunMode::kPoint:
    case RunMode::kReplications:
      MCSIM_REQUIRE(spec.utilization > 0.0,
                    "scenario: utilization must be positive");
      MCSIM_REQUIRE(spec.sim_jobs > 0, "scenario: sim_jobs must be positive");
      if (spec.mode == RunMode::kReplications) {
        MCSIM_REQUIRE(spec.replications > 0,
                      "scenario: replications must be positive");
      }
      break;
    case RunMode::kSweep: {
      const auto grid = spec.sweep_grid();  // throws on a non-positive step
      MCSIM_REQUIRE(!grid.empty(), "scenario: the sweep grid is empty");
      for (double utilization : grid) {
        MCSIM_REQUIRE(utilization > 0.0,
                      "scenario: sweep utilizations must be positive");
      }
      MCSIM_REQUIRE(spec.sim_jobs > 0, "scenario: sim_jobs must be positive");
      break;
    }
    case RunMode::kSaturation:
      MCSIM_REQUIRE(spec.saturation_completions > 0,
                    "scenario: saturation completions must be positive");
      MCSIM_REQUIRE(spec.saturation_backlog > 0,
                    "scenario: saturation backlog must be positive");
      MCSIM_REQUIRE(spec.cluster_speeds.empty(),
                    "scenario: the saturation estimator does not support "
                    "heterogeneous speeds");
      break;
  }
}

SimulationConfig to_simulation_config(const ScenarioSpec& spec) {
  return to_simulation_config(spec, spec.utilization);
}

ResolvedTrace resolve_trace_from_file(const std::string& path) {
  ResolvedTrace resolved;
  resolved.scan = scan_swf_file(path);
  resolved.open_source = [path]() -> std::unique_ptr<TraceRecordSource> {
    return std::make_unique<SwfFileStream>(path);
  };
  return resolved;
}

SimulationConfig to_simulation_config(const ScenarioSpec& spec, double utilization) {
  return to_simulation_config(spec, utilization, nullptr);
}

SimulationConfig to_simulation_config(const ScenarioSpec& spec, double utilization,
                                      const TraceResolver& resolve_trace) {
  validate(spec);
  SimulationConfig config;
  config.policy = spec.policy;
  config.cluster_sizes = effective_layout(spec);
  config.cluster_speeds = spec.cluster_speeds;
  config.workload = make_workload(spec, config.cluster_sizes.size());
  if (spec.is_trace()) {
    // Pre-scan the log in one O(1)-memory streaming pass: it validates
    // every line (including header directives), counts the replayable
    // records, and yields the aggregate facts scale derivation needs —
    // without materialising the records. Both delivery modes below share
    // this scan, so the derived arrival scale is bit-identical between
    // them. A custom resolver (the serve layer's warm cache) supplies the
    // scan from memory instead of re-reading the file; the whole-file test
    // hook always goes to disk — it exists to measure exactly that.
    const ResolvedTrace resolved = (resolve_trace && !spec.trace_whole_file)
                                       ? resolve_trace(spec.trace_path)
                                       : resolve_trace_from_file(spec.trace_path);
    const SwfScan& scan = resolved.scan;
    MCSIM_REQUIRE(scan.summary.total_records > 0,
                  "scenario: trace " + spec.trace_path +
                      " has no job records (only " +
                      std::to_string(scan.header.comments.size()) +
                      " header/comment line(s) — is this a bare SWF header?)");
    MCSIM_REQUIRE(scan.summary.usable_records > 0,
                  "scenario: trace " + spec.trace_path +
                      " has no replayable records (all " +
                      std::to_string(scan.summary.total_records) +
                      " records are cancelled, zero-length or undated)");
    auto trace = std::make_shared<TraceWorkloadConfig>();
    // The splitting parameters mirror what the synthetic workload would
    // have used, so a trace exported from a run replays with identical
    // component tuples.
    trace->component_limit = config.workload.component_limit;
    trace->num_clusters = config.workload.num_clusters;
    trace->extension_factor = config.workload.extension_factor;
    trace->split_jobs = config.workload.split_jobs;
    trace->source_path = spec.trace_path;
    trace->skipped_records = scan.summary.total_records - scan.summary.usable_records;
    trace->min_gross_service = scan.summary.min_run_time;
    if (spec.trace_lookahead != 0) trace->lookahead_window = spec.trace_lookahead;
    if (spec.trace_whole_file) {
      // Test-only legacy mode: everything in memory (the equivalence
      // baseline and the CI peak-RSS gate's "before" side).
      trace->records = usable_trace_records(read_swf_file(spec.trace_path).records);
    } else {
      // Streaming mode: each engine opens its own stream on demand and
      // re-sorts through the bounded lookahead window, so peak memory is
      // O(window) however long the log is. The stream factory comes from
      // the resolver: a fresh file reader by default, a cursor over warm
      // in-memory records under the experiment daemon.
      trace->open_source = resolved.open_source;
      trace->streamed_usable_records = scan.summary.usable_records;
    }
    // Point mode replays at the spec's fixed scale; a sweep re-scales the
    // submit axis per target utilization (the paper's Fig. 3 methodology
    // applied to a recorded log).
    trace->arrival_scale =
        spec.mode == RunMode::kSweep
            ? trace_scale_for_utilization(scan.summary, config.total_processors(),
                                          utilization)
            : spec.trace_scale;
    config.total_jobs = scan.summary.usable_records;
    config.trace_workload = std::move(trace);
  } else {
    config.workload.arrival_rate = config.workload.rate_for_gross_utilization(
        utilization, config.total_processors());
    config.total_jobs = spec.sim_jobs;
  }
  config.placement = spec.placement;
  config.backfill = spec.backfill;
  config.discipline = spec.discipline;
  // Only an overridden composition goes through the explicit-pipeline path;
  // plain policy aliases keep the legacy construction (and so the legacy
  // display names) bit-for-bit.
  if (spec.has_pipeline_override()) config.pipeline = spec.pipeline();
  config.seed = spec.seed;
  config.warmup_fraction = spec.warmup_fraction;
  config.batch_count = spec.batch_count;
  config.engine = spec.engine;
  // Lone-run budget by default; Runner fan-out callers (sweep/replications)
  // re-split it per worker before building engines.
  config.engine_threads = spec.engine_threads_for(1);
  return config;
}

SaturationConfig to_saturation_config(const ScenarioSpec& spec) {
  validate(spec);
  SaturationConfig config;
  config.policy = spec.policy;
  config.cluster_sizes = effective_layout(spec);
  config.workload = make_workload(spec, config.cluster_sizes.size());
  config.placement = spec.placement;
  config.seed = spec.seed;
  config.backlog = spec.saturation_backlog;
  config.total_completions = spec.saturation_completions;
  config.engine = spec.engine;
  config.engine_threads = spec.engine_threads_for(1);
  // SaturationConfig keeps its own warmup default (0.2): the constant-
  // backlog estimator warms up differently from a steady-state run.
  return config;
}

std::unique_ptr<MulticlusterSimulation> build_simulation(const ScenarioSpec& spec) {
  return std::make_unique<MulticlusterSimulation>(to_simulation_config(spec));
}

void write_scenario_json(obs::JsonWriter& json, const ScenarioSpec& spec) {
  json.begin_object();
  json.key("schema").value("mcsim-scenario");
  json.key("schema_version").value(ScenarioSpec::kSchemaVersion);
  if (!spec.name.empty()) json.key("name").value(spec.name);

  json.key("system").begin_object();
  if (!spec.cluster_sizes.empty()) {
    json.key("cluster_sizes").begin_array();
    for (std::uint32_t size : spec.cluster_sizes) {
      json.value(static_cast<std::uint64_t>(size));
    }
    json.end_array();
  }
  if (!spec.cluster_speeds.empty()) {
    json.key("cluster_speeds").begin_array();
    for (double speed : spec.cluster_speeds) json.value(speed);
    json.end_array();
  }
  json.end_object();

  json.key("workload").begin_object();
  // Trace keys are only emitted for trace replays, keeping the synthetic
  // output byte-identical to what pre-trace versions wrote (manifests are
  // compared verbatim by the rerun tests).
  if (spec.is_trace()) {
    json.key("type").value("trace");
    json.key("path").value(spec.trace_path);
    json.key("arrival_scale").value(spec.trace_scale);
    // Non-default streaming knobs only, keeping pre-streaming trace
    // manifests byte-identical.
    if (spec.trace_lookahead != 0) {
      json.key("lookahead").value(static_cast<std::uint64_t>(spec.trace_lookahead));
    }
    if (spec.trace_whole_file) json.key("whole_file").value(true);
  }
  json.key("size_model").value(spec.size_model);
  json.key("component_limit").value(static_cast<std::uint64_t>(spec.component_limit));
  json.key("extension_factor").value(spec.extension_factor);
  json.key("balanced_queues").value(spec.balanced_queues);
  if (!spec.queue_weights.empty()) {
    json.key("queue_weights").begin_array();
    for (double weight : spec.queue_weights) json.value(weight);
    json.end_array();
  }
  json.key("request_type").value(request_type_name(spec.request_type));
  json.end_object();

  json.key("policy").begin_object();
  json.key("kind").value(policy_name(spec.policy));
  json.key("placement").value(placement_rule_name(spec.placement));
  json.key("backfill").value(backfill_json_name(spec.backfill));
  json.key("discipline").value(queue_discipline_name(spec.discipline));
  // The pipeline object is emitted only for overridden compositions, so
  // alias-only scenario files and manifests stay byte-identical to what
  // pre-pipeline versions wrote.
  if (spec.has_pipeline_override()) {
    json.key("pipeline").begin_object();
    if (spec.queue_structure) {
      json.key("queue").value(queue_structure_name(*spec.queue_structure));
    }
    if (spec.coallocation) {
      json.key("coallocation").value(coallocation_rule_name(*spec.coallocation));
    }
    json.end_object();
  }
  json.end_object();

  json.key("run").begin_object();
  json.key("mode").value(run_mode_name(spec.mode));
  json.key("utilization").value(spec.utilization);
  json.key("sweep").begin_object();
  json.key("from").value(spec.sweep_from);
  json.key("to").value(spec.sweep_to);
  json.key("step").value(spec.sweep_step);
  if (!spec.utilization_grid.empty()) {
    json.key("grid").begin_array();
    for (double utilization : spec.utilization_grid) json.value(utilization);
    json.end_array();
  }
  json.end_object();
  json.key("sim_jobs").value(spec.sim_jobs);
  json.key("replications").value(static_cast<std::uint64_t>(spec.replications));
  json.key("saturation").begin_object();
  json.key("completions").value(spec.saturation_completions);
  json.key("backlog").value(spec.saturation_backlog);
  json.end_object();
  json.key("seed").value(spec.seed);
  json.key("warmup_fraction").value(spec.warmup_fraction);
  json.key("batch_count").value(spec.batch_count);
  json.key("parallelism").value(static_cast<std::uint64_t>(spec.parallelism));
  // Emitted only for the parallel engine so pre-engine scenario files and
  // manifests stay byte-identical (results are too, by contract).
  if (spec.engine != EngineKind::kSerial) {
    json.key("engine").value(engine_kind_name(spec.engine));
  }
  json.end_object();

  json.end_object();
}

void write_scenario_file(std::ostream& out, const ScenarioSpec& spec) {
  obs::JsonWriter json(out);
  write_scenario_json(json, spec);
  out << '\n';
}

namespace {

std::vector<std::uint32_t> read_u32_array(const obs::JsonValue& value) {
  std::vector<std::uint32_t> out;
  out.reserve(value.items().size());
  for (const auto& item : value.items()) {
    out.push_back(static_cast<std::uint32_t>(item.as_uint()));
  }
  return out;
}

std::vector<double> read_double_array(const obs::JsonValue& value) {
  std::vector<double> out;
  out.reserve(value.items().size());
  for (const auto& item : value.items()) out.push_back(item.as_double());
  return out;
}

void read_system(const obs::JsonValue& value, ScenarioSpec& spec) {
  for (const auto& [key, v] : value.members()) {
    if (key == "cluster_sizes") {
      spec.cluster_sizes = read_u32_array(v);
    } else if (key == "cluster_speeds") {
      spec.cluster_speeds = read_double_array(v);
    } else {
      MCSIM_REQUIRE(false, "scenario: unknown system key \"" + key + "\"");
    }
  }
}

void read_workload(const obs::JsonValue& value, ScenarioSpec& spec) {
  std::string workload_type;
  for (const auto& [key, v] : value.members()) {
    if (key == "type") {
      workload_type = to_lower(v.as_string());
      MCSIM_REQUIRE(workload_type == "synthetic" || workload_type == "trace",
                    "scenario: unknown workload type \"" + v.as_string() +
                        "\" (expected synthetic or trace)");
    } else if (key == "path") {
      spec.trace_path = v.as_string();
    } else if (key == "arrival_scale") {
      spec.trace_scale = v.as_double();
    } else if (key == "lookahead") {
      spec.trace_lookahead = static_cast<std::uint32_t>(v.as_uint());
    } else if (key == "whole_file") {
      spec.trace_whole_file = v.as_bool();
    } else if (key == "size_model") {
      spec.size_model = v.as_string();
    } else if (key == "component_limit") {
      spec.component_limit = static_cast<std::uint32_t>(v.as_uint());
    } else if (key == "extension_factor") {
      spec.extension_factor = v.as_double();
    } else if (key == "balanced_queues") {
      spec.balanced_queues = v.as_bool();
    } else if (key == "queue_weights") {
      spec.queue_weights = read_double_array(v);
    } else if (key == "request_type") {
      spec.request_type = parse_request_type(v.as_string());
    } else {
      MCSIM_REQUIRE(false, "scenario: unknown workload key \"" + key + "\"");
    }
  }
  // `type` may be omitted (presence of `path` decides), but when given it
  // must agree with the rest of the object.
  MCSIM_REQUIRE(workload_type != "trace" || !spec.trace_path.empty(),
                "scenario: workload type \"trace\" needs a path");
  MCSIM_REQUIRE(workload_type != "synthetic" || spec.trace_path.empty(),
                "scenario: workload has a trace path but type \"synthetic\"");
}

// `policy.pipeline`: the explicit four-stage composition. The queue and
// coallocation keys are structural overrides; discipline/backfill/placement
// name the same stages as the policy-level keys and simply assign them, so
// a file may spell the whole pipeline in one object.
void read_pipeline(const obs::JsonValue& value, ScenarioSpec& spec) {
  for (const auto& [key, v] : value.members()) {
    if (key == "queue") {
      spec.queue_structure = parse_queue_structure(v.as_string());
    } else if (key == "coallocation") {
      spec.coallocation = parse_coallocation_rule(v.as_string());
    } else if (key == "discipline") {
      spec.discipline = parse_queue_discipline(v.as_string());
    } else if (key == "backfill") {
      spec.backfill = parse_backfill_mode(v.as_string());
    } else if (key == "placement") {
      spec.placement = parse_placement_rule(v.as_string());
    } else {
      MCSIM_REQUIRE(false, "scenario: unknown pipeline key \"" + key + "\"");
    }
  }
}

void read_policy(const obs::JsonValue& value, ScenarioSpec& spec) {
  for (const auto& [key, v] : value.members()) {
    if (key == "kind") {
      spec.policy = parse_policy_kind(v.as_string());
    } else if (key == "placement") {
      spec.placement = parse_placement_rule(v.as_string());
    } else if (key == "backfill") {
      spec.backfill = parse_backfill_mode(v.as_string());
    } else if (key == "discipline") {
      spec.discipline = parse_queue_discipline(v.as_string());
    } else if (key == "pipeline") {
      read_pipeline(v, spec);
    } else {
      MCSIM_REQUIRE(false, "scenario: unknown policy key \"" + key + "\"");
    }
  }
}

void read_sweep(const obs::JsonValue& value, ScenarioSpec& spec) {
  for (const auto& [key, v] : value.members()) {
    if (key == "from") {
      spec.sweep_from = v.as_double();
    } else if (key == "to") {
      spec.sweep_to = v.as_double();
    } else if (key == "step") {
      spec.sweep_step = v.as_double();
    } else if (key == "grid") {
      spec.utilization_grid = read_double_array(v);
    } else {
      MCSIM_REQUIRE(false, "scenario: unknown sweep key \"" + key + "\"");
    }
  }
}

void read_saturation(const obs::JsonValue& value, ScenarioSpec& spec) {
  for (const auto& [key, v] : value.members()) {
    if (key == "completions") {
      spec.saturation_completions = v.as_uint();
    } else if (key == "backlog") {
      spec.saturation_backlog = v.as_uint();
    } else {
      MCSIM_REQUIRE(false, "scenario: unknown saturation key \"" + key + "\"");
    }
  }
}

void read_run(const obs::JsonValue& value, ScenarioSpec& spec) {
  for (const auto& [key, v] : value.members()) {
    if (key == "mode") {
      spec.mode = parse_run_mode(v.as_string());
    } else if (key == "utilization") {
      spec.utilization = v.as_double();
    } else if (key == "sweep") {
      read_sweep(v, spec);
    } else if (key == "sim_jobs") {
      spec.sim_jobs = v.as_uint();
    } else if (key == "replications") {
      spec.replications = static_cast<std::uint32_t>(v.as_uint());
    } else if (key == "saturation") {
      read_saturation(v, spec);
    } else if (key == "seed") {
      spec.seed = v.as_uint();
    } else if (key == "warmup_fraction") {
      spec.warmup_fraction = v.as_double();
    } else if (key == "batch_count") {
      spec.batch_count = v.as_uint();
    } else if (key == "parallelism") {
      spec.parallelism = static_cast<unsigned>(v.as_uint());
    } else if (key == "engine") {
      spec.engine = parse_engine_kind(v.as_string());
    } else {
      MCSIM_REQUIRE(false, "scenario: unknown run key \"" + key + "\"");
    }
  }
}

}  // namespace

ScenarioSpec scenario_from_json(const obs::JsonValue& value) {
  MCSIM_REQUIRE(value.is_object(), "scenario: expected a JSON object");
  ScenarioSpec spec;
  for (const auto& [key, v] : value.members()) {
    if (key == "schema") {
      MCSIM_REQUIRE(v.as_string() == "mcsim-scenario",
                    "scenario: unexpected schema \"" + v.as_string() + "\"");
    } else if (key == "schema_version") {
      MCSIM_REQUIRE(v.as_int() == ScenarioSpec::kSchemaVersion,
                    "scenario: unsupported schema_version " + v.number_text());
    } else if (key == "name") {
      spec.name = v.as_string();
    } else if (key == "system") {
      read_system(v, spec);
    } else if (key == "workload") {
      read_workload(v, spec);
    } else if (key == "policy") {
      read_policy(v, spec);
    } else if (key == "run") {
      read_run(v, spec);
    } else {
      MCSIM_REQUIRE(false, "scenario: unknown key \"" + key + "\"");
    }
  }
  validate(spec);
  return spec;
}

namespace {
// A scenario file saying `path: "../trace.swf"` means relative to itself,
// not to wherever mcsim happens to be invoked from — the checked-in trace
// scenarios must work from any working directory.
void resolve_trace_path(ScenarioSpec& spec, const std::string& scenario_path) {
  if (spec.trace_path.empty()) return;
  const std::filesystem::path trace(spec.trace_path);
  if (trace.is_absolute()) return;
  spec.trace_path = (std::filesystem::path(scenario_path).parent_path() / trace)
                        .lexically_normal()
                        .generic_string();
}
}  // namespace

ScenarioSpec load_scenario(const std::string& path) {
  const obs::JsonValue document = obs::parse_json_file(path);
  MCSIM_REQUIRE(document.is_object(), "scenario: " + path + " is not a JSON object");
  const obs::JsonValue* schema = document.find("schema");
  ScenarioSpec spec;
  if (schema != nullptr && schema->is_string() &&
      schema->as_string() == "mcsim-run-manifest") {
    const obs::JsonValue* embedded = document.find("scenario");
    MCSIM_REQUIRE(embedded != nullptr,
                  "scenario: " + path +
                      " is a run manifest without an embedded scenario "
                      "(written before scenario support?)");
    spec = scenario_from_json(*embedded);
  } else {
    spec = scenario_from_json(document);
  }
  resolve_trace_path(spec, path);
  return spec;
}

}  // namespace mcsim::exp
