// Paper scenarios: the exact parameter combinations of the evaluation
// (Sect. 3): policy x component-size limit x {balanced, unbalanced}
// x {DAS-s-128, DAS-s-64}, on the 4x32 multicluster (SC: 1x128).
#pragma once

#include <cstdint>
#include <string>

#include "core/engine.hpp"
#include "core/saturation.hpp"

namespace mcsim {

struct PaperScenario {
  PolicyKind policy = PolicyKind::kGS;
  std::uint32_t component_limit = 16;
  /// false: one local queue gets 40% of local submissions, the others 20%.
  bool balanced_queues = true;
  /// true: total job sizes from DAS-s-64 (the log cut at 64).
  bool limit_total_size_64 = false;
  double extension_factor = 1.25;
  PlacementRule placement = PlacementRule::kWorstFit;

  [[nodiscard]] std::string label() const;
};

/// SimulationConfig for a scenario at a target gross utilization.
SimulationConfig make_paper_config(const PaperScenario& scenario,
                                   double target_gross_utilization, std::uint64_t total_jobs,
                                   std::uint64_t seed);

/// SaturationConfig (constant backlog) for a scenario.
SaturationConfig make_saturation_config(const PaperScenario& scenario,
                                        std::uint64_t total_completions, std::uint64_t seed);

}  // namespace mcsim
