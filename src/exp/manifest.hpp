/// \file
/// \brief The JSON run manifest: one self-describing document per
/// simulation run carrying provenance (code version, command line, seeds,
/// wall/sim clocks), the full configuration, the result summary and — when
/// a MetricsRegistry was attached — every collected metric.
///
/// Schema: see docs/TRACING.md, "The run manifest". All doubles are
/// printed with max_digits10 precision, so a consumer parsing them with
/// strtod recovers the identical bits; `result.mean_response` in
/// particular can be compared bit-exactly against a re-computation from
/// the exported SWF trace.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>

#include "core/engine.hpp"
#include "obs/metrics.hpp"

namespace mcsim {

namespace obs {
class JsonWriter;
}  // namespace obs

namespace exp {
struct ScenarioSpec;
}  // namespace exp

/// Version of the manifest JSON layout. Bump on any key rename/removal;
/// adding keys is backward-compatible and needs no bump.
inline constexpr std::int64_t kManifestSchemaVersion = 1;

/// The source-tree version compiled into the binary (`git describe
/// --always --dirty --tags` at configure time; "unknown" outside a git
/// checkout).
const char* git_describe();

/// Extra run context the engine does not know about.
struct ManifestInfo {
  /// The invoking command line, argv joined with spaces (may be empty).
  std::string command_line;
  /// Path of the exported SWF trace; empty when no trace was written.
  std::string trace_path;
  /// Records in the exported trace (completed jobs observed by the sink).
  std::uint64_t trace_records = 0;
  /// Lifecycle events recorded / dropped by the ring recorder.
  std::uint64_t events_recorded = 0;
  std::uint64_t events_dropped = 0;
  /// When set, the manifest embeds this spec verbatim as its "scenario"
  /// object, which is what makes the manifest replayable: `mcsim rerun
  /// manifest.json` rebuilds the identical run from it (exp::load_scenario
  /// accepts manifests directly).
  const exp::ScenarioSpec* scenario = nullptr;
};

/// Write the manifest's result-statistics object ("result") on an
/// already-open writer. Every field is deterministic given the config —
/// the golden-run gate (exp/golden.hpp) pins exactly this object.
void write_result_json(obs::JsonWriter& json, const SimulationResult& result);

/// Write the manifest for one run as a JSON document. `metrics` may be
/// null (the "metrics" object is then omitted); `info` fields that are
/// empty/zero are omitted likewise.
void write_run_manifest(std::ostream& out, const SimulationConfig& config,
                        const SimulationResult& result,
                        const obs::MetricsRegistry* metrics, const ManifestInfo& info);

}  // namespace mcsim
