#include "exp/golden.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "core/engine.hpp"
#include "core/saturation.hpp"
#include "exp/manifest.hpp"
#include "exp/replications.hpp"
#include "exp/runner.hpp"
#include "exp/scenario_spec.hpp"
#include "exp/sweep.hpp"
#include "obs/json.hpp"
#include "obs/json_reader.hpp"
#include "obs/metrics.hpp"
#include "obs/swf_builder.hpp"
#include "trace/swf.hpp"
#include "util/assert.hpp"
#include "util/strings.hpp"

// Provenance compiled into the verify binary (set in exp/CMakeLists.txt).
#ifndef MCSIM_COMPILER_INFO
#define MCSIM_COMPILER_INFO "unknown"
#endif
#ifndef MCSIM_BUILD_TYPE
#define MCSIM_BUILD_TYPE "unknown"
#endif

namespace mcsim::exp {

namespace fs = std::filesystem;

std::uint64_t fnv1a64(std::string_view text) {
  std::uint64_t hash = 0xcbf29ce484222325ull;
  for (const unsigned char byte : text) {
    hash ^= byte;
    hash *= 0x100000001b3ull;
  }
  return hash;
}

const char* compare_mode_name(CompareMode mode) {
  switch (mode) {
    case CompareMode::kBitExact: return "bit-exact";
    case CompareMode::kStatistical: return "statistical";
  }
  return "?";
}

CompareMode parse_compare_mode(const std::string& name) {
  const std::string lower = to_lower(name);
  if (lower == "bit-exact" || lower == "bitexact") return CompareMode::kBitExact;
  if (lower == "statistical") return CompareMode::kStatistical;
  MCSIM_REQUIRE(false, "unknown compare mode: " + name +
                           " (expected bit-exact or statistical)");
  return CompareMode::kBitExact;
}

const char* verify_status_name(VerifyStatus status) {
  switch (status) {
    case VerifyStatus::kPass: return "pass";
    case VerifyStatus::kFail: return "FAIL";
    case VerifyStatus::kMissingGolden: return "MISSING GOLDEN";
    case VerifyStatus::kOrphanGolden: return "ORPHAN GOLDEN";
    case VerifyStatus::kError: return "ERROR";
    case VerifyStatus::kUpdated: return "updated";
  }
  return "?";
}

namespace {

std::string digest_string(std::uint64_t hash) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "fnv1a64:%016llx",
                static_cast<unsigned long long>(hash));
  return buf;
}

// -- ULP distance -----------------------------------------------------------

// Map a double onto the integer line so that adjacent representable values
// are adjacent integers (the usual ordered-bits transform; -0.0 and +0.0
// both map to 0).
std::int64_t ordered_bits(double value) {
  std::int64_t bits;
  std::memcpy(&bits, &value, sizeof bits);
  return bits < 0 ? std::numeric_limits<std::int64_t>::min() - bits : bits;
}

std::int64_t ulp_distance(double a, double b) {
  if (!std::isfinite(a) || !std::isfinite(b)) return -1;
  const std::int64_t oa = ordered_bits(a);
  const std::int64_t ob = ordered_bits(b);
  const std::uint64_t diff = oa > ob
                                 ? static_cast<std::uint64_t>(oa) - static_cast<std::uint64_t>(ob)
                                 : static_cast<std::uint64_t>(ob) - static_cast<std::uint64_t>(oa);
  constexpr auto kMax =
      static_cast<std::uint64_t>(std::numeric_limits<std::int64_t>::max());
  return diff > kMax ? std::numeric_limits<std::int64_t>::max()
                     : static_cast<std::int64_t>(diff);
}

// -- canonical observation --------------------------------------------------

// The run.* wall-clock and memory gauges measure the host, not the model;
// everything else the engine collects is a pure function of the scenario.
bool deterministic_metric(const std::string& name) {
  return name != "run.wall_seconds" && name != "run.events_per_sec" &&
         name != "run.event_loop_seconds" && name != "run.events_executed_per_sec" &&
         name != "run.peak_rss_bytes";
}

void write_metrics_observation(obs::JsonWriter& json,
                               const obs::MetricsRegistry& metrics, double sim_now) {
  json.begin_object();
  json.key("counters").begin_object();
  for (const auto& [name, count] : metrics.counters()) json.key(name).value(count);
  json.end_object();
  json.key("gauges").begin_object();
  for (const auto& [name, value] : metrics.gauges()) {
    if (deterministic_metric(name)) json.key(name).value(value);
  }
  json.end_object();
  json.key("series").begin_object();
  for (const auto& [name, stat] : metrics.all_series()) {
    json.key(name).begin_object();
    const bool observed = std::isfinite(stat.min());
    json.key("mean").value(observed ? stat.time_average(sim_now) : 0.0);
    json.key("min").value(observed ? stat.min() : 0.0);
    json.key("max").value(observed ? stat.max() : 0.0);
    json.key("last").value(stat.current_value());
    json.end_object();
  }
  json.end_object();
  json.end_object();
}

// The deterministic slice of a SimulationResult: the manifest's result
// object plus the simulation clock and event count (wall_seconds stays out).
void write_result_observation(obs::JsonWriter& json, const SimulationResult& result) {
  json.key("result");
  write_result_json(json, result);
  json.key("end_time").value(result.end_time);
  json.key("events_executed").value(result.events_executed);
}

void write_point_observation(obs::JsonWriter& json, const ScenarioSpec& spec) {
  MulticlusterSimulation simulation(to_simulation_config(spec));
  obs::SwfTraceBuilder builder;
  obs::MetricsRegistry metrics;
  simulation.set_trace_sink(&builder);
  simulation.set_metrics(&metrics);
  const SimulationResult result = simulation.run();

  // Digest the SWF record stream exactly as `mcsim point --trace-out`
  // writes it, minus the header comments (which carry provenance).
  std::ostringstream swf;
  write_swf(swf, builder.trace());

  write_result_observation(json, result);
  json.key("trace").begin_object();
  json.key("records")
      .value(static_cast<std::uint64_t>(builder.trace().records.size()));
  json.key("swf_digest").value(digest_string(fnv1a64(swf.str())));
  json.end_object();
  json.key("metrics");
  write_metrics_observation(json, metrics, result.end_time);
}

void write_sweep_observation(obs::JsonWriter& json, const ScenarioSpec& spec) {
  const SweepSeries series = run_sweep(spec);
  json.key("points").begin_array();
  for (const SweepPoint& point : series.points) {
    json.begin_object();
    json.key("utilization").value(point.target_gross_utilization);
    write_result_observation(json, point.result);
    json.end_object();
  }
  json.end_array();
  json.key("max_stable_utilization").value(series.max_stable_utilization());
}

void write_saturation_observation(obs::JsonWriter& json, const ScenarioSpec& spec) {
  const SaturationResult result = run_saturation(to_saturation_config(spec));
  json.key("maximal_gross_utilization").value(result.maximal_gross_utilization);
  json.key("maximal_net_utilization").value(result.maximal_net_utilization);
  json.key("completions").value(result.completions);
  json.key("end_time").value(result.end_time);
}

void write_replications_observation(obs::JsonWriter& json, const ScenarioSpec& spec) {
  const ReplicationResult result = run_replications(spec);
  json.key("replication_means").begin_array();
  for (const double mean : result.replication_means) json.value(mean);
  json.end_array();
  json.key("unstable_replications")
      .value(static_cast<std::uint64_t>(result.unstable_replications));
  json.key("ci95").begin_object();
  json.key("mean").value(result.response_ci.mean);
  json.key("halfwidth").value(result.response_ci.halfwidth);
  json.end_object();
  json.key("mean_busy_fraction").value(result.mean_busy_fraction);
}

}  // namespace

std::string canonical_observation(const ScenarioSpec& spec, EngineKind engine) {
  // Results are parallelism-invariant (exp_runner_test pins this), so run
  // serially: verify parallelises across scenarios, not inside one. The
  // parallel-engine override instead gets a two-thread budget — the
  // smallest that spawns a real worker next to the coordinator — because
  // results are worker-count-invariant by contract and the point of the
  // override is to exercise genuine cross-thread barriers against the
  // serial goldens (docs/PARALLEL.md).
  ScenarioSpec serial = spec;
  serial.engine = engine;
  serial.parallelism = engine == EngineKind::kParallel ? 2 : 1;
  validate(serial);

  std::ostringstream out;
  obs::JsonWriter json(out);
  json.begin_object();
  json.key("mode").value(run_mode_name(serial.mode));
  switch (serial.mode) {
    case RunMode::kPoint: write_point_observation(json, serial); break;
    case RunMode::kSweep: write_sweep_observation(json, serial); break;
    case RunMode::kSaturation: write_saturation_observation(json, serial); break;
    case RunMode::kReplications: write_replications_observation(json, serial); break;
  }
  json.end_object();
  out << '\n';
  return out.str();
}

// -- flatten + digest -------------------------------------------------------

namespace {

void flatten_into(const obs::JsonValue& value, std::string& path, std::string& out) {
  switch (value.kind()) {
    case obs::JsonValue::Kind::kObject:
      for (const auto& [key, member] : value.members()) {
        const std::size_t mark = path.size();
        if (!path.empty()) path += '.';
        path += key;
        flatten_into(member, path, out);
        path.resize(mark);
      }
      return;
    case obs::JsonValue::Kind::kArray:
      for (std::size_t i = 0; i < value.size(); ++i) {
        const std::size_t mark = path.size();
        path += '[';
        path += std::to_string(i);
        path += ']';
        flatten_into(value.at(i), path, out);
        path.resize(mark);
      }
      return;
    case obs::JsonValue::Kind::kNumber:
      out += path;
      out += '=';
      out += value.number_text();
      out += '\n';
      return;
    case obs::JsonValue::Kind::kString:
      out += path;
      out += "=\"";
      out += obs::json_escape(value.as_string());
      out += "\"\n";
      return;
    case obs::JsonValue::Kind::kBool:
      out += path;
      out += value.as_bool() ? "=true\n" : "=false\n";
      return;
    case obs::JsonValue::Kind::kNull:
      out += path;
      out += "=null\n";
      return;
  }
}

}  // namespace

std::string flatten_observation(const obs::JsonValue& observation) {
  std::string path;
  std::string out;
  flatten_into(observation, path, out);
  return out;
}

std::string observation_digest(const obs::JsonValue& observation) {
  return digest_string(fnv1a64(flatten_observation(observation)));
}

std::string manifest_observation(const obs::JsonValue& manifest) {
  const obs::JsonValue* schema =
      manifest.is_object() ? manifest.find("schema") : nullptr;
  MCSIM_REQUIRE(schema != nullptr && schema->is_string() &&
                    schema->as_string() == "mcsim-run-manifest",
                "manifest observation: document is not a run manifest");
  const obs::JsonValue* config = manifest.find("config");
  const obs::JsonValue* result = manifest.find("result");
  MCSIM_REQUIRE(config != nullptr && result != nullptr,
                "manifest observation: manifest lacks config/result objects");
  std::ostringstream out;
  obs::JsonWriter json(out);
  json.begin_object();
  json.key("config");
  write_parsed_json(json, *config);
  json.key("result");
  write_parsed_json(json, *result);
  if (const obs::JsonValue* scenario = manifest.find("scenario")) {
    json.key("scenario");
    write_parsed_json(json, *scenario);
  }
  json.end_object();
  return out.str();
}

// -- comparison -------------------------------------------------------------

namespace {

const char* kind_name(obs::JsonValue::Kind kind) {
  switch (kind) {
    case obs::JsonValue::Kind::kNull: return "null";
    case obs::JsonValue::Kind::kBool: return "bool";
    case obs::JsonValue::Kind::kNumber: return "number";
    case obs::JsonValue::Kind::kString: return "string";
    case obs::JsonValue::Kind::kArray: return "array";
    case obs::JsonValue::Kind::kObject: return "object";
  }
  return "?";
}

bool diverge(CompareOutcome& outcome, const std::string& path, std::string expected,
             std::string got, std::int64_t ulp = -1) {
  outcome.match = false;
  outcome.first = Divergence{path, std::move(expected), std::move(got), ulp};
  return false;
}

bool numbers_match(const obs::JsonValue& expected, const obs::JsonValue& got,
                   const GoldenOptions& options, const std::string& path,
                   CompareOutcome& outcome) {
  if (expected.number_text() == got.number_text()) return true;
  const double e = expected.as_double();
  const double g = got.as_double();
  const std::int64_t ulp = ulp_distance(e, g);
  switch (options.mode) {
    case CompareMode::kBitExact: {
      std::uint64_t eb = 0;
      std::uint64_t gb = 0;
      std::memcpy(&eb, &e, sizeof eb);
      std::memcpy(&gb, &g, sizeof gb);
      if (eb == gb) return true;  // different spelling, identical bits
      break;
    }
    case CompareMode::kStatistical: {
      const double scale = std::max(std::abs(e), std::abs(g));
      if (std::isfinite(e) && std::isfinite(g) &&
          std::abs(e - g) <= options.abs_tol + options.rel_tol * scale) {
        return true;
      }
      break;
    }
  }
  return diverge(outcome, path, expected.number_text(), got.number_text(), ulp);
}

bool compare_value(const obs::JsonValue& expected, const obs::JsonValue& got,
                   const GoldenOptions& options, std::string& path,
                   CompareOutcome& outcome) {
  if (expected.kind() != got.kind()) {
    return diverge(outcome, path, kind_name(expected.kind()), kind_name(got.kind()));
  }
  switch (expected.kind()) {
    case obs::JsonValue::Kind::kObject: {
      for (const auto& [key, member] : expected.members()) {
        const std::size_t mark = path.size();
        if (!path.empty()) path += '.';
        path += key;
        const obs::JsonValue* other = got.find(key);
        if (other == nullptr) {
          return diverge(outcome, path, kind_name(member.kind()), "<missing key>");
        }
        if (!compare_value(member, *other, options, path, outcome)) return false;
        path.resize(mark);
      }
      for (const auto& [key, member] : got.members()) {
        if (expected.find(key) == nullptr) {
          const std::string extra = path.empty() ? key : path + '.' + key;
          return diverge(outcome, extra, "<missing key>", kind_name(member.kind()));
        }
      }
      return true;
    }
    case obs::JsonValue::Kind::kArray: {
      if (expected.size() != got.size()) {
        return diverge(outcome, path + ".length", std::to_string(expected.size()),
                       std::to_string(got.size()));
      }
      for (std::size_t i = 0; i < expected.size(); ++i) {
        const std::size_t mark = path.size();
        path += '[';
        path += std::to_string(i);
        path += ']';
        if (!compare_value(expected.at(i), got.at(i), options, path, outcome)) {
          return false;
        }
        path.resize(mark);
      }
      return true;
    }
    case obs::JsonValue::Kind::kNumber:
      return numbers_match(expected, got, options, path, outcome);
    case obs::JsonValue::Kind::kString:
      if (expected.as_string() != got.as_string()) {
        return diverge(outcome, path, expected.as_string(), got.as_string());
      }
      return true;
    case obs::JsonValue::Kind::kBool:
      if (expected.as_bool() != got.as_bool()) {
        return diverge(outcome, path, expected.as_bool() ? "true" : "false",
                       got.as_bool() ? "true" : "false");
      }
      return true;
    case obs::JsonValue::Kind::kNull:
      return true;
  }
  return true;
}

}  // namespace

std::string Divergence::describe() const {
  std::string text = path + ": expected " + expected + ", got " + got;
  if (ulp >= 0) text += " (" + std::to_string(ulp) + " ULP)";
  return text;
}

CompareOutcome compare_observations(const obs::JsonValue& expected,
                                    const obs::JsonValue& got,
                                    const GoldenOptions& options) {
  CompareOutcome outcome;
  std::string path;
  compare_value(expected, got, options, path, outcome);
  return outcome;
}

// -- golden documents -------------------------------------------------------

// Re-emit a parsed value through the writer. Integer-formatted numbers go
// out as integers so their text survives verbatim; everything else is a
// double, for which json_double is idempotent — re-serializing our own
// output reproduces it byte-for-byte.
void write_parsed_json(obs::JsonWriter& json, const obs::JsonValue& value) {
  switch (value.kind()) {
    case obs::JsonValue::Kind::kObject:
      json.begin_object();
      for (const auto& [key, member] : value.members()) {
        json.key(key);
        write_parsed_json(json, member);
      }
      json.end_object();
      return;
    case obs::JsonValue::Kind::kArray:
      json.begin_array();
      for (const obs::JsonValue& item : value.items()) write_parsed_json(json, item);
      json.end_array();
      return;
    case obs::JsonValue::Kind::kNumber: {
      const std::string& text = value.number_text();
      if (text.find_first_of(".eE") == std::string::npos) {
        if (!text.empty() && text.front() == '-') {
          json.value(value.as_int());
        } else {
          json.value(value.as_uint());
        }
      } else {
        json.value(value.as_double());
      }
      return;
    }
    case obs::JsonValue::Kind::kString:
      json.value(value.as_string());
      return;
    case obs::JsonValue::Kind::kBool:
      json.value(value.as_bool());
      return;
    case obs::JsonValue::Kind::kNull:
      json.null();
      return;
  }
}

void write_golden_file(std::ostream& out, const ScenarioSpec& spec,
                       const std::string& scenario_file,
                       const std::string& observation_json) {
  const obs::JsonValue observed = obs::parse_json(observation_json);
  obs::JsonWriter json(out);
  json.begin_object();
  json.key("schema").value("mcsim-golden");
  json.key("schema_version").value(kGoldenSchemaVersion);
  json.key("scenario_file").value(scenario_file);
  json.key("label").value(spec.label());
  json.key("digest").value(observation_digest(observed));
  json.key("provenance").begin_object();
  json.key("git_describe").value(git_describe());
  json.key("compiler").value(MCSIM_COMPILER_INFO);
  json.key("build_type").value(MCSIM_BUILD_TYPE);
  json.key("generated_by").value("mcsim verify --update");
  json.end_object();
  json.key("observed");
  write_parsed_json(json, observed);
  json.end_object();
  out << '\n';
}

std::string golden_path_for(const std::string& golden_dir,
                            const std::string& scenario_file) {
  const std::string stem = fs::path(scenario_file).stem().string();
  return (fs::path(golden_dir) / (stem + ".golden.json")).string();
}

// -- the verify driver ------------------------------------------------------

namespace {

ScenarioVerdict verify_one(const fs::path& scenario_path,
                           const std::string& golden_dir,
                           const VerifyOptions& options) {
  ScenarioVerdict verdict;
  verdict.scenario_file = scenario_path.filename().string();

  ScenarioSpec spec;
  try {
    spec = load_scenario(scenario_path.string());
  } catch (const std::exception& error) {
    verdict.status = VerifyStatus::kError;
    verdict.detail = error.what();
    return verdict;
  }
  verdict.label = spec.label();

  std::string observation;
  try {
    observation = canonical_observation(spec, options.engine);
  } catch (const std::exception& error) {
    verdict.status = VerifyStatus::kError;
    verdict.detail = error.what();
    return verdict;
  }

  const std::string golden_path =
      golden_path_for(golden_dir, verdict.scenario_file);

  if (options.update) {
    std::ofstream out(golden_path);
    if (!out) {
      verdict.status = VerifyStatus::kError;
      verdict.detail = "cannot open " + golden_path;
      return verdict;
    }
    write_golden_file(out, spec, verdict.scenario_file, observation);
    verdict.status = VerifyStatus::kUpdated;
    verdict.detail = observation_digest(obs::parse_json(observation));
    return verdict;
  }

  if (!fs::exists(golden_path)) {
    verdict.status = VerifyStatus::kMissingGolden;
    verdict.detail = "no golden at " + golden_path + " (run `mcsim verify --update`)";
    return verdict;
  }

  obs::JsonValue document;
  try {
    document = obs::parse_json_file(golden_path);
  } catch (const std::exception& error) {
    verdict.status = VerifyStatus::kFail;
    verdict.detail = error.what();
    return verdict;
  }
  const obs::JsonValue* schema =
      document.is_object() ? document.find("schema") : nullptr;
  const obs::JsonValue* observed =
      document.is_object() ? document.find("observed") : nullptr;
  const obs::JsonValue* digest =
      document.is_object() ? document.find("digest") : nullptr;
  if (schema == nullptr || !schema->is_string() ||
      schema->as_string() != "mcsim-golden" || observed == nullptr ||
      digest == nullptr || !digest->is_string()) {
    verdict.status = VerifyStatus::kFail;
    verdict.detail = golden_path + " is not a golden document";
    return verdict;
  }

  const obs::JsonValue got = obs::parse_json(observation);
  const CompareOutcome outcome =
      compare_observations(*observed, got, options.compare);
  if (!outcome.match) {
    verdict.status = VerifyStatus::kFail;
    verdict.detail = outcome.first.describe();
    return verdict;
  }
  // The observation matches field for field; check the tamper seal so a
  // hand-edited digest (or a reformatted file) still fails loudly.
  const std::string stored_seal = observation_digest(*observed);
  if (digest->as_string() != stored_seal) {
    verdict.status = VerifyStatus::kFail;
    verdict.detail = "golden digest seal broken: file says " + digest->as_string() +
                     ", content hashes to " + stored_seal +
                     " (regenerate with `mcsim verify --update`)";
    return verdict;
  }
  verdict.status = VerifyStatus::kPass;
  verdict.detail = stored_seal;
  return verdict;
}

}  // namespace

bool VerifyReport::ok() const {
  return std::all_of(verdicts.begin(), verdicts.end(), [](const ScenarioVerdict& v) {
    return v.status == VerifyStatus::kPass || v.status == VerifyStatus::kUpdated;
  });
}

VerifyReport verify_goldens(const std::string& scenario_dir,
                            const std::string& golden_dir,
                            const VerifyOptions& options) {
  MCSIM_REQUIRE(fs::is_directory(scenario_dir),
                "verify: " + scenario_dir + " is not a directory");
  MCSIM_REQUIRE(!options.update || options.engine == EngineKind::kSerial,
                "verify: goldens are sealed from the serial reference engine "
                "only; --engine=parallel verifies against them, it does not "
                "regenerate them");
  std::vector<fs::path> scenarios;
  for (const auto& entry : fs::directory_iterator(scenario_dir)) {
    if (entry.is_regular_file() && entry.path().extension() == ".json") {
      scenarios.push_back(entry.path());
    }
  }
  std::sort(scenarios.begin(), scenarios.end());
  MCSIM_REQUIRE(!scenarios.empty(),
                "verify: no scenario files under " + scenario_dir);
  if (options.update) fs::create_directories(golden_dir);

  Runner runner(options.parallelism);
  VerifyReport report;
  report.verdicts = runner.map(scenarios.size(), [&](std::size_t index) {
    return verify_one(scenarios[index], golden_dir, options);
  });

  // Goldens whose scenario is gone: a stale corpus should not look green.
  if (!options.update && fs::is_directory(golden_dir)) {
    std::vector<std::string> orphans;
    for (const auto& entry : fs::directory_iterator(golden_dir)) {
      const std::string name = entry.path().filename().string();
      constexpr std::string_view kSuffix = ".golden.json";
      if (!entry.is_regular_file() || !name.ends_with(kSuffix)) continue;
      const std::string stem = name.substr(0, name.size() - kSuffix.size());
      const bool paired = std::any_of(
          scenarios.begin(), scenarios.end(),
          [&stem](const fs::path& s) { return s.stem().string() == stem; });
      if (!paired) orphans.push_back(name);
    }
    std::sort(orphans.begin(), orphans.end());
    for (const std::string& name : orphans) {
      ScenarioVerdict verdict;
      verdict.scenario_file = name;
      verdict.status = VerifyStatus::kOrphanGolden;
      verdict.detail = "no scenario named " +
                       name.substr(0, name.size() - std::strlen(".golden.json")) +
                       ".json under " + scenario_dir;
      report.verdicts.push_back(std::move(verdict));
    }
  }
  return report;
}

}  // namespace mcsim::exp
