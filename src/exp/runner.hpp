// Parallel experiment runner: a reusable thread pool for fanning independent
// simulation runs out over the machine's cores.
//
// Every figure and table in the paper is a collection of *independent*
// steady-state runs (sweep points, replications), each fully determined by
// its SimulationConfig — including its own master seed, from which all RNG
// substreams are derived. Executing them concurrently therefore cannot
// change any result as long as (a) no run shares mutable state with another
// and (b) results are committed in task-index order. Runner guarantees (b)
// by having every task write to its own pre-sized slot; (a) is a property of
// the engine, locked in by the determinism tests (exp_runner_test.cpp).
//
// Usage:
//   exp::Runner runner(jobs);            // jobs==0 -> all hardware threads
//   auto results = runner.map(n, [&](std::size_t i) { return run(i); });
//
// With jobs == 1 no threads are ever created and tasks execute inline on the
// calling thread, byte-for-byte reproducing the historical serial loops.
#pragma once

#include <cstddef>
#include <functional>
#include <type_traits>
#include <utility>
#include <vector>

namespace mcsim::exp {

class Runner {
 public:
  /// A pool with `jobs` worker threads; 0 means default_jobs().
  explicit Runner(unsigned jobs = 0);
  ~Runner();

  Runner(const Runner&) = delete;
  Runner& operator=(const Runner&) = delete;

  /// Worker count this pool executes with (>= 1).
  [[nodiscard]] unsigned jobs() const;

  /// Hardware concurrency, clamped to at least 1.
  static unsigned default_jobs();

  /// Execute task(0) .. task(count-1), each exactly once, concurrently on
  /// the pool. Blocks until all tasks finish. If any task throws, the first
  /// exception (in task order) is rethrown here after the batch drains.
  /// Not reentrant: do not call run()/map() from inside a task.
  void run(std::size_t count, const std::function<void(std::size_t)>& task);

  /// run() that collects return values in task-index order.
  template <typename Fn>
  auto map(std::size_t count, Fn&& fn)
      -> std::vector<std::decay_t<decltype(fn(std::size_t{}))>> {
    using Result = std::decay_t<decltype(fn(std::size_t{}))>;
    std::vector<Result> results(count);
    run(count, [&results, &fn](std::size_t i) { results[i] = fn(i); });
    return results;
  }

 private:
  struct Impl;
  Impl* impl_;  // nullptr for the inline (jobs == 1) runner
  unsigned jobs_;
};

}  // namespace mcsim::exp
