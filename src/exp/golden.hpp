/// \file
/// \brief Golden-run verification: pin every checked-in scenario's numbers
/// in version control and gate changes on reproducing them.
///
/// A *golden record* is a JSON document per scenario holding the canonical
/// observation of its run — the deterministic result statistics (per run
/// mode), the scheduler metrics, and a digest of the exported SWF trace
/// stream — plus a digest over the whole observation and provenance
/// (git describe, compiler, build type) recording what generated it.
/// Everything wall-clock-dependent (wall_seconds, events/sec) is excluded,
/// so on a fixed build the observation is a pure function of the scenario.
///
/// Two comparison tiers:
///   - kBitExact:    every number must reproduce the identical bits; the
///                   same-build / same-libm replay gate (CI runs it on both
///                   GCC and Clang — cross-compiler determinism is a gated
///                   property of this codebase).
///   - kStatistical: numeric leaves may drift within
///                   |e - g| <= abs_tol + rel_tol * max(|e|, |g|); the
///                   documented fallback for platforms with a different
///                   libm (docs/GOLDEN.md).
///
/// `mcsim verify <golden-dir>` drives verify_goldens() over every scenario
/// under data/scenarios/, fans the runs out over exp::Runner, prints a
/// per-scenario pass/fail table with first-divergence detail (path,
/// expected vs got, ULP distance) and exits non-zero on any mismatch;
/// `--update` regenerates the corpus.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "core/engine.hpp"

namespace mcsim::obs {
class JsonValue;
class JsonWriter;
}  // namespace mcsim::obs

namespace mcsim::exp {

struct ScenarioSpec;

/// Version of the golden JSON layout. Bump on any key rename/removal;
/// adding observation keys changes digests (regenerate with --update) but
/// needs no bump.
inline constexpr std::int64_t kGoldenSchemaVersion = 1;

/// 64-bit FNV-1a over `text` (the digest primitive; stable, dependency-free).
std::uint64_t fnv1a64(std::string_view text);

/// How verify compares a recomputed observation against the golden one.
enum class CompareMode : std::uint8_t { kBitExact, kStatistical };

const char* compare_mode_name(CompareMode mode);
/// Parse "bit-exact" / "statistical" (case-insensitive). Throws
/// std::invalid_argument otherwise.
CompareMode parse_compare_mode(const std::string& name);

struct GoldenOptions {
  CompareMode mode = CompareMode::kBitExact;
  /// Statistical tier: a numeric leaf passes when
  /// |expected - got| <= abs_tol + rel_tol * max(|expected|, |got|).
  double rel_tol = 1e-6;
  double abs_tol = 1e-9;
};

/// The first point where an observation diverges from its golden.
struct Divergence {
  /// Dotted JSON path of the leaf, e.g. "result.response.all.mean" or
  /// "points[3].utilization".
  std::string path;
  std::string expected;
  std::string got;
  /// ULP distance for finite double-vs-double mismatches; -1 when not
  /// applicable (kind mismatch, strings, non-finite values).
  std::int64_t ulp = -1;

  /// One-line human rendering: path, expected vs got, ULP when known.
  [[nodiscard]] std::string describe() const;
};

struct CompareOutcome {
  bool match = true;
  Divergence first;  ///< Valid only when !match.
};

/// Execute `spec` per its run mode and serialize the deterministic
/// observable outcome as one canonical JSON document:
///   point        -> result statistics + metrics + SWF-stream digest
///   sweep        -> per-point utilization + result statistics
///   saturation   -> maximal gross/net utilization, completions, end time
///   replications -> per-replication means, CI, busy fraction
/// Runs serially (spec.parallelism is ignored: results are
/// parallelism-invariant, and verify parallelises across scenarios).
/// `engine` overrides the spec's event core: kParallel re-runs the
/// scenario on the parallel engine with a real two-thread worker crew —
/// the output must still match the serial golden byte-for-byte, which is
/// how `mcsim verify --engine=parallel` proves the bit-exactness contract
/// (docs/PARALLEL.md).
std::string canonical_observation(const ScenarioSpec& spec,
                                  EngineKind engine = EngineKind::kSerial);

/// Digest of an observation tree: FNV-1a over its flattened
/// `path=value` lines — formatting-independent, so a golden file survives
/// re-serialization but not a changed digit.
std::string observation_digest(const obs::JsonValue& observation);

/// The flattened `path=value\n` view observation_digest() hashes (exposed
/// for tests and for diffing two goldens by hand).
std::string flatten_observation(const obs::JsonValue& observation);

/// The deterministic sub-document of a parsed run manifest — config,
/// result and (when embedded) scenario, re-serialized canonically — i.e.
/// everything in a manifest that is a pure function of the scenario.
/// Wall-clock provenance (clocks.*, provenance.command_line, the run.*
/// metric gauges) is excluded by construction. Two runs of the same
/// scenario on the same build produce byte-identical observations, which
/// is what makes a served manifest comparable bit-exactly against an
/// offline `mcsim run` manifest (docs/SERVING.md, the serve-smoke CI job,
/// tests/serve_server_test.cpp). Throws std::invalid_argument when
/// `manifest` is not a run-manifest document.
std::string manifest_observation(const obs::JsonValue& manifest);

/// Compare two observation trees. Object members are matched by key
/// (missing and extra keys are divergences), arrays element-wise, numeric
/// leaves per `options`. Returns the first divergence in document order.
CompareOutcome compare_observations(const obs::JsonValue& expected,
                                    const obs::JsonValue& got,
                                    const GoldenOptions& options);

/// Re-emit a parsed JSON value on an open writer, reproducing our own
/// serialization byte-for-byte (integer-formatted numbers stay integers;
/// doubles go through the idempotent json_double path). Used wherever a
/// sealed document embeds a previously-serialized observation (golden
/// files, the trace-corpus summaries of exp/corpus.hpp).
void write_parsed_json(obs::JsonWriter& json, const obs::JsonValue& value);

/// Write one complete golden document: schema header, scenario file name
/// and label, the observation digest, provenance (git describe, compiler,
/// build type — documentation, never compared), and the observation
/// itself. `observation_json` must be the canonical_observation() output.
void write_golden_file(std::ostream& out, const ScenarioSpec& spec,
                       const std::string& scenario_file,
                       const std::string& observation_json);

/// Canonical golden path for a scenario file:
/// `<golden_dir>/<scenario stem>.golden.json`.
std::string golden_path_for(const std::string& golden_dir,
                            const std::string& scenario_file);

/// Per-scenario verify outcome.
enum class VerifyStatus : std::uint8_t {
  kPass,           ///< observation matches the golden
  kFail,           ///< divergence or corrupted golden (detail says which)
  kMissingGolden,  ///< scenario has no golden — run --update and review
  kOrphanGolden,   ///< golden has no scenario file (stale corpus)
  kError,          ///< scenario failed to load or run
  kUpdated,        ///< --update rewrote this golden
};

const char* verify_status_name(VerifyStatus status);

struct ScenarioVerdict {
  std::string scenario_file;  ///< basename, e.g. "fig3_gs_limit16.json"
  std::string label;          ///< spec label (empty for orphans/load errors)
  VerifyStatus status = VerifyStatus::kPass;
  /// First-divergence description, digest, or error message.
  std::string detail;
};

struct VerifyReport {
  std::vector<ScenarioVerdict> verdicts;

  /// True when no verdict is kFail / kMissingGolden / kOrphanGolden /
  /// kError (kUpdated counts as success).
  [[nodiscard]] bool ok() const;
};

struct VerifyOptions {
  GoldenOptions compare;
  /// Worker threads for the scenario fan-out (0 = all cores, 1 = serial).
  unsigned parallelism = 0;
  /// Regenerate goldens instead of comparing.
  bool update = false;
  /// Event core used to reproduce each observation. The goldens are always
  /// sealed from the serial reference; kParallel re-runs every scenario on
  /// the parallel engine and demands the same bytes — the end-to-end
  /// bit-exactness gate (`mcsim verify --engine=parallel`). Rejected with
  /// --update: goldens are sealed from the canonical serial engine only.
  EngineKind engine = EngineKind::kSerial;
};

/// Run every `*.json` scenario under `scenario_dir` (sorted by name) and
/// verify it against — or, with options.update, rewrite — its golden under
/// `golden_dir`. Verdicts come back in scenario order, followed by one
/// kOrphanGolden verdict per stale golden. Throws std::invalid_argument
/// when `scenario_dir` holds no scenarios.
VerifyReport verify_goldens(const std::string& scenario_dir,
                            const std::string& golden_dir,
                            const VerifyOptions& options);

}  // namespace mcsim::exp
