/// \file
/// \brief ScenarioSpec: the declarative, serializable description of one
/// simulation experiment — the single source of truth every layer
/// consumes.
///
/// A spec names everything a run depends on: the system layout (cluster
/// sizes and speeds), the workload model, the policy stack (scheduling
/// policy, placement rule, backfill, queue discipline), the seed, run
/// lengths, and the mode-specific parameters (point / sweep / saturation /
/// replications). One construction path — to_simulation_config() /
/// build_simulation() — turns a spec into a runnable engine, and the
/// legacy PaperScenario helpers, the CLI flag parsers, and the examples
/// are all thin translators onto it, so a scenario JSON file, a CLI
/// invocation and a run manifest describe runs identically and
/// reproduce them bit-exactly (docs/SCENARIOS.md).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include <functional>

#include "core/engine.hpp"
#include "core/saturation.hpp"
#include "exp/scenario.hpp"
#include "trace/swf_stream.hpp"
#include "workload/das_workload.hpp"
#include "workload/trace_source.hpp"

namespace mcsim::obs {
class JsonValue;
class JsonWriter;
}  // namespace mcsim::obs

namespace mcsim::exp {

/// What a scenario runs: one load point, a utilization sweep, the
/// constant-backlog saturation estimator, or an independent-replication
/// set.
enum class RunMode : std::uint8_t { kPoint, kSweep, kSaturation, kReplications };

const char* run_mode_name(RunMode mode);
/// Parse a run-mode name ("point", "sweep", "saturation", "replications";
/// case-insensitive). Throws std::invalid_argument otherwise.
RunMode parse_run_mode(const std::string& name);

struct ScenarioSpec {
  /// Version of the scenario JSON layout. Bump on any key rename/removal;
  /// adding keys is backward-compatible and needs no bump.
  static constexpr std::int64_t kSchemaVersion = 1;

  /// Optional human-readable name; label() falls back to the derived
  /// paper-style label when empty.
  std::string name;

  // -- system -----------------------------------------------------------
  /// Multicluster layout. Empty = the DAS default for the policy (4x32;
  /// 1x128 for SC).
  std::vector<std::uint32_t> cluster_sizes;
  /// Relative per-cluster service rates; empty = homogeneous (the paper).
  std::vector<double> cluster_speeds;

  // -- workload ---------------------------------------------------------
  /// Total-job-size distribution: "das-s-128" or "das-s-64".
  std::string size_model = "das-s-128";
  std::uint32_t component_limit = 16;
  double extension_factor = das::kExtensionFactor;
  /// false (with no explicit queue_weights): one hot local queue gets 40%
  /// of local submissions, the others split the rest (the paper's
  /// unbalanced setting; requires the 4-cluster DAS layout).
  bool balanced_queues = true;
  /// Explicit per-cluster submission weights; overrides balanced_queues.
  std::vector<double> queue_weights;
  /// Request structure (unordered reproduces the paper).
  RequestType request_type = RequestType::kUnordered;
  /// Non-empty switches the workload to trace replay (`workload.type:
  /// "trace"`): arrivals, sizes and runtimes come from this SWF log
  /// instead of the synthetic distributions (size_model and the arrival
  /// process are then unused; component_limit/extension_factor still
  /// drive the splitting). Relative paths in scenario files resolve
  /// against the file's directory (load_scenario).
  std::string trace_path;
  /// Trace replay: multiplies every submit time (< 1 compresses the trace
  /// and raises the offered load; the sweep mode ignores this and derives
  /// a scale per target utilization).
  double trace_scale = 1.0;
  /// Trace replay: bounded-lookahead window of the streaming reader (0 =
  /// TraceWorkloadConfig::kDefaultLookaheadWindow). Raise it for archive
  /// logs whose submit order is scrambled beyond the default window
  /// (docs/WORKLOADS.md).
  std::uint32_t trace_lookahead = 0;
  /// Test-only hook: deliver the trace by loading the whole log into
  /// memory instead of streaming it — the legacy mode the streaming path
  /// is pinned bit-identical against
  /// (tests/trace_streaming_equivalence_test.cpp, the CI peak-RSS gate).
  /// Results never differ; only peak memory does.
  bool trace_whole_file = false;

  // -- policy -----------------------------------------------------------
  /// The policy alias: names the canonical pipeline composition this spec
  /// starts from (docs/SCHEDULING.md). The knobs below tune its stages;
  /// queue_structure/coallocation override the structural stages outright.
  PolicyKind policy = PolicyKind::kGS;
  PlacementRule placement = PlacementRule::kWorstFit;
  /// Extension (paper: kNone). Needs the single-global-queue structure.
  BackfillMode backfill = BackfillMode::kNone;
  /// Extension (paper: kFcfs). Composes with every queue structure.
  QueueDiscipline discipline = QueueDiscipline::kFcfs;
  /// Pipeline override: replace the policy's canonical queue structure
  /// (`policy.pipeline.queue` in scenario JSON). Unset = the expansion.
  std::optional<QueueStructure> queue_structure;
  /// Pipeline override: replace the policy's canonical co-allocation rule
  /// (`policy.pipeline.coallocation`). Unset = the expansion.
  std::optional<CoAllocationRule> coallocation;

  // -- run --------------------------------------------------------------
  RunMode mode = RunMode::kPoint;
  /// Target gross utilization (point and replications modes).
  double utilization = 0.5;
  /// Explicit sweep grid; empty = grid(sweep_from, sweep_to, sweep_step).
  std::vector<double> utilization_grid;
  double sweep_from = 0.30;
  double sweep_to = 0.80;
  double sweep_step = 0.05;
  /// Arrivals per run (point/sweep/replications).
  std::uint64_t sim_jobs = 30000;
  /// Independent replications (replications mode).
  std::uint32_t replications = 10;
  /// Completions / constant backlog (saturation mode).
  std::uint64_t saturation_completions = 40000;
  std::uint64_t saturation_backlog = 200;
  std::uint64_t seed = 1;
  double warmup_fraction = 0.1;
  std::uint64_t batch_count = 20;
  /// The scenario's worker-thread budget (`--jobs`; 0 = all cores). One
  /// budget covers both layers of parallelism: sweep/replications fan runs
  /// out across an exp::Runner pool of this size (each run's engine then
  /// gets one thread), while single-run modes hand the whole budget to the
  /// parallel engine's worker crew. Either way at most this many cores are
  /// busy (docs/PARALLEL.md, "One worker budget").
  unsigned parallelism = 1;
  /// Event core: serial (the canonical reference) or parallel
  /// (docs/PARALLEL.md). Results are bit-identical by contract — `mcsim
  /// verify --engine=parallel` re-proves it against the sealed goldens —
  /// so the key is omitted from scenario JSON when serial.
  EngineKind engine = EngineKind::kSerial;

  /// Engine worker threads for a single run at the given runner fan-out,
  /// under the shared budget above: a lone run gets the whole budget, runs
  /// inside an N-way Runner pool get budget/N (at least 1, i.e. inline).
  [[nodiscard]] unsigned engine_threads_for(unsigned runner_jobs) const;

  /// True when this spec replays a recorded trace instead of drawing the
  /// synthetic workload.
  [[nodiscard]] bool is_trace() const { return !trace_path.empty(); }

  /// The full pipeline composition this spec describes: the policy's
  /// canonical expansion with the tuning knobs applied, then the
  /// queue_structure/coallocation overrides.
  [[nodiscard]] PipelineSpec pipeline() const;

  /// Whether the spec overrides a structural stage of the policy's
  /// canonical expansion (and so needs the pipeline JSON object).
  [[nodiscard]] bool has_pipeline_override() const {
    return queue_structure.has_value() || coallocation.has_value();
  }

  [[nodiscard]] std::string label() const;

  /// The paper-scenario view of this spec (for report legends and the
  /// legacy helpers). Extensions beyond PaperScenario's vocabulary
  /// (backfill, discipline, custom layouts) are not representable there.
  [[nodiscard]] PaperScenario paper_scenario() const;

  /// The sweep grid this spec describes: utilization_grid when given,
  /// otherwise generated from sweep_from/to/step.
  [[nodiscard]] std::vector<double> sweep_grid() const;

  /// Lift a PaperScenario into the spec vocabulary (point mode, default
  /// run lengths; callers override seed/sim_jobs/mode as needed).
  static ScenarioSpec from_paper(const PaperScenario& scenario);

  bool operator==(const ScenarioSpec&) const = default;
};

/// Check the spec for internal consistency (known size model, aligned
/// weights/speeds, extensions restricted to the single-queue policies,
/// positive run lengths, ...). Throws std::invalid_argument naming the
/// offending field.
void validate(const ScenarioSpec& spec);

/// How a trace path becomes a validated stream of records. The default
/// resolver scans and then re-reads the file (scan_swf_file +
/// SwfFileStream); the experiment daemon's warm cache substitutes one that
/// serves both from memory (src/serve/trace_cache.hpp). The scan and the
/// records a resolver returns must describe the same log — the derived
/// arrival scale, validation counts and manifest provenance all come from
/// the scan, so a mismatched pair would silently skew results.
struct ResolvedTrace {
  SwfScan scan;
  /// Fresh per-engine record stream over the log, in an order no record of
  /// which is displaced more than the lookahead window from its
  /// (submit_time, job_id) sort position. Must be non-null.
  TraceSourceFactory open_source;
};
using TraceResolver = std::function<ResolvedTrace(const std::string& path)>;

/// The resolver to_simulation_config uses when none is given: one
/// O(1)-memory validating scan, then a fresh SwfFileStream per engine.
ResolvedTrace resolve_trace_from_file(const std::string& path);

/// THE construction path from a spec to an engine config — every layer
/// (CLI, scenario files, manifests, PaperScenario helpers, examples)
/// funnels through here, which is what makes their runs bit-identical.
/// The one-argument form uses spec.utilization; the two-argument form is
/// for sweep points. The three-argument form lets a caller substitute how
/// trace paths are opened (nullptr resolver = the file-backed default);
/// results are resolver-invariant by the streaming-equivalence contract
/// (tests/serve_server_test.cpp pins the warm-cache case).
SimulationConfig to_simulation_config(const ScenarioSpec& spec);
SimulationConfig to_simulation_config(const ScenarioSpec& spec, double utilization);
SimulationConfig to_simulation_config(const ScenarioSpec& spec, double utilization,
                                      const TraceResolver& resolve_trace);

/// The constant-backlog estimator's config for this spec (saturation
/// mode). Saturation keeps its own warmup default; cluster speeds are not
/// supported there.
SaturationConfig to_saturation_config(const ScenarioSpec& spec);

/// Build a ready-to-run engine for the spec (at spec.utilization).
/// Callers attach sinks/metrics and call run().
std::unique_ptr<MulticlusterSimulation> build_simulation(const ScenarioSpec& spec);

/// Write the spec as a JSON object on an already-open writer (used to
/// embed the spec in run manifests).
void write_scenario_json(obs::JsonWriter& json, const ScenarioSpec& spec);

/// Write a standalone scenario document (the `mcsim run` input format).
void write_scenario_file(std::ostream& out, const ScenarioSpec& spec);

/// Rebuild a spec from a parsed scenario object. Missing keys keep their
/// defaults; unknown keys are rejected (typo protection). Throws
/// std::invalid_argument on schema violations.
ScenarioSpec scenario_from_json(const obs::JsonValue& value);

/// Load a spec from a file holding either a scenario document or a run
/// manifest with an embedded "scenario" object (`mcsim rerun`).
ScenarioSpec load_scenario(const std::string& path);

}  // namespace mcsim::exp
