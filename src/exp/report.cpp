#include "exp/report.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/csv.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace mcsim {

std::vector<std::size_t> performance_order(const std::vector<SweepSeries>& series) {
  std::vector<std::size_t> order(series.size());
  std::iota(order.begin(), order.end(), 0);
  auto response_at_util = [](const SweepSeries& s, double util) {
    for (const auto& point : s.points) {
      if (!point.result.unstable && std::fabs(point.target_gross_utilization - util) < 1e-9) {
        return point.result.mean_response();
      }
    }
    return std::numeric_limits<double>::infinity();
  };
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const double max_a = series[a].max_stable_utilization();
    const double max_b = series[b].max_stable_utilization();
    if (std::fabs(max_a - max_b) > 1e-9) return max_a > max_b;
    const double common = std::min(max_a, max_b);
    return response_at_util(series[a], common) < response_at_util(series[b], common);
  });
  return order;
}

void print_panel(std::ostream& out, const std::string& title,
                 const std::vector<SweepSeries>& series) {
  out << "== " << title << " ==\n";
  const auto order = performance_order(series);
  out << "legend (best first): ";
  for (std::size_t i = 0; i < order.size(); ++i) {
    if (i) out << ", ";
    out << series[order[i]].scenario.label();
  }
  out << "\n\n";

  for (std::size_t idx : order) {
    const auto& s = series[idx];
    TextTable table({"utilization", "mean response (s)", "ci95 (s)", "p95 (s)", "status"});
    for (const auto& point : s.points) {
      table.add_row({format_util(point.target_gross_utilization),
                     point.result.unstable ? "-" : format_double(point.result.mean_response(), 1),
                     point.result.unstable ? "-"
                                           : format_double(point.result.response_ci.halfwidth, 1),
                     point.result.unstable ? "-" : format_double(point.result.response_p95, 1),
                     point.result.unstable ? "unstable" : "ok"});
    }
    out << "-- " << s.scenario.label()
        << "  (max stable utilization ~ " << format_util(s.max_stable_utilization()) << ")\n"
        << table.render() << '\n';
  }
}

void write_panel_csv(std::ostream& out, const std::string& panel,
                     const std::vector<SweepSeries>& series, bool with_header) {
  CsvWriter csv(out);
  if (with_header) {
    csv.header({"panel", "scenario", "target_gross_utilization", "mean_response", "ci95",
                "p95", "offered_net_utilization", "busy_fraction", "measured_jobs",
                "unstable"});
  }
  for (const auto& s : series) {
    for (const auto& point : s.points) {
      csv.add(panel)
          .add(s.scenario.label())
          .add(point.target_gross_utilization, 4)
          .add(point.result.mean_response(), 2)
          .add(point.result.response_ci.halfwidth, 2)
          .add(point.result.response_p95, 2)
          .add(point.result.offered_net_utilization, 4)
          .add(point.result.busy_fraction, 4)
          .add(static_cast<std::uint64_t>(point.result.measured_jobs))
          .add(std::string(point.result.unstable ? "1" : "0"));
      csv.end_row();
    }
  }
}

void print_ascii_plot(std::ostream& out, const std::vector<SweepSeries>& series, double y_max,
                      int width, int height) {
  if (series.empty()) return;
  std::vector<std::string> canvas(static_cast<std::size_t>(height),
                                  std::string(static_cast<std::size_t>(width), ' '));
  const char* markers = "*+x#o@%&";
  for (std::size_t s = 0; s < series.size(); ++s) {
    const char mark = markers[s % 8];
    for (const auto& point : series[s].points) {
      if (point.result.unstable) continue;
      const double x = point.target_gross_utilization;  // 0..1
      const double y = std::min(point.result.mean_response(), y_max);
      const int col = std::min(width - 1, static_cast<int>(x * (width - 1)));
      const int row =
          height - 1 - std::min(height - 1, static_cast<int>(y / y_max * (height - 1)));
      canvas[static_cast<std::size_t>(row)][static_cast<std::size_t>(col)] = mark;
    }
  }
  out << "response (0.." << format_double(y_max, 0) << " s) vs utilization (0..1)\n";
  for (const auto& line : canvas) out << '|' << line << "|\n";
  out << '+' << std::string(static_cast<std::size_t>(width), '-') << "+\n";
  for (std::size_t s = 0; s < series.size(); ++s) {
    out << "  '" << markers[s % 8] << "' = " << series[s].scenario.label() << '\n';
  }
}

}  // namespace mcsim
