#include "exp/replications.hpp"

#include "stats/welford.hpp"
#include "util/assert.hpp"

namespace mcsim {

ReplicationResult run_replications(const PaperScenario& scenario,
                                   double target_gross_utilization,
                                   std::uint64_t jobs_per_replication,
                                   std::uint32_t replications, std::uint64_t base_seed) {
  MCSIM_REQUIRE(replications > 0, "need at least one replication");
  ReplicationResult result;
  RunningStats means;
  RunningStats busy;
  for (std::uint32_t r = 0; r < replications; ++r) {
    const auto config = make_paper_config(scenario, target_gross_utilization,
                                          jobs_per_replication, base_seed + r);
    const auto run = run_simulation(config);
    if (run.unstable) {
      ++result.unstable_replications;
      continue;
    }
    result.replication_means.push_back(run.mean_response());
    means.add(run.mean_response());
    busy.add(run.busy_fraction);
  }
  result.response_ci = mean_confidence(means);
  result.mean_busy_fraction = busy.mean();
  return result;
}

}  // namespace mcsim
