#include "exp/replications.hpp"

#include "exp/runner.hpp"
#include "stats/welford.hpp"
#include "util/assert.hpp"

namespace mcsim {

ReplicationResult run_replications(const PaperScenario& scenario,
                                   double target_gross_utilization,
                                   std::uint64_t jobs_per_replication,
                                   std::uint32_t replications, std::uint64_t base_seed,
                                   unsigned parallelism) {
  MCSIM_REQUIRE(replications > 0, "need at least one replication");
  exp::Runner runner(parallelism);
  const auto runs = runner.map(replications, [&](std::size_t r) {
    return run_simulation(make_paper_config(scenario, target_gross_utilization,
                                            jobs_per_replication,
                                            base_seed + static_cast<std::uint64_t>(r)));
  });

  // Fold in replication order so the accumulated statistics (and their
  // floating-point rounding) are independent of completion order.
  ReplicationResult result;
  RunningStats means;
  RunningStats busy;
  for (const auto& run : runs) {
    if (run.unstable) {
      ++result.unstable_replications;
      continue;
    }
    result.replication_means.push_back(run.mean_response());
    means.add(run.mean_response());
    busy.add(run.busy_fraction);
  }
  result.response_ci = mean_confidence(means);
  result.mean_busy_fraction = busy.mean();
  return result;
}

}  // namespace mcsim
