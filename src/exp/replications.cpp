#include "exp/replications.hpp"

#include "exp/runner.hpp"
#include "exp/scenario_spec.hpp"
#include "stats/welford.hpp"
#include "util/assert.hpp"

namespace mcsim {

ReplicationResult run_replications(const PaperScenario& scenario,
                                   double target_gross_utilization,
                                   std::uint64_t jobs_per_replication,
                                   std::uint32_t replications, std::uint64_t base_seed,
                                   unsigned parallelism) {
  exp::ScenarioSpec spec = exp::ScenarioSpec::from_paper(scenario);
  spec.mode = exp::RunMode::kReplications;
  spec.utilization = target_gross_utilization;
  spec.sim_jobs = jobs_per_replication;
  spec.replications = replications;
  spec.seed = base_seed;
  spec.parallelism = parallelism;
  return run_replications(spec);
}

ReplicationResult run_replications(const exp::ScenarioSpec& spec) {
  MCSIM_REQUIRE(spec.replications > 0, "need at least one replication");
  exp::Runner runner(spec.parallelism);
  const auto runs = runner.map(spec.replications, [&](std::size_t r) {
    exp::ScenarioSpec replication = spec;
    replication.seed = spec.seed + static_cast<std::uint64_t>(r);
    SimulationConfig config =
        exp::to_simulation_config(replication, spec.utilization);
    // Split the shared --jobs budget across the runner fan-out so the
    // parallel engine never oversubscribes (docs/PARALLEL.md).
    config.engine_threads = spec.engine_threads_for(runner.jobs());
    return run_simulation(config);
  });

  // Fold in replication order so the accumulated statistics (and their
  // floating-point rounding) are independent of completion order.
  ReplicationResult result;
  RunningStats means;
  RunningStats busy;
  for (const auto& run : runs) {
    if (run.unstable) {
      ++result.unstable_replications;
      continue;
    }
    result.replication_means.push_back(run.mean_response());
    means.add(run.mean_response());
    busy.add(run.busy_fraction);
  }
  result.response_ci = mean_confidence(means);
  result.mean_busy_fraction = busy.mean();
  return result;
}

}  // namespace mcsim
