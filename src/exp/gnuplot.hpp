// Gnuplot output: turn a figure panel into a .dat + .gp file pair so the
// paper's figures can be regenerated as actual plots
// (`gnuplot fig3_limit16.gp` -> fig3_limit16.png).
#pragma once

#include <string>
#include <vector>

#include "exp/sweep.hpp"

namespace mcsim {

struct GnuplotFiles {
  std::string data_path;
  std::string script_path;
};

/// Write `<basename>.dat` (one block per series: utilization, response,
/// ci95) and `<basename>.gp` (a ready-to-run script in the paper's axis
/// style: response time 0..10000 s over utilization 0..1).
/// `directory` must exist. Returns the generated paths.
GnuplotFiles write_gnuplot_panel(const std::string& directory, const std::string& basename,
                                 const std::string& title,
                                 const std::vector<SweepSeries>& series,
                                 double y_max = 10000.0);

}  // namespace mcsim
