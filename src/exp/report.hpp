// Rendering experiment output in the paper's vocabulary: one block per
// figure panel with a curve per scenario (utilization -> mean response
// time), legends ordered best-first like the paper's figure legends, and a
// machine-readable CSV of every point.
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "exp/sweep.hpp"

namespace mcsim {

/// Print a figure panel: every series as "utilization  response  ci95"
/// rows, preceded by a legend sorted by performance (best first), matching
/// the figures' right-to-left legend order.
void print_panel(std::ostream& out, const std::string& title,
                 const std::vector<SweepSeries>& series);

/// Append all points of all series to a CSV stream (one row per point).
void write_panel_csv(std::ostream& out, const std::string& panel,
                     const std::vector<SweepSeries>& series, bool with_header);

/// Legend order used by print_panel: scenarios sorted by descending maximal
/// stable utilization, ties by lower response at the highest common stable
/// point.
std::vector<std::size_t> performance_order(const std::vector<SweepSeries>& series);

/// An ASCII plot of the response-time curves (response on y, utilization on
/// x), so the bench output visually mirrors the paper's figures.
void print_ascii_plot(std::ostream& out, const std::vector<SweepSeries>& series,
                      double y_max = 10000.0, int width = 72, int height = 20);

}  // namespace mcsim
