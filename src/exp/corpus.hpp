/// \file
/// \brief Trace-corpus replay: drive the schedulers over a directory of
/// archive-style SWF logs, one streamed replay per log, each scaled to the
/// same target utilization — and pin every log's result statistics in a
/// sealed per-log summary golden (docs/WORKLOADS.md).
///
/// The corpus runner is the archive-scale face of trace replay. For every
/// `*.swf` under the corpus directory it
///
///   1. pre-scans the log (trace::scan_swf_file): O(1)-memory pass that
///      validates every line, reads the PWA header directives, and
///      collects the aggregate facts scale derivation needs;
///   2. sizes the machine from the log's own header — MaxProcs (or
///      MaxNodes) rounded up to a multiple of the cluster count, split
///      evenly — falling back to the widest job when the header declares
///      nothing;
///   3. derives the arrival scale that makes the log offer the target
///      gross utilization on that machine (trace_scale_for_utilization);
///   4. replays it streaming (bounded-lookahead TraceWorkload) and
///      serializes the deterministic result statistics as one canonical
///      observation.
///
/// With a golden directory the observation is compared bit-exactly against
/// — or, in update mode, written to — `<log stem>.summary.json`, the same
/// sealed-document discipline as the scenario goldens (exp/golden.hpp):
/// an `observed` subtree plus an FNV-1a digest seal over its flattened
/// `path=value` view, verified on both CI compilers.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "exp/golden.hpp"

namespace mcsim::exp {

struct ScenarioSpec;

/// Version of the corpus-summary JSON layout. Bump on any key
/// rename/removal; adding observation keys changes digests (regenerate
/// with --update-goldens) but needs no bump.
inline constexpr std::int64_t kCorpusSummarySchemaVersion = 1;

/// How the corpus runner treats the summary-golden directory.
enum class CorpusGoldenMode : std::uint8_t {
  kNone,    ///< replay and report only; no goldens touched
  kCheck,   ///< compare each log's observation against its sealed summary
  kUpdate,  ///< (re)write each log's sealed summary
};

struct CorpusOptions {
  /// Per-log target gross utilization the arrival scale is derived for.
  double utilization = 0.7;
  /// Streaming lookahead override (0 = TraceWorkloadConfig default).
  std::uint32_t lookahead = 0;
  /// Test-only: deliver each log whole-file instead of streaming (the
  /// equivalence baseline; results never differ, only peak memory does).
  bool whole_file = false;
  CorpusGoldenMode golden_mode = CorpusGoldenMode::kNone;
  /// Directory of `<log stem>.summary.json` sealed summaries (check /
  /// update modes).
  std::string golden_dir;
};

/// One corpus log's outcome: replay facts for the report table plus the
/// golden verdict (kPass when golden_mode is kNone and the replay ran).
struct CorpusLogVerdict {
  std::string log_file;  ///< basename, e.g. "sdsc_sp2_style.swf"
  VerifyStatus status = VerifyStatus::kPass;
  /// Digest, first divergence, or error message.
  std::string detail;
  std::uint64_t total_records = 0;
  std::uint64_t usable_records = 0;
  /// Processors the header declares (MaxProcs, else MaxNodes); 0 when the
  /// log declares neither and the machine was sized from the widest job.
  std::uint64_t header_processors = 0;
  /// The machine the log replayed on (header width rounded up to a
  /// cluster-count multiple).
  std::uint32_t machine_processors = 0;
  double arrival_scale = 0.0;
};

struct CorpusReport {
  std::vector<CorpusLogVerdict> verdicts;

  /// True when no verdict is kFail / kMissingGolden / kOrphanGolden /
  /// kError (kUpdated counts as success).
  [[nodiscard]] bool ok() const;
};

/// Canonical summary-golden path for a log file:
/// `<golden_dir>/<log stem>.summary.json`.
std::string corpus_summary_path_for(const std::string& golden_dir,
                                    const std::string& log_file);

/// Replay one log per the corpus policy above and return its canonical
/// observation as JSON text (the `observed` subtree of the sealed
/// summary). `base` supplies everything but the machine and the trace
/// fields: policy stack, splitting parameters, seed, run mode is forced
/// to point. Exposed for tests; run_corpus() is the driver.
std::string corpus_log_observation(const ScenarioSpec& base,
                                   const std::string& log_path,
                                   const CorpusOptions& options,
                                   CorpusLogVerdict* facts = nullptr);

/// Replay every `*.swf` under `corpus_dir` (sorted by name). Verdicts come
/// back in log order; check/update modes append one kOrphanGolden verdict
/// per stale summary. Throws std::invalid_argument when `corpus_dir` holds
/// no logs or a golden mode is requested without a golden_dir.
CorpusReport run_corpus(const ScenarioSpec& base, const std::string& corpus_dir,
                        const CorpusOptions& options);

}  // namespace mcsim::exp
