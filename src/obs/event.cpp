#include "obs/event.hpp"

namespace mcsim::obs {

const char* event_kind_name(EventKind kind) {
  switch (kind) {
    case EventKind::kArrival: return "arrival";
    case EventKind::kHeadOfQueue: return "head-of-queue";
    case EventKind::kPlacementAttempt: return "placement-attempt";
    case EventKind::kPlacementReject: return "placement-reject";
    case EventKind::kStart: return "start";
    case EventKind::kFinish: return "finish";
  }
  return "?";
}

}  // namespace mcsim::obs
