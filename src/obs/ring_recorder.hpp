/// \file
/// \brief RingRecorder — bounded binary recording of trace events, with
/// pluggable emitters for streaming consumers.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <vector>

#include "obs/sink.hpp"

namespace mcsim::obs {

/// A streaming consumer attached to a RingRecorder: invoked once per event,
/// in emission order, before the event is stored in the ring.
using Emitter = std::function<void(const TraceEvent&)>;

/// Fixed-capacity ring buffer of TraceEvents.
///
/// The ring keeps the most recent `capacity` events (older ones are
/// overwritten, counted in dropped()) so a long run can always be inspected
/// "near the end" at O(capacity) memory — the AccaSim-style flight
/// recorder. Consumers that need *every* event (e.g. SwfTraceBuilder)
/// attach as emitters instead of growing the ring.
///
/// The stored events are a contiguous binary image; write_binary()/
/// read_binary() dump and reload them (same-architecture format, magic
/// "MCT1").
class RingRecorder final : public TraceSink {
 public:
  /// A recorder keeping the last `capacity` events (>= 1).
  explicit RingRecorder(std::size_t capacity = kDefaultCapacity);

  void record(const TraceEvent& event) override;

  /// Attach a streaming consumer; emitters run in attachment order.
  void add_emitter(Emitter emitter);

  /// Events currently held (<= capacity()).
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] std::size_t capacity() const { return buffer_.size(); }
  /// Total events ever recorded.
  [[nodiscard]] std::uint64_t total_recorded() const { return total_; }
  /// Events overwritten because the ring was full.
  [[nodiscard]] std::uint64_t dropped() const {
    return total_ - static_cast<std::uint64_t>(size_);
  }

  /// The held events, oldest first.
  [[nodiscard]] std::vector<TraceEvent> snapshot() const;

  /// Forget all held events (totals keep counting).
  void clear();

  /// Dump the held events (oldest first) as a binary stream.
  void write_binary(std::ostream& out) const;

  /// Reload a write_binary() dump. Throws std::invalid_argument on a
  /// malformed stream.
  static std::vector<TraceEvent> read_binary(std::istream& in);

  static constexpr std::size_t kDefaultCapacity = 65536;

 private:
  std::vector<TraceEvent> buffer_;
  std::vector<Emitter> emitters_;
  std::size_t head_ = 0;  // next write position
  std::size_t size_ = 0;
  std::uint64_t total_ = 0;
};

}  // namespace mcsim::obs
