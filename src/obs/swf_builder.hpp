/// \file
/// \brief SwfTraceBuilder — a TraceSink that assembles the realised
/// schedule of a run into a Standard Workload Format trace.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/sink.hpp"
#include "trace/swf.hpp"

namespace mcsim::obs {

/// Builds one TraceRecord per *finished* job from the event stream:
/// kArrival supplies submit time, size and origin queue (exported as the
/// SWF user id), kStart the wait time, kFinish the realised run time.
///
/// Records are appended in finish order — the order the engine folded each
/// job's response time into its statistics — and wait/run are taken
/// verbatim from the event payloads, so re-reading the written SWF file
/// reconstructs the run's response-time statistics bit-exactly (see
/// docs/TRACING.md, "Round-tripping a run").
///
/// Jobs still queued or running when the simulation stops (e.g. an
/// unstable run) produce no record; count them as
/// arrivals() - trace().records.size().
class SwfTraceBuilder final : public TraceSink {
 public:
  SwfTraceBuilder() = default;

  void record(const TraceEvent& event) override;

  /// Jobs whose arrival was observed.
  [[nodiscard]] std::uint64_t arrivals() const { return arrivals_; }

  /// The assembled trace (records in finish order). `header_comments`
  /// starts empty; callers add provenance lines before writing.
  [[nodiscard]] const SwfTrace& trace() const { return trace_; }
  [[nodiscard]] SwfTrace& trace() { return trace_; }

 private:
  struct PendingJob {
    double submit = 0.0;
    double wait = 0.0;
    std::uint32_t size = 0;
    std::uint32_t user = 0;
  };

  SwfTrace trace_;
  std::unordered_map<std::uint64_t, PendingJob> pending_;
  std::uint64_t arrivals_ = 0;
};

}  // namespace mcsim::obs
