#include "obs/swf_builder.hpp"

namespace mcsim::obs {

void SwfTraceBuilder::record(const TraceEvent& event) {
  switch (event.kind) {
    case EventKind::kArrival: {
      ++arrivals_;
      PendingJob& job = pending_[event.job];
      job.submit = event.time;
      job.size = event.size;
      job.user = event.cluster >= 0 ? static_cast<std::uint32_t>(event.cluster) : 0;
      break;
    }
    case EventKind::kStart: {
      auto it = pending_.find(event.job);
      if (it != pending_.end()) it->second.wait = event.value;
      break;
    }
    case EventKind::kFinish: {
      auto it = pending_.find(event.job);
      if (it == pending_.end()) break;  // finish without observed arrival
      TraceRecord rec;
      rec.job_id = event.job + 1;  // SWF job ids are 1-based by convention
      rec.submit_time = it->second.submit;
      rec.wait_time = it->second.wait;
      rec.run_time = event.value;
      rec.processors = it->second.size;
      rec.user_id = it->second.user;
      trace_.records.push_back(rec);
      pending_.erase(it);
      break;
    }
    case EventKind::kHeadOfQueue:
    case EventKind::kPlacementAttempt:
    case EventKind::kPlacementReject:
      break;  // decision events carry no schedule fields
  }
}

}  // namespace mcsim::obs
