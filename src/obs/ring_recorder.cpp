#include "obs/ring_recorder.hpp"

#include <cstring>
#include <istream>
#include <ostream>

#include "util/assert.hpp"

namespace mcsim::obs {

RingRecorder::RingRecorder(std::size_t capacity) {
  MCSIM_REQUIRE(capacity > 0, "RingRecorder capacity must be positive");
  buffer_.resize(capacity);
}

void RingRecorder::record(const TraceEvent& event) {
  for (const Emitter& emitter : emitters_) emitter(event);
  buffer_[head_] = event;
  head_ = (head_ + 1) % buffer_.size();
  if (size_ < buffer_.size()) ++size_;
  ++total_;
}

void RingRecorder::add_emitter(Emitter emitter) {
  MCSIM_REQUIRE(static_cast<bool>(emitter), "emitter must be callable");
  emitters_.push_back(std::move(emitter));
}

std::vector<TraceEvent> RingRecorder::snapshot() const {
  std::vector<TraceEvent> events;
  events.reserve(size_);
  // Oldest event sits at head_ when the ring has wrapped, at 0 otherwise.
  const std::size_t begin = size_ == buffer_.size() ? head_ : 0;
  for (std::size_t i = 0; i < size_; ++i) {
    events.push_back(buffer_[(begin + i) % buffer_.size()]);
  }
  return events;
}

void RingRecorder::clear() {
  head_ = 0;
  size_ = 0;
}

namespace {
constexpr char kMagic[4] = {'M', 'C', 'T', '1'};
}  // namespace

void RingRecorder::write_binary(std::ostream& out) const {
  const auto events = snapshot();
  const auto count = static_cast<std::uint64_t>(events.size());
  out.write(kMagic, sizeof kMagic);
  out.write(reinterpret_cast<const char*>(&count), sizeof count);
  if (!events.empty()) {
    out.write(reinterpret_cast<const char*>(events.data()),
              static_cast<std::streamsize>(events.size() * sizeof(TraceEvent)));
  }
}

std::vector<TraceEvent> RingRecorder::read_binary(std::istream& in) {
  char magic[4] = {};
  in.read(magic, sizeof magic);
  MCSIM_REQUIRE(in.good() && std::memcmp(magic, kMagic, sizeof kMagic) == 0,
                "not an mcsim binary trace (bad magic)");
  std::uint64_t count = 0;
  in.read(reinterpret_cast<char*>(&count), sizeof count);
  MCSIM_REQUIRE(in.good(), "truncated binary trace header");
  std::vector<TraceEvent> events(count);
  if (count > 0) {
    in.read(reinterpret_cast<char*>(events.data()),
            static_cast<std::streamsize>(count * sizeof(TraceEvent)));
    MCSIM_REQUIRE(in.gcount() ==
                      static_cast<std::streamsize>(count * sizeof(TraceEvent)),
                  "truncated binary trace body");
  }
  return events;
}

}  // namespace mcsim::obs
