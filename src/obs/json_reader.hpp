/// \file
/// \brief A minimal recursive-descent JSON reader (no external
/// dependencies) — the inverse of json.hpp's JsonWriter.
///
/// Purpose-built for reading scenario files and run manifests back in:
/// numbers keep their raw source text, so `as_double()` goes through
/// strtod exactly once and recovers the identical bits the writer's
/// max_digits10 encoding produced. Object members preserve document
/// order; lookups are linear (documents here are small).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace mcsim::obs {

/// One parsed JSON value: a tagged tree of null/bool/number/string/
/// array/object. Accessors validate the kind with MCSIM_REQUIRE, so a
/// schema mismatch surfaces as std::invalid_argument naming the problem
/// rather than as garbage values.
class JsonValue {
 public:
  enum class Kind : std::uint8_t { kNull, kBool, kNumber, kString, kArray, kObject };

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] bool is_null() const { return kind_ == Kind::kNull; }
  [[nodiscard]] bool is_bool() const { return kind_ == Kind::kBool; }
  [[nodiscard]] bool is_number() const { return kind_ == Kind::kNumber; }
  [[nodiscard]] bool is_string() const { return kind_ == Kind::kString; }
  [[nodiscard]] bool is_array() const { return kind_ == Kind::kArray; }
  [[nodiscard]] bool is_object() const { return kind_ == Kind::kObject; }

  [[nodiscard]] bool as_bool() const;
  /// strtod of the raw number text — bit-exact for max_digits10 output.
  [[nodiscard]] double as_double() const;
  /// Integer readers; require the number to be integral and in range.
  [[nodiscard]] std::int64_t as_int() const;
  [[nodiscard]] std::uint64_t as_uint() const;
  [[nodiscard]] const std::string& as_string() const;
  /// The unparsed number text as it appeared in the document.
  [[nodiscard]] const std::string& number_text() const;

  /// Elements of an array / members of an object (throws otherwise).
  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] const JsonValue& at(std::size_t index) const;
  [[nodiscard]] const std::vector<JsonValue>& items() const;

  [[nodiscard]] bool contains(const std::string& key) const;
  /// Member lookup; throws std::invalid_argument naming a missing key.
  [[nodiscard]] const JsonValue& at(const std::string& key) const;
  /// Member lookup; nullptr when absent (for optional keys).
  [[nodiscard]] const JsonValue* find(const std::string& key) const;
  [[nodiscard]] const std::vector<std::pair<std::string, JsonValue>>& members() const;

 private:
  friend class JsonParser;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  /// String value, or the raw number text.
  std::string scalar_;
  std::vector<JsonValue> items_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

/// Parse one complete JSON document (trailing whitespace allowed, trailing
/// garbage rejected). Throws std::invalid_argument with an offset-annotated
/// message on malformed input.
JsonValue parse_json(std::string_view text);

/// Read the whole stream and parse it as one document.
JsonValue parse_json(std::istream& in);

/// Read and parse a file; the error message names the path.
JsonValue parse_json_file(const std::string& path);

}  // namespace mcsim::obs
