/// \file
/// \brief A minimal streaming JSON writer (no external dependencies).
///
/// Purpose-built for the run manifest and metrics export: objects, arrays,
/// strings with escaping, and doubles printed with max_digits10 precision
/// so every value round-trips bit-exactly through strtod — the property the
/// manifest's reproducibility guarantee rests on.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace mcsim::obs {

/// Escape a string for inclusion in a JSON document (no surrounding quotes).
std::string json_escape(std::string_view text);

/// Render a double as a JSON number that parses back to the identical bits
/// (max_digits10 significant digits; non-finite values become null).
std::string json_double(double value);

/// Streaming writer producing pretty-printed (2-space indented) JSON.
///
/// Usage:
///   JsonWriter json(out);
///   json.begin_object();
///   json.key("seed").value(std::uint64_t{1});
///   json.key("metrics").begin_object(); ... json.end_object();
///   json.end_object();
///
/// The writer tracks nesting and comma placement; keys and values must
/// alternate correctly inside objects (enforced with MCSIM_REQUIRE).
class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& out) : out_(out) {}

  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Emit an object key; the next call must produce its value.
  JsonWriter& key(std::string_view name);

  JsonWriter& value(std::string_view text);
  JsonWriter& value(const char* text) { return value(std::string_view(text)); }
  JsonWriter& value(double number);
  JsonWriter& value(std::uint64_t number);
  JsonWriter& value(std::int64_t number);
  JsonWriter& value(bool flag);
  JsonWriter& null();

 private:
  struct Scope {
    bool is_object = false;
    bool has_items = false;
  };

  void prepare_value();
  void indent();

  std::ostream& out_;
  std::vector<Scope> stack_;
  bool key_pending_ = false;
};

}  // namespace mcsim::obs
