/// \file
/// \brief The per-job trace-event taxonomy of the observability layer.
///
/// Every scheduling decision the engine or a policy makes is describable as
/// a fixed-size, trivially copyable TraceEvent, so a recorder can store
/// events in a flat binary ring without allocation and an exporter can
/// reconstruct the realised schedule (docs/TRACING.md documents the
/// taxonomy and the SWF field mapping).
#pragma once

#include <cstdint>
#include <type_traits>

namespace mcsim::obs {

/// What happened to a job. The lifecycle of one job is
///   kArrival -> kHeadOfQueue -> (kPlacementAttempt [kPlacementReject])*
///            -> kStart -> kFinish
/// where the attempt/reject pairs repeat each time the scheduler considers
/// the job (on arrivals and departures) until a placement succeeds.
enum class EventKind : std::uint8_t {
  kArrival = 0,           ///< The job entered the system (submit time).
  kHeadOfQueue = 1,       ///< First time the scheduler considered the job
                          ///< (it reached the head of its queue, or a
                          ///< backfilling window reached it).
  kPlacementAttempt = 2,  ///< The scheduler asked the placement rule for an
                          ///< allocation.
  kPlacementReject = 3,   ///< The placement rule found no room; the job
                          ///< keeps waiting (its queue may be disabled).
  kStart = 4,             ///< Processors allocated; execution begins.
  kFinish = 5,            ///< The job departed and released its processors.
};

/// Human-readable name of an event kind ("arrival", "start", ...).
const char* event_kind_name(EventKind kind);

/// One observed event: a POD of 32 bytes, so a ring buffer of events is a
/// contiguous binary recording.
///
/// `value` carries the kind-specific payload measured in seconds:
/// for kStart the job's wait time (start - submit), for kFinish the
/// realised run time (finish - start, i.e. the gross service time over the
/// slowest allocated cluster's speed); 0 otherwise.
struct TraceEvent {
  double time = 0.0;         ///< Simulation timestamp (seconds).
  double value = 0.0;        ///< Kind-specific payload (see above).
  std::uint64_t job = 0;     ///< Job id (JobSpec::id).
  std::uint32_t size = 0;    ///< Total processors the job requests.
  EventKind kind = EventKind::kArrival;
  std::uint8_t components = 0;  ///< Component count of the request.
  std::int16_t cluster = -1;    ///< Cluster involved (-1: none/whole system).
};

static_assert(std::is_trivially_copyable_v<TraceEvent>,
              "TraceEvent must stay binary-recordable");
static_assert(sizeof(TraceEvent) == 32, "TraceEvent is packed to 32 bytes");

}  // namespace mcsim::obs
