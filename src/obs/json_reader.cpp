#include "obs/json_reader.hpp"

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "util/assert.hpp"

namespace mcsim::obs {

namespace {

const char* kind_label(JsonValue::Kind kind) {
  switch (kind) {
    case JsonValue::Kind::kNull: return "null";
    case JsonValue::Kind::kBool: return "bool";
    case JsonValue::Kind::kNumber: return "number";
    case JsonValue::Kind::kString: return "string";
    case JsonValue::Kind::kArray: return "array";
    case JsonValue::Kind::kObject: return "object";
  }
  return "?";
}

std::string kind_error(const char* wanted, JsonValue::Kind got) {
  return std::string("JSON: expected a ") + wanted + ", got " + kind_label(got);
}

}  // namespace

bool JsonValue::as_bool() const {
  MCSIM_REQUIRE(is_bool(), kind_error("bool", kind_));
  return bool_;
}

double JsonValue::as_double() const {
  MCSIM_REQUIRE(is_number(), kind_error("number", kind_));
  return std::strtod(scalar_.c_str(), nullptr);
}

std::int64_t JsonValue::as_int() const {
  MCSIM_REQUIRE(is_number(), kind_error("number", kind_));
  errno = 0;
  char* end = nullptr;
  const long long value = std::strtoll(scalar_.c_str(), &end, 10);
  MCSIM_REQUIRE(errno == 0 && end != nullptr && *end == '\0',
                "JSON: not an integer: " + scalar_);
  return value;
}

std::uint64_t JsonValue::as_uint() const {
  MCSIM_REQUIRE(is_number(), kind_error("number", kind_));
  MCSIM_REQUIRE(!scalar_.empty() && scalar_[0] != '-',
                "JSON: negative value where an unsigned integer was expected: " + scalar_);
  errno = 0;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(scalar_.c_str(), &end, 10);
  MCSIM_REQUIRE(errno == 0 && end != nullptr && *end == '\0',
                "JSON: not an unsigned integer: " + scalar_);
  return value;
}

const std::string& JsonValue::as_string() const {
  MCSIM_REQUIRE(is_string(), kind_error("string", kind_));
  return scalar_;
}

const std::string& JsonValue::number_text() const {
  MCSIM_REQUIRE(is_number(), kind_error("number", kind_));
  return scalar_;
}

std::size_t JsonValue::size() const {
  if (is_array()) return items_.size();
  if (is_object()) return members_.size();
  MCSIM_REQUIRE(false, kind_error("array or object", kind_));
  return 0;
}

const JsonValue& JsonValue::at(std::size_t index) const {
  MCSIM_REQUIRE(is_array(), kind_error("array", kind_));
  MCSIM_REQUIRE(index < items_.size(), "JSON: array index out of range");
  return items_[index];
}

const std::vector<JsonValue>& JsonValue::items() const {
  MCSIM_REQUIRE(is_array(), kind_error("array", kind_));
  return items_;
}

bool JsonValue::contains(const std::string& key) const {
  return find(key) != nullptr;
}

const JsonValue& JsonValue::at(const std::string& key) const {
  const JsonValue* value = find(key);
  MCSIM_REQUIRE(value != nullptr, "JSON: missing key \"" + key + "\"");
  return *value;
}

const JsonValue* JsonValue::find(const std::string& key) const {
  MCSIM_REQUIRE(is_object(), kind_error("object", kind_));
  for (const auto& [name, value] : members_) {
    if (name == key) return &value;
  }
  return nullptr;
}

const std::vector<std::pair<std::string, JsonValue>>& JsonValue::members() const {
  MCSIM_REQUIRE(is_object(), kind_error("object", kind_));
  return members_;
}

/// Recursive-descent parser over a string_view. Depth is bounded to keep
/// adversarial inputs from exhausting the stack.
class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue value = parse_value();
    skip_whitespace();
    require(pos_ == text_.size(), "trailing characters after the document");
    return value;
  }

 private:
  static constexpr int kMaxDepth = 64;

  [[noreturn]] void fail(const std::string& what) const {
    throw std::invalid_argument("mcsim: JSON parse error at offset " +
                                std::to_string(pos_) + ": " + what);
  }

  void require(bool condition, const char* what) const {
    if (!condition) fail(what);
  }

  void skip_whitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    require(pos_ < text_.size(), "unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    require(pos_ < text_.size() && text_[pos_] == c, "unexpected character");
    ++pos_;
  }

  bool consume_literal(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) return false;
    pos_ += literal.size();
    return true;
  }

  JsonValue parse_value() {
    require(depth_ < kMaxDepth, "document nests too deeply");
    skip_whitespace();
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return parse_string_value();
      case 't':
      case 'f': return parse_bool();
      case 'n': {
        require(consume_literal("null"), "invalid literal");
        return JsonValue{};
      }
      default: return parse_number();
    }
  }

  JsonValue parse_object() {
    ++depth_;
    expect('{');
    JsonValue value;
    value.kind_ = JsonValue::Kind::kObject;
    skip_whitespace();
    if (peek() == '}') {
      ++pos_;
      --depth_;
      return value;
    }
    while (true) {
      skip_whitespace();
      require(peek() == '"', "expected a member name");
      std::string key = parse_string_text();
      skip_whitespace();
      expect(':');
      value.members_.emplace_back(std::move(key), parse_value());
      skip_whitespace();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      break;
    }
    --depth_;
    return value;
  }

  JsonValue parse_array() {
    ++depth_;
    expect('[');
    JsonValue value;
    value.kind_ = JsonValue::Kind::kArray;
    skip_whitespace();
    if (peek() == ']') {
      ++pos_;
      --depth_;
      return value;
    }
    while (true) {
      value.items_.push_back(parse_value());
      skip_whitespace();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      break;
    }
    --depth_;
    return value;
  }

  JsonValue parse_bool() {
    JsonValue value;
    value.kind_ = JsonValue::Kind::kBool;
    if (consume_literal("true")) {
      value.bool_ = true;
    } else if (consume_literal("false")) {
      value.bool_ = false;
    } else {
      fail("invalid literal");
    }
    return value;
  }

  JsonValue parse_string_value() {
    JsonValue value;
    value.kind_ = JsonValue::Kind::kString;
    value.scalar_ = parse_string_text();
    return value;
  }

  void append_utf8(std::string& out, std::uint32_t code_point) {
    if (code_point < 0x80) {
      out += static_cast<char>(code_point);
    } else if (code_point < 0x800) {
      out += static_cast<char>(0xC0 | (code_point >> 6));
      out += static_cast<char>(0x80 | (code_point & 0x3F));
    } else if (code_point < 0x10000) {
      out += static_cast<char>(0xE0 | (code_point >> 12));
      out += static_cast<char>(0x80 | ((code_point >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code_point & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (code_point >> 18));
      out += static_cast<char>(0x80 | ((code_point >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((code_point >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code_point & 0x3F));
    }
  }

  std::uint32_t parse_hex4() {
    require(pos_ + 4 <= text_.size(), "truncated \\u escape");
    std::uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_ + static_cast<std::size_t>(i)];
      value <<= 4;
      if (c >= '0' && c <= '9') {
        value |= static_cast<std::uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        value |= static_cast<std::uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        value |= static_cast<std::uint32_t>(c - 'A' + 10);
      } else {
        fail("invalid \\u escape");
      }
    }
    pos_ += 4;
    return value;
  }

  std::string parse_string_text() {
    expect('"');
    std::string out;
    while (true) {
      require(pos_ < text_.size(), "unterminated string");
      const char c = text_[pos_++];
      if (c == '"') break;
      if (c != '\\') {
        require(static_cast<unsigned char>(c) >= 0x20,
                "unescaped control character in string");
        out += c;
        continue;
      }
      require(pos_ < text_.size(), "unterminated escape");
      const char escape = text_[pos_++];
      switch (escape) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          std::uint32_t code_point = parse_hex4();
          if (code_point >= 0xD800 && code_point <= 0xDBFF) {
            // High surrogate: must be followed by \uDC00..\uDFFF.
            require(pos_ + 2 <= text_.size() && text_[pos_] == '\\' &&
                        text_[pos_ + 1] == 'u',
                    "unpaired surrogate");
            pos_ += 2;
            const std::uint32_t low = parse_hex4();
            require(low >= 0xDC00 && low <= 0xDFFF, "unpaired surrogate");
            code_point = 0x10000 + ((code_point - 0xD800) << 10) + (low - 0xDC00);
          } else {
            require(!(code_point >= 0xDC00 && code_point <= 0xDFFF),
                    "unpaired surrogate");
          }
          append_utf8(out, code_point);
          break;
        }
        default: fail("invalid escape character");
      }
    }
    return out;
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    const std::size_t digits_start = pos_;
    while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') ++pos_;
    require(pos_ > digits_start, "invalid number");
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      const std::size_t fraction_start = pos_;
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') ++pos_;
      require(pos_ > fraction_start, "invalid number");
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) ++pos_;
      const std::size_t exponent_start = pos_;
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') ++pos_;
      require(pos_ > exponent_start, "invalid number");
    }
    JsonValue value;
    value.kind_ = JsonValue::Kind::kNumber;
    value.scalar_.assign(text_.substr(start, pos_ - start));
    return value;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

JsonValue parse_json(std::string_view text) { return JsonParser(text).parse_document(); }

JsonValue parse_json(std::istream& in) {
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_json(buffer.str());
}

JsonValue parse_json_file(const std::string& path) {
  std::ifstream in(path);
  MCSIM_REQUIRE(in.good(), "cannot open " + path);
  try {
    return parse_json(in);
  } catch (const std::invalid_argument& error) {
    throw std::invalid_argument(std::string(error.what()) + " (in " + path + ")");
  }
}

}  // namespace mcsim::obs
