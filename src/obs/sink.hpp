/// \file
/// \brief TraceSink — the interface the engine publishes trace events to.
///
/// The engine holds a non-owning `TraceSink*` that defaults to nullptr; all
/// emission sites are guarded by that single pointer test, so a run with no
/// sink attached pays one predictable branch per event site and nothing
/// else (the null-sink fast path; BENCH_obs.json quantifies it).
#pragma once

#include "obs/event.hpp"

namespace mcsim::obs {

/// Receives every TraceEvent of a run, in emission order.
///
/// Implementations must be cheap: record() sits on the engine's event path.
/// The library ships RingRecorder (bounded binary ring + pluggable
/// emitters) and SwfTraceBuilder (assembles an SWF trace of the realised
/// schedule); tests add counting sinks.
class TraceSink {
 public:
  virtual ~TraceSink() = default;

  /// Observe one event. Called synchronously from the simulation; must not
  /// re-enter the engine.
  virtual void record(const TraceEvent& event) = 0;
};

}  // namespace mcsim::obs
