#include "obs/metrics.hpp"

#include <cmath>
#include <ostream>

#include "obs/json.hpp"

namespace mcsim::obs {

std::uint64_t& MetricsRegistry::counter(const std::string& name) {
  return counters_.try_emplace(name, 0).first->second;
}

double& MetricsRegistry::gauge(const std::string& name) {
  return gauges_.try_emplace(name, 0.0).first->second;
}

TimeWeightedStat& MetricsRegistry::series(const std::string& name) {
  return series_[name];
}

void MetricsRegistry::write_json(JsonWriter& json, double sim_now) const {
  json.begin_object();
  json.key("counters").begin_object();
  for (const auto& [name, count] : counters_) json.key(name).value(count);
  json.end_object();
  json.key("gauges").begin_object();
  for (const auto& [name, value] : gauges_) json.key(name).value(value);
  json.end_object();
  json.key("series").begin_object();
  for (const auto& [name, stat] : series_) {
    json.key(name).begin_object();
    const bool observed = std::isfinite(stat.min());
    json.key("mean").value(observed ? stat.time_average(sim_now) : 0.0);
    json.key("min").value(observed ? stat.min() : 0.0);
    json.key("max").value(observed ? stat.max() : 0.0);
    json.key("last").value(stat.current_value());
    json.end_object();
  }
  json.end_object();
  json.end_object();
}

void MetricsRegistry::write_json(std::ostream& out, double sim_now) const {
  JsonWriter json(out);
  write_json(json, sim_now);
  out << '\n';
}

}  // namespace mcsim::obs
