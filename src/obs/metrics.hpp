/// \file
/// \brief MetricsRegistry — named counters, gauges and time-weighted series
/// sampled during a run and exported into the run manifest.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>

#include "stats/time_weighted.hpp"

namespace mcsim::obs {

class JsonWriter;

/// A registry of run-scoped metrics, keyed by dotted names
/// ("placement.rejects", "calendar.pending", "cluster.0.busy").
///
/// Three metric families:
///   - counters: monotonically increasing event counts (std::uint64_t);
///   - gauges:   point-in-time doubles set once or occasionally
///               ("run.events_per_sec");
///   - series:   TimeWeightedStat integrals of piecewise-constant processes
///               over simulation time ("calendar.pending"), exported as
///               {mean, min, max, last}.
///
/// Lookup happens at *attach* time: the engine resolves `counter("...")`
/// references once and bumps plain integers on the hot path, so the map is
/// never touched per event. std::map keeps references stable and the JSON
/// export deterministically ordered.
class MetricsRegistry {
 public:
  /// The counter named `name`, created at 0 on first use. The reference
  /// stays valid for the registry's lifetime.
  std::uint64_t& counter(const std::string& name);

  /// The gauge named `name`, created at 0.0 on first use.
  double& gauge(const std::string& name);

  /// The time-weighted series named `name`, created (unstarted) on first
  /// use; the caller drives start()/update().
  TimeWeightedStat& series(const std::string& name);

  [[nodiscard]] const std::map<std::string, std::uint64_t>& counters() const {
    return counters_;
  }
  [[nodiscard]] const std::map<std::string, double>& gauges() const { return gauges_; }
  [[nodiscard]] const std::map<std::string, TimeWeightedStat>& all_series() const {
    return series_;
  }

  /// Append the registry as a JSON object value to `json`. Series averages
  /// are evaluated at simulation time `sim_now`.
  void write_json(JsonWriter& json, double sim_now) const;

  /// Convenience: the whole registry as one standalone JSON document.
  void write_json(std::ostream& out, double sim_now) const;

 private:
  std::map<std::string, std::uint64_t> counters_;
  std::map<std::string, double> gauges_;
  std::map<std::string, TimeWeightedStat> series_;
};

}  // namespace mcsim::obs
