#include "obs/json.hpp"

#include <cmath>
#include <cstdio>
#include <limits>
#include <ostream>

#include "util/assert.hpp"

namespace mcsim::obs {

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_double(double value) {
  if (!std::isfinite(value)) return "null";
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.*g", std::numeric_limits<double>::max_digits10,
                value);
  std::string text(buf);
  // "1e+06" is valid JSON, but bare integers ("42") are ambiguous with the
  // integer type for schema readers; keep them as numbers regardless.
  return text;
}

JsonWriter& JsonWriter::begin_object() {
  prepare_value();
  out_ << '{';
  stack_.push_back({/*is_object=*/true, /*has_items=*/false});
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  MCSIM_REQUIRE(!stack_.empty() && stack_.back().is_object && !key_pending_,
                "JsonWriter: end_object outside an object");
  const bool had_items = stack_.back().has_items;
  stack_.pop_back();
  if (had_items) {
    out_ << '\n';
    indent();
  }
  out_ << '}';
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  prepare_value();
  out_ << '[';
  stack_.push_back({/*is_object=*/false, /*has_items=*/false});
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  MCSIM_REQUIRE(!stack_.empty() && !stack_.back().is_object,
                "JsonWriter: end_array outside an array");
  const bool had_items = stack_.back().has_items;
  stack_.pop_back();
  if (had_items) {
    out_ << '\n';
    indent();
  }
  out_ << ']';
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view name) {
  MCSIM_REQUIRE(!stack_.empty() && stack_.back().is_object && !key_pending_,
                "JsonWriter: key outside an object");
  if (stack_.back().has_items) out_ << ',';
  out_ << '\n';
  stack_.back().has_items = true;
  indent();
  out_ << '"' << json_escape(name) << "\": ";
  key_pending_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view text) {
  prepare_value();
  out_ << '"' << json_escape(text) << '"';
  return *this;
}

JsonWriter& JsonWriter::value(double number) {
  prepare_value();
  out_ << json_double(number);
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t number) {
  prepare_value();
  out_ << number;
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t number) {
  prepare_value();
  out_ << number;
  return *this;
}

JsonWriter& JsonWriter::value(bool flag) {
  prepare_value();
  out_ << (flag ? "true" : "false");
  return *this;
}

JsonWriter& JsonWriter::null() {
  prepare_value();
  out_ << "null";
  return *this;
}

void JsonWriter::prepare_value() {
  if (key_pending_) {
    key_pending_ = false;
    return;
  }
  if (!stack_.empty()) {
    MCSIM_REQUIRE(!stack_.back().is_object,
                  "JsonWriter: value inside an object needs a key");
    if (stack_.back().has_items) out_ << ',';
    out_ << '\n';
    stack_.back().has_items = true;
    indent();
  }
}

void JsonWriter::indent() {
  for (std::size_t i = 0; i < stack_.size(); ++i) out_ << "  ";
}

}  // namespace mcsim::obs
