// LP — local queues with priority over a global queue (Sect. 2.5, policy 3).
//
// Single-component jobs go to their cluster's local queue; all multi-
// component jobs go to one global queue. The local schedulers have
// priority: the global queue may only start jobs while at least one local
// queue is empty. When a job departs, if one or more local queues are
// empty, both the global queue and the local queues are enabled (the global
// queue first); if no local queue is empty, only the local queues are
// enabled, and the global queue joins the visit list as soon as a local
// queue becomes empty. As in LS, a queue whose head does not fit is
// disabled until the next departure, and WF chooses the clusters.
#pragma once

#include <vector>

#include "core/queue.hpp"
#include "core/scheduler.hpp"

namespace mcsim {

class PolicyLp final : public Scheduler {
 public:
  PolicyLp(SchedulerContext& context, PlacementRule placement);

  void submit(JobPtr job) override;
  void on_departure() override;
  [[nodiscard]] std::size_t queued_jobs() const override;
  [[nodiscard]] std::size_t max_queue_length() const override;
  /// Local queue lengths followed by the global queue length.
  [[nodiscard]] std::vector<std::size_t> queue_lengths() const override;
  [[nodiscard]] std::string name() const override { return "LP"; }

  [[nodiscard]] std::size_t global_queue_length() const { return global_.size(); }

 private:
  void try_schedule();
  /// True while the global queue is allowed into the visit rotation.
  [[nodiscard]] bool some_local_empty() const;

  std::vector<JobQueue> locals_;
  JobQueue global_;
};

}  // namespace mcsim
