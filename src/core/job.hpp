// Runtime job state: the immutable JobSpec plus what the scheduler decides
// (allocation, start time) and a tag recording which queue class served it
// (for the per-queue response-time breakdown of Fig. 4).
//
// Jobs are owned by the engine's JobPool (core/job_pool.hpp) for their
// whole lifecycle; everything else — queues, policies, the scheduler
// context — handles them through the stable raw pointer JobPtr. The
// pointer is the handle: it is never reference-counted (a job cannot
// outlive its engine) and never compared for ordering (pool recycling
// makes addresses non-deterministic across runs; all orderings use spec
// fields or queue position).
#pragma once

#include "cluster/multicluster.hpp"
#include "workload/workload.hpp"

namespace mcsim {

enum class QueueClass : std::uint8_t { kLocal, kGlobal };

struct Job {
  Job() = default;
  explicit Job(JobSpec s) : spec(std::move(s)) {}
  // Pool-owned: handles are Job*; copying one would silently fork state.
  Job(const Job&) = delete;
  Job& operator=(const Job&) = delete;

  JobSpec spec;
  Allocation allocation;     // filled when the job starts
  double start_time = -1.0;  // < 0 while queued
  QueueClass queue_class = QueueClass::kGlobal;
  /// Observability: set once the scheduler first considered the job for
  /// placement (the trace layer's head-of-queue event fires then).
  bool considered = false;
  /// Owning JobPool shard (core/job_pool.hpp, "Sharding"); a released job
  /// returns to the shard it was acquired from. 0 on the serial path.
  std::uint32_t pool_shard = 0;

  [[nodiscard]] bool started() const { return start_time >= 0.0; }

  /// Re-initialise a recycled pool slot for a new arrival. Keeps the
  /// allocation vector's capacity, so a recycled job places without
  /// touching the allocator.
  void reset(JobSpec s) {
    spec = std::move(s);
    allocation.clear();
    start_time = -1.0;
    queue_class = QueueClass::kGlobal;
    considered = false;
  }
};

/// Stable handle to a pool-owned job. Trivially copyable: queue hops, the
/// JobOrder comparator path and pop()/remove_at() moves never touch an
/// allocator or a refcount.
using JobPtr = Job*;

}  // namespace mcsim
