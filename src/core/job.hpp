// Runtime job state: the immutable JobSpec plus what the scheduler decides
// (allocation, start time) and a tag recording which queue class served it
// (for the per-queue response-time breakdown of Fig. 4).
#pragma once

#include <memory>

#include "cluster/multicluster.hpp"
#include "workload/workload.hpp"

namespace mcsim {

enum class QueueClass : std::uint8_t { kLocal, kGlobal };

struct Job {
  explicit Job(JobSpec s) : spec(std::move(s)) {}

  JobSpec spec;
  Allocation allocation;     // filled when the job starts
  double start_time = -1.0;  // < 0 while queued
  QueueClass queue_class = QueueClass::kGlobal;
  /// Observability: set once the scheduler first considered the job for
  /// placement (the trace layer's head-of-queue event fires then).
  bool considered = false;

  [[nodiscard]] bool started() const { return start_time >= 0.0; }
};

using JobPtr = std::shared_ptr<Job>;

}  // namespace mcsim
