#include "core/policy_lp.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace mcsim {

PolicyLp::PolicyLp(SchedulerContext& context, PlacementRule placement)
    : Scheduler(context, placement) {
  locals_.resize(context_.system().num_clusters());
}

void PolicyLp::submit(JobPtr job) {
  if (job->spec.needs_coallocation()) {
    job->queue_class = QueueClass::kGlobal;
    global_.push(job);
  } else {
    const std::uint32_t qid = job->spec.origin_queue;
    MCSIM_REQUIRE(qid < locals_.size(), "origin queue out of range");
    job->queue_class = QueueClass::kLocal;
    locals_[qid].push(job);
  }
  try_schedule();
}

void PolicyLp::on_departure() {
  // All queues are re-enabled; whether the global queue actually gets
  // visited still depends on a local queue being empty (checked in the
  // round loop), which realises "if no local queue is empty only the local
  // queues are enabled".
  global_.enable();
  for (auto& queue : locals_) queue.enable();
  try_schedule();
}

bool PolicyLp::some_local_empty() const {
  return std::any_of(locals_.begin(), locals_.end(),
                     [](const JobQueue& q) { return q.empty(); });
}

void PolicyLp::try_schedule() {
  bool any_started = true;
  while (any_started) {
    any_started = false;

    // The global queue is visited first ("they are always enabled starting
    // with the global queue"), but only while it has priority clearance:
    // at least one local queue empty and no unfitting head since the last
    // departure.
    if (global_.enabled() && !global_.empty() && some_local_empty()) {
      auto allocation = try_place(*global_.front());
      if (allocation) {
        context_.start_job(global_.pop(), std::move(*allocation));
        any_started = true;
      } else {
        global_.disable();
      }
    }

    for (std::uint32_t qid = 0; qid < locals_.size(); ++qid) {
      JobQueue& queue = locals_[qid];
      if (!queue.enabled() || queue.empty()) continue;
      // Local queues hold single-component jobs restricted to their cluster.
      auto allocation = try_place_local(*queue.front(), qid);
      if (allocation) {
        context_.start_job(queue.pop(), std::move(*allocation));
        any_started = true;
      } else {
        queue.disable();
      }
    }
  }
}

std::size_t PolicyLp::queued_jobs() const {
  std::size_t total = global_.size();
  for (const auto& queue : locals_) total += queue.size();
  return total;
}

std::size_t PolicyLp::max_queue_length() const {
  std::size_t longest = global_.size();
  for (const auto& queue : locals_) longest = std::max(longest, queue.size());
  return longest;
}

std::vector<std::size_t> PolicyLp::queue_lengths() const {
  std::vector<std::size_t> lengths;
  lengths.reserve(locals_.size() + 1);
  for (const auto& queue : locals_) lengths.push_back(queue.size());
  lengths.push_back(global_.size());
  return lengths;
}

}  // namespace mcsim
