#include "core/policy_ls.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace mcsim {

PolicyLs::PolicyLs(SchedulerContext& context, PlacementRule placement)
    : Scheduler(context, placement) {
  const std::uint32_t n = context_.system().num_clusters();
  queues_.resize(n);
  visit_order_.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) visit_order_.push_back(i);
}

void PolicyLs::submit(JobPtr job) {
  const std::uint32_t qid = job->spec.origin_queue;
  MCSIM_REQUIRE(qid < queues_.size(), "origin queue out of range");
  job->queue_class = QueueClass::kLocal;
  queues_[qid].push(job);
  try_schedule();
}

void PolicyLs::on_departure() {
  // Re-enable in disable order, appending to the visit rotation.
  for (std::uint32_t qid : disabled_order_) {
    queues_[qid].enable();
    visit_order_.push_back(qid);
  }
  disabled_order_.clear();
  try_schedule();
}

void PolicyLs::try_schedule() {
  bool any_started = true;
  while (any_started) {
    any_started = false;
    // Snapshot: queues disabled during this round drop out of the rotation
    // for subsequent rounds but finish being skipped in this one.
    const std::vector<std::uint32_t> round = visit_order_;
    for (std::uint32_t qid : round) {
      JobQueue& queue = queues_[qid];
      if (!queue.enabled() || queue.empty()) continue;
      Job& head = *queue.front();
      // Single-cluster jobs are restricted to the local cluster; wide-area
      // jobs are co-allocated over the whole system.
      auto allocation = head.spec.needs_coallocation()
                            ? try_place(head)
                            : try_place_local(head, qid);
      if (allocation) {
        context_.start_job(queue.pop(), std::move(*allocation));
        any_started = true;
      } else {
        disable_queue(qid);
      }
    }
  }
}

void PolicyLs::disable_queue(std::uint32_t qid) {
  MCSIM_ASSERT(queues_[qid].enabled());
  queues_[qid].disable();
  disabled_order_.push_back(qid);
  visit_order_.erase(std::remove(visit_order_.begin(), visit_order_.end(), qid),
                     visit_order_.end());
}

std::size_t PolicyLs::queued_jobs() const {
  std::size_t total = 0;
  for (const auto& queue : queues_) total += queue.size();
  return total;
}

std::size_t PolicyLs::max_queue_length() const {
  std::size_t longest = 0;
  for (const auto& queue : queues_) longest = std::max(longest, queue.size());
  return longest;
}

std::vector<std::size_t> PolicyLs::queue_lengths() const {
  std::vector<std::size_t> lengths;
  lengths.reserve(queues_.size());
  for (const auto& queue : queues_) lengths.push_back(queue.size());
  return lengths;
}

}  // namespace mcsim
