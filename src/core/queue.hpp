// FCFS job queue with the enable/disable state of the paper's scheduling
// protocol (Sect. 2.5): a queue whose head job does not fit is disabled
// until the next departure from the system.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>

#include "core/job.hpp"

namespace mcsim {

/// Queue ordering predicate: `a` before `b` means `a` is served first.
/// Insertion is stable (FCFS among equals).
using JobOrder = std::function<bool(const JobPtr& a, const JobPtr& b)>;

class JobQueue {
 public:
  /// Set a non-FCFS service order (extension; the paper is FCFS-only).
  /// Must be called while the queue is empty.
  void set_order(JobOrder order);

  void push(JobPtr job);
  [[nodiscard]] const JobPtr& front() const;
  JobPtr pop();

  /// Random access for the backfilling schedulers (index 0 is the head).
  [[nodiscard]] const JobPtr& at(std::size_t index) const;
  /// Remove and return the job at `index` (backfill start out of order).
  JobPtr remove_at(std::size_t index);

  [[nodiscard]] bool empty() const { return jobs_.empty(); }
  [[nodiscard]] std::size_t size() const { return jobs_.size(); }

  [[nodiscard]] bool enabled() const { return enabled_; }
  void enable() { enabled_ = true; }
  void disable() { enabled_ = false; }

  /// Total jobs ever enqueued (for sanity checks).
  [[nodiscard]] std::uint64_t total_enqueued() const { return total_enqueued_; }

 private:
  std::deque<JobPtr> jobs_;
  JobOrder order_;  // null = FCFS
  bool enabled_ = true;
  std::uint64_t total_enqueued_ = 0;
};

}  // namespace mcsim
