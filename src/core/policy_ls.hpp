// LS — local schedulers with local queues (paper Sect. 2.5, policy 2).
//
// Each cluster has a local FCFS queue receiving both single- and multi-
// component jobs (which queue a job arrives at is the job's origin_queue,
// drawn by the workload generator with the balanced/unbalanced weights).
// Single-component jobs may run only on their local cluster; multi-component
// jobs are co-allocated over the whole system with Worst Fit.
//
// Scheduling protocol: all *enabled* queues are repeatedly visited, and in
// each round at most one job from each queue is started. When the head of a
// queue does not fit, that queue is disabled until the next departure from
// the system; at each departure the queues are re-enabled in the same order
// in which they were disabled. The rotating visits give LS its implicit
// backfilling window equal to the number of clusters (Sect. 3.1.1).
#pragma once

#include <vector>

#include "core/queue.hpp"
#include "core/scheduler.hpp"

namespace mcsim {

class PolicyLs final : public Scheduler {
 public:
  PolicyLs(SchedulerContext& context, PlacementRule placement);

  void submit(JobPtr job) override;
  void on_departure() override;
  [[nodiscard]] std::size_t queued_jobs() const override;
  [[nodiscard]] std::size_t max_queue_length() const override;
  [[nodiscard]] std::vector<std::size_t> queue_lengths() const override;
  [[nodiscard]] std::string name() const override { return "LS"; }

 private:
  void try_schedule();
  void disable_queue(std::uint32_t qid);

  std::vector<JobQueue> queues_;  // one per cluster
  /// Visiting order of the currently enabled queues (re-enable order is
  /// preserved across departures, as the paper specifies).
  std::vector<std::uint32_t> visit_order_;
  /// Queues disabled since the last departure, in disable order.
  std::vector<std::uint32_t> disabled_order_;
};

}  // namespace mcsim
