// Slab-allocated job pool: the engine-owned backing store for every Job in
// one simulation run (docs/PERFORMANCE.md, "Pooled jobs").
//
// Why: the hot loop used to std::make_shared<Job> per arrival and thread
// shared_ptr<Job> through every queue hop — one control-block allocation
// per job plus atomic refcount traffic on each push/pop/placement, for
// objects whose lifetime is in fact strictly engine-scoped. The pool hands
// out stable Job* handles instead: acquire() is a free-list pop (or a bump
// within the current slab), release() a free-list push, and a recycled job
// keeps its allocation vector's capacity, so steady-state replay runs the
// whole job lifecycle without touching the global allocator.
//
// Determinism: recycling makes job *addresses* depend on completion order,
// so nothing in the engine may order by pointer value (JobOrder compares
// spec fields; queues are positional). Job identity for statistics and
// traces is spec.id, which the workload source assigns deterministically.
// The pool is a per-engine member — parallel runs (exp::Runner) each own
// one, so no cross-run state leaks (tests/core_job_pool_test.cpp pins
// both properties).
//
// Slabs are fixed-size arrays owned by unique_ptr, so live handles are
// never invalidated by pool growth; all jobs — live, free, or mid-flight
// when an instability stop abandons them — are destroyed with the pool.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/job.hpp"

namespace mcsim {

class JobPool {
 public:
  /// Jobs per slab. 256 jobs ~= a few slab allocations for a paper run's
  /// steady-state job population (pending jobs ~= running + queued, far
  /// below the total arrival count thanks to recycling).
  static constexpr std::size_t kSlabCapacity = 256;

  JobPool() = default;
  JobPool(const JobPool&) = delete;
  JobPool& operator=(const JobPool&) = delete;

  /// Sharding (parallel engine, docs/PARALLEL.md): split the free list
  /// into `shards` independent LIFO lanes so each logical process can
  /// recycle jobs through its own lane with no cross-LP traffic. Slab
  /// growth stays pool-global (it only happens in serial phases). Must be
  /// called before the first acquire; the default single shard is the
  /// serial engine's exact historical LIFO behaviour.
  void configure_shards(std::uint32_t shards);
  [[nodiscard]] std::uint32_t shard_count() const {
    return static_cast<std::uint32_t>(free_.size());
  }

  /// Hand out a job initialised from `spec` — recycled from `shard`'s free
  /// lane when possible, otherwise bump-allocated from the current slab.
  /// The returned pointer is stable until the pool is destroyed.
  Job* acquire(JobSpec spec, std::uint32_t shard = 0);

  /// Return a job to the free lane of the shard it was acquired from. The
  /// caller must drop every handle: the next acquire() may recycle the
  /// object for an unrelated arrival.
  void release(Job* job);

  /// Jobs currently acquired and not yet released.
  [[nodiscard]] std::size_t live() const {
    return static_cast<std::size_t>(acquired_ - released_);
  }
  /// Jobs ever acquired (recycles included).
  [[nodiscard]] std::uint64_t total_acquired() const { return acquired_; }
  [[nodiscard]] std::size_t slab_count() const { return slabs_.size(); }
  /// Constructed job objects across all slabs (>= live()).
  [[nodiscard]] std::size_t capacity() const {
    return slabs_.empty()
               ? 0
               : (slabs_.size() - 1) * kSlabCapacity + next_in_slab_;
  }

 private:
  std::vector<std::unique_ptr<Job[]>> slabs_;
  /// Per-shard free lanes; one lane until configure_shards says otherwise.
  std::vector<std::vector<Job*>> free_{1};
  /// Next unused index in slabs_.back(); kSlabCapacity when a new slab is
  /// needed (or none exists yet).
  std::size_t next_in_slab_ = kSlabCapacity;
  std::uint64_t acquired_ = 0;
  std::uint64_t released_ = 0;
};

}  // namespace mcsim
