// Policy names and construction (Sect. 2.5): GS, LS, LP on the multicluster,
// SC on the equivalent single cluster.
#pragma once

#include <memory>
#include <string>

#include "core/scheduler.hpp"

namespace mcsim {

enum class PolicyKind { kGS, kLS, kLP, kSC };

const char* policy_name(PolicyKind kind);
/// Parse a policy name ("GS", "ls", ...; case-insensitive). Throws
/// std::invalid_argument on anything else.
PolicyKind parse_policy_kind(const std::string& name);
/// Deprecated spelling of parse_policy_kind.
inline PolicyKind parse_policy(const std::string& name) { return parse_policy_kind(name); }

/// Whether the policy runs on a single cluster holding all processors (SC)
/// rather than the multicluster.
bool is_single_cluster_policy(PolicyKind kind);

/// Construct the scheduler for `kind` bound to `context`. Backfilling (an
/// extension; the paper uses kNone) applies to the single-queue policies
/// GS and SC only.
std::unique_ptr<Scheduler> make_scheduler(PolicyKind kind, SchedulerContext& context,
                                          PlacementRule placement = PlacementRule::kWorstFit,
                                          BackfillMode backfill = BackfillMode::kNone,
                                          QueueDiscipline discipline = QueueDiscipline::kFcfs);

}  // namespace mcsim
