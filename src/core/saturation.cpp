#include "core/saturation.hpp"

#include <algorithm>
#include <thread>

#include "util/assert.hpp"

namespace mcsim {

SaturationSimulation::SaturationSimulation(SaturationConfig config)
    : config_(std::move(config)),
      system_(config_.cluster_sizes),
      generator_(config_.workload, config_.seed),
      utilization_(system_.total_processors(), 0.0) {
  MCSIM_REQUIRE(config_.backlog > 0, "backlog must be positive");
  MCSIM_REQUIRE(config_.total_completions > 0, "need completions to measure");
  if (config_.engine == EngineKind::kParallel) {
    ParallelConfig parallel;
    parallel.lp_count = system_.num_clusters() + 1;
    parallel.worker_threads =
        config_.engine_threads != 0
            ? config_.engine_threads
            : std::max(1U, std::thread::hardware_concurrency());
    // Saturation draws synthetic service times (unbounded below): no
    // usable service-time bound, so the horizon adapts from density.
    sim_.configure_parallel(parallel);
    pool_.configure_shards(parallel.lp_count);
  }
  scheduler_ = make_scheduler(config_.policy, *this, config_.placement);
  warmup_completions_ = static_cast<std::uint64_t>(config_.warmup_fraction *
                                                   static_cast<double>(config_.total_completions));
}

SaturationResult SaturationSimulation::run() {
  MCSIM_REQUIRE(!ran_, "SaturationSimulation::run may be called once");
  ran_ = true;

  // Prime the backlog at t = 0; submissions trigger scheduling as usual.
  for (std::uint64_t i = 0; i < config_.backlog; ++i) refill();

  sim_.run();

  SaturationResult result;
  result.policy = scheduler_->name();
  result.completions = completions_;
  result.end_time = sim_.now();
  result.maximal_gross_utilization = utilization_.busy_fraction(sim_.now());
  const double window = sim_.now() - measure_start_;
  if (window > 0.0) {
    // Busy fraction counts extended (gross) occupancy; scale the measured
    // net work by the same window to get the net maximum.
    result.maximal_net_utilization =
        net_work_started_ / (static_cast<double>(system_.total_processors()) * window);
  }
  return result;
}

void SaturationSimulation::refill() {
  JobSpec spec = generator_.next_body();
  spec.arrival_time = sim_.now();
  scheduler_->submit(pool_.acquire(std::move(spec)));
}

void SaturationSimulation::start_job(JobPtr job, Allocation allocation) {
  MCSIM_REQUIRE(!job->started(), "job started twice");
  job->allocation = std::move(allocation);
  job->start_time = sim_.now();
  system_.allocate(job->allocation);
  utilization_.on_job_start(sim_.now(), job->spec.total_size, job->spec.gross_service_time,
                            job->spec.service_time);
  if (measuring_) {
    net_work_started_ += static_cast<double>(job->spec.total_size) * job->spec.service_time;
  }
  // Saturation jobs never co-allocate across clusters under GS/SC, but LS
  // and LP layouts can: the same LP rule as the main engine applies.
  sim_.set_event_lp(job->allocation.size() == 1
                        ? 1U + static_cast<std::uint32_t>(job->allocation.front().cluster)
                        : 0U);
  sim_.schedule_in(job->spec.gross_service_time, [this, job]() { on_departure(job); });
}

void SaturationSimulation::on_departure(JobPtr job) {
  system_.release(job->allocation);
  utilization_.on_job_finish(sim_.now(), job->spec.total_size);
  pool_.release(job);
  ++completions_;

  if (!measuring_ && completions_ >= warmup_completions_) {
    measuring_ = true;
    measure_start_ = sim_.now();
    utilization_.reset_at(sim_.now());
  }
  if (completions_ >= config_.total_completions) {
    sim_.stop();
    return;
  }
  // Keep the backlog constant: one in for one out, then let the scheduler
  // react to the departure.
  refill();
  scheduler_->on_departure();
}

SaturationResult run_saturation(const SaturationConfig& config) {
  SaturationSimulation simulation(config);
  return simulation.run();
}

}  // namespace mcsim
