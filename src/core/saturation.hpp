// Maximal-utilization estimation by constant backlog (paper Sect. 4,
// Table 3, and reference [9]): "we maintain a constant backlog and observe
// the time-average fraction of processors being busy, which yields the
// maximal gross utilization."
//
// The paper applies this to the single-global-queue policies (GS and SC).
// We additionally support LS and LP by keeping the *total* backlog constant
// and routing refills through the usual submission weights — an extension
// the benches label as such.
#pragma once

#include <memory>
#include <string>

#include "core/engine.hpp"
#include "core/job_pool.hpp"

namespace mcsim {

struct SaturationConfig {
  PolicyKind policy = PolicyKind::kGS;
  std::vector<std::uint32_t> cluster_sizes = {32, 32, 32, 32};
  WorkloadConfig workload;  // arrival_rate is ignored (queues never drain)
  PlacementRule placement = PlacementRule::kWorstFit;
  std::uint64_t seed = 1;
  /// Jobs kept waiting at all times.
  std::uint64_t backlog = 200;
  /// Completions to simulate.
  std::uint64_t total_completions = 50000;
  double warmup_fraction = 0.2;
  /// Event core selection, mirroring SimulationConfig (docs/PARALLEL.md);
  /// the saturation goldens verify bit-exactly under either engine.
  EngineKind engine = EngineKind::kSerial;
  /// Parallel worker budget incl. the coordinator; 0 = all hardware threads.
  unsigned engine_threads = 0;
};

struct SaturationResult {
  std::string policy;
  /// Time-averaged busy fraction = maximal gross utilization.
  double maximal_gross_utilization = 0.0;
  /// Net counterpart, measured from the non-extended service times of the
  /// started jobs.
  double maximal_net_utilization = 0.0;
  std::uint64_t completions = 0;
  double end_time = 0.0;
};

class SaturationSimulation final : public SchedulerContext {
 public:
  explicit SaturationSimulation(SaturationConfig config);

  SaturationResult run();

  [[nodiscard]] const Multicluster& system() const override { return system_; }
  [[nodiscard]] double now() const override { return sim_.now(); }
  void start_job(JobPtr job, Allocation allocation) override;

 private:
  void refill();
  void on_departure(JobPtr job);

  SaturationConfig config_;
  Simulator sim_;
  Multicluster system_;
  JobPool pool_;
  WorkloadGenerator generator_;
  std::unique_ptr<Scheduler> scheduler_;
  UtilizationTracker utilization_;
  double net_work_started_ = 0.0;
  double measure_start_ = 0.0;
  bool measuring_ = false;
  std::uint64_t completions_ = 0;
  std::uint64_t warmup_completions_ = 0;
  bool ran_ = false;
};

SaturationResult run_saturation(const SaturationConfig& config);

}  // namespace mcsim
