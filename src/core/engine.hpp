// The multicluster simulation engine: binds a workload source (the
// synthetic generator, or a replayed trace), a scheduling policy and the
// machine model to the DES core, and collects the paper's metrics
// (response times overall and per queue class, gross and net utilization).
//
// A run draws `total_jobs` arrivals from the source — Poisson draws for
// the synthetic workload, recorded submit times for a trace — and executes
// until all of them complete, unless the instability guard trips (a queue
// exceeding `instability_queue_limit` means the offered load is beyond the
// policy's maximal utilization — the response time has no steady state
// there).
// The first `warmup_fraction` of completions is discarded from all
// statistics.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cluster/multicluster.hpp"
#include "core/job_pool.hpp"
#include "policy/pipeline.hpp"
#include "policy/scheduler_factory.hpp"
#include "obs/metrics.hpp"
#include "obs/sink.hpp"
#include "sim/simulator.hpp"
#include "stats/batch_means.hpp"
#include "stats/percentile.hpp"
#include "stats/utilization.hpp"
#include "workload/job_source.hpp"
#include "workload/trace_workload.hpp"
#include "workload/workload.hpp"

namespace mcsim {

/// Which event core drives the run. Serial is the canonical reference;
/// the parallel engine (docs/PARALLEL.md) shards the calendar into
/// per-cluster logical processes and must reproduce serial results
/// bit-exactly (`mcsim verify --engine=parallel`).
enum class EngineKind : std::uint8_t { kSerial, kParallel };

[[nodiscard]] const char* engine_kind_name(EngineKind engine);
/// Parse "serial" / "parallel"; throws std::invalid_argument otherwise.
[[nodiscard]] EngineKind parse_engine_kind(const std::string& text);

struct SimulationConfig {
  PolicyKind policy = PolicyKind::kGS;
  /// Multicluster layout. For SC use a single entry with all processors.
  std::vector<std::uint32_t> cluster_sizes = {32, 32, 32, 32};
  /// Relative per-cluster service rates; empty = homogeneous (the paper).
  /// A co-allocated job runs at the pace of its slowest cluster (extension
  /// toward the heterogeneous-grid setting the paper motivates).
  std::vector<double> cluster_speeds;
  WorkloadConfig workload;
  /// When set, arrivals replay this recorded trace instead of being drawn
  /// from `workload`'s synthetic distributions (whose size/service/arrival
  /// fields are then unused; the splitting parameters live in the trace
  /// config itself). Shared immutably: copies of this config across sweep
  /// points and runner threads all reference one loaded trace.
  std::shared_ptr<const TraceWorkloadConfig> trace_workload;
  PlacementRule placement = PlacementRule::kWorstFit;
  /// Extension (paper: kNone). Single-global-queue structures only.
  BackfillMode backfill = BackfillMode::kNone;
  /// Extension (paper: kFcfs).
  QueueDiscipline discipline = QueueDiscipline::kFcfs;
  /// Explicit pipeline composition (policy/pipeline.hpp). When set it takes
  /// precedence over the placement/backfill/discipline knobs above; `policy`
  /// then only seeds the display name and the SC layout checks. Unset =
  /// the canonical expansion of `policy` with those knobs.
  std::optional<PipelineSpec> pipeline;
  /// Test seam: when set, the engine builds its scheduler from this factory
  /// instead of `policy`/`pipeline` (the stage-equivalence tests inject
  /// reference copies of the historical policy classes).
  std::function<std::unique_ptr<Scheduler>(SchedulerContext&)> scheduler_factory;
  std::uint64_t seed = 1;
  /// Number of arrivals to generate.
  std::uint64_t total_jobs = 50000;
  /// Fraction of completions discarded as warmup.
  double warmup_fraction = 0.1;
  /// A queue longer than this marks the run unstable and stops it early.
  std::size_t instability_queue_limit = 20000;
  /// The run is also unstable when, at the moment the last arrival enters,
  /// more than this fraction of all jobs is still queued — a queue that
  /// keeps growing to the end of the arrival stream has no steady state.
  double instability_backlog_fraction = 0.02;
  /// Batches for the response-time confidence interval.
  std::uint64_t batch_count = 20;
  /// Event core selection (docs/PARALLEL.md). Results are identical by
  /// contract; only wall-clock speed differs.
  EngineKind engine = EngineKind::kSerial;
  /// Worker-thread budget for the parallel engine, including the
  /// coordinating thread; 0 = all hardware threads. Callers fanning runs
  /// out across an exp::Runner pool must pass 1 here so the shared
  /// `--jobs` budget is not oversubscribed (docs/PARALLEL.md, "One worker
  /// budget").
  unsigned engine_threads = 0;

  [[nodiscard]] std::uint32_t total_processors() const;

  /// Check the config for internal consistency (cluster layout non-empty
  /// and non-degenerate, speeds aligned with sizes, fractions in range,
  /// positive run lengths and rates). Throws std::invalid_argument with a
  /// message naming the offending field; called by the engine constructor,
  /// so a bad config can never silently misbehave.
  void validate() const;
};

struct SimulationResult {
  std::string policy;
  bool unstable = false;

  std::uint64_t completed_jobs = 0;
  std::uint64_t measured_jobs = 0;  // post-warmup completions
  double end_time = 0.0;

  // Response times (seconds), post-warmup.
  RunningStats response_all;
  RunningStats response_local;   // jobs served from local queues (LS, LP)
  RunningStats response_global;  // jobs served from the global queue (GS, LP, SC)
  RunningStats wait_all;
  // Size-class breakdown (Sect. 3.2 discusses how the few very large jobs
  // dominate performance): small <= 16, medium 17..64, large > 64 CPUs.
  RunningStats response_small;
  RunningStats response_medium;
  RunningStats response_large;
  ConfidenceInterval response_ci;     // batch-means 95% CI on the mean
  double response_p95 = 0.0;
  /// Slowdown = response / gross service time, per job (>= 1).
  RunningStats slowdown_all;
  /// Time-averaged number of waiting jobs over the measurement window
  /// (Little: mean_queue_length ~= arrival_rate * mean wait).
  double mean_queue_length = 0.0;
  /// Time-averaged busy fraction per cluster (exposes the hot-cluster
  /// effect of unbalanced local queues, Sect. 3.1.2).
  std::vector<double> per_cluster_busy_fraction;

  // Utilization, post-warmup.
  double offered_gross_utilization = 0.0;  // from arrivals in the window
  double offered_net_utilization = 0.0;
  double busy_fraction = 0.0;  // time-averaged busy processors / P

  std::vector<std::size_t> final_queue_lengths;
  std::uint64_t events_executed = 0;
  /// Wall-clock seconds spent inside run() (provenance for the manifest;
  /// events_executed / wall_seconds is the engine's events-per-second).
  double wall_seconds = 0.0;

  [[nodiscard]] double mean_response() const { return response_all.mean(); }
};

/// Observer invoked as each job completes (after metrics are recorded);
/// lets callers export the realised schedule, e.g. as an SWF trace.
using JobObserver = std::function<void(const Job& job, double finish_time)>;

class MulticlusterSimulation final : public SchedulerContext {
 public:
  explicit MulticlusterSimulation(SimulationConfig config);

  /// Register an observer called at every job completion. Call before run().
  void set_job_observer(JobObserver observer) { observer_ = std::move(observer); }

  /// Attach a trace sink receiving every per-job lifecycle event (arrival,
  /// head-of-queue, placement attempt/reject, start, finish). Non-owning;
  /// call before run(). With no sink attached (the default) every emission
  /// site reduces to one null-pointer test — the zero-cost fast path
  /// benchmarked in BENCH_obs.json.
  void set_trace_sink(obs::TraceSink* sink) { sink_ = sink; }

  /// Attach a metrics registry: the engine resolves its counters/series
  /// once here and fills events/sec, calendar occupancy, queue length,
  /// per-cluster utilization and placement-failure counts during run().
  /// Non-owning; call before run().
  void set_metrics(obs::MetricsRegistry* metrics);

  /// Run to completion and return the metrics. Callable once.
  SimulationResult run();

  // SchedulerContext:
  [[nodiscard]] const Multicluster& system() const override { return system_; }
  [[nodiscard]] double now() const override { return sim_.now(); }
  void start_job(JobPtr job, Allocation allocation) override;
  void record_placement(Job& job, bool success, std::int16_t cluster) override;

  [[nodiscard]] const SimulationConfig& config() const { return config_; }
  [[nodiscard]] Scheduler& scheduler() { return *scheduler_; }
  [[nodiscard]] Simulator& simulator() { return sim_; }

 private:
  void schedule_next_arrival();
  void on_arrival(JobPtr job);
  void on_departure(JobPtr job);
  void begin_measurement();
  void emit(obs::EventKind kind, const Job& job, double value, std::int16_t cluster);
  void finish_metrics();

  SimulationConfig config_;
  Simulator sim_;
  Multicluster system_;
  /// Per-engine slab pool backing every Job this run touches. Jobs live
  /// from schedule-time of their arrival event to the end of on_departure,
  /// where they return to the pool for reuse by later arrivals — the hot
  /// loop never allocates per job after the pool warms up. Engine-local so
  /// parallel sweep runners stay bit-identical and share nothing.
  JobPool pool_;
  std::unique_ptr<JobSource> source_;
  std::unique_ptr<Scheduler> scheduler_;
  UtilizationTracker utilization_;
  TimeWeightedStat queue_length_;
  std::vector<TimeWeightedStat> cluster_busy_;
  JobObserver observer_;
  std::unique_ptr<BatchMeans> response_batches_;
  P2Quantile response_p95_{0.95};
  SimulationResult result_;

  // Observability (all optional, non-owning; null means detached).
  obs::TraceSink* sink_ = nullptr;
  obs::MetricsRegistry* metrics_ = nullptr;
  // Counter references resolved once at attach time (hot path bumps plain
  // integers, never touches the registry map).
  std::uint64_t* ctr_arrivals_ = nullptr;
  std::uint64_t* ctr_started_ = nullptr;
  std::uint64_t* ctr_finished_ = nullptr;
  std::uint64_t* ctr_attempts_ = nullptr;
  std::uint64_t* ctr_rejects_ = nullptr;
  std::uint64_t* ctr_rejects_local_ = nullptr;
  TimeWeightedStat* calendar_series_ = nullptr;

  /// Wall-clock seconds spent inside the event loop proper (sim_.run()),
  /// excluding setup and result assembly; exported as the
  /// run.event_loop_seconds gauge (excluded from golden digests).
  double event_loop_seconds_ = 0.0;
  std::uint64_t arrivals_generated_ = 0;
  std::uint64_t completions_ = 0;
  std::uint64_t warmup_completions_ = 0;
  bool measuring_ = false;
  double measure_start_time_ = 0.0;
  double last_arrival_time_ = 0.0;
  double arrived_gross_work_ = 0.0;  // post-warmup: sum size * gross_service
  double arrived_net_work_ = 0.0;
  bool ran_ = false;
};

/// Convenience: configure + run in one call.
SimulationResult run_simulation(const SimulationConfig& config);

}  // namespace mcsim
