// GS — global scheduler, one global queue (paper Sect. 2.5, policy 1).
//
// All jobs (single- and multi-component) are submitted to one FCFS queue.
// The scheduler knows the idle count of every cluster and chooses clusters
// with Worst Fit for every job, including single-component ones. In the
// paper's configuration the head job blocks the queue until it fits (no
// backfilling).
//
// SC — the single-cluster comparison case (total requests, FCFS) — is this
// same policy on a one-cluster system; the factory instantiates it that way.
//
// Extension: optional backfilling (BackfillMode). kAggressive starts any
// queued job that currently fits; kEasy grants the head job a reservation
// at the earliest time enough processors free up (service times are known
// exactly in the model — "perfect estimates") and backfills a job only if
// it cannot delay that reservation. On a single cluster the reservation is
// exact; on a multicluster it uses the aggregate idle-processor
// approximation while actual starts still use real per-cluster placement.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "core/queue.hpp"
#include "core/scheduler.hpp"

namespace mcsim {

class PolicyGs final : public Scheduler {
 public:
  PolicyGs(SchedulerContext& context, PlacementRule placement, std::string display_name = "GS",
           BackfillMode backfill = BackfillMode::kNone,
           QueueDiscipline discipline = QueueDiscipline::kFcfs);

  void submit(JobPtr job) override;
  void on_departure() override;
  [[nodiscard]] std::size_t queued_jobs() const override { return queue_.size(); }
  [[nodiscard]] std::size_t max_queue_length() const override { return queue_.size(); }
  [[nodiscard]] std::vector<std::size_t> queue_lengths() const override {
    return {queue_.size()};
  }
  [[nodiscard]] std::string name() const override { return display_name_; }
  [[nodiscard]] BackfillMode backfill_mode() const { return backfill_; }

 private:
  struct RunningJob {
    double end_time;
    std::uint32_t processors;
  };

  void try_schedule();
  /// Start queue_[index] on `allocation` and record it as running.
  void start_at(std::size_t index, Allocation allocation);
  void backfill_aggressive();
  void backfill_easy();
  /// Earliest time the head job fits, and the processors left over then.
  /// Uses known completion times of running jobs (aggregate counts).
  [[nodiscard]] std::pair<double, std::uint32_t> head_reservation() const;

  JobQueue queue_;
  std::string display_name_;
  BackfillMode backfill_;
  std::vector<RunningJob> running_;  // maintained only when backfilling
};

}  // namespace mcsim
