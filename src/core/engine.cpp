#include "core/engine.hpp"

#include <algorithm>
#include <chrono>
#include <thread>

#include "util/assert.hpp"
#include "util/logging.hpp"
#include "util/rusage.hpp"
#include "util/strings.hpp"

namespace mcsim {

const char* engine_kind_name(EngineKind engine) {
  return engine == EngineKind::kParallel ? "parallel" : "serial";
}

EngineKind parse_engine_kind(const std::string& text) {
  const std::string lower = to_lower(text);
  if (lower == "serial") return EngineKind::kSerial;
  if (lower == "parallel") return EngineKind::kParallel;
  throw std::invalid_argument("unknown engine '" + text + "' (serial, parallel)");
}

std::uint32_t SimulationConfig::total_processors() const {
  std::uint32_t total = 0;
  for (std::uint32_t size : cluster_sizes) total += size;
  return total;
}

void SimulationConfig::validate() const {
  MCSIM_REQUIRE(!cluster_sizes.empty(), "config: cluster_sizes must name at least one cluster");
  for (std::uint32_t size : cluster_sizes) {
    MCSIM_REQUIRE(size > 0, "config: every cluster needs at least one processor");
  }
  MCSIM_REQUIRE(cluster_speeds.empty() || cluster_speeds.size() == cluster_sizes.size(),
                "config: cluster_speeds has " + std::to_string(cluster_speeds.size()) +
                    " entries but cluster_sizes has " +
                    std::to_string(cluster_sizes.size()) +
                    " (leave speeds empty for a homogeneous system)");
  for (double speed : cluster_speeds) {
    MCSIM_REQUIRE(speed > 0.0, "config: cluster speeds must be positive");
  }
  MCSIM_REQUIRE(total_jobs > 0, "config: total_jobs must be positive");
  MCSIM_REQUIRE(warmup_fraction >= 0.0 && warmup_fraction < 1.0,
                "config: warmup_fraction must be in [0,1), got " +
                    std::to_string(warmup_fraction));
  MCSIM_REQUIRE(batch_count > 0, "config: batch_count must be positive");
  MCSIM_REQUIRE(workload.arrival_rate > 0.0, "config: arrival_rate must be positive");
  MCSIM_REQUIRE(workload.extension_factor >= 1.0,
                "config: extension_factor must be >= 1");
  MCSIM_REQUIRE(instability_backlog_fraction >= 0.0 && instability_backlog_fraction <= 1.0,
                "config: instability_backlog_fraction must be in [0,1]");
  if (trace_workload != nullptr) {
    MCSIM_REQUIRE(!(trace_workload->streaming() && !trace_workload->records.empty()),
                  "config: trace workload has both in-memory records and a "
                  "stream source; pick one delivery mode");
    MCSIM_REQUIRE(trace_workload->job_count() > 0,
                  "config: trace workload has no replayable records" +
                      (trace_workload->source_path.empty()
                           ? std::string()
                           : " (" + trace_workload->source_path + ")"));
    MCSIM_REQUIRE(trace_workload->arrival_scale > 0.0,
                  "config: trace arrival_scale must be positive");
    MCSIM_REQUIRE(total_jobs <= trace_workload->job_count(),
                  "config: total_jobs (" + std::to_string(total_jobs) +
                      ") exceeds the trace length (" +
                      std::to_string(trace_workload->job_count()) + ")");
    if (is_single_cluster_policy(policy)) {
      MCSIM_REQUIRE(!trace_workload->split_jobs,
                    "config: SC replay uses total requests (split_jobs = false)");
    } else {
      MCSIM_REQUIRE(trace_workload->num_clusters == cluster_sizes.size(),
                    "config: trace workload num_clusters (" +
                        std::to_string(trace_workload->num_clusters) +
                        ") disagrees with the system layout (" +
                        std::to_string(cluster_sizes.size()) + " clusters)");
    }
  }
  if (is_single_cluster_policy(policy)) {
    MCSIM_REQUIRE(cluster_sizes.size() == 1, "config: SC runs on a single cluster");
    MCSIM_REQUIRE(!workload.split_jobs,
                  "config: SC uses total requests (split_jobs = false)");
  } else {
    MCSIM_REQUIRE(workload.num_clusters == cluster_sizes.size(),
                  "config: workload.num_clusters (" +
                      std::to_string(workload.num_clusters) +
                      ") disagrees with the system layout (" +
                      std::to_string(cluster_sizes.size()) + " clusters)");
  }
}

namespace {
// Validates first: the engine's members (Multicluster, the job source) are
// constructed from the config in the init list, so the config-level checks
// must fire before any of them can trip on garbage.
Multicluster make_system(const SimulationConfig& config) {
  config.validate();
  if (config.cluster_speeds.empty()) return Multicluster(config.cluster_sizes);
  return Multicluster(config.cluster_sizes, config.cluster_speeds);
}

// Adapts the synthetic WorkloadGenerator to the pull-based JobSource the
// engine consumes; never exhausts.
class SyntheticSource final : public JobSource {
 public:
  SyntheticSource(WorkloadConfig config, std::uint64_t seed)
      : generator_(std::move(config), seed) {}

  bool next(JobSpec& out) override {
    out = generator_.next();
    return true;
  }

 private:
  WorkloadGenerator generator_;
};

std::unique_ptr<JobSource> make_source(const SimulationConfig& config) {
  if (config.trace_workload != nullptr) {
    return std::make_unique<TraceWorkload>(config.trace_workload);
  }
  return std::make_unique<SyntheticSource>(config.workload, config.seed);
}

// The service-time extension bound (docs/PARALLEL.md, "Lookahead bound"):
// a job started at time t cannot produce a departure before
// t + min gross service / fastest cluster speed, so no LP can affect
// another LP's timeline inside that interval. Traces expose their minimum
// runtime from the pre-scan; synthetic service distributions are
// unbounded below, so the hint degrades to 0 and the horizon adapts from
// window density alone. Either way the value only seeds window batching —
// the spill merge keeps dispatch order exact whatever the hint.
double conservative_lookahead(const SimulationConfig& config) {
  double fastest = 1.0;
  for (const double speed : config.cluster_speeds) fastest = std::max(fastest, speed);
  const double min_gross =
      config.trace_workload != nullptr ? config.trace_workload->min_gross_service : 0.0;
  return min_gross > 0.0 ? min_gross / fastest : 0.0;
}

// Departures of single-cluster jobs belong to that cluster's LP; a
// co-allocated departure touches several clusters, so it becomes a
// cross-LP barrier event owned by the coordinator LP 0 — as do arrivals,
// which feed the (possibly global) queue.
std::uint32_t departure_lp(const Allocation& allocation) {
  if (allocation.size() == 1) {
    return 1U + static_cast<std::uint32_t>(allocation.front().cluster);
  }
  return 0;
}
}  // namespace

MulticlusterSimulation::MulticlusterSimulation(SimulationConfig config)
    : config_(std::move(config)),
      system_(make_system(config_)),
      source_(make_source(config_)),
      utilization_(system_.total_processors(), 0.0) {
  if (config_.engine == EngineKind::kParallel) {
    ParallelConfig parallel;
    parallel.lp_count = system_.num_clusters() + 1;  // clusters + coordinator
    parallel.worker_threads =
        config_.engine_threads != 0
            ? config_.engine_threads
            : std::max(1U, std::thread::hardware_concurrency());
    parallel.lookahead_hint = conservative_lookahead(config_);
    sim_.configure_parallel(parallel);
    pool_.configure_shards(parallel.lp_count);
  }
  if (config_.scheduler_factory) {
    scheduler_ = config_.scheduler_factory(*this);
  } else if (config_.pipeline) {
    scheduler_ = make_scheduler(config_.policy, *config_.pipeline, *this);
  } else {
    scheduler_ = make_scheduler(config_.policy, *this, config_.placement,
                                config_.backfill, config_.discipline);
  }
  queue_length_.start(0.0, 0.0);
  cluster_busy_.resize(system_.num_clusters());
  for (auto& stat : cluster_busy_) stat.start(0.0, 0.0);
  warmup_completions_ =
      static_cast<std::uint64_t>(config_.warmup_fraction * static_cast<double>(config_.total_jobs));
  const std::uint64_t measured = config_.total_jobs - warmup_completions_;
  const std::uint64_t batch_size = std::max<std::uint64_t>(1, measured / config_.batch_count);
  response_batches_ = std::make_unique<BatchMeans>(batch_size);
  result_.policy = scheduler_->name();
}

void MulticlusterSimulation::set_metrics(obs::MetricsRegistry* metrics) {
  metrics_ = metrics;
  if (metrics_ == nullptr) {
    ctr_arrivals_ = ctr_started_ = ctr_finished_ = nullptr;
    ctr_attempts_ = ctr_rejects_ = ctr_rejects_local_ = nullptr;
    calendar_series_ = nullptr;
    sim_.set_step_hook(nullptr);
    return;
  }
  ctr_arrivals_ = &metrics_->counter("jobs.arrived");
  ctr_started_ = &metrics_->counter("jobs.started");
  ctr_finished_ = &metrics_->counter("jobs.finished");
  ctr_attempts_ = &metrics_->counter("placement.attempts");
  ctr_rejects_ = &metrics_->counter("placement.rejects");
  ctr_rejects_local_ = &metrics_->counter("placement.rejects.local");
  calendar_series_ = &metrics_->series("calendar.pending");
  calendar_series_->start(0.0, 0.0);
  sim_.set_step_hook([this](double time, std::size_t pending) {
    calendar_series_->update(time, static_cast<double>(pending));
  });
}

void MulticlusterSimulation::emit(obs::EventKind kind, const Job& job, double value,
                                  std::int16_t cluster) {
  obs::TraceEvent event;
  event.time = sim_.now();
  event.value = value;
  event.job = job.spec.id;
  event.size = job.spec.total_size;
  event.kind = kind;
  event.components = static_cast<std::uint8_t>(
      std::min<std::uint32_t>(job.spec.component_count(), 255));
  event.cluster = cluster;
  sink_->record(event);
}

void MulticlusterSimulation::finish_metrics() {
  if (metrics_ == nullptr) return;
  metrics_->gauge("run.wall_seconds") = result_.wall_seconds;
  metrics_->gauge("run.events_per_sec") =
      result_.wall_seconds > 0.0
          ? static_cast<double>(result_.events_executed) / result_.wall_seconds
          : 0.0;
  metrics_->gauge("run.event_loop_seconds") = event_loop_seconds_;
  metrics_->gauge("run.events_executed_per_sec") =
      event_loop_seconds_ > 0.0
          ? static_cast<double>(result_.events_executed) / event_loop_seconds_
          : 0.0;
  metrics_->gauge("run.peak_rss_bytes") = static_cast<double>(peak_rss_bytes());
  metrics_->gauge("run.sim_end_time") = sim_.now();
  metrics_->gauge("run.unstable") = result_.unstable ? 1.0 : 0.0;
  // Snapshot the engine's own time-weighted processes (measurement window,
  // i.e. post-warmup) into the registry so the manifest carries them.
  metrics_->series("queue.waiting") = queue_length_;
  for (std::uint32_t c = 0; c < cluster_busy_.size(); ++c) {
    const std::string prefix = "cluster." + std::to_string(c);
    metrics_->series(prefix + ".busy") = cluster_busy_[c];
    metrics_->gauge(prefix + ".busy_fraction") = result_.per_cluster_busy_fraction[c];
  }
}

SimulationResult MulticlusterSimulation::run() {
  MCSIM_REQUIRE(!ran_, "MulticlusterSimulation::run may be called once");
  ran_ = true;
  const auto wall_start = std::chrono::steady_clock::now();
  // Auto-tune the event core from the run's known horizon: every job is at
  // most one arrival plus one departure event, and the pending set is
  // bounded by the running jobs (<= total processors) plus the one
  // in-flight arrival. Sized here, the calendar heap, the handler slots and
  // the resolved bitmap never rehash or reallocate mid-run.
  sim_.reserve_events(config_.total_jobs * 2 + 16,
                      static_cast<std::size_t>(system_.total_processors()) + 8);
  if (warmup_completions_ == 0) begin_measurement();
  schedule_next_arrival();
  const auto loop_start = std::chrono::steady_clock::now();
  sim_.run();
  event_loop_seconds_ =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - loop_start)
          .count();
  result_.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start)
          .count();

  result_.completed_jobs = completions_;
  result_.end_time = sim_.now();
  result_.events_executed = sim_.executed_events();
  result_.final_queue_lengths = scheduler_->queue_lengths();
  result_.response_ci = response_batches_->confidence();
  result_.response_p95 = response_p95_.value();
  result_.busy_fraction = utilization_.busy_fraction(sim_.now());
  result_.mean_queue_length = queue_length_.time_average(sim_.now());
  result_.per_cluster_busy_fraction.reserve(cluster_busy_.size());
  for (std::uint32_t c = 0; c < cluster_busy_.size(); ++c) {
    result_.per_cluster_busy_fraction.push_back(
        cluster_busy_[c].time_average(sim_.now()) /
        static_cast<double>(system_.cluster(c).capacity()));
  }

  // Offered load over the measurement window (arrival-side accounting; for
  // a stable run this matches the carried load).
  const double window = last_arrival_time_ - measure_start_time_;
  if (window > 0.0 && measuring_) {
    const double capacity = static_cast<double>(system_.total_processors()) * window;
    result_.offered_gross_utilization = arrived_gross_work_ / capacity;
    result_.offered_net_utilization = arrived_net_work_ / capacity;
  }
  finish_metrics();
  return result_;
}

void MulticlusterSimulation::schedule_next_arrival() {
  if (arrivals_generated_ >= config_.total_jobs) return;
  JobSpec spec;
  if (!source_->next(spec)) return;  // finite source (trace) ran dry
  ++arrivals_generated_;
  // Move the spec into a pooled Job now so the arrival event captures one
  // plain pointer: the handler stays inside EventFn's inline buffer and the
  // spec's vectors are never copied again.
  const double when = spec.arrival_time;
  JobPtr job = pool_.acquire(std::move(spec));
  sim_.set_event_lp(0);  // arrivals are cross-LP traffic: coordinator-owned
  sim_.schedule_at(when, [this, job]() { on_arrival(job); });
}

void MulticlusterSimulation::on_arrival(JobPtr job) {
  last_arrival_time_ = sim_.now();
  if (measuring_) {
    arrived_gross_work_ +=
        static_cast<double>(job->spec.total_size) * job->spec.gross_service_time;
    arrived_net_work_ +=
        static_cast<double>(job->spec.total_size) * job->spec.service_time;
  }
  if (ctr_arrivals_ != nullptr) ++*ctr_arrivals_;
  if (sink_ != nullptr) {
    emit(obs::EventKind::kArrival, *job, 0.0,
         static_cast<std::int16_t>(job->spec.origin_queue));
  }
  scheduler_->submit(job);
  queue_length_.update(sim_.now(), static_cast<double>(scheduler_->queued_jobs()));

  if (scheduler_->max_queue_length() > config_.instability_queue_limit) {
    MCSIM_LOG(kInfo) << result_.policy << ": queue exceeded "
                     << config_.instability_queue_limit << " jobs; marking unstable";
    result_.unstable = true;
    sim_.stop();
    return;
  }
  if (arrivals_generated_ >= config_.total_jobs) {
    // Last arrival just entered: a backlog still growing at this point means
    // the offered load exceeds the policy's maximal utilization.
    const auto backlog_limit = static_cast<std::size_t>(
        std::max(100.0, config_.instability_backlog_fraction *
                            static_cast<double>(config_.total_jobs)));
    if (scheduler_->queued_jobs() > backlog_limit) {
      MCSIM_LOG(kInfo) << result_.policy << ": backlog of " << scheduler_->queued_jobs()
                       << " jobs at end of arrivals; marking unstable";
      result_.unstable = true;
      sim_.stop();
      return;
    }
  }
  schedule_next_arrival();
}

void MulticlusterSimulation::record_placement(Job& job, bool success,
                                              std::int16_t cluster) {
  if (metrics_ != nullptr) {
    ++*ctr_attempts_;
    if (!success) {
      ++*ctr_rejects_;
      if (cluster >= 0) ++*ctr_rejects_local_;
    }
  }
  if (sink_ != nullptr) {
    if (!job.considered) {
      job.considered = true;
      emit(obs::EventKind::kHeadOfQueue, job, 0.0, cluster);
    }
    emit(obs::EventKind::kPlacementAttempt, job, 0.0, cluster);
    if (!success) emit(obs::EventKind::kPlacementReject, job, 0.0, cluster);
  }
}

void MulticlusterSimulation::start_job(JobPtr job, Allocation allocation) {
  MCSIM_REQUIRE(!job->started(), "job started twice");
  job->allocation = std::move(allocation);
  job->start_time = sim_.now();
  system_.allocate(job->allocation);
  // A co-allocated job's tasks synchronise, so its execution stretches by
  // the slowest cluster it touches (speed 1.0 everywhere in the paper).
  const double runtime = job->spec.gross_service_time / system_.slowest_speed(job->allocation);
  utilization_.on_job_start(sim_.now(), job->spec.total_size, runtime,
                            job->spec.service_time);
  for (const auto& placement : job->allocation) {
    cluster_busy_[placement.cluster].update(
        sim_.now(), static_cast<double>(system_.cluster(placement.cluster).busy()));
  }
  if (ctr_started_ != nullptr) ++*ctr_started_;
  if (sink_ != nullptr) {
    emit(obs::EventKind::kStart, *job, sim_.now() - job->spec.arrival_time,
         static_cast<std::int16_t>(job->allocation.front().cluster));
  }
  sim_.set_event_lp(departure_lp(job->allocation));
  sim_.schedule_in(runtime, [this, job]() { on_departure(job); });
}

void MulticlusterSimulation::on_departure(JobPtr job) {
  system_.release(job->allocation);
  utilization_.on_job_finish(sim_.now(), job->spec.total_size);
  for (const auto& placement : job->allocation) {
    cluster_busy_[placement.cluster].update(
        sim_.now(), static_cast<double>(system_.cluster(placement.cluster).busy()));
  }
  ++completions_;

  // Decompose the response into the SWF quantities (wait + elapsed run
  // time) and sum them, instead of computing now - arrival directly, so a
  // trace exported as wait/run fields reconstructs the response — and
  // therefore every response-time statistic — bit-exactly.
  const double wait = job->start_time - job->spec.arrival_time;
  const double run_elapsed = sim_.now() - job->start_time;
  if (ctr_finished_ != nullptr) ++*ctr_finished_;
  if (sink_ != nullptr) {
    emit(obs::EventKind::kFinish, *job, run_elapsed,
         static_cast<std::int16_t>(job->allocation.front().cluster));
  }

  if (!measuring_ && completions_ >= warmup_completions_) begin_measurement();

  if (measuring_) {
    const double response = wait + run_elapsed;
    result_.response_all.add(response);
    result_.wait_all.add(wait);
    response_batches_->add(response);
    response_p95_.add(response);
    if (job->queue_class == QueueClass::kLocal) result_.response_local.add(response);
    else result_.response_global.add(response);
    if (job->spec.total_size <= 16) result_.response_small.add(response);
    else if (job->spec.total_size <= 64) result_.response_medium.add(response);
    else result_.response_large.add(response);
    result_.slowdown_all.add(response / job->spec.gross_service_time);
    ++result_.measured_jobs;
  }

  if (observer_) observer_(*job, sim_.now());

  scheduler_->on_departure();
  queue_length_.update(sim_.now(), static_cast<double>(scheduler_->queued_jobs()));
  // The job is out of every queue, off the machine, and fully accounted:
  // recycle it. Departure order is deterministic, so the pool's free list —
  // and with it the addresses handed to future arrivals — replays
  // identically run over run.
  pool_.release(job);
}

void MulticlusterSimulation::begin_measurement() {
  measuring_ = true;
  measure_start_time_ = sim_.now();
  utilization_.reset_at(sim_.now());
  queue_length_.update(sim_.now(), static_cast<double>(scheduler_->queued_jobs()));
  queue_length_.reset_at(sim_.now());
  for (std::uint32_t c = 0; c < cluster_busy_.size(); ++c) {
    cluster_busy_[c].update(sim_.now(), static_cast<double>(system_.cluster(c).busy()));
    cluster_busy_[c].reset_at(sim_.now());
  }
}

SimulationResult run_simulation(const SimulationConfig& config) {
  MulticlusterSimulation simulation(config);
  return simulation.run();
}

}  // namespace mcsim
