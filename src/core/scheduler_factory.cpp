#include "core/scheduler_factory.hpp"

#include "core/policy_gs.hpp"
#include "core/policy_lp.hpp"
#include "core/policy_ls.hpp"
#include "util/assert.hpp"
#include "util/strings.hpp"

namespace mcsim {

const char* policy_name(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kGS: return "GS";
    case PolicyKind::kLS: return "LS";
    case PolicyKind::kLP: return "LP";
    case PolicyKind::kSC: return "SC";
  }
  return "?";
}

PolicyKind parse_policy_kind(const std::string& name) {
  const std::string lower = to_lower(name);
  if (lower == "gs") return PolicyKind::kGS;
  if (lower == "ls") return PolicyKind::kLS;
  if (lower == "lp") return PolicyKind::kLP;
  if (lower == "sc") return PolicyKind::kSC;
  MCSIM_REQUIRE(false, "unknown policy: " + name + " (expected GS, LS, LP, or SC)");
  return PolicyKind::kGS;
}

bool is_single_cluster_policy(PolicyKind kind) { return kind == PolicyKind::kSC; }

std::unique_ptr<Scheduler> make_scheduler(PolicyKind kind, SchedulerContext& context,
                                          PlacementRule placement, BackfillMode backfill,
                                          QueueDiscipline discipline) {
  const bool single_queue = kind == PolicyKind::kGS || kind == PolicyKind::kSC;
  MCSIM_REQUIRE(backfill == BackfillMode::kNone || single_queue,
                "backfilling is implemented for the single-queue policies (GS, SC)");
  MCSIM_REQUIRE(discipline == QueueDiscipline::kFcfs || single_queue,
                "queue disciplines are implemented for the single-queue policies (GS, SC)");
  std::string name = policy_name(kind);
  if (single_queue && backfill != BackfillMode::kNone) {
    name += std::string("+") + backfill_mode_name(backfill);
  }
  if (single_queue && discipline != QueueDiscipline::kFcfs) {
    name += std::string("+") + queue_discipline_name(discipline);
  }
  switch (kind) {
    case PolicyKind::kGS:
      return std::make_unique<PolicyGs>(context, placement, name, backfill, discipline);
    case PolicyKind::kSC:
      MCSIM_REQUIRE(context.system().num_clusters() == 1,
                    "SC must run on a single-cluster system");
      return std::make_unique<PolicyGs>(context, placement, name, backfill, discipline);
    case PolicyKind::kLS:
      return std::make_unique<PolicyLs>(context, placement);
    case PolicyKind::kLP:
      return std::make_unique<PolicyLp>(context, placement);
  }
  MCSIM_REQUIRE(false, "unknown policy kind");
  return nullptr;
}

}  // namespace mcsim
