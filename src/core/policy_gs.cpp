#include "core/policy_gs.hpp"

#include <algorithm>
#include <limits>
#include <utility>

#include "util/assert.hpp"

namespace mcsim {

PolicyGs::PolicyGs(SchedulerContext& context, PlacementRule placement,
                   std::string display_name, BackfillMode backfill,
                   QueueDiscipline discipline)
    : Scheduler(context, placement),
      display_name_(std::move(display_name)),
      backfill_(backfill) {
  queue_.set_order(make_job_order(discipline));
}

void PolicyGs::submit(JobPtr job) {
  job->queue_class = QueueClass::kGlobal;
  queue_.push(job);
  try_schedule();
}

void PolicyGs::on_departure() {
  if (backfill_ != BackfillMode::kNone) {
    // Prune completed jobs from the running list.
    const double now = context_.now();
    std::erase_if(running_, [now](const RunningJob& r) { return r.end_time <= now; });
  }
  try_schedule();
}

void PolicyGs::start_at(std::size_t index, Allocation allocation) {
  JobPtr job = queue_.remove_at(index);
  if (backfill_ != BackfillMode::kNone) {
    running_.push_back(
        RunningJob{context_.now() + job->spec.gross_service_time, job->spec.total_size});
  }
  context_.start_job(job, std::move(allocation));
}

void PolicyGs::try_schedule() {
  // FCFS part, common to all modes: start head jobs while they fit.
  while (!queue_.empty()) {
    auto allocation = try_place(*queue_.front());
    if (!allocation) break;
    start_at(0, std::move(*allocation));
  }
  if (queue_.size() < 2) return;
  switch (backfill_) {
    case BackfillMode::kNone: break;
    case BackfillMode::kAggressive: backfill_aggressive(); break;
    case BackfillMode::kEasy: backfill_easy(); break;
  }
}

void PolicyGs::backfill_aggressive() {
  // Scan past the (blocked) head and start anything that fits, in order.
  std::size_t index = 1;
  while (index < queue_.size()) {
    auto allocation = try_place(*queue_.at(index));
    if (allocation) {
      start_at(index, std::move(*allocation));
      // Do not advance: the next job shifted into this slot.
    } else {
      ++index;
    }
  }
}

std::pair<double, std::uint32_t> PolicyGs::head_reservation() const {
  MCSIM_ASSERT(!queue_.empty());
  const std::uint32_t needed = queue_.front()->spec.total_size;
  std::uint32_t idle = context_.system().total_idle();
  MCSIM_ASSERT(idle < needed || !running_.empty());

  std::vector<RunningJob> by_end = running_;
  std::sort(by_end.begin(), by_end.end(),
            [](const RunningJob& a, const RunningJob& b) { return a.end_time < b.end_time; });
  for (const RunningJob& job : by_end) {
    idle += job.processors;
    if (idle >= needed) {
      return {job.end_time, idle - needed};
    }
  }
  // Head larger than the machine cannot happen (workload is bounded), but
  // guard against it so the scheduler degrades to plain FCFS.
  return {std::numeric_limits<double>::infinity(), 0};
}

void PolicyGs::backfill_easy() {
  // The head is blocked: give it a reservation at time t_res, with `extra`
  // processors spare at that moment. A later job may start now iff it fits
  // now AND either completes by t_res or leaves the reservation intact
  // (total size within the spare processors).
  const auto [t_res, extra] = head_reservation();
  const double now = context_.now();
  std::uint32_t spare = extra;
  std::size_t index = 1;
  while (index < queue_.size()) {
    const Job& job = *queue_.at(index);
    const bool ends_in_time = now + job.spec.gross_service_time <= t_res;
    const bool within_spare = job.spec.total_size <= spare;
    if (!ends_in_time && !within_spare) {
      ++index;
      continue;
    }
    auto allocation = try_place(*queue_.at(index));
    if (!allocation) {
      ++index;
      continue;
    }
    if (!ends_in_time) spare -= job.spec.total_size;
    start_at(index, std::move(*allocation));
  }
}

}  // namespace mcsim
