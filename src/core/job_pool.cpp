#include "core/job_pool.hpp"

#include "util/assert.hpp"

namespace mcsim {

Job* JobPool::acquire(JobSpec spec) {
  Job* job = nullptr;
  if (!free_.empty()) {
    job = free_.back();
    free_.pop_back();
  } else {
    if (next_in_slab_ == kSlabCapacity) {
      slabs_.push_back(std::make_unique<Job[]>(kSlabCapacity));
      next_in_slab_ = 0;
    }
    job = &slabs_.back()[next_in_slab_++];
  }
  job->reset(std::move(spec));
  ++acquired_;
  return job;
}

void JobPool::release(Job* job) {
  MCSIM_ASSERT(job != nullptr);
  MCSIM_ASSERT(acquired_ > released_);
  free_.push_back(job);
  ++released_;
}

}  // namespace mcsim
