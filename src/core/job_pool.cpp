#include "core/job_pool.hpp"

#include "util/assert.hpp"

namespace mcsim {

void JobPool::configure_shards(std::uint32_t shards) {
  MCSIM_REQUIRE(shards >= 1, "job pool needs at least one shard");
  MCSIM_REQUIRE(acquired_ == 0, "configure_shards must precede the first acquire");
  free_.assign(shards, {});
}

Job* JobPool::acquire(JobSpec spec, std::uint32_t shard) {
  MCSIM_ASSERT(shard < free_.size());
  Job* job = nullptr;
  std::vector<Job*>& lane = free_[shard];
  if (!lane.empty()) {
    job = lane.back();
    lane.pop_back();
  } else {
    if (next_in_slab_ == kSlabCapacity) {
      slabs_.push_back(std::make_unique<Job[]>(kSlabCapacity));
      next_in_slab_ = 0;
    }
    job = &slabs_.back()[next_in_slab_++];
  }
  job->reset(std::move(spec));
  job->pool_shard = shard;
  ++acquired_;
  return job;
}

void JobPool::release(Job* job) {
  MCSIM_ASSERT(job != nullptr);
  MCSIM_ASSERT(acquired_ > released_);
  MCSIM_ASSERT(job->pool_shard < free_.size());
  free_[job->pool_shard].push_back(job);
  ++released_;
}

}  // namespace mcsim
