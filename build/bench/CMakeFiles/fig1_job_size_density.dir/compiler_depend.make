# Empty compiler generated dependencies file for fig1_job_size_density.
# This may be replaced when dependencies are built.
