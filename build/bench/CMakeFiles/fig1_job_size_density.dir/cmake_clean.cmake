file(REMOVE_RECURSE
  "CMakeFiles/fig1_job_size_density.dir/fig1_job_size_density.cpp.o"
  "CMakeFiles/fig1_job_size_density.dir/fig1_job_size_density.cpp.o.d"
  "fig1_job_size_density"
  "fig1_job_size_density.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_job_size_density.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
