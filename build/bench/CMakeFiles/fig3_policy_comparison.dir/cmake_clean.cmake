file(REMOVE_RECURSE
  "CMakeFiles/fig3_policy_comparison.dir/fig3_policy_comparison.cpp.o"
  "CMakeFiles/fig3_policy_comparison.dir/fig3_policy_comparison.cpp.o.d"
  "fig3_policy_comparison"
  "fig3_policy_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_policy_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
