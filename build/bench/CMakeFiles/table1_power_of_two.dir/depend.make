# Empty dependencies file for table1_power_of_two.
# This may be replaced when dependencies are built.
