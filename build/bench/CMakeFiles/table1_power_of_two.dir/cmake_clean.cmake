file(REMOVE_RECURSE
  "CMakeFiles/table1_power_of_two.dir/table1_power_of_two.cpp.o"
  "CMakeFiles/table1_power_of_two.dir/table1_power_of_two.cpp.o.d"
  "table1_power_of_two"
  "table1_power_of_two.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_power_of_two.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
