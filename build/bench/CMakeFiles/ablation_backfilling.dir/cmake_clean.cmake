file(REMOVE_RECURSE
  "CMakeFiles/ablation_backfilling.dir/ablation_backfilling.cpp.o"
  "CMakeFiles/ablation_backfilling.dir/ablation_backfilling.cpp.o.d"
  "ablation_backfilling"
  "ablation_backfilling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_backfilling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
