# Empty compiler generated dependencies file for ablation_backfilling.
# This may be replaced when dependencies are built.
