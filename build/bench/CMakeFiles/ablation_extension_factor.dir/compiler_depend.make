# Empty compiler generated dependencies file for ablation_extension_factor.
# This may be replaced when dependencies are built.
