file(REMOVE_RECURSE
  "CMakeFiles/ablation_extension_factor.dir/ablation_extension_factor.cpp.o"
  "CMakeFiles/ablation_extension_factor.dir/ablation_extension_factor.cpp.o.d"
  "ablation_extension_factor"
  "ablation_extension_factor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_extension_factor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
