file(REMOVE_RECURSE
  "CMakeFiles/table3_maximal_utilization.dir/table3_maximal_utilization.cpp.o"
  "CMakeFiles/table3_maximal_utilization.dir/table3_maximal_utilization.cpp.o.d"
  "table3_maximal_utilization"
  "table3_maximal_utilization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_maximal_utilization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
