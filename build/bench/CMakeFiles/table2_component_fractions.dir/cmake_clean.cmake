file(REMOVE_RECURSE
  "CMakeFiles/table2_component_fractions.dir/table2_component_fractions.cpp.o"
  "CMakeFiles/table2_component_fractions.dir/table2_component_fractions.cpp.o.d"
  "table2_component_fractions"
  "table2_component_fractions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_component_fractions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
