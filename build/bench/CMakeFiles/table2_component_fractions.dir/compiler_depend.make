# Empty compiler generated dependencies file for table2_component_fractions.
# This may be replaced when dependencies are built.
