# Empty compiler generated dependencies file for fig7_gross_vs_net.
# This may be replaced when dependencies are built.
