file(REMOVE_RECURSE
  "CMakeFiles/fig7_gross_vs_net.dir/fig7_gross_vs_net.cpp.o"
  "CMakeFiles/fig7_gross_vs_net.dir/fig7_gross_vs_net.cpp.o.d"
  "fig7_gross_vs_net"
  "fig7_gross_vs_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_gross_vs_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
