# Empty compiler generated dependencies file for gbench_engine.
# This may be replaced when dependencies are built.
