file(REMOVE_RECURSE
  "CMakeFiles/gbench_engine.dir/gbench_engine.cpp.o"
  "CMakeFiles/gbench_engine.dir/gbench_engine.cpp.o.d"
  "gbench_engine"
  "gbench_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gbench_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
