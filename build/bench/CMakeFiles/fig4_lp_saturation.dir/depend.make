# Empty dependencies file for fig4_lp_saturation.
# This may be replaced when dependencies are built.
