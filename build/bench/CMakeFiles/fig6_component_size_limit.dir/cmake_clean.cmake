file(REMOVE_RECURSE
  "CMakeFiles/fig6_component_size_limit.dir/fig6_component_size_limit.cpp.o"
  "CMakeFiles/fig6_component_size_limit.dir/fig6_component_size_limit.cpp.o.d"
  "fig6_component_size_limit"
  "fig6_component_size_limit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_component_size_limit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
