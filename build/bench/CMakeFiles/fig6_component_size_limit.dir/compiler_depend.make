# Empty compiler generated dependencies file for fig6_component_size_limit.
# This may be replaced when dependencies are built.
