file(REMOVE_RECURSE
  "CMakeFiles/fig2_service_time_density.dir/fig2_service_time_density.cpp.o"
  "CMakeFiles/fig2_service_time_density.dir/fig2_service_time_density.cpp.o.d"
  "fig2_service_time_density"
  "fig2_service_time_density.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_service_time_density.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
