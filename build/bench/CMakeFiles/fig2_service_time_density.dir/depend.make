# Empty dependencies file for fig2_service_time_density.
# This may be replaced when dependencies are built.
