# Empty dependencies file for ablation_request_types.
# This may be replaced when dependencies are built.
