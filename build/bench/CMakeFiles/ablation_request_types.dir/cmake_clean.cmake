file(REMOVE_RECURSE
  "CMakeFiles/ablation_request_types.dir/ablation_request_types.cpp.o"
  "CMakeFiles/ablation_request_types.dir/ablation_request_types.cpp.o.d"
  "ablation_request_types"
  "ablation_request_types.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_request_types.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
