file(REMOVE_RECURSE
  "CMakeFiles/fig5_total_size_limit.dir/fig5_total_size_limit.cpp.o"
  "CMakeFiles/fig5_total_size_limit.dir/fig5_total_size_limit.cpp.o.d"
  "fig5_total_size_limit"
  "fig5_total_size_limit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_total_size_limit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
