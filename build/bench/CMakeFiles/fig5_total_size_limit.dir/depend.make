# Empty dependencies file for fig5_total_size_limit.
# This may be replaced when dependencies are built.
