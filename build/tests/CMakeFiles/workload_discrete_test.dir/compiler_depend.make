# Empty compiler generated dependencies file for workload_discrete_test.
# This may be replaced when dependencies are built.
