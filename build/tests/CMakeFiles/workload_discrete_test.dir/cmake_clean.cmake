file(REMOVE_RECURSE
  "CMakeFiles/workload_discrete_test.dir/workload_discrete_test.cpp.o"
  "CMakeFiles/workload_discrete_test.dir/workload_discrete_test.cpp.o.d"
  "workload_discrete_test"
  "workload_discrete_test.pdb"
  "workload_discrete_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workload_discrete_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
