file(REMOVE_RECURSE
  "CMakeFiles/stats_queueing_test.dir/stats_queueing_test.cpp.o"
  "CMakeFiles/stats_queueing_test.dir/stats_queueing_test.cpp.o.d"
  "stats_queueing_test"
  "stats_queueing_test.pdb"
  "stats_queueing_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stats_queueing_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
