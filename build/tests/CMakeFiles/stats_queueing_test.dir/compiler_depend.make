# Empty compiler generated dependencies file for stats_queueing_test.
# This may be replaced when dependencies are built.
