# Empty compiler generated dependencies file for core_policy_lp_test.
# This may be replaced when dependencies are built.
