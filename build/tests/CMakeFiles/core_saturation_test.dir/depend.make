# Empty dependencies file for core_saturation_test.
# This may be replaced when dependencies are built.
