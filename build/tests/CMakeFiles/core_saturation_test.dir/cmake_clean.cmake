file(REMOVE_RECURSE
  "CMakeFiles/core_saturation_test.dir/core_saturation_test.cpp.o"
  "CMakeFiles/core_saturation_test.dir/core_saturation_test.cpp.o.d"
  "core_saturation_test"
  "core_saturation_test.pdb"
  "core_saturation_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_saturation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
