# Empty dependencies file for stats_warmup_utilization_test.
# This may be replaced when dependencies are built.
