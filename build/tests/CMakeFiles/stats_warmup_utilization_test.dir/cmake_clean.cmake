file(REMOVE_RECURSE
  "CMakeFiles/stats_warmup_utilization_test.dir/stats_warmup_utilization_test.cpp.o"
  "CMakeFiles/stats_warmup_utilization_test.dir/stats_warmup_utilization_test.cpp.o.d"
  "stats_warmup_utilization_test"
  "stats_warmup_utilization_test.pdb"
  "stats_warmup_utilization_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stats_warmup_utilization_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
