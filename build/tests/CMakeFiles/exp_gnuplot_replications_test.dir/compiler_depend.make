# Empty compiler generated dependencies file for exp_gnuplot_replications_test.
# This may be replaced when dependencies are built.
