file(REMOVE_RECURSE
  "CMakeFiles/exp_gnuplot_replications_test.dir/exp_gnuplot_replications_test.cpp.o"
  "CMakeFiles/exp_gnuplot_replications_test.dir/exp_gnuplot_replications_test.cpp.o.d"
  "exp_gnuplot_replications_test"
  "exp_gnuplot_replications_test.pdb"
  "exp_gnuplot_replications_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_gnuplot_replications_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
