file(REMOVE_RECURSE
  "CMakeFiles/sim_calendar_test.dir/sim_calendar_test.cpp.o"
  "CMakeFiles/sim_calendar_test.dir/sim_calendar_test.cpp.o.d"
  "sim_calendar_test"
  "sim_calendar_test.pdb"
  "sim_calendar_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_calendar_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
