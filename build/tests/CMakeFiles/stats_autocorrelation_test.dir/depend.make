# Empty dependencies file for stats_autocorrelation_test.
# This may be replaced when dependencies are built.
