file(REMOVE_RECURSE
  "CMakeFiles/stats_autocorrelation_test.dir/stats_autocorrelation_test.cpp.o"
  "CMakeFiles/stats_autocorrelation_test.dir/stats_autocorrelation_test.cpp.o.d"
  "stats_autocorrelation_test"
  "stats_autocorrelation_test.pdb"
  "stats_autocorrelation_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stats_autocorrelation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
