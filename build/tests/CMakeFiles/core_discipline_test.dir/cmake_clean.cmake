file(REMOVE_RECURSE
  "CMakeFiles/core_discipline_test.dir/core_discipline_test.cpp.o"
  "CMakeFiles/core_discipline_test.dir/core_discipline_test.cpp.o.d"
  "core_discipline_test"
  "core_discipline_test.pdb"
  "core_discipline_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_discipline_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
