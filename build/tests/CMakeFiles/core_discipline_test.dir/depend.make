# Empty dependencies file for core_discipline_test.
# This may be replaced when dependencies are built.
