# Empty dependencies file for core_policy_gs_test.
# This may be replaced when dependencies are built.
