file(REMOVE_RECURSE
  "CMakeFiles/core_policy_gs_test.dir/core_policy_gs_test.cpp.o"
  "CMakeFiles/core_policy_gs_test.dir/core_policy_gs_test.cpp.o.d"
  "core_policy_gs_test"
  "core_policy_gs_test.pdb"
  "core_policy_gs_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_policy_gs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
