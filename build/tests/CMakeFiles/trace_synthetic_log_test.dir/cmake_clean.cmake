file(REMOVE_RECURSE
  "CMakeFiles/trace_synthetic_log_test.dir/trace_synthetic_log_test.cpp.o"
  "CMakeFiles/trace_synthetic_log_test.dir/trace_synthetic_log_test.cpp.o.d"
  "trace_synthetic_log_test"
  "trace_synthetic_log_test.pdb"
  "trace_synthetic_log_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_synthetic_log_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
