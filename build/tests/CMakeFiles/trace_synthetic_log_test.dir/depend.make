# Empty dependencies file for trace_synthetic_log_test.
# This may be replaced when dependencies are built.
