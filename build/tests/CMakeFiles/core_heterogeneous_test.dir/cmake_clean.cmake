file(REMOVE_RECURSE
  "CMakeFiles/core_heterogeneous_test.dir/core_heterogeneous_test.cpp.o"
  "CMakeFiles/core_heterogeneous_test.dir/core_heterogeneous_test.cpp.o.d"
  "core_heterogeneous_test"
  "core_heterogeneous_test.pdb"
  "core_heterogeneous_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_heterogeneous_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
