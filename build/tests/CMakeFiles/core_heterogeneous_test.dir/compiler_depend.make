# Empty compiler generated dependencies file for core_heterogeneous_test.
# This may be replaced when dependencies are built.
