file(REMOVE_RECURSE
  "CMakeFiles/workload_splitter_test.dir/workload_splitter_test.cpp.o"
  "CMakeFiles/workload_splitter_test.dir/workload_splitter_test.cpp.o.d"
  "workload_splitter_test"
  "workload_splitter_test.pdb"
  "workload_splitter_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workload_splitter_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
