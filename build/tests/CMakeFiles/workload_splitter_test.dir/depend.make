# Empty dependencies file for workload_splitter_test.
# This may be replaced when dependencies are built.
