# Empty compiler generated dependencies file for core_backfill_test.
# This may be replaced when dependencies are built.
