file(REMOVE_RECURSE
  "CMakeFiles/core_backfill_test.dir/core_backfill_test.cpp.o"
  "CMakeFiles/core_backfill_test.dir/core_backfill_test.cpp.o.d"
  "core_backfill_test"
  "core_backfill_test.pdb"
  "core_backfill_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_backfill_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
