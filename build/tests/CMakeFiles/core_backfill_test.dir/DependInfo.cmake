
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core_backfill_test.cpp" "tests/CMakeFiles/core_backfill_test.dir/core_backfill_test.cpp.o" "gcc" "tests/CMakeFiles/core_backfill_test.dir/core_backfill_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/exp/CMakeFiles/mcsim_exp.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/mcsim_core.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/mcsim_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/mcsim_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/mcsim_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mcsim_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/mcsim_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mcsim_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
