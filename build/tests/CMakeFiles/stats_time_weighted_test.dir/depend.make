# Empty dependencies file for stats_time_weighted_test.
# This may be replaced when dependencies are built.
