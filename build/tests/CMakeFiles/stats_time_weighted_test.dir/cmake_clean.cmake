file(REMOVE_RECURSE
  "CMakeFiles/stats_time_weighted_test.dir/stats_time_weighted_test.cpp.o"
  "CMakeFiles/stats_time_weighted_test.dir/stats_time_weighted_test.cpp.o.d"
  "stats_time_weighted_test"
  "stats_time_weighted_test.pdb"
  "stats_time_weighted_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stats_time_weighted_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
