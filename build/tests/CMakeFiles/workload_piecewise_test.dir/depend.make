# Empty dependencies file for workload_piecewise_test.
# This may be replaced when dependencies are built.
