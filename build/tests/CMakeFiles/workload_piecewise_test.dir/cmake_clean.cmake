file(REMOVE_RECURSE
  "CMakeFiles/workload_piecewise_test.dir/workload_piecewise_test.cpp.o"
  "CMakeFiles/workload_piecewise_test.dir/workload_piecewise_test.cpp.o.d"
  "workload_piecewise_test"
  "workload_piecewise_test.pdb"
  "workload_piecewise_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workload_piecewise_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
