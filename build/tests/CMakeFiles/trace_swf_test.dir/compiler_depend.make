# Empty compiler generated dependencies file for trace_swf_test.
# This may be replaced when dependencies are built.
