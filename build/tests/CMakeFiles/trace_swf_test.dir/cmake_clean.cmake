file(REMOVE_RECURSE
  "CMakeFiles/trace_swf_test.dir/trace_swf_test.cpp.o"
  "CMakeFiles/trace_swf_test.dir/trace_swf_test.cpp.o.d"
  "trace_swf_test"
  "trace_swf_test.pdb"
  "trace_swf_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_swf_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
