# Empty dependencies file for workload_das_test.
# This may be replaced when dependencies are built.
