file(REMOVE_RECURSE
  "CMakeFiles/workload_das_test.dir/workload_das_test.cpp.o"
  "CMakeFiles/workload_das_test.dir/workload_das_test.cpp.o.d"
  "workload_das_test"
  "workload_das_test.pdb"
  "workload_das_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workload_das_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
