file(REMOVE_RECURSE
  "CMakeFiles/core_engine_theory_test.dir/core_engine_theory_test.cpp.o"
  "CMakeFiles/core_engine_theory_test.dir/core_engine_theory_test.cpp.o.d"
  "core_engine_theory_test"
  "core_engine_theory_test.pdb"
  "core_engine_theory_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_engine_theory_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
