file(REMOVE_RECURSE
  "CMakeFiles/workload_request_test.dir/workload_request_test.cpp.o"
  "CMakeFiles/workload_request_test.dir/workload_request_test.cpp.o.d"
  "workload_request_test"
  "workload_request_test.pdb"
  "workload_request_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workload_request_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
