# Empty dependencies file for workload_request_test.
# This may be replaced when dependencies are built.
