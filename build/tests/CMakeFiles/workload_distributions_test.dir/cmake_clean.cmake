file(REMOVE_RECURSE
  "CMakeFiles/workload_distributions_test.dir/workload_distributions_test.cpp.o"
  "CMakeFiles/workload_distributions_test.dir/workload_distributions_test.cpp.o.d"
  "workload_distributions_test"
  "workload_distributions_test.pdb"
  "workload_distributions_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workload_distributions_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
