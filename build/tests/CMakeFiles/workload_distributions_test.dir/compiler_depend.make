# Empty compiler generated dependencies file for workload_distributions_test.
# This may be replaced when dependencies are built.
