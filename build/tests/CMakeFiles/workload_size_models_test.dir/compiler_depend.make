# Empty compiler generated dependencies file for workload_size_models_test.
# This may be replaced when dependencies are built.
