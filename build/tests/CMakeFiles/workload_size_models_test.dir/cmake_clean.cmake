file(REMOVE_RECURSE
  "CMakeFiles/workload_size_models_test.dir/workload_size_models_test.cpp.o"
  "CMakeFiles/workload_size_models_test.dir/workload_size_models_test.cpp.o.d"
  "workload_size_models_test"
  "workload_size_models_test.pdb"
  "workload_size_models_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workload_size_models_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
