file(REMOVE_RECURSE
  "CMakeFiles/integration_paper_test.dir/integration_paper_test.cpp.o"
  "CMakeFiles/integration_paper_test.dir/integration_paper_test.cpp.o.d"
  "integration_paper_test"
  "integration_paper_test.pdb"
  "integration_paper_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_paper_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
