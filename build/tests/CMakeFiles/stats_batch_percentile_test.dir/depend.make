# Empty dependencies file for stats_batch_percentile_test.
# This may be replaced when dependencies are built.
