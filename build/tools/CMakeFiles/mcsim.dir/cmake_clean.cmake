file(REMOVE_RECURSE
  "CMakeFiles/mcsim.dir/mcsim_cli.cpp.o"
  "CMakeFiles/mcsim.dir/mcsim_cli.cpp.o.d"
  "mcsim"
  "mcsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
