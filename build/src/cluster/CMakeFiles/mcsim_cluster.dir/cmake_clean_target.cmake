file(REMOVE_RECURSE
  "libmcsim_cluster.a"
)
