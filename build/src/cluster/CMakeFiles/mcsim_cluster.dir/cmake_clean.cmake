file(REMOVE_RECURSE
  "CMakeFiles/mcsim_cluster.dir/cluster.cpp.o"
  "CMakeFiles/mcsim_cluster.dir/cluster.cpp.o.d"
  "CMakeFiles/mcsim_cluster.dir/multicluster.cpp.o"
  "CMakeFiles/mcsim_cluster.dir/multicluster.cpp.o.d"
  "CMakeFiles/mcsim_cluster.dir/placement.cpp.o"
  "CMakeFiles/mcsim_cluster.dir/placement.cpp.o.d"
  "libmcsim_cluster.a"
  "libmcsim_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcsim_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
