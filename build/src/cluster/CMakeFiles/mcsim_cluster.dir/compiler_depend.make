# Empty compiler generated dependencies file for mcsim_cluster.
# This may be replaced when dependencies are built.
