file(REMOVE_RECURSE
  "CMakeFiles/mcsim_exp.dir/gnuplot.cpp.o"
  "CMakeFiles/mcsim_exp.dir/gnuplot.cpp.o.d"
  "CMakeFiles/mcsim_exp.dir/replications.cpp.o"
  "CMakeFiles/mcsim_exp.dir/replications.cpp.o.d"
  "CMakeFiles/mcsim_exp.dir/report.cpp.o"
  "CMakeFiles/mcsim_exp.dir/report.cpp.o.d"
  "CMakeFiles/mcsim_exp.dir/scenario.cpp.o"
  "CMakeFiles/mcsim_exp.dir/scenario.cpp.o.d"
  "CMakeFiles/mcsim_exp.dir/sweep.cpp.o"
  "CMakeFiles/mcsim_exp.dir/sweep.cpp.o.d"
  "libmcsim_exp.a"
  "libmcsim_exp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcsim_exp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
