
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/exp/gnuplot.cpp" "src/exp/CMakeFiles/mcsim_exp.dir/gnuplot.cpp.o" "gcc" "src/exp/CMakeFiles/mcsim_exp.dir/gnuplot.cpp.o.d"
  "/root/repo/src/exp/replications.cpp" "src/exp/CMakeFiles/mcsim_exp.dir/replications.cpp.o" "gcc" "src/exp/CMakeFiles/mcsim_exp.dir/replications.cpp.o.d"
  "/root/repo/src/exp/report.cpp" "src/exp/CMakeFiles/mcsim_exp.dir/report.cpp.o" "gcc" "src/exp/CMakeFiles/mcsim_exp.dir/report.cpp.o.d"
  "/root/repo/src/exp/scenario.cpp" "src/exp/CMakeFiles/mcsim_exp.dir/scenario.cpp.o" "gcc" "src/exp/CMakeFiles/mcsim_exp.dir/scenario.cpp.o.d"
  "/root/repo/src/exp/sweep.cpp" "src/exp/CMakeFiles/mcsim_exp.dir/sweep.cpp.o" "gcc" "src/exp/CMakeFiles/mcsim_exp.dir/sweep.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/mcsim_core.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/mcsim_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mcsim_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/mcsim_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/mcsim_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/mcsim_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mcsim_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
