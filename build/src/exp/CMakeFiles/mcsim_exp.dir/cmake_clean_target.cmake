file(REMOVE_RECURSE
  "libmcsim_exp.a"
)
