# Empty dependencies file for mcsim_exp.
# This may be replaced when dependencies are built.
