file(REMOVE_RECURSE
  "libmcsim_workload.a"
)
