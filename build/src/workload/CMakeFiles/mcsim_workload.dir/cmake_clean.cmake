file(REMOVE_RECURSE
  "CMakeFiles/mcsim_workload.dir/arrival.cpp.o"
  "CMakeFiles/mcsim_workload.dir/arrival.cpp.o.d"
  "CMakeFiles/mcsim_workload.dir/das_workload.cpp.o"
  "CMakeFiles/mcsim_workload.dir/das_workload.cpp.o.d"
  "CMakeFiles/mcsim_workload.dir/discrete.cpp.o"
  "CMakeFiles/mcsim_workload.dir/discrete.cpp.o.d"
  "CMakeFiles/mcsim_workload.dir/distributions.cpp.o"
  "CMakeFiles/mcsim_workload.dir/distributions.cpp.o.d"
  "CMakeFiles/mcsim_workload.dir/job_splitter.cpp.o"
  "CMakeFiles/mcsim_workload.dir/job_splitter.cpp.o.d"
  "CMakeFiles/mcsim_workload.dir/request.cpp.o"
  "CMakeFiles/mcsim_workload.dir/request.cpp.o.d"
  "CMakeFiles/mcsim_workload.dir/size_models.cpp.o"
  "CMakeFiles/mcsim_workload.dir/size_models.cpp.o.d"
  "CMakeFiles/mcsim_workload.dir/user_model.cpp.o"
  "CMakeFiles/mcsim_workload.dir/user_model.cpp.o.d"
  "CMakeFiles/mcsim_workload.dir/workload.cpp.o"
  "CMakeFiles/mcsim_workload.dir/workload.cpp.o.d"
  "libmcsim_workload.a"
  "libmcsim_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcsim_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
