
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/arrival.cpp" "src/workload/CMakeFiles/mcsim_workload.dir/arrival.cpp.o" "gcc" "src/workload/CMakeFiles/mcsim_workload.dir/arrival.cpp.o.d"
  "/root/repo/src/workload/das_workload.cpp" "src/workload/CMakeFiles/mcsim_workload.dir/das_workload.cpp.o" "gcc" "src/workload/CMakeFiles/mcsim_workload.dir/das_workload.cpp.o.d"
  "/root/repo/src/workload/discrete.cpp" "src/workload/CMakeFiles/mcsim_workload.dir/discrete.cpp.o" "gcc" "src/workload/CMakeFiles/mcsim_workload.dir/discrete.cpp.o.d"
  "/root/repo/src/workload/distributions.cpp" "src/workload/CMakeFiles/mcsim_workload.dir/distributions.cpp.o" "gcc" "src/workload/CMakeFiles/mcsim_workload.dir/distributions.cpp.o.d"
  "/root/repo/src/workload/job_splitter.cpp" "src/workload/CMakeFiles/mcsim_workload.dir/job_splitter.cpp.o" "gcc" "src/workload/CMakeFiles/mcsim_workload.dir/job_splitter.cpp.o.d"
  "/root/repo/src/workload/request.cpp" "src/workload/CMakeFiles/mcsim_workload.dir/request.cpp.o" "gcc" "src/workload/CMakeFiles/mcsim_workload.dir/request.cpp.o.d"
  "/root/repo/src/workload/size_models.cpp" "src/workload/CMakeFiles/mcsim_workload.dir/size_models.cpp.o" "gcc" "src/workload/CMakeFiles/mcsim_workload.dir/size_models.cpp.o.d"
  "/root/repo/src/workload/user_model.cpp" "src/workload/CMakeFiles/mcsim_workload.dir/user_model.cpp.o" "gcc" "src/workload/CMakeFiles/mcsim_workload.dir/user_model.cpp.o.d"
  "/root/repo/src/workload/workload.cpp" "src/workload/CMakeFiles/mcsim_workload.dir/workload.cpp.o" "gcc" "src/workload/CMakeFiles/mcsim_workload.dir/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/mcsim_util.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/mcsim_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
