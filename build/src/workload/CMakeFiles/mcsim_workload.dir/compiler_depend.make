# Empty compiler generated dependencies file for mcsim_workload.
# This may be replaced when dependencies are built.
