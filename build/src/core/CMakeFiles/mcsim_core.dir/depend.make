# Empty dependencies file for mcsim_core.
# This may be replaced when dependencies are built.
