
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/engine.cpp" "src/core/CMakeFiles/mcsim_core.dir/engine.cpp.o" "gcc" "src/core/CMakeFiles/mcsim_core.dir/engine.cpp.o.d"
  "/root/repo/src/core/policy_gs.cpp" "src/core/CMakeFiles/mcsim_core.dir/policy_gs.cpp.o" "gcc" "src/core/CMakeFiles/mcsim_core.dir/policy_gs.cpp.o.d"
  "/root/repo/src/core/policy_lp.cpp" "src/core/CMakeFiles/mcsim_core.dir/policy_lp.cpp.o" "gcc" "src/core/CMakeFiles/mcsim_core.dir/policy_lp.cpp.o.d"
  "/root/repo/src/core/policy_ls.cpp" "src/core/CMakeFiles/mcsim_core.dir/policy_ls.cpp.o" "gcc" "src/core/CMakeFiles/mcsim_core.dir/policy_ls.cpp.o.d"
  "/root/repo/src/core/queue.cpp" "src/core/CMakeFiles/mcsim_core.dir/queue.cpp.o" "gcc" "src/core/CMakeFiles/mcsim_core.dir/queue.cpp.o.d"
  "/root/repo/src/core/saturation.cpp" "src/core/CMakeFiles/mcsim_core.dir/saturation.cpp.o" "gcc" "src/core/CMakeFiles/mcsim_core.dir/saturation.cpp.o.d"
  "/root/repo/src/core/scheduler.cpp" "src/core/CMakeFiles/mcsim_core.dir/scheduler.cpp.o" "gcc" "src/core/CMakeFiles/mcsim_core.dir/scheduler.cpp.o.d"
  "/root/repo/src/core/scheduler_factory.cpp" "src/core/CMakeFiles/mcsim_core.dir/scheduler_factory.cpp.o" "gcc" "src/core/CMakeFiles/mcsim_core.dir/scheduler_factory.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/mcsim_util.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/mcsim_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mcsim_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/mcsim_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/mcsim_cluster.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
