file(REMOVE_RECURSE
  "CMakeFiles/mcsim_core.dir/engine.cpp.o"
  "CMakeFiles/mcsim_core.dir/engine.cpp.o.d"
  "CMakeFiles/mcsim_core.dir/policy_gs.cpp.o"
  "CMakeFiles/mcsim_core.dir/policy_gs.cpp.o.d"
  "CMakeFiles/mcsim_core.dir/policy_lp.cpp.o"
  "CMakeFiles/mcsim_core.dir/policy_lp.cpp.o.d"
  "CMakeFiles/mcsim_core.dir/policy_ls.cpp.o"
  "CMakeFiles/mcsim_core.dir/policy_ls.cpp.o.d"
  "CMakeFiles/mcsim_core.dir/queue.cpp.o"
  "CMakeFiles/mcsim_core.dir/queue.cpp.o.d"
  "CMakeFiles/mcsim_core.dir/saturation.cpp.o"
  "CMakeFiles/mcsim_core.dir/saturation.cpp.o.d"
  "CMakeFiles/mcsim_core.dir/scheduler.cpp.o"
  "CMakeFiles/mcsim_core.dir/scheduler.cpp.o.d"
  "CMakeFiles/mcsim_core.dir/scheduler_factory.cpp.o"
  "CMakeFiles/mcsim_core.dir/scheduler_factory.cpp.o.d"
  "libmcsim_core.a"
  "libmcsim_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcsim_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
