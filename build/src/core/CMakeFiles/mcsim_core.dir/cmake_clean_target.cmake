file(REMOVE_RECURSE
  "libmcsim_core.a"
)
