# Empty compiler generated dependencies file for mcsim_util.
# This may be replaced when dependencies are built.
