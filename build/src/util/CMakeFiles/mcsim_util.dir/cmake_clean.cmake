file(REMOVE_RECURSE
  "CMakeFiles/mcsim_util.dir/cli.cpp.o"
  "CMakeFiles/mcsim_util.dir/cli.cpp.o.d"
  "CMakeFiles/mcsim_util.dir/csv.cpp.o"
  "CMakeFiles/mcsim_util.dir/csv.cpp.o.d"
  "CMakeFiles/mcsim_util.dir/logging.cpp.o"
  "CMakeFiles/mcsim_util.dir/logging.cpp.o.d"
  "CMakeFiles/mcsim_util.dir/rng.cpp.o"
  "CMakeFiles/mcsim_util.dir/rng.cpp.o.d"
  "CMakeFiles/mcsim_util.dir/strings.cpp.o"
  "CMakeFiles/mcsim_util.dir/strings.cpp.o.d"
  "CMakeFiles/mcsim_util.dir/table.cpp.o"
  "CMakeFiles/mcsim_util.dir/table.cpp.o.d"
  "libmcsim_util.a"
  "libmcsim_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcsim_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
