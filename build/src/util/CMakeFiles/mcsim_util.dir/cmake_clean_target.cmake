file(REMOVE_RECURSE
  "libmcsim_util.a"
)
