file(REMOVE_RECURSE
  "CMakeFiles/mcsim_sim.dir/calendar.cpp.o"
  "CMakeFiles/mcsim_sim.dir/calendar.cpp.o.d"
  "CMakeFiles/mcsim_sim.dir/process.cpp.o"
  "CMakeFiles/mcsim_sim.dir/process.cpp.o.d"
  "CMakeFiles/mcsim_sim.dir/simulator.cpp.o"
  "CMakeFiles/mcsim_sim.dir/simulator.cpp.o.d"
  "libmcsim_sim.a"
  "libmcsim_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcsim_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
