# Empty compiler generated dependencies file for mcsim_sim.
# This may be replaced when dependencies are built.
