file(REMOVE_RECURSE
  "CMakeFiles/mcsim_trace.dir/empirical.cpp.o"
  "CMakeFiles/mcsim_trace.dir/empirical.cpp.o.d"
  "CMakeFiles/mcsim_trace.dir/swf.cpp.o"
  "CMakeFiles/mcsim_trace.dir/swf.cpp.o.d"
  "CMakeFiles/mcsim_trace.dir/synthetic_log.cpp.o"
  "CMakeFiles/mcsim_trace.dir/synthetic_log.cpp.o.d"
  "CMakeFiles/mcsim_trace.dir/timeline.cpp.o"
  "CMakeFiles/mcsim_trace.dir/timeline.cpp.o.d"
  "CMakeFiles/mcsim_trace.dir/trace_stats.cpp.o"
  "CMakeFiles/mcsim_trace.dir/trace_stats.cpp.o.d"
  "libmcsim_trace.a"
  "libmcsim_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcsim_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
