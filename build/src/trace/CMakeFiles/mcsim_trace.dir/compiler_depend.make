# Empty compiler generated dependencies file for mcsim_trace.
# This may be replaced when dependencies are built.
