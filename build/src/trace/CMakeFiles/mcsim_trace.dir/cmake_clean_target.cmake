file(REMOVE_RECURSE
  "libmcsim_trace.a"
)
