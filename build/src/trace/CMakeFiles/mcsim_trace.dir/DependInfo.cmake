
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/empirical.cpp" "src/trace/CMakeFiles/mcsim_trace.dir/empirical.cpp.o" "gcc" "src/trace/CMakeFiles/mcsim_trace.dir/empirical.cpp.o.d"
  "/root/repo/src/trace/swf.cpp" "src/trace/CMakeFiles/mcsim_trace.dir/swf.cpp.o" "gcc" "src/trace/CMakeFiles/mcsim_trace.dir/swf.cpp.o.d"
  "/root/repo/src/trace/synthetic_log.cpp" "src/trace/CMakeFiles/mcsim_trace.dir/synthetic_log.cpp.o" "gcc" "src/trace/CMakeFiles/mcsim_trace.dir/synthetic_log.cpp.o.d"
  "/root/repo/src/trace/timeline.cpp" "src/trace/CMakeFiles/mcsim_trace.dir/timeline.cpp.o" "gcc" "src/trace/CMakeFiles/mcsim_trace.dir/timeline.cpp.o.d"
  "/root/repo/src/trace/trace_stats.cpp" "src/trace/CMakeFiles/mcsim_trace.dir/trace_stats.cpp.o" "gcc" "src/trace/CMakeFiles/mcsim_trace.dir/trace_stats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/mcsim_util.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/mcsim_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/mcsim_workload.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
