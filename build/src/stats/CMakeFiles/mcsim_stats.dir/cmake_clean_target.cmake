file(REMOVE_RECURSE
  "libmcsim_stats.a"
)
