file(REMOVE_RECURSE
  "CMakeFiles/mcsim_stats.dir/autocorrelation.cpp.o"
  "CMakeFiles/mcsim_stats.dir/autocorrelation.cpp.o.d"
  "CMakeFiles/mcsim_stats.dir/batch_means.cpp.o"
  "CMakeFiles/mcsim_stats.dir/batch_means.cpp.o.d"
  "CMakeFiles/mcsim_stats.dir/confidence.cpp.o"
  "CMakeFiles/mcsim_stats.dir/confidence.cpp.o.d"
  "CMakeFiles/mcsim_stats.dir/histogram.cpp.o"
  "CMakeFiles/mcsim_stats.dir/histogram.cpp.o.d"
  "CMakeFiles/mcsim_stats.dir/percentile.cpp.o"
  "CMakeFiles/mcsim_stats.dir/percentile.cpp.o.d"
  "CMakeFiles/mcsim_stats.dir/queueing.cpp.o"
  "CMakeFiles/mcsim_stats.dir/queueing.cpp.o.d"
  "CMakeFiles/mcsim_stats.dir/time_weighted.cpp.o"
  "CMakeFiles/mcsim_stats.dir/time_weighted.cpp.o.d"
  "CMakeFiles/mcsim_stats.dir/utilization.cpp.o"
  "CMakeFiles/mcsim_stats.dir/utilization.cpp.o.d"
  "CMakeFiles/mcsim_stats.dir/warmup.cpp.o"
  "CMakeFiles/mcsim_stats.dir/warmup.cpp.o.d"
  "CMakeFiles/mcsim_stats.dir/welford.cpp.o"
  "CMakeFiles/mcsim_stats.dir/welford.cpp.o.d"
  "libmcsim_stats.a"
  "libmcsim_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcsim_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
