# Empty compiler generated dependencies file for mcsim_stats.
# This may be replaced when dependencies are built.
