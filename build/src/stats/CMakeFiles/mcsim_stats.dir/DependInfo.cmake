
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/autocorrelation.cpp" "src/stats/CMakeFiles/mcsim_stats.dir/autocorrelation.cpp.o" "gcc" "src/stats/CMakeFiles/mcsim_stats.dir/autocorrelation.cpp.o.d"
  "/root/repo/src/stats/batch_means.cpp" "src/stats/CMakeFiles/mcsim_stats.dir/batch_means.cpp.o" "gcc" "src/stats/CMakeFiles/mcsim_stats.dir/batch_means.cpp.o.d"
  "/root/repo/src/stats/confidence.cpp" "src/stats/CMakeFiles/mcsim_stats.dir/confidence.cpp.o" "gcc" "src/stats/CMakeFiles/mcsim_stats.dir/confidence.cpp.o.d"
  "/root/repo/src/stats/histogram.cpp" "src/stats/CMakeFiles/mcsim_stats.dir/histogram.cpp.o" "gcc" "src/stats/CMakeFiles/mcsim_stats.dir/histogram.cpp.o.d"
  "/root/repo/src/stats/percentile.cpp" "src/stats/CMakeFiles/mcsim_stats.dir/percentile.cpp.o" "gcc" "src/stats/CMakeFiles/mcsim_stats.dir/percentile.cpp.o.d"
  "/root/repo/src/stats/queueing.cpp" "src/stats/CMakeFiles/mcsim_stats.dir/queueing.cpp.o" "gcc" "src/stats/CMakeFiles/mcsim_stats.dir/queueing.cpp.o.d"
  "/root/repo/src/stats/time_weighted.cpp" "src/stats/CMakeFiles/mcsim_stats.dir/time_weighted.cpp.o" "gcc" "src/stats/CMakeFiles/mcsim_stats.dir/time_weighted.cpp.o.d"
  "/root/repo/src/stats/utilization.cpp" "src/stats/CMakeFiles/mcsim_stats.dir/utilization.cpp.o" "gcc" "src/stats/CMakeFiles/mcsim_stats.dir/utilization.cpp.o.d"
  "/root/repo/src/stats/warmup.cpp" "src/stats/CMakeFiles/mcsim_stats.dir/warmup.cpp.o" "gcc" "src/stats/CMakeFiles/mcsim_stats.dir/warmup.cpp.o.d"
  "/root/repo/src/stats/welford.cpp" "src/stats/CMakeFiles/mcsim_stats.dir/welford.cpp.o" "gcc" "src/stats/CMakeFiles/mcsim_stats.dir/welford.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/mcsim_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
