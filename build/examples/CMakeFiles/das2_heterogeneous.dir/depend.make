# Empty dependencies file for das2_heterogeneous.
# This may be replaced when dependencies are built.
