file(REMOVE_RECURSE
  "CMakeFiles/das2_heterogeneous.dir/das2_heterogeneous.cpp.o"
  "CMakeFiles/das2_heterogeneous.dir/das2_heterogeneous.cpp.o.d"
  "das2_heterogeneous"
  "das2_heterogeneous.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/das2_heterogeneous.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
