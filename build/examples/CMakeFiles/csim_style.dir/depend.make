# Empty dependencies file for csim_style.
# This may be replaced when dependencies are built.
