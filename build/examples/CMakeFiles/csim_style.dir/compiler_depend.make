# Empty compiler generated dependencies file for csim_style.
# This may be replaced when dependencies are built.
