file(REMOVE_RECURSE
  "CMakeFiles/csim_style.dir/csim_style.cpp.o"
  "CMakeFiles/csim_style.dir/csim_style.cpp.o.d"
  "csim_style"
  "csim_style.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csim_style.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
