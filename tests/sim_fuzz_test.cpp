// Randomised differential test: the calendar + simulator against a trivial
// reference model (std::multimap ordered by (time, sequence)). Thousands of
// random schedule/cancel/pop operations must produce identical event
// orderings.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "sim/calendar.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace mcsim {
namespace {

TEST(CalendarFuzz, MatchesReferenceModel) {
  Rng rng(0xFADEDCAFE);
  for (int round = 0; round < 20; ++round) {
    Calendar calendar;
    // Reference: key = (time, seq); value = id. Erased lazily like cancel.
    std::multimap<std::pair<double, std::uint64_t>, EventId> reference;
    std::map<EventId, std::multimap<std::pair<double, std::uint64_t>, EventId>::iterator>
        by_id;
    std::uint64_t seq = 0;
    std::vector<EventId> live;

    for (int op = 0; op < 3000; ++op) {
      const double dice = rng.uniform();
      if (dice < 0.55 || calendar.empty()) {
        const double time = rng.uniform(0.0, 1000.0);
        const EventId id = calendar.push(time);
        auto it = reference.emplace(std::make_pair(time, seq++), id);
        by_id[id] = it;
        live.push_back(id);
      } else if (dice < 0.75 && !live.empty()) {
        // Cancel a random live event.
        const auto pick = rng.uniform_int(live.size());
        const EventId id = live[pick];
        live.erase(live.begin() + static_cast<long>(pick));
        EXPECT_TRUE(calendar.cancel(id));
        reference.erase(by_id.at(id));
        by_id.erase(id);
      } else {
        // Pop and compare.
        ASSERT_FALSE(reference.empty());
        const auto entry = calendar.pop();
        const auto expected = reference.begin();
        EXPECT_EQ(entry.id, expected->second);
        EXPECT_DOUBLE_EQ(entry.time, expected->first.first);
        by_id.erase(expected->second);
        std::erase(live, expected->second);
        reference.erase(expected);
      }
      ASSERT_EQ(calendar.size(), reference.size());
    }

    // Drain both; order must agree to the end.
    while (!calendar.empty()) {
      const auto entry = calendar.pop();
      const auto expected = reference.begin();
      EXPECT_EQ(entry.id, expected->second);
      reference.erase(expected);
    }
    EXPECT_TRUE(reference.empty());
  }
}

TEST(SimulatorFuzz, RandomSelfSchedulingHandlersStayConsistent) {
  // Handlers randomly schedule more events and cancel others; the run must
  // execute every non-cancelled event exactly once, in time order.
  Simulator sim;
  Rng rng(77);
  std::vector<double> fire_times;
  std::vector<EventId> cancellable;
  int budget = 4000;

  std::function<void()> chaotic = [&] {
    fire_times.push_back(sim.now());
    if (budget <= 0) return;
    const int spawns = 1 + static_cast<int>(rng.uniform_int(2));  // supercritical
    for (int i = 0; i < spawns && budget > 0; ++i) {
      --budget;
      const EventId id = sim.schedule_in(rng.uniform(0.0, 10.0), chaotic);
      if (rng.uniform() < 0.3) cancellable.push_back(id);
    }
    if (!cancellable.empty() && rng.uniform() < 0.25) {
      const auto pick = rng.uniform_int(cancellable.size());
      sim.cancel(cancellable[pick]);  // may already have fired: both fine
      cancellable.erase(cancellable.begin() + static_cast<long>(pick));
    }
  };
  for (int i = 0; i < 10; ++i) {
    --budget;
    sim.schedule_in(rng.uniform(0.0, 10.0), chaotic);
  }
  sim.run();

  // Time-ordered execution.
  for (std::size_t i = 1; i < fire_times.size(); ++i) {
    EXPECT_GE(fire_times[i], fire_times[i - 1]);
  }
  EXPECT_EQ(sim.pending_events(), 0u);
  EXPECT_GT(fire_times.size(), 100u);
}

}  // namespace
}  // namespace mcsim
