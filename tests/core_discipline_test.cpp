#include <gtest/gtest.h>

#include "policy/composed_scheduler.hpp"
#include "policy/scheduler_factory.hpp"
#include "exp/scenario.hpp"
#include "test_support.hpp"

namespace mcsim {
namespace {

using testing::FakeContext;
using testing::make_policy;
using testing::make_job;

TEST(QueueDiscipline, Names) {
  EXPECT_STREQ(queue_discipline_name(QueueDiscipline::kFcfs), "fcfs");
  EXPECT_STREQ(queue_discipline_name(QueueDiscipline::kShortestJobFirst), "sjf");
  EXPECT_STREQ(queue_discipline_name(QueueDiscipline::kLongestJobFirst), "ljf");
  EXPECT_STREQ(queue_discipline_name(QueueDiscipline::kSmallestFirst), "smallest-first");
  EXPECT_STREQ(queue_discipline_name(QueueDiscipline::kLargestFirst), "largest-first");
}

TEST(QueueDiscipline, FcfsOrderIsNull) {
  EXPECT_EQ(make_job_order(QueueDiscipline::kFcfs), nullptr);
}

TEST(JobQueueOrder, SortedInsertIsStable) {
  JobQueue queue;
  queue.set_order(make_job_order(QueueDiscipline::kSmallestFirst));
  queue.push(make_job(1, {8}));
  queue.push(make_job(2, {4}));
  queue.push(make_job(3, {4}));  // equal size: after job 2 (stable)
  queue.push(make_job(4, {16}));
  EXPECT_EQ(queue.pop()->spec.id, 2u);
  EXPECT_EQ(queue.pop()->spec.id, 3u);
  EXPECT_EQ(queue.pop()->spec.id, 1u);
  EXPECT_EQ(queue.pop()->spec.id, 4u);
}

// The tie rule every discipline must obey: jobs whose sort keys compare
// equal start in FCFS arrival order. The sorted insert walks past equal
// elements, so equal keys never reorder — pinned here for all five
// disciplines with jobs that are identical in both size and service time.
TEST(JobQueueOrder, EqualKeysPreserveArrivalOrderUnderEveryDiscipline) {
  for (const auto discipline :
       {QueueDiscipline::kFcfs, QueueDiscipline::kShortestJobFirst,
        QueueDiscipline::kLongestJobFirst, QueueDiscipline::kSmallestFirst,
        QueueDiscipline::kLargestFirst}) {
    SCOPED_TRACE(queue_discipline_name(discipline));
    JobQueue queue;
    queue.set_order(make_job_order(discipline));
    for (std::uint64_t id = 1; id <= 6; ++id) {
      queue.push(make_job(id, {8}, 0, 300.0));  // all sort keys equal
    }
    for (std::uint64_t id = 1; id <= 6; ++id) {
      EXPECT_EQ(queue.pop()->spec.id, id);
    }
  }
}

// Same property end to end through a policy: a blocked queue of
// equal-key jobs drains in submission order once capacity frees up.
TEST(JobQueueOrder, PolicyStartsEqualKeyJobsInSubmissionOrder) {
  for (const auto discipline :
       {QueueDiscipline::kFcfs, QueueDiscipline::kShortestJobFirst,
        QueueDiscipline::kLongestJobFirst, QueueDiscipline::kSmallestFirst,
        QueueDiscipline::kLargestFirst}) {
    SCOPED_TRACE(queue_discipline_name(discipline));
    FakeContext ctx({128});
    auto policy_owner = make_policy(PolicyKind::kSC, ctx, PlacementRule::kWorstFit,
                                    BackfillMode::kNone, discipline);
    ComposedScheduler& policy = *policy_owner;
    policy.submit(make_job(1, {128}, 0, 100.0));  // occupies everything
    for (std::uint64_t id = 2; id <= 5; ++id) {
      policy.submit(make_job(id, {16}, 0, 200.0));
    }
    ctx.finish(ctx.started[0], policy);
    ASSERT_EQ(ctx.started.size(), 5u);
    for (std::uint64_t id = 2; id <= 5; ++id) {
      EXPECT_EQ(ctx.started[id - 1]->spec.id, id);
    }
  }
}

TEST(JobQueueOrder, SetOrderOnNonEmptyQueueThrows) {
  JobQueue queue;
  queue.push(make_job(1, {4}));
  EXPECT_THROW(queue.set_order(make_job_order(QueueDiscipline::kSmallestFirst)),
               std::invalid_argument);
}

TEST(SmallestFirst, ServesSmallJobsBeforeBigOnes) {
  FakeContext ctx({128});
  auto policy_owner = make_policy(PolicyKind::kSC, ctx, PlacementRule::kWorstFit,
                                  BackfillMode::kNone, QueueDiscipline::kSmallestFirst);
  ComposedScheduler& policy = *policy_owner;
  policy.submit(make_job(1, {128}));  // occupies everything
  policy.submit(make_job(2, {64}));
  policy.submit(make_job(3, {4}));
  policy.submit(make_job(4, {16}));
  ctx.finish(ctx.started[0], policy);
  ASSERT_EQ(ctx.started.size(), 4u);
  EXPECT_EQ(ctx.started[1]->spec.id, 3u);
  EXPECT_EQ(ctx.started[2]->spec.id, 4u);
  EXPECT_EQ(ctx.started[3]->spec.id, 2u);
}

TEST(Sjf, ServesShortJobsFirst) {
  FakeContext ctx({128});
  auto policy_owner = make_policy(PolicyKind::kSC, ctx, PlacementRule::kWorstFit,
                                  BackfillMode::kNone, QueueDiscipline::kShortestJobFirst);
  ComposedScheduler& policy = *policy_owner;
  policy.submit(make_job(1, {128}, 0, 100.0));
  policy.submit(make_job(2, {8}, 0, 500.0));
  policy.submit(make_job(3, {8}, 0, 50.0));
  ctx.finish(ctx.started[0], policy);
  ASSERT_EQ(ctx.started.size(), 3u);
  EXPECT_EQ(ctx.started[1]->spec.id, 3u);
  EXPECT_EQ(ctx.started[2]->spec.id, 2u);
}

TEST(Discipline, FactoryNamesAndGuards) {
  FakeContext single({128});
  EXPECT_EQ(make_scheduler(PolicyKind::kSC, single, PlacementRule::kWorstFit,
                           BackfillMode::kNone, QueueDiscipline::kShortestJobFirst)
                ->name(),
            "SC+sjf");
  // Disciplines compose with every queue structure (the queue stage applies
  // per queue) — LS+sjf is a valid composition, not an error.
  FakeContext multi({32, 32, 32, 32});
  EXPECT_EQ(make_scheduler(PolicyKind::kLS, multi, PlacementRule::kWorstFit,
                           BackfillMode::kNone, QueueDiscipline::kShortestJobFirst)
                ->name(),
            "LS+sjf");
}

TEST(Discipline, SjfReordersWithinLocalQueues) {
  FakeContext ctx({32, 32});
  auto policy_owner = make_policy(PolicyKind::kLS, ctx, PlacementRule::kWorstFit,
                                  BackfillMode::kNone,
                                  QueueDiscipline::kShortestJobFirst);
  ComposedScheduler& policy = *policy_owner;
  policy.submit(make_job(1, {32}, 0, 100.0));  // fills cluster 0
  policy.submit(make_job(2, {8}, 0, 500.0));
  policy.submit(make_job(3, {8}, 0, 50.0));  // shorter: jumps ahead of job 2
  ctx.finish(ctx.started[0], policy);
  ASSERT_EQ(ctx.started.size(), 3u);
  EXPECT_EQ(ctx.started[1]->spec.id, 3u);
  EXPECT_EQ(ctx.started[2]->spec.id, 2u);
}

TEST(Discipline, SjfImprovesMeanResponseUnderLoad) {
  PaperScenario scenario;
  scenario.policy = PolicyKind::kSC;
  auto fcfs = make_paper_config(scenario, 0.6, 20000, 5);
  auto sjf = fcfs;
  sjf.discipline = QueueDiscipline::kShortestJobFirst;
  const auto fcfs_result = run_simulation(fcfs);
  const auto sjf_result = run_simulation(sjf);
  ASSERT_FALSE(sjf_result.unstable);
  if (!fcfs_result.unstable) {
    EXPECT_LT(sjf_result.mean_response(), fcfs_result.mean_response());
  }
}

TEST(Discipline, LargestFirstHurtsMeanResponse) {
  PaperScenario scenario;
  scenario.policy = PolicyKind::kSC;
  auto fcfs = make_paper_config(scenario, 0.5, 15000, 5);
  auto ljf = fcfs;
  ljf.discipline = QueueDiscipline::kLargestFirst;
  const auto fcfs_result = run_simulation(fcfs);
  const auto ljf_result = run_simulation(ljf);
  ASSERT_FALSE(fcfs_result.unstable);
  const double ljf_response = ljf_result.unstable
                                  ? std::numeric_limits<double>::infinity()
                                  : ljf_result.mean_response();
  EXPECT_GT(ljf_response, fcfs_result.mean_response());
}

}  // namespace
}  // namespace mcsim
