// SwfStreamReader: the incremental parser behind read_swf and the
// streaming replay path — header-directive dialect, per-record delivery,
// and the `file:line:` diagnostics contract.
#include "trace/swf_stream.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>

namespace mcsim {
namespace {

std::string record_line(std::uint64_t id, double submit, double run,
                        std::uint32_t procs) {
  std::ostringstream line;
  line << id << ' ' << submit << " 0 " << run << ' ' << procs << " -1 -1 "
       << procs << " -1 -1 1 0 -1 -1 -1 -1 -1 -1\n";
  return line.str();
}

TEST(SwfStream, DeliversRecordsOneAtATime) {
  std::istringstream in("; a log\n" + record_line(1, 0.0, 60.0, 4) +
                        record_line(2, 30.0, 90.0, 8));
  SwfStreamReader reader(in, "<swf>");
  TraceRecord rec;
  ASSERT_TRUE(reader.next(rec));
  EXPECT_EQ(rec.job_id, 1u);
  EXPECT_EQ(reader.records_read(), 1u);
  ASSERT_TRUE(reader.next(rec));
  EXPECT_EQ(rec.job_id, 2u);
  EXPECT_EQ(rec.processors, 8u);
  EXPECT_FALSE(reader.next(rec));
  EXPECT_FALSE(reader.next(rec));  // stays exhausted
  EXPECT_EQ(reader.records_read(), 2u);
}

TEST(SwfStream, ParsesHeaderDirectives) {
  std::istringstream in(
      "; Computer: IBM SP2\n"
      "; MaxJobs: 73496\n"
      ";\tMaxRecords: 73496\n"
      "; maxnodes: 128\n"  // keys are case-insensitive
      "; MaxRuntime: 64800\n"
      "; UnixStartTime: 893683200\n"
      "; Note: MaxNodes counts nodes, not processors\n" +
      record_line(1, 0.0, 60.0, 4));
  SwfStreamReader reader(in, "<swf>");
  TraceRecord rec;
  ASSERT_TRUE(reader.next(rec));
  const SwfHeaderInfo& header = reader.header();
  EXPECT_EQ(header.max_jobs, 73496);
  EXPECT_EQ(header.max_records, 73496);
  EXPECT_EQ(header.max_nodes, 128);
  EXPECT_EQ(header.max_procs, -1);
  EXPECT_EQ(header.max_runtime, 64800);
  EXPECT_EQ(header.unix_start_time, 893683200);
  // Every header line is kept verbatim, directives included.
  EXPECT_EQ(header.comments.size(), 7u);
  EXPECT_EQ(header.comments.front(), "Computer: IBM SP2");
}

TEST(SwfStream, DeclaredProcessorsPrefersMaxProcs) {
  SwfHeaderInfo header;
  EXPECT_EQ(header.declared_processors(), -1);
  header.max_nodes = 72;
  EXPECT_EQ(header.declared_processors(), 72);
  header.max_procs = 144;  // two processors per node
  EXPECT_EQ(header.declared_processors(), 144);
}

TEST(SwfStream, FreeTextColonCommentsAreNotDirectives) {
  // mcsim's own exports carry "Version: <git describe>" and "Command: ..."
  // lines; neither is a numeric archive directive and neither may error.
  std::istringstream in(
      "; Version: v1.2.3-4-gdeadbee-dirty\n"
      "; Command: mcsim point --policy=GS\n"
      "; Conversion: ask the archive maintainer\n" +
      record_line(1, 0.0, 60.0, 4));
  SwfStreamReader reader(in, "<swf>");
  TraceRecord rec;
  ASSERT_TRUE(reader.next(rec));
  EXPECT_EQ(reader.header().comments.size(), 3u);
  EXPECT_EQ(reader.header().declared_processors(), -1);
}

TEST(SwfStream, MalformedDirectiveErrorsWithFileAndLine) {
  std::istringstream in("; ok\n; MaxProcs: lots\n" + record_line(1, 0, 60, 4));
  SwfStreamReader reader(in, "bad.swf");
  TraceRecord rec;
  try {
    reader.next(rec);
    FAIL() << "expected a parse error";
  } catch (const std::invalid_argument& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("bad.swf:2:"), std::string::npos) << what;
    EXPECT_NE(what.find("MaxProcs"), std::string::npos) << what;
    EXPECT_NE(what.find("'lots'"), std::string::npos) << what;
  }
}

TEST(SwfStream, NegativeDirectiveValueErrors) {
  std::istringstream in("; MaxNodes: -5\n" + record_line(1, 0, 60, 4));
  SwfStreamReader reader(in, "neg.swf");
  TraceRecord rec;
  EXPECT_THROW(reader.next(rec), std::invalid_argument);
}

TEST(SwfStream, RecordWiderThanDeclaredMachineErrors) {
  std::istringstream in("; MaxNodes: 64\n" + record_line(1, 0.0, 60.0, 65));
  SwfStreamReader reader(in, "wide.swf");
  TraceRecord rec;
  try {
    reader.next(rec);
    FAIL() << "expected a parse error";
  } catch (const std::invalid_argument& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("wide.swf:2:"), std::string::npos) << what;
    EXPECT_NE(what.find("65 processors"), std::string::npos) << what;
    EXPECT_NE(what.find("MaxNodes: 64"), std::string::npos) << what;
  }
}

TEST(SwfStream, RecordAtDeclaredWidthIsAccepted) {
  std::istringstream in("; MaxProcs: 64\n" + record_line(1, 0.0, 60.0, 64));
  SwfStreamReader reader(in, "<swf>");
  TraceRecord rec;
  ASSERT_TRUE(reader.next(rec));
  EXPECT_EQ(rec.processors, 64u);
}

TEST(SwfStream, TruncatedTrailingFieldsReadAsMissing) {
  // Archive logs drop unused trailing columns; field 5 present suffices.
  std::istringstream in("3 120 5 600 16 -1 -1 16 -1 -1 1 9\n");
  SwfStreamReader reader(in, "<swf>");
  TraceRecord rec;
  ASSERT_TRUE(reader.next(rec));
  EXPECT_EQ(rec.job_id, 3u);
  EXPECT_EQ(rec.processors, 16u);
  EXPECT_EQ(rec.user_id, 9u);
}

TEST(SwfStream, TruncatedRecordWithoutProcessorsErrorsWithLine) {
  std::istringstream in(record_line(1, 0.0, 60.0, 4) + "9999 123.0\n");
  SwfStreamReader reader(in, "trunc.swf");
  TraceRecord rec;
  ASSERT_TRUE(reader.next(rec));
  try {
    reader.next(rec);
    FAIL() << "expected a parse error";
  } catch (const std::invalid_argument& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("trunc.swf:2:"), std::string::npos) << what;
    EXPECT_NE(what.find("no processor count"), std::string::npos) << what;
  }
}

TEST(SwfStream, HeaderOnlyLogYieldsNoRecordsButAHeader) {
  std::istringstream in("; MaxProcs: 430\n; MaxJobs: 0\n");
  SwfStreamReader reader(in, "<swf>");
  TraceRecord rec;
  EXPECT_FALSE(reader.next(rec));
  EXPECT_EQ(reader.records_read(), 0u);
  EXPECT_EQ(reader.header().max_procs, 430);
}

TEST(SwfStream, ScanSummarisesWithoutMaterialising) {
  const std::string path = ::testing::TempDir() + "/mcsim_scan_test.swf";
  {
    std::ofstream out(path);
    out << "; MaxNodes: 128\n";
    out << record_line(1, 0.0, 50.0, 4);     // 200 proc-seconds
    out << record_line(2, 100.0, 25.0, 8);   // 200 proc-seconds
    out << record_line(3, 40.0, 0.0, 16);    // zero run: counted, unusable
  }
  const SwfScan scan = scan_swf_file(path);
  EXPECT_EQ(scan.header.max_nodes, 128);
  EXPECT_EQ(scan.summary.total_records, 3u);
  EXPECT_EQ(scan.summary.usable_records, 2u);
  EXPECT_DOUBLE_EQ(scan.summary.first_submit, 0.0);
  EXPECT_DOUBLE_EQ(scan.summary.last_submit, 100.0);
  EXPECT_DOUBLE_EQ(scan.summary.gross_work, 400.0);
  EXPECT_EQ(scan.summary.max_processors, 8u);
}

TEST(SwfStream, FileStreamRejectsMissingFile) {
  EXPECT_THROW(SwfFileStream("/nonexistent/missing.swf"), std::invalid_argument);
}

}  // namespace
}  // namespace mcsim
