// The parallel engine's bit-exactness contract at the full-simulation
// level (docs/PARALLEL.md): for every policy the paper studies, a complete
// run on the parallel engine — per-cluster logical processes, conservative
// windows, a real worker crew — must reproduce the serial reference
// result *byte for byte*, at every worker count. The comparison is the
// serialized result JSON (every statistic the manifest records, printed
// with max_digits10), so a single ULP of drift anywhere fails loudly.
//
// sim_parallel_test pins the engine mechanics (windows, spill, stale
// cancellation); this suite pins the property the goldens gate end to end:
// scheduling decisions, FP statistic folds and event counts are invariant
// across engines and worker counts.
#include <sstream>
#include <stdexcept>
#include <string>
#include <tuple>

#include <gtest/gtest.h>

#include "core/engine.hpp"
#include "core/saturation.hpp"
#include "exp/manifest.hpp"
#include "exp/scenario_spec.hpp"
#include "obs/json.hpp"
#include "obs/swf_builder.hpp"

namespace mcsim {
namespace {

exp::ScenarioSpec base_spec(PolicyKind policy) {
  exp::ScenarioSpec spec;
  spec.policy = policy;
  spec.mode = exp::RunMode::kPoint;
  spec.utilization = 0.6;
  spec.sim_jobs = 4000;
  spec.seed = 7;
  return spec;
}

struct RunSnapshot {
  std::string result_json;
  std::uint64_t events = 0;
  double end_time = 0.0;
  std::uint64_t trace_records = 0;
  double last_finish = 0.0;
};

/// Run a config with an SWF trace sink attached and capture everything an
/// external consumer could observe from the run.
RunSnapshot snapshot(const SimulationConfig& config) {
  MulticlusterSimulation simulation(config);
  obs::SwfTraceBuilder builder;
  simulation.set_trace_sink(&builder);
  const SimulationResult result = simulation.run();

  RunSnapshot snap;
  std::ostringstream text;
  {
    obs::JsonWriter json(text);
    write_result_json(json, result);
  }
  snap.result_json = text.str();
  snap.events = result.events_executed;
  snap.end_time = result.end_time;
  const SwfTrace trace = builder.trace();
  snap.trace_records = trace.records.size();
  if (!trace.records.empty()) {
    const auto& last = trace.records.back();
    snap.last_finish = last.submit_time + last.wait_time + last.run_time;
  }
  return snap;
}

using ParityParam = std::tuple<PolicyKind, unsigned>;

class EngineParityTest : public ::testing::TestWithParam<ParityParam> {};

TEST_P(EngineParityTest, FullRunMatchesSerialReference) {
  const auto [policy, workers] = GetParam();

  SimulationConfig serial = exp::to_simulation_config(base_spec(policy));
  serial.engine = EngineKind::kSerial;
  const RunSnapshot expected = snapshot(serial);

  SimulationConfig parallel = exp::to_simulation_config(base_spec(policy));
  parallel.engine = EngineKind::kParallel;
  parallel.engine_threads = workers;
  const RunSnapshot got = snapshot(parallel);

  EXPECT_EQ(expected.result_json, got.result_json);
  EXPECT_EQ(expected.events, got.events);
  EXPECT_EQ(expected.end_time, got.end_time);
  EXPECT_EQ(expected.trace_records, got.trace_records);
  EXPECT_EQ(expected.last_finish, got.last_finish);
}

INSTANTIATE_TEST_SUITE_P(
    AllPoliciesAllCrews, EngineParityTest,
    ::testing::Combine(::testing::Values(PolicyKind::kGS, PolicyKind::kLS,
                                         PolicyKind::kLP, PolicyKind::kSC),
                       ::testing::Values(1U, 2U, 4U)),
    [](const ::testing::TestParamInfo<ParityParam>& param) {
      return std::string(policy_name(std::get<0>(param.param))) + "_w" +
             std::to_string(std::get<1>(param.param));
    });

// The constant-backlog estimator has its own Simulator and job pool; the
// same LP assignment rule applies, so it gets its own parity pin.
TEST(EngineParitySaturation, MatchesSerialReference) {
  for (const PolicyKind policy : {PolicyKind::kGS, PolicyKind::kLS}) {
    exp::ScenarioSpec spec = base_spec(policy);
    spec.mode = exp::RunMode::kSaturation;
    spec.saturation_completions = 3000;
    spec.saturation_backlog = 50;

    SaturationConfig serial = exp::to_saturation_config(spec);
    serial.engine = EngineKind::kSerial;
    const SaturationResult expected = run_saturation(serial);

    for (const unsigned workers : {1U, 2U, 4U}) {
      SaturationConfig parallel = exp::to_saturation_config(spec);
      parallel.engine = EngineKind::kParallel;
      parallel.engine_threads = workers;
      const SaturationResult got = run_saturation(parallel);

      EXPECT_EQ(expected.maximal_gross_utilization,
                got.maximal_gross_utilization)
          << policy_name(policy) << " w=" << workers;
      EXPECT_EQ(expected.maximal_net_utilization, got.maximal_net_utilization)
          << policy_name(policy) << " w=" << workers;
      EXPECT_EQ(expected.completions, got.completions);
      EXPECT_EQ(expected.end_time, got.end_time);
    }
  }
}

// Trace replay routes departures through the co-allocation LP rule with
// recorded (not drawn) service times; pin it against the checked-in log.
TEST(EngineParityTrace, ReplayMatchesSerialReference) {
  exp::ScenarioSpec spec = base_spec(PolicyKind::kGS);
  spec.trace_path = std::string(MCSIM_DATA_DIR) + "/das1_synthetic_sample.swf";
  spec.trace_scale = 0.5;

  SimulationConfig serial = exp::to_simulation_config(spec);
  serial.engine = EngineKind::kSerial;
  const RunSnapshot expected = snapshot(serial);

  SimulationConfig parallel = exp::to_simulation_config(spec);
  parallel.engine = EngineKind::kParallel;
  parallel.engine_threads = 2;
  // The trace pre-scan seeds the conservative lookahead from the shortest
  // recorded runtime (the service-time extension bound).
  EXPECT_GT(parallel.trace_workload->min_gross_service, 0.0);
  const RunSnapshot got = snapshot(parallel);

  EXPECT_EQ(expected.result_json, got.result_json);
  EXPECT_EQ(expected.events, got.events);
  EXPECT_EQ(expected.trace_records, got.trace_records);
}

// The shared --jobs budget: a lone run gets the whole budget, fanned-out
// runs split it, and 0 resolves to the hardware before dividing.
TEST(EngineBudget, OneBudgetAcrossRunnerAndCrew) {
  exp::ScenarioSpec spec;
  spec.parallelism = 8;
  EXPECT_EQ(spec.engine_threads_for(1), 8U);
  EXPECT_EQ(spec.engine_threads_for(4), 2U);
  EXPECT_EQ(spec.engine_threads_for(8), 1U);
  EXPECT_EQ(spec.engine_threads_for(16), 1U);  // never zero: inline engine

  spec.parallelism = 1;
  EXPECT_EQ(spec.engine_threads_for(1), 1U);
  EXPECT_EQ(spec.engine_threads_for(4), 1U);

  spec.parallelism = 0;  // all cores
  EXPECT_GE(spec.engine_threads_for(1), 1U);
}

TEST(EngineKindNames, ParseAndPrintRoundTrip) {
  EXPECT_STREQ(engine_kind_name(EngineKind::kSerial), "serial");
  EXPECT_STREQ(engine_kind_name(EngineKind::kParallel), "parallel");
  EXPECT_EQ(parse_engine_kind("serial"), EngineKind::kSerial);
  EXPECT_EQ(parse_engine_kind("PARALLEL"), EngineKind::kParallel);
  EXPECT_THROW(parse_engine_kind("warp"), std::invalid_argument);
}

}  // namespace
}  // namespace mcsim
