#include "workload/trace_workload.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/engine.hpp"
#include "workload/job_splitter.hpp"

namespace mcsim {
namespace {

TraceRecord record(std::uint64_t id, double submit, double run, std::uint32_t procs,
                   std::uint32_t user = 0) {
  TraceRecord rec;
  rec.job_id = id;
  rec.submit_time = submit;
  rec.run_time = run;
  rec.processors = procs;
  rec.user_id = user;
  return rec;
}

std::shared_ptr<TraceWorkloadConfig> config_for(std::vector<TraceRecord> records) {
  auto config = std::make_shared<TraceWorkloadConfig>();
  config->records = std::move(records);
  return config;
}

TEST(UsableTraceRecords, FiltersUnreplayableRecords) {
  const std::vector<TraceRecord> raw = {
      record(1, 0.0, 10.0, 4),
      record(2, 1.0, 0.0, 4),    // zero run: cancelled before start
      record(3, 2.0, 10.0, 0),   // zero processors: nothing to allocate
      record(4, -5.0, 10.0, 4),  // unknown submit time
      record(5, 3.0, 10.0, 8),
  };
  const auto usable = usable_trace_records(raw);
  ASSERT_EQ(usable.size(), 2u);
  EXPECT_EQ(usable[0].job_id, 1u);
  EXPECT_EQ(usable[1].job_id, 5u);
}

TEST(UsableTraceRecords, SortsBySubmitThenId) {
  const std::vector<TraceRecord> raw = {
      record(3, 5.0, 1.0, 1),
      record(1, 2.0, 1.0, 1),
      record(5, 2.0, 1.0, 1),  // same submit as job 1: id breaks the tie
      record(2, 0.5, 1.0, 1),
  };
  const auto usable = usable_trace_records(raw);
  ASSERT_EQ(usable.size(), 4u);
  EXPECT_EQ(usable[0].job_id, 2u);
  EXPECT_EQ(usable[1].job_id, 1u);
  EXPECT_EQ(usable[2].job_id, 5u);
  EXPECT_EQ(usable[3].job_id, 3u);
}

TEST(TraceUtilization, MatchesHandComputation) {
  // 2 jobs: 4 procs * 50 s + 8 procs * 25 s = 400 proc-seconds of work
  // over a 100 s submit span on 16 processors -> 400 / 1600 = 0.25.
  const std::vector<TraceRecord> records = {
      record(1, 0.0, 50.0, 4),
      record(2, 100.0, 25.0, 8),
  };
  EXPECT_DOUBLE_EQ(trace_offered_gross_utilization(records, 16), 0.25);
}

TEST(TraceUtilization, ZeroSpanIsZero) {
  const std::vector<TraceRecord> records = {record(1, 5.0, 50.0, 4),
                                            record(2, 5.0, 25.0, 8)};
  EXPECT_DOUBLE_EQ(trace_offered_gross_utilization(records, 16), 0.0);
  EXPECT_DOUBLE_EQ(trace_offered_gross_utilization(std::vector<TraceRecord>{}, 16), 0.0);
}

TEST(TraceUtilization, ScaleIsInherentOverTarget) {
  const std::vector<TraceRecord> records = {
      record(1, 0.0, 50.0, 4),
      record(2, 100.0, 25.0, 8),
  };
  // inherent 0.25 -> target 0.5 compresses submits by half.
  EXPECT_DOUBLE_EQ(trace_scale_for_utilization(records, 16, 0.5), 0.5);
  EXPECT_DOUBLE_EQ(trace_scale_for_utilization(records, 16, 0.125), 2.0);
  EXPECT_THROW(trace_scale_for_utilization(std::vector<TraceRecord>{}, 16, 0.5),
               std::invalid_argument);
}

TEST(TraceWorkload, ConvertsRecordsToJobSpecs) {
  auto config = config_for({record(1, 10.0, 900.0, 40, 7), record(2, 20.0, 30.0, 8, 2)});
  config->component_limit = 16;
  config->num_clusters = 4;
  config->extension_factor = 1.25;
  TraceWorkload source(config);

  JobSpec job;
  ASSERT_TRUE(source.next(job));
  EXPECT_EQ(job.id, 0u);
  EXPECT_DOUBLE_EQ(job.arrival_time, 10.0);
  EXPECT_EQ(job.total_size, 40u);
  // Same splitter as the synthetic workload: 40 with limit 16 -> (14,13,13).
  EXPECT_EQ(job.components, split_job(40, 16, 4));
  EXPECT_TRUE(job.wide_area);
  EXPECT_EQ(job.request_type, RequestType::kUnordered);
  // The log's run time is the gross (extended) service time.
  EXPECT_DOUBLE_EQ(job.gross_service_time, 900.0);
  EXPECT_DOUBLE_EQ(job.service_time, 900.0 / 1.25);
  EXPECT_EQ(job.origin_queue, 7u % 4u);

  ASSERT_TRUE(source.next(job));
  EXPECT_EQ(job.id, 1u);
  EXPECT_EQ(job.components, std::vector<std::uint32_t>{8});
  EXPECT_FALSE(job.wide_area);
  // Single-component jobs pay no wide-area extension: net == gross.
  EXPECT_DOUBLE_EQ(job.service_time, 30.0);
  EXPECT_EQ(job.origin_queue, 2u);

  EXPECT_FALSE(source.next(job));  // trace exhausted
  EXPECT_EQ(source.jobs_emitted(), 2u);
}

TEST(TraceWorkload, ArrivalScaleMultipliesSubmitTimes) {
  auto config = config_for({record(1, 100.0, 10.0, 4), record(2, 300.0, 10.0, 4)});
  config->arrival_scale = 0.25;
  TraceWorkload source(config);
  JobSpec job;
  ASSERT_TRUE(source.next(job));
  EXPECT_DOUBLE_EQ(job.arrival_time, 25.0);
  ASSERT_TRUE(source.next(job));
  EXPECT_DOUBLE_EQ(job.arrival_time, 75.0);
}

TEST(TraceWorkload, TotalRequestsWhenSplittingDisabled) {
  auto config = config_for({record(1, 0.0, 10.0, 100)});
  config->split_jobs = false;
  TraceWorkload source(config);
  JobSpec job;
  ASSERT_TRUE(source.next(job));
  EXPECT_EQ(job.request_type, RequestType::kTotal);
  EXPECT_EQ(job.components, std::vector<std::uint32_t>{100});
  EXPECT_FALSE(job.wide_area);
  EXPECT_DOUBLE_EQ(job.service_time, job.gross_service_time);
}

TEST(TraceWorkload, RejectsBadConfigs) {
  EXPECT_THROW(TraceWorkload(nullptr), std::invalid_argument);
  auto zero_scale = config_for({record(1, 0.0, 1.0, 1)});
  zero_scale->arrival_scale = 0.0;
  EXPECT_THROW(TraceWorkload{zero_scale}, std::invalid_argument);
  auto zero_limit = config_for({record(1, 0.0, 1.0, 1)});
  zero_limit->component_limit = 0;
  EXPECT_THROW(TraceWorkload{zero_limit}, std::invalid_argument);
}

// --- engine integration -------------------------------------------------

SimulationConfig trace_sim_config(std::shared_ptr<const TraceWorkloadConfig> trace) {
  SimulationConfig config;
  config.trace_workload = std::move(trace);
  config.total_jobs = config.trace_workload->records.size();
  config.warmup_fraction = 0.0;
  config.batch_count = 1;
  return config;
}

TEST(TraceWorkloadEngine, ReplaysEveryUsableRecord) {
  std::vector<TraceRecord> records;
  for (std::uint64_t i = 0; i < 50; ++i) {
    records.push_back(record(i, static_cast<double>(i) * 10.0, 25.0,
                             static_cast<std::uint32_t>(1 + i % 32), // <= cluster size
                             static_cast<std::uint32_t>(i)));
  }
  auto trace = config_for(usable_trace_records(records));
  const auto result = run_simulation(trace_sim_config(trace));
  EXPECT_FALSE(result.unstable);
  EXPECT_EQ(result.completed_jobs, 50u);
  EXPECT_EQ(result.measured_jobs, 50u);
}

TEST(TraceWorkloadEngine, UncontendedJobsHaveZeroWait) {
  // One tiny job at a time, far apart: every wait must be exactly zero and
  // every response exactly the run time.
  auto trace = config_for({record(1, 0.0, 5.0, 1), record(2, 1000.0, 7.0, 1)});
  const auto result = run_simulation(trace_sim_config(trace));
  EXPECT_EQ(result.completed_jobs, 2u);
  EXPECT_EQ(result.wait_all.max(), 0.0);
  EXPECT_EQ(result.response_all.min(), 5.0);
  EXPECT_EQ(result.response_all.max(), 7.0);
}

TEST(TraceWorkloadEngine, ValidateRejectsInconsistentTraceConfigs) {
  // Empty trace.
  auto empty = std::make_shared<TraceWorkloadConfig>();
  SimulationConfig config;
  config.trace_workload = empty;
  EXPECT_THROW(config.validate(), std::invalid_argument);

  // total_jobs beyond the trace length.
  auto trace = config_for({record(1, 0.0, 1.0, 1)});
  config = trace_sim_config(trace);
  config.total_jobs = 2;
  EXPECT_THROW(config.validate(), std::invalid_argument);

  // Cluster-count mismatch between the trace splitting and the layout.
  auto mismatch = config_for({record(1, 0.0, 1.0, 1)});
  mismatch->num_clusters = 2;
  config = trace_sim_config(mismatch);
  EXPECT_THROW(config.validate(), std::invalid_argument);
}

}  // namespace
}  // namespace mcsim
