// The PR's acceptance property: a full run exported through the
// observability layer (--trace-out / --metrics-out pipeline) can be read
// back and the run's mean response time reconstructed EXACTLY — same bits,
// not approximately — from the SWF file alone. Plus the zero-cost
// contract: attaching no sink changes nothing about the simulation.
#include <gtest/gtest.h>

#include <array>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "core/engine.hpp"
#include "exp/manifest.hpp"
#include "exp/scenario.hpp"
#include "obs/ring_recorder.hpp"
#include "obs/swf_builder.hpp"
#include "stats/welford.hpp"
#include "trace/swf.hpp"

namespace mcsim {
namespace {

SimulationConfig paper_config(PolicyKind policy, double rho, std::uint64_t jobs,
                              std::uint64_t seed) {
  PaperScenario scenario;
  scenario.policy = policy;
  return make_paper_config(scenario, rho, jobs, seed);
}

struct TracedRun {
  SimulationResult result;
  SwfTrace trace;
  std::string manifest_json;
};

TracedRun run_traced(const SimulationConfig& config) {
  TracedRun run;
  MulticlusterSimulation simulation(config);
  obs::RingRecorder recorder;
  obs::SwfTraceBuilder builder;
  obs::MetricsRegistry metrics;
  recorder.add_emitter([&builder](const obs::TraceEvent& event) { builder.record(event); });
  simulation.set_trace_sink(&recorder);
  simulation.set_metrics(&metrics);
  run.result = simulation.run();

  // Write the SWF trace and manifest to disk and read both back — the same
  // files the CLI's --trace-out / --metrics-out produce. The path encodes
  // the config so concurrently running test processes never collide.
  const std::string swf_path = ::testing::TempDir() + "/mcsim_roundtrip_" +
                               run.result.policy + "_" +
                               std::to_string(config.seed) + "_" +
                               std::to_string(config.total_jobs) + ".swf";
  write_swf_file(swf_path, builder.trace());
  run.trace = read_swf_file(swf_path);

  ManifestInfo info;
  info.trace_path = swf_path;
  info.trace_records = builder.trace().records.size();
  std::ostringstream manifest;
  write_run_manifest(manifest, config, run.result, &metrics, info);
  run.manifest_json = manifest.str();
  return run;
}

// Reconstruct mean response from the re-read trace exactly as the engine
// accumulated it: records are in finish order, the first
// (completed - measured) finishes are warmup.
RunningStats reconstruct_response(const TracedRun& run) {
  RunningStats stats;
  const std::size_t warmup = static_cast<std::size_t>(run.result.completed_jobs) -
                             static_cast<std::size_t>(run.result.measured_jobs);
  for (std::size_t i = warmup; i < run.trace.records.size(); ++i) {
    stats.add(run.trace.records[i].response_time());
  }
  return stats;
}

double manifest_mean_response(const std::string& json) {
  const std::string needle = "\"mean_response\": ";
  const auto pos = json.find(needle);
  EXPECT_NE(pos, std::string::npos);
  return std::strtod(json.c_str() + pos + needle.size(), nullptr);
}

class RoundTrip : public ::testing::TestWithParam<PolicyKind> {};

TEST_P(RoundTrip, SwfReconstructsMeanResponseBitExactly) {
  const auto config = paper_config(GetParam(), 0.45, 8000, /*seed=*/5);
  const auto run = run_traced(config);
  ASSERT_FALSE(run.result.unstable);
  ASSERT_EQ(run.trace.records.size(), run.result.completed_jobs);

  const auto stats = reconstruct_response(run);
  EXPECT_EQ(stats.count(), run.result.measured_jobs);
  // EXPECT_EQ, not NEAR: the decomposed response (wait + run, each stored
  // as an SWF field with round-trip precision) is the exact sequence the
  // engine folded into its statistics, in the same order.
  EXPECT_EQ(stats.mean(), run.result.mean_response());
  EXPECT_EQ(stats.max(), run.result.response_all.max());
  EXPECT_EQ(stats.min(), run.result.response_all.min());
  EXPECT_EQ(stats.stddev(), run.result.response_all.stddev());

  // The manifest's headline number parses back to the identical double.
  EXPECT_EQ(manifest_mean_response(run.manifest_json), run.result.mean_response());
}

INSTANTIATE_TEST_SUITE_P(Policies, RoundTrip,
                         ::testing::Values(PolicyKind::kGS, PolicyKind::kLS,
                                           PolicyKind::kLP),
                         [](const ::testing::TestParamInfo<PolicyKind>& param) {
                           return std::string(policy_name(param.param));
                         });

TEST(RoundTripWait, WaitStatisticsAlsoReconstruct) {
  const auto run = run_traced(paper_config(PolicyKind::kGS, 0.5, 6000, 9));
  ASSERT_FALSE(run.result.unstable);
  RunningStats waits;
  const std::size_t warmup = static_cast<std::size_t>(run.result.completed_jobs) -
                             static_cast<std::size_t>(run.result.measured_jobs);
  for (std::size_t i = warmup; i < run.trace.records.size(); ++i) {
    waits.add(run.trace.records[i].wait_time);
  }
  EXPECT_EQ(waits.mean(), run.result.wait_all.mean());
}

TEST(NullSink, AttachingNothingChangesNothing) {
  const auto config = paper_config(PolicyKind::kLS, 0.5, 6000, 3);

  const auto bare = run_simulation(config);

  MulticlusterSimulation traced(config);
  obs::RingRecorder recorder;
  obs::MetricsRegistry metrics;
  traced.set_trace_sink(&recorder);
  traced.set_metrics(&metrics);
  const auto observed = traced.run();

  // The sink only watches: event count, schedule and every statistic are
  // bit-identical with and without observability attached.
  EXPECT_EQ(bare.events_executed, observed.events_executed);
  EXPECT_EQ(bare.completed_jobs, observed.completed_jobs);
  EXPECT_EQ(bare.end_time, observed.end_time);
  EXPECT_EQ(bare.mean_response(), observed.mean_response());
  EXPECT_EQ(bare.response_p95, observed.response_p95);
  EXPECT_EQ(bare.busy_fraction, observed.busy_fraction);
  EXPECT_EQ(bare.mean_queue_length, observed.mean_queue_length);
}

TEST(NullSink, DetachingResetsTheFastPath) {
  const auto config = paper_config(PolicyKind::kGS, 0.4, 1000, 2);
  MulticlusterSimulation simulation(config);
  obs::MetricsRegistry metrics;
  simulation.set_metrics(&metrics);
  simulation.set_metrics(nullptr);  // detach again before the run
  const auto result = simulation.run();
  EXPECT_GT(result.completed_jobs, 0u);
  // Nothing was counted: the registry still holds the attach-time zeros.
  EXPECT_EQ(metrics.counters().at("jobs.arrived"), 0u);
}

TEST(SinkCoverage, EveryLifecycleKindAppearsInTheStream) {
  const auto config = paper_config(PolicyKind::kLS, 0.55, 4000, 7);
  MulticlusterSimulation simulation(config);
  obs::RingRecorder recorder;
  std::array<std::uint64_t, 6> kind_counts{};
  recorder.add_emitter([&kind_counts](const obs::TraceEvent& event) {
    ++kind_counts[static_cast<std::size_t>(event.kind)];
  });
  simulation.set_trace_sink(&recorder);
  const auto result = simulation.run();

  using obs::EventKind;
  EXPECT_EQ(kind_counts[static_cast<std::size_t>(EventKind::kArrival)],
            config.total_jobs);
  EXPECT_EQ(kind_counts[static_cast<std::size_t>(EventKind::kStart)],
            result.completed_jobs);
  EXPECT_EQ(kind_counts[static_cast<std::size_t>(EventKind::kFinish)],
            result.completed_jobs);
  // Each job is considered at least once, so head-of-queue events land in
  // [completed, attempts].
  const auto head = kind_counts[static_cast<std::size_t>(EventKind::kHeadOfQueue)];
  const auto attempts =
      kind_counts[static_cast<std::size_t>(EventKind::kPlacementAttempt)];
  EXPECT_GE(head, result.completed_jobs);
  EXPECT_LE(head, attempts);
  // At 0.55 load LS sees contention: some placements must fail.
  EXPECT_GT(kind_counts[static_cast<std::size_t>(EventKind::kPlacementReject)], 0u);
}

}  // namespace
}  // namespace mcsim
