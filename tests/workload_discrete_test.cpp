#include "workload/discrete.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "util/rng.hpp"

namespace mcsim {
namespace {

TEST(DiscreteDistribution, NormalizesWeights) {
  DiscreteDistribution d({1.0, 2.0}, {3.0, 1.0});
  EXPECT_DOUBLE_EQ(d.probability_of(1.0), 0.75);
  EXPECT_DOUBLE_EQ(d.probability_of(2.0), 0.25);
  EXPECT_DOUBLE_EQ(d.probability_of(3.0), 0.0);
}

TEST(DiscreteDistribution, AnalyticMoments) {
  DiscreteDistribution d({1.0, 3.0}, {0.5, 0.5});
  EXPECT_DOUBLE_EQ(d.mean(), 2.0);
  EXPECT_DOUBLE_EQ(d.variance(), 1.0);
  EXPECT_DOUBLE_EQ(d.cv(), 0.5);
}

TEST(DiscreteDistribution, SamplingFrequenciesMatchProbabilities) {
  DiscreteDistribution d({1.0, 2.0, 4.0, 8.0}, {0.4, 0.3, 0.2, 0.1});
  Rng rng(2718);
  std::map<double, int> counts;
  constexpr int kN = 400000;
  for (int i = 0; i < kN; ++i) ++counts[d.sample(rng)];
  EXPECT_NEAR(counts[1.0] / double(kN), 0.4, 0.005);
  EXPECT_NEAR(counts[2.0] / double(kN), 0.3, 0.005);
  EXPECT_NEAR(counts[4.0] / double(kN), 0.2, 0.005);
  EXPECT_NEAR(counts[8.0] / double(kN), 0.1, 0.005);
}

TEST(DiscreteDistribution, SingleValueAlwaysSampled) {
  DiscreteDistribution d({42.0}, {1.0});
  Rng rng(1);
  for (int i = 0; i < 100; ++i) EXPECT_DOUBLE_EQ(d.sample(rng), 42.0);
  EXPECT_DOUBLE_EQ(d.variance(), 0.0);
}

TEST(DiscreteDistribution, ZeroWeightValuesNeverSampled) {
  DiscreteDistribution d({1.0, 2.0, 3.0}, {1.0, 0.0, 1.0});
  Rng rng(3);
  for (int i = 0; i < 50000; ++i) EXPECT_NE(d.sample(rng), 2.0);
}

TEST(DiscreteDistribution, LargeSkewedSupportAliasTable) {
  // 1000 values with strongly decaying weights must still sample correctly.
  std::vector<double> values, weights;
  for (int i = 1; i <= 1000; ++i) {
    values.push_back(i);
    weights.push_back(1.0 / (i * i));
  }
  DiscreteDistribution d(values, weights);
  Rng rng(5);
  double sum = 0.0;
  constexpr int kN = 300000;
  for (int i = 0; i < kN; ++i) sum += d.sample(rng);
  EXPECT_NEAR(sum / kN, d.mean(), 0.02 * d.mean());
}

TEST(DiscreteDistribution, MinMaxValues) {
  DiscreteDistribution d({8.0, 1.0, 64.0}, {1.0, 1.0, 1.0});
  EXPECT_DOUBLE_EQ(d.min_value(), 1.0);
  EXPECT_DOUBLE_EQ(d.max_value(), 64.0);
  EXPECT_EQ(d.support_size(), 3u);
}

TEST(DiscreteDistribution, TruncateAboveRenormalizes) {
  DiscreteDistribution d({1.0, 64.0, 128.0}, {0.5, 0.3, 0.2});
  double removed = 0.0;
  const auto cut = d.truncate_above(64.0, &removed);
  EXPECT_NEAR(removed, 0.2, 1e-12);
  EXPECT_EQ(cut.support_size(), 2u);
  EXPECT_NEAR(cut.probability_of(1.0), 0.5 / 0.8, 1e-12);
  EXPECT_NEAR(cut.probability_of(64.0), 0.3 / 0.8, 1e-12);
  EXPECT_DOUBLE_EQ(cut.max_value(), 64.0);
}

TEST(DiscreteDistribution, TruncateAboveLowersMean) {
  DiscreteDistribution d({1.0, 128.0}, {0.9, 0.1});
  const auto cut = d.truncate_above(64.0);
  EXPECT_LT(cut.mean(), d.mean());
}

TEST(DiscreteDistribution, TruncatingEverythingThrows) {
  DiscreteDistribution d({10.0, 20.0}, {1.0, 1.0});
  EXPECT_THROW(d.truncate_above(5.0), std::invalid_argument);
}

TEST(DiscreteDistribution, InvalidConstructionThrows) {
  EXPECT_THROW(DiscreteDistribution({}, {}), std::invalid_argument);
  EXPECT_THROW(DiscreteDistribution({1.0}, {1.0, 2.0}), std::invalid_argument);
  EXPECT_THROW(DiscreteDistribution({1.0, 1.0}, {1.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(DiscreteDistribution({1.0}, {-1.0}), std::invalid_argument);
  EXPECT_THROW(DiscreteDistribution({1.0, 2.0}, {0.0, 0.0}), std::invalid_argument);
}

TEST(DiscreteDistribution, DefaultIsDegenerateOne) {
  DiscreteDistribution d;
  EXPECT_DOUBLE_EQ(d.mean(), 1.0);
  Rng rng(1);
  EXPECT_DOUBLE_EQ(d.sample(rng), 1.0);
}

TEST(DiscreteDistribution, ProbabilitiesAlignWithValues) {
  DiscreteDistribution d({5.0, 6.0, 7.0}, {1.0, 2.0, 1.0});
  const auto& values = d.values();
  const auto& probs = d.probabilities();
  ASSERT_EQ(values.size(), probs.size());
  double total = 0.0;
  for (double p : probs) total += p;
  EXPECT_NEAR(total, 1.0, 1e-12);
  for (std::size_t i = 0; i < values.size(); ++i) {
    EXPECT_DOUBLE_EQ(probs[i], d.probability_of(values[i]));
  }
}

}  // namespace
}  // namespace mcsim
