#include "stats/time_weighted.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace mcsim {
namespace {

TEST(TimeWeightedStat, ConstantValueAveragesToItself) {
  TimeWeightedStat s;
  s.start(0.0, 3.0);
  EXPECT_DOUBLE_EQ(s.time_average(10.0), 3.0);
}

TEST(TimeWeightedStat, PiecewiseConstantAverage) {
  TimeWeightedStat s;
  s.start(0.0, 0.0);
  s.update(2.0, 4.0);   // 0 for 2s
  s.update(6.0, 1.0);   // 4 for 4s
  // integral = 0*2 + 4*4 + 1*4 = 20 over 10s.
  EXPECT_DOUBLE_EQ(s.time_average(10.0), 2.0);
}

TEST(TimeWeightedStat, AverageAtCurrentTime) {
  TimeWeightedStat s;
  s.start(0.0, 2.0);
  s.update(5.0, 0.0);
  EXPECT_DOUBLE_EQ(s.time_average(5.0), 2.0);
}

TEST(TimeWeightedStat, ZeroSpanReturnsCurrentValue) {
  TimeWeightedStat s;
  s.start(3.0, 7.0);
  EXPECT_DOUBLE_EQ(s.time_average(3.0), 7.0);
}

TEST(TimeWeightedStat, ResetAtDiscardsHistory) {
  TimeWeightedStat s;
  s.start(0.0, 100.0);
  s.update(10.0, 2.0);
  s.reset_at(10.0);
  EXPECT_DOUBLE_EQ(s.time_average(20.0), 2.0);
}

TEST(TimeWeightedStat, TracksMinMax) {
  TimeWeightedStat s;
  s.start(0.0, 5.0);
  s.update(1.0, -2.0);
  s.update(2.0, 9.0);
  EXPECT_DOUBLE_EQ(s.min(), -2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(TimeWeightedStat, BackwardsTimeThrows) {
  TimeWeightedStat s;
  s.start(5.0, 1.0);
  EXPECT_THROW(s.update(4.0, 2.0), std::invalid_argument);
  EXPECT_THROW(s.time_average(4.0), std::invalid_argument);
}

TEST(TimeWeightedStat, UseBeforeStartThrows) {
  TimeWeightedStat s;
  EXPECT_THROW(s.update(0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(s.time_average(1.0), std::invalid_argument);
}

TEST(TimeWeightedStat, RepeatedUpdatesAtSameTime) {
  TimeWeightedStat s;
  s.start(0.0, 1.0);
  s.update(5.0, 2.0);
  s.update(5.0, 3.0);  // simultaneous events are legal
  EXPECT_DOUBLE_EQ(s.current_value(), 3.0);
  EXPECT_DOUBLE_EQ(s.time_average(10.0), (1.0 * 5 + 3.0 * 5) / 10.0);
}

}  // namespace
}  // namespace mcsim
