// The deterministic cross-LP ordering suite for the parallel backend
// (docs/PARALLEL.md): tie-timestamp events spanning LPs, cancellation
// across LPs in every structure an entry can inhabit, mid-window stop(),
// and a seeded differential stress test pinning the parallel engine's
// event sequence and pending counts to the serial engine's at 1/2/4
// worker threads.
#include <gtest/gtest.h>

#include <functional>
#include <string>
#include <vector>

#include "sim/channel.hpp"
#include "sim/lookahead.hpp"
#include "sim/parallel_simulator.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace mcsim {
namespace {

ParallelConfig make_config(std::uint32_t lp_count, unsigned workers,
                           double hint = 0.0) {
  ParallelConfig config;
  config.lp_count = lp_count;
  config.worker_threads = workers;
  config.lookahead_hint = hint;
  return config;
}

TEST(WorkerCrew, RunsEveryTaskExactlyOnce) {
  for (const unsigned threads : {1U, 2U, 4U}) {
    WorkerCrew crew(threads);
    EXPECT_EQ(crew.threads(), threads);
    std::vector<int> hits(64, 0);
    // Tasks touch disjoint indices, so no synchronization is needed in
    // the task body — the crew's barrier provides the ordering.
    for (int round = 0; round < 50; ++round) {
      crew.run(hits.size(), [&](std::size_t i) { ++hits[i]; });
    }
    for (const int h : hits) EXPECT_EQ(h, 50);
  }
}

TEST(WorkerCrew, PropagatesTaskExceptions) {
  WorkerCrew crew(3);
  EXPECT_THROW(
      crew.run(8,
               [](std::size_t i) {
                 if (i == 5) throw std::runtime_error("task failed");
               }),
      std::runtime_error);
  // The crew must still be usable after a failed barrier.
  std::vector<int> hits(4, 0);
  crew.run(hits.size(), [&](std::size_t i) { hits[i] = 1; });
  for (const int h : hits) EXPECT_EQ(h, 1);
}

TEST(HorizonController, GrowsFromZeroAndRespectsHint) {
  HorizonController zero(0.0);
  EXPECT_EQ(zero.horizon(), 0.0);
  zero.on_window(1, 0.0);
  EXPECT_GE(zero.horizon(), HorizonController::kMinHorizon);
  const double grown = zero.horizon();
  zero.on_window(1, 0.0);
  EXPECT_GE(zero.horizon(), grown * 2.0);

  HorizonController hinted(10.0);
  EXPECT_DOUBLE_EQ(hinted.horizon(), 10.0);
  // Fat windows shrink toward, but never below, the model-derived bound.
  hinted.on_window(HorizonController::kHighWatermark * 2, 5.0);
  EXPECT_DOUBLE_EQ(hinted.horizon(), 10.0);
  hinted.on_window(1, 100.0);
  hinted.on_window(HorizonController::kHighWatermark * 2, 5.0);
  EXPECT_GE(hinted.horizon(), 10.0);
}

TEST(ParallelSimulator, TieTimestampsAcrossLpsFireInScheduleOrder) {
  Simulator sim;
  sim.configure_parallel(make_config(4, 2));
  ASSERT_TRUE(sim.parallel_engine());
  std::vector<int> order;
  // Same timestamp, four different LPs, scheduled 0..3: the cross-LP
  // merge must reproduce schedule order, exactly like the serial
  // calendar's push-order tie rule.
  for (int i = 0; i < 4; ++i) {
    sim.set_event_lp(static_cast<std::uint32_t>(i));
    sim.schedule_at(5.0, [&order, i] { order.push_back(i); });
  }
  sim.set_event_lp(2);
  sim.schedule_at(1.0, [&order] { order.push_back(99); });
  sim.run();
  ASSERT_EQ(order.size(), 5U);
  EXPECT_EQ(order[0], 99);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i + 1)], i);
  EXPECT_DOUBLE_EQ(sim.now(), 5.0);
  EXPECT_EQ(sim.executed_events(), 5U);
}

TEST(ParallelSimulator, CancelAcrossLpsInEveryStructure) {
  Simulator sim;
  sim.configure_parallel(make_config(3, 2, 100.0));
  bool fired_far = false;
  bool fired_tie = false;
  bool fired_spill = false;
  // Victim 1: far future, lives in LP 2's staging lane / heap.
  sim.set_event_lp(2);
  const EventId far = sim.schedule_at(50.0, [&] { fired_far = true; });
  // Victim 2: same-timestamp window mate on another LP, extracted into a
  // window by the time the canceller runs. Scheduled after the canceller,
  // so the tie rule fires the canceller first.
  EventId tie = kNoEvent;
  sim.set_event_lp(0);
  sim.schedule_at(10.0, [&] {
    // Kill the window mate on LP 1, the heap resident on LP 2, and a
    // freshly spilled event.
    EXPECT_TRUE(sim.cancel(tie));
    EXPECT_FALSE(sim.cancel(tie));  // second cancel reports dead
    EXPECT_TRUE(sim.cancel(far));
    sim.set_event_lp(1);
    const EventId spilled = sim.schedule_at(10.0, [&] { fired_spill = true; });
    EXPECT_TRUE(sim.cancel(spilled));
  });
  sim.set_event_lp(1);
  tie = sim.schedule_at(10.0, [&] { fired_tie = true; });
  sim.run();
  EXPECT_FALSE(fired_far);
  EXPECT_FALSE(fired_tie);
  EXPECT_FALSE(fired_spill);
  EXPECT_EQ(sim.pending_events(), 0U);
  EXPECT_EQ(sim.executed_events(), 1U);
  EXPECT_DOUBLE_EQ(sim.now(), 10.0);
}

TEST(ParallelSimulator, CancelOfFiredEventReportsFalse) {
  Simulator sim;
  sim.configure_parallel(make_config(2, 1));
  sim.set_event_lp(1);
  const EventId id = sim.schedule_at(1.0, [] {});
  sim.run();
  EXPECT_FALSE(sim.cancel(id));
  EXPECT_FALSE(sim.cancel(kNoEvent));
  EXPECT_FALSE(sim.cancel(EventId{12345}));  // never issued
}

TEST(ParallelSimulator, StopMidWindowKeepsRemnantsPending) {
  Simulator sim;
  // A large lookahead pulls all three ties plus the t=2 event into one
  // window; stop() from the second handler must leave the rest pending,
  // mirroring the serial engine's mid-batch stop contract.
  sim.configure_parallel(make_config(2, 2, 100.0));
  std::vector<int> order;
  sim.set_event_lp(0);
  sim.schedule_at(1.0, [&] { order.push_back(0); });
  sim.set_event_lp(1);
  sim.schedule_at(1.0, [&] {
    order.push_back(1);
    sim.stop();
  });
  sim.set_event_lp(0);
  sim.schedule_at(1.0, [&] { order.push_back(2); });
  sim.set_event_lp(1);
  sim.schedule_at(2.0, [&] { order.push_back(3); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1}));
  EXPECT_EQ(sim.pending_events(), 2U);
  EXPECT_DOUBLE_EQ(sim.now(), 1.0);
  sim.run();  // re-entry drains the remnant window, then the rest
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(sim.pending_events(), 0U);
}

TEST(ParallelSimulator, RunUntilMatchesSerialClockAndRemnants) {
  for (const unsigned workers : {1U, 2U}) {
    Simulator serial;
    Simulator parallel;
    parallel.configure_parallel(make_config(3, workers, 1000.0));
    std::vector<double> serial_seen;
    std::vector<double> parallel_seen;
    const auto load = [](Simulator& sim, std::vector<double>& seen) {
      for (int i = 1; i <= 9; ++i) {
        sim.set_event_lp(static_cast<std::uint32_t>(i % 3));
        sim.schedule_at(static_cast<double>(i), [&seen, &sim] { seen.push_back(sim.now()); });
      }
    };
    load(serial, serial_seen);
    load(parallel, parallel_seen);
    // The huge hint extracts all nine events into the first parallel
    // window; run_until must still refuse the ones beyond the cut-off.
    serial.run_until(4.5);
    parallel.run_until(4.5);
    EXPECT_EQ(serial_seen, parallel_seen);
    EXPECT_DOUBLE_EQ(parallel.now(), serial.now());
    EXPECT_EQ(parallel.pending_events(), serial.pending_events());
    serial.run_until(9.0);
    parallel.run_until(9.0);
    EXPECT_EQ(serial_seen, parallel_seen);
    EXPECT_DOUBLE_EQ(parallel.now(), serial.now());
    EXPECT_EQ(parallel.pending_events(), 0U);
  }
}

TEST(ParallelSimulator, StepHookSeesSerialPendingCounts) {
  Simulator serial;
  Simulator parallel;
  parallel.configure_parallel(make_config(4, 2));
  std::vector<std::pair<double, std::size_t>> serial_hook;
  std::vector<std::pair<double, std::size_t>> parallel_hook;
  serial.set_step_hook([&](double now, std::size_t pending) {
    serial_hook.emplace_back(now, pending);
  });
  parallel.set_step_hook([&](double now, std::size_t pending) {
    parallel_hook.emplace_back(now, pending);
  });
  const auto load = [](Simulator& sim) {
    std::function<void(int)> chain = [&sim, &chain](int depth) {
      if (depth >= 40) return;
      sim.set_event_lp(static_cast<std::uint32_t>(depth % 4));
      sim.schedule_in(0.5, [&sim, &chain, depth] { chain(depth + 1); });
      if (depth % 3 == 0) {
        sim.set_event_lp(static_cast<std::uint32_t>((depth + 1) % 4));
        sim.schedule_in(1.25, [] {});
      }
    };
    chain(0);
    sim.run();
  };
  load(serial);
  load(parallel);
  ASSERT_FALSE(serial_hook.empty());
  EXPECT_EQ(serial_hook, parallel_hook);
}

TEST(ParallelSimulator, ResetClearsStateAndStaysEngaged) {
  Simulator sim;
  sim.configure_parallel(make_config(2, 2));
  sim.set_event_lp(1);
  sim.schedule_at(1.0, [] {});
  sim.schedule_at(2.0, [] {});
  sim.run();
  EXPECT_EQ(sim.executed_events(), 2U);
  sim.reset();
  EXPECT_TRUE(sim.parallel_engine());
  EXPECT_EQ(sim.executed_events(), 0U);
  EXPECT_EQ(sim.pending_events(), 0U);
  EXPECT_DOUBLE_EQ(sim.now(), 0.0);
  bool fired = false;
  sim.schedule_at(1.0, [&] { fired = true; });
  sim.run();
  EXPECT_TRUE(fired);
}

TEST(ParallelSimulator, ConfigureRequiresFreshSimulator) {
  Simulator used;
  used.schedule_at(1.0, [] {});
  EXPECT_ANY_THROW(used.configure_parallel(make_config(2, 1)));
  Simulator fresh;
  fresh.configure_parallel(make_config(2, 1));
  EXPECT_ANY_THROW(fresh.configure_parallel(make_config(2, 1)));
}

// Differential stress: random self-scheduling, cancelling workloads run
// on the serial engine and on parallel engines with 1, 2 and 4 workers.
// The full dispatch transcript — (time, label) pairs plus the pending
// count after every event — must be identical across all four engines.
TEST(ParallelSimulatorStress, MatchesSerialTranscriptAcrossWorkerCounts) {
  constexpr std::uint32_t kLps = 5;
  struct Transcript {
    std::vector<std::pair<double, int>> fired;
    std::vector<std::size_t> pending_after;
  };
  const auto drive = [&](Simulator& sim, Transcript& out) {
    Rng rng(0xC0A110C5EEDULL);
    std::vector<EventId> live;
    int label = 0;
    std::function<void()> spawn = [&] {
      // Each fired event records itself, then randomly schedules a few
      // successors across LPs and occasionally cancels a live event —
      // co-allocation-style cross-LP traffic in miniature.
      const int self = label++;
      const double base = sim.now();
      out.fired.emplace_back(base, self);
      const int children = static_cast<int>(rng.uniform_int(4));
      for (int c = 0; c < children && label < 4000; ++c) {
        sim.set_event_lp(static_cast<std::uint32_t>(rng.uniform_int(kLps)));
        const double delay = rng.uniform() < 0.2 ? 0.0 : rng.uniform(0.0, 3.0);
        live.push_back(sim.schedule_in(delay, spawn));
      }
      if (!live.empty() && rng.uniform() < 0.25) {
        const auto pick = rng.uniform_int(live.size());
        sim.cancel(live[pick]);  // may already be dead; both engines agree
        live.erase(live.begin() + static_cast<long>(pick));
      }
      out.pending_after.push_back(sim.pending_events());
    };
    for (int i = 0; i < 12; ++i) {
      sim.set_event_lp(static_cast<std::uint32_t>(i % kLps));
      live.push_back(sim.schedule_at(static_cast<double>(i) * 0.75, spawn));
    }
    sim.run();
  };

  Transcript reference;
  {
    Simulator serial;
    drive(serial, reference);
  }
  ASSERT_GT(reference.fired.size(), 100U);
  for (const unsigned workers : {1U, 2U, 4U}) {
    Transcript parallel_out;
    Simulator parallel;
    parallel.configure_parallel(make_config(kLps, workers));
    drive(parallel, parallel_out);
    EXPECT_EQ(reference.fired, parallel_out.fired) << "workers=" << workers;
    EXPECT_EQ(reference.pending_after, parallel_out.pending_after)
        << "workers=" << workers;
  }
}

}  // namespace
}  // namespace mcsim
