// Runner pool semantics plus the bit-identical-parallelism contract: the
// whole point of exp::Runner is that fanning independent runs out over
// threads changes wall-clock only, never a single bit of any result. The
// determinism tests below run the GS/LS/LP/SC paper scenarios through
// run_replications and run_sweep serially and in parallel and compare every
// floating-point field with exact equality. This file is also the
// ThreadSanitizer smoke target: configure with -DMCSIM_SANITIZE=thread and
// this binary exercises all Runner synchronisation under load.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <vector>

#include "exp/replications.hpp"
#include "exp/runner.hpp"
#include "exp/scenario.hpp"
#include "exp/sweep.hpp"

namespace mcsim {
namespace {

TEST(Runner, DefaultJobsIsAtLeastOne) {
  EXPECT_GE(exp::Runner::default_jobs(), 1u);
  exp::Runner by_default(0);
  EXPECT_EQ(by_default.jobs(), exp::Runner::default_jobs());
}

TEST(Runner, MapPreservesTaskIndexOrder) {
  exp::Runner runner(4);
  const auto results = runner.map(64, [](std::size_t i) {
    // Jitter completion order so out-of-order finishes would be caught.
    std::this_thread::sleep_for(std::chrono::microseconds((64 - i) % 7));
    return i * i;
  });
  ASSERT_EQ(results.size(), 64u);
  for (std::size_t i = 0; i < results.size(); ++i) EXPECT_EQ(results[i], i * i);
}

TEST(Runner, RunsEveryTaskExactlyOnce) {
  exp::Runner runner(4);
  std::vector<std::atomic<int>> hits(100);
  runner.run(100, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& hit : hits) EXPECT_EQ(hit.load(), 1);
}

TEST(Runner, IsReusableAcrossBatches) {
  exp::Runner runner(3);
  for (int batch = 0; batch < 5; ++batch) {
    const auto results = runner.map(10, [&](std::size_t i) {
      return static_cast<int>(i) + batch;
    });
    for (std::size_t i = 0; i < results.size(); ++i) {
      EXPECT_EQ(results[i], static_cast<int>(i) + batch);
    }
  }
}

TEST(Runner, SingleJobRunsInline) {
  exp::Runner runner(1);
  const auto caller = std::this_thread::get_id();
  runner.run(3, [&](std::size_t) { EXPECT_EQ(std::this_thread::get_id(), caller); });
}

TEST(Runner, EmptyBatchIsANoOp) {
  exp::Runner runner(2);
  runner.run(0, [](std::size_t) { FAIL() << "no task should run"; });
}

TEST(Runner, PropagatesFirstExceptionByTaskOrder) {
  exp::Runner runner(4);
  try {
    runner.run(32, [](std::size_t i) {
      if (i % 2 == 1) throw std::runtime_error("task " + std::to_string(i));
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& error) {
    EXPECT_STREQ(error.what(), "task 1");
  }
  // The pool must survive a throwing batch.
  const auto results = runner.map(4, [](std::size_t i) { return i; });
  EXPECT_EQ(results.size(), 4u);
}

TEST(Runner, InlineRunnerPropagatesExceptions) {
  exp::Runner runner(1);
  EXPECT_THROW(runner.run(2, [](std::size_t) { throw std::logic_error("boom"); }),
               std::logic_error);
}

// --- determinism: parallel == serial, bit for bit -------------------------

PaperScenario scenario_for(PolicyKind policy) {
  PaperScenario scenario;
  scenario.policy = policy;
  scenario.component_limit = 16;
  return scenario;
}

const std::vector<PolicyKind> kAllPolicies = {PolicyKind::kGS, PolicyKind::kLS,
                                              PolicyKind::kLP, PolicyKind::kSC};

TEST(RunnerDeterminism, ReplicationsBitIdenticalAcrossParallelism) {
  for (PolicyKind policy : kAllPolicies) {
    const auto scenario = scenario_for(policy);
    const auto serial = run_replications(scenario, 0.45, 2500, 4, /*base_seed=*/7,
                                         /*parallelism=*/1);
    const auto parallel = run_replications(scenario, 0.45, 2500, 4, /*base_seed=*/7,
                                           /*parallelism=*/4);
    SCOPED_TRACE(scenario.label());
    ASSERT_EQ(serial.replication_means.size(), parallel.replication_means.size());
    for (std::size_t i = 0; i < serial.replication_means.size(); ++i) {
      EXPECT_EQ(serial.replication_means[i], parallel.replication_means[i]);
    }
    EXPECT_EQ(serial.unstable_replications, parallel.unstable_replications);
    EXPECT_EQ(serial.response_ci.mean, parallel.response_ci.mean);
    EXPECT_EQ(serial.response_ci.halfwidth, parallel.response_ci.halfwidth);
    EXPECT_EQ(serial.mean_busy_fraction, parallel.mean_busy_fraction);
  }
}

TEST(RunnerDeterminism, SweepBitIdenticalAcrossParallelism) {
  for (PolicyKind policy : kAllPolicies) {
    const auto scenario = scenario_for(policy);
    SweepConfig serial_config;
    serial_config.target_utilizations = {0.25, 0.45};
    serial_config.jobs_per_point = 2500;
    serial_config.seed = 11;
    serial_config.parallelism = 1;
    auto parallel_config = serial_config;
    parallel_config.parallelism = 4;

    const auto serial = run_sweep(scenario, serial_config);
    const auto parallel = run_sweep(scenario, parallel_config);
    SCOPED_TRACE(scenario.label());
    ASSERT_EQ(serial.points.size(), parallel.points.size());
    for (std::size_t i = 0; i < serial.points.size(); ++i) {
      EXPECT_EQ(serial.points[i].target_gross_utilization,
                parallel.points[i].target_gross_utilization);
      EXPECT_EQ(serial.points[i].result.unstable, parallel.points[i].result.unstable);
      EXPECT_EQ(serial.points[i].result.mean_response(),
                parallel.points[i].result.mean_response());
      EXPECT_EQ(serial.points[i].result.completed_jobs,
                parallel.points[i].result.completed_jobs);
      EXPECT_EQ(serial.points[i].result.busy_fraction,
                parallel.points[i].result.busy_fraction);
      EXPECT_EQ(serial.points[i].result.response_ci.halfwidth,
                parallel.points[i].result.response_ci.halfwidth);
    }
  }
}

TEST(RunnerDeterminism, SpeculativeSweepTruncatesLikeSerialEarlyStop) {
  // 1.5 is far beyond saturation: the serial loop stops there; the
  // speculative parallel sweep must truncate to the identical prefix even
  // though it also simulated the 0.30 point beyond the knee.
  PaperScenario scenario = scenario_for(PolicyKind::kGS);
  SweepConfig config;
  config.target_utilizations = {0.2, 1.5, 0.3};
  config.jobs_per_point = 2500;
  config.seed = 3;
  config.parallelism = 1;
  const auto serial = run_sweep(scenario, config);
  config.parallelism = 3;
  const auto parallel = run_sweep(scenario, config);

  ASSERT_EQ(serial.points.size(), 2u);
  ASSERT_EQ(parallel.points.size(), 2u);
  EXPECT_FALSE(parallel.points[0].result.unstable);
  EXPECT_TRUE(parallel.points[1].result.unstable);
  EXPECT_EQ(serial.points[0].result.mean_response(),
            parallel.points[0].result.mean_response());
  EXPECT_EQ(serial.max_stable_utilization(), parallel.max_stable_utilization());
}

TEST(SweepGridRegression, IndexGenerationDoesNotDriftOnFineGrids) {
  // `u += step` accumulation skipped the endpoint on this grid (error
  // ~n*eps*|u| beats the old step*1e-9 tolerance at |u|~100): 500 points
  // instead of 501.
  const auto fine = SweepConfig::grid(100.0, 100.5, 0.001);
  ASSERT_EQ(fine.size(), 501u);
  EXPECT_DOUBLE_EQ(fine.front(), 100.0);
  EXPECT_NEAR(fine.back(), 100.5, 1e-9);

  // Exactness on the paper's own grid.
  const auto paper = SweepConfig::grid(0.30, 0.80, 0.05);
  ASSERT_EQ(paper.size(), 11u);
  EXPECT_NEAR(paper.back(), 0.80, 1e-12);
  for (std::size_t i = 0; i < paper.size(); ++i) {
    EXPECT_DOUBLE_EQ(paper[i], 0.30 + static_cast<double>(i) * 0.05);
  }

  // Endpoint that is not exactly representable still lands within half a
  // step, never duplicated.
  const auto coarse = SweepConfig::grid(0.1, 0.9, 0.1);
  EXPECT_EQ(coarse.size(), 9u);
}

}  // namespace
}  // namespace mcsim
