#include <gtest/gtest.h>

#include "trace/empirical.hpp"
#include "trace/synthetic_log.hpp"
#include "trace/trace_stats.hpp"
#include "util/rng.hpp"
#include "workload/distributions.hpp"

namespace mcsim {
namespace {

TEST(PiecewiseLinear, SamplesStayWithinRange) {
  const auto d = PiecewiseLinearDistribution::from_samples({5.0, 1.0, 3.0, 9.0});
  EXPECT_DOUBLE_EQ(d.min_value(), 1.0);
  EXPECT_DOUBLE_EQ(d.max_value(), 9.0);
  Rng rng(1);
  for (int i = 0; i < 10000; ++i) {
    const double x = d.sample(rng);
    EXPECT_GE(x, 1.0);
    EXPECT_LE(x, 9.0);
  }
}

TEST(PiecewiseLinear, TwoPointsIsUniform) {
  const auto d = PiecewiseLinearDistribution::from_samples({0.0, 10.0});
  EXPECT_DOUBLE_EQ(d.mean(), 5.0);
  EXPECT_NEAR(d.variance(), 100.0 / 12.0, 1e-9);
}

TEST(PiecewiseLinear, SampleMomentsMatchAnalytic) {
  Rng source(7);
  std::vector<double> samples;
  for (int i = 0; i < 5000; ++i) samples.push_back(source.exponential_mean(100.0));
  const auto d = PiecewiseLinearDistribution::from_samples(samples);
  Rng rng(11);
  double sum = 0.0, sumsq = 0.0;
  constexpr int kN = 300000;
  for (int i = 0; i < kN; ++i) {
    const double x = d.sample(rng);
    sum += x;
    sumsq += x * x;
  }
  const double mean = sum / kN;
  EXPECT_NEAR(mean, d.mean(), 0.02 * d.mean());
  EXPECT_NEAR(sumsq / kN - mean * mean, d.variance(), 0.05 * d.variance());
  // And the interpolated ECDF preserves the source distribution's mean.
  EXPECT_NEAR(d.mean(), 100.0, 8.0);
}

TEST(PiecewiseLinear, ProducesNewValuesBetweenAtoms) {
  const auto d = PiecewiseLinearDistribution::from_samples({1.0, 2.0, 4.0});
  Rng rng(13);
  int strictly_between = 0;
  for (int i = 0; i < 1000; ++i) {
    const double x = d.sample(rng);
    if (x != 1.0 && x != 2.0 && x != 4.0) ++strictly_between;
  }
  EXPECT_GT(strictly_between, 950);  // unlike the discrete empirical
}

TEST(PiecewiseLinear, InvalidInputsThrow) {
  EXPECT_THROW(PiecewiseLinearDistribution::from_samples({}), std::invalid_argument);
  EXPECT_THROW(PiecewiseLinearDistribution::from_samples({1.0}), std::invalid_argument);
  EXPECT_THROW(PiecewiseLinearDistribution::from_samples({2.0, 2.0}), std::invalid_argument);
}

TEST(SmoothEmpirical, TracksDiscreteEmpiricalMoments) {
  SyntheticLogConfig config;
  config.num_jobs = 5000;
  config.seed = 9;
  const auto trace = generate_synthetic_das1_log(config);
  const auto discrete = empirical_service_distribution(trace.records, 900.0);
  const auto smooth = empirical_service_distribution_smooth(trace.records, 900.0);
  EXPECT_NEAR(smooth->mean(), discrete.mean(), 0.03 * discrete.mean());
  EXPECT_NEAR(smooth->cv(), discrete.cv(), 0.1);
  // Bounded by the cut.
  Rng rng(17);
  for (int i = 0; i < 5000; ++i) EXPECT_LE(smooth->sample(rng), 900.0);
}

}  // namespace
}  // namespace mcsim
