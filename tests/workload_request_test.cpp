#include <gtest/gtest.h>

#include <set>

#include "cluster/placement.hpp"
#include "core/engine.hpp"
#include "workload/das_workload.hpp"
#include "workload/request.hpp"
#include "workload/workload.hpp"

namespace mcsim {
namespace {

TEST(RequestType, NamesRoundTrip) {
  for (RequestType type : {RequestType::kOrdered, RequestType::kUnordered,
                           RequestType::kFlexible, RequestType::kTotal}) {
    EXPECT_EQ(parse_request_type(request_type_name(type)), type);
  }
  EXPECT_THROW(parse_request_type("rigid"), std::invalid_argument);
}

TEST(PlaceOrdered, RespectsNamedClusters) {
  const auto alloc = place_ordered({10, 8}, {2, 0}, {32, 32, 32, 32});
  ASSERT_TRUE(alloc.has_value());
  EXPECT_EQ((*alloc)[0].cluster, 2u);
  EXPECT_EQ((*alloc)[0].processors, 10u);
  EXPECT_EQ((*alloc)[1].cluster, 0u);
}

TEST(PlaceOrdered, FailsWhenNamedClusterFull) {
  // Unordered would fit (choose cluster 1), ordered may not.
  EXPECT_FALSE(place_ordered({10}, {0}, {4, 32}).has_value());
  EXPECT_TRUE(place_components({10}, {4, 32}).has_value());
}

TEST(PlaceOrdered, TwoComponentsOnSameClusterShareIdle) {
  EXPECT_TRUE(place_ordered({16, 16}, {0, 0}, {32, 0}).has_value());
  EXPECT_FALSE(place_ordered({17, 16}, {0, 0}, {32, 0}).has_value());
}

TEST(PlaceOrdered, MismatchedListsThrow) {
  EXPECT_THROW(place_ordered({10, 8}, {0}, {32, 32}), std::invalid_argument);
  EXPECT_THROW(place_ordered({10}, {7}, {32, 32}), std::invalid_argument);
}

TEST(PlaceFlexible, PrefersSingleCluster) {
  const auto alloc = place_flexible(20, {32, 8, 16, 4});
  ASSERT_TRUE(alloc.has_value());
  ASSERT_EQ(alloc->size(), 1u);
  EXPECT_EQ((*alloc)[0].cluster, 0u);
}

TEST(PlaceFlexible, SpreadsWhenNoSingleClusterFits) {
  const auto alloc = place_flexible(40, {32, 8, 16, 4});
  ASSERT_TRUE(alloc.has_value());
  std::uint32_t total = 0;
  std::set<ClusterId> used;
  for (const auto& p : *alloc) {
    total += p.processors;
    EXPECT_TRUE(used.insert(p.cluster).second);
  }
  EXPECT_EQ(total, 40u);
}

TEST(PlaceFlexible, FitsIffTotalIdleSuffices) {
  EXPECT_TRUE(place_flexible(60, {32, 8, 16, 4}).has_value());
  EXPECT_FALSE(place_flexible(61, {32, 8, 16, 4}).has_value());
}

TEST(PlaceFlexible, ZeroSizeThrows) {
  EXPECT_THROW(place_flexible(0, {32}), std::invalid_argument);
}

WorkloadConfig request_config(RequestType type) {
  WorkloadConfig config;
  config.size_distribution = das_s_128();
  config.service_distribution = das_t_900();
  config.component_limit = 16;
  config.num_clusters = 4;
  config.extension_factor = 1.25;
  config.arrival_rate = 0.05;
  config.request_type = type;
  return config;
}

TEST(OrderedWorkload, ComponentsGetDistinctClusters) {
  WorkloadGenerator gen(request_config(RequestType::kOrdered), 5);
  for (int i = 0; i < 2000; ++i) {
    const JobSpec job = gen.next_body();
    ASSERT_EQ(job.ordered_clusters.size(), job.components.size());
    std::set<std::uint32_t> clusters(job.ordered_clusters.begin(),
                                     job.ordered_clusters.end());
    EXPECT_EQ(clusters.size(), job.components.size());
    for (std::uint32_t c : job.ordered_clusters) EXPECT_LT(c, 4u);
    EXPECT_EQ(job.wide_area, job.components.size() > 1);
  }
}

TEST(OrderedWorkload, ClusterAssignmentIsUniform) {
  WorkloadGenerator gen(request_config(RequestType::kOrdered), 7);
  std::array<int, 4> first_cluster{};
  int multi = 0;
  for (int i = 0; i < 40000; ++i) {
    const JobSpec job = gen.next_body();
    if (job.components.size() > 1) {
      ++first_cluster[job.ordered_clusters[0]];
      ++multi;
    }
  }
  for (int count : first_cluster) {
    EXPECT_NEAR(static_cast<double>(count) / multi, 0.25, 0.02);
  }
}

TEST(FlexibleWorkload, SingleComponentCarriesTotal) {
  WorkloadGenerator gen(request_config(RequestType::kFlexible), 9);
  for (int i = 0; i < 2000; ++i) {
    const JobSpec job = gen.next_body();
    ASSERT_EQ(job.components.size(), 1u);
    EXPECT_EQ(job.components[0], job.total_size);
    EXPECT_EQ(job.wide_area, job.total_size > 32);
    if (job.wide_area) {
      EXPECT_NEAR(job.gross_service_time, job.service_time * 1.25, 1e-9);
    } else {
      EXPECT_DOUBLE_EQ(job.gross_service_time, job.service_time);
    }
  }
}

TEST(FlexibleWorkload, MeanExtendedSizeUsesThreshold) {
  const auto config = request_config(RequestType::kFlexible);
  // Independent recomputation.
  double expected = 0.0;
  const auto& dist = config.size_distribution;
  for (std::size_t i = 0; i < dist.values().size(); ++i) {
    expected += dist.probabilities()[i] * dist.values()[i] *
                (dist.values()[i] > 32.0 ? 1.25 : 1.0);
  }
  EXPECT_NEAR(config.mean_extended_size(), expected, 1e-12);
}

class RequestTypeSimulation : public ::testing::TestWithParam<RequestType> {};

TEST_P(RequestTypeSimulation, RunsStablyAtLowLoad) {
  SimulationConfig config;
  config.policy = PolicyKind::kGS;
  config.cluster_sizes = {32, 32, 32, 32};
  config.workload = request_config(GetParam());
  config.workload.arrival_rate = config.workload.rate_for_gross_utilization(0.3, 128);
  config.total_jobs = 6000;
  config.seed = 21;
  const auto result = run_simulation(config);
  EXPECT_FALSE(result.unstable);
  EXPECT_EQ(result.completed_jobs, 6000u);
}

INSTANTIATE_TEST_SUITE_P(Types, RequestTypeSimulation,
                         ::testing::Values(RequestType::kOrdered, RequestType::kUnordered,
                                           RequestType::kFlexible),
                         [](const ::testing::TestParamInfo<RequestType>& info) {
                           return request_type_name(info.param);
                         });

TEST(RequestTypeComparison, FlexibilityHelpsOrderingHurts) {
  // The known result from the authors' earlier studies [6,7]: at equal
  // load, flexible requests outperform unordered, which outperform ordered
  // (every constraint on placement costs packing opportunities).
  auto response_for = [](RequestType type) {
    SimulationConfig config;
    config.policy = PolicyKind::kGS;
    config.cluster_sizes = {32, 32, 32, 32};
    config.workload = request_config(type);
    config.workload.arrival_rate = config.workload.rate_for_gross_utilization(0.55, 128);
    config.total_jobs = 20000;
    config.seed = 33;
    const auto result = run_simulation(config);
    return result.unstable ? std::numeric_limits<double>::infinity()
                           : result.mean_response();
  };
  const double ordered = response_for(RequestType::kOrdered);
  const double unordered = response_for(RequestType::kUnordered);
  const double flexible = response_for(RequestType::kFlexible);
  EXPECT_LT(flexible, unordered);
  EXPECT_LT(unordered, ordered);
}

}  // namespace
}  // namespace mcsim
