// SimulationConfig::validate: every way a config can be internally
// inconsistent must fail loudly at construction, never silently misbehave.
#include <gtest/gtest.h>

#include <stdexcept>

#include "core/engine.hpp"
#include "exp/scenario.hpp"

namespace mcsim {
namespace {

// A known-good multicluster config to break one field at a time.
SimulationConfig good_config() {
  PaperScenario scenario;
  scenario.policy = PolicyKind::kLS;
  return make_paper_config(scenario, 0.4, 1000, /*seed=*/3);
}

void expect_invalid(const SimulationConfig& config, const char* what) {
  EXPECT_THROW(config.validate(), std::invalid_argument) << what;
  EXPECT_THROW(MulticlusterSimulation{config}, std::invalid_argument) << what;
}

TEST(ConfigValidation, GoodConfigPasses) {
  EXPECT_NO_THROW(good_config().validate());
  EXPECT_NO_THROW(MulticlusterSimulation{good_config()});
}

TEST(ConfigValidation, RejectsEmptyClusterList) {
  auto config = good_config();
  config.cluster_sizes.clear();
  expect_invalid(config, "no clusters");
}

TEST(ConfigValidation, RejectsZeroSizeCluster) {
  auto config = good_config();
  config.cluster_sizes[2] = 0;
  expect_invalid(config, "zero-size cluster");
}

TEST(ConfigValidation, RejectsMismatchedSpeeds) {
  auto config = good_config();
  config.cluster_speeds = {1.0, 1.0};  // 2 speeds for 4 clusters
  expect_invalid(config, "speeds/sizes mismatch");
}

TEST(ConfigValidation, RejectsNonPositiveSpeed) {
  auto config = good_config();
  config.cluster_speeds = {1.0, 1.0, 0.0, 1.0};
  expect_invalid(config, "zero speed");
}

TEST(ConfigValidation, AcceptsAlignedSpeeds) {
  auto config = good_config();
  config.cluster_speeds = {1.0, 0.5, 2.0, 1.0};
  EXPECT_NO_THROW(config.validate());
}

TEST(ConfigValidation, RejectsZeroJobs) {
  auto config = good_config();
  config.total_jobs = 0;
  expect_invalid(config, "zero jobs");
}

TEST(ConfigValidation, RejectsWarmupFractionOutOfRange) {
  auto config = good_config();
  config.warmup_fraction = 1.0;
  expect_invalid(config, "warmup == 1");
  config.warmup_fraction = -0.1;
  expect_invalid(config, "negative warmup");
}

TEST(ConfigValidation, RejectsZeroBatchCount) {
  auto config = good_config();
  config.batch_count = 0;
  expect_invalid(config, "zero batches");
}

TEST(ConfigValidation, RejectsNonPositiveArrivalRate) {
  auto config = good_config();
  config.workload.arrival_rate = 0.0;
  expect_invalid(config, "zero arrival rate");
}

TEST(ConfigValidation, RejectsExtensionFactorBelowOne) {
  auto config = good_config();
  config.workload.extension_factor = 0.9;
  expect_invalid(config, "extension < 1");
}

TEST(ConfigValidation, RejectsBacklogFractionOutOfRange) {
  auto config = good_config();
  config.instability_backlog_fraction = 1.5;
  expect_invalid(config, "backlog fraction > 1");
}

TEST(ConfigValidation, RejectsScOnMulticluster) {
  auto config = good_config();
  config.policy = PolicyKind::kSC;  // 4 clusters + split jobs: doubly wrong
  expect_invalid(config, "SC needs one cluster");
}

TEST(ConfigValidation, RejectsWorkloadClusterMismatch) {
  auto config = good_config();
  config.workload.num_clusters = 3;  // system has 4
  expect_invalid(config, "workload/system cluster mismatch");
}

TEST(ConfigValidation, ErrorMessageNamesTheField) {
  auto config = good_config();
  config.cluster_speeds = {1.0};
  try {
    config.validate();
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& error) {
    EXPECT_NE(std::string(error.what()).find("cluster_speeds"), std::string::npos)
        << error.what();
  }
}

}  // namespace
}  // namespace mcsim
