#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <set>

namespace mcsim {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng(11);
  double sum = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(-2.0, 5.0);
    EXPECT_GE(x, -2.0);
    EXPECT_LT(x, 5.0);
  }
}

TEST(Rng, UniformIntCoversRangeWithoutBias) {
  Rng rng(13);
  constexpr std::uint64_t kBuckets = 7;
  std::array<int, kBuckets> counts{};
  constexpr int kN = 70000;
  for (int i = 0; i < kN; ++i) counts[rng.uniform_int(kBuckets)]++;
  for (int c : counts) EXPECT_NEAR(c, kN / static_cast<int>(kBuckets), 600);
}

TEST(Rng, UniformIntOfOneIsZero) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.uniform_int(1), 0u);
}

TEST(Rng, ExponentialMeanMatches) {
  Rng rng(17);
  double sum = 0.0;
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) sum += rng.exponential_mean(3.0);
  EXPECT_NEAR(sum / kN, 3.0, 0.05);
}

TEST(Rng, ExponentialIsPositive) {
  Rng rng(19);
  for (int i = 0; i < 10000; ++i) EXPECT_GT(rng.exponential_mean(1.0), 0.0);
}

TEST(Rng, NormalMomentsMatchStandardNormal) {
  Rng rng(23);
  double sum = 0.0, sumsq = 0.0;
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) {
    const double z = rng.normal();
    sum += z;
    sumsq += z * z;
  }
  EXPECT_NEAR(sum / kN, 0.0, 0.01);
  EXPECT_NEAR(sumsq / kN, 1.0, 0.02);
}

TEST(Rng, JumpDecorrelatesStreams) {
  Rng a(99);
  Rng b(99);
  b.jump();
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(DeriveStreamSeed, DistinctNamesGiveDistinctSeeds) {
  std::set<std::uint64_t> seeds;
  for (const char* name : {"arrivals", "sizes", "services", "queues", "a", "b", "ab"}) {
    seeds.insert(derive_stream_seed(1234, name));
  }
  EXPECT_EQ(seeds.size(), 7u);
}

TEST(DeriveStreamSeed, DependsOnMasterSeed) {
  EXPECT_NE(derive_stream_seed(1, "arrivals"), derive_stream_seed(2, "arrivals"));
}

TEST(MakeStream, ReproducibleByName) {
  Rng a = make_stream(55, "sizes");
  Rng b = make_stream(55, "sizes");
  for (int i = 0; i < 10; ++i) EXPECT_EQ(a(), b());
}

TEST(Splitmix64, KnownSequenceAdvancesState) {
  std::uint64_t s1 = 0;
  std::uint64_t s2 = 0;
  const auto a = splitmix64(s1);
  const auto b = splitmix64(s1);
  EXPECT_NE(a, b);
  // Same starting state gives the same first output.
  EXPECT_EQ(a, splitmix64(s2));
}

}  // namespace
}  // namespace mcsim
