#include "policy/queue.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cstdlib>
#include <new>

#include "test_support.hpp"

// ---------------------------------------------------------------------------
// Global-allocation probe. queue.hpp documents that push/pop/remove_at and
// the priority-insert comparator path move plain JobPtr handles and never
// touch the allocator; this TU replaces global operator new/delete with
// counting versions so ReorderingNeverTouchesAllocator can pin that claim.
// The counter covers the whole binary, so probed regions must contain only
// queue calls (no gtest assertions, no job construction).
// ---------------------------------------------------------------------------
namespace {
std::size_t g_allocation_count = 0;
}  // namespace

void* operator new(std::size_t size) {
  ++g_allocation_count;
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace mcsim {
namespace {

using testing::make_job;

TEST(JobQueue, FifoOrder) {
  JobQueue queue;
  queue.push(make_job(1, {4}));
  queue.push(make_job(2, {8}));
  queue.push(make_job(3, {2}));
  EXPECT_EQ(queue.pop()->spec.id, 1u);
  EXPECT_EQ(queue.pop()->spec.id, 2u);
  EXPECT_EQ(queue.pop()->spec.id, 3u);
  EXPECT_TRUE(queue.empty());
}

TEST(JobQueue, FrontPeeksWithoutRemoving) {
  JobQueue queue;
  queue.push(make_job(1, {4}));
  EXPECT_EQ(queue.front()->spec.id, 1u);
  EXPECT_EQ(queue.size(), 1u);
}

TEST(JobQueue, EnableDisable) {
  JobQueue queue;
  EXPECT_TRUE(queue.enabled());
  queue.disable();
  EXPECT_FALSE(queue.enabled());
  queue.enable();
  EXPECT_TRUE(queue.enabled());
}

TEST(JobQueue, EmptyAccessThrows) {
  JobQueue queue;
  EXPECT_THROW(queue.front(), std::invalid_argument);
  EXPECT_THROW(queue.pop(), std::invalid_argument);
}

TEST(JobQueue, NullPushThrows) {
  JobQueue queue;
  EXPECT_THROW(queue.push(nullptr), std::invalid_argument);
}

TEST(JobQueue, CountsTotalEnqueued) {
  JobQueue queue;
  queue.push(make_job(1, {1}));
  queue.push(make_job(2, {1}));
  queue.pop();
  EXPECT_EQ(queue.total_enqueued(), 2u);
  EXPECT_EQ(queue.size(), 1u);
}

TEST(JobQueue, ReorderingNeverTouchesAllocator) {
  JobQueue queue;
  // Smallest-first: every push lands somewhere in the middle of the deque,
  // exercising the priority-insert walk, not just push_back.
  queue.set_order([](const Job& a, const Job& b) {
    return a.spec.total_size < b.spec.total_size;
  });

  // Jobs are made up front: make_job's arena may allocate, the queue must not.
  std::array<JobPtr, 12> jobs{};
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    // Sizes interleave (12, 1, 11, 2, ...) so inserts hit both ends and the
    // middle of the current order.
    const std::uint32_t size = (i % 2 == 0) ? static_cast<std::uint32_t>(12 - i / 2)
                                            : static_cast<std::uint32_t>(1 + i / 2);
    jobs[i] = make_job(i + 1, {size});
  }

  // Warm-up round: lets the deque grab whatever block structure this
  // push/insert/pop pattern needs, outside the probed region.
  for (JobPtr job : jobs) queue.push(job);
  while (!queue.empty()) queue.pop();

  std::array<JobPtr, 12> popped{};
  const std::size_t allocations_before = g_allocation_count;
  for (JobPtr job : jobs) queue.push(job);
  (void)queue.front();
  (void)queue.at(queue.size() - 1);
  // remove_at + re-insert round-trips a middle element (the backfill path).
  queue.push(queue.remove_at(5));
  for (std::size_t i = 0; i < popped.size(); ++i) popped[i] = queue.pop();
  const std::size_t allocations_after = g_allocation_count;

  EXPECT_EQ(allocations_after, allocations_before)
      << "queue reordering reached the allocator";
  // And the reorder actually happened: served smallest-first.
  for (std::size_t i = 1; i < popped.size(); ++i) {
    EXPECT_LE(popped[i - 1]->spec.total_size, popped[i]->spec.total_size);
  }
}

TEST(Job, SpecDerivedAccessors) {
  const auto multi = make_job(1, {16, 16});
  EXPECT_TRUE(multi->spec.is_multi_component());
  EXPECT_EQ(multi->spec.component_count(), 2u);
  EXPECT_EQ(multi->spec.total_size, 32u);
  EXPECT_FALSE(multi->started());

  const auto single = make_job(2, {5});
  EXPECT_FALSE(single->spec.is_multi_component());
}

}  // namespace
}  // namespace mcsim
