#include "core/queue.hpp"

#include <gtest/gtest.h>

#include "test_support.hpp"

namespace mcsim {
namespace {

using testing::make_job;

TEST(JobQueue, FifoOrder) {
  JobQueue queue;
  queue.push(make_job(1, {4}));
  queue.push(make_job(2, {8}));
  queue.push(make_job(3, {2}));
  EXPECT_EQ(queue.pop()->spec.id, 1u);
  EXPECT_EQ(queue.pop()->spec.id, 2u);
  EXPECT_EQ(queue.pop()->spec.id, 3u);
  EXPECT_TRUE(queue.empty());
}

TEST(JobQueue, FrontPeeksWithoutRemoving) {
  JobQueue queue;
  queue.push(make_job(1, {4}));
  EXPECT_EQ(queue.front()->spec.id, 1u);
  EXPECT_EQ(queue.size(), 1u);
}

TEST(JobQueue, EnableDisable) {
  JobQueue queue;
  EXPECT_TRUE(queue.enabled());
  queue.disable();
  EXPECT_FALSE(queue.enabled());
  queue.enable();
  EXPECT_TRUE(queue.enabled());
}

TEST(JobQueue, EmptyAccessThrows) {
  JobQueue queue;
  EXPECT_THROW(queue.front(), std::invalid_argument);
  EXPECT_THROW(queue.pop(), std::invalid_argument);
}

TEST(JobQueue, NullPushThrows) {
  JobQueue queue;
  EXPECT_THROW(queue.push(nullptr), std::invalid_argument);
}

TEST(JobQueue, CountsTotalEnqueued) {
  JobQueue queue;
  queue.push(make_job(1, {1}));
  queue.push(make_job(2, {1}));
  queue.pop();
  EXPECT_EQ(queue.total_enqueued(), 2u);
  EXPECT_EQ(queue.size(), 1u);
}

TEST(Job, SpecDerivedAccessors) {
  const auto multi = make_job(1, {16, 16});
  EXPECT_TRUE(multi->spec.is_multi_component());
  EXPECT_EQ(multi->spec.component_count(), 2u);
  EXPECT_EQ(multi->spec.total_size, 32u);
  EXPECT_FALSE(multi->started());

  const auto single = make_job(2, {5});
  EXPECT_FALSE(single->spec.is_multi_component());
}

}  // namespace
}  // namespace mcsim
