// parse_request is THE trust boundary of the experiment daemon: every
// malformed, mistyped or hostile request line must surface as a
// ProtocolError with a stable machine-readable code (never a crash), and
// the sandbox rule must pin network-supplied trace paths under the
// server's root. The response builders are pinned too — compact_json must
// preserve number spellings verbatim, which is what keeps a manifest
// bit-exact through the wire.
#include "serve/protocol.hpp"

#include <gtest/gtest.h>

#include <string>

#include "exp/scenario_spec.hpp"
#include "obs/json_reader.hpp"

namespace mcsim::serve {
namespace {

/// The error code parse_request assigns to `line` ("" = accepted).
std::string code_of(const std::string& line, const std::string& root = "") {
  try {
    parse_request(line, root);
  } catch (const ProtocolError& error) {
    return error.code();
  }
  return "";
}

TEST(ServeProtocol, MalformedJsonIsBadJson) {
  EXPECT_EQ(code_of("{nope"), kErrBadJson);
  EXPECT_EQ(code_of(""), kErrBadJson);
  EXPECT_EQ(code_of("{\"op\":\"stats\"} trailing"), kErrBadJson);
}

TEST(ServeProtocol, NonObjectRequestsAreBadRequests) {
  EXPECT_EQ(code_of("[1,2,3]"), kErrBadRequest);
  EXPECT_EQ(code_of("42"), kErrBadRequest);
  EXPECT_EQ(code_of("\"submit\""), kErrBadRequest);
}

TEST(ServeProtocol, OpFieldIsRequiredAndMustBeAString) {
  EXPECT_EQ(code_of("{}"), kErrBadRequest);
  EXPECT_EQ(code_of("{\"op\":7}"), kErrBadRequest);
}

TEST(ServeProtocol, UnknownOpNamesTheOffender) {
  try {
    parse_request("{\"op\":\"frobnicate\"}", "");
    FAIL() << "expected ProtocolError";
  } catch (const ProtocolError& error) {
    EXPECT_EQ(error.code(), kErrBadRequest);
    EXPECT_NE(std::string(error.what()).find("frobnicate"), std::string::npos);
  }
}

TEST(ServeProtocol, SubmitNeedsASpecObject) {
  EXPECT_EQ(code_of("{\"op\":\"submit\"}"), kErrBadRequest);
  EXPECT_EQ(code_of("{\"op\":\"submit\",\"spec\":[]}"), kErrBadRequest);
}

TEST(ServeProtocol, InvalidScenarioSpecsAreStructuredErrors) {
  // Unknown scenario keys are typo protection in scenario_from_json; the
  // protocol maps that to invalid-scenario, not a parse crash.
  EXPECT_EQ(code_of("{\"op\":\"submit\",\"spec\":{\"bogus_key\":1}}"),
            kErrInvalidScenario);
}

TEST(ServeProtocol, OnlyPointModeIsServed) {
  EXPECT_EQ(code_of("{\"op\":\"submit\",\"spec\":{\"run\":{\"mode\":\"sweep\"}}}"),
            kErrInvalidScenario);
  EXPECT_EQ(
      code_of("{\"op\":\"submit\",\"spec\":{\"run\":{\"mode\":\"saturation\"}}}"),
      kErrInvalidScenario);
}

TEST(ServeProtocol, WholeFileHookIsRejected) {
  EXPECT_EQ(code_of("{\"op\":\"submit\",\"spec\":{\"workload\":{"
                    "\"path\":\"log.swf\",\"whole_file\":true}}}",
                    "/sandbox"),
            kErrInvalidScenario);
}

TEST(ServeProtocol, SubmitParsesSpecAndName) {
  const Request request = parse_request(
      "{\"op\":\"submit\",\"name\":\"probe\",\"spec\":{\"policy\":{\"kind\":"
      "\"LS\"},\"run\":{\"utilization\":0.7,\"sim_jobs\":500,\"seed\":9}}}",
      "");
  EXPECT_EQ(request.op, Op::kSubmit);
  EXPECT_EQ(request.name, "probe");
  EXPECT_EQ(request.spec.policy, PolicyKind::kLS);
  EXPECT_DOUBLE_EQ(request.spec.utilization, 0.7);
  EXPECT_EQ(request.spec.sim_jobs, 500u);
  EXPECT_EQ(request.spec.seed, 9u);
}

TEST(ServeProtocol, SubmitNameMustBeAString) {
  EXPECT_EQ(code_of("{\"op\":\"submit\",\"name\":1,\"spec\":{}}"),
            kErrBadRequest);
}

TEST(ServeProtocol, RunOpsNeedANumericId) {
  for (const char* op : {"status", "result", "cancel"}) {
    const std::string base = std::string("{\"op\":\"") + op + "\"";
    EXPECT_EQ(code_of(base + "}"), kErrBadRequest) << op;
    EXPECT_EQ(code_of(base + ",\"id\":\"3\"}"), kErrBadRequest) << op;
    EXPECT_EQ(code_of(base + ",\"id\":-5}"), kErrBadRequest) << op;
    EXPECT_EQ(code_of(base + ",\"id\":3}"), "") << op;
  }
  EXPECT_EQ(parse_request("{\"op\":\"status\",\"id\":3}", "").id, 3u);
}

TEST(ServeProtocol, ResultWaitDefaultsTrue) {
  EXPECT_TRUE(parse_request("{\"op\":\"result\",\"id\":1}", "").wait);
  EXPECT_FALSE(
      parse_request("{\"op\":\"result\",\"id\":1,\"wait\":false}", "").wait);
  EXPECT_EQ(code_of("{\"op\":\"result\",\"id\":1,\"wait\":\"yes\"}"),
            kErrBadRequest);
}

TEST(ServeProtocol, StatsAndShutdownTakeNoFields) {
  EXPECT_EQ(parse_request("{\"op\":\"stats\"}", "").op, Op::kStats);
  EXPECT_EQ(parse_request("{\"op\":\"shutdown\"}", "").op, Op::kShutdown);
}

// -- the sandbox rule -------------------------------------------------------

TEST(ServeSandbox, EmptyRootRejectsEveryTracePath) {
  EXPECT_THROW(sandboxed_path("", "log.swf"), ProtocolError);
  EXPECT_EQ(code_of("{\"op\":\"submit\",\"spec\":{\"workload\":{\"path\":"
                    "\"log.swf\"}}}"),
            kErrSandbox);
}

TEST(ServeSandbox, AbsolutePathsAreRejected) {
  EXPECT_THROW(sandboxed_path("/sandbox", "/etc/passwd"), ProtocolError);
}

TEST(ServeSandbox, DotDotEscapesAreRejected) {
  EXPECT_THROW(sandboxed_path("/sandbox", "../secret.swf"), ProtocolError);
  EXPECT_THROW(sandboxed_path("/sandbox", "a/../../secret.swf"), ProtocolError);
  EXPECT_THROW(sandboxed_path("/sandbox", ".."), ProtocolError);
}

TEST(ServeSandbox, ContainedPathsResolveUnderTheRoot) {
  EXPECT_EQ(sandboxed_path("/sandbox", "traces/log.swf"),
            "/sandbox/traces/log.swf");
  // Interior ".." that stays inside the root is fine after normalization.
  EXPECT_EQ(sandboxed_path("/sandbox", "a/../log.swf"), "/sandbox/log.swf");
}

TEST(ServeSandbox, RootSpellingDoesNotMatter) {
  // "." (the CLI default) and a trailing slash must behave like any root.
  EXPECT_EQ(sandboxed_path(".", "traces/log.swf"), "traces/log.swf");
  EXPECT_EQ(sandboxed_path("/sandbox/", "log.swf"), "/sandbox/log.swf");
}

TEST(ServeSandbox, SubmitRewritesTracePathsAgainstTheRoot) {
  const Request request = parse_request(
      "{\"op\":\"submit\",\"spec\":{\"workload\":{\"type\":\"trace\","
      "\"path\":\"logs/das2.swf\"}}}",
      "/srv/traces");
  EXPECT_EQ(request.spec.trace_path, "/srv/traces/logs/das2.swf");
}

// -- response builders ------------------------------------------------------

TEST(ServeResponses, ErrorResponseIsParseableAndEscaped) {
  const std::string line = error_response(kErrBadJson, "broke \"here\"\nbadly");
  const obs::JsonValue parsed = obs::parse_json(line);
  EXPECT_FALSE(parsed.find("ok")->as_bool());
  const obs::JsonValue* error = parsed.find("error");
  ASSERT_NE(error, nullptr);
  EXPECT_EQ(error->find("code")->as_string(), kErrBadJson);
  EXPECT_EQ(error->find("message")->as_string(), "broke \"here\"\nbadly");
  EXPECT_EQ(line.find('\n'), std::string::npos) << "responses are one line";
}

TEST(ServeResponses, OkResponseWithAndWithoutBody) {
  EXPECT_EQ(ok_response(""), "{\"ok\":true}");
  const obs::JsonValue parsed = obs::parse_json(ok_response("\"id\":7"));
  EXPECT_TRUE(parsed.find("ok")->as_bool());
  EXPECT_EQ(parsed.find("id")->as_uint(), 7u);
}

TEST(ServeResponses, CompactJsonPreservesNumberSpellings) {
  const std::string source =
      "{\"x\":248.71909290579251,\"e\":1e-3,\"neg\":-0.0,\"i\":30000}";
  const obs::JsonValue parsed = obs::parse_json(source);
  EXPECT_EQ(compact_json(parsed), source);
  // Idempotent through another parse/serialize hop — the property the
  // served-manifest bit-exactness contract rests on.
  EXPECT_EQ(compact_json(obs::parse_json(compact_json(parsed))), source);
}

TEST(ServeResponses, CompactJsonCoversEveryKind) {
  const std::string source =
      "{\"a\":[1,true,null,\"s\"],\"o\":{\"k\":false},\"s\":\"q\\\"q\"}";
  EXPECT_EQ(compact_json(obs::parse_json(source)), source);
}

TEST(ServeResponses, JsonStringEscapes) {
  EXPECT_EQ(json_string("plain"), "\"plain\"");
  EXPECT_EQ(json_string("a\"b"), "\"a\\\"b\"");
}

}  // namespace
}  // namespace mcsim::serve
