#include "sim/calendar.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "util/rng.hpp"

namespace mcsim {
namespace {

TEST(Calendar, PopsInTimeOrder) {
  Calendar cal;
  cal.push(3.0);
  cal.push(1.0);
  cal.push(2.0);
  EXPECT_DOUBLE_EQ(cal.pop().time, 1.0);
  EXPECT_DOUBLE_EQ(cal.pop().time, 2.0);
  EXPECT_DOUBLE_EQ(cal.pop().time, 3.0);
  EXPECT_TRUE(cal.empty());
}

TEST(Calendar, SimultaneousEventsFifoBySequence) {
  Calendar cal;
  const EventId first = cal.push(5.0);
  const EventId second = cal.push(5.0);
  const EventId third = cal.push(5.0);
  EXPECT_EQ(cal.pop().id, first);
  EXPECT_EQ(cal.pop().id, second);
  EXPECT_EQ(cal.pop().id, third);
}

TEST(Calendar, NextTimePeeksWithoutPopping) {
  Calendar cal;
  cal.push(7.0);
  EXPECT_DOUBLE_EQ(cal.next_time(), 7.0);
  EXPECT_EQ(cal.size(), 1u);
}

TEST(Calendar, CancelRemovesEvent) {
  Calendar cal;
  const EventId a = cal.push(1.0);
  cal.push(2.0);
  EXPECT_TRUE(cal.cancel(a));
  EXPECT_EQ(cal.size(), 1u);
  EXPECT_DOUBLE_EQ(cal.pop().time, 2.0);
}

TEST(Calendar, DoubleCancelFails) {
  Calendar cal;
  const EventId a = cal.push(1.0);
  EXPECT_TRUE(cal.cancel(a));
  EXPECT_FALSE(cal.cancel(a));
}

TEST(Calendar, CancelUnknownIdFails) {
  Calendar cal;
  EXPECT_FALSE(cal.cancel(kNoEvent));
  EXPECT_FALSE(cal.cancel(9999));
}

TEST(Calendar, CancelHeadThenPeek) {
  Calendar cal;
  const EventId head = cal.push(1.0);
  cal.push(5.0);
  cal.cancel(head);
  EXPECT_DOUBLE_EQ(cal.next_time(), 5.0);
}

TEST(Calendar, PopOnEmptyThrows) {
  Calendar cal;
  EXPECT_THROW(cal.pop(), std::invalid_argument);
  EXPECT_THROW(cal.next_time(), std::invalid_argument);
}

TEST(Calendar, ClearEmptiesEverything) {
  Calendar cal;
  cal.push(1.0);
  cal.push(2.0);
  cal.clear();
  EXPECT_TRUE(cal.empty());
  EXPECT_EQ(cal.size(), 0u);
}

TEST(Calendar, CancelAfterPopFails) {
  Calendar cal;
  const EventId a = cal.push(1.0);
  cal.push(2.0);
  EXPECT_EQ(cal.pop().id, a);
  // The id already fired: cancelling it must fail and must not disturb the
  // remaining live event.
  EXPECT_FALSE(cal.cancel(a));
  EXPECT_EQ(cal.size(), 1u);
  EXPECT_DOUBLE_EQ(cal.pop().time, 2.0);
}

TEST(Calendar, StaleIdCannotCancelRecycledSlot) {
  Calendar cal;
  const EventId old_id = cal.push(1.0);
  cal.pop();
  // The slot is recycled by the next push, but under a new generation: the
  // stale id must not cancel the new event.
  const EventId new_id = cal.push(3.0);
  EXPECT_NE(old_id, new_id);
  EXPECT_FALSE(cal.cancel(old_id));
  EXPECT_EQ(cal.size(), 1u);
  EXPECT_TRUE(cal.cancel(new_id));
  EXPECT_TRUE(cal.empty());
}

TEST(Calendar, IdsFromBeforeClearStayDead) {
  Calendar cal;
  const EventId a = cal.push(1.0);
  const EventId b = cal.push(2.0);
  cal.clear();
  const EventId c = cal.push(5.0);
  EXPECT_FALSE(cal.cancel(a));
  EXPECT_FALSE(cal.cancel(b));
  EXPECT_EQ(cal.size(), 1u);
  EXPECT_EQ(cal.pop().id, c);
}

TEST(Calendar, CancelledEntriesDoNotResurfaceAfterSlotReuse) {
  Calendar cal;
  // Cancel an event whose stale heap entry is still buried, then reuse its
  // slot for a later event: the buried entry must be skipped, the new one
  // must fire.
  cal.push(1.0);
  const EventId cancelled = cal.push(2.0);
  cal.push(4.0);
  EXPECT_TRUE(cal.cancel(cancelled));
  const EventId reused = cal.push(3.0);
  EXPECT_DOUBLE_EQ(cal.pop().time, 1.0);
  const auto next = cal.pop();
  EXPECT_DOUBLE_EQ(next.time, 3.0);
  EXPECT_EQ(next.id, reused);
  EXPECT_DOUBLE_EQ(cal.pop().time, 4.0);
  EXPECT_TRUE(cal.empty());
}

TEST(Calendar, StressRandomOrderIsSorted) {
  Calendar cal;
  Rng rng(101);
  constexpr int kN = 5000;
  for (int i = 0; i < kN; ++i) cal.push(rng.uniform(0.0, 1000.0));
  double last = -1.0;
  int popped = 0;
  while (!cal.empty()) {
    const auto entry = cal.pop();
    EXPECT_GE(entry.time, last);
    last = entry.time;
    ++popped;
  }
  EXPECT_EQ(popped, kN);
}

TEST(Calendar, StressWithInterleavedCancels) {
  Calendar cal;
  Rng rng(103);
  std::vector<EventId> live;
  for (int i = 0; i < 2000; ++i) live.push_back(cal.push(rng.uniform(0.0, 100.0)));
  // Cancel every third event.
  std::size_t cancelled = 0;
  for (std::size_t i = 0; i < live.size(); i += 3) {
    EXPECT_TRUE(cal.cancel(live[i]));
    ++cancelled;
  }
  EXPECT_EQ(cal.size(), live.size() - cancelled);
  double last = -1.0;
  std::size_t popped = 0;
  while (!cal.empty()) {
    const auto entry = cal.pop();
    EXPECT_GE(entry.time, last);
    // Popped events must not be cancelled ones.
    EXPECT_NE((std::find(live.begin(), live.end(), entry.id) - live.begin()) % 3, 0);
    last = entry.time;
    ++popped;
  }
  EXPECT_EQ(popped, live.size() - cancelled);
}

}  // namespace
}  // namespace mcsim
