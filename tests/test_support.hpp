// Shared helpers for mcsim tests: a fake SchedulerContext that tracks
// started jobs on a real Multicluster, and JobSpec/Job builders.
#pragma once

#include <algorithm>
#include <cstdint>
#include <deque>
#include <vector>

#include <memory>

#include "core/job.hpp"
#include "policy/composed_scheduler.hpp"
#include "policy/pipeline.hpp"
#include "policy/scheduler.hpp"

namespace mcsim::testing {

/// SchedulerContext stand-in: applies allocations to a real Multicluster
/// and records the start order, so policy tests can drive the protocol
/// manually (submit jobs, complete them, inspect what started when).
class FakeContext : public SchedulerContext {
 public:
  explicit FakeContext(std::vector<std::uint32_t> cluster_sizes)
      : system_(cluster_sizes) {}

  [[nodiscard]] const Multicluster& system() const override { return system_; }
  [[nodiscard]] double now() const override { return clock; }

  void start_job(JobPtr job, Allocation allocation) override {
    job->allocation = std::move(allocation);
    job->start_time = clock;
    system_.allocate(job->allocation);
    started.push_back(job);
  }

  /// Complete a started job: release its processors and notify the policy.
  void finish(const JobPtr& job, Scheduler& scheduler) {
    clock = std::max(clock, job->start_time + job->spec.gross_service_time);
    system_.release(job->allocation);
    scheduler.on_departure();
  }

  std::vector<JobPtr> started;
  double clock = 0.0;

 private:
  Multicluster system_;
};

/// A job with explicit components (non-increasing) and an origin queue.
/// Jobs live in a per-process arena (a deque never invalidates element
/// addresses) so tests can hold plain JobPtr handles, mirroring how the
/// engine's JobPool hands out stable pointers.
inline JobPtr make_job(std::uint64_t id, std::vector<std::uint32_t> components,
                       std::uint32_t origin_queue = 0, double service = 100.0) {
  JobSpec spec;
  spec.id = id;
  spec.arrival_time = 0.0;
  spec.components = std::move(components);
  spec.total_size = 0;
  for (std::uint32_t c : spec.components) spec.total_size += c;
  spec.service_time = service;
  spec.wide_area = spec.components.size() > 1;
  spec.gross_service_time = spec.wide_area ? service * 1.25 : service;
  spec.origin_queue = origin_queue;
  static std::deque<Job> arena;
  arena.emplace_back(std::move(spec));
  return &arena.back();
}

/// A paper policy as its canonical pipeline composition — the successor to
/// constructing the historical PolicyGs/PolicyLs/PolicyLp classes directly.
/// Returns the concrete type so tests can reach diagnostics like
/// global_queue_length().
inline std::unique_ptr<ComposedScheduler> make_policy(
    PolicyKind kind, SchedulerContext& context,
    PlacementRule placement = PlacementRule::kWorstFit,
    BackfillMode backfill = BackfillMode::kNone,
    QueueDiscipline discipline = QueueDiscipline::kFcfs) {
  const PipelineSpec pipeline = expand_policy(kind, placement, backfill, discipline);
  return std::make_unique<ComposedScheduler>(context, pipeline,
                                             scheduler_display_name(kind, pipeline));
}

}  // namespace mcsim::testing
