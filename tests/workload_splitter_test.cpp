#include "workload/job_splitter.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <tuple>

namespace mcsim {
namespace {

TEST(ComponentCount, PaperWorkedExampleSize64) {
  // Sect. 3.3: the size-64 job (19% of the log) under the three limits.
  EXPECT_EQ(component_count(64, 16, 4), 4u);
  EXPECT_EQ(component_count(64, 24, 4), 3u);
  EXPECT_EQ(component_count(64, 32, 4), 2u);
}

TEST(SplitJob, PaperWorkedExampleSize64) {
  EXPECT_EQ(split_job(64, 16, 4), (std::vector<std::uint32_t>{16, 16, 16, 16}));
  EXPECT_EQ(split_job(64, 24, 4), (std::vector<std::uint32_t>{22, 21, 21}));
  EXPECT_EQ(split_job(64, 32, 4), (std::vector<std::uint32_t>{32, 32}));
}

TEST(SplitJob, SmallJobsStaySingleComponent) {
  EXPECT_EQ(split_job(1, 16, 4), (std::vector<std::uint32_t>{1}));
  EXPECT_EQ(split_job(16, 16, 4), (std::vector<std::uint32_t>{16}));
  EXPECT_EQ(split_job(24, 24, 4), (std::vector<std::uint32_t>{24}));
  EXPECT_EQ(split_job(32, 32, 4), (std::vector<std::uint32_t>{32}));
}

TEST(SplitJob, JustOverTheLimitSplitsInTwo) {
  EXPECT_EQ(split_job(17, 16, 4), (std::vector<std::uint32_t>{9, 8}));
  EXPECT_EQ(split_job(25, 24, 4), (std::vector<std::uint32_t>{13, 12}));
  EXPECT_EQ(split_job(33, 32, 4), (std::vector<std::uint32_t>{17, 16}));
}

TEST(SplitJob, ClusterCountCapsComponents) {
  // Size 128 with limit 16 would want 8 components but is capped at 4
  // clusters, so components exceed the limit (paper Sect. 2.4).
  EXPECT_EQ(split_job(128, 16, 4), (std::vector<std::uint32_t>{32, 32, 32, 32}));
  EXPECT_EQ(split_job(100, 16, 4), (std::vector<std::uint32_t>{25, 25, 25, 25}));
}

TEST(SplitJob, FullSystemJob) {
  EXPECT_EQ(split_job(128, 32, 4), (std::vector<std::uint32_t>{32, 32, 32, 32}));
}

TEST(SplitJob, SingleClusterSystemNeverSplits) {
  EXPECT_EQ(split_job(100, 16, 1), (std::vector<std::uint32_t>{100}));
}

TEST(SplitJob, InvalidArgumentsThrow) {
  EXPECT_THROW(split_job(0, 16, 4), std::invalid_argument);
  EXPECT_THROW(split_job(10, 0, 4), std::invalid_argument);
  EXPECT_THROW(split_job(10, 16, 0), std::invalid_argument);
}

// ---- Property-based sweep over all sizes x limits x cluster counts. ----

class SplitterProperty
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, std::uint32_t>> {};

TEST_P(SplitterProperty, InvariantsHoldForAllSizes) {
  const auto [limit, clusters] = GetParam();
  for (std::uint32_t size = 1; size <= 128; ++size) {
    const auto components = split_job(size, limit, clusters);
    const std::uint32_t n = component_count(size, limit, clusters);
    ASSERT_EQ(components.size(), n) << "size=" << size;

    // Components sum to the total size.
    const std::uint32_t sum = std::accumulate(components.begin(), components.end(), 0u);
    EXPECT_EQ(sum, size) << "size=" << size;

    // Non-increasing and as equal as possible (max - min <= 1).
    for (std::size_t i = 1; i < components.size(); ++i) {
      EXPECT_GE(components[i - 1], components[i]) << "size=" << size;
    }
    EXPECT_LE(components.front() - components.back(), 1u) << "size=" << size;

    // All components positive.
    EXPECT_GT(components.back(), 0u) << "size=" << size;

    // Component count never exceeds the cluster count.
    EXPECT_LE(components.size(), clusters) << "size=" << size;

    // The limit is respected unless the cluster cap forced the split short.
    const bool capped = (size + limit - 1) / limit > clusters;
    if (!capped) {
      EXPECT_LE(components.front(), limit) << "size=" << size;
    }

    // Minimality: one fewer component would violate the limit (when not
    // already a single component and not capped).
    if (n > 1 && !capped) {
      EXPECT_GT((size + n - 2) / (n - 1), limit) << "size=" << size;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    LimitsAndClusters, SplitterProperty,
    ::testing::Combine(::testing::Values(8u, 16u, 24u, 32u, 64u),
                       ::testing::Values(2u, 4u, 5u, 8u)),
    [](const ::testing::TestParamInfo<std::tuple<std::uint32_t, std::uint32_t>>& info) {
      return "limit" + std::to_string(std::get<0>(info.param)) + "_clusters" +
             std::to_string(std::get<1>(info.param));
    });

TEST(SplitJob, Sect33FitArgument) {
  // The packing argument of Sect. 3.3: in an empty 4x32 system with one
  // size-64 job placed, a second size-64 job still fits under limits 16 and
  // 32 but NOT under limit 24.
  auto remaining_after = [](const std::vector<std::uint32_t>& components) {
    std::vector<std::uint32_t> idle{32, 32, 32, 32};
    for (std::size_t i = 0; i < components.size(); ++i) idle[i] -= components[i];
    return idle;
  };
  auto fits = [](std::vector<std::uint32_t> components, std::vector<std::uint32_t> idle) {
    std::sort(idle.rbegin(), idle.rend());
    for (std::size_t i = 0; i < components.size(); ++i) {
      if (components[i] > idle[i]) return false;
    }
    return true;
  };
  EXPECT_TRUE(fits(split_job(64, 16, 4), remaining_after(split_job(64, 16, 4))));
  EXPECT_TRUE(fits(split_job(64, 32, 4), remaining_after(split_job(64, 32, 4))));
  EXPECT_FALSE(fits(split_job(64, 24, 4), remaining_after(split_job(64, 24, 4))));
}

}  // namespace
}  // namespace mcsim
