// TraceEvent layout, the RingRecorder flight recorder, emitters, and the
// binary dump format.
#include <gtest/gtest.h>

#include <sstream>

#include "obs/event.hpp"
#include "obs/ring_recorder.hpp"

namespace mcsim::obs {
namespace {

TraceEvent make_event(std::uint64_t job, EventKind kind, double time) {
  TraceEvent event;
  event.time = time;
  event.value = time * 2.0;
  event.job = job;
  event.size = 16;
  event.kind = kind;
  event.components = 4;
  event.cluster = 2;
  return event;
}

TEST(TraceEvent, IsCompactAndTriviallyCopyable) {
  EXPECT_EQ(sizeof(TraceEvent), 32u);
  EXPECT_TRUE(std::is_trivially_copyable_v<TraceEvent>);
}

TEST(TraceEvent, KindNamesAreStable) {
  EXPECT_STREQ(event_kind_name(EventKind::kArrival), "arrival");
  EXPECT_STREQ(event_kind_name(EventKind::kHeadOfQueue), "head-of-queue");
  EXPECT_STREQ(event_kind_name(EventKind::kPlacementAttempt), "placement-attempt");
  EXPECT_STREQ(event_kind_name(EventKind::kPlacementReject), "placement-reject");
  EXPECT_STREQ(event_kind_name(EventKind::kStart), "start");
  EXPECT_STREQ(event_kind_name(EventKind::kFinish), "finish");
}

TEST(RingRecorder, KeepsEverythingBelowCapacity) {
  RingRecorder ring(8);
  for (std::uint64_t i = 0; i < 5; ++i) {
    ring.record(make_event(i, EventKind::kArrival, static_cast<double>(i)));
  }
  EXPECT_EQ(ring.size(), 5u);
  EXPECT_EQ(ring.total_recorded(), 5u);
  EXPECT_EQ(ring.dropped(), 0u);
  const auto events = ring.snapshot();
  ASSERT_EQ(events.size(), 5u);
  for (std::uint64_t i = 0; i < 5; ++i) EXPECT_EQ(events[i].job, i);
}

TEST(RingRecorder, OverwritesOldestWhenFull) {
  RingRecorder ring(4);
  for (std::uint64_t i = 0; i < 10; ++i) {
    ring.record(make_event(i, EventKind::kStart, static_cast<double>(i)));
  }
  EXPECT_EQ(ring.size(), 4u);
  EXPECT_EQ(ring.total_recorded(), 10u);
  EXPECT_EQ(ring.dropped(), 6u);
  const auto events = ring.snapshot();
  ASSERT_EQ(events.size(), 4u);
  // The most recent four, oldest first.
  EXPECT_EQ(events.front().job, 6u);
  EXPECT_EQ(events.back().job, 9u);
}

TEST(RingRecorder, EmittersSeeEveryEventEvenWhenRingWraps) {
  RingRecorder ring(2);
  std::vector<std::uint64_t> seen;
  ring.add_emitter([&seen](const TraceEvent& event) { seen.push_back(event.job); });
  for (std::uint64_t i = 0; i < 7; ++i) {
    ring.record(make_event(i, EventKind::kFinish, static_cast<double>(i)));
  }
  ASSERT_EQ(seen.size(), 7u);
  for (std::uint64_t i = 0; i < 7; ++i) EXPECT_EQ(seen[i], i);
  EXPECT_EQ(ring.size(), 2u);
}

TEST(RingRecorder, ClearForgetsEventsButKeepsTotals) {
  RingRecorder ring(8);
  ring.record(make_event(1, EventKind::kArrival, 0.0));
  ring.clear();
  EXPECT_EQ(ring.size(), 0u);
  EXPECT_EQ(ring.total_recorded(), 1u);
  EXPECT_TRUE(ring.snapshot().empty());
}

TEST(RingRecorder, InvalidCapacityThrows) {
  EXPECT_THROW(RingRecorder(0), std::invalid_argument);
}

TEST(RingRecorder, BinaryRoundTripPreservesEvents) {
  RingRecorder ring(16);
  for (std::uint64_t i = 0; i < 9; ++i) {
    ring.record(make_event(i, EventKind::kPlacementAttempt, 10.5 * static_cast<double>(i)));
  }
  std::stringstream buffer;
  ring.write_binary(buffer);
  const auto events = RingRecorder::read_binary(buffer);
  ASSERT_EQ(events.size(), 9u);
  for (std::uint64_t i = 0; i < 9; ++i) {
    EXPECT_EQ(events[i].job, i);
    EXPECT_EQ(events[i].kind, EventKind::kPlacementAttempt);
    EXPECT_DOUBLE_EQ(events[i].time, 10.5 * static_cast<double>(i));
    EXPECT_DOUBLE_EQ(events[i].value, 21.0 * static_cast<double>(i));
    EXPECT_EQ(events[i].cluster, 2);
  }
}

TEST(RingRecorder, BinaryRejectsBadMagic) {
  std::stringstream buffer("XXXX garbage");
  EXPECT_THROW(RingRecorder::read_binary(buffer), std::invalid_argument);
}

TEST(RingRecorder, BinaryRejectsTruncatedStream) {
  RingRecorder ring(4);
  ring.record(make_event(1, EventKind::kArrival, 0.0));
  ring.record(make_event(2, EventKind::kArrival, 1.0));
  std::stringstream buffer;
  ring.write_binary(buffer);
  std::string bytes = buffer.str();
  bytes.resize(bytes.size() - 8);  // cut into the last event
  std::stringstream cut(bytes);
  EXPECT_THROW(RingRecorder::read_binary(cut), std::invalid_argument);
}

}  // namespace
}  // namespace mcsim::obs
