// TraceWorkload streaming mode: the bounded-lookahead merge must emit the
// exact sequence the in-memory sort emits — and fail loudly when the log's
// disorder exceeds the window instead of silently misordering.
#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <utility>
#include <vector>

#include "workload/trace_source.hpp"
#include "workload/trace_workload.hpp"

namespace mcsim {
namespace {

TraceRecord record(std::uint64_t id, double submit, double run,
                   std::uint32_t procs) {
  TraceRecord rec;
  rec.job_id = id;
  rec.submit_time = submit;
  rec.run_time = run;
  rec.processors = procs;
  rec.user_id = static_cast<std::uint32_t>(id);
  return rec;
}

/// Vector-backed TraceRecordSource for driving the streaming path without
/// file I/O.
class VectorSource final : public TraceRecordSource {
 public:
  explicit VectorSource(std::vector<TraceRecord> records)
      : records_(std::move(records)) {}

  bool next(TraceRecord& out) override {
    if (next_ >= records_.size()) return false;
    out = records_[next_++];
    return true;
  }

 private:
  std::vector<TraceRecord> records_;
  std::size_t next_ = 0;
};

std::shared_ptr<TraceWorkloadConfig> streaming_config(
    std::vector<TraceRecord> records, std::uint32_t window) {
  auto config = std::make_shared<TraceWorkloadConfig>();
  std::uint64_t usable = 0;
  for (const TraceRecord& rec : records) {
    if (trace_record_usable(rec)) ++usable;
  }
  config->streamed_usable_records = usable;
  config->lookahead_window = window;
  config->open_source = [records = std::move(records)]() {
    return std::make_unique<VectorSource>(records);
  };
  return config;
}

std::vector<JobSpec> drain(TraceWorkload& source) {
  std::vector<JobSpec> jobs;
  JobSpec job;
  while (source.next(job)) jobs.push_back(job);
  return jobs;
}

TEST(TraceStream, StreamingMatchesInMemoryOnScrambledInput) {
  // File order is scrambled but no record is displaced by more than 3
  // positions; a window of 4 reproduces the full sort.
  const std::vector<TraceRecord> scrambled = {
      record(3, 20.0, 60.0, 4), record(1, 0.0, 30.0, 2),
      record(2, 10.0, 45.0, 8), record(5, 40.0, 10.0, 1),
      record(4, 30.0, 20.0, 16), record(6, 50.0, 5.0, 2),
  };

  auto in_memory = std::make_shared<TraceWorkloadConfig>();
  in_memory->records = usable_trace_records(scrambled);
  TraceWorkload whole(in_memory);

  TraceWorkload streamed(streaming_config(scrambled, 4));

  const std::vector<JobSpec> expected = drain(whole);
  const std::vector<JobSpec> got = drain(streamed);
  ASSERT_EQ(got.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(got[i].id, expected[i].id);
    EXPECT_DOUBLE_EQ(got[i].arrival_time, expected[i].arrival_time);
    EXPECT_EQ(got[i].total_size, expected[i].total_size);
    EXPECT_EQ(got[i].components, expected[i].components);
    EXPECT_DOUBLE_EQ(got[i].service_time, expected[i].service_time);
    EXPECT_EQ(got[i].origin_queue, expected[i].origin_queue);
  }
  EXPECT_EQ(streamed.jobs_emitted(), 6u);
}

TEST(TraceStream, SkipsUnusableRecordsMidStream) {
  const std::vector<TraceRecord> records = {
      record(1, 0.0, 30.0, 2),
      record(2, 10.0, 0.0, 8),   // zero run time: cancelled
      record(3, 20.0, 60.0, 0),  // zero processors
      record(4, 30.0, 20.0, 4),
  };
  TraceWorkload streamed(streaming_config(records, 64));
  const std::vector<JobSpec> jobs = drain(streamed);
  ASSERT_EQ(jobs.size(), 2u);
  // Replay ids are sequential emission indices, not the log's ids.
  EXPECT_EQ(jobs[0].id, 0u);
  EXPECT_EQ(jobs[1].id, 1u);
  EXPECT_DOUBLE_EQ(jobs[1].arrival_time, 30.0);
}

TEST(TraceStream, DisorderBeyondWindowThrowsInsteadOfMisordering) {
  // The earliest record arrives 3 positions late; a window of 2 pops a
  // later submit first and must detect the inversion when 0.0 surfaces.
  std::vector<TraceRecord> records = {
      record(2, 10.0, 30.0, 2), record(3, 20.0, 30.0, 2),
      record(4, 30.0, 30.0, 2), record(1, 0.0, 30.0, 2),
  };
  auto config = streaming_config(std::move(records), 2);
  config->source_path = "scrambled.swf";
  TraceWorkload streamed(std::move(config));
  JobSpec job;
  ASSERT_TRUE(streamed.next(job));
  try {
    while (streamed.next(job)) {
    }
    FAIL() << "expected the out-of-order guard to fire";
  } catch (const std::invalid_argument& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("scrambled.swf"), std::string::npos) << what;
    EXPECT_NE(what.find("out of order"), std::string::npos) << what;
    EXPECT_NE(what.find("lookahead_window"), std::string::npos) << what;
  }
}

TEST(TraceStream, WindowOfOneHandlesSortedInput) {
  const std::vector<TraceRecord> records = {
      record(1, 0.0, 30.0, 2), record(2, 10.0, 45.0, 8),
      record(3, 20.0, 60.0, 4),
  };
  TraceWorkload streamed(streaming_config(records, 1));
  EXPECT_EQ(drain(streamed).size(), 3u);
}

TEST(TraceStream, RejectsBothDeliveryModesAtOnce) {
  auto config = streaming_config({record(1, 0.0, 30.0, 2)}, 16);
  config->records = {record(1, 0.0, 30.0, 2)};
  EXPECT_THROW(TraceWorkload{std::move(config)}, std::invalid_argument);
}

TEST(TraceStream, RejectsZeroWindow) {
  auto config = streaming_config({record(1, 0.0, 30.0, 2)}, 16);
  config->lookahead_window = 0;
  EXPECT_THROW(TraceWorkload{std::move(config)}, std::invalid_argument);
}

TEST(TraceStream, SummaryUtilizationMatchesVectorOverload) {
  const std::vector<TraceRecord> records = {
      record(1, 0.0, 50.0, 4), record(2, 100.0, 25.0, 8),
  };
  VectorSource source{records};
  const TraceStreamSummary summary = summarize_trace_source(source);
  EXPECT_DOUBLE_EQ(trace_offered_gross_utilization(summary, 16),
                   trace_offered_gross_utilization(records, 16));
  EXPECT_DOUBLE_EQ(trace_scale_for_utilization(summary, 16, 0.5),
                   trace_scale_for_utilization(records, 16, 0.5));
}

}  // namespace
}  // namespace mcsim
