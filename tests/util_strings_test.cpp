#include "util/strings.hpp"

#include <gtest/gtest.h>

namespace mcsim {
namespace {

TEST(FormatDouble, RoundsToRequestedPrecision) {
  EXPECT_EQ(format_double(1.23456, 3), "1.235");
  EXPECT_EQ(format_double(1.0, 0), "1");
  EXPECT_EQ(format_double(-0.5, 1), "-0.5");
}

TEST(FormatUtil, UsesThreeDecimals) {
  EXPECT_EQ(format_util(0.553), "0.553");
  EXPECT_EQ(format_util(1.0), "1.000");
}

TEST(StrPrintf, FormatsLikePrintf) {
  EXPECT_EQ(str_printf("%d-%s", 42, "x"), "42-x");
  EXPECT_EQ(str_printf("%.2f", 3.14159), "3.14");
}

TEST(StrPrintf, EmptyFormatYieldsEmptyString) { EXPECT_EQ(str_printf("%s", ""), ""); }

TEST(Split, SplitsOnDelimiter) {
  const auto fields = split("a,b,c", ',');
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[0], "a");
  EXPECT_EQ(fields[2], "c");
}

TEST(Split, PreservesEmptyFields) {
  const auto fields = split("a,,b,", ',');
  ASSERT_EQ(fields.size(), 4u);
  EXPECT_EQ(fields[1], "");
  EXPECT_EQ(fields[3], "");
}

TEST(Split, SingleFieldWithoutDelimiter) {
  const auto fields = split("abc", ',');
  ASSERT_EQ(fields.size(), 1u);
  EXPECT_EQ(fields[0], "abc");
}

TEST(Trim, StripsWhitespaceBothSides) {
  EXPECT_EQ(trim("  x y  "), "x y");
  EXPECT_EQ(trim("\t\nabc\r "), "abc");
}

TEST(Trim, AllWhitespaceBecomesEmpty) { EXPECT_EQ(trim("   \t"), ""); }

TEST(StartsWith, MatchesPrefixesOnly) {
  EXPECT_TRUE(starts_with("--option", "--"));
  EXPECT_FALSE(starts_with("-o", "--"));
  EXPECT_TRUE(starts_with("abc", ""));
  EXPECT_FALSE(starts_with("", "a"));
}

TEST(ToLower, LowersAsciiOnly) {
  EXPECT_EQ(to_lower("AbC-12"), "abc-12");
}

}  // namespace
}  // namespace mcsim
