// The warm trace cache behind `mcsim serve`: (mtime, size) invalidation,
// the LRU byte budget, serve-don't-retain for oversize logs, and the
// resolver seam that must deliver the same scan and record order the
// file-backed path would — the precondition for warm runs being
// bit-identical to cold ones.
#include "serve/trace_cache.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "exp/scenario_spec.hpp"
#include "trace/swf_stream.hpp"

namespace mcsim::serve {
namespace {

namespace fs = std::filesystem;

std::string record_line(std::uint64_t id, double submit, double run,
                        std::uint32_t procs) {
  std::ostringstream line;
  line << id << ' ' << submit << " 0 " << run << ' ' << procs << " -1 -1 "
       << procs << " -1 -1 1 0 -1 -1 -1 -1 -1 -1\n";
  return line.str();
}

/// Write a small SWF log with `jobs` records (ids 1..jobs) under `dir`.
std::string write_log(const fs::path& dir, const std::string& name,
                      std::uint32_t jobs, double run = 50.0) {
  const fs::path path = dir / name;
  std::ofstream out(path);
  out << "; MaxNodes: 128\n";
  for (std::uint32_t i = 1; i <= jobs; ++i) {
    out << record_line(i, 10.0 * i, run, 4);
  }
  return path.string();
}

/// A per-test scratch directory under gtest's TempDir.
fs::path scratch_dir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / ("mcsim_cache_" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

/// Resident bytes one load of `path` charges (measured, not guessed, so
/// the budget arithmetic below tracks the implementation's accounting).
std::uint64_t entry_bytes(const std::string& path) {
  TraceCache probe(1ull << 30);
  probe.get(path);
  return probe.stats().resident_bytes;
}

TEST(ServeTraceCache, MissThenHit) {
  const fs::path dir = scratch_dir("miss_hit");
  const std::string log = write_log(dir, "a.swf", 3);

  TraceCache cache(1ull << 20);
  const auto first = cache.get(log);
  const auto second = cache.get(log);
  EXPECT_EQ(first.get(), second.get()) << "a hit returns the resident entry";
  ASSERT_EQ(first->records.size(), 3u);

  const TraceCacheStats stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.reloads, 0u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_GT(stats.resident_bytes, 0u);
  EXPECT_EQ(stats.budget_bytes, 1ull << 20);
}

TEST(ServeTraceCache, RecordsComeOutSortedBySubmitThenId) {
  const fs::path dir = scratch_dir("sorted");
  const fs::path path = dir / "scrambled.swf";
  {
    std::ofstream out(path);
    out << record_line(3, 200.0, 50.0, 4) << record_line(1, 100.0, 50.0, 4)
        << record_line(5, 100.0, 50.0, 4) << record_line(2, 300.0, 50.0, 4);
  }
  TraceCache cache(1ull << 20);
  const auto trace = cache.get(path.string());
  ASSERT_EQ(trace->records.size(), 4u);
  EXPECT_EQ(trace->records[0].job_id, 1u);  // submit 100, lower id first
  EXPECT_EQ(trace->records[1].job_id, 5u);
  EXPECT_EQ(trace->records[2].job_id, 3u);
  EXPECT_EQ(trace->records[3].job_id, 2u);
}

TEST(ServeTraceCache, RewrittenFileIsReloaded) {
  const fs::path dir = scratch_dir("invalidate");
  const std::string log = write_log(dir, "a.swf", 2);

  TraceCache cache(1ull << 20);
  EXPECT_EQ(cache.get(log)->records.size(), 2u);

  // Rewrite in place with more records; force the mtime forward explicitly
  // so the test cannot race a coarse filesystem clock.
  write_log(dir, "a.swf", 5);
  fs::last_write_time(log,
                      fs::last_write_time(log) + std::chrono::seconds(2));

  EXPECT_EQ(cache.get(log)->records.size(), 5u)
      << "a stale entry must be transparently reparsed";
  const TraceCacheStats stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.reloads, 1u);
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.entries, 1u);
}

TEST(ServeTraceCache, MtimeAloneInvalidates) {
  const fs::path dir = scratch_dir("mtime_only");
  const std::string log = write_log(dir, "a.swf", 2);

  TraceCache cache(1ull << 20);
  cache.get(log);
  // Same bytes, newer mtime: the (mtime, size) identity treats it as a new
  // file — a rewrite-with-identical-length must not serve stale records.
  fs::last_write_time(log,
                      fs::last_write_time(log) + std::chrono::seconds(2));
  cache.get(log);
  EXPECT_EQ(cache.stats().reloads, 1u);
}

TEST(ServeTraceCache, LruEvictionHonoursTheByteBudget) {
  const fs::path dir = scratch_dir("lru");
  const std::string log_a = write_log(dir, "a.swf", 4);
  const std::string log_b = write_log(dir, "b.swf", 4);
  const std::string log_c = write_log(dir, "c.swf", 4);
  const std::uint64_t bytes = entry_bytes(log_a);

  TraceCache cache(2 * bytes);  // room for exactly two of the three logs
  cache.get(log_a);
  cache.get(log_b);
  EXPECT_EQ(cache.stats().entries, 2u);
  EXPECT_EQ(cache.stats().evictions, 0u);

  cache.get(log_c);  // evicts a (least recently used)
  EXPECT_EQ(cache.stats().entries, 2u);
  EXPECT_EQ(cache.stats().evictions, 1u);

  cache.get(log_b);  // still resident: a hit refreshes b ahead of c
  EXPECT_EQ(cache.stats().hits, 1u);

  cache.get(log_a);  // a was evicted -> a fresh miss, and c is now the victim
  TraceCacheStats stats = cache.stats();
  EXPECT_EQ(stats.misses, 4u);
  EXPECT_EQ(stats.evictions, 2u);
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_LE(stats.resident_bytes, stats.budget_bytes);

  cache.get(log_b);  // the refreshed entry survived the second eviction
  EXPECT_EQ(cache.stats().hits, 2u);
}

TEST(ServeTraceCache, ZeroBudgetDisablesRetention) {
  const fs::path dir = scratch_dir("zero");
  const std::string log = write_log(dir, "a.swf", 2);

  TraceCache cache(0);
  EXPECT_EQ(cache.get(log)->records.size(), 2u);
  EXPECT_EQ(cache.get(log)->records.size(), 2u);
  const TraceCacheStats stats = cache.stats();
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(stats.resident_bytes, 0u);
}

TEST(ServeTraceCache, OversizeLogIsServedButNotRetained) {
  const fs::path dir = scratch_dir("oversize");
  const std::string small = write_log(dir, "small.swf", 2);
  const std::string big = write_log(dir, "big.swf", 64);

  TraceCache cache(entry_bytes(small));  // the big log cannot possibly fit
  EXPECT_EQ(cache.get(big)->records.size(), 64u);
  EXPECT_EQ(cache.stats().entries, 0u)
      << "a log larger than the whole budget must not be retained";
  cache.get(small);
  EXPECT_EQ(cache.stats().entries, 1u);
}

TEST(ServeTraceCache, EvictionNeverInvalidatesAnInFlightTrace) {
  const fs::path dir = scratch_dir("shared");
  const std::string log = write_log(dir, "a.swf", 3);

  TraceCache cache(1ull << 20);
  const auto trace = cache.get(log);
  cache.clear();  // the harshest eviction
  EXPECT_EQ(cache.stats().entries, 0u);

  CachedTraceSource source(trace);  // shares ownership past the eviction
  TraceRecord record;
  std::size_t count = 0;
  while (source.next(record)) ++count;
  EXPECT_EQ(count, 3u);
}

TEST(ServeTraceCache, MissingFileThrows) {
  TraceCache cache(1ull << 20);
  EXPECT_THROW(cache.get("/nonexistent/missing.swf"), std::invalid_argument);
}

TEST(ServeTraceCache, ResolverMatchesTheFileBackedPath) {
  const fs::path dir = scratch_dir("resolver");
  const std::string log = write_log(dir, "a.swf", 4);

  TraceCache cache(1ull << 20);
  const exp::ResolvedTrace warm = cache.resolver()(log);
  const exp::ResolvedTrace cold = exp::resolve_trace_from_file(log);

  EXPECT_EQ(warm.scan.header.max_nodes, cold.scan.header.max_nodes);
  EXPECT_EQ(warm.scan.summary.total_records, cold.scan.summary.total_records);
  EXPECT_EQ(warm.scan.summary.usable_records, cold.scan.summary.usable_records);
  EXPECT_DOUBLE_EQ(warm.scan.summary.gross_work, cold.scan.summary.gross_work);

  auto drain = [](const exp::ResolvedTrace& resolved) {
    std::vector<TraceRecord> records;
    auto source = resolved.open_source();
    TraceRecord record;
    while (source->next(record)) records.push_back(record);
    return records;
  };
  const std::vector<TraceRecord> warm_records = drain(warm);
  const std::vector<TraceRecord> cold_records = drain(cold);
  ASSERT_EQ(warm_records.size(), cold_records.size());
  for (std::size_t i = 0; i < warm_records.size(); ++i) {
    EXPECT_EQ(warm_records[i].job_id, cold_records[i].job_id) << i;
    EXPECT_DOUBLE_EQ(warm_records[i].submit_time, cold_records[i].submit_time)
        << i;
    EXPECT_DOUBLE_EQ(warm_records[i].run_time, cold_records[i].run_time) << i;
  }
  EXPECT_EQ(cache.stats().misses, 1u);
}

}  // namespace
}  // namespace mcsim::serve
