#include "stats/confidence.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "util/rng.hpp"

namespace mcsim {
namespace {

TEST(NormalQuantile, KnownValues) {
  EXPECT_NEAR(normal_quantile(0.5), 0.0, 1e-9);
  EXPECT_NEAR(normal_quantile(0.975), 1.959964, 1e-5);
  EXPECT_NEAR(normal_quantile(0.95), 1.644854, 1e-5);
  EXPECT_NEAR(normal_quantile(0.025), -1.959964, 1e-5);
  EXPECT_NEAR(normal_quantile(0.999), 3.090232, 1e-5);
}

TEST(NormalQuantile, SymmetricAroundHalf) {
  for (double p : {0.6, 0.75, 0.9, 0.99}) {
    EXPECT_NEAR(normal_quantile(p), -normal_quantile(1.0 - p), 1e-9);
  }
}

TEST(NormalQuantile, OutOfRangeThrows) {
  EXPECT_THROW(normal_quantile(0.0), std::invalid_argument);
  EXPECT_THROW(normal_quantile(1.0), std::invalid_argument);
}

TEST(TCritical, KnownTableValues) {
  // Standard two-sided 95% t-table values.
  EXPECT_NEAR(t_critical(1, 0.95), 12.706, 0.01);
  EXPECT_NEAR(t_critical(5, 0.95), 2.571, 0.005);
  EXPECT_NEAR(t_critical(10, 0.95), 2.228, 0.005);
  EXPECT_NEAR(t_critical(30, 0.95), 2.042, 0.005);
  EXPECT_NEAR(t_critical(19, 0.95), 2.093, 0.005);
}

TEST(TCritical, NinetyNinePercent) {
  EXPECT_NEAR(t_critical(10, 0.99), 3.169, 0.005);
}

TEST(TCritical, ConvergesToNormalForLargeDof) {
  EXPECT_NEAR(t_critical(100000, 0.95), 1.95996, 1e-3);
}

TEST(TCritical, ZeroDofIsInfinite) {
  EXPECT_TRUE(std::isinf(t_critical(0, 0.95)));
}

TEST(MeanConfidence, SingleSampleIsInfinite) {
  RunningStats s;
  s.add(1.0);
  const auto ci = mean_confidence(s);
  EXPECT_TRUE(std::isinf(ci.halfwidth));
}

TEST(MeanConfidence, KnownSmallSample) {
  RunningStats s;
  for (double x : {1.0, 2.0, 3.0, 4.0, 5.0}) s.add(x);
  const auto ci = mean_confidence(s, 0.95);
  EXPECT_DOUBLE_EQ(ci.mean, 3.0);
  // stddev = sqrt(2.5), se = sqrt(0.5), t_4 = 2.776.
  EXPECT_NEAR(ci.halfwidth, 2.776 * std::sqrt(0.5), 0.01);
  EXPECT_NEAR(ci.lo(), ci.mean - ci.halfwidth, 1e-12);
  EXPECT_NEAR(ci.hi(), ci.mean + ci.halfwidth, 1e-12);
}

TEST(MeanConfidence, ShrinksWithSampleSize) {
  RunningStats small, large;
  for (int i = 0; i < 10; ++i) small.add(i % 3);
  for (int i = 0; i < 1000; ++i) large.add(i % 3);
  EXPECT_GT(mean_confidence(small).halfwidth, mean_confidence(large).halfwidth);
}

TEST(ConfidenceInterval, RelativePrecision) {
  ConfidenceInterval ci{10.0, 1.0};
  EXPECT_DOUBLE_EQ(ci.relative(), 0.1);
  ConfidenceInterval zero{0.0, 1.0};
  EXPECT_TRUE(std::isinf(zero.relative()));
}

TEST(MeanConfidence, CoversTrueMeanAtNominalRate) {
  // Repeated sampling from U(0,1): the 95% CI should contain 0.5 roughly
  // 95% of the time. With 200 replications, expect >= 85% coverage.
  Rng rng(123);
  int covered = 0;
  constexpr int kReps = 200;
  for (int rep = 0; rep < kReps; ++rep) {
    RunningStats s;
    for (int i = 0; i < 50; ++i) s.add(rng.uniform());
    const auto ci = mean_confidence(s, 0.95);
    if (ci.lo() <= 0.5 && 0.5 <= ci.hi()) ++covered;
  }
  EXPECT_GE(covered, static_cast<int>(kReps * 0.85));
}

}  // namespace
}  // namespace mcsim
