// JobPool contract tests: slab-stable addresses, LIFO recycling, reset
// semantics, and the determinism consequence the engine relies on — a run
// that recycles jobs produces bit-identical results when repeated, because
// nothing anywhere orders by Job pointer value.
#include "core/job_pool.hpp"

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>
#include <vector>

#include "core/engine.hpp"
#include "exp/scenario.hpp"

namespace mcsim {
namespace {

JobSpec spec_with_id(std::uint64_t id) {
  JobSpec spec;
  spec.id = id;
  spec.components = {4};
  spec.total_size = 4;
  spec.service_time = 10.0;
  spec.gross_service_time = 10.0;
  return spec;
}

TEST(JobPool, AcquireHandsOutDistinctStableAddresses) {
  JobPool pool;
  std::set<Job*> seen;
  std::vector<Job*> jobs;
  // Cross several slab boundaries; nothing may alias and nothing may move.
  for (std::uint64_t i = 0; i < 3 * JobPool::kSlabCapacity + 7; ++i) {
    Job* job = pool.acquire(spec_with_id(i));
    EXPECT_TRUE(seen.insert(job).second) << "aliased live job at i=" << i;
    jobs.push_back(job);
  }
  EXPECT_EQ(pool.slab_count(), 4u);
  EXPECT_EQ(pool.live(), jobs.size());
  // Addresses handed out earlier are still valid and hold their spec.
  for (std::uint64_t i = 0; i < jobs.size(); ++i) {
    EXPECT_EQ(jobs[i]->spec.id, i);
  }
}

TEST(JobPool, ReleaseRecyclesLastInFirstOut) {
  JobPool pool;
  Job* first = pool.acquire(spec_with_id(1));
  Job* second = pool.acquire(spec_with_id(2));
  pool.release(first);
  pool.release(second);
  // LIFO: the most recently released slot is reused first. This order is a
  // pure function of the (deterministic) departure order, which is what
  // makes recycled addresses replay identically run over run.
  EXPECT_EQ(pool.acquire(spec_with_id(3)), second);
  EXPECT_EQ(pool.acquire(spec_with_id(4)), first);
  EXPECT_EQ(pool.live(), 2u);
  EXPECT_EQ(pool.total_acquired(), 4u);
}

TEST(JobPool, RecycledJobIsFullyReset) {
  JobPool pool;
  Job* job = pool.acquire(spec_with_id(1));
  job->allocation.push_back(ComponentPlacement{0, 4});
  job->start_time = 12.5;
  job->queue_class = QueueClass::kLocal;
  job->considered = true;
  const std::size_t capacity = job->allocation.capacity();
  pool.release(job);

  Job* recycled = pool.acquire(spec_with_id(2));
  ASSERT_EQ(recycled, job);
  EXPECT_EQ(recycled->spec.id, 2u);
  EXPECT_TRUE(recycled->allocation.empty());
  // reset() clears but keeps the vector's buffer: a recycled job places
  // again without touching the allocator.
  EXPECT_GE(recycled->allocation.capacity(), capacity);
  EXPECT_FALSE(recycled->started());
  EXPECT_EQ(recycled->queue_class, QueueClass::kGlobal);
  EXPECT_FALSE(recycled->considered);
}

TEST(JobPool, CapacityCountsConstructedJobs) {
  JobPool pool;
  EXPECT_EQ(pool.capacity(), 0u);
  Job* job = pool.acquire(spec_with_id(1));
  EXPECT_EQ(pool.capacity(), 1u);
  EXPECT_EQ(pool.slab_count(), 1u);
  // Recycling does not grow capacity.
  pool.release(job);
  (void)pool.acquire(spec_with_id(2));
  EXPECT_EQ(pool.capacity(), 1u);
}

// Sharded free lanes (the parallel engine's pool layout): release returns
// a job to the lane of the shard that acquired it, each lane recycles
// LIFO independently, and the default single shard is exactly the
// historical pool.
TEST(JobPool, ShardedFreeLanesRecycleIndependently) {
  JobPool pool;
  pool.configure_shards(3);
  EXPECT_EQ(pool.shard_count(), 3u);

  Job* a = pool.acquire(spec_with_id(1), /*shard=*/0);
  Job* b = pool.acquire(spec_with_id(2), /*shard=*/1);
  Job* c = pool.acquire(spec_with_id(3), /*shard=*/1);
  EXPECT_EQ(a->pool_shard, 0u);
  EXPECT_EQ(b->pool_shard, 1u);

  pool.release(b);
  pool.release(c);
  pool.release(a);
  // Shard 1's lane is LIFO on its own: c then b; shard 0 returns a; shard
  // 2's empty lane falls back to fresh slab slots.
  EXPECT_EQ(pool.acquire(spec_with_id(4), 1), c);
  EXPECT_EQ(pool.acquire(spec_with_id(5), 1), b);
  EXPECT_EQ(pool.acquire(spec_with_id(6), 0), a);
  Job* fresh = pool.acquire(spec_with_id(7), 2);
  EXPECT_NE(fresh, a);
  EXPECT_NE(fresh, b);
  EXPECT_NE(fresh, c);
  EXPECT_EQ(fresh->pool_shard, 2u);
}

TEST(JobPool, ConfigureShardsRequiresFreshPool) {
  JobPool pool;
  (void)pool.acquire(spec_with_id(1));
  EXPECT_THROW(pool.configure_shards(2), std::invalid_argument);
}

// The end-to-end consequence: two runs of the same scenario in the same
// process recycle pool slots along different absolute addresses (the second
// run's pool sits elsewhere on the heap), yet every statistic matches
// bit-for-bit. Catches any accidental ordering by pointer value anywhere in
// the queue/policy/engine stack.
TEST(JobPool, RepeatedEngineRunsAreBitIdentical) {
  PaperScenario scenario;
  scenario.policy = PolicyKind::kGS;
  scenario.component_limit = 16;
  const SimulationConfig config =
      make_paper_config(scenario, /*rho=*/0.5, /*jobs=*/4000, /*seed=*/42);

  const SimulationResult first = run_simulation(config);
  const SimulationResult second = run_simulation(config);
  ASSERT_FALSE(first.unstable);
  EXPECT_EQ(first.completed_jobs, second.completed_jobs);
  EXPECT_EQ(first.events_executed, second.events_executed);
  EXPECT_EQ(first.end_time, second.end_time);
  EXPECT_EQ(first.mean_response(), second.mean_response());
  EXPECT_EQ(first.response_all.stddev(), second.response_all.stddev());
  EXPECT_EQ(first.busy_fraction, second.busy_fraction);
  EXPECT_EQ(first.response_p95, second.response_p95);
}

}  // namespace
}  // namespace mcsim
