#include <gtest/gtest.h>

#include "cluster/cluster.hpp"
#include "cluster/multicluster.hpp"

namespace mcsim {
namespace {

TEST(Cluster, StartsFullyIdle) {
  Cluster cluster(0, 32);
  EXPECT_EQ(cluster.capacity(), 32u);
  EXPECT_EQ(cluster.idle(), 32u);
  EXPECT_EQ(cluster.busy(), 0u);
}

TEST(Cluster, AllocateAndRelease) {
  Cluster cluster(1, 32);
  cluster.allocate(20);
  EXPECT_EQ(cluster.idle(), 12u);
  EXPECT_EQ(cluster.busy(), 20u);
  cluster.release(5);
  EXPECT_EQ(cluster.idle(), 17u);
}

TEST(Cluster, FitsChecksIdle) {
  Cluster cluster(0, 10);
  cluster.allocate(7);
  EXPECT_TRUE(cluster.fits(3));
  EXPECT_FALSE(cluster.fits(4));
  EXPECT_TRUE(cluster.fits(0));
}

TEST(Cluster, OverAllocationThrows) {
  Cluster cluster(0, 8);
  EXPECT_THROW(cluster.allocate(9), std::invalid_argument);
  cluster.allocate(8);
  EXPECT_THROW(cluster.allocate(1), std::invalid_argument);
}

TEST(Cluster, OverReleaseThrows) {
  Cluster cluster(0, 8);
  cluster.allocate(3);
  EXPECT_THROW(cluster.release(4), std::invalid_argument);
}

TEST(Cluster, ZeroCapacityThrows) {
  EXPECT_THROW(Cluster(0, 0), std::invalid_argument);
}

TEST(Multicluster, UniformConstruction) {
  Multicluster system(4, 32);
  EXPECT_EQ(system.num_clusters(), 4u);
  EXPECT_EQ(system.total_processors(), 128u);
  EXPECT_EQ(system.total_idle(), 128u);
  EXPECT_EQ(system.cluster(2).capacity(), 32u);
}

TEST(Multicluster, HeterogeneousConstruction) {
  // The real DAS2 layout: one 72-node cluster and four 32-node clusters.
  Multicluster system(std::vector<std::uint32_t>{72, 32, 32, 32, 32});
  EXPECT_EQ(system.num_clusters(), 5u);
  EXPECT_EQ(system.total_processors(), 200u);
  EXPECT_EQ(system.cluster(0).capacity(), 72u);
}

TEST(Multicluster, AllocationAppliesPerCluster) {
  Multicluster system(4, 32);
  Allocation alloc{{0, 16}, {2, 10}};
  system.allocate(alloc);
  EXPECT_EQ(system.cluster(0).idle(), 16u);
  EXPECT_EQ(system.cluster(1).idle(), 32u);
  EXPECT_EQ(system.cluster(2).idle(), 22u);
  EXPECT_EQ(system.total_busy(), 26u);
  system.release(alloc);
  EXPECT_EQ(system.total_idle(), 128u);
}

TEST(Multicluster, MultipleComponentsOnSameClusterAllowed) {
  // The model never produces this, but the container must account for it.
  Multicluster system(2, 32);
  Allocation alloc{{0, 16}, {0, 16}};
  system.allocate(alloc);
  EXPECT_EQ(system.cluster(0).idle(), 0u);
  system.release(alloc);
  EXPECT_EQ(system.cluster(0).idle(), 32u);
}

TEST(Multicluster, FailedAllocationLeavesStateUnchanged) {
  Multicluster system(2, 32);
  system.allocate({{0, 30}});
  // Second placement does not fit on cluster 0; whole allocation must fail
  // atomically even though the cluster-1 part would fit.
  EXPECT_THROW(system.allocate({{1, 10}, {0, 10}}), std::invalid_argument);
  EXPECT_EQ(system.cluster(1).idle(), 32u);
  EXPECT_EQ(system.cluster(0).idle(), 2u);
}

TEST(Multicluster, UnknownClusterThrows) {
  Multicluster system(2, 32);
  EXPECT_THROW(system.allocate({{5, 1}}), std::invalid_argument);
  EXPECT_THROW(system.release({{5, 1}}), std::invalid_argument);
}

TEST(Multicluster, IdleCountsSnapshot) {
  Multicluster system(3, 16);
  system.allocate({{1, 10}});
  const auto idle = system.idle_counts();
  ASSERT_EQ(idle.size(), 3u);
  EXPECT_EQ(idle[0], 16u);
  EXPECT_EQ(idle[1], 6u);
  EXPECT_EQ(idle[2], 16u);
}

TEST(Multicluster, EmptyLayoutThrows) {
  EXPECT_THROW(Multicluster(std::vector<std::uint32_t>{}), std::invalid_argument);
  EXPECT_THROW(Multicluster(0, 32), std::invalid_argument);
}

}  // namespace
}  // namespace mcsim
