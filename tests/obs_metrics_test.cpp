// MetricsRegistry semantics (stable references, deterministic export), the
// JSON writer, and the engine's metrics collection on a real run.
#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>

#include "core/engine.hpp"
#include "exp/scenario.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"

namespace mcsim {
namespace {

TEST(MetricsRegistry, CounterReferencesStayValidAcrossInserts) {
  obs::MetricsRegistry metrics;
  std::uint64_t& first = metrics.counter("a.first");
  for (int i = 0; i < 100; ++i) {
    metrics.counter("filler." + std::to_string(i));
  }
  first += 7;
  EXPECT_EQ(metrics.counters().at("a.first"), 7u);
}

TEST(MetricsRegistry, GaugesAndSeriesCreateOnFirstUse) {
  obs::MetricsRegistry metrics;
  metrics.gauge("g") = 2.5;
  metrics.series("s").start(0.0, 1.0);
  metrics.series("s").update(10.0, 3.0);
  EXPECT_DOUBLE_EQ(metrics.gauges().at("g"), 2.5);
  EXPECT_DOUBLE_EQ(metrics.all_series().at("s").time_average(10.0), 1.0);
}

TEST(MetricsRegistry, JsonExportIsDeterministicallyOrdered) {
  obs::MetricsRegistry metrics;
  metrics.counter("z.last") = 1;
  metrics.counter("a.first") = 2;
  std::ostringstream out;
  metrics.write_json(out, 0.0);
  const std::string json = out.str();
  EXPECT_LT(json.find("a.first"), json.find("z.last"));
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"series\""), std::string::npos);
}

TEST(MetricsRegistry, UnstartedSeriesExportsZeros) {
  obs::MetricsRegistry metrics;
  metrics.series("never.updated");
  std::ostringstream out;
  metrics.write_json(out, 100.0);
  EXPECT_NE(out.str().find("never.updated"), std::string::npos);
  EXPECT_EQ(out.str().find("inf"), std::string::npos);
}

TEST(JsonWriter, EscapesStringsAndFormatsDoubles) {
  EXPECT_EQ(obs::json_escape("a\"b\\c\n"), "a\\\"b\\\\c\\n");
  // One third is not representable; max_digits10 round-trips it.
  const std::string third = obs::json_double(1.0 / 3.0);
  EXPECT_EQ(std::strtod(third.c_str(), nullptr), 1.0 / 3.0);
  EXPECT_EQ(obs::json_double(std::numeric_limits<double>::infinity()), "null");
}

TEST(JsonWriter, NestedStructure) {
  std::ostringstream out;
  obs::JsonWriter json(out);
  json.begin_object();
  json.key("list").begin_array();
  json.value(std::uint64_t{1});
  json.value("two");
  json.begin_object().key("three").value(3.0).end_object();
  json.end_array();
  json.key("flag").value(true);
  json.key("nothing").null();
  json.end_object();
  const std::string text = out.str();
  EXPECT_NE(text.find("\"list\": ["), std::string::npos);
  EXPECT_NE(text.find("\"three\": 3"), std::string::npos);
  EXPECT_NE(text.find("\"flag\": true"), std::string::npos);
  EXPECT_NE(text.find("\"nothing\": null"), std::string::npos);
}

TEST(EngineMetrics, CountsMatchTheRunAndBooksBalance) {
  PaperScenario scenario;
  scenario.policy = PolicyKind::kGS;
  auto config = make_paper_config(scenario, 0.4, 4000, /*seed=*/7);
  MulticlusterSimulation simulation(config);
  obs::MetricsRegistry metrics;
  simulation.set_metrics(&metrics);
  const auto result = simulation.run();

  EXPECT_EQ(metrics.counters().at("jobs.arrived"), 4000u);
  EXPECT_EQ(metrics.counters().at("jobs.started"), result.completed_jobs);
  EXPECT_EQ(metrics.counters().at("jobs.finished"), result.completed_jobs);
  // Every started job needed at least one successful attempt.
  EXPECT_GE(metrics.counters().at("placement.attempts"), result.completed_jobs);
  EXPECT_EQ(metrics.counters().at("placement.attempts") -
                metrics.counters().at("placement.rejects"),
            result.completed_jobs);
  // run.* gauges are filled at the end of run().
  EXPECT_GT(metrics.gauges().at("run.events_per_sec"), 0.0);
  EXPECT_DOUBLE_EQ(metrics.gauges().at("run.sim_end_time"), result.end_time);
  EXPECT_DOUBLE_EQ(metrics.gauges().at("run.unstable"), 0.0);
  // The calendar-occupancy series observed the whole run.
  EXPECT_GT(metrics.all_series().at("calendar.pending").max(), 0.0);
  // Snapshot of the engine's own processes.
  EXPECT_DOUBLE_EQ(metrics.gauges().at("cluster.0.busy_fraction"),
                   result.per_cluster_busy_fraction[0]);
}

TEST(EngineMetrics, GsNeverRejectsLocally) {
  PaperScenario scenario;
  scenario.policy = PolicyKind::kGS;
  MulticlusterSimulation simulation(make_paper_config(scenario, 0.4, 2000, 3));
  obs::MetricsRegistry metrics;
  simulation.set_metrics(&metrics);
  simulation.run();
  // GS only does system-wide placements; local rejects belong to LS/LP.
  EXPECT_EQ(metrics.counters().at("placement.rejects.local"), 0u);
}

TEST(EngineMetrics, LsAttributesRejectsToLocalClusters) {
  PaperScenario scenario;
  scenario.policy = PolicyKind::kLS;
  MulticlusterSimulation simulation(make_paper_config(scenario, 0.55, 6000, 3));
  obs::MetricsRegistry metrics;
  simulation.set_metrics(&metrics);
  simulation.run();
  EXPECT_GT(metrics.counters().at("placement.rejects.local"), 0u);
}

TEST(EngineMetrics, StepHookSamplingStrideStillObservesRun) {
  PaperScenario scenario;
  scenario.policy = PolicyKind::kGS;
  MulticlusterSimulation simulation(make_paper_config(scenario, 0.4, 1000, 5));
  obs::MetricsRegistry metrics;
  simulation.set_metrics(&metrics);
  simulation.simulator().set_step_hook(
      [&metrics](double time, std::size_t pending) {
        metrics.series("calendar.pending").update(time, static_cast<double>(pending));
      },
      /*stride=*/64);
  simulation.run();
  EXPECT_GT(metrics.all_series().at("calendar.pending").last_time(), 0.0);
}

}  // namespace
}  // namespace mcsim
