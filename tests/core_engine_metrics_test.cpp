// Metric plumbing and conservation-law tests for the engine: Little's law,
// size-class breakdown, and cross-policy invariants swept as properties.
#include <gtest/gtest.h>

#include <tuple>

#include "core/engine.hpp"
#include "exp/scenario.hpp"
#include "workload/das_workload.hpp"

namespace mcsim {
namespace {

SimulationConfig paper_config(PolicyKind policy, double rho, std::uint64_t jobs,
                              std::uint64_t seed) {
  PaperScenario scenario;
  scenario.policy = policy;
  scenario.component_limit = 16;
  return make_paper_config(scenario, rho, jobs, seed);
}

TEST(EngineMetrics, LittlesLawHoldsForWaitingJobs) {
  // Mean number waiting == arrival rate x mean wait (Little), within noise.
  const auto config = paper_config(PolicyKind::kGS, 0.5, 40000, 17);
  const auto result = run_simulation(config);
  ASSERT_FALSE(result.unstable);
  const double expected = config.workload.arrival_rate * result.wait_all.mean();
  EXPECT_NEAR(result.mean_queue_length, expected, 0.15 * expected + 0.05);
}

TEST(EngineMetrics, QueueLengthZeroAtTrivialLoad) {
  const auto result = run_simulation(paper_config(PolicyKind::kGS, 0.05, 4000, 3));
  EXPECT_LT(result.mean_queue_length, 0.1);
}

TEST(EngineMetrics, SizeClassesPartitionAllJobs) {
  const auto result = run_simulation(paper_config(PolicyKind::kLS, 0.4, 10000, 5));
  EXPECT_EQ(result.response_small.count() + result.response_medium.count() +
                result.response_large.count(),
            result.response_all.count());
  // DAS-s-128: ~51% small (<=16), ~47% medium, ~1-2% large (>64).
  const double total = static_cast<double>(result.response_all.count());
  EXPECT_NEAR(result.response_small.count() / total, 0.513, 0.05);
  EXPECT_NEAR(result.response_large.count() / total, 0.018, 0.01);
}

TEST(EngineMetrics, LargeJobsWaitLongestUnderFcfs) {
  // The Sect. 3.2 effect: jobs needing (almost) the whole machine pay by
  // far the largest response times under single-queue FCFS.
  const auto result = run_simulation(paper_config(PolicyKind::kSC, 0.6, 30000, 7));
  ASSERT_FALSE(result.unstable);
  ASSERT_GT(result.response_large.count(), 50u);
  EXPECT_GT(result.response_large.mean(), result.response_small.mean());
  EXPECT_GT(result.response_large.mean(), result.response_medium.mean());
}

// Cross-policy property sweep: conservation and sanity invariants that must
// hold for every policy at every stable load and seed.
class EngineInvariants
    : public ::testing::TestWithParam<std::tuple<PolicyKind, double, std::uint64_t>> {};

TEST_P(EngineInvariants, ConservationAndSanity) {
  const auto [policy, rho, seed] = GetParam();
  const auto config = paper_config(policy, rho, 6000, seed);
  const auto result = run_simulation(config);
  if (result.unstable) GTEST_SKIP() << "beyond saturation at this seed";

  // Every arrival completed; queues drained.
  EXPECT_EQ(result.completed_jobs, config.total_jobs);
  for (std::size_t len : result.final_queue_lengths) EXPECT_EQ(len, 0u);

  // Responses bound waits; both non-negative.
  EXPECT_GE(result.wait_all.min(), 0.0);
  EXPECT_GE(result.response_all.min(), result.wait_all.min());
  EXPECT_GE(result.response_all.mean(), result.wait_all.mean());

  // Utilizations are proper fractions and ordered gross >= net.
  EXPECT_GT(result.offered_gross_utilization, 0.0);
  EXPECT_LE(result.offered_gross_utilization, 1.0);
  EXPECT_GE(result.offered_gross_utilization, result.offered_net_utilization - 1e-12);
  EXPECT_GE(result.busy_fraction, 0.0);
  EXPECT_LE(result.busy_fraction, 1.0);

  // Local/global breakdown partitions the measured jobs.
  EXPECT_EQ(result.response_local.count() + result.response_global.count(),
            result.response_all.count());
}

INSTANTIATE_TEST_SUITE_P(
    PoliciesLoadsSeeds, EngineInvariants,
    ::testing::Combine(::testing::Values(PolicyKind::kGS, PolicyKind::kLS, PolicyKind::kLP,
                                         PolicyKind::kSC),
                       ::testing::Values(0.2, 0.45),
                       ::testing::Values(std::uint64_t{1}, std::uint64_t{2},
                                         std::uint64_t{3})),
    [](const ::testing::TestParamInfo<std::tuple<PolicyKind, double, std::uint64_t>>& info) {
      return std::string(policy_name(std::get<0>(info.param))) + "_rho" +
             std::to_string(static_cast<int>(std::get<1>(info.param) * 100)) + "_seed" +
             std::to_string(std::get<2>(info.param));
    });

}  // namespace
}  // namespace mcsim
