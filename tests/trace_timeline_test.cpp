#include "trace/timeline.hpp"

#include <gtest/gtest.h>

#include "trace/synthetic_log.hpp"

namespace mcsim {
namespace {

TraceRecord job(double start, double end, std::uint32_t procs) {
  TraceRecord rec;
  rec.submit_time = start;
  rec.wait_time = 0.0;
  rec.run_time = end - start;
  rec.processors = procs;
  return rec;
}

TEST(UtilizationProfile, ConstantFullLoad) {
  // One job using all processors over the whole span.
  const auto profile = utilization_profile({job(0.0, 100.0, 10)}, 10, 4);
  ASSERT_EQ(profile.size(), 4u);
  for (double value : profile) EXPECT_NEAR(value, 1.0, 1e-9);
}

TEST(UtilizationProfile, HalfLoad) {
  const auto profile = utilization_profile({job(0.0, 100.0, 5)}, 10, 5);
  for (double value : profile) EXPECT_NEAR(value, 0.5, 1e-9);
}

TEST(UtilizationProfile, LocalizedJobOnlyFillsItsBuckets) {
  // Span is [0, 100] (submit at 0 of a zero-length marker); job in [50,75].
  std::vector<TraceRecord> records = {job(0.0, 100.0, 0), job(50.0, 75.0, 8)};
  const auto profile = utilization_profile(records, 8, 4);
  EXPECT_NEAR(profile[0], 0.0, 1e-9);
  EXPECT_NEAR(profile[1], 0.0, 1e-9);
  EXPECT_NEAR(profile[2], 1.0, 1e-9);  // [50,75)
  EXPECT_NEAR(profile[3], 0.0, 1e-9);
}

TEST(UtilizationProfile, OverlappingJobsAdd) {
  std::vector<TraceRecord> records = {job(0.0, 100.0, 3), job(0.0, 100.0, 4)};
  const auto profile = utilization_profile(records, 10, 2);
  for (double value : profile) EXPECT_NEAR(value, 0.7, 1e-9);
}

TEST(UtilizationProfile, EmptyTraceIsAllZero) {
  const auto profile = utilization_profile({}, 10, 3);
  for (double value : profile) EXPECT_DOUBLE_EQ(value, 0.0);
}

TEST(UtilizationProfile, InvalidArgsThrow) {
  EXPECT_THROW(utilization_profile({}, 0, 3), std::invalid_argument);
  EXPECT_THROW(utilization_profile({}, 10, 0), std::invalid_argument);
}

TEST(RenderTimeline, ContainsAxisAndMean) {
  const std::string chart =
      render_utilization_timeline({job(0.0, 100.0, 5)}, 10, {.buckets = 20, .height = 4});
  EXPECT_NE(chart.find("1.0 |"), std::string::npos);
  EXPECT_NE(chart.find("0.0 |"), std::string::npos);
  EXPECT_NE(chart.find("mean utilization: 0.500"), std::string::npos);
  // Half load with height 4: rows below 0.5 filled, above empty.
  EXPECT_NE(chart.find('#'), std::string::npos);
}

TEST(RenderTimeline, WorksOnSyntheticLog) {
  SyntheticLogConfig config;
  config.num_jobs = 2000;
  config.duration_seconds = 10.0 * 24 * 3600;
  const auto trace = generate_synthetic_das1_log(config);
  const std::string chart = render_utilization_timeline(trace.records, 128);
  EXPECT_NE(chart.find("mean utilization:"), std::string::npos);
  EXPECT_GT(chart.size(), 100u);
}

}  // namespace
}  // namespace mcsim
