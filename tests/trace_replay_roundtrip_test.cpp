// The closed round-trip gate: export a run's realised schedule as an SWF
// trace, replay it through TraceWorkload under the same policy, and every
// per-job wait and every response/wait statistic must reproduce the
// identical bits (EXPECT_EQ on doubles — same tier as obs_roundtrip_test).
//
// This holds because the engine decomposes response = wait + run, the SWF
// writer exports wait/run verbatim at full precision, and the replay path
// re-derives components/service deterministically from the preserved total
// size. Slowdown and the utilization figures are NOT part of the
// guarantee: they depend on the net service time, which the replay
// reconstructs as run / extension_factor rather than reading it from the
// log (docs/TRACING.md, "Replaying traces").
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <sstream>
#include <string>
#include <unordered_map>

#include "core/engine.hpp"
#include "core/job.hpp"
#include "exp/golden.hpp"
#include "exp/manifest.hpp"
#include "exp/scenario_spec.hpp"
#include "exp/sweep.hpp"
#include "obs/json.hpp"
#include "obs/swf_builder.hpp"
#include "trace/swf.hpp"
#include "workload/trace_workload.hpp"

namespace mcsim {
namespace {

exp::ScenarioSpec synthetic_spec(PolicyKind policy, double utilization,
                                 std::uint64_t jobs) {
  exp::ScenarioSpec spec;
  spec.policy = policy;
  spec.mode = exp::RunMode::kPoint;
  spec.utilization = utilization;
  spec.sim_jobs = jobs;
  spec.seed = 7;
  return spec;
}

struct ExportedRun {
  SimulationResult result;
  SwfTrace trace;
};

/// Run the spec with an SWF builder attached — the exact export path
/// `mcsim run --trace-out` uses.
ExportedRun run_and_export(const exp::ScenarioSpec& spec) {
  auto sim = exp::build_simulation(spec);
  obs::SwfTraceBuilder builder;
  sim->set_trace_sink(&builder);
  ExportedRun out;
  out.result = sim->run();
  out.trace = builder.trace();
  return out;
}

/// The replay config for an exported trace: same layout/policy/run lengths
/// as the original spec, arrivals from the trace records.
SimulationConfig replay_config(const exp::ScenarioSpec& spec, const SwfTrace& trace) {
  SimulationConfig config = exp::to_simulation_config(spec);
  auto replay = std::make_shared<TraceWorkloadConfig>();
  replay->records = usable_trace_records(trace.records);
  replay->component_limit = config.workload.component_limit;
  replay->num_clusters = config.workload.num_clusters;
  replay->extension_factor = config.workload.extension_factor;
  replay->split_jobs = config.workload.split_jobs;
  config.total_jobs = replay->records.size();
  config.trace_workload = std::move(replay);
  return config;
}

void expect_stats_bits_equal(const RunningStats& want, const RunningStats& got) {
  EXPECT_EQ(want.count(), got.count());
  EXPECT_EQ(want.mean(), got.mean());
  EXPECT_EQ(want.stddev(), got.stddev());
  EXPECT_EQ(want.min(), got.min());
  EXPECT_EQ(want.max(), got.max());
}

/// The round-trip contract: wait/response statistics bit-identical.
void expect_roundtrip_exact(const SimulationResult& original,
                            const SimulationResult& replay) {
  ASSERT_FALSE(original.unstable);
  ASSERT_FALSE(replay.unstable);
  EXPECT_EQ(original.completed_jobs, replay.completed_jobs);
  EXPECT_EQ(original.measured_jobs, replay.measured_jobs);
  expect_stats_bits_equal(original.response_all, replay.response_all);
  expect_stats_bits_equal(original.response_local, replay.response_local);
  expect_stats_bits_equal(original.response_global, replay.response_global);
  expect_stats_bits_equal(original.response_small, replay.response_small);
  expect_stats_bits_equal(original.response_medium, replay.response_medium);
  expect_stats_bits_equal(original.response_large, replay.response_large);
  expect_stats_bits_equal(original.wait_all, replay.wait_all);
  EXPECT_EQ(original.response_ci.mean, replay.response_ci.mean);
  EXPECT_EQ(original.response_ci.halfwidth, replay.response_ci.halfwidth);
  EXPECT_EQ(original.response_p95, replay.response_p95);
}

TEST(TraceReplayRoundTrip, GsIsBitExact) {
  const auto spec = synthetic_spec(PolicyKind::kGS, 0.55, 3000);
  const ExportedRun original = run_and_export(spec);
  ASSERT_EQ(original.trace.records.size(), original.result.completed_jobs);

  const SimulationResult replay = run_simulation(replay_config(spec, original.trace));
  expect_roundtrip_exact(original.result, replay);
}

TEST(TraceReplayRoundTrip, LsIsBitExact) {
  const auto spec = synthetic_spec(PolicyKind::kLS, 0.45, 3000);
  const ExportedRun original = run_and_export(spec);
  const SimulationResult replay = run_simulation(replay_config(spec, original.trace));
  expect_roundtrip_exact(original.result, replay);
}

TEST(TraceReplayRoundTrip, PerJobWaitsAreBitExact) {
  const auto spec = synthetic_spec(PolicyKind::kGS, 0.55, 2000);
  const ExportedRun original = run_and_export(spec);

  // Replay ids are the position in (submit, id) order, which for a
  // monotone synthetic arrival stream is the original arrival-order id.
  // The exported SWF job id is that id + 1 (SWF ids are 1-based), so
  // record job_id - 1 keys each record's own replay.
  std::unordered_map<std::uint64_t, double> replay_waits;
  MulticlusterSimulation sim(replay_config(spec, original.trace));
  sim.set_job_observer([&replay_waits](const Job& job, double /*finish*/) {
    replay_waits[job.spec.id] = job.start_time - job.spec.arrival_time;
  });
  sim.run();

  ASSERT_EQ(replay_waits.size(), original.trace.records.size());
  std::size_t mismatched = 0;
  for (const TraceRecord& rec : original.trace.records) {
    const auto it = replay_waits.find(rec.job_id - 1);
    ASSERT_NE(it, replay_waits.end()) << "job " << rec.job_id << " not replayed";
    if (it->second != rec.wait_time) ++mismatched;
  }
  EXPECT_EQ(mismatched, 0u);
}

TEST(TraceReplayRoundTrip, SurvivesAFileRoundTrip) {
  // Same property through the on-disk representation: write the trace,
  // read it back, replay the parsed records.
  const auto spec = synthetic_spec(PolicyKind::kGS, 0.5, 1500);
  const ExportedRun original = run_and_export(spec);
  const std::string path = ::testing::TempDir() + "/mcsim_roundtrip_gs.swf";
  write_swf_file(path, original.trace);

  const SimulationResult replay =
      run_simulation(replay_config(spec, read_swf_file(path)));
  expect_roundtrip_exact(original.result, replay);
}

// --- determinism properties ---------------------------------------------

/// A point-mode trace-replay spec, the `mcsim replay <trace>` shape.
exp::ScenarioSpec trace_spec(const std::string& path, PolicyKind policy) {
  exp::ScenarioSpec spec;
  spec.policy = policy;
  spec.mode = exp::RunMode::kPoint;
  spec.trace_path = path;
  return spec;
}

std::string exported_trace_file(PolicyKind policy, std::uint64_t jobs,
                                const std::string& name) {
  const auto source = synthetic_spec(policy, 0.5, jobs);
  const ExportedRun run = run_and_export(source);
  const std::string path = ::testing::TempDir() + "/" + name;
  write_swf_file(path, run.trace);
  return path;
}

TEST(TraceReplayDeterminism, SameTraceTwiceYieldsIdenticalObservations) {
  const std::string path =
      exported_trace_file(PolicyKind::kGS, 1500, "mcsim_det_twice.swf");
  const auto spec = trace_spec(path, PolicyKind::kGS);
  // canonical_observation covers result statistics, scheduler metrics and
  // the re-exported SWF stream digest — the full observable surface.
  EXPECT_EQ(exp::canonical_observation(spec), exp::canonical_observation(spec));
}

TEST(TraceReplayDeterminism, SameTraceTwiceYieldsByteIdenticalManifests) {
  const std::string path =
      exported_trace_file(PolicyKind::kGS, 1500, "mcsim_det_manifest.swf");
  const auto spec = trace_spec(path, PolicyKind::kGS);

  const auto manifest_for = [&spec](const SimulationConfig& config) {
    SimulationResult result = run_simulation(config);
    // The one nondeterministic field in a manifest is the host wall clock;
    // `mcsim run` measures it, the determinism contract excludes it.
    result.wall_seconds = 0.0;
    ManifestInfo info;
    info.command_line = "determinism-test";
    info.scenario = &spec;
    std::ostringstream out;
    write_run_manifest(out, config, result, nullptr, info);
    return out.str();
  };

  const SimulationConfig config = exp::to_simulation_config(spec);
  const std::string first = manifest_for(config);
  const std::string second = manifest_for(config);
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, second);
}

TEST(TraceReplayDeterminism, SweepIsParallelismInvariant) {
  // The --jobs=1 vs --jobs=4 property: a trace sweep fans points out over
  // worker threads, and the series must not depend on the worker count.
  const std::string path =
      exported_trace_file(PolicyKind::kGS, 1200, "mcsim_det_sweep.swf");
  exp::ScenarioSpec spec = trace_spec(path, PolicyKind::kGS);
  spec.mode = exp::RunMode::kSweep;
  spec.utilization_grid = {0.2, 0.35};

  const auto fingerprint = [](const SweepSeries& series) {
    std::ostringstream out;
    obs::JsonWriter json(out);
    json.begin_array();
    for (const SweepPoint& point : series.points) {
      json.begin_object();
      json.key("utilization").value(point.target_gross_utilization);
      json.key("result");
      write_result_json(json, point.result);
      json.end_object();
    }
    json.end_array();
    return out.str();
  };

  spec.parallelism = 1;
  const std::string serial = fingerprint(run_sweep(spec));
  spec.parallelism = 4;
  const std::string parallel = fingerprint(run_sweep(spec));
  EXPECT_FALSE(serial.empty());
  EXPECT_EQ(serial, parallel);
}

}  // namespace
}  // namespace mcsim
