#include "policy/composed_scheduler.hpp"

#include <gtest/gtest.h>

#include "test_support.hpp"

namespace mcsim {
namespace {

using testing::FakeContext;
using testing::make_policy;
using testing::make_job;

TEST(PolicyLs, SingleComponentJobsRunOnlyOnLocalCluster) {
  FakeContext ctx({32, 32, 32, 32});
  auto policy_owner = make_policy(PolicyKind::kLS, ctx);
  ComposedScheduler& policy = *policy_owner;
  // Fill cluster 2 completely via a local job there.
  policy.submit(make_job(1, {32}, /*origin=*/2));
  ASSERT_EQ(ctx.started.size(), 1u);
  EXPECT_EQ(ctx.started[0]->allocation[0].cluster, 2u);
  // Another local job for cluster 2 must wait even though 0,1,3 are idle.
  policy.submit(make_job(2, {4}, /*origin=*/2));
  EXPECT_EQ(ctx.started.size(), 1u);
  EXPECT_EQ(policy.queued_jobs(), 1u);
}

TEST(PolicyLs, MultiComponentJobsSpreadOverAllClusters) {
  FakeContext ctx({32, 32, 32, 32});
  auto policy_owner = make_policy(PolicyKind::kLS, ctx);
  ComposedScheduler& policy = *policy_owner;
  policy.submit(make_job(1, {16, 16, 16}, /*origin=*/0));
  ASSERT_EQ(ctx.started.size(), 1u);
  EXPECT_EQ(ctx.started[0]->allocation.size(), 3u);
}

TEST(PolicyLs, BackfillingAcrossQueues) {
  // The LS advantage (Sect. 3.1.1): a blocked queue does not stop jobs in
  // other queues from starting.
  FakeContext ctx({32, 32, 32, 32});
  auto policy_owner = make_policy(PolicyKind::kLS, ctx);
  ComposedScheduler& policy = *policy_owner;
  policy.submit(make_job(1, {32}, 0));       // fills cluster 0
  policy.submit(make_job(2, {16}, 0));       // blocked: cluster 0 full
  policy.submit(make_job(3, {16}, 1));       // other queue: starts
  policy.submit(make_job(4, {32, 32}, 2));   // multi: fits on clusters 2,3
  ASSERT_EQ(ctx.started.size(), 3u);
  EXPECT_EQ(ctx.started[1]->spec.id, 3u);
  EXPECT_EQ(ctx.started[2]->spec.id, 4u);
  EXPECT_EQ(policy.queued_jobs(), 1u);
}

TEST(PolicyLs, DisabledQueueStaysBlockedUntilDeparture) {
  FakeContext ctx({32, 32, 32, 32});
  auto policy_owner = make_policy(PolicyKind::kLS, ctx);
  ComposedScheduler& policy = *policy_owner;
  policy.submit(make_job(1, {32}, 0));
  policy.submit(make_job(2, {16}, 0));  // head does not fit -> queue 0 disabled
  // A job that WOULD fit arrives at disabled queue 0; it must wait (the
  // queue is disabled until the next departure).
  policy.submit(make_job(3, {1}, 0));
  EXPECT_EQ(ctx.started.size(), 1u);
  EXPECT_EQ(policy.queued_jobs(), 2u);
  // After a departure the queue is re-enabled and both start.
  ctx.finish(ctx.started[0], policy);
  EXPECT_EQ(ctx.started.size(), 3u);
}

TEST(PolicyLs, FcfsWithinQueue) {
  FakeContext ctx({32, 32, 32, 32});
  auto policy_owner = make_policy(PolicyKind::kLS, ctx);
  ComposedScheduler& policy = *policy_owner;
  policy.submit(make_job(1, {32}, 1));
  policy.submit(make_job(2, {10}, 1));
  policy.submit(make_job(3, {5}, 1));
  ctx.finish(ctx.started[0], policy);
  ASSERT_EQ(ctx.started.size(), 3u);
  EXPECT_EQ(ctx.started[1]->spec.id, 2u);
  EXPECT_EQ(ctx.started[2]->spec.id, 3u);
}

TEST(PolicyLs, AtMostOneJobPerQueuePerRound) {
  // Two queues, each with two small jobs: the start order must interleave
  // (q0 job, q1 job, q0 job, q1 job), not drain one queue first.
  FakeContext ctx({32, 32});
  auto policy_owner = make_policy(PolicyKind::kLS, ctx);
  ComposedScheduler& policy = *policy_owner;
  // A multi-component job blocks the whole system while both queues fill.
  policy.submit(make_job(1, {32, 32}, 0));
  policy.submit(make_job(10, {4}, 0));
  policy.submit(make_job(11, {4}, 0));
  policy.submit(make_job(20, {4}, 1));
  policy.submit(make_job(21, {4}, 1));
  ASSERT_EQ(ctx.started.size(), 1u);
  ctx.finish(ctx.started[0], policy);
  ASSERT_EQ(ctx.started.size(), 5u);
  EXPECT_EQ(ctx.started[1]->spec.id, 10u);
  EXPECT_EQ(ctx.started[2]->spec.id, 20u);
  EXPECT_EQ(ctx.started[3]->spec.id, 11u);
  EXPECT_EQ(ctx.started[4]->spec.id, 21u);
}

TEST(PolicyLs, ReenableOrderFollowsDisableOrder) {
  FakeContext ctx({8, 8});
  auto policy_owner = make_policy(PolicyKind::kLS, ctx);
  ComposedScheduler& policy = *policy_owner;
  // Block both clusters.
  policy.submit(make_job(1, {8}, 0));
  policy.submit(make_job(2, {8}, 1));
  // Disable queue 1 first (submit a blocked job there), then queue 0.
  policy.submit(make_job(20, {8}, 1));
  policy.submit(make_job(10, {8}, 0));
  EXPECT_EQ(ctx.started.size(), 2u);
  // Free only cluster 1; visiting must start with queue 1 (disabled first).
  ctx.finish(ctx.started[1], policy);
  ASSERT_EQ(ctx.started.size(), 3u);
  EXPECT_EQ(ctx.started[2]->spec.id, 20u);
}

TEST(PolicyLs, MultiComponentHeadCanBlockLocalQueue) {
  FakeContext ctx({32, 32, 32, 32});
  auto policy_owner = make_policy(PolicyKind::kLS, ctx);
  ComposedScheduler& policy = *policy_owner;
  policy.submit(make_job(1, {32, 32, 32}, 0));  // uses clusters 0,1,2
  policy.submit(make_job(2, {20, 20}, 1));      // needs two clusters with 20: only cluster 3 free
  EXPECT_EQ(ctx.started.size(), 1u);
  // Queue 1 is disabled; a local job for idle cluster 3 in queue 3 starts.
  policy.submit(make_job(3, {10}, 3));
  EXPECT_EQ(ctx.started.size(), 2u);
}

TEST(PolicyLs, QueueLengthsPerCluster) {
  FakeContext ctx({8, 8, 8, 8});
  auto policy_owner = make_policy(PolicyKind::kLS, ctx);
  ComposedScheduler& policy = *policy_owner;
  policy.submit(make_job(1, {8}, 0));
  policy.submit(make_job(2, {8}, 0));
  policy.submit(make_job(3, {8}, 2));
  policy.submit(make_job(4, {8}, 2));
  policy.submit(make_job(5, {8}, 2));
  const auto lengths = policy.queue_lengths();
  ASSERT_EQ(lengths.size(), 4u);
  EXPECT_EQ(lengths[0], 1u);
  EXPECT_EQ(lengths[1], 0u);
  EXPECT_EQ(lengths[2], 2u);
  EXPECT_EQ(policy.max_queue_length(), 2u);
  EXPECT_EQ(policy.queued_jobs(), 3u);
}

TEST(PolicyLs, InvalidOriginQueueThrows) {
  FakeContext ctx({8, 8});
  auto policy_owner = make_policy(PolicyKind::kLS, ctx);
  ComposedScheduler& policy = *policy_owner;
  EXPECT_THROW(policy.submit(make_job(1, {4}, /*origin=*/7)), std::invalid_argument);
}

TEST(PolicyLs, NameIsLs) {
  FakeContext ctx({8, 8});
  auto policy_owner = make_policy(PolicyKind::kLS, ctx);
  ComposedScheduler& policy = *policy_owner;
  EXPECT_EQ(policy.name(), "LS");
}

}  // namespace
}  // namespace mcsim
