#include "policy/composed_scheduler.hpp"

#include <gtest/gtest.h>

#include "test_support.hpp"

namespace mcsim {
namespace {

using testing::FakeContext;
using testing::make_policy;
using testing::make_job;

TEST(PolicyLp, SingleComponentJobsGoToLocalQueues) {
  FakeContext ctx({32, 32, 32, 32});
  auto policy_owner = make_policy(PolicyKind::kLP, ctx);
  ComposedScheduler& policy = *policy_owner;
  policy.submit(make_job(1, {8}, /*origin=*/3));
  ASSERT_EQ(ctx.started.size(), 1u);
  EXPECT_EQ(ctx.started[0]->allocation[0].cluster, 3u);
  EXPECT_EQ(ctx.started[0]->queue_class, QueueClass::kLocal);
}

TEST(PolicyLp, MultiComponentJobsGoToGlobalQueue) {
  FakeContext ctx({32, 32, 32, 32});
  auto policy_owner = make_policy(PolicyKind::kLP, ctx);
  ComposedScheduler& policy = *policy_owner;
  policy.submit(make_job(1, {16, 16}, /*origin=*/0));
  ASSERT_EQ(ctx.started.size(), 1u);
  EXPECT_EQ(ctx.started[0]->queue_class, QueueClass::kGlobal);
}

TEST(PolicyLp, GlobalBlockedWhileNoLocalQueueEmpty) {
  FakeContext ctx({32, 32, 32, 32});
  auto policy_owner = make_policy(PolicyKind::kLP, ctx);
  ComposedScheduler& policy = *policy_owner;
  // Put one waiting job in every local queue by filling the clusters first.
  for (std::uint32_t c = 0; c < 4; ++c) policy.submit(make_job(c + 1, {32}, c));
  for (std::uint32_t c = 0; c < 4; ++c) policy.submit(make_job(10 + c, {4}, c));
  ASSERT_EQ(ctx.started.size(), 4u);
  // A tiny multi-component job that WOULD fit cannot start: no local queue
  // is empty, so the global queue has no priority clearance.
  policy.submit(make_job(99, {1, 1}, 0));
  EXPECT_EQ(ctx.started.size(), 4u);
  EXPECT_EQ(policy.global_queue_length(), 1u);
}

TEST(PolicyLp, GlobalRunsWhenSomeLocalQueueIsEmpty) {
  FakeContext ctx({32, 32, 32, 32});
  auto policy_owner = make_policy(PolicyKind::kLP, ctx);
  ComposedScheduler& policy = *policy_owner;
  // All local queues empty: global job starts immediately.
  policy.submit(make_job(1, {8, 8}, 0));
  EXPECT_EQ(ctx.started.size(), 1u);
}

TEST(PolicyLp, GlobalEnabledWhenLocalQueueEmpties) {
  FakeContext ctx({32, 32, 32, 32});
  auto policy_owner = make_policy(PolicyKind::kLP, ctx);
  ComposedScheduler& policy = *policy_owner;
  // Fill all clusters; queue a local job everywhere; queue a global job.
  for (std::uint32_t c = 0; c < 4; ++c) policy.submit(make_job(c + 1, {32}, c));
  for (std::uint32_t c = 0; c < 4; ++c) policy.submit(make_job(10 + c, {8}, c));
  policy.submit(make_job(99, {4, 4}, 0));
  EXPECT_EQ(ctx.started.size(), 4u);
  // Finish the job on cluster 2: local queue 2's head starts and the queue
  // becomes empty — but the global (4,4) needs TWO clusters with room, so
  // it still waits.
  ctx.finish(ctx.started[2], policy);
  ASSERT_EQ(ctx.started.size(), 5u);
  EXPECT_EQ(ctx.started[4]->spec.id, 12u);  // the local job on cluster 2
  // Finish the job on cluster 3: at the departure the global queue is
  // visited first (it now fits on clusters 2 and 3), before local job 13.
  ctx.finish(ctx.started[3], policy);
  ASSERT_EQ(ctx.started.size(), 7u);
  EXPECT_EQ(ctx.started[5]->spec.id, 99u);
  EXPECT_EQ(ctx.started[6]->spec.id, 13u);
}

TEST(PolicyLp, GlobalVisitedFirstAtDepartures) {
  FakeContext ctx({32, 32});
  auto policy_owner = make_policy(PolicyKind::kLP, ctx);
  ComposedScheduler& policy = *policy_owner;
  // Fill the system with one local job per cluster; keep queue 1 EMPTY so
  // the global queue keeps clearance, then race a global and a local job
  // for cluster 0's capacity.
  policy.submit(make_job(1, {32}, 0));
  policy.submit(make_job(2, {32}, 1));
  policy.submit(make_job(50, {32, 32}, 0));  // global, needs both clusters
  policy.submit(make_job(10, {32}, 0));      // local for cluster 0
  EXPECT_EQ(ctx.started.size(), 2u);
  ctx.finish(ctx.started[0], policy);
  // Cluster 0 free, cluster 1 busy: global head (32,32) does not fit, gets
  // disabled; then local 10 starts on cluster 0.
  ASSERT_EQ(ctx.started.size(), 3u);
  EXPECT_EQ(ctx.started[2]->spec.id, 10u);
  // When everything frees up, the global job goes first.
  ctx.finish(ctx.started[1], policy);
  ctx.finish(ctx.started[2], policy);
  ASSERT_EQ(ctx.started.size(), 4u);
  EXPECT_EQ(ctx.started[3]->spec.id, 50u);
}

TEST(PolicyLp, GlobalDisabledAfterMisfitUntilDeparture) {
  FakeContext ctx({32, 32, 32, 32});
  auto policy_owner = make_policy(PolicyKind::kLP, ctx);
  ComposedScheduler& policy = *policy_owner;
  policy.submit(make_job(1, {32, 32, 32}, 0));   // occupies clusters 0,1,2
  policy.submit(make_job(2, {32, 32}, 0));       // global head: does not fit -> disabled
  EXPECT_EQ(ctx.started.size(), 1u);
  // A second global job that WOULD fit (one component on cluster 3) must
  // wait behind the disabled queue head (FCFS within the global queue).
  policy.submit(make_job(3, {16, 16}, 0));
  EXPECT_EQ(ctx.started.size(), 1u);
  EXPECT_EQ(policy.global_queue_length(), 2u);
  ctx.finish(ctx.started[0], policy);
  ASSERT_EQ(ctx.started.size(), 3u);
  EXPECT_EQ(ctx.started[1]->spec.id, 2u);
  EXPECT_EQ(ctx.started[2]->spec.id, 3u);
}

TEST(PolicyLp, LocalQueuesHavePriorityForTheirCluster) {
  FakeContext ctx({32, 32});
  auto policy_owner = make_policy(PolicyKind::kLP, ctx);
  ComposedScheduler& policy = *policy_owner;
  // Cluster 0 busy, local job waiting on it; global job wants cluster 0's
  // capacity as one of its components once free.
  policy.submit(make_job(1, {32}, 0));
  policy.submit(make_job(10, {20}, 0));      // waits on cluster 0
  policy.submit(make_job(50, {20, 20}, 0));  // global: needs 20 on both
  EXPECT_EQ(ctx.started.size(), 1u);
  ctx.finish(ctx.started[0], policy);
  // At the departure the global queue is visited first, fits (20,20)?
  // Cluster 0 idle 32, cluster 1 idle 32 -> global starts; then local job
  // 10 no longer fits? 32-20=12 < 20 -> queue 0 disabled.
  ASSERT_EQ(ctx.started.size(), 2u);
  EXPECT_EQ(ctx.started[1]->spec.id, 50u);
  EXPECT_EQ(policy.queued_jobs(), 1u);
}

TEST(PolicyLp, QueueLengthsLocalsThenGlobal) {
  FakeContext ctx({8, 8});
  auto policy_owner = make_policy(PolicyKind::kLP, ctx);
  ComposedScheduler& policy = *policy_owner;
  policy.submit(make_job(1, {8}, 0));
  policy.submit(make_job(2, {8}, 1));
  policy.submit(make_job(3, {4}, 0));   // waits locally
  policy.submit(make_job(4, {4, 4}, 0));  // waits globally (no empty local? q1 empty... )
  const auto lengths = policy.queue_lengths();
  ASSERT_EQ(lengths.size(), 3u);
  EXPECT_EQ(lengths[0], 1u);
  EXPECT_EQ(lengths[2], 1u);
}

TEST(PolicyLp, InvalidOriginQueueThrows) {
  FakeContext ctx({8, 8});
  auto policy_owner = make_policy(PolicyKind::kLP, ctx);
  ComposedScheduler& policy = *policy_owner;
  EXPECT_THROW(policy.submit(make_job(1, {4}, 9)), std::invalid_argument);
}

TEST(PolicyLp, NameIsLp) {
  FakeContext ctx({8, 8});
  auto policy_owner = make_policy(PolicyKind::kLP, ctx);
  ComposedScheduler& policy = *policy_owner;
  EXPECT_EQ(policy.name(), "LP");
}

}  // namespace
}  // namespace mcsim
