#include "core/engine.hpp"

#include <gtest/gtest.h>

#include "exp/scenario.hpp"
#include "workload/das_workload.hpp"

namespace mcsim {
namespace {

SimulationConfig quick_config(PolicyKind policy, double rho, std::uint64_t jobs = 4000,
                              std::uint64_t seed = 7) {
  PaperScenario scenario;
  scenario.policy = policy;
  scenario.component_limit = 16;
  return make_paper_config(scenario, rho, jobs, seed);
}

TEST(Engine, CompletesAllJobsAtLowLoad) {
  const auto result = run_simulation(quick_config(PolicyKind::kGS, 0.2));
  EXPECT_FALSE(result.unstable);
  EXPECT_EQ(result.completed_jobs, 4000u);
  EXPECT_GT(result.measured_jobs, 3000u);
  for (std::size_t length : result.final_queue_lengths) EXPECT_EQ(length, 0u);
}

TEST(Engine, ResponseAtLeastService) {
  // Mean response >= mean gross service time (response includes waiting).
  const auto result = run_simulation(quick_config(PolicyKind::kGS, 0.3));
  EXPECT_GT(result.mean_response(), das_t_900()->mean());
  EXPECT_GE(result.response_all.min(), 1.0);
}

TEST(Engine, WaitPlusServiceEqualsResponse) {
  const auto result = run_simulation(quick_config(PolicyKind::kGS, 0.3));
  // E[response] = E[wait] + E[gross service]; gross service mean is between
  // 1x and 1.25x the net mean.
  const double service_part = result.response_all.mean() - result.wait_all.mean();
  EXPECT_GT(service_part, das_t_900()->mean() * 0.95);
  EXPECT_LT(service_part, das_t_900()->mean() * 1.30);
}

TEST(Engine, OfferedLoadMatchesTarget) {
  const auto result = run_simulation(quick_config(PolicyKind::kGS, 0.4, 20000));
  EXPECT_NEAR(result.offered_gross_utilization, 0.4, 0.04);
  // Net is gross / ratio for limit 16.
  const double ratio = gross_net_ratio(das_s_128(), 16, 4, 1.25);
  EXPECT_NEAR(result.offered_net_utilization, 0.4 / ratio, 0.04);
}

TEST(Engine, BusyFractionTracksOfferedLoadWhenStable) {
  const auto result = run_simulation(quick_config(PolicyKind::kGS, 0.3, 20000));
  EXPECT_NEAR(result.busy_fraction, 0.3, 0.05);
}

TEST(Engine, ResponseGrowsWithLoad) {
  const auto lo = run_simulation(quick_config(PolicyKind::kGS, 0.2, 8000));
  const auto hi = run_simulation(quick_config(PolicyKind::kGS, 0.45, 8000));
  EXPECT_GT(hi.mean_response(), lo.mean_response());
}

TEST(Engine, DeterministicForSameSeed) {
  const auto a = run_simulation(quick_config(PolicyKind::kLS, 0.3));
  const auto b = run_simulation(quick_config(PolicyKind::kLS, 0.3));
  EXPECT_DOUBLE_EQ(a.mean_response(), b.mean_response());
  EXPECT_EQ(a.completed_jobs, b.completed_jobs);
  EXPECT_DOUBLE_EQ(a.end_time, b.end_time);
}

TEST(Engine, SeedsChangeTheRun) {
  const auto a = run_simulation(quick_config(PolicyKind::kLS, 0.3, 4000, 1));
  const auto b = run_simulation(quick_config(PolicyKind::kLS, 0.3, 4000, 2));
  EXPECT_NE(a.mean_response(), b.mean_response());
}

TEST(Engine, OverloadIsFlaggedUnstable) {
  auto config = quick_config(PolicyKind::kGS, 1.4, 30000);
  config.instability_queue_limit = 500;
  const auto result = run_simulation(config);
  EXPECT_TRUE(result.unstable);
  EXPECT_LT(result.completed_jobs, 30000u);
}

TEST(Engine, ScRunsTotalRequestsOnSingleCluster) {
  const auto result = run_simulation(quick_config(PolicyKind::kSC, 0.3));
  EXPECT_EQ(result.policy, "SC");
  EXPECT_FALSE(result.unstable);
  // SC has no wide-area extension: offered gross == offered net.
  EXPECT_NEAR(result.offered_gross_utilization, result.offered_net_utilization, 1e-12);
}

TEST(Engine, AllPoliciesRunStablyAtModerateLoad) {
  for (PolicyKind policy :
       {PolicyKind::kGS, PolicyKind::kLS, PolicyKind::kLP, PolicyKind::kSC}) {
    const auto result = run_simulation(quick_config(policy, 0.25));
    EXPECT_FALSE(result.unstable) << policy_name(policy);
    EXPECT_EQ(result.completed_jobs, 4000u) << policy_name(policy);
    EXPECT_GT(result.mean_response(), 0.0) << policy_name(policy);
  }
}

TEST(Engine, LpSplitsResponsesByQueueClass) {
  const auto result = run_simulation(quick_config(PolicyKind::kLP, 0.35, 8000));
  EXPECT_GT(result.response_local.count(), 0u);
  EXPECT_GT(result.response_global.count(), 0u);
  EXPECT_EQ(result.response_local.count() + result.response_global.count(),
            result.response_all.count());
}

TEST(Engine, LsJobsAreAllLocalClass) {
  const auto result = run_simulation(quick_config(PolicyKind::kLS, 0.3));
  EXPECT_EQ(result.response_global.count(), 0u);
  EXPECT_EQ(result.response_local.count(), result.response_all.count());
}

TEST(Engine, CiAndP95Populated) {
  const auto result = run_simulation(quick_config(PolicyKind::kGS, 0.3, 12000));
  EXPECT_GT(result.response_ci.halfwidth, 0.0);
  EXPECT_GT(result.response_p95, result.mean_response());
}

TEST(Engine, RunTwiceThrows) {
  MulticlusterSimulation sim(quick_config(PolicyKind::kGS, 0.2, 500));
  (void)sim.run();
  EXPECT_THROW(sim.run(), std::invalid_argument);
}

TEST(Engine, MismatchedWorkloadClustersThrow) {
  auto config = quick_config(PolicyKind::kGS, 0.2);
  config.workload.num_clusters = 2;  // system has 4
  EXPECT_THROW(MulticlusterSimulation{config}, std::invalid_argument);
}

TEST(Engine, ScWithSplitJobsThrows) {
  auto config = quick_config(PolicyKind::kSC, 0.2);
  config.workload.split_jobs = true;
  EXPECT_THROW(MulticlusterSimulation{config}, std::invalid_argument);
}

TEST(Engine, ZeroWarmupMeasuresEverything) {
  auto config = quick_config(PolicyKind::kGS, 0.2, 2000);
  config.warmup_fraction = 0.0;
  const auto result = run_simulation(config);
  EXPECT_EQ(result.measured_jobs, 2000u);
}

}  // namespace
}  // namespace mcsim
