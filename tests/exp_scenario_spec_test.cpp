// ScenarioSpec: the declarative description of one experiment, and the
// single construction path under everything. The tests here pin the two
// properties the subsystem exists for: a spec survives a JSON round trip
// unchanged (operator==), and every way of describing the same run —
// legacy PaperScenario helpers, a scenario file, the spec embedded in a
// run manifest — produces bit-identical results.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "exp/manifest.hpp"
#include "exp/replications.hpp"
#include "exp/scenario.hpp"
#include "exp/scenario_spec.hpp"
#include "exp/sweep.hpp"
#include "obs/json_reader.hpp"

namespace mcsim {
namespace {

namespace fs = std::filesystem;

exp::ScenarioSpec round_trip(const exp::ScenarioSpec& spec) {
  std::ostringstream out;
  exp::write_scenario_file(out, spec);
  return exp::scenario_from_json(obs::parse_json(out.str()));
}

class TempFile {
 public:
  explicit TempFile(const std::string& name)
      : path_((fs::temp_directory_path() / name).string()) {}
  ~TempFile() { std::remove(path_.c_str()); }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
};

TEST(RunMode, NameParseRoundTrip) {
  for (const auto mode : {exp::RunMode::kPoint, exp::RunMode::kSweep,
                          exp::RunMode::kSaturation, exp::RunMode::kReplications}) {
    EXPECT_EQ(exp::parse_run_mode(exp::run_mode_name(mode)), mode);
  }
  EXPECT_EQ(exp::parse_run_mode("SWEEP"), exp::RunMode::kSweep);
  EXPECT_THROW(exp::parse_run_mode("sprint"), std::invalid_argument);
}

TEST(ScenarioSpecJson, DefaultSpecRoundTripsUnchanged) {
  const exp::ScenarioSpec spec;
  EXPECT_EQ(round_trip(spec), spec);
}

TEST(ScenarioSpecJson, EveryFieldSurvivesTheRoundTrip) {
  exp::ScenarioSpec spec;
  spec.name = "full-house \"quoted\"";
  // Sizes chosen so the largest das-s-64 job's (22,21,21) split under
  // limit 24 stays placeable (validate()'s split-feasibility rule).
  spec.cluster_sizes = {24, 32, 48};
  spec.cluster_speeds = {1.0, 0.5, 2.0};
  spec.size_model = "das-s-64";
  spec.component_limit = 24;
  spec.extension_factor = 1.3;
  spec.balanced_queues = false;
  spec.queue_weights = {0.5, 0.25, 0.25};
  spec.request_type = RequestType::kOrdered;
  spec.policy = PolicyKind::kGS;
  spec.placement = PlacementRule::kBestFit;
  spec.backfill = BackfillMode::kEasy;
  spec.discipline = QueueDiscipline::kShortestJobFirst;
  spec.mode = exp::RunMode::kSweep;
  spec.utilization = 0.6180339887498949;  // bit-exactness matters
  spec.utilization_grid = {0.3, 0.55, 0.7};
  spec.sweep_from = 0.2;
  spec.sweep_to = 0.9;
  spec.sweep_step = 0.1;
  spec.sim_jobs = 12345;
  spec.replications = 7;
  spec.saturation_completions = 777;
  spec.saturation_backlog = 42;
  spec.seed = 0xFFFFFFFFFFFFFFFFull;  // needs full 64-bit integer reads
  spec.warmup_fraction = 0.15;
  spec.batch_count = 10;
  spec.parallelism = 3;
  EXPECT_EQ(round_trip(spec), spec);
}

TEST(ScenarioSpecJson, SaturationModeRoundTrips) {
  exp::ScenarioSpec spec;
  spec.mode = exp::RunMode::kSaturation;
  spec.policy = PolicyKind::kSC;
  spec.saturation_completions = 5000;
  EXPECT_EQ(round_trip(spec), spec);
}

TEST(ScenarioSpecJson, MissingKeysKeepDefaults) {
  const auto spec = exp::scenario_from_json(obs::parse_json(
      R"({"schema": "mcsim-scenario", "policy": {"kind": "LS"}})"));
  exp::ScenarioSpec expected;
  expected.policy = PolicyKind::kLS;
  EXPECT_EQ(spec, expected);
}

TEST(ScenarioSpecJson, UnknownKeysAreRejected) {
  EXPECT_THROW(exp::scenario_from_json(obs::parse_json(R"({"polciy": {}})")),
               std::invalid_argument);
  EXPECT_THROW(exp::scenario_from_json(
                   obs::parse_json(R"({"run": {"utilisation": 0.5}})")),
               std::invalid_argument);
  EXPECT_THROW(exp::scenario_from_json(
                   obs::parse_json(R"({"workload": {"sizemodel": "das-s-128"}})")),
               std::invalid_argument);
}

TEST(ScenarioSpecJson, WrongSchemaIsRejected) {
  EXPECT_THROW(exp::scenario_from_json(obs::parse_json(R"({"schema": "other"})")),
               std::invalid_argument);
  EXPECT_THROW(exp::scenario_from_json(
                   obs::parse_json(R"({"schema_version": 99})")),
               std::invalid_argument);
}

TEST(ScenarioSpecValidate, RejectsInconsistentSpecs) {
  {
    exp::ScenarioSpec spec;
    spec.size_model = "das-s-256";
    EXPECT_THROW(exp::validate(spec), std::invalid_argument);
  }
  {
    exp::ScenarioSpec spec;  // backfill needs a single-queue policy
    spec.policy = PolicyKind::kLS;
    spec.backfill = BackfillMode::kEasy;
    EXPECT_THROW(exp::validate(spec), std::invalid_argument);
  }
  {
    // Disciplines compose with every structure now — LP+sjf is valid.
    exp::ScenarioSpec spec;
    spec.policy = PolicyKind::kLP;
    spec.discipline = QueueDiscipline::kShortestJobFirst;
    EXPECT_NO_THROW(exp::validate(spec));
  }
  {
    exp::ScenarioSpec spec;  // backfill × per-cluster queues cannot compose
    spec.queue_structure = QueueStructure::kPerCluster;
    spec.backfill = BackfillMode::kConservative;
    EXPECT_THROW(exp::validate(spec), std::invalid_argument);
  }
  {
    exp::ScenarioSpec spec;  // a component limit must allow >= 1 component
    spec.coallocation = CoAllocationRule{CoAllocationRule::Kind::kComponentLimit, 0};
    EXPECT_THROW(exp::validate(spec), std::invalid_argument);
  }
  {
    // limit-2 on 4x32 with das-s-128: a 128-proc job split 3+ ways can
    // neither co-allocate nor fit whole on a 32-proc cluster.
    exp::ScenarioSpec spec;
    spec.coallocation = CoAllocationRule{CoAllocationRule::Kind::kComponentLimit, 2};
    EXPECT_THROW(exp::validate(spec), std::invalid_argument);
  }
  {
    exp::ScenarioSpec spec;
    spec.queue_weights = {0.5, 0.5};  // 2 weights, 4 clusters
    EXPECT_THROW(exp::validate(spec), std::invalid_argument);
  }
  {
    exp::ScenarioSpec spec;
    spec.cluster_speeds = {1.0};  // 1 speed, 4 clusters
    EXPECT_THROW(exp::validate(spec), std::invalid_argument);
  }
  {
    exp::ScenarioSpec spec;  // derived unbalanced weights are DAS-specific
    spec.cluster_sizes = {32, 32};
    spec.balanced_queues = false;
    EXPECT_THROW(exp::validate(spec), std::invalid_argument);
  }
  {
    exp::ScenarioSpec spec;  // saturation estimator is homogeneous-only
    spec.mode = exp::RunMode::kSaturation;
    spec.cluster_speeds = {1.0, 1.0, 1.0, 1.0};
    EXPECT_THROW(exp::validate(spec), std::invalid_argument);
  }
  {
    exp::ScenarioSpec spec;
    spec.policy = PolicyKind::kSC;
    spec.cluster_sizes = {32, 32, 32, 32};
    EXPECT_THROW(exp::validate(spec), std::invalid_argument);
  }
}

// The heart of the refactor: the legacy helper is a translator onto the
// spec path, so both must produce the identical run.
TEST(ScenarioSpecEquivalence, FromPaperMatchesLegacyConfigBitExactly) {
  PaperScenario scenario;
  scenario.policy = PolicyKind::kLS;
  scenario.component_limit = 24;
  scenario.balanced_queues = false;

  const auto legacy = make_paper_config(scenario, 0.45, 4000, /*seed=*/7);

  exp::ScenarioSpec spec = exp::ScenarioSpec::from_paper(scenario);
  spec.utilization = 0.45;
  spec.sim_jobs = 4000;
  spec.seed = 7;
  const auto from_spec = exp::to_simulation_config(spec);

  EXPECT_EQ(legacy.cluster_sizes, from_spec.cluster_sizes);
  EXPECT_EQ(legacy.workload.arrival_rate, from_spec.workload.arrival_rate);
  EXPECT_EQ(legacy.workload.queue_weights, from_spec.workload.queue_weights);

  const auto legacy_run = run_simulation(legacy);
  const auto spec_run = run_simulation(from_spec);
  EXPECT_EQ(legacy_run.mean_response(), spec_run.mean_response());
  EXPECT_EQ(legacy_run.completed_jobs, spec_run.completed_jobs);
}

TEST(ScenarioSpecEquivalence, ScenarioFileRunIsBitIdentical) {
  PaperScenario scenario;
  scenario.policy = PolicyKind::kGS;
  exp::ScenarioSpec spec = exp::ScenarioSpec::from_paper(scenario);
  spec.utilization = 0.5;
  spec.sim_jobs = 3000;
  spec.seed = 11;

  TempFile file("mcsim_scenario_spec_test_scenario.json");
  {
    std::ofstream out(file.path());
    exp::write_scenario_file(out, spec);
  }
  const auto loaded = exp::load_scenario(file.path());
  EXPECT_EQ(loaded, spec);

  const auto direct = run_simulation(exp::to_simulation_config(spec));
  const auto from_file = run_simulation(exp::to_simulation_config(loaded));
  EXPECT_EQ(direct.mean_response(), from_file.mean_response());
  EXPECT_EQ(direct.completed_jobs, from_file.completed_jobs);
}

TEST(ScenarioSpecEquivalence, ManifestRerunIsBitIdentical) {
  exp::ScenarioSpec spec;
  spec.policy = PolicyKind::kLS;
  spec.utilization = 0.4;
  spec.sim_jobs = 3000;
  spec.seed = 13;

  const auto config = exp::to_simulation_config(spec);
  const auto result = run_simulation(config);

  TempFile file("mcsim_scenario_spec_test_manifest.json");
  {
    std::ofstream out(file.path());
    ManifestInfo info;
    info.scenario = &spec;
    write_run_manifest(out, config, result, /*metrics=*/nullptr, info);
  }

  // load_scenario accepts the manifest directly (the `mcsim rerun` path).
  const auto replayed = exp::load_scenario(file.path());
  EXPECT_EQ(replayed, spec);
  const auto rerun = run_simulation(exp::to_simulation_config(replayed));
  EXPECT_EQ(result.mean_response(), rerun.mean_response());
  EXPECT_EQ(result.completed_jobs, rerun.completed_jobs);
  EXPECT_EQ(result.busy_fraction, rerun.busy_fraction);
}

TEST(ScenarioSpecEquivalence, ManifestWithoutScenarioIsRejected) {
  exp::ScenarioSpec spec;
  const auto config = exp::to_simulation_config(spec);
  SimulationResult result;

  TempFile file("mcsim_scenario_spec_test_bare_manifest.json");
  {
    std::ofstream out(file.path());
    write_run_manifest(out, config, result, nullptr, ManifestInfo{});
  }
  EXPECT_THROW(exp::load_scenario(file.path()), std::invalid_argument);
}

TEST(ScenarioSpecEquivalence, SweepFromSpecMatchesLegacySweep) {
  PaperScenario scenario;
  scenario.policy = PolicyKind::kGS;

  SweepConfig legacy_config;
  legacy_config.target_utilizations = {0.35, 0.5};
  legacy_config.jobs_per_point = 2000;
  legacy_config.seed = 5;
  const auto legacy = run_sweep(scenario, legacy_config);

  exp::ScenarioSpec spec = exp::ScenarioSpec::from_paper(scenario);
  spec.mode = exp::RunMode::kSweep;
  spec.utilization_grid = {0.35, 0.5};
  spec.sim_jobs = 2000;
  spec.seed = 5;
  const auto from_spec = run_sweep(spec);

  ASSERT_EQ(legacy.points.size(), from_spec.points.size());
  for (std::size_t i = 0; i < legacy.points.size(); ++i) {
    EXPECT_EQ(legacy.points[i].result.mean_response(),
              from_spec.points[i].result.mean_response());
  }
}

TEST(ScenarioSpecEquivalence, ReplicationsFromSpecMatchLegacy) {
  PaperScenario scenario;
  scenario.policy = PolicyKind::kSC;
  const auto legacy =
      run_replications(scenario, 0.4, 2000, /*replications=*/3, /*base_seed=*/9);

  exp::ScenarioSpec spec = exp::ScenarioSpec::from_paper(scenario);
  spec.mode = exp::RunMode::kReplications;
  spec.utilization = 0.4;
  spec.sim_jobs = 2000;
  spec.replications = 3;
  spec.seed = 9;
  const auto from_spec = run_replications(spec);

  EXPECT_EQ(legacy.replication_means, from_spec.replication_means);
  EXPECT_EQ(legacy.response_ci.mean, from_spec.response_ci.mean);
  EXPECT_EQ(legacy.response_ci.halfwidth, from_spec.response_ci.halfwidth);
}

TEST(ScenarioSpecEquivalence, SaturationConfigMatchesLegacy) {
  PaperScenario scenario;
  scenario.policy = PolicyKind::kGS;
  const auto legacy = make_saturation_config(scenario, 5000, /*seed=*/21);

  exp::ScenarioSpec spec = exp::ScenarioSpec::from_paper(scenario);
  spec.mode = exp::RunMode::kSaturation;
  spec.saturation_completions = 5000;
  spec.seed = 21;
  const auto from_spec = exp::to_saturation_config(spec);

  EXPECT_EQ(legacy.cluster_sizes, from_spec.cluster_sizes);
  EXPECT_EQ(legacy.seed, from_spec.seed);
  EXPECT_EQ(legacy.total_completions, from_spec.total_completions);
  EXPECT_EQ(legacy.backlog, from_spec.backlog);
  EXPECT_EQ(legacy.warmup_fraction, from_spec.warmup_fraction);
}

// Every checked-in scenario file must parse and validate, so a typo in
// data/scenarios/ fails here, not in a user's experiment.
TEST(CheckedInScenarios, AllParseAndValidate) {
  const fs::path dir(MCSIM_SCENARIO_DIR);
  ASSERT_TRUE(fs::is_directory(dir)) << dir;
  std::size_t count = 0;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.path().extension() != ".json") continue;
    ++count;
    SCOPED_TRACE(entry.path().string());
    exp::ScenarioSpec spec;
    ASSERT_NO_THROW(spec = exp::load_scenario(entry.path().string()));
    EXPECT_FALSE(spec.name.empty()) << "checked-in scenarios should be named";
    // The spec must also be constructible, not just parseable.
    if (spec.mode == exp::RunMode::kSaturation) {
      EXPECT_NO_THROW(exp::to_saturation_config(spec));
    } else {
      EXPECT_NO_THROW(exp::to_simulation_config(spec));
    }
  }
  EXPECT_GE(count, 10u) << "expected the paper evaluation set to be present";
}

TEST(ScenarioSpecLabel, FallsBackToPaperLabelAndAnnotatesExtensions) {
  exp::ScenarioSpec spec;
  spec.policy = PolicyKind::kLS;
  EXPECT_EQ(spec.label(), spec.paper_scenario().label());

  spec.policy = PolicyKind::kGS;
  spec.backfill = BackfillMode::kEasy;
  spec.discipline = QueueDiscipline::kShortestJobFirst;
  EXPECT_NE(spec.label().find("easy-bf"), std::string::npos);
  EXPECT_NE(spec.label().find("sjf"), std::string::npos);

  spec.name = "custom";
  EXPECT_EQ(spec.label(), "custom");
}

}  // namespace
}  // namespace mcsim
