// Corpus replay driver: per-log machine sizing from the SWF header,
// sealed summary goldens (update / check / tamper / orphan), and the
// trace-loading diagnostics the archive dialect demands.
#include "exp/corpus.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>

#include "exp/scenario_spec.hpp"
#include "obs/json_reader.hpp"

namespace mcsim::exp {
namespace {

namespace fs = std::filesystem;

class CorpusTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = fs::path(::testing::TempDir()) /
            ("mcsim_corpus_" +
             std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
             "_" + ::testing::UnitTest::GetInstance()
                       ->current_test_info()
                       ->name());
    corpus_dir_ = (root_ / "corpus").string();
    golden_dir_ = (root_ / "golden").string();
    fs::create_directories(corpus_dir_);
    fs::create_directories(golden_dir_);
  }

  void TearDown() override { fs::remove_all(root_); }

  /// A small valid log: header declares the machine, three usable jobs,
  /// one cancelled record.
  std::string write_log(const std::string& name, std::int64_t max_procs = 96) {
    const std::string path = (fs::path(corpus_dir_) / name).string();
    std::ofstream out(path);
    if (max_procs >= 0) out << "; MaxProcs: " << max_procs << '\n';
    out << "1 0 0 600 32 -1 -1 32 -1 -1 1 0 -1 -1 -1 -1 -1 -1\n"
        << "2 60 0 300 64 -1 -1 64 -1 -1 1 1 -1 -1 -1 -1 -1 -1\n"
        << "3 90 0 0 16 -1 -1 16 -1 -1 0 2 -1 -1 -1 -1 -1 -1\n"  // cancelled
        << "4 120 0 900 8 -1 -1 8 -1 -1 1 3 -1 -1 -1 -1 -1 -1\n";
    return path;
  }

  fs::path root_;
  std::string corpus_dir_;
  std::string golden_dir_;
};

TEST_F(CorpusTest, SizesMachineFromHeaderRoundedToClusterMultiple) {
  write_log("a.swf", 430);  // not divisible by 4
  ScenarioSpec base;
  CorpusOptions options;
  const CorpusReport report = run_corpus(base, corpus_dir_, options);
  ASSERT_EQ(report.verdicts.size(), 1u);
  const CorpusLogVerdict& verdict = report.verdicts.front();
  EXPECT_EQ(verdict.status, VerifyStatus::kPass);
  EXPECT_EQ(verdict.total_records, 4u);
  EXPECT_EQ(verdict.usable_records, 3u);
  EXPECT_EQ(verdict.header_processors, 430u);
  EXPECT_EQ(verdict.machine_processors, 432u);  // 4 x 108
  EXPECT_GT(verdict.arrival_scale, 0.0);
  EXPECT_TRUE(report.ok());
}

TEST_F(CorpusTest, SizesMachineFromWidestJobWhenHeaderIsSilent) {
  write_log("bare.swf", -1);
  ScenarioSpec base;
  const CorpusReport report = run_corpus(base, corpus_dir_, CorpusOptions{});
  ASSERT_EQ(report.verdicts.size(), 1u);
  EXPECT_EQ(report.verdicts.front().header_processors, 0u);
  EXPECT_EQ(report.verdicts.front().machine_processors, 64u);  // widest job
}

TEST_F(CorpusTest, UpdateThenCheckRoundTrips) {
  write_log("a.swf");
  write_log("b.swf", 128);
  ScenarioSpec base;
  CorpusOptions options;
  options.golden_dir = golden_dir_;

  options.golden_mode = CorpusGoldenMode::kUpdate;
  const CorpusReport updated = run_corpus(base, corpus_dir_, options);
  ASSERT_EQ(updated.verdicts.size(), 2u);
  EXPECT_EQ(updated.verdicts[0].status, VerifyStatus::kUpdated);
  EXPECT_TRUE(updated.ok());
  EXPECT_TRUE(fs::exists(corpus_summary_path_for(golden_dir_, "a.swf")));

  options.golden_mode = CorpusGoldenMode::kCheck;
  const CorpusReport checked = run_corpus(base, corpus_dir_, options);
  ASSERT_EQ(checked.verdicts.size(), 2u);
  for (const CorpusLogVerdict& verdict : checked.verdicts) {
    EXPECT_EQ(verdict.status, VerifyStatus::kPass) << verdict.detail;
  }

  // The summary is a well-formed sealed document.
  const obs::JsonValue document =
      obs::parse_json_file(corpus_summary_path_for(golden_dir_, "a.swf"));
  EXPECT_EQ(document.find("schema")->as_string(), "mcsim-corpus-summary");
  EXPECT_NE(document.find("observed"), nullptr);
  EXPECT_EQ(document.find("observed")->find("records")->find("usable")->as_uint(),
            3u);
}

TEST_F(CorpusTest, TamperedSummaryFailsTheCheck) {
  write_log("a.swf");
  ScenarioSpec base;
  CorpusOptions options;
  options.golden_dir = golden_dir_;
  options.golden_mode = CorpusGoldenMode::kUpdate;
  run_corpus(base, corpus_dir_, options);

  // Flip a digit inside the sealed observation.
  const std::string summary = corpus_summary_path_for(golden_dir_, "a.swf");
  std::stringstream buffer;
  buffer << std::ifstream(summary).rdbuf();
  std::string text = buffer.str();
  const std::size_t pos = text.find("\"usable\": 3");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, 11, "\"usable\": 4");
  std::ofstream(summary) << text;

  options.golden_mode = CorpusGoldenMode::kCheck;
  const CorpusReport report = run_corpus(base, corpus_dir_, options);
  EXPECT_EQ(report.verdicts.front().status, VerifyStatus::kFail);
  EXPECT_FALSE(report.ok());
}

TEST_F(CorpusTest, MissingAndOrphanSummariesAreFlagged) {
  write_log("a.swf");
  ScenarioSpec base;
  CorpusOptions options;
  options.golden_dir = golden_dir_;
  options.golden_mode = CorpusGoldenMode::kCheck;

  // No summary yet: missing.
  const CorpusReport missing = run_corpus(base, corpus_dir_, options);
  EXPECT_EQ(missing.verdicts.front().status, VerifyStatus::kMissingGolden);
  EXPECT_FALSE(missing.ok());

  // A summary for a log that is not in the corpus: orphan.
  options.golden_mode = CorpusGoldenMode::kUpdate;
  run_corpus(base, corpus_dir_, options);
  std::ofstream(corpus_summary_path_for(golden_dir_, "gone.swf")) << "{}\n";
  options.golden_mode = CorpusGoldenMode::kCheck;
  const CorpusReport orphaned = run_corpus(base, corpus_dir_, options);
  ASSERT_EQ(orphaned.verdicts.size(), 2u);
  EXPECT_EQ(orphaned.verdicts.back().status, VerifyStatus::kOrphanGolden);
  EXPECT_FALSE(orphaned.ok());
}

TEST_F(CorpusTest, EmptyCorpusDirectoryThrows) {
  EXPECT_THROW(run_corpus(ScenarioSpec{}, corpus_dir_, CorpusOptions{}),
               std::invalid_argument);
}

// -- trace-loading diagnostics ---------------------------------------------

TEST_F(CorpusTest, HeaderOnlyLogGetsADistinctDiagnostic) {
  const std::string path = (fs::path(corpus_dir_) / "header_only.swf").string();
  std::ofstream(path) << "; MaxProcs: 128\n; MaxJobs: 0\n";
  ScenarioSpec spec;
  spec.trace_path = path;
  try {
    to_simulation_config(spec);
    FAIL() << "expected a diagnostic";
  } catch (const std::invalid_argument& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("no job records"), std::string::npos) << what;
    EXPECT_NE(what.find("header"), std::string::npos) << what;
  }
}

TEST_F(CorpusTest, AllRecordsUnusableGetsTheOtherDiagnostic) {
  const std::string path = (fs::path(corpus_dir_) / "cancelled.swf").string();
  std::ofstream(path)
      << "1 0 0 0 32 -1 -1 32 -1 -1 0 0 -1 -1 -1 -1 -1 -1\n"
      << "2 60 0 0 64 -1 -1 64 -1 -1 0 1 -1 -1 -1 -1 -1 -1\n";
  ScenarioSpec spec;
  spec.trace_path = path;
  try {
    to_simulation_config(spec);
    FAIL() << "expected a diagnostic";
  } catch (const std::invalid_argument& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("no replayable records"), std::string::npos) << what;
    EXPECT_NE(what.find("2 records"), std::string::npos) << what;
  }
}

TEST_F(CorpusTest, MalformedDirectiveSurfacesWithFileAndLine) {
  const std::string path = (fs::path(corpus_dir_) / "bad_directive.swf").string();
  std::ofstream(path) << "; MaxNodes: lots\n"
                      << "1 0 0 600 32 -1 -1 32 -1 -1 1 0 -1 -1 -1 -1 -1 -1\n";
  ScenarioSpec spec;
  spec.trace_path = path;
  try {
    to_simulation_config(spec);
    FAIL() << "expected a diagnostic";
  } catch (const std::invalid_argument& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find(path + ":1:"), std::string::npos) << what;
    EXPECT_NE(what.find("MaxNodes"), std::string::npos) << what;
  }
}

// -- spec round trip of the streaming knobs --------------------------------

TEST_F(CorpusTest, StreamingKnobsRoundTripThroughScenarioJson) {
  const std::string log = write_log("a.swf");
  ScenarioSpec spec;
  spec.trace_path = log;
  spec.trace_lookahead = 512;
  spec.trace_whole_file = true;

  std::ostringstream out;
  write_scenario_file(out, spec);
  const std::string text = out.str();
  EXPECT_NE(text.find("\"lookahead\": 512"), std::string::npos) << text;
  EXPECT_NE(text.find("\"whole_file\": true"), std::string::npos) << text;

  const ScenarioSpec loaded = scenario_from_json(obs::parse_json(text));
  EXPECT_EQ(loaded, spec);

  // Defaults stay silent: pre-streaming trace scenarios emit byte-identical
  // workload objects.
  ScenarioSpec plain;
  plain.trace_path = log;
  std::ostringstream plain_out;
  write_scenario_file(plain_out, plain);
  EXPECT_EQ(plain_out.str().find("lookahead"), std::string::npos);
  EXPECT_EQ(plain_out.str().find("whole_file"), std::string::npos);
}

TEST_F(CorpusTest, StreamingKnobsRejectedForSyntheticWorkloads) {
  ScenarioSpec spec;
  spec.trace_lookahead = 512;
  EXPECT_THROW(validate(spec), std::invalid_argument);
}

}  // namespace
}  // namespace mcsim::exp
