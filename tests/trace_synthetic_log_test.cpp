#include "trace/synthetic_log.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "trace/empirical.hpp"
#include "trace/trace_stats.hpp"
#include "workload/das_workload.hpp"

namespace mcsim {
namespace {

SyntheticLogConfig small_config() {
  SyntheticLogConfig config;
  config.num_jobs = 8000;
  config.duration_seconds = 30.0 * 24 * 3600;
  config.seed = 99;
  return config;
}

const SwfTrace& shared_log() {
  static const SwfTrace trace = generate_synthetic_das1_log(small_config());
  return trace;
}

TEST(SyntheticLog, GeneratesRequestedJobCount) {
  EXPECT_EQ(shared_log().records.size(), 8000u);
}

TEST(SyntheticLog, SubmitTimesSortedAndWithinSpan) {
  const auto& records = shared_log().records;
  for (std::size_t i = 1; i < records.size(); ++i) {
    EXPECT_GE(records[i].submit_time, records[i - 1].submit_time);
  }
  // Arrival intensity was calibrated to ~fit the configured duration.
  EXPECT_LT(records.back().submit_time, 2.5 * small_config().duration_seconds);
}

TEST(SyntheticLog, StartNotBeforeSubmitAndPositiveService) {
  for (const auto& rec : shared_log().records) {
    EXPECT_GE(rec.start_time(), rec.submit_time);
    EXPECT_GT(rec.service_time(), 0.0);
  }
}

TEST(SyntheticLog, SizesMatchDasS128Support) {
  const auto summary = summarize_trace(shared_log().records);
  EXPECT_GE(summary.min_size, 1u);
  EXPECT_LE(summary.max_size, 128u);
  // With 8000 draws from a 58-value distribution nearly all values appear.
  EXPECT_GE(summary.distinct_sizes, 50u);
  EXPECT_LE(summary.distinct_sizes, 58u);
}

TEST(SyntheticLog, PowerOfTwoFractionNearTable1) {
  const auto summary = summarize_trace(shared_log().records);
  EXPECT_NEAR(summary.power_of_two_fraction, 0.705, 0.03);
}

TEST(SyntheticLog, UsesConfiguredUserPopulation) {
  const auto summary = summarize_trace(shared_log().records);
  EXPECT_EQ(summary.user_count, 20u);
}

TEST(SyntheticLog, WorkingHourJobsAreKilledAtLimit) {
  for (const auto& rec : shared_log().records) {
    if (rec.killed_by_limit) {
      EXPECT_DOUBLE_EQ(rec.service_time(), 900.0);
      EXPECT_TRUE(in_working_hours(std::fmod(rec.submit_time, 86400.0)));
    }
    // No working-hours job may exceed the limit.
    if (in_working_hours(std::fmod(rec.submit_time, 86400.0))) {
      EXPECT_LE(rec.service_time(), 900.0);
    }
  }
}

TEST(SyntheticLog, MostJobsUnder15Minutes) {
  const auto summary = summarize_trace(shared_log().records);
  EXPECT_GT(summary.fraction_under_15min, 0.7);
}

TEST(SyntheticLog, FcfsReplayNeverOversubscribes) {
  // Sweep the start/end events and check occupancy <= 128 at all times.
  struct Event {
    double time;
    std::int32_t delta;
  };
  std::vector<Event> events;
  for (const auto& rec : shared_log().records) {
    events.push_back({rec.start_time(), static_cast<std::int32_t>(rec.processors)});
    events.push_back({rec.end_time(), -static_cast<std::int32_t>(rec.processors)});
  }
  std::sort(events.begin(), events.end(), [](const Event& a, const Event& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.delta < b.delta;  // releases before allocations at equal times
  });
  std::int64_t occupancy = 0;
  for (const auto& event : events) {
    occupancy += event.delta;
    EXPECT_GE(occupancy, 0);
    EXPECT_LE(occupancy, 128);
  }
}

TEST(SyntheticLog, DeterministicForSameSeed) {
  const SwfTrace a = generate_synthetic_das1_log(small_config());
  const SwfTrace b = generate_synthetic_das1_log(small_config());
  ASSERT_EQ(a.records.size(), b.records.size());
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.records[i].submit_time, b.records[i].submit_time);
    EXPECT_EQ(a.records[i].processors, b.records[i].processors);
  }
}

TEST(SyntheticLog, DifferentSeedsDiffer) {
  auto config = small_config();
  config.seed = 1234;
  const SwfTrace other = generate_synthetic_das1_log(config);
  bool any_diff = false;
  for (std::size_t i = 0; i < other.records.size(); ++i) {
    if (other.records[i].processors != shared_log().records[i].processors) {
      any_diff = true;
      break;
    }
  }
  EXPECT_TRUE(any_diff);
}

TEST(SyntheticLog, EmpiricalSizeDistributionTracksDasS128) {
  // Closing the trace-based loop: the empirical size distribution derived
  // from the synthetic log must agree with the generating DAS-s-128 on the
  // heavy sizes.
  const auto dist = empirical_size_distribution(shared_log().records);
  EXPECT_NEAR(dist.probability_of(64.0), 0.19, 0.025);
  EXPECT_NEAR(dist.probability_of(2.0), 0.13, 0.02);
  EXPECT_NEAR(dist.mean(), das_s_128().mean(), 1.5);
}

TEST(InWorkingHours, NineToFive) {
  EXPECT_FALSE(in_working_hours(8.99 * 3600));
  EXPECT_TRUE(in_working_hours(9.0 * 3600));
  EXPECT_TRUE(in_working_hours(16.99 * 3600));
  EXPECT_FALSE(in_working_hours(17.0 * 3600));
  EXPECT_FALSE(in_working_hours(3.0 * 3600));
}

TEST(DailyProfile, PeaksDuringWorkingHours) {
  EXPECT_DOUBLE_EQ(das1_daily_profile(12 * 3600), 1.0);
  EXPECT_LT(das1_daily_profile(2 * 3600), das1_daily_profile(12 * 3600));
  EXPECT_LT(das1_daily_profile(20 * 3600), das1_daily_profile(12 * 3600));
}

TEST(SyntheticLog, InvalidConfigThrows) {
  SyntheticLogConfig config;
  config.num_jobs = 0;
  EXPECT_THROW(generate_synthetic_das1_log(config), std::invalid_argument);
}

}  // namespace
}  // namespace mcsim
