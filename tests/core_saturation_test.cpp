#include "core/saturation.hpp"

#include <gtest/gtest.h>

#include "exp/scenario.hpp"
#include "workload/das_workload.hpp"

namespace mcsim {
namespace {

SaturationConfig quick_saturation(PolicyKind policy, std::uint32_t limit,
                                  std::uint64_t completions = 6000) {
  PaperScenario scenario;
  scenario.policy = policy;
  scenario.component_limit = limit;
  return make_saturation_config(scenario, completions, /*seed=*/11);
}

TEST(Saturation, GsMaximalUtilizationIsBelowOne) {
  const auto result = run_saturation(quick_saturation(PolicyKind::kGS, 16));
  EXPECT_GT(result.maximal_gross_utilization, 0.3);
  EXPECT_LT(result.maximal_gross_utilization, 0.9);
  EXPECT_EQ(result.completions, 6000u);
}

TEST(Saturation, NetBelowGrossForMulticluster) {
  const auto result = run_saturation(quick_saturation(PolicyKind::kGS, 16));
  EXPECT_LT(result.maximal_net_utilization, result.maximal_gross_utilization);
}

TEST(Saturation, GrossNetRatioMatchesClosedForm) {
  const auto result = run_saturation(quick_saturation(PolicyKind::kGS, 16, 20000));
  const double expected_ratio = gross_net_ratio(das_s_128(), 16, 4, 1.25);
  EXPECT_NEAR(result.maximal_gross_utilization / result.maximal_net_utilization,
              expected_ratio, 0.03);
}

TEST(Saturation, ScGrossEqualsNet) {
  const auto result = run_saturation(quick_saturation(PolicyKind::kSC, 16));
  EXPECT_NEAR(result.maximal_gross_utilization, result.maximal_net_utilization, 0.02);
}

TEST(Saturation, DeterministicForSameSeed) {
  const auto a = run_saturation(quick_saturation(PolicyKind::kGS, 24));
  const auto b = run_saturation(quick_saturation(PolicyKind::kGS, 24));
  EXPECT_DOUBLE_EQ(a.maximal_gross_utilization, b.maximal_gross_utilization);
}

TEST(Saturation, Limit24PacksWorstForGs) {
  // Sect. 3.3: limit 24 splits the dominant size-64 jobs as (22,21,21),
  // which packs far worse than (16,16,16,16) or (32,32).
  const double u16 =
      run_saturation(quick_saturation(PolicyKind::kGS, 16, 12000)).maximal_gross_utilization;
  const double u24 =
      run_saturation(quick_saturation(PolicyKind::kGS, 24, 12000)).maximal_gross_utilization;
  const double u32 =
      run_saturation(quick_saturation(PolicyKind::kGS, 32, 12000)).maximal_gross_utilization;
  EXPECT_LT(u24, u16);
  EXPECT_LT(u24, u32);
}

TEST(Saturation, RunTwiceThrows) {
  SaturationSimulation sim(quick_saturation(PolicyKind::kGS, 16, 500));
  (void)sim.run();
  EXPECT_THROW(sim.run(), std::invalid_argument);
}

TEST(Saturation, InvalidConfigThrows) {
  auto config = quick_saturation(PolicyKind::kGS, 16);
  config.backlog = 0;
  EXPECT_THROW(SaturationSimulation{config}, std::invalid_argument);
}

TEST(Saturation, BacklogKeepsSystemBusy) {
  // With a constant backlog the system should never be close to idle:
  // busy fraction well above what an unsaturated run would show.
  const auto result = run_saturation(quick_saturation(PolicyKind::kSC, 16));
  EXPECT_GT(result.maximal_gross_utilization, 0.4);
}

}  // namespace
}  // namespace mcsim
