// Job observer, per-cluster utilization and slowdown metrics.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/engine.hpp"
#include "exp/scenario.hpp"
#include "trace/trace_stats.hpp"

namespace mcsim {
namespace {

SimulationConfig small_config(PolicyKind policy, bool balanced, std::uint64_t jobs = 6000) {
  PaperScenario scenario;
  scenario.policy = policy;
  scenario.component_limit = 16;
  scenario.balanced_queues = balanced;
  return make_paper_config(scenario, 0.45, jobs, /*seed=*/13);
}

TEST(JobObserver, SeesEveryCompletionWithConsistentTimes) {
  auto config = small_config(PolicyKind::kLS, true, 3000);
  MulticlusterSimulation sim(config);
  std::uint64_t seen = 0;
  sim.set_job_observer([&](const Job& job, double finish) {
    ++seen;
    EXPECT_TRUE(job.started());
    EXPECT_GE(job.start_time, job.spec.arrival_time);
    EXPECT_NEAR(finish, job.start_time + job.spec.gross_service_time, 1e-9);
    EXPECT_FALSE(job.allocation.empty());
  });
  const auto result = sim.run();
  EXPECT_EQ(seen, result.completed_jobs);
}

TEST(JobObserver, ExportedScheduleIsAnalyzableTrace) {
  // Simulate, export the realised schedule as trace records, and feed it
  // back through the trace statistics — the full round trip.
  auto config = small_config(PolicyKind::kGS, true, 4000);
  MulticlusterSimulation sim(config);
  std::vector<TraceRecord> records;
  sim.set_job_observer([&](const Job& job, double finish) {
    TraceRecord rec;
    rec.job_id = job.spec.id;
    rec.submit_time = job.spec.arrival_time;
    rec.wait_time = job.start_time - job.spec.arrival_time;
    rec.run_time = finish - job.start_time;
    rec.processors = job.spec.total_size;
    records.push_back(rec);
  });
  const auto result = sim.run();
  ASSERT_EQ(records.size(), result.completed_jobs);

  const auto summary = summarize_trace(records);
  EXPECT_EQ(summary.job_count, result.completed_jobs);
  EXPECT_LE(summary.max_size, 128u);
  // Mean response of the exported trace equals the engine's over ALL jobs.
  RunningStats all_responses;
  for (const auto& rec : records) all_responses.add(rec.response_time());
  EXPECT_GT(all_responses.mean(), 0.0);
}

TEST(PerClusterUtilization, BalancedLsLoadsClustersEvenly) {
  const auto result = run_simulation(small_config(PolicyKind::kLS, true, 20000));
  ASSERT_EQ(result.per_cluster_busy_fraction.size(), 4u);
  const auto [lo, hi] = std::minmax_element(result.per_cluster_busy_fraction.begin(),
                                            result.per_cluster_busy_fraction.end());
  EXPECT_LT(*hi - *lo, 0.08);  // sampling noise only, no systematic skew
}

TEST(PerClusterUtilization, UnbalancedLsOverloadsTheHotCluster) {
  // Sect. 3.1.2: the queue receiving 40% of submissions overloads its local
  // cluster (single-component jobs are pinned there).
  const auto result = run_simulation(small_config(PolicyKind::kLS, false, 20000));
  ASSERT_EQ(result.per_cluster_busy_fraction.size(), 4u);
  const double hot = result.per_cluster_busy_fraction[0];
  for (std::size_t c = 1; c < 4; ++c) {
    EXPECT_GT(hot, result.per_cluster_busy_fraction[c]) << "cluster " << c;
  }
}

TEST(PerClusterUtilization, AveragesMatchTotalBusyFraction) {
  const auto result = run_simulation(small_config(PolicyKind::kGS, true, 10000));
  double sum = 0.0;
  for (double f : result.per_cluster_busy_fraction) sum += f;
  EXPECT_NEAR(sum / 4.0, result.busy_fraction, 0.02);
}

TEST(Slowdown, AtLeastOneAndGrowsWithLoad) {
  const auto light = run_simulation(small_config(PolicyKind::kGS, true, 8000));
  EXPECT_GE(light.slowdown_all.min(), 1.0 - 1e-9);
  PaperScenario scenario;
  scenario.policy = PolicyKind::kGS;
  const auto heavy = run_simulation(make_paper_config(scenario, 0.6, 8000, 13));
  if (!heavy.unstable) {
    EXPECT_GT(heavy.slowdown_all.mean(), light.slowdown_all.mean());
  }
}

}  // namespace
}  // namespace mcsim
