// Unit tests for the backfilling stages' reservation bookkeeping
// (policy/reservation.hpp): the running-job ledger shared by every
// backfilling composition and the conservative stage's availability
// profile.
#include "policy/reservation.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace mcsim {
namespace {

TEST(ReservationTracker, PruneDropsCompletedJobs) {
  ReservationTracker tracker;
  tracker.on_start(10.0, 8);
  tracker.on_start(20.0, 4);
  tracker.on_start(30.0, 2);
  tracker.prune(20.0);  // end_time <= now goes away
  ASSERT_EQ(tracker.running().size(), 1u);
  EXPECT_EQ(tracker.running().front().processors, 2u);
  tracker.prune(100.0);
  EXPECT_TRUE(tracker.empty());
}

TEST(ReservationTracker, HeadReservationFindsEarliestFit) {
  ReservationTracker tracker;
  tracker.on_start(/*end_time=*/40.0, /*processors=*/16);
  tracker.on_start(/*end_time=*/10.0, /*processors=*/4);
  tracker.on_start(/*end_time=*/25.0, /*processors=*/8);
  // 6 idle now; the head needs 20. Completions in time order: +4 at t=10
  // (10 free), +8 at t=25 (18 free), +16 at t=40 (34 free) — first fit at
  // t=40 with 14 spare.
  const auto [time, spare] = tracker.head_reservation(/*idle=*/6, /*needed=*/20);
  EXPECT_DOUBLE_EQ(time, 40.0);
  EXPECT_EQ(spare, 14u);
}

TEST(ReservationTracker, HeadReservationUsesUnsortedLedgerCorrectly) {
  // The ledger is in start order; the reservation must scan by end time.
  ReservationTracker tracker;
  tracker.on_start(50.0, 10);
  tracker.on_start(5.0, 10);
  const auto [time, spare] = tracker.head_reservation(/*idle=*/0, /*needed=*/10);
  EXPECT_DOUBLE_EQ(time, 5.0);
  EXPECT_EQ(spare, 0u);
}

TEST(ReservationTracker, ImpossibleHeadDegradesToInfinity) {
  ReservationTracker tracker;
  tracker.on_start(10.0, 8);
  const auto [time, spare] = tracker.head_reservation(/*idle=*/4, /*needed=*/64);
  EXPECT_TRUE(std::isinf(time));
  EXPECT_EQ(spare, 0u);
}

TEST(AvailabilityProfile, ResetBuildsStepwiseFreeCounts) {
  AvailabilityProfile profile;
  profile.reset(/*now=*/0.0, /*idle=*/10,
                {{20.0, 6}, {10.0, 4}});  // unsorted on purpose
  // 10 free at t=0, 14 from t=10, 20 from t=20.
  EXPECT_DOUBLE_EQ(profile.earliest_fit(10, 5.0), 0.0);
  EXPECT_DOUBLE_EQ(profile.earliest_fit(12, 5.0), 10.0);
  EXPECT_DOUBLE_EQ(profile.earliest_fit(20, 5.0), 20.0);
}

TEST(AvailabilityProfile, EarliestFitHonoursTheWholeWindow) {
  AvailabilityProfile profile;
  profile.reset(0.0, 16, {{10.0, 16}});
  // 16 free now, 32 from t=10. A job of 16 fits immediately whatever its
  // duration; after reserving 16 over [0, 8) a second 16 must wait until
  // the window [t, t+duration) clears the reservation.
  profile.reserve(0.0, 8.0, 16);
  EXPECT_DOUBLE_EQ(profile.earliest_fit(16, 4.0), 8.0);
  // A wider job must wait for the running job's completion at t=10.
  EXPECT_DOUBLE_EQ(profile.earliest_fit(32, 4.0), 10.0);
}

TEST(AvailabilityProfile, ReserveCarvesTheProfile) {
  AvailabilityProfile profile;
  profile.reset(0.0, 8, {});
  profile.reserve(0.0, 3.0, 4);  // 4 of 8 booked over [0, 3)
  // A job within the remaining 4 starts immediately; anything wider waits
  // for the reservation to expire.
  EXPECT_DOUBLE_EQ(profile.earliest_fit(4, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(profile.earliest_fit(5, 1.0), 3.0);
  EXPECT_DOUBLE_EQ(profile.earliest_fit(8, 2.0), 3.0);
  // A second reservation in the gap [2, 5) carves across the breakpoint.
  profile.reserve(2.0, 3.0, 4);
  EXPECT_DOUBLE_EQ(profile.earliest_fit(4, 1.0), 0.0);   // [0, 2) still has 4
  EXPECT_DOUBLE_EQ(profile.earliest_fit(8, 1.0), 5.0);
}

TEST(AvailabilityProfile, OversizeNeverFits) {
  AvailabilityProfile profile;
  profile.reset(0.0, 8, {{5.0, 8}});
  EXPECT_TRUE(std::isinf(profile.earliest_fit(64, 1.0)));
}

}  // namespace
}  // namespace mcsim
