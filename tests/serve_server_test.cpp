// End-to-end tests of the experiment daemon: an in-process Server driven
// through ServeClient over a real Unix socket. The load-bearing contract
// is replayability — a served manifest's observation (config + result +
// scenario) must be byte-identical to an offline run of the same spec,
// warm cache or cold, one client or many. The drain lifecycle, the
// structured-error surface and the registry state machine are pinned here
// too.
#include "serve/server.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/engine.hpp"
#include "exp/golden.hpp"
#include "exp/manifest.hpp"
#include "exp/scenario_spec.hpp"
#include "obs/json_reader.hpp"
#include "obs/metrics.hpp"
#include "serve/client.hpp"
#include "serve/protocol.hpp"
#include "serve/registry.hpp"

namespace mcsim::serve {
namespace {

namespace fs = std::filesystem;

/// A per-test scratch directory (short name — sun_path is 108 bytes).
fs::path scratch_dir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / ("mcsim_srv_" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

/// A small synthetic GS point — fast, deterministic, no trace file.
exp::ScenarioSpec smoke_spec() {
  exp::ScenarioSpec spec;
  spec.mode = exp::RunMode::kPoint;
  spec.utilization = 0.4;
  spec.sim_jobs = 1500;
  spec.seed = 1;
  return spec;
}

/// The spec as the compact JSON object a submit request carries.
std::string spec_json(const exp::ScenarioSpec& spec) {
  std::ostringstream out;
  exp::write_scenario_file(out, spec);
  return compact_json(obs::parse_json(out.str()));
}

/// What `mcsim run` would produce offline for this spec, with the served
/// provenance ("mcsim serve: <label>") so the full manifests are
/// comparable, not just their observations.
std::string offline_manifest(const exp::ScenarioSpec& spec) {
  const SimulationConfig config = exp::to_simulation_config(spec);
  MulticlusterSimulation simulation(config);
  obs::MetricsRegistry metrics;
  simulation.set_metrics(&metrics);
  const SimulationResult result = simulation.run();
  std::ostringstream out;
  ManifestInfo info;
  info.command_line = "mcsim serve: " + spec.label();
  info.scenario = &spec;
  write_run_manifest(out, config, result, &metrics, info);
  return out.str();
}

std::string observation_of(const std::string& manifest_json) {
  return exp::manifest_observation(obs::parse_json(manifest_json));
}

std::string observation_of(const obs::JsonValue& manifest) {
  return exp::manifest_observation(manifest);
}

/// Connect with retry: the server thread needs a moment to bind (longer
/// under sanitizers).
std::unique_ptr<ServeClient> connect_to(const std::string& socket_path) {
  for (int attempt = 0; attempt < 1500; ++attempt) {
    try {
      return std::make_unique<ServeClient>(socket_path);
    } catch (const std::system_error&) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }
  throw std::runtime_error("server never came up at " + socket_path);
}

/// Runs a Server on its own thread and reports serve()'s exit code.
class ServerHarness {
 public:
  explicit ServerHarness(ServerConfig config) : server_(std::move(config)) {
    thread_ = std::thread([this] {
      try {
        exit_code_ = server_.serve();
      } catch (const std::exception&) {
        exit_code_ = -1;
      }
    });
  }

  ~ServerHarness() {
    if (!joined_) {
      server_.request_shutdown();
      thread_.join();
    }
  }

  /// Wait for serve() to return and hand back its exit code.
  int join() {
    thread_.join();
    joined_ = true;
    return exit_code_;
  }

  Server& server() { return server_; }
  std::unique_ptr<ServeClient> client() {
    return connect_to(server_.socket_path());
  }

 private:
  Server server_;
  std::thread thread_;
  int exit_code_ = -2;
  bool joined_ = false;
};

ServerConfig make_config(const fs::path& dir, unsigned jobs = 1) {
  ServerConfig config;
  config.socket_path = (dir / "mcsim.sock").string();
  config.jobs = jobs;
  config.sandbox_root = dir.string();
  config.handle_signals = false;
  return config;
}

std::string record_line(std::uint64_t id, double submit, double run,
                        std::uint32_t procs) {
  std::ostringstream line;
  line << id << ' ' << submit << " 0 " << run << ' ' << procs << " -1 -1 "
       << procs << " -1 -1 1 0 -1 -1 -1 -1 -1 -1\n";
  return line.str();
}

void write_log(const fs::path& path, std::uint32_t jobs) {
  std::ofstream out(path);
  out << "; MaxNodes: 128\n";
  for (std::uint32_t i = 1; i <= jobs; ++i) {
    out << record_line(i, 60.0 * i, 300.0, 4);
  }
}

// -- the replayability contract ---------------------------------------------

TEST(ServeServer, ServedManifestMatchesOfflineRunBitExactly) {
  const fs::path dir = scratch_dir("bitexact");
  ServerHarness harness(make_config(dir));
  auto client = harness.client();

  const exp::ScenarioSpec spec = smoke_spec();
  const std::uint64_t id = client->submit(spec_json(spec), "probe");
  const obs::JsonValue response = client->await_result(id);
  EXPECT_EQ(response.at("state").as_string(), "done");

  EXPECT_EQ(observation_of(response.at("manifest")),
            observation_of(offline_manifest(spec)))
      << "a served run must be replayable bit-exactly offline";

  // status reflects the terminal state and echoes the client's label.
  const obs::JsonValue status =
      client->request("{\"op\":\"status\",\"id\":" + std::to_string(id) + "}");
  EXPECT_EQ(status.at("state").as_string(), "done");
  EXPECT_EQ(status.at("name").as_string(), "probe");

  client->shutdown();
  EXPECT_EQ(harness.join(), 0);
  EXPECT_FALSE(fs::exists(dir / "mcsim.sock"))
      << "a clean drain removes the socket file";
}

TEST(ServeServer, ConcurrentSubmissionsAreByteIdentical) {
  const fs::path dir = scratch_dir("concurrent");
  ServerHarness harness(make_config(dir, /*jobs=*/2));
  const exp::ScenarioSpec spec = smoke_spec();
  const std::string spec_line = spec_json(spec);

  constexpr int kClients = 4;
  std::vector<std::string> observations(kClients);
  std::vector<std::string> errors(kClients);
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int i = 0; i < kClients; ++i) {
    clients.emplace_back([&, i] {
      try {
        auto client = connect_to(harness.server().socket_path());
        const std::uint64_t id = client->submit(spec_line);
        observations[i] = observation_of(client->await_result(id).at("manifest"));
      } catch (const std::exception& error) {
        errors[i] = error.what();
      }
    });
  }
  for (auto& thread : clients) thread.join();

  const std::string reference = observation_of(offline_manifest(spec));
  for (int i = 0; i < kClients; ++i) {
    EXPECT_EQ(errors[i], "") << "client " << i;
    EXPECT_EQ(observations[i], reference)
        << "client " << i << " diverged from the cold offline run";
  }
}

TEST(ServeServer, WarmTraceRunsMatchTheColdFileResolver) {
  const fs::path dir = scratch_dir("trace");
  write_log(dir / "log.swf", 30);
  ServerHarness harness(make_config(dir));
  auto client = harness.client();

  exp::ScenarioSpec spec = smoke_spec();
  spec.trace_path = "log.swf";  // relative: the server joins it to the root
  spec.sim_jobs = 30;

  const std::uint64_t first = client->submit(spec_json(spec));
  const std::uint64_t second = client->submit(spec_json(spec));
  const std::string obs_first =
      observation_of(client->await_result(first).at("manifest"));
  const std::string obs_second =
      observation_of(client->await_result(second).at("manifest"));

  // The offline reference replays through the default file-backed resolver,
  // with the path spelled as the server's sandbox join produced it.
  exp::ScenarioSpec offline = spec;
  offline.trace_path = sandboxed_path(dir.string(), "log.swf");
  const std::string reference = observation_of(offline_manifest(offline));
  EXPECT_EQ(obs_first, reference) << "cold cache";
  EXPECT_EQ(obs_second, reference) << "warm cache";

  const obs::JsonValue stats = client->stats();
  const obs::JsonValue* cache = stats.find("cache");
  ASSERT_NE(cache, nullptr);
  EXPECT_GE(cache->at("hits").as_uint(), 1u)
      << "the second run must be served from the warm cache";
  EXPECT_EQ(cache->at("misses").as_uint(), 1u);
}

// -- the trust boundary over the wire ---------------------------------------

TEST(ServeServer, MalformedLinesGetStructuredErrorsAndTheConnectionSurvives) {
  const fs::path dir = scratch_dir("badjson");
  ServerHarness harness(make_config(dir));
  auto client = harness.client();

  try {
    client->request("{this is not json");
    FAIL() << "expected ServeError";
  } catch (const ServeError& error) {
    EXPECT_EQ(error.code(), kErrBadJson);
  }
  // The connection is still usable after a structured error.
  EXPECT_TRUE(client->stats().at("ok").as_bool());
}

TEST(ServeServer, UnknownRunsAndLateCancelsAreStructuredErrors) {
  const fs::path dir = scratch_dir("unknown");
  ServerHarness harness(make_config(dir));
  auto client = harness.client();

  try {
    client->request("{\"op\":\"result\",\"id\":999,\"wait\":false}");
    FAIL() << "expected ServeError";
  } catch (const ServeError& error) {
    EXPECT_EQ(error.code(), kErrUnknownRun);
  }

  const std::uint64_t id = client->submit(spec_json(smoke_spec()));
  client->await_result(id);  // run to completion
  try {
    client->request("{\"op\":\"cancel\",\"id\":" + std::to_string(id) + "}");
    FAIL() << "expected ServeError";
  } catch (const ServeError& error) {
    EXPECT_EQ(error.code(), kErrNotCancellable);
    EXPECT_NE(std::string(error.what()).find("done"), std::string::npos);
  }
}

TEST(ServeServer, FailedRunsSurfaceAsRunFailed) {
  const fs::path dir = scratch_dir("failed");
  ServerHarness harness(make_config(dir));
  auto client = harness.client();

  exp::ScenarioSpec spec = smoke_spec();
  spec.trace_path = "missing.swf";  // sandbox-clean, but nothing is there
  const std::uint64_t id = client->submit(spec_json(spec));
  try {
    client->await_result(id);
    FAIL() << "expected ServeError";
  } catch (const ServeError& error) {
    EXPECT_EQ(error.code(), kErrRunFailed);
  }
  const obs::JsonValue status =
      client->request("{\"op\":\"status\",\"id\":" + std::to_string(id) + "}");
  EXPECT_EQ(status.at("state").as_string(), "failed");
  EXPECT_NE(status.at("error").as_string().find("missing.swf"),
            std::string::npos);
}

TEST(ServeServer, ResultWithoutWaitReportsTheCurrentState) {
  const fs::path dir = scratch_dir("nowait");
  ServerHarness harness(make_config(dir));
  auto client = harness.client();

  const std::uint64_t id = client->submit(spec_json(smoke_spec()));
  const obs::JsonValue response = client->request(
      "{\"op\":\"result\",\"id\":" + std::to_string(id) + ",\"wait\":false}");
  const std::string state = response.at("state").as_string();
  EXPECT_TRUE(state == "queued" || state == "running" || state == "done")
      << state;
  if (state != "done") {
    EXPECT_EQ(response.find("manifest"), nullptr)
        << "no manifest before the run is terminal";
  }
  client->await_result(id);
}

// -- the drain lifecycle ----------------------------------------------------

TEST(ServeServer, ShutdownDrainsRunningWorkAndAnswersWaiters) {
  const fs::path dir = scratch_dir("drain");
  ServerHarness harness(make_config(dir));
  auto client = harness.client();

  exp::ScenarioSpec spec = smoke_spec();
  spec.sim_jobs = 30000;  // long enough that the drain overlaps the run
  const std::uint64_t id = client->submit(spec_json(spec));
  client->shutdown();

  // The parked result is still answered before the server exits.
  const obs::JsonValue response = client->await_result(id);
  EXPECT_EQ(response.at("state").as_string(), "done");
  EXPECT_EQ(harness.join(), 0);
  EXPECT_FALSE(fs::exists(dir / "mcsim.sock"));
}

TEST(ServeServer, SubmissionsAreRejectedWhileDraining) {
  const fs::path dir = scratch_dir("reject");
  ServerHarness harness(make_config(dir));
  auto client = harness.client();

  exp::ScenarioSpec spec = smoke_spec();
  spec.sim_jobs = 100000;  // keeps the server alive through the drain window
  client->submit(spec_json(spec));
  client->shutdown();
  try {
    client->submit(spec_json(smoke_spec()));
    FAIL() << "expected ServeError";
  } catch (const ServeError& error) {
    EXPECT_EQ(error.code(), kErrShuttingDown);
  }
  EXPECT_EQ(harness.join(), 0);
}

TEST(ServeServer, RequestShutdownDrainsAnIdleServer) {
  const fs::path dir = scratch_dir("idle");
  ServerHarness harness(make_config(dir));
  harness.client();  // wait until the server is up
  harness.server().request_shutdown();
  EXPECT_EQ(harness.join(), 0);
  EXPECT_FALSE(fs::exists(dir / "mcsim.sock"));
}

TEST(ServeServer, SigtermDrainsWhenSignalsAreHandled) {
  const fs::path dir = scratch_dir("sigterm");
  ServerConfig config = make_config(dir);
  config.handle_signals = true;
  ServerHarness harness(std::move(config));
  // A stats round-trip proves the I/O loop is live, which means the signal
  // handler is installed — only then is raise() safe.
  harness.client()->stats();
  ASSERT_EQ(::raise(SIGTERM), 0);
  EXPECT_EQ(harness.join(), 0);
  EXPECT_FALSE(fs::exists(dir / "mcsim.sock"));
}

TEST(ServeServer, StatsReportsPoolAndRunCounters) {
  const fs::path dir = scratch_dir("stats");
  ServerHarness harness(make_config(dir, /*jobs=*/3));
  auto client = harness.client();

  const std::uint64_t id = client->submit(spec_json(smoke_spec()));
  client->await_result(id);
  const obs::JsonValue stats = client->stats();
  EXPECT_EQ(stats.at("jobs").as_uint(), 3u);
  EXPECT_FALSE(stats.at("draining").as_bool());
  const obs::JsonValue* runs = stats.find("runs");
  ASSERT_NE(runs, nullptr);
  EXPECT_EQ(runs->at("submitted").as_uint(), 1u);
  EXPECT_EQ(runs->at("done").as_uint(), 1u);
  EXPECT_EQ(runs->at("queued").as_uint(), 0u);
  EXPECT_EQ(runs->at("running").as_uint(), 0u);
}

// -- the registry state machine (deterministic, no I/O) ---------------------

TEST(ServeRegistry, CancelWinsOnlyWhileQueued) {
  RunRegistry registry;
  const std::uint64_t id = registry.submit(smoke_spec(), "victim");
  EXPECT_EQ(registry.cancel(id), RunState::kCancelled);
  EXPECT_EQ(registry.get(id)->state, RunState::kCancelled);
  EXPECT_TRUE(registry.idle());

  const std::uint64_t late = registry.submit(smoke_spec(), "late");
  const auto batch = registry.claim_queued();
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch[0].first, late);
  EXPECT_EQ(registry.cancel(late), RunState::kRunning)
      << "a claimed run is past the point of cancellation";
  registry.complete(late, "{}");
  EXPECT_EQ(registry.cancel(late), RunState::kDone);
}

TEST(ServeRegistry, ClaimMovesEveryQueuedRunInSubmissionOrder) {
  RunRegistry registry;
  const std::uint64_t a = registry.submit(smoke_spec(), "a");
  const std::uint64_t b = registry.submit(smoke_spec(), "b");
  const std::uint64_t c = registry.submit(smoke_spec(), "c");
  const auto batch = registry.claim_queued();
  ASSERT_EQ(batch.size(), 3u);
  EXPECT_EQ(batch[0].first, a);
  EXPECT_EQ(batch[1].first, b);
  EXPECT_EQ(batch[2].first, c);
  EXPECT_FALSE(registry.idle());

  registry.complete(a, "{}");
  registry.fail(b, "boom");
  registry.complete(c, "{}");
  EXPECT_TRUE(registry.idle());

  const RegistryStats stats = registry.stats();
  EXPECT_EQ(stats.submitted, 3u);
  EXPECT_EQ(stats.done, 2u);
  EXPECT_EQ(stats.failed, 1u);
  EXPECT_EQ(stats.running, 0u);
  EXPECT_EQ(registry.get(b)->error, "boom");
}

TEST(ServeRegistry, CompletionHookFiresPerTerminalTransition) {
  std::atomic<int> fired{0};
  RunRegistry registry([&fired] { ++fired; });
  const std::uint64_t a = registry.submit(smoke_spec(), "");
  const std::uint64_t b = registry.submit(smoke_spec(), "");
  const std::uint64_t c = registry.submit(smoke_spec(), "");
  registry.cancel(a);
  EXPECT_EQ(fired.load(), 1);
  registry.claim_queued();
  registry.complete(b, "{}");
  registry.fail(c, "boom");
  EXPECT_EQ(fired.load(), 3);
}

TEST(ServeRegistry, StopUnblocksClaimWithAnEmptyBatch) {
  RunRegistry registry;
  std::vector<std::pair<std::uint64_t, exp::ScenarioSpec>> batch{
      {1, exp::ScenarioSpec{}}};
  std::thread claimer([&] { batch = registry.claim_queued(); });
  registry.request_stop();
  claimer.join();
  EXPECT_TRUE(batch.empty());
}

TEST(ServeRegistry, EmptyNameFallsBackToTheSpecLabel) {
  RunRegistry registry;
  const exp::ScenarioSpec spec = smoke_spec();
  const std::uint64_t id = registry.submit(spec, "");
  EXPECT_EQ(registry.get(id)->name, spec.label());
}

}  // namespace
}  // namespace mcsim::serve
